.PHONY: install test bench tables csv examples all clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

tables:
	python -m repro.bench

csv:
	python -c "from repro.bench.export import export_all; print(*export_all('benchmarks/results/csv'), sep='\n')"

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		python $$script || exit 1; \
	done

all: install test bench tables

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results build src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
