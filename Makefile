.PHONY: install test bench bench-smoke check-autotune check-backends check-chaos check-resilience check-scheduler check-static check-types tables csv examples all clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Quick hot-path perf smoke (asserts bit-identical scalar/vectorized parity).
# PYTHONPATH makes it work from a bare checkout, before `make install`.
bench-smoke:
	PYTHONPATH=src python benchmarks/bench_hotpaths.py

# Backend-registry health: every registered backend agrees with the
# vectorized reference, context dispatch stays within 5% of a direct
# backend call, and the plan cache makes relaunching one shape strictly
# cheaper than recompiling every launch (hit rates + <1.0x gate; writes
# benchmarks/results/dispatch.json).
check-backends:
	PYTHONPATH=src python benchmarks/bench_dispatch.py --out benchmarks/results/dispatch.json

# Adaptive-dispatch health: sweep the Fig-14 density grid with
# backend="auto" against every static backend; at every point a cold
# planner must land within 1.05x of the best static backend, and a
# warmed AutotuneTable must shift at least one crossover-region choice
# (writes benchmarks/results/autotune.json).
check-autotune:
	PYTHONPATH=src python benchmarks/bench_autotune.py --out benchmarks/results/autotune.json

# Resilience health: a seeded fault plan (corrupted tiles + a killed
# device) on a checked multi-device closure must be detected (zero false
# negatives), recovered bit-identically via retry + repartition, with zero
# false positives on the clean run; ABFT-checked closure stays <1.3x of
# unchecked at 512² (writes benchmarks/results/resilience.json).
check-resilience:
	PYTHONPATH=src python benchmarks/bench_resilience.py --out benchmarks/results/resilience.json

# Chaos soak: >=50 seeded randomized fault schedules (tight deadlines,
# backoff, cancellation, breakers, brownout closures, threaded faults)
# through the full stack; every run must terminate with a bit-correct
# result or a typed error, every seed must replay byte-identically on a
# virtual clock, and a hard-failing backend must stop being dispatched
# once its breaker trips and recover via the half-open probe (writes
# benchmarks/results/chaos.json).
check-chaos:
	PYTHONPATH=src python benchmarks/bench_chaos.py --out benchmarks/results/chaos.json

# Scheduler health: lowering a single launch onto a LaunchGraph stays
# within 1.05x of direct dispatch; a 4-worker threaded banded closure is
# byte-identical to serial; and on >=4 CPUs the 2048² 4-band closure
# iteration runs >=1.8x faster threaded (skipped, and recorded as
# skipped, on smaller machines; writes benchmarks/results/scheduler.json).
check-scheduler:
	PYTHONPATH=src python benchmarks/bench_scheduler.py --out benchmarks/results/scheduler.json

# Static analysis gate: the repo-wide invariant lint (must be clean with
# zero suppressions) plus gradual typing.  Runs before the benchmark
# gates in CI so convention regressions fail fast.
check-static: check-types
	python tools/check_invariants.py

# Gradual typing: strict on repro.isa/repro.compile/repro.hooks,
# permissive elsewhere (config in pyproject.toml).  Skips gracefully
# when mypy is not installed — the bare container ships without it.
check-types:
	@if python -c "import mypy" 2>/dev/null; then \
		python -m mypy src/repro; \
	else \
		echo "mypy not installed; skipping check-types (pip install mypy to enable)"; \
	fi

tables:
	python -m repro.bench

csv:
	python -c "from repro.bench.export import export_all; print(*export_all('benchmarks/results/csv'), sep='\n')"

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		python $$script || exit 1; \
	done

all: install test bench tables

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results build src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
