"""Test package."""
