"""Tests for point-cloud generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SEMIRINGS
from repro.core.precision import representable_input
from repro.datasets import PointCloudSpec, gaussian_clusters, uniform_points


class TestSpecs:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_points": 0},
            {"num_points": 4, "dimensions": 0},
            {"num_points": 4, "num_clusters": 0},
        ],
    )
    def test_bad_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PointCloudSpec(**kwargs)

    def test_determinism(self):
        spec = PointCloudSpec(50, dimensions=6, seed=4)
        a, la = gaussian_clusters(spec)
        b, lb = gaussian_clusters(spec)
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(la, lb)


class TestGaussianClusters:
    def test_shapes_and_labels(self):
        spec = PointCloudSpec(80, dimensions=5, num_clusters=4, seed=0)
        points, labels = gaussian_clusters(spec)
        assert points.shape == (80, 5)
        assert labels.shape == (80,)
        assert set(np.unique(labels)) <= set(range(4))

    def test_fp16_exact(self):
        points, _ = gaussian_clusters(PointCloudSpec(40, dimensions=8, seed=1))
        assert representable_input(points, SEMIRINGS["plus-norm"])

    def test_clusters_are_separated(self):
        spec = PointCloudSpec(200, dimensions=12, num_clusters=2, seed=6)
        points, labels = gaussian_clusters(spec)
        centroid0 = points[labels == 0].mean(axis=0)
        centroid1 = points[labels == 1].mean(axis=0)
        spread = points[labels == 0].std()
        assert np.linalg.norm(centroid0 - centroid1) > spread


class TestUniformPoints:
    def test_range_and_grid(self):
        points = uniform_points(PointCloudSpec(100, dimensions=4, seed=2))
        assert points.shape == (100, 4)
        assert points.min() >= -8.0 - 1e-9
        assert points.max() <= 8.0 + 1e-9
        np.testing.assert_array_equal(points, np.round(points * 16) / 16)
