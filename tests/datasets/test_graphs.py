"""Tests for the synthetic graph generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SEMIRINGS
from repro.core.precision import representable_input
from repro.datasets import (
    GraphSpec,
    boolean_graph,
    capacity_graph,
    dag_distance_graph,
    distance_graph,
    random_dag_mask,
    random_digraph_mask,
    reliability_graph,
    undirected_distance_graph,
)


class TestSpecs:
    def test_bad_vertex_count(self):
        with pytest.raises(ValueError, match="num_vertices"):
            GraphSpec(num_vertices=0)

    def test_bad_probability(self):
        with pytest.raises(ValueError, match="edge_probability"):
            GraphSpec(num_vertices=4, edge_probability=1.5)

    def test_determinism(self):
        spec = GraphSpec(32, 0.2, seed=7)
        np.testing.assert_array_equal(distance_graph(spec), distance_graph(spec))

    def test_seed_changes_graph(self):
        a = distance_graph(GraphSpec(32, 0.2, seed=1))
        b = distance_graph(GraphSpec(32, 0.2, seed=2))
        assert not np.array_equal(a, b)


class TestMasks:
    def test_no_self_loops(self):
        mask = random_digraph_mask(GraphSpec(20, 0.5, seed=0))
        assert not mask.diagonal().any()

    def test_dag_mask_is_upper_triangular(self):
        mask = random_dag_mask(GraphSpec(20, 0.5, seed=0))
        assert not np.tril(mask).any()

    def test_density_roughly_matches(self):
        spec = GraphSpec(200, 0.3, seed=0)
        mask = random_digraph_mask(spec)
        density = mask.sum() / (200 * 199)
        assert 0.25 < density < 0.35


class TestEncodings:
    def test_distance_graph_encoding(self):
        adj = distance_graph(GraphSpec(24, 0.3, seed=1))
        assert np.all(np.diag(adj) == 0.0)
        offdiag = adj[~np.eye(24, dtype=bool)]
        finite = offdiag[np.isfinite(offdiag)]
        assert np.all((finite >= 1.0) & (finite <= 9.0))
        assert np.all(np.isposinf(offdiag[~np.isfinite(offdiag)]))

    def test_dag_distance_graph_encoding(self):
        adj = dag_distance_graph(GraphSpec(24, 0.3, seed=1))
        assert np.all(np.diag(adj) == 0.0)
        below = np.tril(adj, k=-1)
        assert np.all(np.isneginf(below[below != 0.0]))

    def test_reliability_maximize_encoding(self):
        adj = reliability_graph(GraphSpec(24, 0.3, seed=1), maximize=True)
        assert np.all(np.diag(adj) == 1.0)
        offdiag = adj[~np.eye(24, dtype=bool)]
        assert np.all((offdiag == 0.0) | ((offdiag > 0.5) & (offdiag <= 1.0)))

    def test_reliability_minimize_is_dag(self):
        adj = reliability_graph(GraphSpec(24, 0.3, seed=1), maximize=False)
        finite = np.isfinite(adj)
        np.fill_diagonal(finite, False)
        assert not np.tril(finite).any()
        assert np.all(np.diag(adj) == 1.0)

    def test_capacity_graph_symmetry(self):
        adj = capacity_graph(GraphSpec(24, 0.3, seed=1), maximize=True)
        off = ~np.eye(24, dtype=bool)
        np.testing.assert_array_equal(adj[off], adj.T[off])
        assert np.all(np.isposinf(np.diag(adj)))

    def test_capacity_minmax_encoding(self):
        adj = capacity_graph(GraphSpec(24, 0.3, seed=1), maximize=False)
        assert np.all(np.isneginf(np.diag(adj)))

    def test_boolean_graph(self):
        adj = boolean_graph(GraphSpec(16, 0.2, seed=0))
        assert adj.dtype == bool
        assert adj.diagonal().all()
        assert not boolean_graph(GraphSpec(16, 0.2, seed=0), reflexive=False).diagonal().any()


class TestMstGraph:
    def test_distinct_weights_and_connectivity(self):
        adj = undirected_distance_graph(GraphSpec(24, 0.1, seed=3))
        upper = adj[np.triu_indices(24, k=1)]
        weights = upper[np.isfinite(upper)]
        assert len(set(weights.tolist())) == len(weights)
        # connected: boolean closure of the finite mask reaches everything
        reach = np.isfinite(adj) | np.eye(24, dtype=bool)
        for _ in range(24):
            reach = reach | ((reach.astype(np.uint8) @ reach.astype(np.uint8)) > 0)
        assert reach.all()

    def test_symmetry_and_diagonal(self):
        adj = undirected_distance_graph(GraphSpec(12, 0.2, seed=0))
        np.testing.assert_array_equal(adj, adj.T)
        assert np.all(np.diag(adj) == 0.0)


class TestFp16Exactness:
    @pytest.mark.parametrize(
        "generator",
        [
            lambda spec: distance_graph(spec),
            lambda spec: dag_distance_graph(spec),
            lambda spec: reliability_graph(spec, maximize=True),
            lambda spec: reliability_graph(spec, maximize=False),
            lambda spec: capacity_graph(spec, maximize=True),
            lambda spec: undirected_distance_graph(spec),
        ],
    )
    def test_weights_survive_fp16(self, generator):
        adj = generator(GraphSpec(20, 0.3, seed=5))
        ring = SEMIRINGS["min-plus"]  # any fp16 ring
        assert representable_input(adj, ring)


class TestStructuredGenerators:
    def test_grid_distances_are_manhattan(self):
        from repro.datasets import grid_distance_graph
        from repro.runtime import closure

        rows, cols = 4, 5
        adj = grid_distance_graph(rows, cols)
        result = closure("min-plus", adj, method="leyzorek")
        for r1 in range(rows):
            for c1 in range(cols):
                for r2 in range(rows):
                    for c2 in range(cols):
                        expected = abs(r1 - r2) + abs(c1 - c2)
                        got = result.matrix[r1 * cols + c1, r2 * cols + c2]
                        assert got == expected

    def test_grid_validation(self):
        from repro.datasets import grid_distance_graph

        with pytest.raises(ValueError, match="positive"):
            grid_distance_graph(0, 4)

    def test_small_world_is_symmetric_and_connected_ring(self):
        from repro.datasets import GraphSpec, small_world_distance_graph

        adj = small_world_distance_graph(
            GraphSpec(24, 0.1, seed=2), rewire_probability=0.0
        )
        np.testing.assert_array_equal(adj, adj.T)
        # With no rewiring, each vertex links its 2 ring neighbours per side.
        finite = np.isfinite(adj) & ~np.eye(24, dtype=bool)
        assert finite.sum(axis=1).min() >= 4

    def test_small_world_validation(self):
        from repro.datasets import GraphSpec, small_world_distance_graph

        with pytest.raises(ValueError, match="neighbours"):
            small_world_distance_graph(GraphSpec(8, 0.1), neighbours=0)
        with pytest.raises(ValueError, match="rewire_probability"):
            small_world_distance_graph(GraphSpec(8, 0.1), rewire_probability=2.0)

    def test_small_world_has_low_diameter(self):
        from repro.datasets import GraphSpec, small_world_distance_graph
        from repro.runtime import closure

        adj = small_world_distance_graph(
            GraphSpec(40, 0.1, seed=3), rewire_probability=0.2
        )
        hops = np.where(np.isfinite(adj) & (adj != 0), 1.0, np.inf)
        np.fill_diagonal(hops, 0.0)
        result = closure("min-plus", hops)
        finite = result.matrix[np.isfinite(result.matrix)]
        assert finite.max() <= 10  # far below the ring diameter of 10+... lattice 40/4

    def test_scale_free_degree_distribution(self):
        from repro.datasets import GraphSpec, scale_free_mask

        mask = scale_free_mask(GraphSpec(200, 0.1, seed=4), attachment=2)
        np.testing.assert_array_equal(mask, mask.T)
        degrees = mask.sum(axis=1)
        # Heavy tail: the max degree dwarfs the median.
        assert degrees.max() >= 4 * np.median(degrees)
        assert degrees.min() >= 2

    def test_scale_free_validation(self):
        from repro.datasets import GraphSpec, scale_free_mask

        with pytest.raises(ValueError, match="attachment"):
            scale_free_mask(GraphSpec(10, 0.1), attachment=0)
        with pytest.raises(ValueError, match="more than"):
            scale_free_mask(GraphSpec(2, 0.1), attachment=2)
