"""Tests for the repo-wide invariant lint (repro.analysis)."""

from __future__ import annotations

import ast
import textwrap
from pathlib import Path

from repro.analysis import (
    BackendResolutionRule,
    ClockDisciplineRule,
    ImportLayeringRule,
    LaunchBracketRule,
    LockDisciplineRule,
    RawMatmulRule,
    SchedulerLoopRule,
    TraceWriteRule,
    default_rules,
    lint_paths,
)

SRC_ROOT = Path(__file__).resolve().parents[2] / "src"


def _check(rule, code: str, relpath: str):
    return list(rule.check(ast.parse(textwrap.dedent(code)), relpath))


class TestTreeIsClean:
    def test_src_tree_lints_clean_with_zero_suppressions(self):
        violations = lint_paths(SRC_ROOT)
        assert violations == [], "\n".join(str(v) for v in violations)

    def test_default_rules_cover_all_eight_invariants(self):
        names = {rule.name for rule in default_rules()}
        assert names == {
            "trace-writes",
            "launch-bracketing",
            "raw-matmul",
            "lock-discipline",
            "backend-resolution",
            "scheduler-loops",
            "clock-discipline",
            "import-layering",
        }


class TestTraceWriteRule:
    def test_flags_trace_write_outside_hooks(self):
        violations = _check(
            TraceWriteRule(),
            """
            def dispatch(ctx):
                ctx.trace.record(make_record())
            """,
            "repro/runtime/kernels.py",
        )
        assert len(violations) == 1
        assert "hook pipeline" in violations[0].message

    def test_flags_record_event_on_any_receiver(self):
        violations = _check(
            TraceWriteRule(),
            """
            def report(sink):
                sink.record_event(evt)
            """,
            "repro/resilience/faults.py",
        )
        assert len(violations) == 1

    def test_hooks_package_is_exempt(self):
        rule = TraceWriteRule()
        assert not rule.applies_to("repro/hooks/builtin.py")
        assert not rule.applies_to("repro/runtime/trace.py")
        assert rule.applies_to("repro/runtime/kernels.py")

    def test_generic_record_needs_trace_receiver(self):
        violations = _check(
            TraceWriteRule(),
            """
            def save(db):
                db.record(row)  # not a Trace: different convention
            """,
            "repro/datasets/store.py",
        )
        assert violations == []


class TestLaunchBracketRule:
    def test_unbracketed_execute_flagged(self):
        violations = _check(
            LaunchBracketRule(),
            """
            def sneaky(impl, compiled, a, b):
                return impl.execute(compiled, a, b, None, context=None)
            """,
            "repro/runtime/kernels.py",
        )
        assert len(violations) == 1
        assert "begin_launch" in violations[0].message

    def test_bracketed_execute_clean(self):
        violations = _check(
            LaunchBracketRule(),
            """
            def dispatch(pipeline, impl, compiled, a, b):
                launch = pipeline.begin_launch(None, "x", None, a, b, None)
                result, stats = impl.execute(compiled, a, b, None, context=None)
                return pipeline.finish_launch(launch, result, stats, 0.0)
            """,
            "repro/runtime/kernels.py",
        )
        assert violations == []

    def test_run_mmo_also_bracketed(self):
        violations = _check(
            LaunchBracketRule(),
            """
            def legacy(impl, op, a, b):
                return impl.run_mmo(op, a, b, None, context=None)
            """,
            "repro/runtime/kernels.py",
        )
        assert len(violations) == 1

    def test_only_runtime_in_scope(self):
        assert not LaunchBracketRule().applies_to("repro/backends/base.py")


class TestRawMatmulRule:
    def test_matmult_operator_flagged(self):
        violations = _check(
            RawMatmulRule(),
            """
            def kernel(a, b):
                return a @ b
            """,
            "repro/backends/vectorized.py",
        )
        assert len(violations) == 1
        assert "(+,x) ring" in violations[0].message

    def test_np_dot_flagged(self):
        violations = _check(
            RawMatmulRule(),
            """
            import numpy as np
            def kernel(a, b):
                return np.dot(a, b)
            """,
            "repro/sparse/spgemm.py",
        )
        assert len(violations) == 1

    def test_designated_helper_exempt(self):
        class Patched(RawMatmulRule):
            SEMIRING_FOLD_HELPERS = frozenset(
                {"repro/backends/vectorized.py::_plus_mul_fold"}
            )

        violations = _check(
            Patched(),
            """
            def _plus_mul_fold(a, b):
                return a @ b
            """,
            "repro/backends/vectorized.py",
        )
        assert violations == []

    def test_out_of_scope_dirs_unchecked(self):
        rule = RawMatmulRule()
        assert not rule.applies_to("repro/core/semiring.py")
        assert not rule.applies_to("repro/apps/linalg.py")


class TestLockDisciplineRule:
    def test_unlocked_access_flagged(self):
        violations = _check(
            LockDisciplineRule(),
            """
            class Trace:
                def __init__(self):
                    self.records = []
                def peek(self):
                    return self.records[-1]
            """,
            "repro/runtime/trace.py",
        )
        assert len(violations) == 1
        assert "outside" in violations[0].message
        assert violations[0].message.startswith("Trace.peek")

    def test_locked_access_clean(self):
        violations = _check(
            LockDisciplineRule(),
            """
            class Trace:
                def __init__(self):
                    self.records = []
                def peek(self):
                    with self._lock:
                        return self.records[-1]
            """,
            "repro/runtime/trace.py",
        )
        assert violations == []

    def test_init_exempt(self):
        violations = _check(
            LockDisciplineRule(),
            """
            class PlanCache:
                def __init__(self):
                    self._entries = {}
                    self._hits = 0
            """,
            "repro/compile/cache.py",
        )
        assert violations == []


class TestBackendResolutionRule:
    def test_literal_get_backend_flagged(self):
        violations = _check(
            BackendResolutionRule(),
            """
            def dispatch(ctx):
                impl = get_backend("sparse")
                return impl
            """,
            "repro/runtime/kernels.py",
        )
        assert len(violations) == 1
        assert "hardcodes a backend" in violations[0].message

    def test_literal_backend_comparison_flagged(self):
        violations = _check(
            BackendResolutionRule(),
            """
            def route(ctx):
                if ctx.backend == "emulate":
                    return slow_path()
                if ctx.backend != "vectorized":
                    return other_path()
            """,
            "repro/resilience/policy.py",
        )
        assert len(violations) == 2

    def test_variable_resolution_clean(self):
        violations = _check(
            BackendResolutionRule(),
            """
            def dispatch(ctx, chosen):
                impl = get_backend(chosen)
                return get_backend(ctx.backend)
            """,
            "repro/runtime/kernels.py",
        )
        assert violations == []

    def test_configuration_defaults_clean(self):
        # Backend names as *configuration* stay legal: constructor
        # keywords and dataclass field defaults are not dispatch.
        violations = _check(
            BackendResolutionRule(),
            """
            import dataclasses

            @dataclasses.dataclass
            class Policy:
                backend: str = "vectorized"

            def make_context():
                return ExecutionContext(backend="sparse")
            """,
            "repro/resilience/policy.py",
        )
        assert violations == []

    def test_scope_is_runtime_and_resilience(self):
        rule = BackendResolutionRule()
        assert rule.applies_to("repro/runtime/kernels.py")
        assert rule.applies_to("repro/resilience/policy.py")
        assert not rule.applies_to("repro/backends/base.py")
        assert not rule.applies_to("repro/plan/planner.py")


class TestSchedulerLoopRule:
    def test_loop_over_execute_compiled_flagged(self):
        violations = _check(
            SchedulerLoopRule(),
            """
            def replay(compiled, chunks, ctx):
                outs = []
                for a, b in chunks:
                    out, _ = execute_compiled(compiled, a, b, context=ctx)
                    outs.append(out)
                return outs
            """,
            "repro/runtime/kernels.py",
        )
        assert len(violations) == 1
        assert "LaunchGraph" in violations[0].message

    def test_while_loop_and_method_call_flagged(self):
        violations = _check(
            SchedulerLoopRule(),
            """
            def iterate(kernels, compiled, a, b, ctx):
                while not done(a):
                    a, _ = kernels.execute_compiled(compiled, a, b, context=ctx)
                return a
            """,
            "repro/runtime/closure.py",
        )
        assert len(violations) == 1

    def test_single_shot_call_clean(self):
        violations = _check(
            SchedulerLoopRule(),
            """
            def once(compiled, a, b, ctx):
                return execute_compiled(compiled, a, b, context=ctx)
            """,
            "repro/runtime/kernels.py",
        )
        assert violations == []

    def test_sched_package_exempt(self):
        rule = SchedulerLoopRule()
        assert not rule.applies_to("repro/sched/executor.py")
        assert rule.applies_to("repro/runtime/kernels.py")
        assert rule.applies_to("repro/resilience/policy.py")


class TestClockDisciplineRule:
    def test_raw_time_calls_flagged(self):
        violations = _check(
            ClockDisciplineRule(),
            """
            import time
            def timed(impl, compiled, a, b, ctx):
                start = time.perf_counter()
                out = impl.execute(compiled, a, b, None, context=ctx)
                return out, time.perf_counter() - start
            """,
            "repro/runtime/kernels.py",
        )
        assert len(violations) == 2
        assert "injectable Clock" in violations[0].message

    def test_raw_sleep_flagged(self):
        violations = _check(
            ClockDisciplineRule(),
            """
            import time
            def backoff(delay):
                time.sleep(delay)
            """,
            "repro/resilience/policy.py",
        )
        assert len(violations) == 1

    def test_from_time_import_flagged(self):
        violations = _check(
            ClockDisciplineRule(),
            """
            from time import sleep
            def backoff(delay):
                sleep(delay)
            """,
            "repro/resilience/policy.py",
        )
        assert len(violations) == 1
        assert "from time import" in violations[0].message

    def test_clock_module_exempt(self):
        rule = ClockDisciplineRule()
        assert not rule.applies_to("repro/resilience/clock.py")
        assert rule.applies_to("repro/runtime/kernels.py")
        assert rule.applies_to("repro/plan/autotune.py")

    def test_clock_protocol_calls_clean(self):
        violations = _check(
            ClockDisciplineRule(),
            """
            def timed(clock, impl, compiled, a, b, ctx):
                start = clock.now()
                clock.sleep(0.0)
                return impl.execute(compiled, a, b, None, context=ctx), clock.now() - start
            """,
            "repro/runtime/kernels.py",
        )
        assert violations == []


class TestImportLayeringRule:
    def test_upward_import_flagged(self):
        violations = _check(
            ImportLayeringRule(),
            "from repro.runtime.context import ExecutionContext\n",
            "repro/compile/lower.py",
        )
        assert len(violations) == 1
        assert "upward" in violations[0].message

    def test_downward_import_clean(self):
        violations = _check(
            ImportLayeringRule(),
            "from repro.isa.program import Program\n",
            "repro/runtime/kernels.py",
        )
        assert violations == []

    def test_equal_layer_cycle_allowed(self):
        violations = _check(
            ImportLayeringRule(),
            "from repro.hooks.pipeline import emit_event\n",
            "repro/runtime/closure.py",
        )
        assert violations == []

    def test_type_checking_guard_exempt(self):
        violations = _check(
            ImportLayeringRule(),
            """
            from typing import TYPE_CHECKING
            if TYPE_CHECKING:
                from repro.runtime.context import ExecutionContext
            """,
            "repro/compile/lower.py",
        )
        assert violations == []

    def test_function_local_import_exempt(self):
        violations = _check(
            ImportLayeringRule(),
            """
            def build():
                from repro.runtime.api import TileProgramBuilder
                return TileProgramBuilder
            """,
            "repro/compile/lower.py",
        )
        assert violations == []

    def test_stdlib_untouched(self):
        violations = _check(
            ImportLayeringRule(),
            "import threading\nimport numpy as np\n",
            "repro/core/semiring.py",
        )
        assert violations == []
