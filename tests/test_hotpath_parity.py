"""Parity of the vectorized hot paths against their scalar references.

The emulator's batched warp-mmo decomposition and the vectorized spGEMM
merge replaced per-scalar Python loops that are kept in-tree as oracles
(``WarpExecutor(batched_mmo=False)`` / :func:`spgemm_reference`).  These
property-based tests sweep random shapes and densities across all nine
rings and assert bit-identical values *and* identical statistics, plus
emulate-backend coverage for split-k and the parallel launch mode.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backends import capabilities_of, get_backend, list_backends
from repro.core import SEMIRINGS
from repro.hw.device import Simd2Device
from repro.runtime.kernels import mmo_tiled, mmo_tiled_split_k
from repro.sparse import CsrMatrix, spgemm, spgemm_reference

ring_names = st.sampled_from(sorted(SEMIRINGS))
dims = st.integers(1, 40)
seeds = st.integers(0, 2**32 - 1)


def _dense_operands(ring, m, k, n, seed, continuous=False):
    """Random dense operands; ``continuous=True`` draws non-integer floats.

    Integer-valued floats make every intermediate sum exactly
    representable, which hides accumulation-order divergences; the
    continuous cases are what actually exercise bit-exactness claims
    where rounding matters.
    """
    rng = np.random.default_rng(seed)
    if ring.is_boolean():
        return rng.random((m, k)) < 0.4, rng.random((k, n)) < 0.4
    if continuous:
        return rng.random((m, k)) * 12 - 6, rng.random((k, n)) * 12 - 6
    a = rng.integers(-6, 7, (m, k)).astype(np.float64)
    b = rng.integers(-6, 7, (k, n)).astype(np.float64)
    return a, b


def _sparse_operands(ring, m, k, n, density, seed, continuous=False):
    rng = np.random.default_rng(seed)
    if ring.is_boolean():
        a = rng.random((m, k)) < density
        b = rng.random((k, n)) < density
        implicit = False
    else:
        implicit = float(ring.oplus_identity)

        def explicit(shape):
            if continuous:
                # [0.5, 8.5): never collides with 0 / ±inf implicit values.
                return rng.random(shape) * 8 + 0.5
            return rng.integers(1, 9, shape)

        a = np.where(
            rng.random((m, k)) < density, explicit((m, k)), implicit
        ).astype(float)
        b = np.where(
            rng.random((k, n)) < density, explicit((k, n)), implicit
        ).astype(float)
    return CsrMatrix.from_dense(a, implicit=implicit), CsrMatrix.from_dense(
        b, implicit=implicit
    )


@pytest.mark.parametrize("backend", list_backends())
@pytest.mark.parametrize("name", sorted(SEMIRINGS))
class TestRegistryBackendParity:
    """Registry-driven cross-backend agreement, all backends × all rings.

    Every *registered* backend — including any added after this test was
    written — is compared against the vectorised reference: bit-exact for
    the idempotent-⊕ rings (min/max/or selections commute with any fold
    order), allclose for the plus-based rings (float ⊕ reassociates
    across backends' different reduction orders).

    Backends declare which rings they can run
    (:class:`~repro.backends.BackendCapabilities`); combinations a
    backend excludes — e.g. sparse × the non-⊗-absorbing rings — are
    skipped here and rejected with a :class:`BackendError` at dispatch.
    """

    def _skip_if_incapable(self, backend, name, *, has_accumulator=False):
        caps = capabilities_of(get_backend(backend))
        if not caps.supports(name, has_accumulator=has_accumulator):
            pytest.skip(f"backend {backend!r} declares no support for {name}")

    def _operands(self, ring, m, k, n, seed):
        rng = np.random.default_rng(seed)
        if ring.is_boolean():
            return (
                rng.random((m, k)) < 0.4,
                rng.random((k, n)) < 0.4,
                rng.random((m, n)) < 0.2,
            )
        # Continuous positive values in [0.5, 8.5): exactly the regime
        # where fold order matters, and never colliding with a ring's
        # ⊕ identity (0 or ±inf), so sparse compression stays non-trivial.
        return (
            rng.uniform(0.5, 8.5, (m, k)),
            rng.uniform(0.5, 8.5, (k, n)),
            rng.uniform(0.5, 8.5, (m, n)),
        )

    def _assert_agrees(self, ring, got, expected):
        assert got.dtype == expected.dtype
        if ring.oplus is np.add:
            np.testing.assert_allclose(
                got.astype(np.float64), expected.astype(np.float64), rtol=1e-5
            )
        else:
            np.testing.assert_array_equal(got, expected)

    def test_matches_vectorized_reference(self, name, backend):
        self._skip_if_incapable(backend, name, has_accumulator=True)
        ring = SEMIRINGS[name]
        a, b, c = self._operands(ring, 23, 37, 19, seed=0xA11CE)
        expected, ref_stats = mmo_tiled(name, a, b, c, backend="vectorized")
        got, stats = mmo_tiled(name, a, b, c, backend=backend)
        self._assert_agrees(ring, got, expected)
        # Identical tile grids ⇒ identical static instruction counts,
        # whatever substrate executed them (the paper's cross-check).
        assert (stats.tiles_m, stats.tiles_n, stats.tiles_k) == (
            ref_stats.tiles_m, ref_stats.tiles_n, ref_stats.tiles_k,
        )
        assert stats.mmo_instructions == ref_stats.mmo_instructions

    def test_no_accumulator(self, name, backend):
        self._skip_if_incapable(backend, name)
        ring = SEMIRINGS[name]
        a, b, _ = self._operands(ring, 16, 16, 16, seed=0xBEE)
        expected, _ = mmo_tiled(name, a, b, backend="vectorized")
        got, _ = mmo_tiled(name, a, b, backend=backend)
        self._assert_agrees(ring, got, expected)

    def test_degenerate_inner_dimension(self, name, backend):
        self._skip_if_incapable(backend, name)
        ring = SEMIRINGS[name]
        a = np.zeros((5, 0), dtype=ring.output_dtype)
        b = np.zeros((0, 4), dtype=ring.output_dtype)
        got, stats = mmo_tiled(name, a, b, backend=backend)
        np.testing.assert_array_equal(got, ring.full((5, 4)))
        assert stats.tiles_k == 1
        assert (
            stats.mmo_instructions
            == stats.tiles_m * stats.tiles_n * stats.tiles_k
        )


class TestBatchedMmoParity:
    @given(ring_names, dims, dims, dims, seeds, st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_batched_bit_identical_to_scalar(
        self, name, m, k, n, seed, continuous
    ):
        ring = SEMIRINGS[name]
        a, b = _dense_operands(ring, m, k, n, seed, continuous=continuous)
        batched, s_batched = mmo_tiled(name, a, b, backend="emulate")
        scalar, s_scalar = mmo_tiled(
            name, a, b, backend="emulate",
            device=Simd2Device(sm_count=4, batched_mmo=False),
        )
        np.testing.assert_array_equal(batched, scalar)
        assert batched.dtype == scalar.dtype
        assert s_batched.execution.unit_ops == s_scalar.execution.unit_ops
        assert s_batched.execution.mmos == s_scalar.execution.mmos

    @given(ring_names, dims, dims, dims, seeds, st.booleans())
    @settings(max_examples=15, deadline=None)
    def test_parallel_launch_is_deterministic(
        self, name, m, k, n, seed, continuous
    ):
        ring = SEMIRINGS[name]
        a, b = _dense_operands(ring, m, k, n, seed, continuous=continuous)
        serial, s_serial = mmo_tiled(name, a, b, backend="emulate")
        parallel, s_parallel = mmo_tiled(
            name, a, b, backend="emulate",
            device=Simd2Device(sm_count=4, parallel=True),
        )
        np.testing.assert_array_equal(serial, parallel)
        assert s_serial.execution == s_parallel.execution

    @given(ring_names, seeds, st.booleans())
    @settings(max_examples=10, deadline=None)
    def test_split_k_emulate_backend(self, name, seed, continuous):
        ring = SEMIRINGS[name]
        a, b = _dense_operands(ring, 17, 50, 9, seed, continuous=continuous)
        expected, _ = mmo_tiled(name, a, b)
        got, stats_list = mmo_tiled_split_k(
            name, a, b, splits=3, backend="emulate"
        )
        if continuous and ring.oplus is np.add:
            # Split-k reassociates the k-reduction into partials; float +
            # is only approximately associative, so plus-based rings on
            # continuous operands match to rounding, not bit-exactly.  The
            # atol covers near-zero outputs from catastrophic cancellation,
            # where relative error is unbounded by construction.
            np.testing.assert_allclose(got, expected, rtol=1e-4, atol=1e-4)
        else:
            np.testing.assert_array_equal(got, expected)
        assert len(stats_list) == 3
        for stats in stats_list:
            assert stats.execution is not None  # each split really emulated
            assert stats.execution.mmos == stats.mmo_instructions


class TestSpgemmParity:
    @given(
        ring_names, dims, dims, dims,
        st.sampled_from([0.05, 0.2, 0.5, 0.9]), seeds, st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_vectorized_bit_identical_to_reference(
        self, name, m, k, n, density, seed, continuous
    ):
        ring = SEMIRINGS[name]
        a, b = _sparse_operands(
            ring, m, k, n, density, seed, continuous=continuous
        )
        got, stats = spgemm(name, a, b)
        ref, ref_stats = spgemm_reference(name, a, b)
        np.testing.assert_array_equal(got.indptr, ref.indptr)
        np.testing.assert_array_equal(got.indices, ref.indices)
        np.testing.assert_array_equal(got.data, ref.data)
        assert got.data.dtype == ref.data.dtype
        assert stats == ref_stats

    @given(ring_names, seeds, st.booleans())
    @settings(max_examples=15, deadline=None)
    def test_keep_identity_parity(self, name, seed, continuous):
        ring = SEMIRINGS[name]
        a, b = _sparse_operands(
            ring, 12, 12, 12, 0.5, seed, continuous=continuous
        )
        got, _ = spgemm(name, a, b, keep_identity=True)
        ref, _ = spgemm_reference(name, a, b, keep_identity=True)
        np.testing.assert_array_equal(got.indptr, ref.indptr)
        np.testing.assert_array_equal(got.indices, ref.indices)
        np.testing.assert_array_equal(got.data, ref.data)

    def test_long_segment_fold_order_regression(self):
        """Regression: ``np.add.reduceat`` reduces segments longer than 8
        pairwise, which silently broke bit-parity with the scalar left fold
        for plus-based rings.  Dense-ish continuous-float operands force
        many >8-contribution columns through the merge.
        """
        for name in ("plus-mul", "plus-norm", "min-plus", "max-plus"):
            a, b = _sparse_operands(
                SEMIRINGS[name], 30, 60, 45, 0.6, seed=7, continuous=True
            )
            got, stats = spgemm(name, a, b)
            ref, ref_stats = spgemm_reference(name, a, b)
            np.testing.assert_array_equal(got.indptr, ref.indptr)
            np.testing.assert_array_equal(got.indices, ref.indices)
            np.testing.assert_array_equal(got.data, ref.data)
            assert stats == ref_stats
