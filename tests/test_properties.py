"""Property-based tests (hypothesis) on core algebraic invariants.

These cover laws that parametrised unit tests cannot sweep exhaustively:
semiring axioms over random operands, tiling equivalence over arbitrary
shapes, closure fixpoints, sparse/dense agreement, and structured-sparsity
invariants.  Inputs are small integers so fp arithmetic is exact and every
property can assert bitwise equality.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import SEMIRINGS, mmo
from repro.runtime import closure, mmo_tiled
from repro.sparse import CsrMatrix, check_2_4, prune_2_4, spgemm
from repro.apps.mst import UnionFind

ring_names = st.sampled_from(sorted(SEMIRINGS))
dims = st.integers(1, 24)
seeds = st.integers(0, 2**32 - 1)


def _random_operands(ring, m, k, n, seed):
    rng = np.random.default_rng(seed)
    if ring.is_boolean():
        return rng.random((m, k)) < 0.5, rng.random((k, n)) < 0.5
    a = rng.integers(-6, 7, (m, k)).astype(np.float64)
    b = rng.integers(-6, 7, (k, n)).astype(np.float64)
    return a, b


def _random_values(ring, shape, seed):
    rng = np.random.default_rng(seed)
    if ring.is_boolean():
        return rng.random(shape) < 0.5
    return rng.integers(-6, 7, shape).astype(ring.output_dtype)


class TestSemiringAxioms:
    @given(ring_names, seeds)
    @settings(max_examples=60)
    def test_oplus_associative_and_commutative(self, name, seed):
        ring = SEMIRINGS[name]
        x = _random_values(ring, 16, seed)
        y = _random_values(ring, 16, seed + 1)
        z = _random_values(ring, 16, seed + 2)
        left = ring.oplus(ring.oplus(x, y), z)
        right = ring.oplus(x, ring.oplus(y, z))
        np.testing.assert_array_equal(np.asarray(left), np.asarray(right))
        np.testing.assert_array_equal(
            np.asarray(ring.oplus(x, y)), np.asarray(ring.oplus(y, x))
        )

    @given(ring_names, seeds)
    @settings(max_examples=60)
    def test_otimes_commutative(self, name, seed):
        ring = SEMIRINGS[name]
        x = _random_values(ring, 16, seed)
        y = _random_values(ring, 16, seed + 1)
        np.testing.assert_array_equal(
            np.asarray(ring.otimes(x, y)), np.asarray(ring.otimes(y, x))
        )

    @given(ring_names, seeds)
    @settings(max_examples=60)
    def test_otimes_associative_where_claimed(self, name, seed):
        ring = SEMIRINGS[name]
        if not ring.associative_otimes:
            return  # plus-norm: (a-b)² is documented as non-associative
        x = _random_values(ring, 16, seed)
        y = _random_values(ring, 16, seed + 1)
        z = _random_values(ring, 16, seed + 2)
        left = ring.otimes(np.asarray(ring.otimes(x, y), ring.output_dtype), z)
        right = ring.otimes(x, np.asarray(ring.otimes(y, z), ring.output_dtype))
        np.testing.assert_array_equal(
            np.asarray(left, dtype=ring.output_dtype),
            np.asarray(right, dtype=ring.output_dtype),
        )

    @given(ring_names, seeds)
    @settings(max_examples=60)
    def test_identity_neutral(self, name, seed):
        ring = SEMIRINGS[name]
        x = _random_values(ring, 16, seed)
        ident = ring.full((16,))
        np.testing.assert_array_equal(
            np.asarray(ring.oplus(x.astype(ring.output_dtype), ident)),
            x.astype(ring.output_dtype),
        )

    @given(ring_names, seeds)
    @settings(max_examples=60)
    def test_k_padding_pair_is_absorbed(self, name, seed):
        # Appending one padded inner step must never change an mmo result.
        ring = SEMIRINGS[name]
        a, b = _random_operands(ring, 5, 4, 6, seed)
        a_pad = np.concatenate(
            [a, np.full((5, 1), ring.k_pad_a, dtype=np.asarray(a).dtype if not ring.is_boolean() else bool)],
            axis=1,
        )
        b_pad = np.concatenate(
            [b, np.full((1, 6), ring.k_pad_b, dtype=np.asarray(b).dtype if not ring.is_boolean() else bool)],
            axis=0,
        )
        np.testing.assert_array_equal(mmo(ring, a_pad, b_pad), mmo(ring, a, b))


class TestTilingEquivalence:
    @given(ring_names, dims, dims, dims, seeds)
    @settings(max_examples=40, deadline=None)
    def test_tiled_equals_oracle_for_any_shape(self, name, m, k, n, seed):
        ring = SEMIRINGS[name]
        a, b = _random_operands(ring, m, k, n, seed)
        tiled, _ = mmo_tiled(ring, a, b)
        np.testing.assert_array_equal(tiled, mmo(ring, a, b))

    @given(ring_names, st.integers(2, 20), st.integers(2, 20), seeds)
    @settings(max_examples=40, deadline=None)
    def test_k_splitting_composes(self, name, k1, k2, seed):
        # mmo over [A1|A2] × [B1;B2] == mmo(A2,B2, C=mmo(A1,B1)).
        ring = SEMIRINGS[name]
        a, b = _random_operands(ring, 7, k1 + k2, 9, seed)
        whole = mmo(ring, a, b)
        partial = mmo(ring, a[:, :k1], b[:k1, :])
        composed = mmo(ring, a[:, k1:], b[k1:, :], partial)
        if name in ("plus-mul", "plus-norm"):
            np.testing.assert_allclose(composed, whole, rtol=1e-6, atol=1e-6)
        else:
            np.testing.assert_array_equal(composed, whole)


class TestClosureProperties:
    @given(st.integers(3, 18), st.floats(0.05, 0.5), seeds)
    @settings(max_examples=30, deadline=None)
    def test_fixpoint_is_idempotent(self, n, density, seed):
        rng = np.random.default_rng(seed)
        adj = np.where(
            rng.random((n, n)) < density, rng.integers(1, 9, (n, n)), np.inf
        ).astype(float)
        np.fill_diagonal(adj, 0.0)
        result = closure("min-plus", adj, method="leyzorek")
        again, _ = mmo_tiled("min-plus", result.matrix, result.matrix, result.matrix)
        np.testing.assert_array_equal(again, result.matrix)

    @given(st.integers(3, 14), seeds)
    @settings(max_examples=30, deadline=None)
    def test_methods_agree(self, n, seed):
        rng = np.random.default_rng(seed)
        adj = np.where(
            rng.random((n, n)) < 0.3, rng.integers(1, 9, (n, n)), np.inf
        ).astype(float)
        np.fill_diagonal(adj, 0.0)
        ley = closure("min-plus", adj, method="leyzorek")
        bf = closure("min-plus", adj, method="bellman-ford")
        np.testing.assert_array_equal(ley.matrix, bf.matrix)

    @given(st.integers(3, 14), seeds)
    @settings(max_examples=30, deadline=None)
    def test_distances_satisfy_triangle_inequality(self, n, seed):
        rng = np.random.default_rng(seed)
        adj = np.where(
            rng.random((n, n)) < 0.4, rng.integers(1, 9, (n, n)), np.inf
        ).astype(float)
        np.fill_diagonal(adj, 0.0)
        dist = closure("min-plus", adj).matrix
        # through[i, j] = min_k dist[i, k] + dist[k, j]
        through = np.min(dist[:, :, None] + dist[None, :, :], axis=1)
        # dist[i,j] ≤ dist[i,k] + dist[k,j] for all k (k = j gives equality)
        assert np.all(dist <= np.asarray(through, dtype=np.float32) + 1e-4)


class TestSparseProperties:
    @given(st.integers(1, 16), st.integers(1, 16), st.floats(0.0, 1.0), seeds)
    @settings(max_examples=50, deadline=None)
    def test_csr_round_trip(self, rows, cols, density, seed):
        rng = np.random.default_rng(seed)
        dense = np.where(
            rng.random((rows, cols)) < density, rng.integers(1, 99, (rows, cols)), 0
        ).astype(np.float32)
        csr = CsrMatrix.from_dense(dense)
        np.testing.assert_array_equal(csr.to_dense(), dense)
        np.testing.assert_array_equal(csr.transpose().to_dense(), dense.T)

    @given(st.integers(1, 12), st.integers(1, 12), st.integers(1, 12), seeds)
    @settings(max_examples=40, deadline=None)
    def test_spgemm_agrees_with_dense(self, m, k, n, seed):
        rng = np.random.default_rng(seed)
        a = np.where(rng.random((m, k)) < 0.4, rng.integers(1, 9, (m, k)), 0).astype(float)
        b = np.where(rng.random((k, n)) < 0.4, rng.integers(1, 9, (k, n)), 0).astype(float)
        sparse_result, _ = spgemm("plus-mul", CsrMatrix.from_dense(a), CsrMatrix.from_dense(b))
        np.testing.assert_array_equal(
            sparse_result.to_dense().astype(np.float32), mmo("plus-mul", a, b)
        )


class TestStructuredSparsityProperties:
    @given(st.integers(1, 12), st.integers(1, 8), seeds)
    @settings(max_examples=50)
    def test_prune_is_idempotent_and_valid(self, rows, groups, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.normal(size=(rows, groups * 4)).astype(np.float32)
        pruned = prune_2_4(matrix)
        assert check_2_4(pruned)
        np.testing.assert_array_equal(prune_2_4(pruned), pruned)

    @given(st.integers(1, 12), st.integers(1, 8), seeds)
    @settings(max_examples=50)
    def test_prune_keeps_largest_magnitudes(self, rows, groups, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.normal(size=(rows, groups * 4)).astype(np.float32)
        pruned = prune_2_4(matrix)
        kept = np.abs(matrix.reshape(rows, groups, 4))
        for r in range(rows):
            for g in range(groups):
                survivors = np.abs(pruned.reshape(rows, groups, 4)[r, g])
                dropped_max = kept[r, g][survivors == 0].max(initial=0.0)
                kept_min = survivors[survivors > 0].min(initial=np.inf)
                assert dropped_max <= kept_min + 1e-6


class TestUnionFindProperties:
    @given(st.integers(2, 30), st.lists(st.tuples(st.integers(0, 29), st.integers(0, 29)), max_size=60), seeds)
    @settings(max_examples=50)
    def test_matches_reachability_oracle(self, n, pairs, seed):
        pairs = [(a % n, b % n) for a, b in pairs]
        uf = UnionFind(n)
        adj = np.eye(n, dtype=bool)
        for a, b in pairs:
            uf.union(a, b)
            adj[a, b] = adj[b, a] = True
        reach = adj.copy()
        for _ in range(n):
            reach = reach | ((reach.astype(np.uint8) @ reach.astype(np.uint8)) > 0)
        for i in range(n):
            for j in range(n):
                assert (uf.find(i) == uf.find(j)) == bool(reach[i, j])
