"""Tests for retry policies, fallback chains, and resilient_mmo."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SEMIRINGS, mmo
from repro.resilience import (
    CorruptionDetected,
    FallbackChain,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    ResilienceError,
    ResilienceExhausted,
    RetryPolicy,
    resilient_mmo,
)
from repro.runtime import RuntimeError_, Trace, use_context
from tests.conftest import make_ring_inputs


class TestRetryPolicy:
    def test_negative_retries_rejected(self):
        with pytest.raises(ResilienceError, match="max_retries"):
            RetryPolicy(max_retries=-1)

    def test_attempt_budget(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.max_attempts == 3
        corrupted = CorruptionDetected.__new__(CorruptionDetected)
        assert policy.should_retry(InjectedFault("x"), 0)
        assert policy.should_retry(InjectedFault("x"), 1)
        assert not policy.should_retry(InjectedFault("x"), 2)
        assert not policy.should_retry(ValueError("x"), 0)
        del corrupted

    def test_zero_retries_means_one_attempt(self):
        assert RetryPolicy(max_retries=0).max_attempts == 1


class TestFallbackChain:
    def test_plan_starts_at_context_backend_and_dedups(self):
        chain = FallbackChain(backends=("vectorized", "emulate"))
        assert chain.plan("vectorized") == ("vectorized", "emulate")
        assert chain.plan("emulate") == ("emulate", "vectorized")
        assert chain.plan("sparse") == ("sparse", "vectorized", "emulate")

    def test_should_fall_back_classification(self):
        chain = FallbackChain()
        assert chain.should_fall_back(InjectedFault("x"))
        assert not chain.should_fall_back(ValueError("x"))

    def test_default_chain_uses_planner_order(self):
        chain = FallbackChain()  # backends=None -> planner-ranked
        order = chain.plan("emulate", ring="min-plus")
        assert order[0] == "emulate"
        assert set(order) == {"emulate", "vectorized", "sparse"}
        assert "auto" not in order  # planning backends never self-nominate

    def test_default_chain_capability_filters(self):
        # The sparse backend cannot run plus-norm (its ⊕ identity is not
        # ⊗-absorbing), so the planner-ordered chain never routes there.
        order = FallbackChain().plan("vectorized", ring="plus-norm")
        assert order[0] == "vectorized"
        assert "sparse" not in order

    def test_default_chain_is_density_aware(self, rng):
        sr = SEMIRINGS["min-plus"]
        dense = rng.random((128, 128))
        sparse_op = np.full((128, 128), np.inf)
        idx = rng.integers(0, 128, 60)
        sparse_op[idx, rng.integers(0, 128, 60)] = 1.0
        chain = FallbackChain()
        dense_order = chain.plan("emulate", ring=sr, a=dense, b=dense)
        sparse_order = chain.plan("emulate", ring=sr, a=sparse_op, b=sparse_op)
        # Near-empty operands rank the sparse backend ahead of where it
        # lands for full operands.
        assert sparse_order.index("sparse") <= dense_order.index("sparse")


class TestResilientMmo:
    def test_clean_run_parity(self, ring, rng):
        a, b, c = make_ring_inputs(ring, 32, 16, 32, rng)
        checked = ring.name != "plus-norm" and not (
            ring.otimes is np.multiply and ring.oplus in (np.minimum, np.maximum)
        )
        d, _ = resilient_mmo(ring, a, b, c, checked=checked)
        np.testing.assert_array_equal(d, mmo(ring, a, b, c))

    def test_transient_corruption_recovered_by_retry(self, rng):
        a, b, c = make_ring_inputs(SEMIRINGS["min-plus"], 48, 16, 48, rng)
        trace = Trace()
        plan = FaultPlan(seed=2, corrupt={0: FaultSpec(kind="nan")})
        with use_context(backend="vectorized", fault_plan=plan, trace=trace) as ctx:
            d, _ = resilient_mmo("min-plus", a, b, c, context=ctx)
        np.testing.assert_array_equal(d, mmo("min-plus", a, b, c))
        summary = trace.summary()
        assert summary.retries == 1
        assert summary.corruptions_detected == 1
        assert summary.fallbacks == 0

    def test_persistent_failure_falls_back_to_next_backend(self, rng):
        a, b, _ = make_ring_inputs(SEMIRINGS["min-plus"], 32, 16, 32, rng, with_c=False)
        trace = Trace()
        # Drop the first three launches: the first backend's whole attempt
        # budget.  Launch 3 (first attempt on the fallback backend) is clean.
        plan = FaultPlan(drop=(0, 1, 2))
        with use_context(backend="vectorized", fault_plan=plan, trace=trace) as ctx:
            d, _ = resilient_mmo("min-plus", a, b, context=ctx)
        np.testing.assert_array_equal(d, mmo("min-plus", a, b))
        summary = trace.summary()
        assert summary.retries == 2
        assert summary.fallbacks == 1
        assert trace.events_of("fallback")[0].backend == "emulate"

    def test_exhaustion_raises_with_cause_chain(self, rng):
        a, b, _ = make_ring_inputs(SEMIRINGS["min-plus"], 16, 16, 16, rng, with_c=False)
        plan = FaultPlan(drop=range(100))
        with use_context(backend="vectorized", fault_plan=plan) as ctx:
            with pytest.raises(ResilienceExhausted) as excinfo:
                resilient_mmo("min-plus", a, b, context=ctx)
        names = [name for name, _ in excinfo.value.causes]
        # Planner-ordered chain: the context's backend first, then every
        # other capable backend in ranked (cheapest-first) order.
        assert names[0] == "vectorized"
        assert set(names) == {"vectorized", "sparse", "emulate"}
        assert all(isinstance(exc, InjectedFault) for _, exc in excinfo.value.causes)

    def test_non_recoverable_errors_propagate_immediately(self, rng):
        a = rng.random((16, 16))
        bad_b = rng.random((8, 16))  # shape mismatch: retrying cannot help
        plan = FaultPlan()
        with use_context(backend="vectorized", fault_plan=plan) as ctx:
            with pytest.raises(RuntimeError_, match="bad mmo operand shapes"):
                resilient_mmo("min-plus", a, bad_b, context=ctx)
        assert plan.launches_seen == 0

    def test_retry_budget_is_respected(self, rng):
        a, b, _ = make_ring_inputs(SEMIRINGS["min-plus"], 16, 16, 16, rng, with_c=False)
        plan = FaultPlan(drop=range(100))
        policy = RetryPolicy(max_retries=0)
        with use_context(backend="vectorized", fault_plan=plan) as ctx:
            with pytest.raises(ResilienceExhausted):
                resilient_mmo("min-plus", a, b, context=ctx, retry=policy)
        # one attempt per backend in the planner-ordered chain, no retries
        chain = FallbackChain().plan("vectorized", ring="min-plus", a=a, b=b)
        assert plan.launches_seen == len(chain)


class TestErrorTaxonomy:
    """Satellite regression: permanent errors must never be retried."""

    def test_classify_buckets(self):
        from repro.compile.artifact import CompileError
        from repro.resilience import DeviceFailure, classify
        from repro.resilience.checksum import CorruptionDetected
        from repro.runtime.kernels import OperandValidationError

        assert classify(OperandValidationError("bad shapes")) == "permanent"
        assert classify(CompileError("no lowering")) == "permanent"
        assert classify(DeviceFailure(0, "device fell over")) == "transient"
        assert classify(InjectedFault("dropped")) == "transient"
        corrupt = CorruptionDetected.__new__(CorruptionDetected)
        assert classify(corrupt) == "transient"
        assert classify(ValueError("?")) == "unknown"

    def test_blanket_retry_on_still_refuses_permanent(self):
        from repro.compile.artifact import CompileError
        from repro.runtime.kernels import OperandValidationError

        greedy = RetryPolicy(max_retries=5, retry_on=(Exception,))
        assert not greedy.should_retry(OperandValidationError("x"), 0)
        assert not greedy.should_retry(CompileError("x"), 0)
        assert greedy.should_retry(InjectedFault("x"), 0)

    def test_blanket_fallback_on_still_refuses_permanent(self):
        from repro.runtime.kernels import OperandValidationError

        greedy = FallbackChain(
            backends=("vectorized", "emulate"), fallback_on=(Exception,)
        )
        assert not greedy.should_fall_back(OperandValidationError("x"))
        assert greedy.should_fall_back(InjectedFault("x"))

    def test_greedy_policy_no_longer_burns_launches_on_caller_bugs(self, rng):
        # The original bug: a blanket retry_on retried shape-validation
        # errors, re-running the same rejection max_retries times.
        a = rng.random((16, 16))
        bad_b = rng.random((8, 16))
        plan = FaultPlan()
        greedy = RetryPolicy(max_retries=5, retry_on=(Exception,))
        with use_context(backend="vectorized", fault_plan=plan) as ctx:
            with pytest.raises(RuntimeError_, match="bad mmo operand shapes"):
                resilient_mmo(
                    "min-plus", a, bad_b, context=ctx, retry=greedy,
                    fallback=FallbackChain(
                        backends=("vectorized", "emulate"),
                        fallback_on=(Exception,),
                    ),
                )
        assert plan.launches_seen == 0


class TestBackoff:
    def test_defaults_sleep_nothing(self):
        policy = RetryPolicy()
        assert policy.backoff_s(0) == 0.0
        assert policy.backoff_s(7) == 0.0

    def test_exponential_with_cap(self):
        policy = RetryPolicy(
            backoff_base_s=1.0, backoff_factor=2.0, backoff_max_s=5.0
        )
        assert policy.backoff_s(0) == 1.0
        assert policy.backoff_s(1) == 2.0
        assert policy.backoff_s(2) == 4.0
        assert policy.backoff_s(3) == 5.0  # capped

    def test_jitter_is_seeded_and_bounded(self):
        policy = RetryPolicy(
            max_retries=4, backoff_base_s=1.0, jitter=0.5, seed=42
        )
        delays = [policy.backoff_s(n) for n in range(4)]
        replays = [policy.backoff_s(n) for n in range(4)]
        assert delays == replays  # pure function of (policy, attempt)
        for n, delay in enumerate(delays):
            base = min(1.0 * 2.0 ** n, policy.backoff_max_s)
            assert 0.5 * base <= delay <= 1.5 * base
        other = RetryPolicy(
            max_retries=4, backoff_base_s=1.0, jitter=0.5, seed=43
        )
        assert [other.backoff_s(n) for n in range(4)] != delays

    def test_bad_backoff_parameters_rejected(self):
        with pytest.raises(ResilienceError, match="backoff_base_s"):
            RetryPolicy(backoff_base_s=-1.0)
        with pytest.raises(ResilienceError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ResilienceError, match="jitter"):
            RetryPolicy(jitter=2.0)

    def test_retry_sleeps_flow_through_the_context_clock(self, rng):
        from repro.resilience import VirtualClock

        a, b, _ = make_ring_inputs(
            SEMIRINGS["min-plus"], 16, 16, 16, rng, with_c=False
        )
        clock = VirtualClock()
        plan = FaultPlan(drop=(0, 1))
        policy = RetryPolicy(max_retries=2, backoff_base_s=1.0)
        with use_context(
            backend="vectorized", fault_plan=plan, clock=clock
        ) as ctx:
            result, _ = resilient_mmo("min-plus", a, b, context=ctx, retry=policy)
        # Two retries: backoff slept 1s then 2s, all on the virtual clock.
        assert clock.sleeps == 2
        assert clock.slept_s == pytest.approx(3.0)
        np.testing.assert_array_equal(result, mmo("min-plus", a, b))

    def test_backoff_sleeps_charged_against_the_deadline(self, rng):
        from repro.resilience import (
            DeadlineExceeded,
            ExecutionBudget,
            VirtualClock,
        )

        a, b, _ = make_ring_inputs(
            SEMIRINGS["min-plus"], 16, 16, 16, rng, with_c=False
        )
        clock = VirtualClock()
        budget = ExecutionBudget(deadline_s=2.5)
        plan = FaultPlan(drop=range(100))
        policy = RetryPolicy(max_retries=5, backoff_base_s=1.0)
        with use_context(
            backend="vectorized", fault_plan=plan, clock=clock, budget=budget
        ) as ctx:
            with pytest.raises(DeadlineExceeded):
                resilient_mmo("min-plus", a, b, context=ctx, retry=policy)
        # The second backoff (2s) would overrun the 2.5s deadline: only
        # the remaining allowance was slept, never past the deadline.
        assert clock.slept_s <= 2.5 + 1e-9
