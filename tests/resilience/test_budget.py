"""Tests for the injectable clock and execution budgets (deadlines/quotas)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.resilience import (
    BudgetExhausted,
    DeadlineExceeded,
    ExecutionBudget,
    MonotonicClock,
    ResilienceError,
    VirtualClock,
    default_clock,
    resolve_clock,
)
from repro.core import SEMIRINGS
from repro.runtime import Trace, use_context
from repro.runtime.closure import closure
from repro.runtime.kernels import mmo_tiled
from tests.conftest import make_ring_inputs


def _closure_input(n: int, rng: np.random.Generator) -> np.ndarray:
    adj = rng.integers(1, 9, size=(n, n)).astype(np.float64)
    adj[rng.random((n, n)) < 0.6] = np.inf
    np.fill_diagonal(adj, 0.0)
    return adj


class TestClocks:
    def test_monotonic_clock_advances(self):
        clock = MonotonicClock()
        first = clock.now()
        second = clock.now()
        assert second >= first

    def test_virtual_clock_is_manual(self):
        clock = VirtualClock(start=10.0)
        assert clock.now() == 10.0
        assert clock.now() == 10.0  # tick=0: reads do not advance
        clock.advance(2.5)
        assert clock.now() == 12.5

    def test_virtual_clock_tick_advances_per_read(self):
        clock = VirtualClock(tick=1.0)
        assert clock.now() == 0.0
        assert clock.now() == 1.0
        assert clock.now() == 2.0

    def test_virtual_sleep_advances_and_counts(self):
        clock = VirtualClock()
        clock.sleep(3.0)
        clock.sleep(1.5)
        assert clock.now() == 4.5
        assert clock.sleeps == 2
        assert clock.slept_s == 4.5

    def test_resolve_clock_prefers_context(self):
        virtual = VirtualClock()
        with use_context(clock=virtual) as ctx:
            assert resolve_clock(ctx) is virtual
        with use_context() as ctx:
            assert resolve_clock(ctx) is default_clock()


class TestExecutionBudget:
    def test_rejects_negative_parameters(self):
        with pytest.raises(ResilienceError, match="deadline_s"):
            ExecutionBudget(deadline_s=-1.0)
        with pytest.raises(ResilienceError, match="max_launches"):
            ExecutionBudget(max_launches=-1)
        with pytest.raises(ResilienceError, match="max_retries"):
            ExecutionBudget(max_retries=-1)

    def test_budget_does_not_age_while_idle(self):
        clock = VirtualClock()
        budget = ExecutionBudget(deadline_s=1.0)
        clock.advance(100.0)  # created long ago, never charged
        budget.check_deadline(clock)  # first check starts the clock
        clock.advance(0.5)
        budget.check_deadline(clock)  # still inside the deadline
        assert budget.remaining_s(clock) == pytest.approx(0.5)

    def test_deadline_trips_with_diagnostics(self):
        clock = VirtualClock()
        budget = ExecutionBudget(deadline_s=1.0)
        budget.charge_launch(clock)
        clock.advance(2.0)
        with pytest.raises(DeadlineExceeded) as excinfo:
            budget.check_deadline(clock, nodes_completed=(0, 1), where="test")
        err = excinfo.value
        assert err.deadline_s == 1.0
        assert err.elapsed_s == pytest.approx(2.0)
        assert err.launches_spent == 1
        assert err.nodes_completed == (0, 1)
        assert "2 node(s) completed" in str(err)

    def test_launch_quota_trips(self):
        clock = VirtualClock()
        budget = ExecutionBudget(max_launches=2)
        budget.charge_launch(clock)
        budget.charge_launch(clock)
        with pytest.raises(BudgetExhausted, match="launch budget of 2"):
            budget.charge_launch(clock)
        assert budget.launches_spent == 3

    def test_retry_quota_trips(self):
        clock = VirtualClock()
        budget = ExecutionBudget(max_retries=1)
        budget.charge_retry(clock)
        with pytest.raises(BudgetExhausted, match="retry budget of 1"):
            budget.charge_retry(clock)

    def test_charge_sleep_truncates_at_deadline(self):
        clock = VirtualClock()
        budget = ExecutionBudget(deadline_s=1.0)
        budget.check_deadline(clock)  # start
        with pytest.raises(DeadlineExceeded):
            budget.charge_sleep(clock, 5.0)
        # Slept only the remaining allowance, not the full 5 seconds.
        assert clock.slept_s == pytest.approx(1.0)

    def test_charge_sleep_without_deadline_sleeps_in_full(self):
        clock = VirtualClock()
        budget = ExecutionBudget()
        budget.charge_sleep(clock, 2.0)
        assert clock.slept_s == pytest.approx(2.0)

    def test_snapshot_shape(self):
        clock = VirtualClock()
        budget = ExecutionBudget(deadline_s=3.0, max_launches=5, max_retries=2)
        budget.charge_launch(clock)
        snap = budget.snapshot(clock)
        assert snap["launches_spent"] == 1
        assert snap["max_launches"] == 5
        assert snap["deadline_s"] == 3.0


class TestBudgetHookSeam:
    def test_every_launch_is_charged(self, rng):
        a, b, c = make_ring_inputs(SEMIRINGS["min-plus"], 32, 16, 32, rng)
        budget = ExecutionBudget(max_launches=10)
        with use_context(budget=budget, clock=VirtualClock()) as ctx:
            mmo_tiled("min-plus", a, b, c, context=ctx)
            mmo_tiled("min-plus", a, b, c, context=ctx)
        assert budget.launches_spent == 2

    def test_launch_quota_raises_typed_at_the_seam(self, rng):
        a, b, c = make_ring_inputs(SEMIRINGS["min-plus"], 16, 16, 16, rng)
        budget = ExecutionBudget(max_launches=1)
        with use_context(budget=budget, clock=VirtualClock()) as ctx:
            mmo_tiled("min-plus", a, b, c, context=ctx)
            with pytest.raises(BudgetExhausted):
                mmo_tiled("min-plus", a, b, c, context=ctx)

    def test_deadline_raises_typed_at_the_seam(self, rng):
        a, b, c = make_ring_inputs(SEMIRINGS["min-plus"], 16, 16, 16, rng)
        clock = VirtualClock()
        budget = ExecutionBudget(deadline_s=1.0)
        with use_context(budget=budget, clock=clock) as ctx:
            mmo_tiled("min-plus", a, b, c, context=ctx)
            clock.advance(5.0)
            with pytest.raises(DeadlineExceeded):
                mmo_tiled("min-plus", a, b, c, context=ctx)

    def test_budget_only_context_keeps_launchless_fast_path(self):
        from repro.runtime import ExecutionContext

        ctx = ExecutionContext(budget=ExecutionBudget(max_launches=100))
        # BudgetHook provides launchless_pre and registers no
        # post_execute, so the pipeline keeps the allocation-free path.
        assert ctx.pipeline._launchless is not None


class TestClosureBrownout:
    def test_brownout_returns_flagged_partial_fixpoint(self, rng):
        adj = _closure_input(48, rng)
        trace = Trace()
        budget = ExecutionBudget(max_launches=2)
        with use_context(
            budget=budget, clock=VirtualClock(), trace=trace
        ) as ctx:
            result = closure(
                "min-plus", adj, method="bellman-ford",
                convergence_check=False, context=ctx, on_budget="brownout",
            )
        assert not result.converged
        assert result.diagnostics is not None
        assert not result.diagnostics.healthy
        assert result.diagnostics.reason == "budget_exhausted"
        assert result.iterations >= 1  # partial progress, not nothing
        assert result.matrix.shape == adj.shape
        assert trace.summary().brownouts == 1

    def test_default_on_budget_raises(self, rng):
        adj = _closure_input(32, rng)
        budget = ExecutionBudget(max_launches=2)
        with use_context(budget=budget, clock=VirtualClock()) as ctx:
            with pytest.raises(BudgetExhausted):
                closure(
                    "min-plus", adj, method="bellman-ford",
                    convergence_check=False, context=ctx,
                )

    def test_unknown_on_budget_rejected(self, rng):
        from repro.core import SemiringError

        adj = _closure_input(16, rng)
        with pytest.raises(SemiringError, match="on_budget"):
            closure("min-plus", adj, on_budget="panic")

    def test_brownout_matrix_matches_budgetless_prefix(self, rng):
        # Determinism: the partial fixpoint equals the same iteration
        # count run without any budget.
        adj = _closure_input(48, rng)
        budget = ExecutionBudget(max_launches=3)
        with use_context(budget=budget, clock=VirtualClock()) as ctx:
            partial = closure(
                "min-plus", adj, method="bellman-ford",
                convergence_check=False, context=ctx, on_budget="brownout",
            )
        reference = closure(
            "min-plus", adj, method="bellman-ford",
            convergence_check=False, max_iterations=partial.iterations,
        )
        np.testing.assert_array_equal(partial.matrix, reference.matrix)
