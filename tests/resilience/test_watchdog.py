"""Tests for the closure watchdog."""

from __future__ import annotations

import numpy as np
import pytest

from repro.resilience import ClosureDiagnostics, ClosureWatchdog


def _mat(values) -> np.ndarray:
    return np.asarray(values, dtype=np.float32)


class TestNanPoisoning:
    def test_new_nan_trips(self):
        guard = ClosureWatchdog("min-plus")
        previous = _mat([[0.0, 1.0], [2.0, 0.0]])
        updated = previous.copy()
        updated[0, 1] = np.nan
        diag = guard.observe(updated, previous, 1)
        assert diag is not None and diag.reason == "nan_poisoning"
        assert "(0, 1)" in diag.detail
        assert not diag.healthy

    def test_initial_nan_is_tolerated(self):
        # A NaN fixpoint is the caller's business; only *new* NaNs trip.
        guard = ClosureWatchdog("min-plus")
        previous = _mat([[0.0, np.nan], [2.0, 0.0]])
        assert guard.observe(previous.copy(), previous, 1) is None

    def test_nan_check_can_be_disabled(self):
        guard = ClosureWatchdog("min-plus", check_nan=False, check_monotone=False)
        previous = _mat([[0.0, 1.0]])
        updated = _mat([[0.0, np.nan]])
        assert guard.observe(updated, previous, 1) is None


class TestMonotonicity:
    def test_min_ring_trips_on_increase(self):
        guard = ClosureWatchdog("min-plus")
        previous = _mat([[0.0, 3.0], [2.0, 0.0]])
        updated = _mat([[0.0, 5.0], [2.0, 0.0]])
        diag = guard.observe(updated, previous, 2)
        assert diag is not None and diag.reason == "non_monotone"
        assert "increased" in diag.detail

    def test_max_ring_trips_on_decrease(self):
        guard = ClosureWatchdog("max-plus")
        previous = _mat([[0.0, 3.0]])
        updated = _mat([[0.0, 1.0]])
        diag = guard.observe(updated, previous, 1)
        assert diag is not None and diag.reason == "non_monotone"
        assert "decreased" in diag.detail

    def test_or_and_trips_on_lost_edge(self):
        guard = ClosureWatchdog("or-and")
        previous = np.array([[True, True], [False, True]])
        updated = np.array([[True, False], [False, True]])
        diag = guard.observe(updated, previous, 1)
        assert diag is not None and diag.reason == "non_monotone"

    def test_plus_ring_has_no_order_to_police(self):
        guard = ClosureWatchdog("plus-mul")
        assert not guard.check_monotone
        previous = _mat([[1.0]])
        updated = _mat([[0.5]])  # would "regress" under max — fine here
        assert guard.observe(updated, previous, 1) is None

    def test_healthy_descent_passes(self):
        guard = ClosureWatchdog("min-plus")
        previous = _mat([[0.0, 5.0], [2.0, 0.0]])
        updated = _mat([[0.0, 4.0], [2.0, 0.0]])
        assert guard.observe(updated, previous, 1) is None


class TestOscillation:
    def test_period_two_flapping_trips(self):
        # Monotone checks would also fire here, so use plus-mul (no order).
        guard = ClosureWatchdog("plus-mul")
        state_a = _mat([[1.0, 2.0]])
        state_b = _mat([[3.0, 4.0]])
        assert guard.observe(state_b, state_a, 1) is None
        assert guard.observe(state_a, state_b, 2) is None
        diag = guard.observe(state_b, state_a, 3)
        assert diag is not None and diag.reason == "oscillation"

    def test_fixpoint_is_not_oscillation(self):
        guard = ClosureWatchdog("plus-mul")
        state = _mat([[1.0, 2.0]])
        assert guard.observe(state, state, 1) is None
        assert guard.observe(state, state, 2) is None
        assert guard.observe(state, state, 3) is None


class TestDiagnostics:
    def test_describe_healthy_and_tripped(self):
        healthy = ClosureDiagnostics(True, None, 3, "ok")
        assert healthy.describe() == "closure healthy"
        tripped = ClosureDiagnostics(False, "oscillation", 4, "flap")
        assert tripped.describe() == "oscillation at iteration 4: flap"
