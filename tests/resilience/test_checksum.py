"""Tests for semiring-generalised ABFT checksums."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SEMIRINGS, Semiring, mmo
from repro.resilience import (
    CheckedLaunch,
    ChecksumUnsupported,
    CorruptionDetected,
    FaultPlan,
    FaultSpec,
    checked_mmo,
    mmo_checksums,
)
from repro.runtime import Trace, mmo_tiled, use_context


def nonneg_inputs(
    ring: Semiring,
    m: int,
    k: int,
    n: int,
    rng: np.random.Generator,
    *,
    with_c: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Ring inputs restricted to values every checksum supports.

    min-mul/max-mul checksums require non-negative operands (the
    distributive invariant flips sign under a negative multiplier), so
    unlike ``make_ring_inputs`` these draw from ``[0, 8]``.
    """
    if ring.is_boolean():
        a = rng.random((m, k)) < 0.4
        b = rng.random((k, n)) < 0.4
        c = (rng.random((m, n)) < 0.2) if with_c else None
        return a, b, c
    a = rng.integers(0, 9, size=(m, k)).astype(np.float64)
    b = rng.integers(0, 9, size=(k, n)).astype(np.float64)
    c = rng.integers(0, 9, size=(m, n)).astype(np.float64) if with_c else None
    return a, b, c


class TestSupport:
    def test_plus_norm_is_unsupported(self, rng):
        a = rng.random((16, 16))
        with pytest.raises(ChecksumUnsupported, match="does not distribute"):
            mmo_checksums("plus-norm", a, a)

    @pytest.mark.parametrize("name", ["min-mul", "max-mul"])
    def test_mul_rings_reject_negative_operands(self, name, rng):
        a = rng.integers(-8, 9, (16, 16)).astype(np.float64)
        b = np.abs(a)
        with pytest.raises(ChecksumUnsupported, match="non-negative"):
            mmo_checksums(name, a, b)
        with pytest.raises(ChecksumUnsupported, match="non-negative"):
            mmo_checksums(name, b, a)
        # non-negative operands are fine
        mmo_checksums(name, b, b)

    def test_exactness_flag_tracks_idempotence(self):
        ones = np.ones((8, 8))
        assert mmo_checksums("min-plus", ones, ones).exact
        assert mmo_checksums("or-and", ones > 0, ones > 0).exact
        assert not mmo_checksums("plus-mul", ones, ones).exact


class TestCleanVerification:
    """Zero false positives: every backend's true result passes."""

    @pytest.mark.parametrize("backend", ["vectorized", "emulate", "sparse"])
    def test_all_supported_rings_all_backends(self, ring, backend, rng):
        if ring.name == "plus-norm":
            pytest.skip("plus-norm checksums unsupported (non-distributive)")
        from repro.backends import capabilities_of, get_backend

        if not capabilities_of(get_backend(backend)).supports(
            ring.name, has_accumulator=True
        ):
            pytest.skip(f"backend {backend!r} declares no support for {ring.name}")
        a, b, c = nonneg_inputs(ring, 48, 32, 40, rng)
        sums = mmo_checksums(ring, a, b, c)
        d, _ = mmo_tiled(ring, a, b, c, backend=backend)
        report = sums.verify(d)
        assert report.ok, report.describe()
        assert report.exact == sums.exact
        assert report.suspect_tiles == ()

    def test_no_accumulator(self, ring, rng):
        if ring.name == "plus-norm":
            pytest.skip("plus-norm checksums unsupported (non-distributive)")
        a, b, _ = nonneg_inputs(ring, 32, 16, 32, rng, with_c=False)
        d, _ = mmo_tiled(ring, a, b)
        assert mmo_checksums(ring, a, b).verify(d).ok

    def test_plus_mul_tolerance_absorbs_reassociation(self, rng):
        # Real-valued fp inputs: the additive folds differ from the tiled
        # reduction only by rounding, which rtol must absorb.
        a = rng.uniform(-1, 1, (64, 48)).astype(np.float32)
        b = rng.uniform(-1, 1, (48, 64)).astype(np.float32)
        d, _ = mmo_tiled("plus-mul", a, b)
        report = mmo_checksums("plus-mul", a, b, rtol=1e-3, atol=1e-4).verify(d)
        assert report.ok, report.describe()


class TestDetection:
    def test_nan_poison_always_detected(self, ring, rng):
        if ring.name == "plus-norm" or ring.is_boolean():
            pytest.skip("no NaN on this ring")
        a, b, c = nonneg_inputs(ring, 48, 16, 48, rng)
        sums = mmo_checksums(ring, a, b, c)
        d, _ = mmo_tiled(ring, a, b, c)
        d = np.array(d)
        d[20, 33] = np.nan
        report = sums.verify(d)
        assert not report.ok
        assert 33 in report.bad_columns
        assert 20 in report.bad_rows

    def test_boolean_flip_detected_on_empty_relation(self, rng):
        a = np.zeros((32, 16), dtype=bool)
        b = np.zeros((16, 32), dtype=bool)
        sums = mmo_checksums("or-and", a, b)
        d, _ = mmo_tiled("or-and", a, b)
        d = np.array(d)
        d[5, 9] = True
        report = sums.verify(d)
        assert not report.ok
        assert report.bad_columns == (9,) and report.bad_rows == (5,)

    def test_suspect_tiles_localise_a_stuck_tile(self, rng):
        a, b, c = nonneg_inputs(SEMIRINGS["min-plus"], 48, 16, 48, rng)
        sums = mmo_checksums("min-plus", a, b, c)
        d, _ = mmo_tiled("min-plus", a, b, c)
        d = np.array(d)
        d[16:32, 32:48] = -50.0  # below every true min: both folds fire
        report = sums.verify(d)
        assert not report.ok
        assert report.suspect_tiles == ((1, 2),)
        assert "suspect tiles" in report.describe()

    def test_additive_deviation_reported(self, rng):
        a = rng.uniform(0, 1, (32, 16)).astype(np.float32)
        b = rng.uniform(0, 1, (16, 32)).astype(np.float32)
        sums = mmo_checksums("plus-mul", a, b)
        d, _ = mmo_tiled("plus-mul", a, b)
        d = np.array(d)
        d[3, 7] += 10.0
        report = sums.verify(d)
        assert not report.ok
        assert report.max_row_deviation == pytest.approx(10.0, rel=1e-3)


class TestCheckedLaunch:
    def test_clean_run_matches_unchecked(self, ring, rng):
        if ring.name == "plus-norm":
            pytest.skip("plus-norm checksums unsupported (non-distributive)")
        a, b, c = nonneg_inputs(ring, 32, 16, 32, rng)
        d, stats = checked_mmo(ring, a, b, c)
        np.testing.assert_array_equal(d, mmo(ring, a, b, c))
        assert stats.mmo_instructions > 0

    def test_injected_corruption_raises_and_traces(self, rng):
        a, b, c = nonneg_inputs(SEMIRINGS["min-plus"], 48, 16, 48, rng)
        trace = Trace()
        plan = FaultPlan(seed=5, corrupt={0: FaultSpec(kind="stuck", value=-99.0)})
        with use_context(backend="vectorized", fault_plan=plan, trace=trace) as ctx:
            with pytest.raises(CorruptionDetected) as excinfo:
                checked_mmo("min-plus", a, b, c, context=ctx)
        assert not excinfo.value.report.ok
        assert trace.summary().corruptions_detected == 1
        assert trace.summary().faults_injected == 1

    def test_verify_reuses_precomputed_checksums(self, rng):
        a, b, _ = nonneg_inputs(SEMIRINGS["max-min"], 32, 16, 32, rng, with_c=False)
        sums = mmo_checksums("max-min", a, b)
        d, _ = mmo_tiled("max-min", a, b)
        checker = CheckedLaunch()
        assert checker.verify(sums, d).ok
        d = np.array(d)
        d[:16, :16] = 100.0
        with pytest.raises(CorruptionDetected):
            checker.verify(sums, d)
