"""Tests for per-backend circuit breakers and their integration seams."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core import SEMIRINGS
from repro.plan.autotune import AutotuneTable
from repro.resilience import (
    BreakerBoard,
    BreakerOpen,
    CircuitBreaker,
    FallbackChain,
    FaultPlan,
    ResilienceError,
    ResilienceExhausted,
    RetryPolicy,
    VirtualClock,
    resilient_mmo,
)
from repro.runtime import ExecutionContext, Trace, use_context
from repro.runtime.kernels import mmo_tiled
from tests.conftest import make_ring_inputs


class TestCircuitBreaker:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ResilienceError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ResilienceError, match="cooldown_s"):
            CircuitBreaker(cooldown_s=-1.0)

    def test_threshold_trips_the_breaker(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=1.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        assert breaker.state == "closed"
        assert breaker.allow(0.0)
        breaker.record_failure(0.0)
        assert breaker.state == "open"
        assert breaker.opens == 1

    def test_open_blocks_until_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=2.0)
        breaker.record_failure(10.0)
        assert not breaker.allow(10.0)
        assert not breaker.allow(11.9)
        assert breaker.allow(12.0)  # cooldown elapsed: probe admitted
        assert breaker.state == "half-open"
        assert breaker.probes == 1

    def test_passive_allow_does_not_claim_the_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=1.0)
        breaker.record_failure(0.0)
        assert breaker.allow(5.0, claim=False)
        assert breaker.state == "open"  # still open: nothing claimed
        assert breaker.probes == 0

    def test_probe_success_closes_and_resets(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=1.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        assert breaker.allow(1.5)
        breaker.record_success(probe_only=True)
        assert breaker.state == "closed"
        assert breaker.failures == 0

    def test_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=1.0)
        breaker.record_failure(0.0)
        assert breaker.allow(1.0)
        breaker.record_failure(1.1)
        assert breaker.state == "open"
        assert breaker.opens == 2
        assert not breaker.allow(1.5)  # fresh cooldown from the re-open
        assert breaker.allow(2.1)

    def test_half_open_admits_exactly_one_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=1.0)
        breaker.record_failure(0.0)
        assert breaker.allow(1.0)
        assert not breaker.allow(1.5)  # probe in flight

    def test_wedged_probe_times_out_and_readmits(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=1.0)
        breaker.record_failure(0.0)
        assert breaker.allow(1.0)  # probe claimed, outcome never reported
        assert not breaker.allow(1.9)
        assert breaker.allow(2.0)  # probe timed out: re-admit
        assert breaker.probes == 2

    def test_probe_only_success_does_not_reset_closed_count(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=1.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        breaker.record_success(probe_only=True)  # unverified launch
        assert breaker.failures == 2
        breaker.record_success()  # verified success
        assert breaker.failures == 0

    def test_straggler_success_while_open_is_ignored(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=1.0)
        breaker.record_failure(0.0)
        breaker.record_success()
        assert breaker.state == "open"

    def test_random_walk_preserves_invariants(self):
        # Property test: any interleaving of events keeps the machine in
        # a legal state and the closed-state count below the threshold.
        rng = random.Random(0x51D2)
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=0.5)
        now = 0.0
        for _ in range(2000):
            now += rng.random()
            action = rng.randrange(4)
            if action == 0:
                breaker.record_failure(now)
            elif action == 1:
                breaker.record_success(probe_only=bool(rng.randrange(2)))
            elif action == 2:
                breaker.allow(now, claim=bool(rng.randrange(2)))
            else:
                now += breaker.cooldown_s
            assert breaker.state in ("closed", "open", "half-open")
            if breaker.state == "closed":
                assert 0 <= breaker.failures < breaker.failure_threshold
            if breaker.state == "open":
                assert breaker.opened_at is not None
            if breaker.state == "half-open":
                assert breaker.probe_started_at is not None


class TestBreakerBoard:
    def test_unknown_backend_is_closed(self):
        board = BreakerBoard(clock=VirtualClock())
        assert board.state_of("vectorized") == "closed"
        assert board.try_acquire("vectorized")
        assert not board.blocked("vectorized")

    def test_failures_open_and_cooldown_recovers(self):
        clock = VirtualClock()
        board = BreakerBoard(
            failure_threshold=2, cooldown_s=1.0, clock=clock
        )
        board.record_failure("sparse")
        board.record_failure("sparse")
        assert board.state_of("sparse") == "open"
        assert board.blocked("sparse")
        assert not board.try_acquire("sparse")
        assert board.open_backends() == ("sparse",)
        clock.advance(1.0)
        assert not board.blocked("sparse")  # passive: no claim
        assert board.try_acquire("sparse")  # probe claimed
        assert board.state_of("sparse") == "half-open"
        board.record_success("sparse", probe_only=True)
        assert board.state_of("sparse") == "closed"
        assert board.open_backends() == ()

    def test_boards_isolate_backends(self):
        board = BreakerBoard(failure_threshold=1, clock=VirtualClock())
        board.record_failure("emulate")
        assert board.blocked("emulate")
        assert not board.blocked("vectorized")

    def test_snapshot_reports_per_backend_state(self):
        board = BreakerBoard(failure_threshold=2, clock=VirtualClock())
        board.record_failure("emulate")
        snap = board.snapshot()
        assert snap["emulate"]["state"] == "closed"
        assert snap["emulate"]["failures"] == 1
        assert snap["emulate"]["opens"] == 0


class TestResilientMmoIntegration:
    def _inputs(self, rng):
        return make_ring_inputs(SEMIRINGS["min-plus"], 32, 16, 32, rng)

    def test_persistent_failures_open_the_breaker(self, rng):
        a, b, c = self._inputs(rng)
        clock = VirtualClock()
        board = BreakerBoard(failure_threshold=3, cooldown_s=5.0, clock=clock)
        trace = Trace()
        with use_context(
            backend="vectorized",
            fault_plan=FaultPlan(seed=7, drop=(0, 1, 2)),
            breakers=board,
            clock=clock,
            trace=trace,
        ) as ctx:
            result, _ = resilient_mmo(
                "min-plus", a, b, c,
                context=ctx,
                retry=RetryPolicy(max_retries=2),
                fallback=FallbackChain(backends=("vectorized", "emulate")),
            )
        expected, _ = mmo_tiled("min-plus", a, b, c, backend="emulate")
        np.testing.assert_array_equal(result, expected)
        # Three drops on vectorized fed the board through the hook
        # pipeline and opened its breaker.
        assert board.state_of("vectorized") == "open"
        assert trace.summary().backend_failures == 3

    def test_open_breaker_skips_the_backend(self, rng):
        a, b, c = self._inputs(rng)
        clock = VirtualClock()
        board = BreakerBoard(failure_threshold=1, cooldown_s=5.0, clock=clock)
        board.record_failure("vectorized")
        trace = Trace()
        with use_context(
            backend="vectorized", breakers=board, clock=clock, trace=trace
        ) as ctx:
            result, _ = resilient_mmo(
                "min-plus", a, b, c,
                context=ctx,
                fallback=FallbackChain(backends=("vectorized", "emulate")),
            )
        expected, _ = mmo_tiled("min-plus", a, b, c, backend="emulate")
        np.testing.assert_array_equal(result, expected)
        assert trace.summary().breaker_skips == 1
        [skip] = trace.events_of("breaker_open")
        assert skip.backend == "vectorized"

    def test_all_breakers_open_exhausts_with_typed_causes(self, rng):
        a, b, c = self._inputs(rng)
        board = BreakerBoard(failure_threshold=1, clock=VirtualClock())
        board.record_failure("vectorized")
        board.record_failure("emulate")
        with use_context(backend="vectorized", breakers=board) as ctx:
            with pytest.raises(ResilienceExhausted) as excinfo:
                resilient_mmo(
                    "min-plus", a, b, c,
                    context=ctx,
                    fallback=FallbackChain(backends=("vectorized", "emulate")),
                )
        causes = dict(excinfo.value.causes)
        assert isinstance(causes["vectorized"], BreakerOpen)
        assert isinstance(causes["emulate"], BreakerOpen)

    def test_cooldown_probe_restores_the_backend(self, rng):
        a, b, c = self._inputs(rng)
        clock = VirtualClock()
        board = BreakerBoard(failure_threshold=3, cooldown_s=5.0, clock=clock)
        with use_context(
            backend="vectorized",
            fault_plan=FaultPlan(seed=7, drop=(0, 1, 2)),
            breakers=board,
            clock=clock,
        ) as ctx:
            resilient_mmo(
                "min-plus", a, b, c,
                context=ctx,
                retry=RetryPolicy(max_retries=2),
                fallback=FallbackChain(backends=("vectorized", "emulate")),
            )
            assert board.state_of("vectorized") == "open"
            clock.advance(5.0)
            # The fault plan's drops are spent; the probe launch succeeds
            # and its verified result closes the breaker.
            result, _ = resilient_mmo(
                "min-plus", a, b, c,
                context=ctx,
                fallback=FallbackChain(backends=("vectorized", "emulate")),
            )
        assert board.state_of("vectorized") == "closed"
        expected, _ = mmo_tiled("min-plus", a, b, c, backend="vectorized")
        np.testing.assert_array_equal(result, expected)


class TestPlannerIntegration:
    def test_auto_dispatch_skips_open_backends(self, rng):
        a, b, _ = make_ring_inputs(SEMIRINGS["min-plus"], 32, 32, 32, rng)
        board = BreakerBoard(failure_threshold=1, clock=VirtualClock())
        trace = Trace()
        ctx = ExecutionContext(
            backend="auto",
            breakers=board,
            trace=trace,
            autotune=AutotuneTable(),
        )
        mmo_tiled("min-plus", a, b, context=ctx)
        [baseline] = trace.plans
        board.record_failure(baseline.backend)
        mmo_tiled("min-plus", a, b, context=ctx)
        rerouted = trace.plans[-1]
        assert rerouted.backend != baseline.backend
        assert baseline.backend in rerouted.breaker_skipped
        assert baseline.breaker_skipped == ()

    def test_all_blocked_fails_open_to_planner_choice(self, rng):
        a, b, _ = make_ring_inputs(SEMIRINGS["min-plus"], 32, 32, 32, rng)
        board = BreakerBoard(failure_threshold=1, clock=VirtualClock())
        for name in ("vectorized", "emulate", "sparse"):
            board.record_failure(name)
        trace = Trace()
        ctx = ExecutionContext(
            backend="auto",
            breakers=board,
            trace=trace,
            autotune=AutotuneTable(),
        )
        # Every candidate is blocked: filtering them all out would leave
        # nothing to run, so the planner fails open and dispatches its
        # best choice anyway.
        result, _ = mmo_tiled("min-plus", a, b, context=ctx)
        expected, _ = mmo_tiled("min-plus", a, b, backend="vectorized")
        np.testing.assert_array_equal(result, expected)
        [plan] = trace.plans
        assert plan.breaker_skipped == ()
