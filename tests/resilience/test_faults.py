"""Tests for the deterministic fault injector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.resilience import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    ResilienceError,
)
from repro.runtime import Trace, mmo_tiled, use_context
from tests.conftest import make_ring_inputs


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ResilienceError, match="unknown fault kind"):
            FaultSpec(kind="gamma-ray")

    def test_tile_outside_grid_rejected(self, rng):
        from repro.core import SEMIRINGS

        a, b, _ = make_ring_inputs(SEMIRINGS["min-plus"], 32, 16, 32, rng, with_c=False)
        plan = FaultPlan(corrupt={0: FaultSpec(kind="stuck", tile=(9, 9))})
        with use_context(backend="vectorized", fault_plan=plan) as ctx:
            with pytest.raises(ResilienceError, match="outside the"):
                mmo_tiled("min-plus", a, b, context=ctx)


class TestInjection:
    def test_clean_plan_changes_nothing(self, ring, rng):
        a, b, c = make_ring_inputs(ring, 32, 16, 32, rng)
        baseline, _ = mmo_tiled(ring, a, b, c)
        with use_context(backend="vectorized", fault_plan=FaultPlan()) as ctx:
            got, _ = mmo_tiled(ring, a, b, c, context=ctx)
        np.testing.assert_array_equal(got, baseline)

    def test_corruption_is_deterministic(self, ring, rng):
        a, b, c = make_ring_inputs(ring, 48, 16, 48, rng)
        outs = []
        for _ in range(2):
            plan = FaultPlan(seed=42, corrupt={0: FaultSpec(kind="bitflip")})
            with use_context(backend="vectorized", fault_plan=plan) as ctx:
                got, _ = mmo_tiled(ring, a, b, c, context=ctx)
            outs.append(got)
            assert plan.injected_corruptions == 1
        np.testing.assert_array_equal(outs[0], outs[1])

    def test_bitflip_changes_exactly_one_element(self, rng):
        from repro.core import SEMIRINGS

        a, b, c = make_ring_inputs(SEMIRINGS["min-plus"], 48, 16, 48, rng)
        baseline, _ = mmo_tiled("min-plus", a, b, c)
        plan = FaultPlan(seed=1, corrupt={0: FaultSpec(kind="bitflip")})
        with use_context(backend="vectorized", fault_plan=plan) as ctx:
            got, _ = mmo_tiled("min-plus", a, b, c, context=ctx)
        assert np.sum(got != baseline) == 1

    def test_stuck_tile_freezes_the_tile(self, rng):
        from repro.core import SEMIRINGS

        a, b, c = make_ring_inputs(SEMIRINGS["min-plus"], 48, 16, 48, rng)
        plan = FaultPlan(corrupt={0: FaultSpec(kind="stuck", tile=(1, 2), value=-7.0)})
        with use_context(backend="vectorized", fault_plan=plan) as ctx:
            got, _ = mmo_tiled("min-plus", a, b, c, context=ctx)
        np.testing.assert_array_equal(got[16:32, 32:48], -7.0)

    def test_nan_poison_lands_in_chosen_tile(self, rng):
        from repro.core import SEMIRINGS

        a, b, c = make_ring_inputs(SEMIRINGS["min-plus"], 32, 16, 32, rng)
        plan = FaultPlan(corrupt={0: FaultSpec(kind="nan", tile=(0, 1))})
        with use_context(backend="vectorized", fault_plan=plan) as ctx:
            got, _ = mmo_tiled("min-plus", a, b, c, context=ctx)
        assert np.isnan(got[:16, 16:32]).sum() == 1
        assert np.isnan(got).sum() == 1

    def test_only_the_scheduled_ordinal_is_corrupted(self, rng):
        from repro.core import SEMIRINGS

        a, b, c = make_ring_inputs(SEMIRINGS["min-plus"], 32, 16, 32, rng)
        baseline, _ = mmo_tiled("min-plus", a, b, c)
        plan = FaultPlan(corrupt={1: FaultSpec(kind="nan")})
        with use_context(backend="vectorized", fault_plan=plan) as ctx:
            first, _ = mmo_tiled("min-plus", a, b, c, context=ctx)
            second, _ = mmo_tiled("min-plus", a, b, c, context=ctx)
            third, _ = mmo_tiled("min-plus", a, b, c, context=ctx)
        np.testing.assert_array_equal(first, baseline)
        assert np.isnan(second).any()
        np.testing.assert_array_equal(third, baseline)
        assert plan.launches_seen == 3

    def test_same_plan_corrupts_all_backends(self, rng):
        from repro.core import SEMIRINGS

        a, b, c = make_ring_inputs(SEMIRINGS["min-plus"], 32, 16, 32, rng)
        for backend in ("vectorized", "emulate", "sparse"):
            plan = FaultPlan(corrupt={0: FaultSpec(kind="stuck", tile=(0, 0), value=3.0)})
            with use_context(backend=backend, fault_plan=plan) as ctx:
                got, _ = mmo_tiled("min-plus", a, b, c, context=ctx)
            np.testing.assert_array_equal(got[:16, :16], 3.0)
            assert plan.injected_corruptions == 1


class TestDrops:
    def test_dropped_launch_raises_injected_fault(self, rng):
        from repro.core import SEMIRINGS

        a, b, _ = make_ring_inputs(SEMIRINGS["plus-mul"], 16, 16, 16, rng, with_c=False)
        plan = FaultPlan(drop=(0,))
        trace = Trace()
        with use_context(backend="vectorized", fault_plan=plan, trace=trace) as ctx:
            with pytest.raises(InjectedFault, match="dropped launch 0"):
                mmo_tiled("plus-mul", a, b, context=ctx)
            # the ordinal advanced, so the next launch is clean
            got, _ = mmo_tiled("plus-mul", a, b, context=ctx)
        assert plan.injected_drops == 1
        assert trace.summary().faults_injected == 1
        np.testing.assert_array_equal(got, mmo_tiled("plus-mul", a, b)[0])


class TestTraceEvents:
    def test_injections_land_on_the_trace(self, rng):
        from repro.core import SEMIRINGS

        a, b, c = make_ring_inputs(SEMIRINGS["min-plus"], 32, 16, 32, rng)
        trace = Trace()
        plan = FaultPlan(corrupt={0: FaultSpec(kind="nan")})
        with use_context(backend="vectorized", fault_plan=plan, trace=trace) as ctx:
            mmo_tiled("min-plus", a, b, c, context=ctx)
        events = trace.events_of("fault_injected")
        assert len(events) == 1
        assert events[0].launch_ordinal == 0
        assert "NaN poison" in events[0].detail
        assert trace.summary().by_event == {"fault_injected": 1}
