"""End-to-end tests of the composed resilient closure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw import Simd2Device
from repro.resilience import FaultPlan, FaultSpec, resilient_closure
from repro.runtime import Trace, closure, use_context


def shortest_path_graph(n: int, rng: np.random.Generator) -> np.ndarray:
    adj = np.full((n, n), np.inf, dtype=np.float32)
    np.fill_diagonal(adj, 0.0)
    edges = rng.integers(0, n, (4 * n, 2))
    adj[edges[:, 0], edges[:, 1]] = rng.integers(1, 9, 4 * n).astype(np.float32)
    np.fill_diagonal(adj, 0.0)
    return adj


class TestSingleDevice:
    def test_clean_run_matches_plain_closure(self, rng):
        adj = shortest_path_graph(48, rng)
        clean = closure("min-plus", adj, max_iterations=30)
        res = resilient_closure("min-plus", adj, max_iterations=30)
        assert res.converged == clean.converged
        np.testing.assert_array_equal(res.matrix, clean.matrix)
        assert res.diagnostics is not None and res.diagnostics.healthy
        assert res.blacklist == frozenset()

    def test_recovers_from_transient_corruption(self, rng):
        adj = shortest_path_graph(48, rng)
        clean = closure("min-plus", adj, max_iterations=30)
        trace = Trace()
        plan = FaultPlan(seed=9, corrupt={1: FaultSpec(kind="nan")})
        with use_context(backend="vectorized", fault_plan=plan, trace=trace) as ctx:
            res = resilient_closure("min-plus", adj, max_iterations=30, context=ctx)
        np.testing.assert_array_equal(res.matrix, clean.matrix)
        summary = trace.summary()
        assert summary.corruptions_detected >= 1
        assert summary.retries >= 1


class TestMultiDevice:
    def test_device_kill_plus_corruption_bit_parity(self, rng):
        """The ISSUE's end-to-end proof, in test form: a seeded plan that
        corrupts a tile AND kills a device; the checked multi-device
        closure detects, retries, repartitions, and still produces a
        result bit-identical to the fault-free run."""
        adj = shortest_path_graph(64, rng)
        clean = closure("min-plus", adj, backend="emulate", max_iterations=30)
        trace = Trace()
        plan = FaultPlan(
            seed=11,
            corrupt={2: FaultSpec(kind="nan")},
            fail_devices=(0,),
        )
        devices = [Simd2Device() for _ in range(3)]
        with use_context(backend="emulate", fault_plan=plan, trace=trace) as ctx:
            res = resilient_closure(
                "min-plus", adj, devices=devices, context=ctx, max_iterations=30
            )
        np.testing.assert_array_equal(res.matrix, clean.matrix)
        assert res.converged == clean.converged
        assert res.blacklist == frozenset({0})
        summary = trace.summary()
        assert summary.device_failures == 1
        assert summary.repartitions == 1
        assert summary.corruptions_detected >= 1
        assert summary.retries >= 1
        assert plan.injected_corruptions >= 1
        assert plan.injected_device_failures == 1

    def test_blacklist_persists_across_iterations(self, rng):
        adj = shortest_path_graph(48, rng)
        plan = FaultPlan(fail_devices=(1,))
        devices = [Simd2Device() for _ in range(2)]
        with use_context(backend="emulate", fault_plan=plan) as ctx:
            res = resilient_closure(
                "min-plus", adj, devices=devices, context=ctx, max_iterations=30
            )
        # the dead device fails once; later iterations never ask it again
        assert plan.injected_device_failures == 1
        assert res.blacklist == frozenset({1})
        assert all(sh.device_index == 0 for sh in res.device_shares)

    def test_all_devices_dead_raises(self, rng):
        from repro.runtime import RuntimeError_

        adj = shortest_path_graph(32, rng)
        plan = FaultPlan(fail_devices=(0, 1))
        with use_context(backend="emulate", fault_plan=plan) as ctx:
            with pytest.raises(RuntimeError_, match="no surviving devices"):
                resilient_closure(
                    "min-plus", adj,
                    devices=[Simd2Device(), Simd2Device()],
                    context=ctx, max_iterations=30,
                )


class TestWatchdogIntegration:
    def test_unrecovered_nan_trips_watchdog(self, rng):
        adj = shortest_path_graph(32, rng)
        # Unchecked run: the injected NaN is never detected by checksums,
        # so it propagates — the watchdog must catch it instead.
        plan = FaultPlan(seed=3, corrupt={0: FaultSpec(kind="nan")})
        trace = Trace()
        with use_context(backend="vectorized", fault_plan=plan, trace=trace) as ctx:
            res = resilient_closure(
                "min-plus", adj, context=ctx, checked=False, max_iterations=30
            )
        assert res.diagnostics is not None
        assert res.diagnostics.reason == "nan_poisoning"
        assert not res.converged
        assert trace.summary().watchdog_trips == 1
