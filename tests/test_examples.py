"""Smoke tests: every shipped example must run to completion.

Examples are the library's living documentation; this keeps them honest —
each runs as ``__main__`` in-process with output captured, and its internal
assertions (baseline-vs-SIMD² agreement etc.) must hold.
"""

from __future__ import annotations

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_are_discovered():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 6


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script.name} produced no output"
