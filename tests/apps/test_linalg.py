"""Tests for Newton–Schulz matrix inversion on the mma kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.linalg import newton_schulz_inverse


def _well_conditioned(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    a = np.eye(n) * 4 + rng.normal(0, 0.5, (n, n)) / np.sqrt(n)
    return np.round(a * 16) / 16  # fp16-exact entries


class TestInversion:
    @pytest.mark.parametrize("n", [4, 8, 16, 32])
    def test_converges_on_well_conditioned(self, n):
        a = _well_conditioned(n, seed=n)
        result = newton_schulz_inverse(a)
        assert result.converged
        assert result.residual <= 1e-3
        true_error = np.max(np.abs(a @ result.inverse.astype(np.float64) - np.eye(n)))
        assert true_error < 2e-3

    def test_matches_numpy_inverse(self):
        a = _well_conditioned(16, seed=5)
        result = newton_schulz_inverse(a)
        np.testing.assert_allclose(
            result.inverse, np.linalg.inv(a), rtol=1e-2, atol=1e-3
        )

    def test_quadratic_convergence(self):
        # The iteration count stays in single digits even as n grows —
        # the quadratic-convergence property that makes it MXU-friendly.
        for n in (8, 16, 32):
            result = newton_schulz_inverse(_well_conditioned(n, seed=n + 1))
            assert result.iterations <= 8

    def test_identity_is_a_fixpoint(self):
        result = newton_schulz_inverse(np.eye(12))
        assert result.converged
        np.testing.assert_allclose(result.inverse, np.eye(12), atol=1e-3)

    def test_emulate_backend(self):
        a = _well_conditioned(16, seed=9)
        vec = newton_schulz_inverse(a)
        emu = newton_schulz_inverse(a, backend="emulate")
        # Reduction-tree order differs from the vectorised sum by ulps.
        np.testing.assert_allclose(emu.inverse, vec.inverse, rtol=1e-5, atol=1e-6)
        assert emu.converged


class TestValidation:
    def test_singular_matrix_never_converges(self):
        # A rank-1 matrix has no inverse: the iteration stalls at a high
        # residual (it converges to the pseudo-inverse direction instead).
        singular = np.ones((8, 8))
        result = newton_schulz_inverse(singular, max_iterations=30)
        assert not result.converged
        assert result.residual > 0.5

    def test_zero_matrix_rejected(self):
        with pytest.raises(ValueError, match="zero"):
            newton_schulz_inverse(np.zeros((4, 4)))

    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            newton_schulz_inverse(np.zeros((2, 3)))

    def test_bad_iteration_cap(self):
        with pytest.raises(ValueError, match="positive"):
            newton_schulz_inverse(np.eye(2), max_iterations=0)

    def test_unconverged_flagged(self):
        a = _well_conditioned(16, seed=3)
        result = newton_schulz_inverse(a, max_iterations=1, tolerance=1e-9)
        assert not result.converged
