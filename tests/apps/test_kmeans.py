"""Tests for the K-means application (add-norm extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import kmeans_baseline, kmeans_simd2
from repro.datasets import PointCloudSpec, gaussian_clusters


@pytest.fixture(scope="module")
def clustered_points():
    spec = PointCloudSpec(num_points=120, dimensions=8, num_clusters=3, seed=21)
    return gaussian_clusters(spec)


class TestAgreement:
    def test_simd2_matches_baseline(self, clustered_points):
        points, _ = clustered_points
        base = kmeans_baseline(points, 3, seed=1)
        simd = kmeans_simd2(points, 3, seed=1)
        np.testing.assert_array_equal(simd.assignments, base.assignments)
        np.testing.assert_allclose(simd.centroids, base.centroids)
        assert simd.iterations == base.iterations
        assert simd.converged == base.converged

    def test_emulate_backend_small(self):
        points, _ = gaussian_clusters(
            PointCloudSpec(num_points=40, dimensions=6, num_clusters=2, seed=3)
        )
        base = kmeans_baseline(points, 2, seed=0, max_iterations=8)
        simd = kmeans_simd2(points, 2, seed=0, max_iterations=8, backend="emulate")
        np.testing.assert_array_equal(simd.assignments, base.assignments)


class TestQuality:
    def test_recovers_well_separated_clusters(self, clustered_points):
        points, labels = clustered_points
        result = kmeans_simd2(points, 3, seed=4)
        # Cluster ids are arbitrary: check that each found cluster is
        # dominated by one true label (>80% purity overall).
        purity = 0
        for cluster in range(3):
            members = labels[result.assignments == cluster]
            if len(members):
                purity += np.bincount(members).max()
        assert purity / len(points) > 0.8

    def test_inertia_decreases_with_more_clusters(self, clustered_points):
        points, _ = clustered_points
        inertia = [kmeans_simd2(points, k, seed=2).inertia for k in (1, 2, 3)]
        assert inertia[0] > inertia[1] > inertia[2]

    def test_convergence_flag(self, clustered_points):
        points, _ = clustered_points
        result = kmeans_simd2(points, 3, seed=5, max_iterations=50)
        assert result.converged
        capped = kmeans_simd2(points, 3, seed=5, max_iterations=1)
        assert not capped.converged
        assert capped.iterations == 1


class TestValidation:
    def test_k_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            kmeans_simd2(np.zeros((4, 2)), 5)

    def test_non_2d_points(self):
        with pytest.raises(ValueError, match="2-D"):
            kmeans_baseline(np.zeros(4), 1)

    def test_bad_max_iterations(self):
        with pytest.raises(ValueError, match="positive"):
            kmeans_simd2(np.zeros((4, 2)), 2, max_iterations=0)

    def test_k_equals_n_zero_inertia(self):
        points = np.arange(12, dtype=float).reshape(4, 3)
        result = kmeans_simd2(points, 4, seed=0)
        assert result.inertia == 0.0
        assert len(set(result.assignments.tolist())) == 4
