"""Test package."""
