"""Tests for the Floyd–Warshall substrate (plain and blocked)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import blocked_floyd_warshall, floyd_warshall
from repro.core import SemiringError
from repro.datasets import (
    GraphSpec,
    boolean_graph,
    capacity_graph,
    distance_graph,
    reliability_graph,
)


def _scipy_shortest_paths(adj: np.ndarray) -> np.ndarray:
    from scipy.sparse.csgraph import shortest_path

    dense = np.where(np.isfinite(adj), adj, 0.0)
    mask = np.isfinite(adj) & (adj > 0)
    graph = np.where(mask, dense, 0.0)
    return shortest_path(graph, method="FW", directed=True)


class TestPlainFw:
    def test_min_plus_matches_scipy(self):
        adj = distance_graph(GraphSpec(30, 0.15, seed=2))
        got, stats = floyd_warshall("min-plus", adj)
        expected = _scipy_shortest_paths(adj)
        np.testing.assert_allclose(got, expected.astype(np.float32), rtol=1e-6)
        assert stats.sequential_steps == 30

    def test_max_min_capacity_triangle(self):
        #     0 —10— 1 —7— 2   and a direct 0 —3— 2 edge
        adj = np.array(
            [
                [np.inf, 10.0, 3.0],
                [10.0, np.inf, 7.0],
                [3.0, 7.0, np.inf],
            ]
        )
        encoded = np.where(np.isfinite(adj), adj, -np.inf)
        np.fill_diagonal(encoded, np.inf)
        got, _ = floyd_warshall("max-min", encoded)
        assert got[0, 2] == 7.0  # through vertex 1 beats the direct capacity 3

    def test_max_mul_no_ieee_poisoning(self):
        # Two isolated vertices (reliability 0 everywhere off-diagonal):
        # (-inf)·(-inf)-style poisoning must not occur with 0 encoding.
        adj = np.array([[1.0, 0.0], [0.0, 1.0]])
        got, _ = floyd_warshall("max-mul", adj)
        np.testing.assert_array_equal(got, adj.astype(np.float32))

    def test_or_and_closure(self):
        adj = boolean_graph(GraphSpec(12, 0.15, seed=4))
        got, _ = floyd_warshall("or-and", adj)
        # oracle: repeated boolean matrix powers
        reach = adj.copy()
        for _ in range(12):
            reach = reach | (reach.astype(int) @ reach.astype(int) > 0)
        np.testing.assert_array_equal(got, reach)

    def test_plus_mul_rejected(self):
        with pytest.raises(SemiringError, match="idempotent"):
            floyd_warshall("plus-mul", np.zeros((2, 2)))

    def test_non_square_rejected(self):
        with pytest.raises(SemiringError, match="square"):
            floyd_warshall("min-plus", np.zeros((2, 3)))


class TestBlockedFw:
    @pytest.mark.parametrize("n,block", [(32, 16), (30, 16), (16, 16), (20, 8)])
    def test_matches_plain_fw(self, n, block):
        adj = distance_graph(GraphSpec(n, 0.2, seed=n))
        plain, _ = floyd_warshall("min-plus", adj)
        blocked, stats = blocked_floyd_warshall("min-plus", adj, block=block)
        np.testing.assert_array_equal(blocked, plain)
        assert stats.block == block

    def test_max_plus_on_dag(self):
        from repro.datasets import dag_distance_graph

        adj = dag_distance_graph(GraphSpec(24, 0.3, seed=9))
        plain, _ = floyd_warshall("max-plus", adj)
        blocked, _ = blocked_floyd_warshall("max-plus", adj, block=16)
        np.testing.assert_array_equal(blocked, plain)

    def test_capacity_ring(self):
        adj = capacity_graph(GraphSpec(20, 0.25, seed=5), maximize=True)
        plain, _ = floyd_warshall("max-min", adj)
        blocked, _ = blocked_floyd_warshall("max-min", adj, block=16)
        np.testing.assert_array_equal(blocked, plain)

    def test_reliability_ring(self):
        adj = reliability_graph(GraphSpec(20, 0.25, seed=6), maximize=True)
        plain, _ = floyd_warshall("max-mul", adj)
        blocked, _ = blocked_floyd_warshall("max-mul", adj, block=16)
        np.testing.assert_array_equal(blocked, plain)

    def test_sequential_phase_count(self):
        adj = distance_graph(GraphSpec(32, 0.2, seed=1))
        _, stats = blocked_floyd_warshall("min-plus", adj, block=16)
        assert stats.sequential_steps == 3 * 2  # two block-diagonal steps

    def test_bad_block_rejected(self):
        with pytest.raises(SemiringError, match="block"):
            blocked_floyd_warshall("min-plus", np.zeros((4, 4)), block=0)
