"""Integration tests on structured graph topologies.

Erdős–Rényi graphs (the default workloads) have tiny diameters; these
tests run the applications on the opposite regimes — high-diameter grids,
small-world rings, heavy-tailed scale-free graphs — where convergence
behaviour and sparse access patterns differ materially.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import apsp_baseline, apsp_simd2, gtc_baseline, gtc_simd2, mst_baseline, mst_simd2
from repro.datasets import (
    GraphSpec,
    grid_distance_graph,
    scale_free_mask,
    small_world_distance_graph,
)
from repro.runtime import closure
from repro.sparse import CsrMatrix, sparse_closure


class TestGridWorkloads:
    def test_apsp_on_grid_matches_manhattan(self):
        rows, cols = 5, 6
        adj = grid_distance_graph(rows, cols)
        simd = apsp_simd2(adj)
        base = apsp_baseline(adj)
        np.testing.assert_array_equal(simd.distances, base.distances)
        # Closed form: Manhattan distance between grid coordinates.
        for a in range(rows * cols):
            for b in range(rows * cols):
                expected = abs(a // cols - b // cols) + abs(a % cols - b % cols)
                assert simd.distances[a, b] == expected

    def test_grid_needs_more_leyzorek_iterations_than_er(self):
        # Diameter 9+9=18 on a 10x10 grid vs ~3 for an ER graph: the
        # convergence check must reflect that.
        grid = apsp_simd2(grid_distance_graph(10, 10))
        from repro.datasets import distance_graph

        er = apsp_simd2(distance_graph(GraphSpec(100, 0.16, seed=0)))
        assert grid.closure_result.iterations > er.closure_result.iterations

    def test_bellman_ford_iterations_track_grid_diameter(self):
        adj = grid_distance_graph(3, 7)
        result = closure("min-plus", adj, method="bellman-ford")
        diameter = (3 - 1) + (7 - 1)
        assert result.converged
        assert diameter <= result.iterations <= diameter + 2


class TestSmallWorldWorkloads:
    def test_apsp_agreement(self):
        adj = small_world_distance_graph(GraphSpec(48, 0.1, seed=9))
        simd = apsp_simd2(adj)
        base = apsp_baseline(adj)
        np.testing.assert_array_equal(simd.distances, base.distances)

    def test_mst_on_rewired_ring(self):
        # Build an MST instance from the small-world topology with
        # distinct weights.
        base_adj = small_world_distance_graph(
            GraphSpec(30, 0.1, seed=10), rewire_probability=0.15
        )
        mask = np.triu(np.isfinite(base_adj) & (base_adj != 0), k=1)
        n = 30
        weights = np.full((n, n), np.inf)
        for rank, flat in enumerate(np.flatnonzero(mask)):
            u, v = divmod(int(flat), n)
            weights[u, v] = weights[v, u] = 1.0 + rank * 0.125
        np.fill_diagonal(weights, 0.0)
        simd = mst_simd2(weights)
        base = mst_baseline(weights)
        assert simd.edges == base.edges


class TestScaleFreeWorkloads:
    def test_gtc_on_scale_free(self):
        mask = scale_free_mask(GraphSpec(60, 0.1, seed=11), attachment=2)
        simd = gtc_simd2(mask)
        base = gtc_baseline(mask)
        np.testing.assert_array_equal(simd.reachable, base.reachable)
        # A connected scale-free graph: everything reaches everything.
        assert simd.reachable.all()

    def test_sparse_closure_exploits_skew(self):
        # Scale-free degree skew: the sparse closure still matches the
        # dense result while performing far fewer products than n³.
        n = 60
        mask = scale_free_mask(GraphSpec(n, 0.1, seed=12), attachment=2)
        adj = np.where(mask, 1.0, np.inf)
        np.fill_diagonal(adj, 0.0)
        dense = closure("min-plus", adj)
        sparse = sparse_closure("min-plus", CsrMatrix.from_dense(adj, implicit=np.inf))
        np.testing.assert_array_equal(
            sparse.matrix.to_dense(implicit=np.inf).astype(np.float32), dense.matrix
        )
        assert sparse.total_products < sparse.iterations * n**3
