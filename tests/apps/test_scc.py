"""Tests for strongly connected components via or-and closures."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.scc import scc_baseline, scc_simd2
from repro.datasets import GraphSpec, boolean_graph


class TestAgainstEachOther:
    def test_random_graph(self):
        adj = boolean_graph(GraphSpec(40, 0.08, seed=50), reflexive=False)
        base = scc_baseline(adj)
        simd = scc_simd2(adj)
        np.testing.assert_array_equal(simd.labels, base.labels)
        assert simd.num_components == base.num_components

    def test_networkx_cross_check(self):
        import networkx as nx

        adj = boolean_graph(GraphSpec(24, 0.1, seed=51), reflexive=False)
        graph = nx.from_numpy_array(adj, create_using=nx.DiGraph)
        expected = {frozenset(c) for c in nx.strongly_connected_components(graph)}
        simd = scc_simd2(adj)
        got = {
            frozenset(np.flatnonzero(simd.labels == label).tolist())
            for label in np.unique(simd.labels)
        }
        assert got == expected

    @given(st.integers(2, 20), st.floats(0.0, 0.4), st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_property_agreement(self, n, density, seed):
        rng = np.random.default_rng(seed)
        adj = rng.random((n, n)) < density
        np.fill_diagonal(adj, False)
        base = scc_baseline(adj)
        simd = scc_simd2(adj)
        np.testing.assert_array_equal(simd.labels, base.labels)


class TestKnownStructures:
    def test_single_cycle_is_one_component(self):
        n = 6
        adj = np.zeros((n, n), dtype=bool)
        for i in range(n):
            adj[i, (i + 1) % n] = True
        result = scc_simd2(adj)
        assert result.num_components == 1
        np.testing.assert_array_equal(result.labels, np.zeros(n, dtype=np.int64))

    def test_dag_is_all_singletons(self):
        adj = np.triu(np.ones((5, 5), dtype=bool), k=1)
        result = scc_simd2(adj)
        assert result.num_components == 5
        np.testing.assert_array_equal(result.labels, np.arange(5))

    def test_two_cycles_with_bridge(self):
        # 0↔1 and 2↔3, with a one-way bridge 1→2.
        adj = np.zeros((4, 4), dtype=bool)
        adj[0, 1] = adj[1, 0] = True
        adj[2, 3] = adj[3, 2] = True
        adj[1, 2] = True
        result = scc_simd2(adj)
        assert result.num_components == 2
        np.testing.assert_array_equal(result.labels, [0, 0, 2, 2])

    def test_labels_are_canonical_smallest_member(self):
        adj = boolean_graph(GraphSpec(15, 0.2, seed=52), reflexive=False)
        result = scc_simd2(adj)
        for label in np.unique(result.labels):
            members = np.flatnonzero(result.labels == label)
            assert members.min() == label


class TestValidation:
    def test_non_boolean_rejected(self):
        with pytest.raises(ValueError, match="boolean"):
            scc_simd2(np.zeros((3, 3)))

    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            scc_baseline(np.zeros((2, 3), dtype=bool))
