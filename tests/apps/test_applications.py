"""Validation tests for all eight applications: SIMD² == baseline.

This is the repository's analogue of the paper's correctness-validation
flow (Section 5.1): every SIMD²-ized program must produce the same output
as the state-of-the-art baseline implementation, despite using a different
algorithm and the fp16/fp32 mixed-precision datapath.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import (
    aplp_baseline,
    aplp_simd2,
    apsp_baseline,
    apsp_simd2,
    dag_longest_path_dp,
    gtc_baseline,
    gtc_simd2,
    knn_baseline,
    knn_simd2,
    max_capacity_baseline,
    max_capacity_simd2,
    max_reliability_baseline,
    max_reliability_simd2,
    min_reliability_baseline,
    min_reliability_simd2,
    mst_baseline,
    mst_simd2,
)
from repro.datasets import (
    GraphSpec,
    PointCloudSpec,
    boolean_graph,
    capacity_graph,
    dag_distance_graph,
    distance_graph,
    gaussian_clusters,
    reliability_graph,
    undirected_distance_graph,
)

SPEC = GraphSpec(num_vertices=40, edge_probability=0.12, seed=11)


class TestApsp:
    def test_simd2_matches_baseline(self):
        adj = distance_graph(SPEC)
        base = apsp_baseline(adj)
        simd = apsp_simd2(adj)
        np.testing.assert_array_equal(simd.distances, base.distances)
        assert simd.closure_result.converged

    def test_bellman_ford_variant(self):
        adj = distance_graph(GraphSpec(24, 0.15, seed=3))
        base = apsp_baseline(adj)
        simd = apsp_simd2(adj, method="bellman-ford")
        np.testing.assert_array_equal(simd.distances, base.distances)

    def test_networkx_cross_check(self):
        import networkx as nx

        adj = distance_graph(GraphSpec(18, 0.2, seed=7))
        graph = nx.DiGraph()
        graph.add_nodes_from(range(18))
        for u in range(18):
            for v in range(18):
                if u != v and np.isfinite(adj[u, v]):
                    graph.add_edge(u, v, weight=float(adj[u, v]))
        simd = apsp_simd2(adj)
        lengths = dict(nx.all_pairs_dijkstra_path_length(graph))
        for u in range(18):
            for v in range(18):
                expected = lengths.get(u, {}).get(v, np.inf)
                assert simd.distances[u, v] == np.float32(expected)

    def test_rejects_bad_diagonal(self):
        adj = distance_graph(GraphSpec(8, 0.3, seed=0))
        adj[0, 0] = 1.0
        with pytest.raises(ValueError, match="zero diagonal"):
            apsp_simd2(adj)

    def test_rejects_negative_weights(self):
        adj = distance_graph(GraphSpec(8, 0.3, seed=0))
        adj[0, 1] = -1.0
        with pytest.raises(ValueError, match="negative"):
            apsp_baseline(adj)


class TestAplp:
    def test_simd2_matches_baseline_and_dp(self):
        adj = dag_distance_graph(SPEC)
        base = aplp_baseline(adj)
        simd = aplp_simd2(adj)
        dp = dag_longest_path_dp(adj)
        np.testing.assert_array_equal(simd.lengths, base.lengths)
        np.testing.assert_array_equal(simd.lengths, dp.astype(np.float32))

    def test_rejects_cyclic_input(self):
        adj = np.full((3, 3), -np.inf)
        np.fill_diagonal(adj, 0.0)
        adj[0, 1] = adj[1, 0] = 1.0  # 2-cycle below/above diagonal
        with pytest.raises(ValueError, match="DAG"):
            aplp_simd2(adj)


class TestPathFamily:
    def test_max_capacity(self):
        adj = capacity_graph(SPEC, maximize=True)
        base = max_capacity_baseline(adj)
        simd = max_capacity_simd2(adj)
        np.testing.assert_array_equal(simd.values, base.values)

    def test_max_reliability(self):
        # The mul rings round in the fp16 datapath, so SIMD² results match
        # the fp32 FW baseline only to fp16 tolerance — the accuracy check
        # the paper's validation flow performs (Section 5.1).
        adj = reliability_graph(SPEC, maximize=True)
        base = max_reliability_baseline(adj)
        simd = max_reliability_simd2(adj)
        np.testing.assert_allclose(simd.values, base.values, rtol=1e-2, atol=1e-4)

    def test_max_reliability_exact_on_power_of_two_weights(self):
        # Power-of-two reliabilities make every product fp16-exact, so the
        # two algorithms agree bit-for-bit.
        rng = np.random.default_rng(8)
        n = 30
        mask = rng.random((n, n)) < 0.15
        np.fill_diagonal(mask, False)
        weights = rng.choice([0.5, 0.25, 0.125], size=(n, n))
        adj = np.where(mask, weights, 0.0)
        np.fill_diagonal(adj, 1.0)
        base = max_reliability_baseline(adj)
        simd = max_reliability_simd2(adj)
        np.testing.assert_array_equal(simd.values, base.values)

    def test_min_reliability_on_dag(self):
        adj = reliability_graph(SPEC, maximize=False)
        base = min_reliability_baseline(adj)
        simd = min_reliability_simd2(adj)
        np.testing.assert_allclose(simd.values, base.values, rtol=1e-2, atol=1e-4)

    def test_min_reliability_rejects_cycles(self):
        adj = np.full((3, 3), np.inf)
        np.fill_diagonal(adj, 1.0)
        adj[0, 1] = adj[1, 0] = 0.5
        with pytest.raises(ValueError, match="DAG"):
            min_reliability_simd2(adj)

    def test_bellman_ford_agreement(self):
        adj = capacity_graph(GraphSpec(20, 0.2, seed=5), maximize=True)
        ley = max_capacity_simd2(adj, method="leyzorek")
        bf = max_capacity_simd2(adj, method="bellman-ford")
        np.testing.assert_array_equal(ley.values, bf.values)


class TestMst:
    def test_simd2_matches_kruskal(self):
        weights = undirected_distance_graph(GraphSpec(28, 0.12, seed=21))
        base = mst_baseline(weights)
        simd = mst_simd2(weights)
        assert simd.edges == base.edges
        assert simd.total_weight == pytest.approx(base.total_weight)
        assert len(base.edges) == 27  # spanning tree of 28 vertices

    def test_forest_on_disconnected_graph(self):
        # Two components: SIMD² and Kruskal must both produce a forest.
        weights = np.full((6, 6), np.inf)
        np.fill_diagonal(weights, 0.0)
        weights[0, 1] = weights[1, 0] = 1.0
        weights[1, 2] = weights[2, 1] = 2.0
        weights[3, 4] = weights[4, 3] = 3.0
        weights[4, 5] = weights[5, 4] = 4.0
        base = mst_baseline(weights)
        simd = mst_simd2(weights)
        assert simd.edges == base.edges == {(0, 1), (1, 2), (3, 4), (4, 5)}

    def test_duplicate_weights_rejected(self):
        weights = np.full((3, 3), np.inf)
        np.fill_diagonal(weights, 0.0)
        weights[0, 1] = weights[1, 0] = 1.0
        weights[1, 2] = weights[2, 1] = 1.0
        with pytest.raises(ValueError, match="distinct"):
            mst_simd2(weights)

    def test_asymmetric_rejected(self):
        weights = np.zeros((3, 3))
        weights[0, 1] = 1.0
        with pytest.raises(ValueError, match="symmetric"):
            mst_baseline(weights)


class TestGtc:
    def test_simd2_matches_bfs(self):
        adj = boolean_graph(SPEC, reflexive=False)
        base = gtc_baseline(adj)
        simd = gtc_simd2(adj)
        np.testing.assert_array_equal(simd.reachable, base.reachable)

    def test_networkx_cross_check(self):
        import networkx as nx

        adj = boolean_graph(GraphSpec(15, 0.15, seed=2), reflexive=False)
        graph = nx.from_numpy_array(adj, create_using=nx.DiGraph)
        closure = nx.transitive_closure(graph, reflexive=True)
        expected = nx.to_numpy_array(closure, dtype=bool) | np.eye(15, dtype=bool)
        simd = gtc_simd2(adj)
        np.testing.assert_array_equal(simd.reachable, expected)

    def test_non_boolean_rejected(self):
        with pytest.raises(ValueError, match="boolean"):
            gtc_baseline(np.zeros((3, 3)))


class TestKnn:
    def test_simd2_matches_baseline(self):
        spec = PointCloudSpec(num_points=60, dimensions=12, seed=3)
        points, _ = gaussian_clusters(spec)
        queries = points[:20]
        references = points[20:]
        base = knn_baseline(queries, references, k=5)
        simd = knn_simd2(queries, references, k=5)
        np.testing.assert_array_equal(simd.distances, base.distances)
        np.testing.assert_array_equal(simd.indices, base.indices)

    def test_self_query_returns_self_first(self):
        spec = PointCloudSpec(num_points=30, dimensions=8, seed=1)
        points, _ = gaussian_clusters(spec)
        result = knn_simd2(points, points, k=1)
        np.testing.assert_array_equal(result.distances[:, 0], np.zeros(30))

    def test_k_out_of_range(self):
        points = np.zeros((4, 3))
        with pytest.raises(ValueError, match="out of range"):
            knn_baseline(points, points, k=5)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError, match="dimension mismatch"):
            knn_simd2(np.zeros((4, 3)), np.zeros((4, 2)), k=1)


class TestEmulatedBackendEndToEnd:
    """Small end-to-end runs on the instruction-level emulator."""

    def test_apsp_on_emulator(self):
        adj = distance_graph(GraphSpec(20, 0.2, seed=13))
        base = apsp_baseline(adj)
        simd = apsp_simd2(adj, backend="emulate")
        np.testing.assert_array_equal(simd.distances, base.distances)

    def test_gtc_on_emulator(self):
        adj = boolean_graph(GraphSpec(20, 0.15, seed=13), reflexive=False)
        base = gtc_baseline(adj)
        simd = gtc_simd2(adj, backend="emulate")
        np.testing.assert_array_equal(simd.reachable, base.reachable)

    def test_knn_on_emulator(self):
        spec = PointCloudSpec(num_points=24, dimensions=8, seed=5)
        points, _ = gaussian_clusters(spec)
        base = knn_baseline(points, points, k=3)
        simd = knn_simd2(points, points, k=3, backend="emulate")
        np.testing.assert_array_equal(simd.indices, base.indices)
