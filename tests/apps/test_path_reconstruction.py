"""Tests for shortest-path reconstruction from closures."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import apsp_baseline
from repro.apps.path_reconstruction import extract_path, shortest_paths_with_successors
from repro.datasets import GraphSpec, distance_graph, grid_distance_graph


def _path_length(adjacency: np.ndarray, path: list[int]) -> float:
    return float(sum(adjacency[u, v] for u, v in zip(path, path[1:])))


class TestDistances:
    def test_distances_match_apsp(self):
        adj = distance_graph(GraphSpec(30, 0.15, seed=44))
        routed = shortest_paths_with_successors(adj)
        np.testing.assert_array_equal(routed.distances, apsp_baseline(adj).distances)

    def test_validation(self):
        with pytest.raises(ValueError, match="square"):
            shortest_paths_with_successors(np.zeros((2, 3)))
        bad = np.zeros((3, 3))
        bad[0, 0] = 1.0
        with pytest.raises(ValueError, match="zero diagonal"):
            shortest_paths_with_successors(bad)


class TestPaths:
    def test_every_reachable_pair_yields_a_valid_optimal_path(self):
        adj = distance_graph(GraphSpec(24, 0.15, seed=45))
        routed = shortest_paths_with_successors(adj)
        n = adj.shape[0]
        checked = 0
        for i in range(n):
            for j in range(n):
                if i == j or not np.isfinite(routed.distances[i, j]):
                    continue
                path = extract_path(routed, i, j)
                assert path is not None
                assert path[0] == i and path[-1] == j
                # every hop is a real edge, and the total length is optimal
                for u, v in zip(path, path[1:]):
                    assert np.isfinite(adj[u, v])
                assert _path_length(adj, path) == pytest.approx(
                    float(routed.distances[i, j])
                )
                checked += 1
        assert checked > 50  # the graph is well connected

    def test_grid_paths_have_manhattan_length(self):
        adj = grid_distance_graph(4, 4)
        routed = shortest_paths_with_successors(adj)
        path = extract_path(routed, 0, 15)  # corner to corner
        assert path is not None
        assert len(path) == 7  # 6 unit moves
        assert _path_length(adj, path) == 6.0

    def test_unreachable_returns_none(self):
        adj = np.full((3, 3), np.inf)
        np.fill_diagonal(adj, 0.0)
        adj[0, 1] = 1.0
        routed = shortest_paths_with_successors(adj)
        assert extract_path(routed, 1, 0) is None
        assert extract_path(routed, 0, 2) is None

    def test_self_path(self):
        adj = distance_graph(GraphSpec(6, 0.4, seed=1))
        routed = shortest_paths_with_successors(adj)
        assert extract_path(routed, 3, 3) == [3]

    def test_endpoint_validation(self):
        adj = distance_graph(GraphSpec(6, 0.4, seed=1))
        routed = shortest_paths_with_successors(adj)
        with pytest.raises(ValueError, match="out of range"):
            extract_path(routed, 0, 9)

    @given(st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_random_graphs_paths_are_consistent(self, seed):
        adj = distance_graph(GraphSpec(14, 0.25, seed=seed))
        routed = shortest_paths_with_successors(adj)
        rng = np.random.default_rng(seed)
        for _ in range(5):
            i, j = rng.integers(0, 14, 2)
            path = extract_path(routed, int(i), int(j))
            if path is None:
                assert i != j and not np.isfinite(routed.distances[i, j])
            else:
                assert _path_length(adj, path) == pytest.approx(
                    float(routed.distances[i, j])
                )
