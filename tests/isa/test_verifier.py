"""Tests for the static program verifier."""

from __future__ import annotations

import pytest

from repro.isa import (
    ElementType,
    FillMatrix,
    IsaError,
    LoadMatrix,
    Mmo,
    MmoOpcode,
    Program,
    StoreMatrix,
    verify_program,
)
from repro.runtime.kernels import build_tile_mmo_program


def _valid_program() -> Program:
    return Program(
        [
            LoadMatrix(dst=0, addr=0, ld=16),
            LoadMatrix(dst=1, addr=256, ld=16),
            FillMatrix(dst=2, value=0.0),
            Mmo(MmoOpcode.MMA, 3, 0, 1, 2),
            StoreMatrix(src=3, addr=512, ld=16),
        ],
        auto_halt=True,
    )


class TestCleanPrograms:
    def test_valid_program_verifies(self):
        report = verify_program(_valid_program())
        assert report.ok
        assert report.registers_used == {0, 1, 2, 3}
        assert not report.dead_stores

    def test_generated_kernels_verify_clean(self):
        for opcode in MmoOpcode:
            program, _, _ = build_tile_mmo_program(
                opcode, tiles_k=3, boolean=opcode.semiring.is_boolean()
            )
            report = verify_program(program)
            assert report.ok, (opcode, report.errors)
            assert not report.warnings, (opcode, report.warnings)

    def test_shared_memory_footprint(self):
        report = verify_program(_valid_program())
        # Deepest access: f32 store at 512 .. 512 + 15*16 + 16 elements.
        assert report.shared_memory_bytes == (512 + 15 * 16 + 16) * 4


class TestTypeErrors:
    def test_fp32_operand_into_fp16_port(self):
        program = Program(
            [
                FillMatrix(dst=0, value=1.0, etype=ElementType.F32),
                FillMatrix(dst=1, value=1.0, etype=ElementType.F16),
                FillMatrix(dst=2, value=0.0, etype=ElementType.F32),
                Mmo(MmoOpcode.MMA, 3, 0, 1, 2),
            ],
            auto_halt=True,
        )
        report = verify_program(program)
        assert not report.ok
        assert "a=m0 holds f32" in report.errors[0]

    def test_fp16_accumulator_rejected(self):
        program = Program(
            [
                FillMatrix(dst=0, value=1.0, etype=ElementType.F16),
                FillMatrix(dst=1, value=1.0, etype=ElementType.F16),
                FillMatrix(dst=2, value=0.0, etype=ElementType.F16),
                Mmo(MmoOpcode.MMA, 3, 0, 1, 2),
            ],
            auto_halt=True,
        )
        report = verify_program(program)
        assert any("accumulator c=m2" in e for e in report.errors)

    def test_boolean_ring_wants_b8(self):
        program = Program(
            [
                FillMatrix(dst=0, value=1.0, etype=ElementType.F16),
                FillMatrix(dst=1, value=1.0, etype=ElementType.F16),
                FillMatrix(dst=2, value=0.0, etype=ElementType.F32),
                Mmo(MmoOpcode.ORAND, 3, 0, 1, 2),
            ],
            auto_halt=True,
        )
        report = verify_program(program)
        assert any("port needs b8" in e for e in report.errors)

    def test_store_format_mismatch(self):
        program = Program(
            [
                FillMatrix(dst=0, value=1.0, etype=ElementType.F16),
                StoreMatrix(src=0, addr=0, ld=16, etype=ElementType.F32),
            ],
            auto_halt=True,
        )
        report = verify_program(program)
        assert any("store.f32 of m0 which holds f16" in e for e in report.errors)

    def test_check_mode_raises(self):
        program = Program(
            [
                FillMatrix(dst=0, value=1.0, etype=ElementType.F32),
                FillMatrix(dst=1, value=1.0, etype=ElementType.F16),
                FillMatrix(dst=2, value=0.0, etype=ElementType.F32),
                Mmo(MmoOpcode.MMA, 3, 0, 1, 2),
            ],
            auto_halt=True,
        )
        with pytest.raises(IsaError, match="port needs f16"):
            verify_program(program, check=True)


class TestLiveness:
    def test_dead_store_warning(self):
        program = Program(
            [
                FillMatrix(dst=0, value=1.0, etype=ElementType.F16),
                FillMatrix(dst=0, value=2.0, etype=ElementType.F16),  # kills #0
                LoadMatrix(dst=1, addr=0, ld=16),
                FillMatrix(dst=2, value=0.0),
                Mmo(MmoOpcode.MMA, 3, 0, 1, 2),
                StoreMatrix(src=3, addr=0, ld=16),
            ],
            auto_halt=True,
        )
        report = verify_program(program)
        assert report.ok
        assert any("dead store" in w for w in report.warnings)

    def test_unread_final_value_flagged(self):
        program = Program(
            [
                LoadMatrix(dst=0, addr=0, ld=16),
                LoadMatrix(dst=1, addr=0, ld=16),
                FillMatrix(dst=2, value=0.0),
                Mmo(MmoOpcode.MMA, 3, 0, 1, 2),
                # m3 never stored: the whole computation is dead.
            ],
            auto_halt=True,
        )
        report = verify_program(program)
        assert 3 in {program[i].d for i in report.dead_stores if hasattr(program[i], "d")}
        assert any("never" in w for w in report.warnings)
