"""Tests for the static program verifier."""

from __future__ import annotations

import pytest

from repro.isa import (
    ElementType,
    FillMatrix,
    IsaError,
    LoadMatrix,
    Mmo,
    MmoOpcode,
    Program,
    StoreMatrix,
    verify_program,
)
from repro.runtime.kernels import build_tile_mmo_program


def _valid_program() -> Program:
    return Program(
        [
            LoadMatrix(dst=0, addr=0, ld=16),
            LoadMatrix(dst=1, addr=256, ld=16),
            FillMatrix(dst=2, value=0.0),
            Mmo(MmoOpcode.MMA, 3, 0, 1, 2),
            StoreMatrix(src=3, addr=512, ld=16),
        ],
        auto_halt=True,
    )


class TestCleanPrograms:
    def test_valid_program_verifies(self):
        report = verify_program(_valid_program())
        assert report.ok
        assert report.registers_used == {0, 1, 2, 3}
        assert not report.dead_stores

    def test_generated_kernels_verify_clean(self):
        for opcode in MmoOpcode:
            program, _, _ = build_tile_mmo_program(
                opcode, tiles_k=3, boolean=opcode.semiring.is_boolean()
            )
            report = verify_program(program)
            assert report.ok, (opcode, report.errors)
            assert not report.warnings, (opcode, report.warnings)

    def test_shared_memory_footprint(self):
        report = verify_program(_valid_program())
        # Deepest access: f32 store at 512 .. 512 + 15*16 + 16 elements.
        assert report.shared_memory_bytes == (512 + 15 * 16 + 16) * 4


class TestTypeErrors:
    def test_fp32_operand_into_fp16_port(self):
        program = Program(
            [
                FillMatrix(dst=0, value=1.0, etype=ElementType.F32),
                FillMatrix(dst=1, value=1.0, etype=ElementType.F16),
                FillMatrix(dst=2, value=0.0, etype=ElementType.F32),
                Mmo(MmoOpcode.MMA, 3, 0, 1, 2),
            ],
            auto_halt=True,
        )
        report = verify_program(program)
        assert not report.ok
        assert "a=m0 holds f32" in report.errors[0]

    def test_fp16_accumulator_rejected(self):
        program = Program(
            [
                FillMatrix(dst=0, value=1.0, etype=ElementType.F16),
                FillMatrix(dst=1, value=1.0, etype=ElementType.F16),
                FillMatrix(dst=2, value=0.0, etype=ElementType.F16),
                Mmo(MmoOpcode.MMA, 3, 0, 1, 2),
            ],
            auto_halt=True,
        )
        report = verify_program(program)
        assert any("accumulator c=m2" in e for e in report.errors)

    def test_boolean_ring_wants_b8(self):
        program = Program(
            [
                FillMatrix(dst=0, value=1.0, etype=ElementType.F16),
                FillMatrix(dst=1, value=1.0, etype=ElementType.F16),
                FillMatrix(dst=2, value=0.0, etype=ElementType.F32),
                Mmo(MmoOpcode.ORAND, 3, 0, 1, 2),
            ],
            auto_halt=True,
        )
        report = verify_program(program)
        assert any("port needs b8" in e for e in report.errors)

    def test_store_format_mismatch(self):
        program = Program(
            [
                FillMatrix(dst=0, value=1.0, etype=ElementType.F16),
                StoreMatrix(src=0, addr=0, ld=16, etype=ElementType.F32),
            ],
            auto_halt=True,
        )
        report = verify_program(program)
        assert any("store.f32 of m0 which holds f16" in e for e in report.errors)

    def test_check_mode_raises(self):
        program = Program(
            [
                FillMatrix(dst=0, value=1.0, etype=ElementType.F32),
                FillMatrix(dst=1, value=1.0, etype=ElementType.F16),
                FillMatrix(dst=2, value=0.0, etype=ElementType.F32),
                Mmo(MmoOpcode.MMA, 3, 0, 1, 2),
            ],
            auto_halt=True,
        )
        with pytest.raises(IsaError, match="port needs f16"):
            verify_program(program, check=True)


class TestFootprintAndGeometry:
    def test_tile_parameter_scales_footprint(self):
        program = Program(
            [
                LoadMatrix(dst=0, addr=0, ld=16, etype=ElementType.F32),
                StoreMatrix(src=0, addr=0, ld=16),
            ],
            auto_halt=True,
        )
        default = verify_program(program)
        small = verify_program(program, tile=8)
        assert default.tile == 16 and small.tile == 8
        assert default.shared_memory_bytes == (15 * 16 + 16) * 4
        assert small.shared_memory_bytes == (7 * 16 + 8) * 4

    def test_nonpositive_tile_rejected(self):
        with pytest.raises(IsaError, match="tile size must be positive"):
            verify_program(_valid_program(), tile=0)

    def test_shared_limit_violation_is_instruction_indexed(self):
        report = verify_program(_valid_program(), shared_limit=1024)
        assert not report.ok
        # The deepest access is the store at instruction index 4.
        assert any(
            e.startswith("instruction 4:") and "shared-memory layout" in e
            for e in report.errors
        )

    def test_generous_limit_passes(self):
        footprint = verify_program(_valid_program()).shared_memory_bytes
        assert verify_program(_valid_program(), shared_limit=footprint).ok

    def test_register_budget_overflow(self):
        report = verify_program(_valid_program(), register_budget=3)
        assert not report.ok
        assert any("exceeding the budget of 3" in e for e in report.errors)
        assert report.register_budget == 3
        assert report.register_pressure == 4

    def test_register_accounting(self):
        report = verify_program(_valid_program())
        assert report.register_pressure == 4
        assert report.registers_free == report.register_budget - 4


class TestSemiringLegality:
    def test_nan_fill_rejected_on_selection_ring(self):
        program = Program(
            [
                FillMatrix(dst=0, value=float("nan"), etype=ElementType.F16),
                LoadMatrix(dst=1, addr=0, ld=16),
                FillMatrix(dst=2, value=0.0),
                Mmo(MmoOpcode.MINPLUS, 3, 0, 1, 2),
                StoreMatrix(src=3, addr=512, ld=16),
            ],
            auto_halt=True,
        )
        report = verify_program(program)
        assert any("NaN" in e and "poisons" in e for e in report.errors)

    def test_opposite_infinity_fill_rejected_on_plus_ring(self):
        # min-plus ⊕ identity is +inf; a -inf operand maps to NaN vs padding.
        program = Program(
            [
                FillMatrix(dst=0, value=float("-inf"), etype=ElementType.F16),
                LoadMatrix(dst=1, addr=0, ld=16),
                FillMatrix(dst=2, value=0.0),
                Mmo(MmoOpcode.MINPLUS, 3, 0, 1, 2),
                StoreMatrix(src=3, addr=512, ld=16),
            ],
            auto_halt=True,
        )
        report = verify_program(program)
        assert any("maps to NaN" in e for e in report.errors)

    def test_identity_infinity_fill_is_legal_padding(self):
        program = Program(
            [
                FillMatrix(dst=0, value=float("inf"), etype=ElementType.F16),
                LoadMatrix(dst=1, addr=0, ld=16),
                FillMatrix(dst=2, value=0.0),
                Mmo(MmoOpcode.MINPLUS, 3, 0, 1, 2),
                StoreMatrix(src=3, addr=512, ld=16),
            ],
            auto_halt=True,
        )
        assert verify_program(program).ok

    def test_non_binary_boolean_fill_rejected(self):
        program = Program(
            [
                FillMatrix(dst=0, value=0.5, etype=ElementType.B8),
                LoadMatrix(dst=1, addr=0, ld=16, etype=ElementType.B8),
                FillMatrix(dst=2, value=0.0, etype=ElementType.B8),
                Mmo(MmoOpcode.ORAND, 3, 0, 1, 2),
                StoreMatrix(src=3, addr=512, ld=16, etype=ElementType.B8),
            ],
            auto_halt=True,
        )
        report = verify_program(program)
        assert any("accepts only 0 or 1" in e for e in report.errors)

    def test_overwritten_fill_not_checked(self):
        # The poisonous fill is overwritten by a load before the mmo reads
        # the register, so no diagnostic applies.
        program = Program(
            [
                FillMatrix(dst=0, value=float("nan"), etype=ElementType.F16),
                LoadMatrix(dst=0, addr=0, ld=16),
                LoadMatrix(dst=1, addr=0, ld=16),
                FillMatrix(dst=2, value=0.0),
                Mmo(MmoOpcode.MINPLUS, 3, 0, 1, 2),
                StoreMatrix(src=3, addr=512, ld=16),
            ],
            auto_halt=True,
        )
        report = verify_program(program)
        assert report.ok, report.errors


class TestProgramEffects:
    def test_generated_kernel_effects(self):
        for opcode in MmoOpcode:
            program, _, _ = build_tile_mmo_program(
                opcode, tiles_k=3, boolean=opcode.semiring.is_boolean()
            )
            report = verify_program(program)
            effects = report.effects
            assert effects is not None
            assert effects.opcodes == (opcode,)
            assert effects.store_count == 1
            assert effects.max_fold_depth == 3
            assert effects.sequential_folds
            assert effects.deterministic  # left-fold chains always are

    def test_order_sensitivity_tracks_fp_add(self):
        import numpy as np

        for opcode in MmoOpcode:
            program, _, _ = build_tile_mmo_program(
                opcode, tiles_k=2, boolean=opcode.semiring.is_boolean()
            )
            effects = verify_program(program).effects
            assert effects.order_sensitive == (opcode.semiring.oplus is np.add)

    def test_store_set_on_report(self):
        report = verify_program(_valid_program())
        assert len(report.store_set) == 1
        assert report.store_set[0].addr == 512

    def test_summary_stats_shape(self):
        stats = verify_program(_valid_program()).summary_stats()
        assert stats == {
            "errors": 0,
            "warnings": 0,
            "dead_stores": 0,
            "stores": 1,
            "registers_used": 4,
            "shared_memory_bytes": (512 + 15 * 16 + 16) * 4,
        }


class TestLiveness:
    def test_dead_store_warning(self):
        program = Program(
            [
                FillMatrix(dst=0, value=1.0, etype=ElementType.F16),
                FillMatrix(dst=0, value=2.0, etype=ElementType.F16),  # kills #0
                LoadMatrix(dst=1, addr=0, ld=16),
                FillMatrix(dst=2, value=0.0),
                Mmo(MmoOpcode.MMA, 3, 0, 1, 2),
                StoreMatrix(src=3, addr=0, ld=16),
            ],
            auto_halt=True,
        )
        report = verify_program(program)
        assert report.ok
        assert any("dead store" in w for w in report.warnings)

    def test_unread_final_value_flagged(self):
        program = Program(
            [
                LoadMatrix(dst=0, addr=0, ld=16),
                LoadMatrix(dst=1, addr=0, ld=16),
                FillMatrix(dst=2, value=0.0),
                Mmo(MmoOpcode.MMA, 3, 0, 1, 2),
                # m3 never stored: the whole computation is dead.
            ],
            auto_halt=True,
        )
        report = verify_program(program)
        assert 3 in {program[i].d for i in report.dead_stores if hasattr(program[i], "d")}
        assert any("never" in w for w in report.warnings)
