"""Encode/decode round-trip tests, including property-based coverage."""

from __future__ import annotations

import math
import struct

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    ElementType,
    FillMatrix,
    Halt,
    IsaError,
    LoadMatrix,
    Mmo,
    MmoOpcode,
    StoreMatrix,
    WORD_BYTES,
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
)

registers = st.integers(0, 63)
addresses = st.integers(0, 2**32 - 1)
leading_dims = st.integers(1, 2**16 - 1)
etypes = st.sampled_from(list(ElementType))
opcodes = st.sampled_from(list(MmoOpcode))
f32_values = st.floats(
    allow_nan=False, width=32, allow_infinity=True
)

loads = st.builds(LoadMatrix, dst=registers, addr=addresses, ld=leading_dims, etype=etypes)
stores = st.builds(StoreMatrix, src=registers, addr=addresses, ld=leading_dims, etype=etypes)
fills = st.builds(FillMatrix, dst=registers, value=f32_values, etype=etypes)
mmos = st.builds(Mmo, opcode=opcodes, d=registers, a=registers, b=registers, c=registers)
halts = st.just(Halt())
instructions = st.one_of(loads, stores, fills, mmos, halts)


class TestRoundTrip:
    @given(instructions)
    def test_encode_decode_identity(self, instr):
        word = encode_instruction(instr)
        assert 0 <= word < 2**64
        assert decode_instruction(word) == instr

    @given(st.lists(instructions, max_size=32))
    def test_program_blob_round_trip(self, instrs):
        blob = encode_program(instrs)
        assert len(blob) == WORD_BYTES * len(instrs)
        assert decode_program(blob) == instrs

    def test_fill_nan_payload_survives(self):
        instr = FillMatrix(dst=1, value=float("nan"))
        decoded = decode_instruction(encode_instruction(instr))
        assert isinstance(decoded, FillMatrix)
        assert math.isnan(decoded.value)

    def test_distinct_instructions_encode_distinctly(self):
        words = {
            encode_instruction(i)
            for i in (
                LoadMatrix(dst=0, addr=0, ld=16),
                StoreMatrix(src=0, addr=0, ld=16),
                FillMatrix(dst=0, value=0.0),
                Mmo(MmoOpcode.MMA, 0, 0, 0, 0),
                Halt(),
                Mmo(MmoOpcode.MINPLUS, 0, 0, 0, 0),
                LoadMatrix(dst=1, addr=0, ld=16),
                LoadMatrix(dst=0, addr=1, ld=16),
                LoadMatrix(dst=0, addr=0, ld=17),
                LoadMatrix(dst=0, addr=0, ld=16, etype=ElementType.F32),
            )
        }
        assert len(words) == 10


class TestMalformedWords:
    def test_invalid_kind_rejected(self):
        with pytest.raises(IsaError, match="invalid instruction kind"):
            decode_instruction(7 << 61)

    def test_invalid_opcode_rejected(self):
        word = (3 << 61) | (15 << 57)  # MMO kind, opcode 15
        with pytest.raises(IsaError, match="invalid mmo opcode"):
            decode_instruction(word)

    def test_invalid_etype_rejected(self):
        word = (0 << 61) | (3 << 53) | (16 << 37)  # LOAD, etype=3, ld=16
        with pytest.raises(IsaError, match="invalid element type"):
            decode_instruction(word)

    def test_oversized_word_rejected(self):
        with pytest.raises(IsaError, match="64-bit"):
            decode_instruction(2**64)
        with pytest.raises(IsaError, match="64-bit"):
            decode_instruction(-1)

    def test_ragged_blob_rejected(self):
        with pytest.raises(IsaError, match="multiple of 8"):
            decode_program(b"\x00" * 9)

    def test_unknown_instruction_type_rejected(self):
        class Rogue:
            kind = MmoOpcode.MMA  # wrong type on purpose

        with pytest.raises((IsaError, TypeError)):
            encode_instruction(Rogue())  # type: ignore[arg-type]

    def test_decoded_load_with_ld_zero_rejected(self):
        # A word with LOAD kind and ld=0 must fail instruction validation.
        word = 0  # kind=LOAD, everything zero
        with pytest.raises(IsaError, match="leading dimension"):
            decode_instruction(word)
