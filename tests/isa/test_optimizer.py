"""Tests for the warp-program optimiser."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import TILE
from repro.hw import SharedMemory, WarpExecutor
from repro.isa import (
    ElementType,
    FillMatrix,
    LoadMatrix,
    Mmo,
    MmoOpcode,
    Program,
    StoreMatrix,
)
from repro.isa.optimizer import optimize_program
from repro.runtime.kernels import build_tile_mmo_program
from repro.compile import lower_mmo


def _mma_program(extra: list) -> Program:
    return Program(
        [
            LoadMatrix(dst=0, addr=0, ld=16),
            LoadMatrix(dst=1, addr=256, ld=16),
            FillMatrix(dst=2, value=0.0),
            *extra,
            Mmo(MmoOpcode.MMA, 3, 0, 1, 2),
            StoreMatrix(src=3, addr=512, ld=16),
        ],
        auto_halt=True,
    )


class TestRedundantLoads:
    def test_duplicate_load_removed(self):
        program = _mma_program([LoadMatrix(dst=0, addr=0, ld=16)])
        result = optimize_program(program)
        assert result.removed_loads == 1
        assert result.program.stats().loads == 2

    def test_different_address_kept(self):
        program = _mma_program([LoadMatrix(dst=0, addr=16, ld=16)])
        assert optimize_program(program).removed_loads == 0

    def test_store_invalidates_cached_fragments(self):
        program = Program(
            [
                LoadMatrix(dst=0, addr=0, ld=16),
                StoreMatrix(src=0, addr=0, ld=16, etype=ElementType.F16),
                LoadMatrix(dst=0, addr=0, ld=16),  # must reload after store
                StoreMatrix(src=0, addr=256, ld=16, etype=ElementType.F16),
            ],
            auto_halt=True,
        )
        assert optimize_program(program).removed_loads == 0

    def test_mmo_overwrite_invalidates(self):
        program = Program(
            [
                LoadMatrix(dst=0, addr=0, ld=16),
                LoadMatrix(dst=1, addr=256, ld=16),
                FillMatrix(dst=2, value=0.0),
                Mmo(MmoOpcode.MMA, 0, 0, 1, 2),  # clobbers m0
                LoadMatrix(dst=0, addr=0, ld=16),  # not redundant
                StoreMatrix(src=0, addr=512, ld=16, etype=ElementType.F16),
            ],
            auto_halt=True,
        )
        assert optimize_program(program).removed_loads == 0


class TestDeadWrites:
    def test_unused_fill_removed(self):
        program = _mma_program([FillMatrix(dst=9, value=5.0)])
        result = optimize_program(program)
        assert result.removed_writes == 1

    def test_dead_mmo_chain_removed_transitively(self):
        # m4 = mmo(...) feeds only m5 = mmo(...), which is never stored:
        # both must go, and then the operands' loads become dead too.
        program = Program(
            [
                LoadMatrix(dst=0, addr=0, ld=16),
                LoadMatrix(dst=1, addr=256, ld=16),
                FillMatrix(dst=2, value=0.0),
                Mmo(MmoOpcode.MMA, 4, 0, 1, 2),
                Mmo(MmoOpcode.MMA, 5, 0, 1, 4),
                Mmo(MmoOpcode.MMA, 3, 0, 1, 2),
                StoreMatrix(src=3, addr=512, ld=16),
            ],
            auto_halt=True,
        )
        result = optimize_program(program)
        assert result.removed_writes == 2
        assert result.program.stats().mmos == 1

    def test_generated_kernel_is_already_optimal(self):
        program, _, _ = build_tile_mmo_program(MmoOpcode.MINPLUS, 4, boolean=False)
        result = optimize_program(program)
        assert result.removed == 0
        assert result.program == program


class TestBehaviourPreservation:
    def _run(self, program: Program) -> np.ndarray:
        shm = SharedMemory()
        rng = np.random.default_rng(0)
        shm.write_matrix(0, rng.integers(0, 5, (TILE, TILE)), ElementType.F16)
        shm.write_matrix(256, rng.integers(0, 5, (TILE, TILE)), ElementType.F16)
        WarpExecutor(shm).run(program)
        return shm.read_matrix(512, (TILE, TILE), ElementType.F32)

    def test_optimised_program_computes_same_output(self):
        program = _mma_program(
            [LoadMatrix(dst=0, addr=0, ld=16), FillMatrix(dst=9, value=1.0)]
        )
        result = optimize_program(program)
        assert result.removed == 2
        np.testing.assert_array_equal(self._run(program), self._run(result.program))

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_random_programs_preserved(self, seed):
        rng = np.random.default_rng(seed)
        body = []
        written = [False] * 8
        for _ in range(rng.integers(4, 20)):
            choice = rng.integers(0, 4)
            if choice == 0:
                reg = int(rng.integers(0, 8))
                body.append(LoadMatrix(dst=reg, addr=int(rng.integers(0, 2)) * 256, ld=16))
                written[reg] = True
            elif choice == 1:
                reg = int(rng.integers(0, 8))
                body.append(FillMatrix(dst=reg, value=float(rng.integers(0, 4)), etype=ElementType.F16))
                written[reg] = True
            elif choice == 2:
                ready = [r for r in range(8) if written[r]]
                if len(ready) >= 2:
                    a, b = int(rng.choice(ready)), int(rng.choice(ready))
                    acc = int(rng.integers(0, 8))
                    d = int(rng.integers(0, 8))
                    body.append(FillMatrix(dst=acc, value=0.0, etype=ElementType.F32))
                    body.append(Mmo(MmoOpcode.MMA, d, a, b, acc))
                    written[acc] = written[d] = True
            else:
                ready = [r for r in range(8) if written[r]]
                if ready:
                    src = int(rng.choice(ready))
                    body.append(
                        StoreMatrix(src=src, addr=512, ld=16, etype=ElementType.F32)
                    )
        if not any(isinstance(i, StoreMatrix) for i in body):
            body.append(FillMatrix(dst=0, value=1.0, etype=ElementType.F32))
            body.append(StoreMatrix(src=0, addr=512, ld=16, etype=ElementType.F32))
        program = Program(body, auto_halt=True)

        def run(p: Program) -> np.ndarray:
            shm = SharedMemory()
            data = np.arange(TILE * TILE).reshape(TILE, TILE) % 7
            shm.write_matrix(0, data, ElementType.F16)
            shm.write_matrix(256, data.T, ElementType.F16)
            try:
                WarpExecutor(shm).run(p)
            except Exception:
                return None  # type: ignore[return-value]
            return shm.read_matrix(512, (TILE, TILE), ElementType.F32)

        original = run(program)
        if original is None:
            return  # programs that fault (type mismatches) are out of scope
        optimised = optimize_program(program).program
        np.testing.assert_array_equal(run(optimised), original)


def _run_tile_mmo(program: Program, artifact, rng: np.random.Generator) -> np.ndarray:
    """Execute a Figure-6 tile program against staged random panels.

    Stages the A/B panels and the C tile exactly like the emulate backend
    (tile kk of A at element ``kk*256``, tile kk of B at
    ``(tiles_k + kk)*256`` in the input element space, C at ``c_addr`` in
    the output space) and returns the D tile.
    """
    tiles_k = artifact.tiles_k
    if artifact.boolean:
        sample = lambda shape: rng.random(shape) < 0.4  # noqa: E731
    else:
        # Small integers are exact in f16 inputs and f32 accumulation, so
        # original and optimised programs must match bit-for-bit.
        sample = lambda shape: rng.integers(-4, 5, shape)  # noqa: E731
    shm = SharedMemory(artifact.shared_bytes)
    for kk in range(tiles_k):
        shm.write_matrix(kk * 256, sample((TILE, TILE)), artifact.in_etype)
        shm.write_matrix(
            (tiles_k + kk) * 256, sample((TILE, TILE)), artifact.in_etype
        )
    shm.write_matrix(artifact.c_addr, sample((TILE, TILE)), artifact.out_etype)
    WarpExecutor(shm).run(program)
    return shm.read_matrix(artifact.d_addr, (TILE, TILE), artifact.out_etype)


class TestGeneratedProgramPreservation:
    """optimise(build_tile_mmo_program(...)) is output-preserving, all rings."""

    @pytest.mark.parametrize("opcode", list(MmoOpcode))
    @given(seed=st.integers(0, 2**32 - 1), tiles_k=st.integers(1, 3))
    @settings(max_examples=10, deadline=None)
    def test_optimised_generated_program_bit_exact(self, opcode, seed, tiles_k):
        artifact = lower_mmo(opcode, 1, 1, tiles_k, has_accumulator=True)
        naive, c_addr, d_addr = build_tile_mmo_program(
            opcode, tiles_k, boolean=artifact.boolean
        )
        assert (c_addr, d_addr) == (artifact.c_addr, artifact.d_addr)
        optimised = optimize_program(naive).program
        original = _run_tile_mmo(naive, artifact, np.random.default_rng(seed))
        replayed = _run_tile_mmo(optimised, artifact, np.random.default_rng(seed))
        np.testing.assert_array_equal(replayed, original)

    def test_redundant_load_fires_on_c_resident_two_step_program(self):
        # A hand-written two-step kernel that keeps C resident in the
        # accumulator but sloppily reloads the A fragment from the same
        # address between steps: the optimiser must drop the reload and
        # nothing else, and the output must not change.
        def build(reload_a: bool) -> Program:
            body = [
                LoadMatrix(dst=2, addr=512, ld=16, etype=ElementType.F32),
                LoadMatrix(dst=0, addr=0, ld=16),
                LoadMatrix(dst=1, addr=256, ld=16),
                Mmo(MmoOpcode.MINPLUS, 2, 0, 1, 2),
            ]
            if reload_a:
                body.append(LoadMatrix(dst=0, addr=0, ld=16))
            body += [
                LoadMatrix(dst=1, addr=256, ld=16),  # same B: also redundant
                Mmo(MmoOpcode.MINPLUS, 2, 0, 1, 2),
                StoreMatrix(src=2, addr=768, ld=16),
            ]
            return Program(body, auto_halt=True)

        sloppy = build(reload_a=True)
        result = optimize_program(sloppy)
        assert result.removed_loads == 2  # the A reload and the repeated B
        assert result.removed_writes == 0

        def run(p: Program) -> np.ndarray:
            shm = SharedMemory()
            rng = np.random.default_rng(7)
            shm.write_matrix(0, rng.integers(0, 5, (TILE, TILE)), ElementType.F16)
            shm.write_matrix(256, rng.integers(0, 5, (TILE, TILE)), ElementType.F16)
            shm.write_matrix(512, rng.integers(0, 5, (TILE, TILE)), ElementType.F32)
            WarpExecutor(shm).run(p)
            return shm.read_matrix(768, (TILE, TILE), ElementType.F32)

        np.testing.assert_array_equal(run(result.program), run(sloppy))
