"""Unit tests for instruction objects and field validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.isa import (
    ElementType,
    FillMatrix,
    Halt,
    InstructionKind,
    IsaError,
    LoadMatrix,
    Mmo,
    MmoOpcode,
    NUM_MATRIX_REGISTERS,
    StoreMatrix,
)


class TestOpcodes:
    def test_nine_mmo_opcodes(self):
        assert len(MmoOpcode) == 9
        assert MmoOpcode.MMA == 0
        assert MmoOpcode.ADDNORM == 8

    def test_opcode_semiring_mapping(self):
        assert MmoOpcode.MMA.semiring.name == "plus-mul"
        assert MmoOpcode.MINPLUS.semiring.name == "min-plus"
        assert MmoOpcode.ORAND.semiring.name == "or-and"
        assert MmoOpcode.ADDNORM.semiring.name == "plus-norm"

    def test_every_opcode_has_distinct_semiring(self):
        names = {op.semiring.name for op in MmoOpcode}
        assert len(names) == 9

    def test_from_semiring_round_trip(self):
        for op in MmoOpcode:
            assert MmoOpcode.from_semiring(op.semiring) is op

    def test_from_mnemonic(self):
        assert MmoOpcode.from_mnemonic("minplus") is MmoOpcode.MINPLUS
        assert MmoOpcode.from_mnemonic(" MAXMIN ") is MmoOpcode.MAXMIN
        with pytest.raises(IsaError, match="unknown mmo opcode"):
            MmoOpcode.from_mnemonic("divsub")

    def test_element_type_sizes(self):
        assert ElementType.F16.nbytes == 2
        assert ElementType.F32.nbytes == 4
        assert ElementType.B8.nbytes == 1

    def test_element_type_suffix_round_trip(self):
        for etype in ElementType:
            assert ElementType.from_suffix(etype.suffix) is etype
        with pytest.raises(IsaError):
            ElementType.from_suffix("f64")


class TestFieldValidation:
    def test_register_range(self):
        LoadMatrix(dst=NUM_MATRIX_REGISTERS - 1, addr=0, ld=16)
        with pytest.raises(IsaError, match="out of range"):
            LoadMatrix(dst=NUM_MATRIX_REGISTERS, addr=0, ld=16)
        with pytest.raises(IsaError, match="out of range"):
            Mmo(opcode=MmoOpcode.MMA, d=0, a=1, b=2, c=-1)

    def test_address_range(self):
        LoadMatrix(dst=0, addr=2**32 - 1, ld=16)
        with pytest.raises(IsaError, match="32-bit"):
            LoadMatrix(dst=0, addr=2**32, ld=16)

    def test_leading_dimension_range(self):
        with pytest.raises(IsaError, match="leading dimension"):
            StoreMatrix(src=0, addr=0, ld=0)
        with pytest.raises(IsaError, match="leading dimension"):
            StoreMatrix(src=0, addr=0, ld=2**16)

    def test_fill_rounds_to_fp32(self):
        instr = FillMatrix(dst=0, value=1 / 3)
        assert instr.value == np.float32(1 / 3)

    def test_fill_accepts_infinities(self):
        assert FillMatrix(dst=0, value=float("inf")).value == float("inf")
        assert FillMatrix(dst=0, value=float("-inf")).value == float("-inf")

    def test_mmo_accepts_int_opcode(self):
        assert Mmo(opcode=1, d=0, a=1, b=2, c=3).opcode is MmoOpcode.MINPLUS


class TestRendering:
    def test_assembly_strings(self):
        assert str(LoadMatrix(dst=3, addr=256, ld=32)) == "load.f16 m3, [256], ld=32"
        assert str(StoreMatrix(src=4, addr=0, ld=16)) == "store.f32 m4, [0], ld=16"
        assert str(Mmo(MmoOpcode.MINPLUS, 3, 0, 1, 2)) == "mmo.minplus m3, m0, m1, m2"
        assert str(Halt()) == "halt"

    def test_kinds(self):
        assert LoadMatrix(dst=0, addr=0, ld=16).kind is InstructionKind.LOAD
        assert StoreMatrix(src=0, addr=0, ld=16).kind is InstructionKind.STORE
        assert FillMatrix(dst=0, value=0.0).kind is InstructionKind.FILL
        assert Mmo(MmoOpcode.MMA, 0, 0, 0, 0).kind is InstructionKind.MMO
        assert Halt().kind is InstructionKind.HALT
