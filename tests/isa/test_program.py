"""Program container validation and statistics tests."""

from __future__ import annotations

import pytest

from repro.isa import (
    FillMatrix,
    Halt,
    IsaError,
    LoadMatrix,
    Mmo,
    MmoOpcode,
    Program,
    StoreMatrix,
)


def _valid_body():
    return [
        LoadMatrix(dst=0, addr=0, ld=16),
        LoadMatrix(dst=1, addr=256, ld=16),
        FillMatrix(dst=2, value=0.0),
        Mmo(MmoOpcode.MMA, 3, 0, 1, 2),
        StoreMatrix(src=3, addr=512, ld=16),
    ]


class TestValidation:
    def test_valid_program(self):
        program = Program(_valid_body() + [Halt()])
        assert len(program) == 6

    def test_auto_halt(self):
        program = Program(_valid_body(), auto_halt=True)
        assert isinstance(program[-1], Halt)

    def test_empty_rejected(self):
        with pytest.raises(IsaError, match="empty"):
            Program([])

    def test_missing_halt_rejected(self):
        with pytest.raises(IsaError, match="must end with halt"):
            Program(_valid_body())

    def test_mid_program_halt_rejected(self):
        body = _valid_body()
        with pytest.raises(IsaError, match="final instruction"):
            Program(body[:2] + [Halt()] + body[2:] + [Halt()])

    def test_store_before_write_rejected(self):
        with pytest.raises(IsaError, match="store reads m7"):
            Program([StoreMatrix(src=7, addr=0, ld=16), Halt()])

    def test_mmo_operand_before_write_rejected(self):
        with pytest.raises(IsaError, match="operand b=m1"):
            Program(
                [
                    LoadMatrix(dst=0, addr=0, ld=16),
                    FillMatrix(dst=2, value=0.0),
                    Mmo(MmoOpcode.MMA, 3, 0, 1, 2),
                    Halt(),
                ]
            )

    def test_mmo_result_feeds_later_mmo(self):
        # d of a previous mmo counts as written.
        Program(
            [
                LoadMatrix(dst=0, addr=0, ld=16),
                LoadMatrix(dst=1, addr=0, ld=16),
                FillMatrix(dst=2, value=0.0),
                Mmo(MmoOpcode.MMA, 3, 0, 1, 2),
                Mmo(MmoOpcode.MMA, 4, 0, 1, 3),
                Halt(),
            ]
        )


class TestStatsAndIntrospection:
    def test_stats(self):
        program = Program(
            _valid_body() + [Mmo(MmoOpcode.MINPLUS, 4, 0, 1, 3), Halt()]
        )
        stats = program.stats()
        assert stats.loads == 2
        assert stats.stores == 1
        assert stats.fills == 1
        assert stats.mmos == 2
        assert stats.mmos_by_opcode == {MmoOpcode.MMA: 1, MmoOpcode.MINPLUS: 1}
        assert stats.total == 6

    def test_registers_used(self):
        program = Program(_valid_body(), auto_halt=True)
        assert program.registers_used() == {0, 1, 2, 3}

    def test_sequence_protocol(self):
        program = Program(_valid_body(), auto_halt=True)
        assert isinstance(program[0], LoadMatrix)
        assert list(program)[-1] == Halt()
        assert program == Program(_valid_body(), auto_halt=True)
        assert hash(program) == hash(Program(_valid_body(), auto_halt=True))
