"""Test package."""
