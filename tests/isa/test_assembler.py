"""Assembler parse/format tests."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    ElementType,
    FillMatrix,
    Halt,
    IsaError,
    LoadMatrix,
    Mmo,
    MmoOpcode,
    StoreMatrix,
    assemble,
    assemble_line,
    disassemble,
)

SAMPLE = """
; APSP inner tile
load.f16  m0, [0], ld=16      ; A tile
load.f16  m1, [0x100], ld=16  # B tile
fill.f32  m2, inf
mmo.minplus m3, m0, m1, m2
store.f32 m3, [512], ld=16
halt
"""


class TestAssemble:
    def test_sample_program(self):
        instrs = assemble(SAMPLE)
        assert instrs == [
            LoadMatrix(dst=0, addr=0, ld=16),
            LoadMatrix(dst=1, addr=256, ld=16),
            FillMatrix(dst=2, value=float("inf")),
            Mmo(MmoOpcode.MINPLUS, 3, 0, 1, 2),
            StoreMatrix(src=3, addr=512, ld=16),
            Halt(),
        ]

    def test_blank_and_comment_lines_skipped(self):
        assert assemble("; nothing\n\n   # still nothing\n") == []

    def test_hex_addresses(self):
        instr = assemble_line("load.f16 m5, [0xff], ld=16")
        assert isinstance(instr, LoadMatrix) and instr.addr == 255

    def test_negative_fill(self):
        instr = assemble_line("fill.f32 m1, -inf")
        assert isinstance(instr, FillMatrix) and instr.value == float("-inf")

    def test_case_insensitive_halt(self):
        assert assemble_line("HALT") == Halt()

    @pytest.mark.parametrize(
        "line",
        [
            "bogus m0, m1",
            "load.f64 m0, [0], ld=16",
            "mmo.divadd m0, m1, m2, m3",
            "load.f16 m99, [0], ld=16",
            "fill.f32 m0, not-a-number",
            "load.f16 m0, [0]",
        ],
    )
    def test_bad_lines_rejected(self, line):
        with pytest.raises(IsaError):
            assemble_line(line)

    def test_error_reports_line_number(self):
        with pytest.raises(IsaError, match="line 2"):
            assemble("halt\nbogus\n")


class TestRoundTrip:
    def test_disassemble_reassembles(self):
        instrs = assemble(SAMPLE)
        assert assemble(disassemble(instrs)) == instrs

    @given(
        st.lists(
            st.one_of(
                st.builds(
                    LoadMatrix,
                    dst=st.integers(0, 63),
                    addr=st.integers(0, 2**32 - 1),
                    ld=st.integers(1, 2**16 - 1),
                    etype=st.sampled_from(list(ElementType)),
                ),
                st.builds(
                    FillMatrix,
                    dst=st.integers(0, 63),
                    value=st.floats(allow_nan=False, width=32),
                ),
                st.builds(
                    Mmo,
                    opcode=st.sampled_from(list(MmoOpcode)),
                    d=st.integers(0, 63),
                    a=st.integers(0, 63),
                    b=st.integers(0, 63),
                    c=st.integers(0, 63),
                ),
            ),
            max_size=16,
        )
    )
    def test_text_round_trip_property(self, instrs):
        assert assemble(disassemble(instrs)) == instrs
