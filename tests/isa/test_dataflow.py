"""Tests for symbolic store effects and translation validation."""

from __future__ import annotations

import pytest

from repro.isa import (
    ElementType,
    FillMatrix,
    IsaError,
    LoadMatrix,
    Mmo,
    MmoOpcode,
    Program,
    StoreMatrix,
    store_effects,
    validate_translation,
)
from repro.isa.optimizer import optimize_program
from repro.runtime.kernels import build_tile_mmo_program


def _chain_program(tiles_k: int = 3) -> Program:
    body = [
        LoadMatrix(dst=2, addr=512, ld=16, etype=ElementType.F32),
    ]
    for kk in range(tiles_k):
        body.append(LoadMatrix(dst=0, addr=kk * 256, ld=16))
        body.append(LoadMatrix(dst=1, addr=(tiles_k + kk) * 256, ld=16))
        body.append(Mmo(MmoOpcode.MMA, 2, 0, 1, 2))
    body.append(StoreMatrix(src=2, addr=512, ld=16))
    return Program(body, auto_halt=True)


class TestStoreEffects:
    def test_single_store_term_shape(self):
        program = Program(
            [
                FillMatrix(dst=0, value=1.0, etype=ElementType.F16),
                FillMatrix(dst=1, value=2.0, etype=ElementType.F16),
                FillMatrix(dst=2, value=0.0),
                Mmo(MmoOpcode.MMA, 3, 0, 1, 2),
                StoreMatrix(src=3, addr=0, ld=16),
            ],
            auto_halt=True,
        )
        effects = store_effects(program)
        assert len(effects) == 1
        effect = effects[0]
        assert effect.addr == 0 and effect.ld == 16
        assert effect.fold_depth == 1
        kind, opcode, a_term, b_term, c_term = effect.term
        assert kind == "mmo" and opcode == int(MmoOpcode.MMA)
        assert a_term[0] == "fill" and c_term[0] == "fill"

    def test_fold_depth_counts_c_spine(self):
        effects = store_effects(_chain_program(tiles_k=4))
        assert len(effects) == 1
        assert effects[0].fold_depth == 4

    def test_mem_version_distinguishes_reloads_across_stores(self):
        program = Program(
            [
                LoadMatrix(dst=0, addr=0, ld=16, etype=ElementType.F32),
                StoreMatrix(src=0, addr=0, ld=16),
                LoadMatrix(dst=1, addr=0, ld=16, etype=ElementType.F32),
                StoreMatrix(src=1, addr=256, ld=16),
            ],
            auto_halt=True,
        )
        first, second = store_effects(program)
        # The second load may observe the first store: different version.
        assert first.term != second.term

    def test_fill_bit_pattern_identity(self):
        neg = store_effects(
            Program(
                [FillMatrix(dst=0, value=-0.0), StoreMatrix(src=0, addr=0, ld=16)],
                auto_halt=True,
            )
        )
        pos = store_effects(
            Program(
                [FillMatrix(dst=0, value=0.0), StoreMatrix(src=0, addr=0, ld=16)],
                auto_halt=True,
            )
        )
        assert neg[0].term != pos[0].term  # -0.0 and 0.0 are distinct fills


class TestValidateTranslation:
    def test_optimizer_output_validates(self):
        for opcode in MmoOpcode:
            program, _, _ = build_tile_mmo_program(
                opcode, tiles_k=3, boolean=opcode.semiring.is_boolean()
            )
            optimized = optimize_program(program)
            report = validate_translation(program, optimized.program)
            assert report.ok, (opcode, report.mismatches)
            assert report.original_stores == report.optimized_stores

    def test_identity_translation_validates(self):
        program = _chain_program()
        assert validate_translation(program, program).ok

    def test_dropped_store_detected(self):
        program = Program(
            [
                FillMatrix(dst=0, value=1.0),
                StoreMatrix(src=0, addr=0, ld=16),
                StoreMatrix(src=0, addr=256, ld=16),
            ],
            auto_halt=True,
        )
        broken = Program(
            [
                FillMatrix(dst=0, value=1.0),
                StoreMatrix(src=0, addr=0, ld=16),
            ],
            auto_halt=True,
        )
        report = validate_translation(program, broken)
        assert not report.ok
        assert any("store count changed" in m for m in report.mismatches)

    def test_changed_value_detected(self):
        program = _chain_program(tiles_k=2)
        # "Optimise" away one fold step: the store's reaching value changes.
        broken = _chain_program(tiles_k=1)
        # Give the broken program the same store destination.
        report = validate_translation(program, broken)
        assert not report.ok

    def test_changed_destination_detected(self):
        original = Program(
            [FillMatrix(dst=0, value=1.0), StoreMatrix(src=0, addr=0, ld=16)],
            auto_halt=True,
        )
        moved = Program(
            [FillMatrix(dst=0, value=1.0), StoreMatrix(src=0, addr=256, ld=16)],
            auto_halt=True,
        )
        report = validate_translation(original, moved)
        assert any("destination changed" in m for m in report.mismatches)

    def test_check_mode_raises(self):
        original = Program(
            [FillMatrix(dst=0, value=1.0), StoreMatrix(src=0, addr=0, ld=16)],
            auto_halt=True,
        )
        broken = Program(
            [FillMatrix(dst=0, value=2.0), StoreMatrix(src=0, addr=0, ld=16)],
            auto_halt=True,
        )
        with pytest.raises(IsaError, match="translation validation failed"):
            validate_translation(original, broken, check=True)

    def test_optimize_program_validate_flag(self):
        program = _chain_program()
        result = optimize_program(program, validate=True)
        assert validate_translation(program, result.program).ok
