"""Tests for the LaunchGraph IR and its builders (repro.sched.graph)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compile.lower import resolve_opcode
from repro.core import SEMIRINGS
from repro.resilience import FaultPlan, InjectedFault
from repro.runtime import use_context
from repro.sched import (
    GraphBuilder,
    GraphError,
    LaunchStep,
    Ref,
    SerialExecutor,
    ThreadPoolExecutor,
    batched_graph,
    split_k_graph,
)
from tests.conftest import make_ring_inputs

MIN_PLUS = SEMIRINGS["min-plus"]


class TestRef:
    def test_exactly_one_of_node_or_const(self):
        with pytest.raises(GraphError, match="exactly one"):
            Ref()
        with pytest.raises(GraphError, match="exactly one"):
            Ref(node=0, const=0)

    def test_window_narrows_once(self):
        ref = Ref(const=0).window(rows=(0, 16))
        assert ref.rows == (0, 16)
        with pytest.raises(GraphError, match="already windowed"):
            ref.window(rows=(16, 32))
        # a second axis is still free
        assert ref.window(cols=(0, 8)).cols == (0, 8)


class TestGraphBuilder:
    def test_constants_deduplicate_by_identity(self):
        with use_context() as ctx:
            builder = GraphBuilder(ctx, "test")
            a = np.zeros((4, 4))
            assert builder.constant(a) == builder.constant(a)
            assert builder.constant(a.copy()) != builder.constant(a)

    def test_shape_of_applies_windows(self):
        with use_context() as ctx:
            builder = GraphBuilder(ctx, "test")
            ref = builder.constant(np.zeros((32, 48)))
            assert builder.shape_of(ref) == (32, 48)
            assert builder.shape_of(ref.window(rows=(0, 16))) == (16, 48)
            assert builder.shape_of(ref.window(cols=(8, 20))) == (32, 12)

    def test_dependencies_follow_refs(self, rng):
        a, b, c = make_ring_inputs(MIN_PLUS, 32, 32, 32, rng)
        with use_context() as ctx:
            graph, out_ref, launch_refs = split_k_graph(
                ctx, resolve_opcode(MIN_PLUS), a, b, c, splits=2
            )
        assert len(launch_refs) == 2
        # the reduce node depends on both partial launches, in order
        assert out_ref.node is not None
        assert graph.dependencies(out_ref.node) == (0, 1)
        assert graph.launches == (0, 1)
        for index in graph.launches:
            assert graph.dependencies(index) == ()

    def test_reduce_rejects_empty_inputs(self):
        with use_context() as ctx:
            builder = GraphBuilder(ctx, "test")
            with pytest.raises(GraphError, match="at least one input"):
                builder.reduce(MIN_PLUS, ())


class TestBuildTimeOrdinals:
    """Satellite regression: fault ordinals are fixed before execution."""

    def test_ordinals_reserved_in_node_order_at_build_time(self, rng):
        a, b, _ = make_ring_inputs(MIN_PLUS, 16, 48, 16, rng, with_c=False)
        plan = FaultPlan()
        with use_context(backend="vectorized", fault_plan=plan) as ctx:
            graph, _, launch_refs = split_k_graph(
                ctx, resolve_opcode(MIN_PLUS), a, b, None, splits=3
            )
        # Nothing has executed, yet the full fault schedule is assigned.
        assert plan.launches_seen == len(launch_refs) == 3
        ordinals = [
            node.fault_ordinal
            for node in graph.nodes
            if isinstance(node, LaunchStep)
        ]
        assert ordinals == [0, 1, 2]

    def test_degenerate_launches_claim_no_ordinal(self, rng):
        # k == 0 split-k degenerates to one empty-k launch; m > 0 and
        # n > 0 still hold, so it reserves — but an m == 0 batch does not.
        plan = FaultPlan()
        a3 = np.zeros((2, 0, 8))
        b3 = np.zeros((2, 8, 8))
        with use_context(backend="vectorized", fault_plan=plan) as ctx:
            graph, launch_refs = batched_graph(
                ctx, resolve_opcode(MIN_PLUS), a3, b3, None, 2
            )
        assert plan.launches_seen == 0
        assert len(launch_refs) == 2
        assert all(
            node.fault_ordinal is None
            for node in graph.nodes
            if isinstance(node, LaunchStep)
        )

    def test_threaded_run_injects_the_build_time_schedule(self, rng):
        """Drop ordinal 1: serial and threaded runs hit the same launch."""
        a, b, _ = make_ring_inputs(MIN_PLUS, 16, 48, 16, rng, with_c=False)
        for scheduler in (SerialExecutor(), ThreadPoolExecutor(max_workers=4)):
            plan = FaultPlan(drop=(1,))
            with use_context(backend="vectorized", fault_plan=plan) as ctx:
                graph, _, _ = split_k_graph(
                    ctx, resolve_opcode(MIN_PLUS), a, b, None, splits=3
                )
                with pytest.raises(InjectedFault, match="dropped launch 1"):
                    scheduler.run(graph, context=ctx)
            assert plan.injected_drops == 1
