"""Serial-vs-threaded bit-identity for every graph the builders produce.

The ThreadPoolExecutor's contract is that parallelism is *unobservable*:
result bytes, kernel statistics, fault injections, and surfaced errors
all match the SerialExecutor on every ring — because fold order, gather
windows, and fault ordinals are pinned in the graph, not the schedule.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SEMIRINGS, mmo
from repro.hw import Simd2Device
from repro.resilience import FaultPlan, FaultSpec, InjectedFault
from repro.resilience.policy import RetryPolicy
from repro.runtime import Trace, use_context
from repro.runtime.batched import batched_mmo
from repro.runtime.closure import closure
from repro.runtime.host import HostRuntime
from repro.runtime.kernels import mmo_tiled_split_k
from repro.runtime.multidevice import mmo_tiled_multi_device
from repro.sched import GraphError, ThreadPoolExecutor, resolve_scheduler
from tests.conftest import make_ring_inputs

MIN_PLUS = SEMIRINGS["min-plus"]
THREADED = ThreadPoolExecutor(max_workers=4)


def _closure_input(n: int, rng: np.random.Generator) -> np.ndarray:
    adj = rng.integers(1, 9, size=(n, n)).astype(np.float64)
    adj[rng.random((n, n)) < 0.6] = np.inf
    np.fill_diagonal(adj, 0.0)
    return adj


class TestBitIdentityAllRings:
    """Every opcode, threaded == serial, byte for byte."""

    def test_split_k(self, ring, rng):
        a, b, c = make_ring_inputs(ring, 32, 48, 32, rng)
        serial, serial_stats = mmo_tiled_split_k(ring, a, b, c, splits=3)
        with use_context(scheduler=THREADED) as ctx:
            threaded, threaded_stats = mmo_tiled_split_k(
                ring, a, b, c, splits=3, context=ctx
            )
        np.testing.assert_array_equal(threaded, serial)
        assert threaded.dtype == serial.dtype
        assert threaded_stats == serial_stats

    def test_batched(self, ring, rng):
        a3 = np.stack([make_ring_inputs(ring, 32, 16, 24, rng)[0] for _ in range(4)])
        b3 = np.stack([make_ring_inputs(ring, 32, 16, 24, rng)[1] for _ in range(4)])
        serial, _ = batched_mmo(ring, a3, b3)
        with use_context(scheduler=THREADED) as ctx:
            threaded, stats = batched_mmo(ring, a3, b3, context=ctx)
        np.testing.assert_array_equal(threaded, serial)
        assert stats.batch == 4

    def test_banded_closure(self, ring, rng):
        if ring.is_boolean():
            adj = rng.random((48, 48)) < 0.1
            np.fill_diagonal(adj, True)
        else:
            adj = _closure_input(48, rng).astype(ring.output_dtype, copy=False)
        serial = closure(ring, adj, max_iterations=6)
        with use_context(scheduler=THREADED) as ctx:
            threaded = closure(ring, adj, max_iterations=6, bands=3, context=ctx)
        np.testing.assert_array_equal(threaded.matrix, serial.matrix)
        assert threaded.iterations == serial.iterations
        assert threaded.converged == serial.converged

    def test_multi_device(self, ring, rng):
        a, b, c = make_ring_inputs(ring, 64, 16, 32, rng)
        serial, serial_shares = mmo_tiled_multi_device(
            ring, a, b, c, devices=[Simd2Device(sm_count=2) for _ in range(3)]
        )
        with use_context(scheduler=THREADED) as ctx:
            threaded, shares = mmo_tiled_multi_device(
                ring, a, b, c,
                devices=[Simd2Device(sm_count=2) for _ in range(3)],
                backend="emulate", context=ctx,
            )
        np.testing.assert_array_equal(threaded, serial)
        assert [s.row_start for s in shares] == [s.row_start for s in serial_shares]


class TestHostRuntime:
    def test_run_closure_threaded_matches_serial(self, rng):
        adj = _closure_input(32, rng)
        serial_host = HostRuntime()
        serial_host.upload("dist", adj, dtype=np.float64)
        serial = serial_host.run_closure("min-plus", "dist")
        from repro.runtime import ExecutionContext

        threaded_host = HostRuntime(
            context=ExecutionContext(backend="emulate", scheduler=THREADED)
        )
        threaded_host.upload("dist", adj, dtype=np.float64)
        threaded = threaded_host.run_closure("min-plus", "dist")
        np.testing.assert_array_equal(threaded.matrix, serial.matrix)
        assert threaded.iterations == serial.iterations
        assert threaded.converged == serial.converged
        # the host event timeline is schedule-independent too
        assert threaded_host.event_kinds() == serial_host.event_kinds()


class TestFaultsUnderThreads:
    def test_corruption_injects_identically(self, rng):
        a3 = np.stack([make_ring_inputs(MIN_PLUS, 32, 16, 32, rng)[0] for _ in range(4)])
        b3 = np.stack([make_ring_inputs(MIN_PLUS, 32, 16, 32, rng)[1] for _ in range(4)])
        outs = []
        for scheduler in (None, THREADED):
            plan = FaultPlan(seed=7, corrupt={2: FaultSpec(kind="bitflip")})
            with use_context(
                backend="vectorized", fault_plan=plan, scheduler=scheduler
            ) as ctx:
                got, _ = batched_mmo("min-plus", a3, b3, context=ctx)
            assert plan.injected_corruptions == 1
            outs.append(got)
        np.testing.assert_array_equal(outs[0], outs[1])
        # the corruption landed in batch item 2 on both schedules
        clean, _ = batched_mmo("min-plus", a3, b3)
        diff_items = {int(i) for i in np.argwhere(outs[0] != clean)[:, 0]}
        assert diff_items == {2}

    def test_checked_retry_recovers_under_threads(self, rng):
        """A corrupted band is detected by ABFT and retried concurrently;
        the retry claims a fresh ordinal and the result matches clean."""
        a, b, c = make_ring_inputs(MIN_PLUS, 64, 16, 32, rng)
        devices = [Simd2Device() for _ in range(3)]
        clean, _ = mmo_tiled_multi_device(MIN_PLUS, a, b, c, devices=devices)
        plan = FaultPlan(seed=5, corrupt={1: FaultSpec(kind="nan")})
        trace = Trace()
        with use_context(
            backend="emulate", fault_plan=plan, trace=trace, scheduler=THREADED
        ) as ctx:
            got, _ = mmo_tiled_multi_device(
                MIN_PLUS, a, b, c,
                devices=[Simd2Device() for _ in range(3)],
                context=ctx, checked=True, retry=RetryPolicy(max_retries=2),
            )
        np.testing.assert_array_equal(got, clean)
        assert plan.injected_corruptions == 1
        assert trace.summary().retries >= 1

    def test_repartition_mid_graph_under_threads(self, rng):
        a, b, c = make_ring_inputs(MIN_PLUS, 64, 16, 32, rng)
        clean, _ = mmo_tiled_multi_device(
            MIN_PLUS, a, b, c, devices=[Simd2Device() for _ in range(3)]
        )
        plan = FaultPlan(fail_devices=(1,))
        blacklist: set[int] = set()
        with use_context(
            backend="emulate", fault_plan=plan, scheduler=THREADED
        ) as ctx:
            got, shares = mmo_tiled_multi_device(
                MIN_PLUS, a, b, c,
                devices=[Simd2Device() for _ in range(3)],
                context=ctx, on_device_failure="repartition",
                blacklist=blacklist,
            )
        np.testing.assert_array_equal(got, clean)
        assert blacklist == {1}
        assert plan.injected_device_failures == 1
        assert all(share.device_index != 1 for share in shares)

    def test_threaded_failure_is_deterministic(self, rng):
        """With several faulting nodes the smallest node index's error
        surfaces — the one a serial run would hit first."""
        a3 = np.stack([make_ring_inputs(MIN_PLUS, 32, 16, 32, rng)[0] for _ in range(4)])
        b3 = np.stack([make_ring_inputs(MIN_PLUS, 32, 16, 32, rng)[1] for _ in range(4)])
        for scheduler in (None, THREADED):
            plan = FaultPlan(drop=(1, 3))
            with use_context(
                backend="vectorized", fault_plan=plan, scheduler=scheduler
            ) as ctx:
                with pytest.raises(InjectedFault, match="dropped launch 1"):
                    batched_mmo("min-plus", a3, b3, context=ctx)


class TestSchedulerResolution:
    def test_default_is_serial(self):
        with use_context() as ctx:
            scheduler = resolve_scheduler(ctx)
        from repro.sched import SerialExecutor

        assert isinstance(scheduler, SerialExecutor)

    def test_context_scheduler_wins(self):
        with use_context(scheduler=THREADED) as ctx:
            assert resolve_scheduler(ctx) is THREADED

    def test_worker_count_validated(self):
        with pytest.raises(GraphError, match="must be positive"):
            ThreadPoolExecutor(max_workers=0)
