"""Cancellation races and scheduler-seam deadlines.

Both executors check the context's token and budget *between* node
submissions: pending nodes never start, in-flight nodes drain, and the
typed error reports exactly which node indices ran.  These tests pin the
race behaviour — a cancellation landing at any point must never deadlock
the thread pool, and the completed sets must stay prefix-consistent
(serial) / dependency-consistent (threaded).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.compile.lower import resolve_opcode
from repro.core import SEMIRINGS
from repro.hooks.pipeline import Hook
from repro.resilience import (
    CancellationToken,
    DeadlineExceeded,
    ExecutionBudget,
    OperationCancelled,
    VirtualClock,
)
from repro.runtime import use_context
from repro.runtime.batched import batched_mmo
from repro.sched import (
    SerialExecutor,
    ThreadPoolExecutor,
    batched_graph,
    split_k_graph,
)
from tests.conftest import make_ring_inputs

MIN_PLUS = SEMIRINGS["min-plus"]


class CancelAfter(Hook):
    """Cancel the token once ``count`` launches have completed."""

    def __init__(self, token: CancellationToken, count: int, reason: str):
        self.token = token
        self.count = count
        self.reason = reason
        self._lock = threading.Lock()
        self._seen = 0

    def post_execute(self, launch) -> None:
        with self._lock:
            self._seen += 1
            if self._seen >= self.count:
                self.token.cancel(self.reason)


class AdvanceClockAfter(Hook):
    """Advance a virtual clock once ``count`` launches have completed."""

    def __init__(self, clock: VirtualClock, count: int, seconds: float):
        self.clock = clock
        self.count = count
        self.seconds = seconds
        self._lock = threading.Lock()
        self._seen = 0

    def post_execute(self, launch) -> None:
        with self._lock:
            self._seen += 1
            if self._seen == self.count:
                self.clock.advance(self.seconds)


class TestCancellationToken:
    def test_first_cancel_wins_the_reason(self):
        token = CancellationToken()
        assert not token.cancelled
        token.cancel("client disconnected")
        token.cancel("deadline watchdog")
        assert token.cancelled
        assert token.reason == "client disconnected"

    def test_raise_if_cancelled(self):
        token = CancellationToken()
        token.raise_if_cancelled()  # not cancelled: no-op
        token.cancel("stop")
        with pytest.raises(OperationCancelled, match="stop"):
            token.raise_if_cancelled(nodes_completed=(0, 1), total_nodes=4)


class TestSerialCancellation:
    def test_pre_cancelled_run_starts_nothing(self, rng):
        a3 = np.stack(
            [make_ring_inputs(MIN_PLUS, 16, 8, 16, rng)[0] for _ in range(4)]
        )
        b3 = np.stack(
            [make_ring_inputs(MIN_PLUS, 16, 8, 16, rng)[1] for _ in range(4)]
        )
        token = CancellationToken()
        token.cancel("pre-emptied")
        with use_context(backend="vectorized", cancel=token) as ctx:
            with pytest.raises(OperationCancelled) as excinfo:
                batched_mmo("min-plus", a3, b3, context=ctx)
        assert excinfo.value.nodes_completed == ()
        assert excinfo.value.reason == "pre-emptied"

    def test_mid_run_cancel_keeps_the_prefix(self, rng):
        a3 = np.stack(
            [make_ring_inputs(MIN_PLUS, 16, 8, 16, rng)[0] for _ in range(6)]
        )
        b3 = np.stack(
            [make_ring_inputs(MIN_PLUS, 16, 8, 16, rng)[1] for _ in range(6)]
        )
        token = CancellationToken()
        hook = CancelAfter(token, 2, "enough")
        with use_context(
            backend="vectorized", cancel=token, hooks=(hook,)
        ) as ctx:
            with pytest.raises(OperationCancelled) as excinfo:
                batched_mmo("min-plus", a3, b3, context=ctx)
        err = excinfo.value
        # Serial completes a build-order prefix, and nothing after the
        # cancellation point ever started.
        assert err.nodes_completed == (0, 1)
        assert err.total_nodes == 6
        assert "2/6 node(s)" in str(err)

    def test_cancel_wins_over_expired_deadline(self, rng):
        a, b, _ = make_ring_inputs(MIN_PLUS, 16, 32, 16, rng, with_c=False)
        clock = VirtualClock()
        budget = ExecutionBudget(deadline_s=1.0)
        budget.check_deadline(clock)
        clock.advance(10.0)  # deadline long gone
        token = CancellationToken()
        token.cancel("user hit ^C")
        with use_context(
            backend="vectorized", cancel=token, budget=budget, clock=clock
        ) as ctx:
            graph, _, _ = split_k_graph(
                ctx, resolve_opcode(MIN_PLUS), a, b, None, splits=2
            )
            with pytest.raises(OperationCancelled, match="user hit"):
                SerialExecutor().run(graph, context=ctx)


class TestThreadedCancellation:
    def test_threaded_drains_and_reports_unrun_nodes(self, rng):
        # split-k: the reduce node depends on every partial launch, so a
        # cancel during the launch wave leaves it unrun — the threaded
        # executor drains in-flight launches and raises without ever
        # submitting the reduce.
        a, b, _ = make_ring_inputs(MIN_PLUS, 16, 64, 16, rng, with_c=False)
        token = CancellationToken()
        hook = CancelAfter(token, 2, "load shed")
        with use_context(
            backend="vectorized", cancel=token, hooks=(hook,)
        ) as ctx:
            graph, out_ref, _ = split_k_graph(
                ctx, resolve_opcode(MIN_PLUS), a, b, None, splits=4
            )
            with pytest.raises(OperationCancelled) as excinfo:
                ThreadPoolExecutor(max_workers=2).run(graph, context=ctx)
        err = excinfo.value
        assert err.reason == "load shed"
        assert err.total_nodes == len(graph.nodes)
        # Dependency consistency: the reduce node never ran, and every
        # reported index really is a graph node that ran to completion.
        assert out_ref.node not in err.nodes_completed
        assert set(err.nodes_completed) <= set(range(len(graph.nodes)))
        assert len(err.nodes_completed) >= 2

    def test_serial_and_threaded_raise_the_same_typed_error(self, rng):
        a, b, _ = make_ring_inputs(MIN_PLUS, 16, 64, 16, rng, with_c=False)
        raised = []
        for scheduler in (SerialExecutor(), ThreadPoolExecutor(max_workers=2)):
            token = CancellationToken()
            hook = CancelAfter(token, 2, "shared reason")
            with use_context(
                backend="vectorized", cancel=token, hooks=(hook,)
            ) as ctx:
                graph, _, _ = split_k_graph(
                    ctx, resolve_opcode(MIN_PLUS), a, b, None, splits=4
                )
                with pytest.raises(OperationCancelled) as excinfo:
                    scheduler.run(graph, context=ctx)
            raised.append(excinfo.value)
        serial_err, threaded_err = raised
        assert type(serial_err) is type(threaded_err)
        assert serial_err.reason == threaded_err.reason
        assert serial_err.total_nodes == threaded_err.total_nodes

    def test_cancel_at_every_point_never_deadlocks(self, rng):
        # The race suite proper: fire the cancellation after the Nth
        # launch for every N; each run must terminate (drain, not hang)
        # with either the typed error or a full result.
        a, b, _ = make_ring_inputs(MIN_PLUS, 16, 64, 16, rng, with_c=False)
        for cancel_after in range(1, 6):
            token = CancellationToken()
            hook = CancelAfter(token, cancel_after, f"point {cancel_after}")
            with use_context(
                backend="vectorized", cancel=token, hooks=(hook,)
            ) as ctx:
                graph, _, _ = split_k_graph(
                    ctx, resolve_opcode(MIN_PLUS), a, b, None, splits=4
                )
                try:
                    result = ThreadPoolExecutor(max_workers=3).run(
                        graph, context=ctx
                    )
                except OperationCancelled as exc:
                    assert exc.reason == f"point {cancel_after}"
                    assert len(exc.nodes_completed) < len(graph.nodes)
                else:
                    # A cancel landing after the last node completed is
                    # indistinguishable from no cancel: full result.
                    assert result.completed_nodes == tuple(
                        range(len(graph.nodes))
                    )

    def test_fully_drained_run_returns_normally(self, rng):
        # Flat graphs submit every node before a mid-run cancel can land;
        # once all values exist the run is a success, matching serial's
        # rule of only checking before *pending* nodes.
        a3 = np.stack(
            [make_ring_inputs(MIN_PLUS, 16, 8, 16, rng)[0] for _ in range(4)]
        )
        b3 = np.stack(
            [make_ring_inputs(MIN_PLUS, 16, 8, 16, rng)[1] for _ in range(4)]
        )
        token = CancellationToken()
        hook = CancelAfter(token, 4, "too late")
        with use_context(
            backend="vectorized", cancel=token, hooks=(hook,)
        ) as ctx:
            graph, _ = batched_graph(
                ctx, resolve_opcode(MIN_PLUS), a3, b3, None, 4
            )
            result = ThreadPoolExecutor(max_workers=4).run(graph, context=ctx)
        assert result.completed_nodes == tuple(range(len(graph.nodes)))


class TestSchedulerDeadline:
    def test_deadline_trips_between_nodes_with_progress(self, rng):
        a3 = np.stack(
            [make_ring_inputs(MIN_PLUS, 16, 8, 16, rng)[0] for _ in range(4)]
        )
        b3 = np.stack(
            [make_ring_inputs(MIN_PLUS, 16, 8, 16, rng)[1] for _ in range(4)]
        )
        clock = VirtualClock()
        budget = ExecutionBudget(deadline_s=5.0)
        hook = AdvanceClockAfter(clock, 2, 10.0)
        with use_context(
            backend="vectorized", budget=budget, clock=clock, hooks=(hook,)
        ) as ctx:
            with pytest.raises(DeadlineExceeded) as excinfo:
                batched_mmo("min-plus", a3, b3, context=ctx)
        err = excinfo.value
        assert err.nodes_completed == (0, 1)
        assert err.deadline_s == 5.0
        assert err.launches_spent == 2

    def test_success_reports_all_nodes_completed(self, rng):
        a3 = np.stack(
            [make_ring_inputs(MIN_PLUS, 16, 8, 16, rng)[0] for _ in range(3)]
        )
        b3 = np.stack(
            [make_ring_inputs(MIN_PLUS, 16, 8, 16, rng)[1] for _ in range(3)]
        )
        with use_context(backend="vectorized") as ctx:
            graph, _ = batched_graph(
                ctx, resolve_opcode(MIN_PLUS), a3, b3, None, 3
            )
            result = SerialExecutor().run(graph, context=ctx)
        assert result.completed_nodes == tuple(range(len(graph.nodes)))
