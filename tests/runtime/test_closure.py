"""Tests for closure iteration (Bellman-Ford / Leyzorek / convergence)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SemiringError
from repro.runtime import closure, max_iterations_for


def _path_graph_minplus(n: int) -> np.ndarray:
    """A directed path 0→1→…→n-1 with unit weights, min-plus encoded."""
    adj = np.full((n, n), np.inf)
    np.fill_diagonal(adj, 0.0)
    for i in range(n - 1):
        adj[i, i + 1] = 1.0
    return adj


def _expected_path_distances(n: int) -> np.ndarray:
    expected = np.full((n, n), np.inf, dtype=np.float32)
    for i in range(n):
        for j in range(i, n):
            expected[i, j] = float(j - i)
    return expected


class TestIterationBounds:
    def test_bounds(self):
        assert max_iterations_for("bellman-ford", 10) == 10
        assert max_iterations_for("leyzorek", 10) == 4
        assert max_iterations_for("leyzorek", 1) == 1
        assert max_iterations_for("bellman-ford", 0) == 1

    def test_unknown_method(self):
        with pytest.raises(SemiringError, match="unknown closure method"):
            max_iterations_for("dijkstra", 4)


class TestLeyzorek:
    def test_path_graph_distances(self):
        n = 12
        result = closure("min-plus", _path_graph_minplus(n), method="leyzorek")
        np.testing.assert_array_equal(result.matrix, _expected_path_distances(n))
        assert result.converged

    def test_iteration_count_is_logarithmic(self):
        # Path of length 11 (diameter 11): squaring needs ⌈log2(11)⌉ = 4
        # productive iterations plus one to observe the fixpoint.
        result = closure("min-plus", _path_graph_minplus(12), method="leyzorek")
        assert result.iterations <= max_iterations_for("leyzorek", 12) + 1

    def test_small_diameter_converges_fast(self):
        # A star graph has diameter 2 regardless of size.
        n = 20
        adj = np.full((n, n), np.inf)
        np.fill_diagonal(adj, 0.0)
        adj[0, 1:] = 1.0
        adj[1:, 0] = 1.0
        result = closure("min-plus", adj, method="leyzorek")
        assert result.converged
        assert result.iterations <= 3  # log2(diameter)=1, +1 fixpoint, slack 1


class TestBellmanFord:
    def test_matches_leyzorek(self):
        n = 9
        adj = _path_graph_minplus(n)
        bf = closure("min-plus", adj, method="bellman-ford")
        ley = closure("min-plus", adj, method="leyzorek")
        np.testing.assert_array_equal(bf.matrix, ley.matrix)

    def test_needs_linear_iterations_on_path(self):
        n = 9
        bf = closure("min-plus", _path_graph_minplus(n), method="bellman-ford")
        # Diameter n-1 = 8: BF relaxes one hop per iteration.
        assert bf.iterations >= n - 2
        assert bf.converged

    def test_random_graph_agreement(self):
        rng = np.random.default_rng(17)
        n = 24
        adj = np.where(rng.random((n, n)) < 0.2, rng.integers(1, 9, (n, n)), np.inf).astype(float)
        np.fill_diagonal(adj, 0.0)
        bf = closure("min-plus", adj, method="bellman-ford")
        ley = closure("min-plus", adj, method="leyzorek")
        np.testing.assert_array_equal(bf.matrix, ley.matrix)


class TestConvergencePolicy:
    def test_without_check_runs_worst_case(self):
        n = 16
        adj = _path_graph_minplus(n)
        result = closure("min-plus", adj, method="leyzorek", convergence_check=False)
        assert result.iterations == max_iterations_for("leyzorek", n)
        assert result.convergence_checks == 0
        assert not result.converged
        np.testing.assert_array_equal(result.matrix, _expected_path_distances(n))

    def test_with_check_counts_checks(self):
        result = closure("min-plus", _path_graph_minplus(8), method="leyzorek")
        assert result.convergence_checks == result.iterations

    def test_max_iterations_cap(self):
        result = closure(
            "min-plus", _path_graph_minplus(16), method="bellman-ford", max_iterations=2
        )
        assert result.iterations == 2
        assert not result.converged
        assert result.matrix[0, 5] == np.inf  # 5 hops not yet relaxed after 2

    def test_kernel_stats_accumulate(self):
        result = closure("min-plus", _path_graph_minplus(20), method="leyzorek")
        assert len(result.kernel_stats) == result.iterations
        per_iter = result.kernel_stats[0].mmo_instructions
        assert result.total_mmo_instructions == per_iter * result.iterations


class TestOtherRings:
    def test_or_and_transitive_closure(self):
        n = 6
        adj = np.zeros((n, n), dtype=bool)
        np.fill_diagonal(adj, True)
        for i in range(n - 1):
            adj[i, i + 1] = True
        result = closure("or-and", adj, method="leyzorek")
        np.testing.assert_array_equal(result.matrix, np.triu(np.ones((n, n), bool)))

    def test_max_min_capacity_closure(self):
        # 0 -5- 1 -3- 2: capacity(0,2) = min(5,3) = 3 under max-min.
        adj = np.full((3, 3), -np.inf)
        np.fill_diagonal(adj, np.inf)  # a node reaches itself with ∞ capacity
        adj[0, 1] = adj[1, 0] = 5.0
        adj[1, 2] = adj[2, 1] = 3.0
        result = closure("max-min", adj, method="leyzorek")
        assert result.matrix[0, 2] == 3.0


class TestValidation:
    def test_non_square_rejected(self):
        with pytest.raises(SemiringError, match="square"):
            closure("min-plus", np.zeros((2, 3)))

    def test_bad_method_rejected(self):
        with pytest.raises(SemiringError, match="unknown closure method"):
            closure("min-plus", np.zeros((2, 2)), method="warshall")

    def test_bad_max_iterations(self):
        with pytest.raises(SemiringError, match="must be positive"):
            closure("min-plus", np.zeros((2, 2)), max_iterations=0)


class TestNanFixpoint:
    """Regression: a NaN-poisoned matrix must still terminate.

    ``np.array_equal`` treats ``NaN != NaN``, so the old convergence check
    could never see a fixpoint containing NaN and spun to the iteration
    cap.  ``matrices_equal`` (NaN == NaN) fixes that.
    """

    def test_nan_fixpoint_converges(self):
        from repro.runtime import matrices_equal

        adj = _path_graph_minplus(8).astype(np.float32)
        adj[0, 1] = np.nan
        result = closure("min-plus", adj, max_iterations=100)
        assert result.converged
        assert result.iterations < 100
        # the fixpoint it stopped at really is a fixpoint
        again = closure(
            "min-plus", result.matrix, max_iterations=2, convergence_check=True
        )
        assert matrices_equal(again.matrix, result.matrix)

    def test_matrices_equal_semantics(self):
        from repro.runtime import matrices_equal

        nan_mat = np.array([[np.nan, 1.0]], dtype=np.float32)
        assert matrices_equal(nan_mat, nan_mat.copy())
        assert not matrices_equal(nan_mat, np.array([[np.nan, 2.0]]))
        bools = np.array([[True, False]])
        assert matrices_equal(bools, bools.copy())
        assert not matrices_equal(bools, ~bools)


class TestWatchdogIntegration:
    def test_healthy_run_reports_diagnostics(self):
        result = closure("min-plus", _path_graph_minplus(8), watchdog=True)
        assert result.diagnostics is not None
        assert result.diagnostics.healthy
        assert result.diagnostics.describe() == "closure healthy"

    def test_no_watchdog_means_no_diagnostics(self):
        result = closure("min-plus", _path_graph_minplus(8))
        assert result.diagnostics is None

    def test_nan_appearing_mid_run_trips(self, rng):
        from repro.resilience import FaultPlan, FaultSpec
        from repro.runtime import Trace, use_context

        adj = _path_graph_minplus(32).astype(np.float32)
        trace = Trace()
        plan = FaultPlan(seed=6, corrupt={1: FaultSpec(kind="nan")})
        with use_context(backend="vectorized", fault_plan=plan, trace=trace) as ctx:
            result = closure(
                "min-plus", adj, context=ctx, watchdog=True, max_iterations=50
            )
        assert result.diagnostics is not None
        assert result.diagnostics.reason == "nan_poisoning"
        assert not result.converged
        assert trace.summary().watchdog_trips == 1

    def test_preconfigured_watchdog_accepted(self):
        from repro.resilience import ClosureWatchdog

        guard = ClosureWatchdog("min-plus", check_oscillation=False)
        result = closure("min-plus", _path_graph_minplus(6), watchdog=guard)
        assert result.diagnostics is not None and result.diagnostics.healthy
