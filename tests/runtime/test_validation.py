"""Tests for early operand validation (value poison + accumulator shape)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SEMIRINGS
from repro.runtime import (
    OperandValidationError,
    RuntimeError_,
    batched_mmo,
    mmo_tiled,
)
from tests.conftest import make_ring_inputs


class TestErrorType:
    def test_is_both_runtime_and_value_error(self):
        assert issubclass(OperandValidationError, RuntimeError_)
        assert issubclass(OperandValidationError, ValueError)


class TestNanRejection:
    @pytest.mark.parametrize(
        "name", ["min-plus", "max-plus", "min-mul", "max-mul", "min-max", "max-min"]
    )
    @pytest.mark.parametrize("operand", ["A", "B", "C"])
    def test_inf_identity_rings_reject_nan(self, name, operand, rng):
        a, b, c = make_ring_inputs(SEMIRINGS[name], 32, 16, 32, rng)
        poisoned = {"A": a, "B": b, "C": c}[operand]
        poisoned[3, 5] = np.nan
        with pytest.raises(OperandValidationError, match=f"operand {operand}.*NaN"):
            mmo_tiled(name, a, b, c)

    @pytest.mark.parametrize("name", ["plus-mul", "plus-norm"])
    def test_finite_identity_rings_accept_nan(self, name, rng):
        # plus-based rings have no ⊕-selection for NaN to poison silently;
        # NaN-in → NaN-out is ordinary IEEE behaviour there.
        a, b, c = make_ring_inputs(SEMIRINGS[name], 32, 16, 32, rng)
        a[0, 0] = np.nan
        d, _ = mmo_tiled(name, a, b, c)
        assert np.isnan(d[0]).any()

    def test_opt_out_for_loop_entry_points(self, rng):
        a, b, c = make_ring_inputs(SEMIRINGS["min-plus"], 32, 16, 32, rng)
        a[3, 5] = np.nan
        d, _ = mmo_tiled("min-plus", a, b, c, validate_inputs=False)
        assert np.isnan(d).any()


class TestOppositeInfinityRejection:
    def test_min_plus_rejects_negative_inf(self, rng):
        # min-plus padding is +inf; -inf + inf = NaN, silently.
        a, b, _ = make_ring_inputs(SEMIRINGS["min-plus"], 32, 16, 32, rng, with_c=False)
        a[1, 2] = -np.inf
        with pytest.raises(OperandValidationError, match=r"operand A.*-inf"):
            mmo_tiled("min-plus", a, b)

    def test_max_plus_rejects_positive_inf(self, rng):
        a, b, _ = make_ring_inputs(SEMIRINGS["max-plus"], 32, 16, 32, rng, with_c=False)
        b[1, 2] = np.inf
        with pytest.raises(OperandValidationError, match="operand B.*inf"):
            mmo_tiled("max-plus", a, b)

    def test_identity_signed_inf_is_legitimate_data(self, rng):
        # +inf on min-plus means "no edge" — must be accepted.
        a, b, _ = make_ring_inputs(SEMIRINGS["min-plus"], 32, 16, 32, rng, with_c=False)
        a[1, 2] = np.inf
        d, _ = mmo_tiled("min-plus", a, b)
        assert np.isfinite(d).all()

    def test_min_max_accepts_both_infinities(self, rng):
        # ⊗ is max, not +: -inf is a legitimate "always loses" value.
        a, b, _ = make_ring_inputs(SEMIRINGS["min-max"], 32, 16, 32, rng, with_c=False)
        a[1, 2] = -np.inf
        mmo_tiled("min-max", a, b)


class TestAccumulatorShape:
    def test_mismatch_is_value_error_naming_c(self, rng):
        a, b, _ = make_ring_inputs(SEMIRINGS["plus-mul"], 32, 16, 32, rng, with_c=False)
        bad_c = np.zeros((16, 16))
        with pytest.raises(ValueError, match="accumulator shape.*operand C"):
            mmo_tiled("plus-mul", a, b, bad_c)
        with pytest.raises(OperandValidationError):
            mmo_tiled("plus-mul", a, b, bad_c)


class TestBatchedValidation:
    def test_batched_rejects_poison_up_front(self, rng):
        a = rng.integers(0, 9, (4, 32, 16)).astype(np.float64)
        b = rng.integers(0, 9, (4, 16, 32)).astype(np.float64)
        a[2, 5, 7] = np.nan  # deep inside batch item 2
        with pytest.raises(OperandValidationError, match="operand A.*NaN"):
            batched_mmo("min-plus", a, b)

    def test_batched_clean_run_unaffected(self, rng):
        a = rng.integers(0, 9, (3, 32, 16)).astype(np.float64)
        b = rng.integers(0, 9, (3, 16, 32)).astype(np.float64)
        d, stats = batched_mmo("min-plus", a, b)
        assert d.shape == (3, 32, 32)
        assert stats.batch == 3
