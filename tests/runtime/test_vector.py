"""Tests for vector semiring operations and single-source algorithms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SemiringError, mmo
from repro.datasets import GraphSpec, boolean_graph, distance_graph
from repro.runtime import closure
from repro.runtime.vector import reachable_from, sssp, vxm


class TestVxm:
    def test_matches_mmo_row(self, rng):
        a = rng.integers(1, 9, (6, 7)).astype(float)
        x = rng.integers(1, 9, 6).astype(float)
        got = vxm("min-plus", x, a)
        expected = mmo("min-plus", x[None, :], a)[0]
        np.testing.assert_array_equal(got, expected)

    def test_accumulator(self, rng):
        a = rng.integers(1, 9, (4, 4)).astype(float)
        x = rng.integers(1, 9, 4).astype(float)
        y = rng.integers(1, 9, 4).astype(float)
        got = vxm("min-plus", x, a, y)
        expected = mmo("min-plus", x[None, :], a, y[None, :])[0]
        np.testing.assert_array_equal(got, expected)

    def test_boolean(self, rng):
        a = rng.random((5, 5)) < 0.4
        x = rng.random(5) < 0.5
        got = vxm("or-and", x, a)
        expected = mmo("or-and", x[None, :], a)[0]
        np.testing.assert_array_equal(got, expected)

    def test_identity_legs_do_not_poison(self):
        # inf ⊗ anything must lose the min (treated as "no path").
        x = np.array([np.inf, 2.0])
        a = np.array([[1.0, np.inf], [np.inf, 3.0]])
        got = vxm("min-plus", x, a)
        np.testing.assert_array_equal(got, np.array([np.inf, 5.0], dtype=np.float32))

    def test_shape_validation(self):
        with pytest.raises(SemiringError, match="vxm shapes"):
            vxm("min-plus", np.zeros(3), np.zeros((4, 4)))
        with pytest.raises(SemiringError, match="accumulator shape"):
            vxm("min-plus", np.zeros(4), np.zeros((4, 4)), np.zeros(3))


class TestSssp:
    def test_matches_all_pairs_row(self):
        adj = distance_graph(GraphSpec(30, 0.15, seed=12))
        all_pairs = closure("min-plus", adj).matrix
        for source in (0, 7, 29):
            single = sssp(adj, source)
            np.testing.assert_array_equal(single.values, all_pairs[source])
            assert single.converged

    def test_iterations_track_eccentricity(self):
        # A path graph: distances from vertex 0 need n-1 relaxations.
        n = 10
        adj = np.full((n, n), np.inf)
        np.fill_diagonal(adj, 0.0)
        for i in range(n - 1):
            adj[i, i + 1] = 1.0
        result = sssp(adj, 0)
        assert result.converged
        assert result.iterations >= n - 1
        np.testing.assert_array_equal(result.values, np.arange(n, dtype=np.float32))

    def test_source_validation(self):
        adj = distance_graph(GraphSpec(8, 0.3, seed=0))
        with pytest.raises(SemiringError, match="source"):
            sssp(adj, 8)
        with pytest.raises(SemiringError, match="max_iterations"):
            sssp(adj, 0, max_iterations=0)


class TestReachability:
    def test_matches_transitive_closure_row(self):
        adj = boolean_graph(GraphSpec(25, 0.12, seed=13), reflexive=True)
        all_pairs = closure("or-and", adj).matrix
        for source in (0, 12, 24):
            single = reachable_from(adj, source)
            np.testing.assert_array_equal(single.values, all_pairs[source])

    def test_requires_boolean(self):
        with pytest.raises(SemiringError, match="boolean"):
            reachable_from(np.zeros((3, 3)), 0)
