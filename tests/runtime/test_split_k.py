"""Tests for split-k kernel scheduling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import mmo
from repro.runtime import RuntimeError_, mmo_tiled_split_k
from tests.conftest import make_ring_inputs


class TestSplitK:
    @pytest.mark.parametrize("splits", [1, 2, 3, 5])
    def test_matches_unsplit_for_every_ring(self, ring, rng, splits):
        a, b, c = make_ring_inputs(ring, 12, 40, 9, rng)
        got, stats_list = mmo_tiled_split_k(ring, a, b, c, splits=splits)
        np.testing.assert_array_equal(got, mmo(ring, a, b, c))
        assert len(stats_list) == splits

    def test_without_accumulator(self, rng):
        a, b, _ = make_ring_inputs(
            __import__("repro.core", fromlist=["SEMIRINGS"]).SEMIRINGS["min-plus"],
            8, 33, 8, rng, with_c=False,
        )
        got, _ = mmo_tiled_split_k("min-plus", a, b, splits=4)
        np.testing.assert_array_equal(got, mmo("min-plus", a, b))

    def test_splits_capped_by_k(self, rng):
        a, b, _ = make_ring_inputs(
            __import__("repro.core", fromlist=["SEMIRINGS"]).SEMIRINGS["min-plus"],
            4, 3, 4, rng, with_c=False,
        )
        got, stats_list = mmo_tiled_split_k("min-plus", a, b, splits=10)
        assert len(stats_list) == 3
        np.testing.assert_array_equal(got, mmo("min-plus", a, b))

    def test_work_is_partitioned(self, rng):
        a, b, _ = make_ring_inputs(
            __import__("repro.core", fromlist=["SEMIRINGS"]).SEMIRINGS["min-plus"],
            16, 64, 16, rng, with_c=False,
        )
        _, stats_list = mmo_tiled_split_k("min-plus", a, b, splits=4)
        assert [s.k for s in stats_list] == [16, 16, 16, 16]

    def test_emulate_backend(self, rng):
        a, b, c = make_ring_inputs(
            __import__("repro.core", fromlist=["SEMIRINGS"]).SEMIRINGS["max-min"],
            16, 32, 16, rng,
        )
        split, _ = mmo_tiled_split_k("max-min", a, b, c, splits=2, backend="emulate")
        np.testing.assert_array_equal(split, mmo("max-min", a, b, c))

    def test_validation(self):
        with pytest.raises(RuntimeError_, match="splits"):
            mmo_tiled_split_k("mma", np.zeros((2, 2)), np.zeros((2, 2)), splits=0)
        with pytest.raises(RuntimeError_, match="bad mmo operand shapes"):
            mmo_tiled_split_k("mma", np.zeros((2, 3)), np.zeros((2, 3)))
        with pytest.raises(RuntimeError_, match="accumulator shape"):
            mmo_tiled_split_k(
                "mma", np.zeros((2, 3)), np.zeros((3, 2)), np.zeros((3, 3))
            )
