"""Tests for split-k kernel scheduling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SEMIRINGS, mmo
from repro.runtime import (
    ExecutionContext,
    RuntimeError_,
    Trace,
    mmo_tiled_split_k,
)
from tests.conftest import make_ring_inputs


class TestSplitK:
    @pytest.mark.parametrize("splits", [1, 2, 3, 5])
    def test_matches_unsplit_for_every_ring(self, ring, rng, splits):
        a, b, c = make_ring_inputs(ring, 12, 40, 9, rng)
        got, stats_list = mmo_tiled_split_k(ring, a, b, c, splits=splits)
        np.testing.assert_array_equal(got, mmo(ring, a, b, c))
        assert len(stats_list) == splits

    def test_without_accumulator(self, rng):
        a, b, _ = make_ring_inputs(
            __import__("repro.core", fromlist=["SEMIRINGS"]).SEMIRINGS["min-plus"],
            8, 33, 8, rng, with_c=False,
        )
        got, _ = mmo_tiled_split_k("min-plus", a, b, splits=4)
        np.testing.assert_array_equal(got, mmo("min-plus", a, b))

    def test_splits_capped_by_k(self, rng):
        a, b, _ = make_ring_inputs(
            __import__("repro.core", fromlist=["SEMIRINGS"]).SEMIRINGS["min-plus"],
            4, 3, 4, rng, with_c=False,
        )
        got, stats_list = mmo_tiled_split_k("min-plus", a, b, splits=10)
        assert len(stats_list) == 3
        np.testing.assert_array_equal(got, mmo("min-plus", a, b))

    def test_work_is_partitioned(self, rng):
        a, b, _ = make_ring_inputs(
            __import__("repro.core", fromlist=["SEMIRINGS"]).SEMIRINGS["min-plus"],
            16, 64, 16, rng, with_c=False,
        )
        _, stats_list = mmo_tiled_split_k("min-plus", a, b, splits=4)
        assert [s.k for s in stats_list] == [16, 16, 16, 16]

    def test_emulate_backend(self, rng):
        a, b, c = make_ring_inputs(
            __import__("repro.core", fromlist=["SEMIRINGS"]).SEMIRINGS["max-min"],
            16, 32, 16, rng,
        )
        split, _ = mmo_tiled_split_k("max-min", a, b, c, splits=2, backend="emulate")
        np.testing.assert_array_equal(split, mmo("max-min", a, b, c))

    def test_validation(self):
        with pytest.raises(RuntimeError_, match="splits"):
            mmo_tiled_split_k("mma", np.zeros((2, 2)), np.zeros((2, 2)), splits=0)
        with pytest.raises(RuntimeError_, match="bad mmo operand shapes"):
            mmo_tiled_split_k("mma", np.zeros((2, 3)), np.zeros((2, 3)))
        with pytest.raises(RuntimeError_, match="accumulator shape"):
            mmo_tiled_split_k(
                "mma", np.zeros((2, 3)), np.zeros((3, 2)), np.zeros((3, 3))
            )

    def test_bad_accumulator_fails_before_any_launch(self):
        # Regression: the accumulator shape used to be checked only when C
        # was folded in, *after* every partial kernel had already run.
        trace = Trace()
        ctx = ExecutionContext(trace=trace)
        with pytest.raises(RuntimeError_, match="accumulator shape"):
            mmo_tiled_split_k(
                "min-plus", np.zeros((8, 32)), np.zeros((32, 8)),
                np.zeros((8, 9)), splits=4, context=ctx,
            )
        assert len(trace) == 0


class TestEmptyPartitions:
    """Zero-width partitions must be skipped, not launched as k=0 kernels."""

    def test_k_zero_degenerates_to_single_launch(self, rng):
        # With k == 0 every linspace bound repeats (all partitions empty);
        # regression: this used to launch `splits` kernels (or worse) —
        # now it collapses to exactly one degenerate launch.
        ring = SEMIRINGS["min-plus"]
        a, b, c = make_ring_inputs(ring, 8, 0, 8, rng)
        got, stats_list = mmo_tiled_split_k("min-plus", a, b, c, splits=3)
        np.testing.assert_array_equal(got, mmo(ring, a, b, c))
        assert len(stats_list) == 1
        assert stats_list[0].k == 0

    def test_k_zero_without_accumulator(self, rng):
        ring = SEMIRINGS["plus-mul"]
        a, b, _ = make_ring_inputs(ring, 5, 0, 7, rng, with_c=False)
        got, stats_list = mmo_tiled_split_k("plus-mul", a, b, splits=2)
        np.testing.assert_array_equal(got, mmo(ring, a, b))
        assert len(stats_list) == 1

    @pytest.mark.parametrize("k,splits", [(2, 3), (1, 5), (3, 7), (5, 4)])
    def test_no_zero_width_kernel_ever_launches(self, rng, k, splits):
        # The satellite scenario: more requested splits than k columns.
        # Every launched kernel must see a non-empty slice of k, and the
        # combined result must still match the oracle.
        ring = SEMIRINGS["min-plus"]
        a, b, c = make_ring_inputs(ring, 8, k, 8, rng)
        got, stats_list = mmo_tiled_split_k(
            "min-plus", a, b, c, splits=splits
        )
        assert all(stats.k > 0 for stats in stats_list)
        assert sum(stats.k for stats in stats_list) == k
        np.testing.assert_array_equal(got, mmo(ring, a, b, c))
