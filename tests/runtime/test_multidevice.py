"""Tests for multi-device work partitioning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import mmo
from repro.hw import Simd2Device
from repro.runtime import RuntimeError_
from repro.runtime.multidevice import mmo_tiled_multi_device
from tests.conftest import make_ring_inputs


def _devices(count: int) -> list[Simd2Device]:
    return [Simd2Device(sm_count=2) for _ in range(count)]


class TestPartitioning:
    def test_matches_single_device(self, ring, rng):
        a, b, c = make_ring_inputs(ring, 48, 20, 24, rng)
        devices = _devices(3)
        got, shares = mmo_tiled_multi_device(ring, a, b, c, devices=devices)
        np.testing.assert_array_equal(got, mmo(ring, a, b, c))
        assert len(shares) == 3

    def test_bands_are_tile_aligned_and_cover(self, rng):
        from repro.core import SEMIRINGS

        a, b, c = make_ring_inputs(SEMIRINGS["min-plus"], 50, 16, 16, rng)
        got, shares = mmo_tiled_multi_device(
            "min-plus", a, b, c, devices=_devices(2)
        )
        assert shares[0].row_start == 0
        assert shares[0].row_stop % 16 == 0
        assert shares[-1].row_stop == 50
        covered = sum(share.rows for share in shares)
        assert covered == 50
        np.testing.assert_array_equal(got, mmo("min-plus", a, b, c))

    def test_every_device_did_work(self, rng):
        from repro.core import SEMIRINGS

        a, b, _ = make_ring_inputs(SEMIRINGS["min-plus"], 64, 16, 16, rng, with_c=False)
        devices = _devices(4)
        _, shares = mmo_tiled_multi_device("min-plus", a, b, devices=devices)
        assert len(shares) == 4
        for share, device in zip(shares, devices):
            assert device.stats.mmos == share.stats.mmo_instructions
            assert device.stats.mmos > 0

    def test_more_devices_than_tiles(self, rng):
        from repro.core import SEMIRINGS

        a, b, _ = make_ring_inputs(SEMIRINGS["min-plus"], 16, 16, 16, rng, with_c=False)
        got, shares = mmo_tiled_multi_device(
            "min-plus", a, b, devices=_devices(5)
        )
        assert len(shares) == 1  # one row tile → one busy device
        np.testing.assert_array_equal(got, mmo("min-plus", a, b))

    def test_vectorized_backend(self, rng):
        from repro.core import SEMIRINGS

        a, b, c = make_ring_inputs(SEMIRINGS["max-plus"], 33, 10, 12, rng)
        got, _ = mmo_tiled_multi_device(
            "max-plus", a, b, c, devices=_devices(2), backend="vectorized"
        )
        np.testing.assert_array_equal(got, mmo("max-plus", a, b, c))


class TestValidation:
    def test_no_devices(self):
        with pytest.raises(RuntimeError_, match="at least one device"):
            mmo_tiled_multi_device("mma", np.zeros((2, 2)), np.zeros((2, 2)), devices=[])

    def test_shape_mismatch(self):
        with pytest.raises(RuntimeError_, match="bad mmo operand shapes"):
            mmo_tiled_multi_device(
                "mma", np.zeros((2, 3)), np.zeros((2, 3)), devices=_devices(1)
            )

    def test_bad_accumulator(self):
        with pytest.raises(RuntimeError_, match="accumulator shape"):
            mmo_tiled_multi_device(
                "mma",
                np.zeros((2, 3)),
                np.zeros((3, 2)),
                np.zeros((3, 3)),
                devices=_devices(1),
            )


class TestResilienceEdges:
    """Edge cases of blacklist-driven repartitioning."""

    def test_all_blacklisted_raises(self, rng):
        from repro.core import SEMIRINGS

        a, b, _ = make_ring_inputs(SEMIRINGS["min-plus"], 32, 16, 16, rng, with_c=False)
        with pytest.raises(RuntimeError_, match="no surviving devices"):
            mmo_tiled_multi_device(
                "min-plus", a, b, devices=_devices(2), blacklist={0, 1}
            )

    def test_single_survivor_carries_all_rows(self, rng):
        from repro.core import SEMIRINGS

        a, b, c = make_ring_inputs(SEMIRINGS["min-plus"], 48, 16, 24, rng)
        devices = _devices(3)
        got, shares = mmo_tiled_multi_device(
            "min-plus", a, b, c, devices=devices, blacklist={0, 1}
        )
        np.testing.assert_array_equal(got, mmo("min-plus", a, b, c))
        assert [sh.device_index for sh in shares] == [2]
        assert shares[0].rows == 48

    def test_repartitioned_parity_all_rings(self, ring, rng):
        """Bit-identical reassembly: a run that loses a device mid-flight
        must equal the single-device result on every opcode."""
        from repro.resilience import FaultPlan
        from repro.runtime import use_context

        a, b, c = make_ring_inputs(ring, 48, 20, 24, rng)
        plan = FaultPlan(fail_devices=(1,))
        blacklist: set[int] = set()
        with use_context(backend="emulate", fault_plan=plan) as ctx:
            got, shares = mmo_tiled_multi_device(
                ring, a, b, c, devices=_devices(3), context=ctx,
                on_device_failure="repartition", blacklist=blacklist,
            )
        np.testing.assert_array_equal(got, mmo(ring, a, b, c))
        assert blacklist == {1}
        assert sorted(sh.device_index for sh in shares) == [0, 2]

    def test_abort_mode_propagates_device_failure(self, rng):
        from repro.core import SEMIRINGS
        from repro.resilience import DeviceFailure, FaultPlan
        from repro.runtime import use_context

        a, b, _ = make_ring_inputs(SEMIRINGS["min-plus"], 32, 16, 16, rng, with_c=False)
        plan = FaultPlan(fail_devices=(0,))
        with use_context(backend="emulate", fault_plan=plan) as ctx:
            with pytest.raises(DeviceFailure, match="device 0 failed"):
                mmo_tiled_multi_device(
                    "min-plus", a, b, devices=_devices(2), context=ctx
                )

    def test_bad_on_device_failure_rejected(self, rng):
        with pytest.raises(RuntimeError_, match="on_device_failure"):
            mmo_tiled_multi_device(
                "mma", np.zeros((2, 2)), np.zeros((2, 2)),
                devices=_devices(1), on_device_failure="shrug",
            )

    def test_checked_bands_catch_injected_corruption(self, rng):
        from repro.core import SEMIRINGS
        from repro.resilience import FaultPlan, FaultSpec
        from repro.runtime import Trace, use_context

        a, b, c = make_ring_inputs(SEMIRINGS["min-plus"], 48, 16, 48, rng)
        trace = Trace()
        plan = FaultPlan(seed=4, corrupt={0: FaultSpec(kind="nan")})
        with use_context(backend="emulate", fault_plan=plan, trace=trace) as ctx:
            got, _ = mmo_tiled_multi_device(
                "min-plus", a, b, c, devices=_devices(2), context=ctx,
                checked=True,
            )
        np.testing.assert_array_equal(got, mmo("min-plus", a, b, c))
        assert trace.summary().corruptions_detected >= 1
        assert trace.summary().retries >= 1
