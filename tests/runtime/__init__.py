"""Test package."""
