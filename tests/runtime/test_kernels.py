"""Tests for the tiled whole-matrix mmo kernels (both backends)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TILE, mmo
from repro.hw import Simd2Device
from repro.isa import MmoOpcode
from repro.runtime import RuntimeError_, mmo_tiled
from repro.runtime.kernels import build_tile_mmo_program
from tests.conftest import make_ring_inputs

# Shapes exercising: exact tiles, padding in every dimension, tiny inputs,
# and rectangular panels.
SHAPES = [(16, 16, 16), (32, 16, 48), (17, 5, 23), (1, 1, 1), (40, 33, 20)]


class TestVectorizedBackend:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_matches_unpadded_oracle(self, ring, shape, rng):
        m, k, n = shape
        a, b, c = make_ring_inputs(ring, m, k, n, rng)
        got, stats = mmo_tiled(ring, a, b, c)
        np.testing.assert_array_equal(got, mmo(ring, a, b, c))
        assert stats.warp_programs == stats.tiles_m * stats.tiles_n

    def test_padding_never_leaks(self, ring, rng):
        # A 17x17 problem forces a padded tile; padded lanes must not
        # change any real output entry.
        a, b, c = make_ring_inputs(ring, 17, 17, 17, rng)
        got, _ = mmo_tiled(ring, a, b, c)
        np.testing.assert_array_equal(got, mmo(ring, a, b, c))

    def test_without_accumulator(self, ring, rng):
        a, b, _ = make_ring_inputs(ring, 20, 18, 22, rng, with_c=False)
        got, _ = mmo_tiled(ring, a, b)
        np.testing.assert_array_equal(got, mmo(ring, a, b))

    def test_empty_inner_dimension(self):
        c = np.arange(6.0).reshape(2, 3)
        got, _ = mmo_tiled("min-plus", np.zeros((2, 0)), np.zeros((0, 3)), c)
        np.testing.assert_array_equal(got, c.astype(np.float32))

    def test_empty_output(self):
        got, stats = mmo_tiled("plus-mul", np.zeros((0, 4)), np.zeros((4, 3)))
        assert got.shape == (0, 3)
        assert stats.warp_programs == 0

    def test_tiles_k_convention_consistent_across_degenerate_paths(self):
        # k == 0 runs one identity-padded inner step (tiles_k == 1) …
        _, k0 = mmo_tiled("plus-mul", np.zeros((2, 0)), np.zeros((0, 3)))
        assert k0.tiles_k == 1
        # … and the empty-output early return reports the same convention:
        # ceil(k/16) for k > 0, 1 for k == 0 — not 0.
        _, empty_k0 = mmo_tiled("plus-mul", np.zeros((0, 4)), np.zeros((4, 0)))
        _, empty_k0b = mmo_tiled("plus-mul", np.zeros((0, 0)), np.zeros((0, 3)))
        _, empty_k20 = mmo_tiled("plus-mul", np.zeros((0, 20)), np.zeros((20, 3)))
        assert empty_k0.tiles_k == 1
        assert empty_k0b.tiles_k == 1
        assert empty_k20.tiles_k == 2
        # No programs run on the empty-output paths regardless of tiles_k.
        for stats in (empty_k0, empty_k0b, empty_k20):
            assert stats.warp_programs == 0
            assert stats.mmo_instructions == 0

    def test_shape_validation(self):
        with pytest.raises(RuntimeError_, match="bad mmo operand shapes"):
            mmo_tiled("plus-mul", np.zeros((2, 3)), np.zeros((4, 2)))
        with pytest.raises(RuntimeError_, match="accumulator shape"):
            mmo_tiled("plus-mul", np.zeros((2, 3)), np.zeros((3, 2)), np.zeros((3, 3)))

    def test_unknown_backend(self):
        with pytest.raises(RuntimeError_, match="unknown backend"):
            mmo_tiled("plus-mul", np.zeros((2, 2)), np.zeros((2, 2)), backend="cuda")

    def test_accepts_opcode(self, rng):
        a, b, c = make_ring_inputs(MmoOpcode.MAXMIN.semiring, 8, 8, 8, rng)
        got, _ = mmo_tiled(MmoOpcode.MAXMIN, a, b, c)
        np.testing.assert_array_equal(got, mmo("max-min", a, b, c))


class TestEmulateBackend:
    @pytest.mark.parametrize("shape", [(16, 16, 16), (17, 5, 23), (32, 16, 48)])
    def test_emulator_matches_vectorized(self, ring, shape, rng):
        m, k, n = shape
        a, b, c = make_ring_inputs(ring, m, k, n, rng)
        vec, _ = mmo_tiled(ring, a, b, c)
        emu, stats = mmo_tiled(ring, a, b, c, backend="emulate")
        np.testing.assert_array_equal(emu, vec)
        assert stats.execution is not None
        assert stats.execution.mmos == stats.mmo_instructions

    def test_statistics_parity(self, rng):
        a, b, c = make_ring_inputs(MmoOpcode.MINPLUS.semiring, 33, 20, 18, rng)
        _, stats = mmo_tiled("min-plus", a, b, c, backend="emulate")
        # 33x18 output → 3x2 tile grid; k=20 → 2 inner tiles.
        assert (stats.tiles_m, stats.tiles_n, stats.tiles_k) == (3, 2, 2)
        ex = stats.execution
        assert ex.mmos == 3 * 2 * 2
        assert ex.loads == 3 * 2 * (1 + 2 * 2)
        assert ex.stores == 3 * 2
        assert ex.unit_ops == stats.unit_ops == 3 * 2 * 2 * 64
        assert ex.mmos_by_opcode == {MmoOpcode.MINPLUS: 12}

    def test_device_accumulates_across_launches(self, rng):
        device = Simd2Device(sm_count=2)
        a, b, c = make_ring_inputs(MmoOpcode.MMA.semiring, 16, 16, 16, rng)
        mmo_tiled("mma", a, b, c, backend="emulate", device=device)
        mmo_tiled("mma", a, b, c, backend="emulate", device=device)
        assert device.kernel_launches == 2
        assert device.stats.mmos == 2

    def test_fp16_quantisation_identical_across_backends(self):
        # Values that round in fp16: both backends must round identically.
        a = np.full((TILE, TILE), 1.0 / 3.0)
        b = np.eye(TILE)
        vec, _ = mmo_tiled("mma", a, b)
        emu, _ = mmo_tiled("mma", a, b, backend="emulate")
        np.testing.assert_array_equal(vec, emu)


class TestProgramShape:
    def test_program_structure(self):
        program, c_addr, d_addr = build_tile_mmo_program(
            MmoOpcode.MINPLUS, tiles_k=3, boolean=False
        )
        stats = program.stats()
        assert stats.loads == 1 + 2 * 3
        assert stats.mmos == 3
        assert stats.stores == 1
        # Output region must sit past the fp16 input panels.
        assert c_addr * 4 >= 2 * 3 * 256 * 2
        assert d_addr == c_addr + 256

    def test_bad_tiles_k(self):
        with pytest.raises(RuntimeError_, match="tiles_k"):
            build_tile_mmo_program(MmoOpcode.MMA, tiles_k=0, boolean=False)
