"""Tests for the host-runtime driver (Figure 7 workflow as an API)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SemiringError, mmo
from repro.datasets import GraphSpec, distance_graph
from repro.runtime import HostRuntime, closure


@pytest.fixture
def adjacency() -> np.ndarray:
    return distance_graph(GraphSpec(24, 0.15, seed=8))


class TestBufferLifecycle:
    def test_upload_download_round_trip(self, adjacency):
        host = HostRuntime()
        host.upload("adj", adjacency)
        np.testing.assert_array_equal(
            host.download("adj"), adjacency.astype(np.float32)
        )
        host.free("adj")
        assert host.event_kinds() == ["malloc", "memcpy_h2d", "memcpy_d2h", "free"]


class TestMmoLaunch:
    def test_run_mmo_emulated(self, adjacency):
        host = HostRuntime()
        host.upload("a", adjacency)
        stats = host.run_mmo("min-plus", "a", "a", "a", "out")
        expected = mmo("min-plus", adjacency, adjacency, adjacency)
        np.testing.assert_array_equal(host.download("out"), expected)
        assert stats.execution is not None  # ran on the emulator

    def test_run_mmo_vectorized_backend(self, adjacency):
        host = HostRuntime(backend="vectorized")
        host.upload("a", adjacency)
        host.run_mmo("min-plus", "a", "a", None, "out")
        np.testing.assert_array_equal(
            host.download("out"), mmo("min-plus", adjacency, adjacency)
        )


class TestHostClosure:
    def test_matches_library_closure(self, adjacency):
        host = HostRuntime()
        host.upload("dist", adjacency)
        outcome = host.run_closure("min-plus", "dist")
        library = closure("min-plus", adjacency)
        np.testing.assert_array_equal(outcome.matrix, library.matrix)
        assert outcome.converged
        assert outcome.iterations == library.iterations

    def test_result_stays_on_device(self, adjacency):
        host = HostRuntime()
        host.upload("dist", adjacency)
        outcome = host.run_closure("min-plus", "dist")
        np.testing.assert_array_equal(host.download("dist"), outcome.matrix)

    def test_timeline_has_no_mid_loop_transfers(self, adjacency):
        # The paper's point: mmo and the convergence check share device
        # memory — no H2D/D2H between them.
        host = HostRuntime()
        host.upload("dist", adjacency)
        host.run_closure("min-plus", "dist")
        kinds = host.event_kinds()
        loop = kinds[kinds.index("mmo_launch") :]
        assert set(loop) <= {"mmo_launch", "check"}
        assert loop.count("check") == loop.count("mmo_launch")

    def test_bellman_ford_method(self, adjacency):
        host = HostRuntime(backend="vectorized")
        host.upload("dist", adjacency)
        outcome = host.run_closure("min-plus", "dist", method="bellman-ford")
        library = closure("min-plus", adjacency, method="bellman-ford")
        np.testing.assert_array_equal(outcome.matrix, library.matrix)

    def test_no_convergence_check(self, adjacency):
        host = HostRuntime(backend="vectorized")
        host.upload("dist", adjacency)
        outcome = host.run_closure("min-plus", "dist", convergence_check=False)
        assert not outcome.converged
        assert "check" not in host.event_kinds()

    def test_non_square_buffer_rejected(self):
        host = HostRuntime()
        host.upload("bad", np.zeros((2, 3)))
        with pytest.raises(SemiringError, match="square"):
            host.run_closure("min-plus", "bad")

    def test_unknown_method_rejected(self, adjacency):
        host = HostRuntime()
        host.upload("dist", adjacency)
        with pytest.raises(SemiringError, match="unknown closure method"):
            host.run_closure("min-plus", "dist", method="johnson")
