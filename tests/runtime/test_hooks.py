"""Tests for the lifecycle hook pipeline (``repro.hooks``).

Covers the two suites ISSUE 6 calls for: cross-entry-point validation
parity (every dispatch entry point rejects the same poisoned operands
with the same :class:`OperandValidationError`, operand named) and hook
ordering/teardown (hooks fire in registration order at each point; a
raising hook never orphans a launch record).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends.base import get_backend
from repro.compile import PlanCache
from repro.compile.lower import resolve_opcode
from repro.core import SEMIRINGS
from repro.hooks import (
    CacheStatsHook,
    Hook,
    HookError,
    emit_event,
    get_hook,
    list_hooks,
    register_hook,
    resolve_hook,
)
from repro.hw import Simd2Device
from repro.runtime import (
    ExecutionContext,
    OperandValidationError,
    Trace,
    batched_mmo,
    execute_compiled,
    mmo_tiled,
    mmo_tiled_multi_device,
    mmo_tiled_split_k,
    resolve_context,
)
from tests.conftest import make_ring_inputs


# ----------------------------------------------------------------------
# Entry-point launchers: same (ring, a, b, c) surface for every dispatch
# path, so the parity suite can assert identical rejections.


def _launch_mmo_tiled(ring, a, b, c, **kwargs):
    return mmo_tiled(ring, a, b, c, **kwargs)


def _launch_execute_compiled(ring, a, b, c, **kwargs):
    ctx = resolve_context(kwargs.pop("context", None))
    impl = get_backend(ctx.backend)
    opcode = resolve_opcode(ring)
    m, k = a.shape
    n = b.shape[1]
    compiled = impl.compile(
        opcode, m, n, k, has_accumulator=c is not None, context=ctx
    )
    return execute_compiled(compiled, a, b, c, context=ctx, **kwargs)


def _launch_split_k(ring, a, b, c, **kwargs):
    return mmo_tiled_split_k(ring, a, b, c, splits=2, **kwargs)


def _launch_batched(ring, a, b, c, **kwargs):
    return batched_mmo(ring, a, b, c, **kwargs)


def _launch_multi_device(ring, a, b, c, **kwargs):
    devices = [Simd2Device(sm_count=2), Simd2Device(sm_count=2)]
    return mmo_tiled_multi_device(ring, a, b, c, devices=devices, **kwargs)


ENTRY_POINTS = {
    "mmo_tiled": _launch_mmo_tiled,
    "execute_compiled": _launch_execute_compiled,
    "mmo_tiled_split_k": _launch_split_k,
    "batched_mmo": _launch_batched,
    "mmo_tiled_multi_device": _launch_multi_device,
}


class TestValidationParity:
    """Satellite 5: one validation behaviour across every entry point."""

    @pytest.mark.parametrize("entry", sorted(ENTRY_POINTS))
    @pytest.mark.parametrize("operand", ["A", "B", "C"])
    def test_nan_rejected_with_operand_named(self, entry, operand, rng):
        a, b, c = make_ring_inputs(SEMIRINGS["min-plus"], 32, 16, 32, rng)
        {"A": a, "B": b, "C": c}[operand][3, 5] = np.nan
        with pytest.raises(
            OperandValidationError, match=f"operand {operand}.*NaN"
        ):
            ENTRY_POINTS[entry]("min-plus", a, b, c)

    @pytest.mark.parametrize("entry", sorted(ENTRY_POINTS))
    def test_opposite_inf_rejected_with_operand_named(self, entry, rng):
        # min-plus identity is +inf; -inf maps to NaN against the padding.
        a, b, c = make_ring_inputs(SEMIRINGS["min-plus"], 32, 16, 32, rng)
        b[1, 2] = -np.inf
        with pytest.raises(OperandValidationError, match=r"operand B.*-inf"):
            ENTRY_POINTS[entry]("min-plus", a, b, c)

    @pytest.mark.parametrize("entry", sorted(ENTRY_POINTS))
    def test_opt_out_lets_nan_through(self, entry, rng):
        a, b, c = make_ring_inputs(SEMIRINGS["min-plus"], 32, 16, 32, rng)
        a[3, 5] = np.nan
        out = ENTRY_POINTS[entry]("min-plus", a, b, c, validate_inputs=False)
        d = out[0]
        assert np.isnan(np.asarray(d)).any()

    def test_identity_inf_accepted_everywhere(self, rng):
        # +inf on min-plus means "no edge" — every entry point accepts it.
        a, b, c = make_ring_inputs(SEMIRINGS["min-plus"], 32, 16, 32, rng)
        a[1, 2] = np.inf
        for entry, launch in ENTRY_POINTS.items():
            launch("min-plus", a, b, c)


# ----------------------------------------------------------------------
# Hook ordering and teardown.


class RecordingHook(Hook):
    """Logs every firing as ``(tag, point)`` into a shared list."""

    def __init__(self, tag: str, log: list):
        self.name = f"recording-{tag}"
        self.tag = tag
        self.log = log

    def pre_compile(self, context, api, opcode, m, n, k, has_accumulator):
        self.log.append((self.tag, "pre_compile"))

    def post_compile(self, context, api, compiled, cache_hit):
        self.log.append((self.tag, "post_compile"))

    def pre_execute(self, launch):
        self.log.append((self.tag, "pre_execute"))

    def post_execute(self, launch):
        self.log.append((self.tag, "post_execute"))


class RaisingHook(Hook):
    name = "raising"

    def __init__(self, point: str):
        self.point = point

    def pre_execute(self, launch):
        if self.point == "pre_execute":
            raise RuntimeError("hook boom")

    def post_execute(self, launch):
        if self.point == "post_execute":
            raise RuntimeError("hook boom")


class TestHookOrder:
    def test_custom_hooks_fire_in_registration_order(self, rng):
        log: list = []
        ctx = ExecutionContext(
            trace=Trace(),
            plan_cache=PlanCache(),
            hooks=(RecordingHook("one", log), RecordingHook("two", log)),
        )
        a, b, c = make_ring_inputs(SEMIRINGS["min-plus"], 32, 16, 32, rng)
        mmo_tiled("min-plus", a, b, c, context=ctx)
        for point in ("pre_compile", "post_compile", "pre_execute", "post_execute"):
            fired = [tag for tag, p in log if p == point]
            assert fired == ["one", "two"], point
        # Points themselves fire in lifecycle order.
        points = [p for _, p in log]
        assert points.index("post_compile") > points.index("pre_compile")
        assert points.index("pre_execute") > points.index("post_compile")
        assert points.index("post_execute") > points.index("pre_execute")

    def test_builtin_validation_fires_before_custom_hooks(self, rng):
        # Built-ins are registered first: a poisoned operand raises out of
        # the validation hook before any custom pre_execute observes it.
        log: list = []
        ctx = ExecutionContext(
            trace=Trace(), hooks=(RecordingHook("late", log),)
        )
        a, b, c = make_ring_inputs(SEMIRINGS["min-plus"], 32, 16, 32, rng)
        a[0, 0] = np.nan
        with pytest.raises(OperandValidationError):
            mmo_tiled("min-plus", a, b, c, context=ctx)
        assert ("late", "pre_execute") not in log

    def test_trace_identical_with_and_without_custom_hooks(self, rng):
        # Passive extra hooks must not perturb what the trace records.
        a, b, c = make_ring_inputs(SEMIRINGS["min-plus"], 48, 32, 16, rng)
        plain, hooked = Trace(), Trace()
        mmo_tiled("min-plus", a, b, c, context=ExecutionContext(trace=plain))
        mmo_tiled(
            "min-plus", a, b, c,
            context=ExecutionContext(
                trace=hooked, hooks=(RecordingHook("x", []),)
            ),
        )
        (r0,), (r1,) = plain.records, hooked.records
        assert (r0.api, r0.backend, r0.ring, r0.opcode) == (
            r1.api, r1.backend, r1.ring, r1.opcode
        )
        assert r0.shape == r1.shape and r0.tiles == r1.tiles
        assert r0.cycle_estimate == r1.cycle_estimate


class TestHookTeardown:
    def test_raising_pre_execute_leaves_no_orphan_record(self, rng):
        trace = Trace()
        ctx = ExecutionContext(
            trace=trace, hooks=(RaisingHook("pre_execute"),)
        )
        a, b, c = make_ring_inputs(SEMIRINGS["min-plus"], 32, 16, 32, rng)
        with pytest.raises(RuntimeError, match="hook boom"):
            mmo_tiled("min-plus", a, b, c, context=ctx)
        assert len(trace) == 0  # record absent, not half-written

    def test_raising_post_execute_keeps_complete_record(self, rng):
        # TraceHook registers before custom hooks, so the record is fully
        # written by the time a later post_execute hook raises.
        trace = Trace()
        ctx = ExecutionContext(
            trace=trace, hooks=(RaisingHook("post_execute"),)
        )
        a, b, c = make_ring_inputs(SEMIRINGS["min-plus"], 32, 16, 32, rng)
        with pytest.raises(RuntimeError, match="hook boom"):
            mmo_tiled("min-plus", a, b, c, context=ctx)
        assert len(trace) == 1
        rec = trace.records[0]
        assert rec.api == "mmo_tiled" and rec.shape == (32, 32, 16)
        assert rec.kernel_stats is not None and rec.wall_time_s >= 0.0


# ----------------------------------------------------------------------
# Registry, hot path, and the event channel.


class TestRegistry:
    def test_builtins_registered(self):
        assert {"validation", "fault", "trace", "cache-stats"} <= set(
            list_hooks()
        )

    def test_unknown_name_raises_with_known_names(self):
        with pytest.raises(HookError, match="unknown hook.*validation"):
            get_hook("no-such-hook")

    def test_conflicting_registration_rejected(self):
        @register_hook(name="test-conflict-probe")
        class Probe(Hook):
            pass

        with pytest.raises(HookError, match="test-conflict-probe"):

            @register_hook(name="test-conflict-probe")
            class Probe2(Hook):
                pass

        @register_hook(name="test-conflict-probe", replace=True)
        class Probe3(Hook):
            pass

        assert get_hook("test-conflict-probe") is Probe3

    def test_resolve_accepts_names_and_instances(self):
        by_name = resolve_hook("cache-stats")
        assert isinstance(by_name, CacheStatsHook)
        inst = CacheStatsHook()
        assert resolve_hook(inst) is inst

    def test_context_accepts_hook_names(self, rng):
        ctx = ExecutionContext(
            plan_cache=PlanCache(), hooks=("cache-stats",)
        )
        a, b, c = make_ring_inputs(SEMIRINGS["min-plus"], 32, 16, 32, rng)
        mmo_tiled("min-plus", a, b, c, context=ctx)
        mmo_tiled("min-plus", a, b, c, context=ctx)
        (stats_hook,) = [
            h for h in ctx.pipeline.hooks if isinstance(h, CacheStatsHook)
        ]
        assert stats_hook.misses == 1 and stats_hook.hits == 1
        assert stats_hook.hit_rate == 0.5


class TestHotPath:
    def test_pipeline_is_cached_on_the_context(self):
        ctx = ExecutionContext()
        assert ctx.pipeline is ctx.pipeline

    def test_default_pipeline_dispatches_launchless(self, rng):
        # No trace, no faults: validation runs via the allocation-free
        # form and begin_launch returns None instead of a Launch carrier.
        ctx = resolve_context(None)
        a, b, c = make_ring_inputs(SEMIRINGS["min-plus"], 32, 16, 32, rng)
        launch = ctx.pipeline.begin_launch(
            ctx, "mmo_tiled", resolve_opcode("min-plus"), a, b, c
        )
        assert launch is None

    def test_traced_pipeline_allocates_a_launch(self, rng):
        ctx = resolve_context(ExecutionContext(trace=Trace()))
        a, b, c = make_ring_inputs(SEMIRINGS["min-plus"], 32, 16, 32, rng)
        launch = ctx.pipeline.begin_launch(
            ctx, "mmo_tiled", resolve_opcode("min-plus"), a, b, c
        )
        assert launch is not None and launch.api == "mmo_tiled"


class EventSink(Hook):
    name = "event-sink"

    def __init__(self):
        self.events = []

    def on_event(self, context, event):
        self.events.append(event)


class TestEventChannel:
    def test_custom_on_event_hook_receives_events(self):
        sink = EventSink()
        ctx = ExecutionContext(hooks=(sink,))
        emit_event(ctx, kind="watchdog", api="test", detail="tripped")
        (event,) = sink.events
        assert event.kind == "watchdog" and event.api == "test"
        assert event.backend == ctx.backend

    def test_emit_event_without_listeners_is_a_noop(self):
        emit_event(
            ExecutionContext(), kind="watchdog", api="test", detail="x"
        )

    def test_trace_and_custom_sink_both_observe(self):
        sink, trace = EventSink(), Trace()
        ctx = ExecutionContext(trace=trace, hooks=(sink,))
        emit_event(
            ctx, kind="fallback", api="test", backend="emulate", detail="d"
        )
        assert len(sink.events) == 1
        (event,) = trace.events_of("fallback")
        assert event.backend == "emulate"
