"""ExecutionContext semantics and per-launch trace reconciliation."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.backends import list_backends
from repro.hw.device import Simd2Device
from repro.runtime import (
    ExecutionContext,
    HostRuntime,
    Trace,
    TraceSummary,
    batched_mmo,
    closure,
    default_context,
    mmo_tiled,
    mmo_tiled_multi_device,
    mmo_tiled_split_k,
    resolve_context,
    use_context,
)
from repro.timing.cycles import kernel_cycle_estimate

from tests.conftest import make_ring_inputs


class TestExecutionContext:
    def test_defaults(self):
        ctx = default_context()
        assert ctx.backend == "vectorized"
        assert ctx.device is None
        assert ctx.parallel is False
        assert ctx.trace is None

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            default_context().backend = "emulate"

    def test_replace_returns_new_context(self):
        base = ExecutionContext()
        other = base.replace(backend="emulate")
        assert base.backend == "vectorized"
        assert other.backend == "emulate"

    def test_use_context_installs_and_restores(self):
        assert default_context().backend == "vectorized"
        with use_context(backend="emulate") as ctx:
            assert ctx.backend == "emulate"
            assert default_context() is ctx
            with use_context(parallel=True) as inner:
                # Nested overrides compose on the installed context.
                assert inner.backend == "emulate"
                assert inner.parallel is True
            assert default_context() is ctx
        assert default_context().backend == "vectorized"

    def test_use_context_restores_on_error(self):
        with pytest.raises(ValueError, match="boom"):
            with use_context(backend="emulate"):
                raise ValueError("boom")
        assert default_context().backend == "vectorized"

    def test_resolve_precedence_keywords_over_context(self):
        base = ExecutionContext(backend="emulate", parallel=True)
        resolved = resolve_context(base, backend="sparse")
        assert resolved.backend == "sparse"
        assert resolved.parallel is True  # untouched fields survive

    def test_resolve_defaults_to_ambient(self):
        with use_context(backend="sparse"):
            assert resolve_context().backend == "sparse"
        assert resolve_context().backend == "vectorized"


class TestAmbientDispatch:
    def test_ambient_backend_routes_mmo(self, rng):
        a = rng.integers(0, 5, (6, 7)).astype(float)
        b = rng.integers(0, 5, (7, 4)).astype(float)
        with use_context(backend="sparse"):
            _, stats = mmo_tiled("plus-mul", a, b)
        assert stats.spgemm is not None

    def test_explicit_backend_overrides_ambient(self, rng):
        a = rng.integers(0, 5, (6, 7)).astype(float)
        b = rng.integers(0, 5, (7, 4)).astype(float)
        with use_context(backend="sparse"):
            _, stats = mmo_tiled("plus-mul", a, b, backend="emulate")
        assert stats.spgemm is None
        assert stats.execution is not None

    def test_ambient_device_used_by_emulate(self):
        device = Simd2Device(sm_count=2)
        a = np.ones((4, 4))
        with use_context(backend="emulate", device=device):
            mmo_tiled("plus-mul", a, a)
        assert device.kernel_launches == 1

    def test_device_ignored_by_vectorized(self):
        device = Simd2Device(sm_count=2)
        a = np.ones((4, 4))
        _, stats = mmo_tiled("plus-mul", a, a, backend="vectorized", device=device)
        assert device.kernel_launches == 0
        assert stats.execution is None

    def test_apps_pick_up_ambient_backend(self):
        from repro.apps import apsp_simd2
        from repro.datasets import GraphSpec, distance_graph

        adjacency = distance_graph(
            GraphSpec(num_vertices=12, edge_probability=0.3, seed=5)
        )
        trace = Trace()
        with use_context(backend="sparse", trace=trace):
            result = apsp_simd2(adjacency)
        assert len(trace) > 0
        assert all(rec.backend == "sparse" for rec in trace)
        reference = np.asarray(
            __import__("repro.apps", fromlist=["apsp_baseline"])
            .apsp_baseline(adjacency)
            .distances
        )
        np.testing.assert_array_equal(result.distances, reference)


class TestLaunchRecords:
    def test_mmo_tiled_records_launch(self, ring, rng):
        a, b, c = make_ring_inputs(ring, 20, 33, 17, rng)
        trace = Trace()
        with use_context(trace=trace):
            _, stats = mmo_tiled(ring, a, b, c)
        assert len(trace) == 1
        rec = trace.records[0]
        assert rec.api == "mmo_tiled"
        assert rec.backend == "vectorized"
        assert rec.ring == ring.name
        assert rec.shape == (20, 17, 33)
        assert rec.tiles == (stats.tiles_m, stats.tiles_n, stats.tiles_k)
        # The acceptance invariant: counts reconcile with the tile grid.
        assert rec.mmo_instructions == stats.tiles_m * stats.tiles_n * stats.tiles_k
        assert rec.wall_time_s >= 0.0
        expected_cycles = kernel_cycle_estimate(
            stats, boolean=ring.is_boolean()
        ).total
        assert rec.cycle_estimate == expected_cycles

    def test_closure_records_reconcile(self):
        from repro.datasets import GraphSpec, distance_graph

        adjacency = distance_graph(
            GraphSpec(num_vertices=24, edge_probability=0.25, seed=11)
        )
        trace = Trace()
        with use_context(trace=trace):
            result = closure("min-plus", adjacency)
        assert len(trace) == result.mmo_calls
        for rec in trace:
            assert rec.api == "closure"
            assert (
                rec.mmo_instructions
                == rec.tiles[0] * rec.tiles[1] * rec.tiles[2]
            )
        assert (
            sum(rec.mmo_instructions for rec in trace)
            == result.total_mmo_instructions
        )

    def test_every_backend_records(self, rng):
        from repro.backends import get_backend

        a = rng.integers(0, 5, (9, 8)).astype(float)
        b = rng.integers(0, 5, (8, 7)).astype(float)
        for backend in list_backends():
            trace = Trace()
            with use_context(backend=backend, trace=trace):
                _, stats = mmo_tiled("min-plus", a, b)
            planning = getattr(get_backend(backend), "select_backend", None)
            if planning is not None:
                # Planning backends record the concrete delegate, plus one
                # PlanRecord for the decision itself.
                assert [rec.backend for rec in trace] != [backend]
                assert len(trace.plans) == 1
                assert trace.plans[0].backend == trace.records[0].backend
            else:
                assert [rec.backend for rec in trace] == [backend]
            assert trace.records[0].kernel_stats is stats

    def test_split_k_and_batched_and_multidevice_record_api(self):
        a = np.ones((4, 20))
        b = np.ones((20, 4))
        trace = Trace()
        with use_context(trace=trace):
            mmo_tiled_split_k("plus-mul", a, b, splits=2)
            batched_mmo("plus-mul", np.stack([a, a]), np.stack([b, b]))
            mmo_tiled_multi_device(
                "plus-mul", a, b,
                devices=[Simd2Device(), Simd2Device()], backend="vectorized",
            )
        apis = [rec.api for rec in trace]
        assert apis.count("mmo_tiled_split_k") == 2
        assert apis.count("batched_mmo") == 2
        assert apis.count("mmo_tiled_multi_device") == 1

    def test_empty_output_launch_recorded(self):
        trace = Trace()
        with use_context(trace=trace):
            mmo_tiled("plus-mul", np.ones((0, 3)), np.ones((3, 2)))
        assert len(trace) == 1
        assert trace.records[0].mmo_instructions == 0

    def test_no_trace_no_records(self):
        # The default context has no sink: nothing observable happens.
        _, stats = mmo_tiled("plus-mul", np.ones((4, 4)), np.ones((4, 4)))
        assert stats.mmo_instructions == 1

    def test_host_runtime_traces_through_context(self):
        trace = Trace()
        runtime = HostRuntime(context=ExecutionContext(backend="emulate", trace=trace))
        runtime.upload("a", np.ones((8, 8)))
        runtime.run_mmo("plus-mul", "a", "a", None, "out")
        assert len(trace) == 1
        assert trace.records[0].backend == "emulate"
        assert trace.records[0].execution is not None


class TestTraceSummary:
    def test_aggregates(self):
        a = np.ones((20, 33))
        b = np.ones((33, 17))
        trace = Trace()
        with use_context(trace=trace):
            _, s1 = mmo_tiled("plus-mul", a, b)
            _, s2 = mmo_tiled("min-plus", a, b, backend="sparse")
        summary = trace.summary()
        assert summary.launches == 2
        assert summary.by_backend == {"vectorized": 1, "sparse": 1}
        assert summary.by_ring == {"plus-mul": 1, "min-plus": 1}
        assert summary.mmo_instructions == s1.mmo_instructions + s2.mmo_instructions
        assert summary.unit_ops == s1.unit_ops + s2.unit_ops
        assert summary.spgemm_products == s2.spgemm.products
        assert summary.wall_time_s >= 0.0
        row = summary.as_row()
        assert row["launches"] == 2
        assert row["backends"] == "sparse+vectorized"

    def test_empty_summary(self):
        summary = TraceSummary.from_records([])
        assert summary.launches == 0
        assert summary.mmo_instructions == 0
        assert summary.as_row()["backends"] == "-"

    def test_render_trace(self):
        from repro.bench import render_trace

        trace = Trace()
        with use_context(trace=trace):
            mmo_tiled("plus-mul", np.ones((4, 4)), np.ones((4, 4)))
        text = render_trace(trace, title="T")
        assert text.splitlines()[0] == "T"
        assert "mmo_tiled" in text
        assert "TOTAL" in text

    def test_clear(self):
        trace = Trace()
        with use_context(trace=trace):
            mmo_tiled("plus-mul", np.ones((4, 4)), np.ones((4, 4)))
        trace.clear()
        assert len(trace) == 0


class TestResilienceEvents:
    def test_summary_counts_events_by_kind(self):
        from repro.runtime import ResilienceEvent

        trace = Trace()
        trace.record_event(ResilienceEvent("retry", "x", "vectorized", "d", attempt=1))
        trace.record_event(ResilienceEvent("retry", "x", "vectorized", "d", attempt=2))
        trace.record_event(ResilienceEvent("watchdog", "closure", "emulate", "d"))
        summary = trace.summary()
        assert summary.by_event == {"retry": 2, "watchdog": 1}
        assert summary.retries == 2
        assert summary.watchdog_trips == 1
        assert summary.resilience_events == 3
        assert summary.as_row()["resilience_events"] == 3
        assert trace.events_of("retry")[0].attempt == 1

    def test_clear_drops_events(self):
        from repro.runtime import ResilienceEvent

        trace = Trace()
        trace.record_event(ResilienceEvent("retry", "x", "vectorized", "d"))
        trace.clear()
        assert trace.events == []

    def test_render_trace_appends_event_table(self):
        from repro.bench import render_trace
        from repro.runtime import ResilienceEvent

        trace = Trace()
        with use_context(trace=trace):
            mmo_tiled("plus-mul", np.ones((4, 4)), np.ones((4, 4)))
        trace.record_event(
            ResilienceEvent(
                "corruption_detected", "checked_mmo", "vectorized",
                "suspect tiles [(0, 0)]",
            )
        )
        text = render_trace(trace, title="T")
        assert "resilience events (1)" in text
        assert "corruption_detected" in text
        # a bare record list still renders without an event section
        assert "resilience events" not in render_trace(trace.records)
