"""Tests for batched mmo."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import mmo
from repro.hw import Simd2Device
from repro.runtime import RuntimeError_
from repro.runtime.batched import batched_mmo
from repro.isa import MmoOpcode


def _stack(batch, m, k, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(-5, 6, (batch, m, k)).astype(float)


class TestBatchedSemantics:
    def test_matches_per_item_mmo(self):
        a = _stack(3, 8, 6, seed=1)
        b = _stack(3, 6, 7, seed=2)
        c = _stack(3, 8, 7, seed=3)
        out, stats = batched_mmo("min-plus", a, b, c)
        assert out.shape == (3, 8, 7)
        for i in range(3):
            np.testing.assert_array_equal(out[i], mmo("min-plus", a[i], b[i], c[i]))
        assert stats.batch == 3
        assert len(stats.per_item) == 3

    def test_broadcast_single_b(self):
        a = _stack(4, 5, 6, seed=4)
        b = _stack(1, 6, 5, seed=5)[0]  # plain 2-D matrix
        out, stats = batched_mmo("plus-mul", a, b)
        assert stats.batch == 4
        for i in range(4):
            np.testing.assert_array_equal(out[i], mmo("plus-mul", a[i], b))

    def test_broadcast_singleton_stack(self):
        a = _stack(1, 4, 4, seed=6)
        b = _stack(5, 4, 4, seed=7)
        out, stats = batched_mmo("max-plus", a, b)
        assert out.shape == (5, 4, 4)
        assert stats.batch == 5
        np.testing.assert_array_equal(out[2], mmo("max-plus", a[0], b[2]))

    def test_all_2d_is_batch_of_one(self):
        a = _stack(1, 4, 4, seed=8)[0]
        out, stats = batched_mmo("mma", a, a)
        assert out.shape == (1, 4, 4)
        assert stats.batch == 1

    def test_accepts_opcode(self):
        a = _stack(2, 4, 4, seed=9)
        out, _ = batched_mmo(MmoOpcode.MAXMIN, a, a)
        np.testing.assert_array_equal(out[0], mmo("max-min", a[0], a[0]))


class TestStatsAggregation:
    def test_aggregates_counts(self):
        a = _stack(3, 20, 20, seed=10)
        _, stats = batched_mmo("min-plus", a, a)
        per = stats.per_item[0]
        assert stats.mmo_instructions == 3 * per.mmo_instructions
        assert stats.warp_programs == 3 * per.warp_programs
        assert stats.unit_ops == 3 * per.unit_ops

    def test_emulate_backend_shares_device(self):
        device = Simd2Device(sm_count=2)
        a = _stack(2, 16, 16, seed=11)
        out, stats = batched_mmo("min-plus", a, a, backend="emulate", device=device)
        assert device.kernel_launches == 2
        for i in range(2):
            np.testing.assert_array_equal(out[i], mmo("min-plus", a[i], a[i]))


class TestValidation:
    def test_conflicting_batches(self):
        with pytest.raises(RuntimeError_, match="conflicts with batch"):
            batched_mmo("mma", _stack(2, 4, 4), _stack(3, 4, 4))

    def test_bad_rank(self):
        with pytest.raises(RuntimeError_, match="stack of matrices"):
            batched_mmo("mma", np.zeros((2, 2, 2, 2)), np.zeros((2, 2)))

    def test_c_batch_mismatch(self):
        with pytest.raises(RuntimeError_):
            batched_mmo("mma", _stack(2, 4, 4), _stack(2, 4, 4), _stack(3, 4, 4))
