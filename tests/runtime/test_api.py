"""Tests for the Table-3-style tile program builder."""

from __future__ import annotations

import math

import pytest

from repro.isa import ElementType, FillMatrix, LoadMatrix, Mmo, MmoOpcode, StoreMatrix
from repro.runtime import RuntimeError_, TileProgramBuilder


def _minplus_builder() -> TileProgramBuilder:
    builder = TileProgramBuilder()
    a = builder.matrix("a")
    b = builder.matrix("b")
    acc = builder.matrix("accumulator")
    builder.loadmatrix(a, addr=0, ld=16)
    builder.loadmatrix(b, addr=256, ld=16)
    builder.fillmatrix(acc, math.inf)
    builder.mmo(acc, a, b, acc, "minplus")
    builder.storematrix(addr=512, source=acc, ld=16)
    return builder


class TestBuilder:
    def test_figure6_style_program(self):
        program = _minplus_builder().build()
        kinds = [type(instr) for instr in program]
        assert kinds[:5] == [LoadMatrix, LoadMatrix, FillMatrix, Mmo, StoreMatrix]
        mmo_instr = program[3]
        assert mmo_instr.opcode is MmoOpcode.MINPLUS
        assert program[2].value == math.inf

    def test_role_etypes(self):
        builder = TileProgramBuilder()
        assert builder.matrix("a").etype is ElementType.F16
        assert builder.matrix("accumulator").etype is ElementType.F32

    def test_boolean_roles(self):
        builder = TileProgramBuilder(boolean=True)
        assert builder.matrix("a").etype is ElementType.B8
        assert builder.matrix("accumulator").etype is ElementType.B8

    def test_unknown_role_rejected(self):
        with pytest.raises(RuntimeError_, match="unknown matrix role"):
            TileProgramBuilder().matrix("z")

    def test_register_allocation_is_sequential(self):
        builder = TileProgramBuilder()
        handles = [builder.matrix("a") for _ in range(3)]
        assert [h.register for h in handles] == [0, 1, 2]

    def test_register_exhaustion(self):
        builder = TileProgramBuilder()
        for _ in range(64):
            builder.matrix("a")
        with pytest.raises(RuntimeError_, match="exhausted"):
            builder.matrix("a")

    def test_mmo_role_checking(self):
        builder = TileProgramBuilder()
        a = builder.matrix("a")
        b = builder.matrix("b")
        acc = builder.matrix("accumulator")
        with pytest.raises(RuntimeError_, match="must be an accumulator"):
            builder.mmo(a, a, b, acc, "mma")
        with pytest.raises(RuntimeError_, match="must be an operand"):
            builder.mmo(acc, acc, b, acc, "mma")

    def test_build_is_single_shot(self):
        builder = _minplus_builder()
        builder.build()
        with pytest.raises(RuntimeError_, match="already built"):
            builder.build()
        with pytest.raises(RuntimeError_, match="already built"):
            builder.fillmatrix(builder.matrix("a"), 0.0)

    def test_invalid_program_surfaces_isa_error(self):
        builder = TileProgramBuilder()
        a = builder.matrix("a")
        builder.storematrix(addr=0, source=a, ld=16)  # store before write
        with pytest.raises(RuntimeError_, match="invalid tile program"):
            builder.build()

    def test_mmo_accepts_opcode_enum(self):
        builder = TileProgramBuilder()
        a = builder.matrix("a")
        b = builder.matrix("b")
        acc = builder.matrix("accumulator")
        builder.fillmatrix(acc, 0.0)
        builder.loadmatrix(a, 0, 16)
        builder.loadmatrix(b, 0, 16)
        builder.mmo(acc, a, b, acc, MmoOpcode.ADDNORM)
        assert builder.build()[3].opcode is MmoOpcode.ADDNORM
