"""End-to-end reproduction of the paper's evaluation framework (§5.1).

The paper's framework validates each SIMD²-ized program three ways:

1. **Correctness validation** — the SIMD² algorithm (vectorised "CUDA-core
   backend") must produce the baseline implementation's output.
2. **Emulated execution** — the same program run instruction-by-instruction
   on the hardware emulator must produce the same output again.
3. **Statistics cross-check** — the emulation backend must issue *exactly*
   the number of SIMD² operations the validation pass predicts.

Plus the negative result the framework is built around: a baseline MMA
unit (today's Tensor Core) physically cannot produce correct results for
non-mma opcodes — which is why the paper's performance emulation cannot
also validate outputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import (
    apsp_baseline,
    apsp_simd2,
    gtc_baseline,
    gtc_simd2,
    knn_baseline,
    knn_simd2,
    max_capacity_baseline,
    max_capacity_simd2,
    mst_baseline,
    mst_simd2,
)
from repro.core import mmo
from repro.datasets import (
    GraphSpec,
    PointCloudSpec,
    boolean_graph,
    capacity_graph,
    distance_graph,
    gaussian_clusters,
    undirected_distance_graph,
)
from repro.hw import Simd2Device, UnsupportedOpcode
from repro.runtime import closure, mmo_tiled

SPEC = GraphSpec(num_vertices=36, edge_probability=0.14, seed=99)


class TestThreeWayValidation:
    """baseline == SIMD²-vectorised == SIMD²-emulated, with exact stats."""

    def test_apsp(self):
        adj = distance_graph(SPEC)
        baseline = apsp_baseline(adj).distances
        vectorised = apsp_simd2(adj).distances
        device = Simd2Device(sm_count=4)
        emulated = apsp_simd2(adj, backend="emulate").distances
        np.testing.assert_array_equal(vectorised, baseline)
        np.testing.assert_array_equal(emulated, baseline)

    def test_gtc(self):
        adj = boolean_graph(SPEC, reflexive=False)
        baseline = gtc_baseline(adj).reachable
        vectorised = gtc_simd2(adj)
        emulated = gtc_simd2(adj, backend="emulate")
        np.testing.assert_array_equal(vectorised.reachable, baseline)
        np.testing.assert_array_equal(emulated.reachable, baseline)
        # identical algorithms → identical iteration counts
        assert (
            vectorised.closure_result.iterations
            == emulated.closure_result.iterations
        )

    def test_max_capacity(self):
        adj = capacity_graph(SPEC, maximize=True)
        baseline = max_capacity_baseline(adj).values
        emulated = max_capacity_simd2(adj, backend="emulate").values
        np.testing.assert_array_equal(emulated, baseline)

    def test_mst(self):
        weights = undirected_distance_graph(GraphSpec(24, 0.15, seed=5))
        baseline = mst_baseline(weights)
        emulated = mst_simd2(weights, backend="emulate")
        assert emulated.edges == baseline.edges

    def test_knn(self):
        points, _ = gaussian_clusters(PointCloudSpec(48, dimensions=10, seed=4))
        baseline = knn_baseline(points[:16], points[16:], k=4)
        emulated = knn_simd2(points[:16], points[16:], k=4, backend="emulate")
        np.testing.assert_array_equal(emulated.indices, baseline.indices)
        np.testing.assert_array_equal(emulated.distances, baseline.distances)


class TestStatisticsCrossCheck:
    def test_emulated_counts_match_static_prediction(self):
        device = Simd2Device(sm_count=4)
        adj = distance_graph(GraphSpec(40, 0.2, seed=1))
        result = closure("min-plus", adj, backend="emulate", device=device)
        predicted = sum(stats.mmo_instructions for stats in result.kernel_stats)
        executed = device.stats.mmos
        assert predicted == executed
        predicted_units = sum(stats.unit_ops for stats in result.kernel_stats)
        assert predicted_units == device.unit_ops

    def test_per_opcode_accounting(self):
        from repro.isa import MmoOpcode

        device = Simd2Device(sm_count=2)
        rng = np.random.default_rng(3)
        a = rng.integers(0, 4, (32, 32)).astype(float)
        mmo_tiled("min-plus", a, a, backend="emulate", device=device)
        mmo_tiled("max-plus", a, a, backend="emulate", device=device)
        assert device.stats.mmos_by_opcode == {
            MmoOpcode.MINPLUS: 8,
            MmoOpcode.MAXPLUS: 8,
        }


class TestBaselineUnitCannotValidate:
    """The reason the paper needs two backends: MMA-only units compute
    wrong values for every non-mma opcode."""

    def test_tensor_core_rejects_simd2_opcodes(self):
        device = Simd2Device(sm_count=1, baseline_only=True)
        a = np.ones((16, 16))
        with pytest.raises(UnsupportedOpcode):
            mmo_tiled("min-plus", a, a, backend="emulate", device=device)

    def test_tensor_core_still_runs_mma(self):
        device = Simd2Device(sm_count=1, baseline_only=True)
        rng = np.random.default_rng(0)
        a = rng.integers(0, 4, (16, 16)).astype(float)
        result, _ = mmo_tiled("mma", a, a, backend="emulate", device=device)
        np.testing.assert_array_equal(result, mmo("plus-mul", a, a))

    def test_mapping_minplus_onto_mma_gives_wrong_values(self):
        # The paper's *performance* emulation maps every mmo onto wmma::mma
        # and therefore cannot produce meaningful outputs; demonstrate that
        # the values really do differ.
        rng = np.random.default_rng(1)
        a = rng.integers(1, 5, (16, 16)).astype(float)
        b = rng.integers(1, 5, (16, 16)).astype(float)
        as_mma = mmo("plus-mul", a, b)
        as_minplus = mmo("min-plus", a, b)
        assert not np.array_equal(as_mma, as_minplus)
