"""Tests for the cycle-level systolic-array model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import mmo
from repro.hw import HardwareError
from repro.hw.systolic import SystolicArray
from repro.isa import MmoOpcode
from tests.conftest import make_ring_inputs


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("opcode", list(MmoOpcode), ids=lambda op: op.mnemonic)
    def test_matches_oracle(self, opcode):
        rng = np.random.default_rng(int(opcode) + 40)
        ring = opcode.semiring
        a, b, c = make_ring_inputs(ring, 4, 8, 4, rng)
        array = SystolicArray(4, 4)
        result = array.run(opcode, np.asarray(a), np.asarray(b), np.asarray(c, dtype=ring.output_dtype))
        np.testing.assert_array_equal(result.output, mmo(ring, a, b, c))

    def test_without_accumulator(self):
        rng = np.random.default_rng(1)
        a, b, _ = make_ring_inputs(MmoOpcode.MINPLUS.semiring, 4, 6, 4, rng, with_c=False)
        result = SystolicArray(4, 4).run(MmoOpcode.MINPLUS, np.asarray(a), np.asarray(b))
        np.testing.assert_array_equal(result.output, mmo("min-plus", a, b))

    def test_rectangular_grid(self):
        rng = np.random.default_rng(2)
        a = rng.integers(-4, 5, (2, 5)).astype(float)
        b = rng.integers(-4, 5, (5, 6)).astype(float)
        result = SystolicArray(2, 6).run(MmoOpcode.MMA, a, b)
        np.testing.assert_array_equal(result.output, mmo("plus-mul", a, b))

    def test_empty_k(self):
        result = SystolicArray(2, 2).run(
            MmoOpcode.MINPLUS, np.zeros((2, 0)), np.zeros((0, 2)), np.ones((2, 2))
        )
        np.testing.assert_array_equal(result.output, np.ones((2, 2), dtype=np.float32))
        assert result.cycles == 0


class TestTiming:
    @pytest.mark.parametrize("rows,cols,k", [(4, 4, 4), (4, 4, 16), (2, 6, 3), (8, 8, 8)])
    def test_cycle_count_formula(self, rows, cols, k):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 3, (rows, k)).astype(float)
        b = rng.integers(0, 3, (k, cols)).astype(float)
        result = SystolicArray(rows, cols).run(MmoOpcode.MMA, a, b)
        assert result.cycles == k + rows + cols - 2

    def test_pe_operations_exact(self):
        # Every PE performs exactly k ⊗⊕ steps.
        result = SystolicArray(4, 4).run(
            MmoOpcode.MMA, np.ones((4, 6)), np.ones((6, 4))
        )
        assert result.pe_operations == 4 * 4 * 6

    def test_utilization_improves_with_deeper_k(self):
        shallow = SystolicArray(4, 4).run(MmoOpcode.MMA, np.ones((4, 4)), np.ones((4, 4)))
        deep = SystolicArray(4, 4).run(MmoOpcode.MMA, np.ones((4, 64)), np.ones((64, 4)))
        assert deep.utilization > shallow.utilization
        assert deep.utilization > 0.85

    def test_pipelined_throughput_approaches_one_step_per_cycle(self):
        array = SystolicArray(4, 4)
        cycles = array.pipelined_cycles(k=4, tiles=1000)
        assert cycles / (4 * 1000) < 1.01  # fill/drain amortised away

    def test_pipelined_validation(self):
        with pytest.raises(HardwareError):
            SystolicArray(4, 4).pipelined_cycles(k=0, tiles=1)


class TestValidation:
    def test_grid_mismatch(self):
        with pytest.raises(HardwareError, match="do not match"):
            SystolicArray(4, 4).run(MmoOpcode.MMA, np.ones((3, 4)), np.ones((4, 4)))

    def test_inner_dim_mismatch(self):
        with pytest.raises(HardwareError, match="bad operand shapes"):
            SystolicArray(4, 4).run(MmoOpcode.MMA, np.ones((4, 3)), np.ones((4, 4)))

    def test_bad_grid(self):
        with pytest.raises(HardwareError, match="positive"):
            SystolicArray(0, 4)

    def test_bad_accumulator_shape(self):
        with pytest.raises(HardwareError, match="accumulator"):
            SystolicArray(2, 2).run(
                MmoOpcode.MMA, np.ones((2, 2)), np.ones((2, 2)), np.ones((3, 3))
            )
