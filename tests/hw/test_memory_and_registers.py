"""Tests for the shared-memory scratchpad and the matrix register file."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.tiles import TILE
from repro.hw import MatrixRegisterFile, MemoryFault, RegisterFault, SharedMemory
from repro.isa import ElementType


class TestSharedMemoryFragments:
    def test_store_load_round_trip_f16(self):
        shm = SharedMemory(1 << 16)
        fragment = np.arange(TILE * TILE, dtype=np.float16).reshape(TILE, TILE)
        shm.store_fragment(0, TILE, ElementType.F16, fragment)
        np.testing.assert_array_equal(
            shm.load_fragment(0, TILE, ElementType.F16), fragment
        )

    def test_leading_dimension_strides_rows(self):
        shm = SharedMemory(1 << 16)
        matrix = np.arange(32 * 32, dtype=np.float32).reshape(32, 32)
        shm.write_matrix(0, matrix, ElementType.F32)
        # Tile (1, 1) of the 32x32 matrix via ld=32 strided access.
        fragment = shm.load_fragment(16 * 32 + 16, 32, ElementType.F32)
        np.testing.assert_array_equal(fragment, matrix[16:, 16:])

    def test_boolean_fragments(self):
        shm = SharedMemory(1 << 12)
        fragment = np.random.default_rng(0).random((TILE, TILE)) < 0.5
        shm.store_fragment(0, TILE, ElementType.B8, fragment)
        got = shm.load_fragment(0, TILE, ElementType.B8)
        assert got.dtype == bool
        np.testing.assert_array_equal(got, fragment)

    def test_type_aliasing_is_byte_accurate(self):
        # One fp32 written at element 0 occupies the same bytes as two fp16s.
        shm = SharedMemory(1 << 8)
        shm._typed(ElementType.F32)[0] = 1.0
        halves = shm._typed(ElementType.F16)[:2]
        assert halves.tobytes() == np.float32(1.0).tobytes()

    def test_out_of_bounds_load_rejected(self):
        shm = SharedMemory(size_bytes=2 * TILE * TILE)  # exactly one f16 tile
        shm.load_fragment(0, TILE, ElementType.F16)
        with pytest.raises(MemoryFault, match="overruns"):
            shm.load_fragment(1, TILE, ElementType.F16)

    def test_negative_address_rejected(self):
        with pytest.raises(MemoryFault, match="negative"):
            SharedMemory(1 << 10).load_fragment(-1, TILE, ElementType.F16)

    def test_ld_smaller_than_tile_rejected(self):
        with pytest.raises(MemoryFault, match="leading dimension"):
            SharedMemory(1 << 10).load_fragment(0, TILE - 1, ElementType.F16)

    def test_bad_fragment_shape_rejected(self):
        with pytest.raises(MemoryFault, match="does not match"):
            SharedMemory(1 << 10).store_fragment(
                0, TILE, ElementType.F16, np.zeros((TILE, TILE + 1))
            )

    def test_zero_size_rejected(self):
        with pytest.raises(MemoryFault):
            SharedMemory(0)


class TestSharedMemoryMatrices:
    def test_matrix_round_trip(self):
        shm = SharedMemory(1 << 16)
        matrix = np.random.default_rng(1).normal(size=(7, 9)).astype(np.float32)
        end = shm.write_matrix(5, matrix, ElementType.F32)
        assert end == 5 + 63
        np.testing.assert_array_equal(
            shm.read_matrix(5, (7, 9), ElementType.F32), matrix
        )

    def test_matrix_overrun_rejected(self):
        shm = SharedMemory(64)
        with pytest.raises(MemoryFault, match="overruns"):
            shm.write_matrix(0, np.zeros((8, 8)), ElementType.F32)

    def test_non_2d_rejected(self):
        with pytest.raises(MemoryFault, match="2-D"):
            SharedMemory(1 << 10).write_matrix(0, np.zeros(4), ElementType.F32)

    def test_clear(self):
        shm = SharedMemory(1 << 10)
        shm.write_matrix(0, np.ones((4, 4)), ElementType.F32)
        shm.clear()
        np.testing.assert_array_equal(
            shm.read_matrix(0, (4, 4), ElementType.F32), np.zeros((4, 4))
        )


class TestRegisterFile:
    def test_write_read_round_trip(self):
        rf = MatrixRegisterFile()
        fragment = np.arange(TILE * TILE, dtype=np.float32).reshape(TILE, TILE)
        rf.write(3, fragment, ElementType.F32)
        np.testing.assert_array_equal(rf.read(3), fragment)
        assert rf.etype_of(3) is ElementType.F32

    def test_write_converts_to_etype(self):
        rf = MatrixRegisterFile()
        rf.write(0, np.full((TILE, TILE), 1.0 / 3.0), ElementType.F16)
        assert rf.read(0).dtype == np.float16

    def test_read_returns_copy(self):
        rf = MatrixRegisterFile()
        rf.write(0, np.zeros((TILE, TILE)), ElementType.F32)
        rf.read(0)[0, 0] = 99.0
        assert rf.read(0)[0, 0] == 0.0

    def test_uninitialised_read_faults(self):
        with pytest.raises(RegisterFault, match="before initialisation"):
            MatrixRegisterFile().read(0)

    def test_out_of_range_faults(self):
        rf = MatrixRegisterFile(num_registers=4)
        with pytest.raises(RegisterFault, match="out of range"):
            rf.read(4)

    def test_bad_fragment_shape_faults(self):
        with pytest.raises(RegisterFault, match="register geometry"):
            MatrixRegisterFile().write(0, np.zeros((4, 4)), ElementType.F32)

    def test_clear(self):
        rf = MatrixRegisterFile()
        rf.write(0, np.zeros((TILE, TILE)), ElementType.F32)
        rf.clear()
        assert not rf.is_initialised(0)
