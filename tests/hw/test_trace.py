"""Tests for instruction-level execution tracing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TILE
from repro.hw import ExecutionTrace, SharedMemory, WarpExecutor
from repro.isa import InstructionKind, Program, assemble

PROGRAM_TEXT = """
fill.f16 m0, 1.0
fill.f16 m1, 2.0
fill.f32 m2, 0.0
mmo.mma m3, m0, m1, m2
store.f32 m3, [0], ld=16
halt
"""


def _run(trace: ExecutionTrace) -> None:
    shm = SharedMemory()
    executor = WarpExecutor(shm, observer=trace)
    executor.run(Program(assemble(PROGRAM_TEXT)))


class TestExecutionTrace:
    def test_records_every_instruction(self):
        trace = ExecutionTrace()
        _run(trace)
        assert len(trace) == 6
        assert [r.pc for r in trace.records] == list(range(6))
        assert trace.counts[InstructionKind.FILL] == 3
        assert trace.counts[InstructionKind.MMO] == 1
        assert trace.counts[InstructionKind.HALT] == 1
        assert not trace.truncated

    def test_sequence_numbers_span_programs(self):
        trace = ExecutionTrace()
        _run(trace)
        _run(trace)
        assert len(trace) == 12
        assert trace.records[-1].sequence == 11

    def test_limit_truncates_storage_not_counts(self):
        trace = ExecutionTrace(limit=3)
        _run(trace)
        assert len(trace.records) == 3
        assert len(trace) == 6
        assert trace.truncated
        assert "3 more" in trace.format()

    def test_format_contains_assembly(self):
        trace = ExecutionTrace()
        _run(trace)
        text = trace.format()
        assert "mmo.mma m3, m0, m1, m2" in text
        assert "retired 6 instructions" in text

    def test_clear(self):
        trace = ExecutionTrace()
        _run(trace)
        trace.clear()
        assert len(trace) == 0
        assert not trace.counts

    def test_bad_limit(self):
        with pytest.raises(ValueError, match="positive"):
            ExecutionTrace(limit=0)

    def test_tracing_does_not_change_results(self):
        shm_plain = SharedMemory()
        shm_traced = SharedMemory()
        program = Program(assemble(PROGRAM_TEXT))
        WarpExecutor(shm_plain).run(program)
        WarpExecutor(shm_traced, observer=ExecutionTrace()).run(program)
        from repro.isa import ElementType

        np.testing.assert_array_equal(
            shm_plain.read_matrix(0, (TILE, TILE), ElementType.F32),
            shm_traced.read_matrix(0, (TILE, TILE), ElementType.F32),
        )
