"""Failure injection: the emulator must fault loudly, never silently.

Systematically drives each fault class of the hardware stack — memory
overruns, register misuse, capability mismatches, resource exhaustion —
and asserts that faults surface as the right exception *and* leave
observable state uncorrupted.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TILE
from repro.hw import (
    BaselineMmaUnit,
    HardwareError,
    MemoryFault,
    RegisterFault,
    SharedMemory,
    Simd2Device,
    UnsupportedOpcode,
    WarpExecutor,
    WarpWorkItem,
)
from repro.isa import (
    ElementType,
    FillMatrix,
    LoadMatrix,
    Mmo,
    MmoOpcode,
    Program,
    StoreMatrix,
)
from repro.runtime import RuntimeError_, TileProgramBuilder, mmo_tiled


class TestMemoryFaults:
    def test_load_past_end_faults_and_preserves_memory(self):
        shm = SharedMemory(size_bytes=1024)
        shm.write_matrix(0, np.ones((TILE, TILE)), ElementType.B8)
        snapshot = shm.read_matrix(0, (TILE, TILE), ElementType.B8).copy()
        program = Program(
            [LoadMatrix(dst=0, addr=2**20, ld=TILE)], auto_halt=True
        )
        with pytest.raises(MemoryFault):
            WarpExecutor(shm).run(program)
        np.testing.assert_array_equal(
            shm.read_matrix(0, (TILE, TILE), ElementType.B8), snapshot
        )

    def test_store_past_end_faults_before_writing(self):
        shm = SharedMemory(size_bytes=4 * TILE * TILE)
        program = Program(
            [
                FillMatrix(dst=0, value=7.0),
                StoreMatrix(src=0, addr=2**16, ld=TILE),
            ],
            auto_halt=True,
        )
        with pytest.raises(MemoryFault):
            WarpExecutor(shm).run(program)
        # Nothing may have been written anywhere.
        assert not shm.read_matrix(0, (TILE, TILE), ElementType.F32).any()

    def test_huge_stride_faults(self):
        shm = SharedMemory(size_bytes=1 << 12)
        with pytest.raises(MemoryFault, match="overruns"):
            shm.load_fragment(0, 2**15, ElementType.F32)


class TestRegisterFaults:
    def test_uninitialised_mmo_operand_is_impossible_via_program(self):
        # Program validation rejects it statically...
        with pytest.raises(Exception):
            Program(
                [Mmo(MmoOpcode.MMA, 3, 0, 1, 2)], auto_halt=True
            )

    def test_direct_register_abuse_faults_at_runtime(self):
        # ...and the register file still guards direct (non-Program) use.
        executor = WarpExecutor(SharedMemory())
        with pytest.raises(RegisterFault):
            executor.registers.read(5)

    def test_register_file_bounds(self):
        executor = WarpExecutor(SharedMemory())
        with pytest.raises(RegisterFault, match="out of range"):
            executor.registers.write(64, np.zeros((TILE, TILE)), ElementType.F32)


class TestCapabilityFaults:
    def test_baseline_device_faults_midway_without_partial_results(self):
        device = Simd2Device(sm_count=1, baseline_only=True)
        a = np.ones((TILE, TILE))
        with pytest.raises(UnsupportedOpcode):
            mmo_tiled("max-plus", a, a, backend="emulate", device=device)
        # The unit never counted a max-plus op.
        assert device.stats.mmos_by_opcode.get(MmoOpcode.MAXPLUS, 0) == 0

    def test_unit_rejects_wrong_shapes(self):
        unit = BaselineMmaUnit()
        with pytest.raises(HardwareError, match="4x4"):
            unit.compute(MmoOpcode.MMA, np.zeros((8, 8)), np.zeros((8, 8)), np.zeros((8, 8)))


class TestResourceExhaustion:
    def test_register_budget_exhaustion_in_builder(self):
        builder = TileProgramBuilder()
        for _ in range(64):
            builder.matrix("a")
        with pytest.raises(RuntimeError_, match="exhausted"):
            builder.matrix("b")

    def test_kernel_on_tiny_scratchpad_faults(self):
        # A deep-k kernel staged into a scratchpad that cannot hold its
        # operand panels must fault during staging, not corrupt results.
        from repro.runtime.kernels import build_tile_mmo_program

        program, c_addr, _ = build_tile_mmo_program(MmoOpcode.MMA, 8, boolean=False)
        tiny = SharedMemory(size_bytes=1024)
        with pytest.raises(MemoryFault):
            tiny.write_matrix(c_addr, np.zeros((TILE, TILE)), ElementType.F32)

    def test_device_with_no_sms_rejected(self):
        with pytest.raises(HardwareError, match="sm_count"):
            Simd2Device(sm_count=0)

    def test_empty_launch_is_harmless(self):
        device = Simd2Device(sm_count=2)
        stats = device.launch([])
        assert stats.instructions == 0
        assert device.kernel_launches == 1


class TestFaultIsolation:
    def test_fault_in_one_warp_does_not_corrupt_another(self):
        device = Simd2Device(sm_count=1)
        good_shm = SharedMemory()
        rng = np.random.default_rng(0)
        tile = rng.integers(0, 4, (TILE, TILE)).astype(float)
        good_shm.write_matrix(0, tile, ElementType.F16)
        good_program = Program(
            [
                LoadMatrix(dst=0, addr=0, ld=TILE),
                LoadMatrix(dst=1, addr=0, ld=TILE),
                FillMatrix(dst=2, value=0.0),
                Mmo(MmoOpcode.MMA, 3, 0, 1, 2),
                StoreMatrix(src=3, addr=256, ld=TILE),
            ],
            auto_halt=True,
        )
        bad_shm = SharedMemory(size_bytes=64)
        bad_program = Program(
            [LoadMatrix(dst=0, addr=0, ld=TILE)], auto_halt=True
        )
        device.launch([WarpWorkItem(good_program, good_shm)])
        with pytest.raises(MemoryFault):
            device.launch([WarpWorkItem(bad_program, bad_shm)])
        # The good warp's results survive untouched.
        from repro.core import mmo

        np.testing.assert_array_equal(
            good_shm.read_matrix(256, (TILE, TILE), ElementType.F32),
            mmo("plus-mul", tile, tile),
        )
