"""Test package."""
