"""Tests for the 4×4 SIMD² unit and the baseline MMA unit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import mmo
from repro.hw import BaselineMmaUnit, HardwareError, Simd2Unit, UNIT_DIM, UnsupportedOpcode
from repro.isa import MmoOpcode
from tests.conftest import make_ring_inputs


@pytest.fixture
def unit() -> Simd2Unit:
    return Simd2Unit()


class TestSimd2Unit:
    @pytest.mark.parametrize("opcode", list(MmoOpcode))
    def test_matches_oracle_per_opcode(self, unit, opcode):
        rng = np.random.default_rng(int(opcode) + 1)
        ring = opcode.semiring
        a, b, c = make_ring_inputs(ring, UNIT_DIM, UNIT_DIM, UNIT_DIM, rng)
        got = unit.compute(opcode, np.asarray(a), np.asarray(b), np.asarray(c, dtype=ring.output_dtype))
        expected = mmo(ring, a, b, c)
        np.testing.assert_array_equal(got, expected)
        assert got.dtype == ring.output_dtype

    def test_bad_tile_shape_rejected(self, unit):
        good = np.zeros((UNIT_DIM, UNIT_DIM))
        bad = np.zeros((UNIT_DIM, UNIT_DIM + 1))
        with pytest.raises(HardwareError, match="operand b"):
            unit.compute(MmoOpcode.MMA, good, bad, good)

    def test_op_counters(self, unit):
        tile = np.zeros((UNIT_DIM, UNIT_DIM))
        unit.compute(MmoOpcode.MMA, tile, tile, tile)
        unit.compute(MmoOpcode.MINPLUS, tile, tile, tile)
        unit.compute(MmoOpcode.MINPLUS, tile, tile, tile)
        assert unit.op_counts[MmoOpcode.MMA] == 1
        assert unit.op_counts[MmoOpcode.MINPLUS] == 2
        assert unit.total_ops == 3
        unit.reset_counters()
        assert unit.total_ops == 0

    def test_fp16_quantisation_on_inputs(self, unit):
        # Inputs pass through fp16, so 1/3 is rounded before multiplying.
        a = np.full((UNIT_DIM, UNIT_DIM), 1.0 / 3.0)
        b = np.eye(UNIT_DIM)
        c = np.zeros((UNIT_DIM, UNIT_DIM), dtype=np.float32)
        got = unit.compute(MmoOpcode.MMA, a, b, c)
        assert got[0, 0] == np.float32(np.float16(1.0 / 3.0))

    def test_reduction_tree_order_is_deterministic(self, unit):
        rng = np.random.default_rng(5)
        a = rng.normal(size=(UNIT_DIM, UNIT_DIM))
        b = rng.normal(size=(UNIT_DIM, UNIT_DIM))
        c = rng.normal(size=(UNIT_DIM, UNIT_DIM)).astype(np.float32)
        first = unit.compute(MmoOpcode.MMA, a, b, c)
        second = unit.compute(MmoOpcode.MMA, a, b, c)
        np.testing.assert_array_equal(first, second)

    def test_min_plus_with_infinite_padding(self, unit):
        a = np.full((UNIT_DIM, UNIT_DIM), np.inf)
        b = np.full((UNIT_DIM, UNIT_DIM), np.inf)
        c = np.full((UNIT_DIM, UNIT_DIM), 3.0, dtype=np.float32)
        got = unit.compute(MmoOpcode.MINPLUS, a, b, c)
        np.testing.assert_array_equal(got, c)


class TestBaselineMmaUnit:
    def test_supports_only_mma(self):
        unit = BaselineMmaUnit()
        tile = np.zeros((UNIT_DIM, UNIT_DIM))
        unit.compute(MmoOpcode.MMA, tile, tile, tile)
        for opcode in MmoOpcode:
            if opcode is MmoOpcode.MMA:
                continue
            with pytest.raises(UnsupportedOpcode, match=opcode.mnemonic):
                unit.compute(opcode, tile, tile, tile)

    def test_mma_matches_simd2_unit(self):
        rng = np.random.default_rng(9)
        a = rng.integers(-4, 5, (UNIT_DIM, UNIT_DIM)).astype(float)
        b = rng.integers(-4, 5, (UNIT_DIM, UNIT_DIM)).astype(float)
        c = rng.integers(-4, 5, (UNIT_DIM, UNIT_DIM)).astype(np.float32)
        np.testing.assert_array_equal(
            BaselineMmaUnit().compute(MmoOpcode.MMA, a, b, c),
            Simd2Unit().compute(MmoOpcode.MMA, a, b, c),
        )
