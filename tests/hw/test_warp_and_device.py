"""Integration tests: programs executed on warps, SMs and the device."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TILE, mmo
from repro.hw import (
    BaselineMmaUnit,
    HardwareError,
    MemoryFault,
    SharedMemory,
    Simd2Device,
    StreamingMultiprocessor,
    UnsupportedOpcode,
    WarpExecutor,
    WarpWorkItem,
)
from repro.isa import (
    ElementType,
    FillMatrix,
    LoadMatrix,
    Mmo,
    MmoOpcode,
    Program,
    StoreMatrix,
    assemble,
)
from tests.conftest import make_ring_inputs


def _tile_mmo_program(opcode: MmoOpcode, with_c_load: bool = True) -> Program:
    """load A,B(,C) / mmo / store D — addresses laid out tile after tile."""
    boolean = opcode.semiring.is_boolean()
    in_etype = ElementType.B8 if boolean else ElementType.F16
    out_etype = ElementType.B8 if boolean else ElementType.F32
    t2 = TILE * TILE
    instructions = [
        LoadMatrix(dst=0, addr=0, ld=TILE, etype=in_etype),
        LoadMatrix(dst=1, addr=t2, ld=TILE, etype=in_etype),
    ]
    if with_c_load:
        instructions.append(LoadMatrix(dst=2, addr=2 * t2, ld=TILE, etype=out_etype))
    else:
        fill = 0.0 if boolean else float(opcode.semiring.oplus_identity)
        instructions.append(FillMatrix(dst=2, value=fill, etype=out_etype))
    instructions.append(Mmo(opcode, 3, 0, 1, 2))
    instructions.append(StoreMatrix(src=3, addr=3 * t2, ld=TILE, etype=out_etype))
    return Program(instructions, auto_halt=True)


def _stage_tile_inputs(shm: SharedMemory, opcode: MmoOpcode, a, b, c) -> None:
    boolean = opcode.semiring.is_boolean()
    in_etype = ElementType.B8 if boolean else ElementType.F16
    out_etype = ElementType.B8 if boolean else ElementType.F32
    t2 = TILE * TILE
    shm.write_matrix(0, np.asarray(a), in_etype)
    shm.write_matrix(t2, np.asarray(b), in_etype)
    shm.write_matrix(2 * t2, np.asarray(c, dtype=opcode.semiring.output_dtype), out_etype)


class TestWarpExecutor:
    @pytest.mark.parametrize("opcode", list(MmoOpcode))
    def test_tile_program_matches_oracle(self, opcode):
        rng = np.random.default_rng(11 + int(opcode))
        ring = opcode.semiring
        a, b, c = make_ring_inputs(ring, TILE, TILE, TILE, rng)
        shm = SharedMemory()
        _stage_tile_inputs(shm, opcode, a, b, c)
        executor = WarpExecutor(shm)
        stats = executor.run(_tile_mmo_program(opcode))

        out_etype = ElementType.B8 if ring.is_boolean() else ElementType.F32
        got = shm.read_matrix(3 * TILE * TILE, (TILE, TILE), out_etype)
        np.testing.assert_array_equal(
            got.astype(ring.output_dtype), mmo(ring, a, b, c)
        )
        assert stats.mmos == 1
        assert stats.unit_ops == (TILE // 4) ** 3
        assert stats.loads == 3
        assert stats.stores == 1

    def test_fill_identity_equals_no_accumulator(self):
        rng = np.random.default_rng(2)
        ring = MmoOpcode.MINPLUS.semiring
        a, b, _ = make_ring_inputs(ring, TILE, TILE, TILE, rng, with_c=False)
        shm = SharedMemory()
        _stage_tile_inputs(shm, MmoOpcode.MINPLUS, a, b, ring.full((TILE, TILE)))
        executor = WarpExecutor(shm)
        executor.run(_tile_mmo_program(MmoOpcode.MINPLUS, with_c_load=False))
        got = shm.read_matrix(3 * TILE * TILE, (TILE, TILE), ElementType.F32)
        np.testing.assert_array_equal(got, mmo(ring, a, b))

    def test_operand_etype_mismatch_rejected(self):
        # Feeding an fp32 fragment into the fp16 ⊗ port is a hardware fault.
        shm = SharedMemory()
        shm.write_matrix(0, np.zeros((TILE, TILE)), ElementType.F32)
        program = Program(
            [
                LoadMatrix(dst=0, addr=0, ld=TILE, etype=ElementType.F32),
                LoadMatrix(dst=1, addr=0, ld=TILE, etype=ElementType.F32),
                FillMatrix(dst=2, value=0.0),
                Mmo(MmoOpcode.MMA, 3, 0, 1, 2),
            ],
            auto_halt=True,
        )
        with pytest.raises(HardwareError, match="expected f16"):
            WarpExecutor(shm).run(program)

    def test_accumulator_etype_mismatch_rejected(self):
        shm = SharedMemory()
        program = Program(
            [
                FillMatrix(dst=0, value=0.0, etype=ElementType.F16),
                FillMatrix(dst=1, value=0.0, etype=ElementType.F16),
                FillMatrix(dst=2, value=0.0, etype=ElementType.F16),
                Mmo(MmoOpcode.MMA, 3, 0, 1, 2),
            ],
            auto_halt=True,
        )
        with pytest.raises(HardwareError, match="accumulator"):
            WarpExecutor(shm).run(program)

    def test_misaligned_load_faults(self):
        shm = SharedMemory(size_bytes=TILE * TILE * 2)  # one f16 tile exactly
        program = Program(
            [LoadMatrix(dst=0, addr=TILE, ld=TILE, etype=ElementType.F16)],
            auto_halt=True,
        )
        with pytest.raises(MemoryFault, match="overruns"):
            WarpExecutor(shm).run(program)

    def test_baseline_unit_rejects_simd2_program(self):
        rng = np.random.default_rng(4)
        ring = MmoOpcode.MINPLUS.semiring
        a, b, c = make_ring_inputs(ring, TILE, TILE, TILE, rng)
        shm = SharedMemory()
        _stage_tile_inputs(shm, MmoOpcode.MINPLUS, a, b, c)
        executor = WarpExecutor(shm, unit=BaselineMmaUnit())
        with pytest.raises(UnsupportedOpcode):
            executor.run(_tile_mmo_program(MmoOpcode.MINPLUS))

    def test_assembled_text_program_runs(self):
        text = """
        fill.f16 m0, 2.0
        fill.f16 m1, 3.0
        fill.f32 m2, 1.0
        mmo.mma m3, m0, m1, m2
        store.f32 m3, [0], ld=16
        halt
        """
        shm = SharedMemory()
        WarpExecutor(shm).run(Program(assemble(text)))
        got = shm.read_matrix(0, (TILE, TILE), ElementType.F32)
        # Each output = 1 + Σ_k 2*3 = 1 + 16*6 = 97.
        np.testing.assert_array_equal(got, np.full((TILE, TILE), 97.0, dtype=np.float32))


class TestSmAndDevice:
    def _work_item(self, seed: int) -> tuple[WarpWorkItem, np.ndarray, np.ndarray, np.ndarray]:
        rng = np.random.default_rng(seed)
        ring = MmoOpcode.MINPLUS.semiring
        a, b, c = make_ring_inputs(ring, TILE, TILE, TILE, rng)
        shm = SharedMemory()
        _stage_tile_inputs(shm, MmoOpcode.MINPLUS, a, b, c)
        return WarpWorkItem(_tile_mmo_program(MmoOpcode.MINPLUS), shm), a, b, c

    def test_sm_round_robin_over_units(self):
        sm = StreamingMultiprocessor()
        for seed in range(8):
            item, *_ = self._work_item(seed)
            sm.execute_warp(item.program, item.shared_memory)
        per_unit = [unit.total_ops for unit in sm.units]
        assert len(set(per_unit)) == 1  # 8 warps over 4 units: 2 each
        assert sm.unit_ops == 8 * (TILE // 4) ** 3

    def test_device_launch_aggregates_and_validates(self):
        device = Simd2Device(sm_count=3)
        items = []
        expected = []
        for seed in range(5):
            item, a, b, c = self._work_item(seed)
            items.append(item)
            expected.append(mmo("min-plus", a, b, c))
        stats = device.launch(items)
        assert stats.mmos == 5
        assert device.kernel_launches == 1
        assert device.unit_ops == 5 * (TILE // 4) ** 3
        for item, want in zip(items, expected):
            got = item.shared_memory.read_matrix(
                3 * TILE * TILE, (TILE, TILE), ElementType.F32
            )
            np.testing.assert_array_equal(got, want)

    def test_device_memory_management(self):
        device = Simd2Device(sm_count=1)
        device.malloc("adj", (8, 8), np.float32)
        host = np.random.default_rng(0).normal(size=(8, 8)).astype(np.float32)
        device.memcpy_h2d("adj", host)
        np.testing.assert_array_equal(device.memcpy_d2h("adj"), host)
        device.free("adj")
        with pytest.raises(MemoryFault, match="no device buffer"):
            device.memcpy_d2h("adj")

    def test_double_malloc_rejected(self):
        device = Simd2Device(sm_count=1)
        device.malloc("x", (2,), np.float32)
        with pytest.raises(MemoryFault, match="already allocated"):
            device.malloc("x", (2,), np.float32)

    def test_h2d_shape_mismatch_rejected(self):
        device = Simd2Device(sm_count=1)
        device.malloc("x", (2, 2), np.float32)
        with pytest.raises(MemoryFault, match="shape mismatch"):
            device.memcpy_h2d("x", np.zeros((3, 3)))

    def test_reset_clears_stats_not_memory(self):
        device = Simd2Device(sm_count=1)
        device.malloc("x", (2,), np.float32)
        item, *_ = self._work_item(0)
        device.launch([item])
        device.reset()
        assert device.stats.mmos == 0
        assert device.kernel_launches == 0
        assert "x" in device.global_memory
