"""Tests for the SM occupancy model."""

from __future__ import annotations

import pytest

from repro.hw import HardwareError
from repro.hw.occupancy import (
    OccupancyReport,
    SmBudget,
    kernel_occupancy,
    occupancy_utilization,
    tile_kernel_shared_bytes,
)
from repro.isa import MmoOpcode
from repro.runtime.kernels import build_tile_mmo_program


def _program(tiles_k: int, boolean: bool = False):
    program, _, _ = build_tile_mmo_program(
        MmoOpcode.ORAND if boolean else MmoOpcode.MINPLUS, tiles_k, boolean=boolean
    )
    return program


class TestSharedBytes:
    def test_formula(self):
        # 2 fp16 panels of k tiles + C and D fp32 tiles.
        assert tile_kernel_shared_bytes(3, boolean=False) == 2 * 2 * 3 * 256 + 4 * 2 * 256
        assert tile_kernel_shared_bytes(3, boolean=True) == 1 * 2 * 3 * 256 + 1 * 2 * 256

    def test_bad_tiles_k(self):
        with pytest.raises(HardwareError):
            tile_kernel_shared_bytes(0, boolean=False)


class TestOccupancy:
    def test_shallow_boolean_kernel_is_warp_slot_limited(self):
        # A 1-deep boolean kernel needs only 1 KiB of scratch per warp.
        report = kernel_occupancy(_program(1, boolean=True), tiles_k=1, boolean=True)
        assert report.limited_by == "warp-slots"
        assert report.warps_resident == SmBudget().max_warps

    def test_shallow_numeric_kernel_is_shared_memory_limited(self):
        report = kernel_occupancy(_program(1), tiles_k=1)
        assert report.limited_by == "shared-memory"
        assert report.warps_resident == 100 * 1024 // 3072

    def test_deep_kernel_is_shared_memory_limited(self):
        tiles_k = 64  # 64-tile panels: 66.5 KB per warp
        report = kernel_occupancy(_program(tiles_k), tiles_k=tiles_k)
        assert report.limited_by == "shared-memory"
        assert report.warps_resident == 100 * 1024 // report.shared_bytes_per_warp

    def test_register_limited_budget(self):
        budget = SmBudget(matrix_registers=6)
        report = kernel_occupancy(_program(1), tiles_k=1, budget=budget)
        assert report.limited_by == "registers"
        assert report.warps_resident == 6 // report.registers_per_warp

    def test_boolean_kernels_fit_more_warps(self):
        dense = kernel_occupancy(_program(32), tiles_k=32)
        boolean = kernel_occupancy(_program(32, boolean=True), tiles_k=32, boolean=True)
        assert boolean.warps_resident >= dense.warps_resident

    def test_impossible_kernel_faults(self):
        with pytest.raises(HardwareError, match="shared bytes per warp"):
            kernel_occupancy(
                _program(64), tiles_k=64, budget=SmBudget(shared_memory_bytes=1024)
            )

    def test_bad_budget(self):
        with pytest.raises(HardwareError):
            SmBudget(max_warps=0)


class TestUtilization:
    def test_full_hiding(self):
        report = OccupancyReport(16, "warp-slots", 1024, 3)
        assert occupancy_utilization(report) == 1.0

    def test_partial_hiding(self):
        report = OccupancyReport(2, "shared-memory", 65536, 3)
        assert occupancy_utilization(report) == pytest.approx(0.25)

    def test_bad_latency_parameter(self):
        with pytest.raises(HardwareError):
            occupancy_utilization(OccupancyReport(2, "x", 1, 1), warps_to_cover_latency=0)
