"""Tests for the configurable ⊗/⊕ ALU models."""

from __future__ import annotations

import numpy as np

from repro.hw.alu import ALU_CONFIG, OplusMode, OtimesMode, apply_oplus, apply_otimes
from repro.isa import MmoOpcode


class TestConfigTable:
    def test_every_opcode_configured(self):
        assert set(ALU_CONFIG) == set(MmoOpcode)

    def test_config_matches_semiring_semantics(self):
        # For every opcode, the ALU pair must compute exactly what the
        # opcode's semiring computes element-wise.
        rng = np.random.default_rng(3)
        for opcode, (oplus_mode, otimes_mode) in ALU_CONFIG.items():
            ring = opcode.semiring
            if ring.is_boolean():
                a = rng.random(16) < 0.5
                b = rng.random(16) < 0.5
            else:
                a = rng.normal(size=16).astype(np.float32)
                b = rng.normal(size=16).astype(np.float32)
            np.testing.assert_array_equal(
                apply_otimes(otimes_mode, a, b),
                np.asarray(ring.otimes(a, b)),
                err_msg=f"otimes mismatch for {opcode.mnemonic}",
            )
            np.testing.assert_array_equal(
                apply_oplus(oplus_mode, a.astype(ring.output_dtype), b.astype(ring.output_dtype)),
                np.asarray(ring.oplus(a.astype(ring.output_dtype), b.astype(ring.output_dtype))),
                err_msg=f"oplus mismatch for {opcode.mnemonic}",
            )

    def test_otimes_mode_counts(self):
        # Paper Fig 5: ⊗ ALU supports multiply, min/max, add/and, L2 dist.
        used = {mode for _, mode in ALU_CONFIG.values()}
        assert used == {
            OtimesMode.MULTIPLY,
            OtimesMode.ADD,
            OtimesMode.MIN,
            OtimesMode.MAX,
            OtimesMode.AND,
            OtimesMode.L2DIST,
        }

    def test_oplus_mode_counts(self):
        # Paper Fig 5: ⊕ ALU supports add, min/max, or.
        used = {mode for mode, _ in ALU_CONFIG.values()}
        assert used == {OplusMode.ADD, OplusMode.MIN, OplusMode.MAX, OplusMode.OR}


class TestFunctionalBehaviour:
    def test_l2dist(self):
        a = np.array([1.0, -2.0], dtype=np.float32)
        b = np.array([4.0, 1.0], dtype=np.float32)
        np.testing.assert_array_equal(
            apply_otimes(OtimesMode.L2DIST, a, b), np.array([9.0, 9.0], dtype=np.float32)
        )

    def test_min_max(self):
        a = np.array([1.0, 5.0])
        b = np.array([3.0, 2.0])
        np.testing.assert_array_equal(apply_otimes(OtimesMode.MIN, a, b), [1.0, 2.0])
        np.testing.assert_array_equal(apply_otimes(OtimesMode.MAX, a, b), [3.0, 5.0])
