"""Tests for the sparse (GAMMA-style) semiring closure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SemiringError
from repro.datasets import GraphSpec, boolean_graph, distance_graph
from repro.runtime import closure
from repro.sparse import CsrMatrix, elementwise_oplus, sparse_closure


def _sparse_minplus_graph(n=30, p=0.12, seed=2):
    adj = distance_graph(GraphSpec(n, p, seed=seed))
    return adj, CsrMatrix.from_dense(adj, implicit=np.inf)


class TestElementwiseOplus:
    def test_union_with_min(self):
        a = CsrMatrix.from_dense(np.array([[1.0, 0.0], [0.0, 5.0]]), implicit=0.0)
        b = CsrMatrix.from_dense(np.array([[3.0, 2.0], [0.0, 4.0]]), implicit=0.0)
        # over min-plus the implicit value is +inf, so stored zeros are data
        a = CsrMatrix.from_dense(np.array([[1.0, np.inf], [np.inf, 5.0]]), implicit=np.inf)
        b = CsrMatrix.from_dense(np.array([[3.0, 2.0], [np.inf, 4.0]]), implicit=np.inf)
        merged = elementwise_oplus("min-plus", a, b)
        np.testing.assert_array_equal(
            merged.to_dense(implicit=np.inf),
            np.array([[1.0, 2.0], [np.inf, 4.0]], dtype=np.float32),
        )

    def test_shape_mismatch(self):
        a = CsrMatrix.from_dense(np.zeros((2, 2)))
        b = CsrMatrix.from_dense(np.zeros((3, 3)))
        with pytest.raises(SemiringError, match="shape mismatch"):
            elementwise_oplus("min-plus", a, b)

    def test_identity_results_dropped(self):
        # max-plus: -inf is implicit; min-plus oplus of +inf entries drops.
        a = CsrMatrix.from_dense(np.array([[np.inf]]), implicit=0.0)
        b = CsrMatrix.from_dense(np.array([[np.inf]]), implicit=0.0)
        merged = elementwise_oplus("min-plus", a, b)
        assert merged.nnz == 0


class TestSparseClosureEquivalence:
    def test_apsp_matches_dense_closure(self):
        adj, csr = _sparse_minplus_graph()
        dense_result = closure("min-plus", adj, method="leyzorek")
        sparse_result = sparse_closure("min-plus", csr, method="leyzorek")
        np.testing.assert_array_equal(
            sparse_result.matrix.to_dense(implicit=np.inf).astype(np.float32),
            dense_result.matrix,
        )
        assert sparse_result.converged

    def test_bellman_ford_agrees(self):
        _, csr = _sparse_minplus_graph(n=20, seed=5)
        ley = sparse_closure("min-plus", csr, method="leyzorek")
        bf = sparse_closure("min-plus", csr, method="bellman-ford")
        np.testing.assert_array_equal(
            ley.matrix.to_dense(implicit=np.inf), bf.matrix.to_dense(implicit=np.inf)
        )

    def test_boolean_transitive_closure(self):
        adj = boolean_graph(GraphSpec(18, 0.12, seed=7))
        csr = CsrMatrix.from_dense(adj, implicit=False)
        dense_result = closure("or-and", adj)
        sparse_result = sparse_closure("or-and", csr)
        np.testing.assert_array_equal(
            sparse_result.matrix.to_dense(implicit=False), dense_result.matrix
        )

    def test_product_accounting(self):
        _, csr = _sparse_minplus_graph(n=16, seed=9)
        result = sparse_closure("min-plus", csr)
        assert result.total_products == sum(s.products for s in result.spgemm_stats)
        assert len(result.spgemm_stats) == result.iterations
        assert result.final_nnz == result.matrix.nnz

    def test_sparsity_advantage(self):
        # On a sparse graph the closure performs far fewer scalar products
        # than the dense n³-per-iteration algorithm — the point of the
        # GAMMA-style extension.
        n = 40
        adj = distance_graph(GraphSpec(n, 0.05, seed=3))
        csr = CsrMatrix.from_dense(adj, implicit=np.inf)
        result = sparse_closure("min-plus", csr)
        dense_products = result.iterations * n**3
        assert result.total_products < dense_products / 2


class TestSparseClosureValidation:
    def test_non_square_rejected(self):
        csr = CsrMatrix.from_dense(np.zeros((2, 3)))
        with pytest.raises(SemiringError, match="square"):
            sparse_closure("min-plus", csr)

    def test_unknown_method_rejected(self):
        csr = CsrMatrix.from_dense(np.zeros((2, 2)))
        with pytest.raises(SemiringError, match="unknown closure method"):
            sparse_closure("min-plus", csr, method="dijkstra")

    def test_iteration_cap(self):
        _, csr = _sparse_minplus_graph(n=20, seed=1)
        result = sparse_closure(
            "min-plus", csr, method="bellman-ford", max_iterations=1
        )
        assert result.iterations == 1
        assert not result.converged

    def test_bad_iteration_cap(self):
        csr = CsrMatrix.from_dense(np.zeros((2, 2)))
        with pytest.raises(SemiringError, match="positive"):
            sparse_closure("min-plus", csr, max_iterations=0)
