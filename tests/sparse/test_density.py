"""Tests for the shared operand-density estimator (repro.sparse.density)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SEMIRINGS
from repro.sparse import EXACT_THRESHOLD, estimate_density


@pytest.fixture
def rng():
    return np.random.default_rng(0xD59)


class TestExactPath:
    """Operands at or below EXACT_THRESHOLD elements are counted exactly."""

    def test_full_matrix_is_density_one(self):
        assert estimate_density(np.ones((16, 16)), "min-plus") == 1.0

    def test_all_identity_is_density_zero(self):
        inf = np.full((16, 16), np.inf)
        assert estimate_density(inf, "min-plus") == 0.0

    def test_exact_fraction(self):
        a = np.full((10, 10), np.inf)
        a[:3, :5] = 2.0  # 15 explicit entries
        assert estimate_density(a, "min-plus") == pytest.approx(0.15)

    def test_identity_depends_on_ring(self):
        zeros = np.zeros((8, 8))
        # 0 is plus-mul's ⊕ identity, but explicit data under min-plus.
        assert estimate_density(zeros, "plus-mul") == 0.0
        assert estimate_density(zeros, "min-plus") == 1.0

    def test_accepts_semiring_objects(self):
        sr = SEMIRINGS["max-plus"]
        a = np.full((8, 8), sr.oplus_identity)
        assert estimate_density(a, sr) == 0.0

    def test_boolean_ring_counts_true_entries(self):
        a = np.zeros((8, 8), dtype=bool)
        a[0, :4] = True
        assert estimate_density(a, "or-and") == pytest.approx(4 / 64)

    def test_nan_counts_as_explicit(self):
        a = np.full((8, 8), np.inf)
        a[0, 0] = np.nan
        assert estimate_density(a, "min-plus") == pytest.approx(1 / 64)

    def test_empty_operand_is_zero(self):
        assert estimate_density(np.zeros((0, 5)), "min-plus") == 0.0


class TestSampledPath:
    """Large operands are sampled deterministically."""

    def test_large_operand_uses_sampling(self, rng):
        n = 256  # 65536 elements > EXACT_THRESHOLD
        assert n * n > EXACT_THRESHOLD
        a = np.full((n, n), np.inf)
        mask = rng.random((n, n)) < 0.1
        a[mask] = 1.0
        est = estimate_density(a, "min-plus")
        true = mask.mean()
        assert abs(est - true) < 0.03  # 2048 samples: ±3σ ≈ 0.02

    def test_sampling_is_deterministic(self, rng):
        a = np.where(rng.random((300, 300)) < 0.05, 1.0, np.inf)
        assert estimate_density(a, "min-plus") == estimate_density(a, "min-plus")

    def test_extremes_survive_sampling(self):
        n = 256
        assert estimate_density(np.full((n, n), np.inf), "min-plus") == 0.0
        assert estimate_density(np.ones((n, n)), "min-plus") == 1.0

    def test_result_is_a_probability(self, rng):
        a = np.where(rng.random((200, 200)) < 0.5, 2.0, 0.0)
        d = estimate_density(a, "plus-mul")
        assert 0.0 <= d <= 1.0
