"""Tests for the from-scratch CSR implementation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SEMIRINGS
from repro.sparse import CsrMatrix, SparseError


def _random_dense(rows, cols, density, seed=0):
    rng = np.random.default_rng(seed)
    dense = np.where(
        rng.random((rows, cols)) < density, rng.integers(1, 9, (rows, cols)), 0
    ).astype(np.float32)
    return dense


class TestRoundTrip:
    def test_dense_round_trip(self):
        dense = _random_dense(13, 17, 0.3)
        csr = CsrMatrix.from_dense(dense)
        np.testing.assert_array_equal(csr.to_dense(), dense)
        assert csr.nnz == int((dense != 0).sum())

    def test_infinity_implicit_value(self):
        dense = np.full((4, 4), np.inf)
        dense[1, 2] = 5.0
        csr = CsrMatrix.from_dense(dense, implicit=np.inf)
        assert csr.nnz == 1
        np.testing.assert_array_equal(csr.to_dense(implicit=np.inf), dense)

    def test_boolean_matrix(self):
        dense = np.random.default_rng(1).random((6, 6)) < 0.3
        csr = CsrMatrix.from_dense(dense, implicit=False)
        np.testing.assert_array_equal(csr.to_dense(implicit=False), dense)

    def test_empty_matrix(self):
        csr = CsrMatrix.from_dense(np.zeros((3, 5)))
        assert csr.nnz == 0
        assert csr.sparsity == 1.0
        np.testing.assert_array_equal(csr.to_dense(), np.zeros((3, 5)))

    def test_transpose(self):
        dense = _random_dense(9, 12, 0.4, seed=5)
        got = CsrMatrix.from_dense(dense).transpose()
        np.testing.assert_array_equal(got.to_dense(), dense.T)
        assert got.shape == (12, 9)

    def test_empty_matrix_honours_data_dtype(self):
        # Regression: the empty case used to densify via
        # np.result_type(type(implicit)) → float64, diverging from the
        # non-empty case, which uses the stored data dtype.
        empty = CsrMatrix.from_dense(np.zeros((3, 5), dtype=np.float16))
        full = CsrMatrix.from_dense(np.eye(3, 5, dtype=np.float16))
        assert empty.to_dense().dtype == np.float16
        assert empty.to_dense().dtype == full.to_dense().dtype

    def test_dtype_override(self):
        csr = CsrMatrix.from_dense(np.eye(2, dtype=np.float64))
        assert csr.to_dense(dtype=np.float32).dtype == np.float32


class TestRingAwareDensify:
    def test_min_plus_fills_inf(self):
        # Regression: to_dense() defaults implicit=0.0, which silently
        # turns "no edge" into "zero-cost edge" under min-plus.
        adj = np.array([[np.inf, 3.0], [np.inf, np.inf]])
        csr = CsrMatrix.from_dense(adj, implicit=np.inf)
        dense = csr.to_dense_for("min-plus")
        assert dense.dtype == np.float32
        np.testing.assert_array_equal(dense, adj.astype(np.float32))

    def test_or_and_fills_false(self):
        pattern = np.random.default_rng(2).random((5, 5)) < 0.4
        csr = CsrMatrix.from_dense(pattern, implicit=False)
        dense = csr.to_dense_for("or-and")
        assert dense.dtype == np.bool_
        np.testing.assert_array_equal(dense, pattern)

    def test_identity_fill_for_every_ring(self):
        for name, ring in SEMIRINGS.items():
            empty = CsrMatrix.from_dense(
                np.full((2, 3), ring.oplus_identity),
                implicit=ring.oplus_identity,
            )
            dense = empty.to_dense_for(name)
            assert dense.dtype == ring.output_dtype, name
            np.testing.assert_array_equal(
                dense, np.full((2, 3), ring.oplus_identity, ring.output_dtype)
            )


class TestAccessors:
    def test_row(self):
        dense = np.array([[0.0, 2.0, 0.0], [1.0, 0.0, 3.0]])
        csr = CsrMatrix.from_dense(dense)
        cols, vals = csr.row(1)
        np.testing.assert_array_equal(cols, [0, 2])
        np.testing.assert_array_equal(vals, [1.0, 3.0])

    def test_row_out_of_range(self):
        csr = CsrMatrix.from_dense(np.zeros((2, 2)))
        with pytest.raises(SparseError, match="out of range"):
            csr.row(2)

    def test_density_and_sparsity(self):
        dense = np.eye(10)
        csr = CsrMatrix.from_dense(dense)
        assert csr.density == pytest.approx(0.1)
        assert csr.sparsity == pytest.approx(0.9)

    def test_memory_bytes(self):
        csr = CsrMatrix.from_dense(np.eye(10))
        assert csr.memory_bytes() == 11 * 4 + 10 * 4 + 10 * 4
        assert csr.memory_bytes(value_bytes=8) == 11 * 4 + 10 * 4 + 10 * 8


class TestValidation:
    def test_bad_indptr_shape(self):
        with pytest.raises(SparseError, match="indptr"):
            CsrMatrix((2, 2), np.array([0, 1]), np.array([0]), np.array([1.0]))

    def test_indptr_must_end_at_nnz(self):
        with pytest.raises(SparseError, match="end at nnz"):
            CsrMatrix((2, 2), np.array([0, 1, 3]), np.array([0]), np.array([1.0]))

    def test_decreasing_indptr(self):
        with pytest.raises(SparseError, match="non-decreasing"):
            CsrMatrix(
                (2, 2), np.array([0, 3, 2]), np.array([0, 1]), np.array([1.0, 2.0])
            )

    def test_column_out_of_range(self):
        with pytest.raises(SparseError, match="column index"):
            CsrMatrix((2, 2), np.array([0, 1, 1]), np.array([5]), np.array([1.0]))

    def test_unsorted_columns(self):
        with pytest.raises(SparseError, match="strictly increasing"):
            CsrMatrix(
                (1, 3), np.array([0, 2]), np.array([2, 0]), np.array([1.0, 2.0])
            )

    def test_length_mismatch(self):
        with pytest.raises(SparseError, match="lengths differ"):
            CsrMatrix((1, 3), np.array([0, 1]), np.array([0]), np.array([1.0, 2.0]))

    def test_non_2d_dense(self):
        with pytest.raises(SparseError, match="2-D"):
            CsrMatrix.from_dense(np.zeros(4))
