"""Tests for 2:4 structured sparsity and the memory-footprint model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import mmo
from repro.sparse import (
    MemoryModel,
    RTX3080_MEMORY_BYTES,
    SparseError,
    Structured24Matrix,
    check_2_4,
    prune_2_4,
)


class TestPruning:
    def test_pruned_matrix_satisfies_pattern(self):
        rng = np.random.default_rng(0)
        dense = rng.normal(size=(8, 16)).astype(np.float32)
        pruned = prune_2_4(dense)
        assert check_2_4(pruned)

    def test_keeps_top_two_magnitudes(self):
        row = np.array([[1.0, -5.0, 3.0, 0.5]])
        pruned = prune_2_4(row)
        np.testing.assert_array_equal(pruned, [[0.0, -5.0, 3.0, 0.0]])

    def test_already_sparse_rows_unchanged(self):
        row = np.array([[0.0, 2.0, 0.0, 1.0]])
        np.testing.assert_array_equal(prune_2_4(row), row)

    def test_tie_keeps_earlier_element(self):
        row = np.array([[2.0, 2.0, 2.0, 2.0]])
        np.testing.assert_array_equal(prune_2_4(row), [[2.0, 2.0, 0.0, 0.0]])

    def test_bad_inner_dimension(self):
        with pytest.raises(SparseError, match="multiple of 4"):
            prune_2_4(np.zeros((2, 6)))

    def test_check_rejects_dense_group(self):
        assert not check_2_4(np.ones((1, 4)))

    def test_custom_zero_value(self):
        row = np.array([[np.inf, 2.0, 3.0, np.inf]])
        assert check_2_4(row, zero=np.inf)


class TestCompression:
    def test_round_trip(self):
        rng = np.random.default_rng(3)
        dense = prune_2_4(rng.normal(size=(6, 12)).astype(np.float32))
        compressed = Structured24Matrix.compress(dense)
        np.testing.assert_array_equal(compressed.decompress(), dense)

    def test_compress_rejects_unpruned(self):
        with pytest.raises(SparseError, match="2:4 pattern"):
            Structured24Matrix.compress(np.ones((2, 4)))

    def test_memory_halves_values(self):
        dense = prune_2_4(np.random.default_rng(1).normal(size=(16, 32)).astype(np.float32))
        compressed = Structured24Matrix.compress(dense)
        dense_bytes = 16 * 32 * 2  # fp16
        # 2 of 4 values kept (fp16) + 2-bit metadata each.
        assert compressed.memory_bytes() == dense_bytes // 2 + (16 * 16 * 2 + 7) // 8

    def test_pruned_operand_computes_like_dense(self):
        # Functional equivalence: a structured operand in an mmo behaves
        # exactly like its decompressed dense form.
        rng = np.random.default_rng(5)
        a = prune_2_4(rng.integers(-4, 5, (8, 16)).astype(np.float32))
        b = rng.integers(-4, 5, (16, 8)).astype(np.float32)
        via_compressed = mmo("plus-mul", Structured24Matrix.compress(a).decompress(), b)
        np.testing.assert_array_equal(via_compressed, mmo("plus-mul", a, b))


class TestMemoryModel:
    def test_dense_32768_fits_10gb(self):
        # Paper: "a GPU with 10GB ... can accommodate a matrix
        # multiplication of at least 32768x32768".
        model = MemoryModel()
        assert model.dense_fits(32768)

    def test_spgemm_oom_at_16384_below_90pct_sparsity(self):
        # Paper: cuSparse OOMs for 16384² matrices with sparsity < 90%.
        model = MemoryModel()
        assert not model.spgemm_fits(16384, density=0.2)
        assert model.spgemm_fits(16384, density=0.001)

    def test_csr_beats_dense_only_when_sparse_enough(self):
        model = MemoryModel()
        # fp16 dense = 2 bytes/elem; CSR = 8 bytes/nnz → crossover at 75%.
        assert model.csr_smaller_than_dense(4096, density=0.1)
        assert not model.csr_smaller_than_dense(4096, density=0.5)

    def test_footprints_monotone_in_density(self):
        model = MemoryModel()
        sizes = [0.001, 0.01, 0.1, 0.5]
        footprints = [model.spgemm_bytes(4096, d) for d in sizes]
        assert footprints == sorted(footprints)

    def test_device_default(self):
        assert MemoryModel().device_bytes == RTX3080_MEMORY_BYTES
