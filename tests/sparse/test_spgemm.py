"""Tests for the semiring spGEMM against the dense oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import get_semiring, mmo
from repro.sparse import CsrMatrix, SparseError, spgemm


def _sparse_ring_inputs(ring_name, m, k, n, density, seed):
    """Dense matrices whose implicit entries are the ring's ⊕ identity."""
    ring = get_semiring(ring_name)
    rng = np.random.default_rng(seed)
    if ring.is_boolean():
        a = rng.random((m, k)) < density
        b = rng.random((k, n)) < density
        return a, b, False
    identity = float(ring.oplus_identity)
    a = np.where(rng.random((m, k)) < density, rng.integers(1, 9, (m, k)), identity).astype(float)
    b = np.where(rng.random((k, n)) < density, rng.integers(1, 9, (k, n)), identity).astype(float)
    return a, b, identity


class TestAgainstDenseOracle:
    @pytest.mark.parametrize("ring_name", ["plus-mul", "min-plus", "max-plus", "or-and", "max-min"])
    def test_matches_dense_mmo(self, ring_name):
        a_dense, b_dense, implicit = _sparse_ring_inputs(ring_name, 14, 11, 13, 0.3, 7)
        a = CsrMatrix.from_dense(a_dense, implicit=implicit)
        b = CsrMatrix.from_dense(b_dense, implicit=implicit)
        got, stats = spgemm(ring_name, a, b)
        expected = mmo(ring_name, a_dense, b_dense)
        np.testing.assert_array_equal(
            got.to_dense(implicit=implicit).astype(expected.dtype), expected
        )
        assert stats.products >= got.nnz or got.nnz == 0

    def test_min_plus_shortest_one_hop(self):
        # spGEMM of an adjacency with itself = best 2-hop distances.
        inf = np.inf
        adj = np.array([[inf, 1.0, inf], [inf, inf, 2.0], [inf, inf, inf]])
        a = CsrMatrix.from_dense(adj, implicit=inf)
        got, _ = spgemm("min-plus", a, a)
        dense = got.to_dense(implicit=inf)
        assert dense[0, 2] == 3.0
        assert got.nnz == 1

    def test_product_count_formula(self):
        # products = Σ_i Σ_{k ∈ row_i(A)} nnz(row_k(B))
        a_dense, b_dense, implicit = _sparse_ring_inputs("plus-mul", 10, 10, 10, 0.4, 3)
        a = CsrMatrix.from_dense(a_dense, implicit=implicit)
        b = CsrMatrix.from_dense(b_dense, implicit=implicit)
        _, stats = spgemm("plus-mul", a, b)
        expected = sum(
            len(b.row(int(col))[0]) for i in range(10) for col in a.row(i)[0]
        )
        assert stats.products == expected

    def test_cancellation_drops_identity_outputs(self):
        # +3 and -3 products cancel to the ⊕ identity 0 and are dropped.
        a = CsrMatrix.from_dense(np.array([[1.0, 1.0]]))
        b = CsrMatrix.from_dense(np.array([[3.0], [-3.0]]))
        got, stats = spgemm("plus-mul", a, b)
        assert got.nnz == 0
        assert stats.products == 2

    def test_keep_identity_flag(self):
        a = CsrMatrix.from_dense(np.array([[1.0, 1.0]]))
        b = CsrMatrix.from_dense(np.array([[3.0], [-3.0]]))
        got, _ = spgemm("plus-mul", a, b, keep_identity=True)
        assert got.nnz == 1
        assert got.to_dense()[0, 0] == 0.0

    def test_empty_operands(self):
        a = CsrMatrix.from_dense(np.zeros((3, 4)))
        b = CsrMatrix.from_dense(np.zeros((4, 2)))
        got, stats = spgemm("plus-mul", a, b)
        assert got.nnz == 0
        assert stats.products == 0
        assert stats.rows_touched == 0

    def test_shape_mismatch(self):
        a = CsrMatrix.from_dense(np.zeros((3, 4)))
        with pytest.raises(SparseError, match="inner dimensions"):
            spgemm("plus-mul", a, a)

    def test_compression_ratio(self):
        a_dense, b_dense, implicit = _sparse_ring_inputs("plus-mul", 12, 12, 12, 0.5, 9)
        a = CsrMatrix.from_dense(a_dense, implicit=implicit)
        b = CsrMatrix.from_dense(b_dense, implicit=implicit)
        _, stats = spgemm("plus-mul", a, b)
        assert stats.compression_ratio >= 1.0

    def test_compression_ratio_total_cancellation(self):
        # Regression: products > 0 but every output merged to the ⊕
        # identity and was dropped used to report 0.0, contradicting the
        # "≥ 1 whenever work was done" contract; it is now +inf.
        a = CsrMatrix.from_dense(np.array([[1.0, 1.0]]))
        b = CsrMatrix.from_dense(np.array([[3.0], [-3.0]]))
        _, stats = spgemm("plus-mul", a, b)
        assert stats.products == 2 and stats.output_nnz == 0
        assert stats.compression_ratio == float("inf")

    def test_compression_ratio_no_work(self):
        a = CsrMatrix.from_dense(np.zeros((2, 2)))
        _, stats = spgemm("plus-mul", a, a)
        assert stats.products == 0
        assert stats.compression_ratio == 0.0
