"""Test package."""
