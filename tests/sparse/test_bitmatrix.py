"""Tests for the packed boolean matrix (cuBool analogue)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import mmo
from repro.datasets import GraphSpec, boolean_graph
from repro.apps import gtc_baseline
from repro.sparse import SparseError
from repro.sparse.bitmatrix import BitMatrix


def _random_bool(rows, cols, density=0.3, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random((rows, cols)) < density


class TestPacking:
    @pytest.mark.parametrize("shape", [(5, 7), (3, 64), (4, 65), (1, 1), (2, 128)])
    def test_round_trip(self, shape):
        dense = _random_bool(*shape, seed=shape[0] * 100 + shape[1])
        packed = BitMatrix.from_dense(dense)
        np.testing.assert_array_equal(packed.to_dense(), dense)

    def test_nnz(self):
        dense = _random_bool(9, 70, seed=3)
        assert BitMatrix.from_dense(dense).nnz == int(dense.sum())

    def test_memory_is_one_bit_per_element(self):
        packed = BitMatrix.from_dense(np.zeros((64, 128), dtype=bool))
        assert packed.memory_bytes() == 64 * (128 // 64) * 8  # = n²/8 bytes

    def test_non_boolean_rejected(self):
        with pytest.raises(SparseError, match="boolean"):
            BitMatrix.from_dense(np.zeros((2, 2)))

    def test_padding_bit_invariant_enforced(self):
        with pytest.raises(SparseError, match="padding bits"):
            BitMatrix(shape=(1, 3), words=np.array([[0xFF]], dtype=np.uint64))


class TestMultiply:
    @given(st.integers(1, 12), st.integers(1, 70), st.integers(1, 12), st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_matches_orand_semiring(self, m, k, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.random((m, k)) < 0.3
        b = rng.random((k, n)) < 0.3
        got = BitMatrix.from_dense(a).multiply(BitMatrix.from_dense(b))
        np.testing.assert_array_equal(got.to_dense(), mmo("or-and", a, b))

    def test_shape_mismatch(self):
        a = BitMatrix.from_dense(np.zeros((2, 3), dtype=bool))
        with pytest.raises(SparseError, match="inner dimensions"):
            a.multiply(a)

    def test_elementwise_or(self):
        a = _random_bool(5, 9, seed=1)
        b = _random_bool(5, 9, seed=2)
        got = BitMatrix.from_dense(a).elementwise_or(BitMatrix.from_dense(b))
        np.testing.assert_array_equal(got.to_dense(), a | b)


class TestClosure:
    def test_matches_bfs_baseline(self):
        adj = boolean_graph(GraphSpec(40, 0.08, seed=21), reflexive=False)
        expected = gtc_baseline(adj).reachable
        closed, iterations = BitMatrix.from_dense(adj).transitive_closure()
        np.testing.assert_array_equal(closed.to_dense(), expected)
        assert iterations >= 1

    def test_non_square_rejected(self):
        with pytest.raises(SparseError, match="square"):
            BitMatrix.from_dense(np.zeros((2, 3), dtype=bool)).transitive_closure()

    def test_already_closed_converges_immediately(self):
        full = BitMatrix.from_dense(np.ones((6, 6), dtype=bool))
        closed, iterations = full.transitive_closure()
        assert closed == full
        assert iterations == 1
