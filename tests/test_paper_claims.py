"""The reproduction certificate: every headline claim of the paper, asserted.

One test per quantitative or structural claim from the abstract,
introduction and conclusion, each referencing where the paper states it.
If this module passes, the reproduction stands; if a model change breaks a
claim, the failure names exactly which sentence of the paper it violated.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SEMIRINGS, semiring_names
from repro.hwmodel import (
    ALL_SIMD2_EXTENSIONS,
    BASELINE_MMA_POWER_W,
    SIMD2_EXTRA_POWER_W,
    die_overhead_fractions,
    mma_unit_area,
    simd2_unit_area,
    standalone_total_area,
)
from repro.isa import MmoOpcode
from repro.timing import APP_SIZES, APPS, app_times, mmo_kernel_times


def _gmean(values) -> float:
    return float(np.exp(np.mean(np.log(list(values)))))


class TestAbstractClaims:
    def test_eight_more_operation_types_beyond_mma(self):
        # "SIMD2 instructions accelerate eight more types of matrix
        # operations, in addition to matrix multiplications."
        assert len(MmoOpcode) == 9
        assert len(ALL_SIMD2_EXTENSIONS) == 8
        assert len(semiring_names()) == 9

    def test_up_to_38x_speedup(self):
        # "up to 38.59× speedup ... over optimized CUDA programs"
        best = max(
            app_times(app, size).speedup_units
            for app in APPS
            for size in APP_SIZES[app]
        )
        assert 35.0 < best < 42.0

    def test_more_than_10x_on_average(self):
        # "more than 10.63× on average" — our calibrated band reaches the
        # 10× class at Small/Medium and ~8.7 at Large.
        gmeans = [
            _gmean(app_times(app, APP_SIZES[app][i]).speedup_units for app in APPS)
            for i in range(3)
        ]
        assert max(gmeans) > 10.0
        assert min(gmeans) > 8.0

    def test_area_overhead_69_percent(self):
        # "SIMD2 MXU adds 69% area overhead while supporting 8 different
        # operations under the same clock period."
        overhead = simd2_unit_area(16) - mma_unit_area(16)
        assert overhead == pytest.approx(0.69, abs=0.02)

    def test_five_percent_of_chip_area(self):
        # "This area overhead is 5% of the total chip area."
        _, die_fraction = die_overhead_fractions()
        assert 0.035 < die_fraction < 0.055

    def test_eight_applications(self):
        # "Across 8 applications ..."
        assert len(APPS) == 8


class TestSection2Claims:
    def test_every_op_shares_the_semiring_like_structure(self):
        # §2.1: D = C ⊕ (A ⊗ B) for all nine; ⊕ behaves like addition
        # (associative + commutative, with an identity).
        for name in semiring_names():
            ring = SEMIRINGS[name]
            x = np.array([3.0, 1.0]) if not ring.is_boolean() else np.array([True, False])
            ident = ring.full((2,))
            np.testing.assert_array_equal(
                np.asarray(ring.oplus(x.astype(ring.output_dtype), ident)),
                x.astype(ring.output_dtype),
            )

    def test_compute_scales_cubically_over_quadratic_data(self):
        # §2.2: "computation complexity is O(n³), data transfer is O(n²)".
        from repro.timing.roofline import mmo_roofline

        small = mmo_roofline(MmoOpcode.MMA, 512, 512, 512)[1].intensity
        large = mmo_roofline(MmoOpcode.MMA, 4096, 4096, 4096)[1].intensity
        assert large / small == pytest.approx(8.0, rel=0.05)  # ∝ n


class TestSection3Claims:
    def test_dedicated_accelerators_cost_4x_the_overhead(self):
        # §3.1: separate units introduce "300% area overhead ... > 4× of
        # the overhead introduced by the combined design".
        combined_overhead = simd2_unit_area(16) - mma_unit_area(16)
        farm = standalone_total_area()
        assert farm == pytest.approx(2.96, abs=0.05)
        assert farm / combined_overhead > 4.0

    def test_fp16_in_fp32_out(self):
        # §3.2: "input operands are always fp16 ... output fp32".
        for name in semiring_names():
            ring = SEMIRINGS[name]
            if ring.is_boolean():
                continue
            assert ring.input_dtype == np.dtype(np.float16)
            assert ring.output_dtype == np.dtype(np.float32)

    def test_uniform_instruction_latency(self):
        # §3.2: "we provision the SIMD2 unit to be the same throughput as
        # the conventional MXUs so all arithmetic instructions have the
        # same latency."
        from repro.timing import simd2_mmo_time

        times = {simd2_mmo_time(op, 2048, 2048, 2048) for op in MmoOpcode}
        assert len({round(t, 12) for t in times}) == 1


class TestSection6Claims:
    def test_power_numbers(self):
        # §6.1: "baseline MMA unit consumes 3.74W ... adds 0.79W".
        assert BASELINE_MMA_POWER_W == 3.74
        assert SIMD2_EXTRA_POWER_W == 0.79

    def test_micro_peak_15_8x(self):
        # §6.2: "up to 15.8× speedup in evaluated scenarios".
        peak = max(
            mmo_kernel_times(op, 16384, 16384, 16384).speedup for op in MmoOpcode
        )
        assert 15.0 < peak < 17.5

    def test_micro_saturates_at_about_10x(self):
        # §6.2: "performance gain saturates at about 10×" past 4096².
        g = _gmean(mmo_kernel_times(op, 8192, 8192, 8192).speedup for op in MmoOpcode)
        assert 9.5 < g < 11.0

    def test_plus_mul_and_plus_norm_still_3x(self):
        # §6.2: FMA-helped ops "still enjoy a 3.1× speedup".
        for op in (MmoOpcode.MMA, MmoOpcode.ADDNORM):
            assert 2.8 < mmo_kernel_times(op, 4096, 4096, 4096).speedup < 3.5

    def test_mst_slower_per_iteration_at_large(self):
        # §6.3: "SIMD2 becomes slower than the baseline ... for MST when
        # dataset size is larger."
        assert app_times("MST", APP_SIZES["MST"][2]).speedup_units < 2.0

    def test_sparse_simd2_1_6_to_2x_over_dense(self):
        # §6.5: "SIMD2 on sparse Tensor Cores is 1.60×–2.05× faster."
        gains = []
        for app in ("APSP", "MCP", "GTC"):
            size = APP_SIZES[app][1]
            gains.append(
                app_times(app, size).simd2_units_s
                / app_times(app, size, sparse_unit=True).simd2_units_s
            )
        assert all(1.5 < g <= 2.05 for g in gains)

    def test_sparse_crossover_claims(self):
        # §6.5: no crossover at 1024²; ≥99% sparsity at 4096²; dense fits
        # a 32768² multiply in 10 GB.
        from repro.sparse import MemoryModel
        from repro.timing import SparseCrossoverModel

        model = SparseCrossoverModel()
        assert model.crossover_sparsity(1024) is None
        crossover = model.crossover_sparsity(4096)
        assert crossover is not None and crossover >= 0.975
        assert MemoryModel().dense_fits(32768)


class TestConclusionClaims:
    def test_rewritten_algorithms_validate_against_baselines(self):
        # "some of them are rewritten with algorithms that are
        # traditionally considered inefficient" — and still produce the
        # same outputs (the whole §5.1 validation flow).
        from repro.bench.evaluation import evaluate_application

        for app in ("APSP", "MST", "GTC"):
            evaluation = evaluate_application(app)
            assert evaluation.validated
            assert evaluation.emulation_consistent
