"""Second property-based suite: cross-layer invariants of the extensions."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import SEMIRINGS, SemiringMatrix, mmo
from repro.isa import MmoOpcode, Program, assemble, disassemble, verify_program
from repro.isa.optimizer import optimize_program
from repro.runtime import closure, mmo_tiled, mmo_tiled_split_k, vxm
from repro.runtime.batched import batched_mmo
from repro.runtime.kernels import build_tile_mmo_program

seeds = st.integers(0, 2**32 - 1)
IDEMPOTENT = ("min-plus", "max-plus", "min-max", "max-min", "or-and")


def _closure_input(ring_name: str, n: int, seed: int) -> np.ndarray:
    """A square matrix in the ring's natural closure encoding."""
    rng = np.random.default_rng(seed)
    ring = SEMIRINGS[ring_name]
    if ring.is_boolean():
        adj = rng.random((n, n)) < 0.3
        np.fill_diagonal(adj, True)
        return adj
    mask = rng.random((n, n)) < 0.3
    if ring_name == "max-plus":
        # Longest paths need a DAG: positive cycles have no fixpoint.
        mask = np.triu(mask, k=1)
    weights = rng.integers(1, 9, (n, n)).astype(float)
    adj = np.where(mask, weights, float(ring.oplus_identity))
    diag = 0.0 if ring_name in ("min-plus", "max-plus") else (
        np.inf if ring_name == "max-min" else -np.inf
    )
    np.fill_diagonal(adj, diag)
    return adj


class TestClosureAcrossRings:
    @given(st.sampled_from(IDEMPOTENT), st.integers(3, 16), seeds)
    @settings(max_examples=40, deadline=None)
    def test_closure_is_a_fixpoint_for_every_idempotent_ring(self, name, n, seed):
        adj = _closure_input(name, n, seed)
        result = closure(name, adj, method="leyzorek")
        again, _ = mmo_tiled(name, result.matrix, result.matrix, result.matrix)
        np.testing.assert_array_equal(again, result.matrix)

    @given(st.sampled_from(IDEMPOTENT), st.integers(3, 12), seeds)
    @settings(max_examples=30, deadline=None)
    def test_methods_agree_for_every_idempotent_ring(self, name, n, seed):
        adj = _closure_input(name, n, seed)
        ley = closure(name, adj, method="leyzorek")
        bf = closure(name, adj, method="bellman-ford")
        np.testing.assert_array_equal(ley.matrix, bf.matrix)


class TestSemiringMatrixProperties:
    @given(st.sampled_from(sorted(SEMIRINGS)), st.integers(2, 10), seeds)
    @settings(max_examples=40, deadline=None)
    def test_matmul_matches_mmo(self, name, n, seed):
        rng = np.random.default_rng(seed)
        ring = SEMIRINGS[name]
        if ring.is_boolean():
            data = rng.random((n, n)) < 0.4
        else:
            data = rng.integers(-5, 6, (n, n)).astype(float)
        wrapped = SemiringMatrix(data, ring)
        np.testing.assert_array_equal(
            (wrapped @ wrapped).to_array(), mmo(ring, data, data)
        )

    @given(st.integers(2, 10), seeds)
    @settings(max_examples=30)
    def test_oplus_add_is_idempotent_for_min(self, n, seed):
        rng = np.random.default_rng(seed)
        data = rng.integers(-5, 6, (n, n)).astype(float)
        wrapped = SemiringMatrix(data, "min-plus")
        np.testing.assert_array_equal((wrapped + wrapped).to_array(), wrapped.to_array())


class TestKernelSchedulingProperties:
    @given(st.sampled_from(sorted(SEMIRINGS)), st.integers(1, 5), st.integers(1, 40), seeds)
    @settings(max_examples=40, deadline=None)
    def test_split_k_is_schedule_invariant(self, name, splits, k, seed):
        rng = np.random.default_rng(seed)
        ring = SEMIRINGS[name]
        if ring.is_boolean():
            a = rng.random((6, k)) < 0.4
            b = rng.random((k, 7)) < 0.4
        else:
            a = rng.integers(-4, 5, (6, k)).astype(float)
            b = rng.integers(-4, 5, (k, 7)).astype(float)
        split, _ = mmo_tiled_split_k(ring, a, b, splits=splits)
        np.testing.assert_array_equal(split, mmo(ring, a, b))

    @given(st.integers(1, 4), st.integers(2, 8), seeds)
    @settings(max_examples=30, deadline=None)
    def test_batched_equals_loop(self, batch, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(-4, 5, (batch, n, n)).astype(float)
        b = rng.integers(-4, 5, (batch, n, n)).astype(float)
        stacked, stats = batched_mmo("min-plus", a, b)
        assert stats.batch == batch
        for i in range(batch):
            np.testing.assert_array_equal(stacked[i], mmo("min-plus", a[i], b[i]))


class TestVectorConsistency:
    @given(st.sampled_from(("min-plus", "max-plus", "or-and", "plus-mul")), st.integers(2, 10), seeds)
    @settings(max_examples=40, deadline=None)
    def test_vxm_equals_matrix_row(self, name, n, seed):
        rng = np.random.default_rng(seed)
        ring = SEMIRINGS[name]
        if ring.is_boolean():
            x = rng.random(n) < 0.5
            a = rng.random((n, n)) < 0.4
        else:
            x = rng.integers(1, 9, n).astype(float)
            a = rng.integers(1, 9, (n, n)).astype(float)
        np.testing.assert_array_equal(vxm(ring, x, a), mmo(ring, x[None, :], a)[0])


class TestToolchainComposition:
    @given(st.sampled_from(list(MmoOpcode)), st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_generated_kernels_survive_the_full_toolchain(self, opcode, tiles_k):
        program, _, _ = build_tile_mmo_program(
            opcode, tiles_k, boolean=opcode.semiring.is_boolean()
        )
        # verify → optimise → disassemble → reassemble → verify again
        assert verify_program(program).ok
        optimised = optimize_program(program).program
        assert optimised == program  # generated kernels carry no dead code
        reassembled = Program(assemble(disassemble(list(program))))
        assert reassembled == program
        assert verify_program(reassembled).ok
