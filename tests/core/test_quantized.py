"""Tests for the int8 quantized-ring variants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SEMIRINGS, SemiringError, mmo
from repro.core.quantized import (
    INT32_BIG,
    INT8_MAX,
    INT8_MIN,
    int8_variant,
    quantize_saturating,
)


class TestQuantization:
    def test_round_and_saturate(self):
        values = np.array([1.4, 1.6, -200.0, 200.0, np.inf, -np.inf, np.nan])
        got = quantize_saturating(values)
        np.testing.assert_array_equal(
            got, np.array([1, 2, INT8_MIN, INT8_MAX, INT8_MAX, INT8_MIN, 0], np.int8)
        )

    def test_int8_range_preserved(self):
        exact = np.arange(INT8_MIN, INT8_MAX + 1, dtype=np.float64)
        np.testing.assert_array_equal(quantize_saturating(exact), exact.astype(np.int8))


class TestVariantConstruction:
    @pytest.mark.parametrize(
        "name", [n for n in sorted(SEMIRINGS) if n != "or-and"]
    )
    def test_every_numeric_ring_has_a_variant(self, name):
        variant = int8_variant(name)
        assert variant.name == f"{name}-int8"
        assert variant.input_dtype == np.dtype(np.int8)
        assert variant.output_dtype == np.dtype(np.int32)
        # The Semiring constructor itself validated the k-padding pair.

    def test_boolean_rejected(self):
        with pytest.raises(SemiringError, match="1-bit"):
            int8_variant("or-and")

    def test_identities_are_finite_stand_ins(self):
        assert int8_variant("min-plus").oplus_identity == INT32_BIG
        assert int8_variant("max-plus").oplus_identity == -INT32_BIG
        assert int8_variant("plus-mul").oplus_identity == 0


class TestInt8Arithmetic:
    def test_small_integer_gemm_is_exact(self):
        rng = np.random.default_rng(0)
        a = rng.integers(-5, 6, (12, 10)).astype(float)
        b = rng.integers(-5, 6, (10, 9)).astype(float)
        got = mmo(int8_variant("plus-mul"), a, b)
        assert got.dtype == np.int32
        np.testing.assert_array_equal(got, (a @ b).astype(np.int32))

    def test_int8_minplus_matches_fp16_on_integer_graphs(self):
        # With integer weights and BIG as "no edge", one relaxation agrees.
        rng = np.random.default_rng(1)
        adj = np.where(rng.random((10, 10)) < 0.4, rng.integers(1, 9, (10, 10)), np.inf).astype(float)
        np.fill_diagonal(adj, 0.0)
        int8_adj = np.where(np.isfinite(adj), adj, INT32_BIG)
        ring = int8_variant("min-plus")
        fp = mmo("min-plus", adj, adj, adj)
        i8 = mmo(ring, np.where(np.isfinite(adj), adj, INT8_MAX),
                 np.where(np.isfinite(adj), adj, INT8_MAX),
                 int8_adj)
        finite = np.isfinite(fp) & (fp < 100)
        # Where paths are short and integer-weighted, both agree.
        short = finite & (i8 < INT8_MAX)
        np.testing.assert_array_equal(i8[short].astype(np.float32), fp[short])

    def test_fractional_weights_break_int8(self):
        # The §3.2 claim, demonstrated: 0.5-granularity weights collapse.
        adj = np.array([[0.0, 0.5], [0.5, 0.0]])
        fp = mmo("min-plus", adj, adj, adj)
        i8 = mmo(int8_variant("min-plus"), adj, adj, adj)
        assert fp[0, 1] == 0.5
        assert i8[0, 1] != fp[0, 1]  # rounded away

    def test_saturation_bounds_products(self):
        # 127 × 127 stays well inside int32; BIG sentinels never overflow.
        a = np.full((4, 4), INT8_MAX, dtype=float)
        got = mmo(int8_variant("plus-mul"), a, a)
        assert got.max() == INT8_MAX * INT8_MAX * 4
