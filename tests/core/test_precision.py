"""Direct tests for the precision helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SEMIRINGS
from repro.core.precision import (
    HALF_MAX,
    quantize_input,
    quantize_output,
    representable_input,
)


class TestQuantizeInput:
    def test_fp16_rounds(self):
        ring = SEMIRINGS["min-plus"]
        got = quantize_input(np.array([1.0 / 3.0]), ring)
        assert got.dtype == np.float16
        assert got[0] == np.float16(1.0 / 3.0)

    def test_infinities_survive_fp16(self):
        ring = SEMIRINGS["min-plus"]
        got = quantize_input(np.array([np.inf, -np.inf]), ring)
        assert np.isposinf(got[0]) and np.isneginf(got[1])

    def test_fp16_overflow_to_inf(self):
        ring = SEMIRINGS["min-plus"]
        got = quantize_input(np.array([HALF_MAX * 4]), ring)
        assert np.isposinf(got[0])

    def test_boolean_ring(self):
        ring = SEMIRINGS["or-and"]
        got = quantize_input(np.array([0.0, 2.0, -1.0]), ring)
        np.testing.assert_array_equal(got, [False, True, True])

    def test_integer_ring_saturates(self):
        from repro.core import int8_variant

        ring = int8_variant("plus-mul")
        got = quantize_input(np.array([300.0, -300.0, 2.6, np.nan]), ring)
        np.testing.assert_array_equal(got, np.array([127, -128, 3, 0], np.int8))


class TestQuantizeOutput:
    def test_fp32(self):
        ring = SEMIRINGS["min-plus"]
        got = quantize_output(np.array([1.0], dtype=np.float64), ring)
        assert got.dtype == np.float32


class TestRepresentable:
    def test_grid_values_representable(self):
        ring = SEMIRINGS["min-plus"]
        assert representable_input(np.array([0.125, 3.0, np.inf]), ring)

    def test_non_grid_values_not_representable(self):
        ring = SEMIRINGS["min-plus"]
        assert not representable_input(np.array([1.0 / 3.0]), ring)


class TestSelectKSmallest:
    def test_sorted_with_index_tiebreak(self):
        from repro.apps import select_k_smallest

        distances = np.array([[3.0, 1.0, 1.0, 0.5]])
        indices, values = select_k_smallest(distances, 3)
        np.testing.assert_array_equal(indices, [[3, 1, 2]])
        np.testing.assert_array_equal(values, [[0.5, 1.0, 1.0]])


class TestMinimaxMatrix:
    def test_direct_call(self):
        from repro.apps import minimax_matrix

        weights = np.full((3, 3), np.inf)
        np.fill_diagonal(weights, 0.0)
        weights[0, 1] = weights[1, 0] = 5.0
        weights[1, 2] = weights[2, 1] = 2.0
        result = minimax_matrix(weights)
        assert result.matrix[0, 2] == 5.0  # bottleneck of the only path
        assert result.converged


class TestScaledArea:
    def test_direct_call(self):
        from repro.hwmodel import scaled_area

        assert scaled_area("mul_fused", 16) == pytest.approx(64 * 0.0125)
        assert scaled_area("fabric", 16) == pytest.approx(0.072)
