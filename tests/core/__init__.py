"""Test package."""
