"""Quantifying the fp16 datapath's accuracy — the paper's §3.2 rationale.

The paper fixes fp16 inputs / fp32 accumulation and notes that for many
algorithms a *fixed-precision* (integer) format "cannot converge to the
same result as baseline fp32 implementations".  These tests quantify the
behaviour of this reproduction's datapath:

- which rings are exact on which input families,
- how much the mul rings drift per closure iteration,
- why an int8-quantised datapath would be worse (the paper's argument for
  not shipping int8).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SEMIRINGS, mmo
from repro.datasets import GraphSpec, distance_graph, reliability_graph
from repro.runtime import closure


def _fp64_closure(oplus, otimes, adjacency, iterations):
    """Reference closure in float64 (no fp16 quantisation anywhere)."""
    current = np.asarray(adjacency, dtype=np.float64)
    for _ in range(iterations):
        with np.errstate(invalid="ignore"):
            products = otimes(current[:, :, None], current[None, :, :])
        reduced = oplus.reduce(products, axis=1)
        current = oplus(current, reduced)
    return current


class TestExactRings:
    """min/max/plus rings on grid-valued inputs are drift-free."""

    def test_min_plus_closure_is_exact(self):
        adj = distance_graph(GraphSpec(24, 0.2, seed=1))
        simd2 = closure("min-plus", adj).matrix
        reference = _fp64_closure(np.minimum, np.add, adj, 6)
        np.testing.assert_array_equal(simd2, reference.astype(np.float32))

    def test_capacity_rings_are_exact(self):
        # min/max never create new values, so fp16-exact inputs stay exact.
        rng = np.random.default_rng(2)
        a = rng.integers(1, 9, (12, 12)).astype(float)
        for ring_name in ("min-max", "max-min"):
            got = mmo(ring_name, a, a)
            assert set(np.unique(got)) <= set(np.unique(a.astype(np.float32)))

    def test_plus_rings_exact_within_fp16_sum_budget(self):
        # Sums of 1/8-grid values stay exact while |sum| < 2^11 / 8.
        rng = np.random.default_rng(3)
        a = rng.integers(0, 17, (10, 10)) / 8.0
        got = mmo("min-plus", a, a)
        reference = np.min(
            a[:, :, None].astype(np.float64) + a[None, :, :], axis=1
        )
        np.testing.assert_array_equal(got, reference.astype(np.float32))


class TestMulRingDrift:
    def test_single_mmo_drift_is_fp16_bounded(self):
        adj = reliability_graph(GraphSpec(30, 0.2, seed=4), maximize=True)
        simd2 = mmo("max-mul", adj, adj, adj)
        with np.errstate(invalid="ignore"):
            products = adj[:, :, None] * adj[None, :, :]
        reference = np.maximum(adj, products.max(axis=1))
        rel = np.abs(simd2 - reference) / np.maximum(np.abs(reference), 1e-12)
        # One fp16 rounding per operand: relative error ≤ ~2·2^-11.
        assert rel.max() <= 2 * 2.0**-11 + 1e-7

    def test_closure_drift_grows_with_iterations(self):
        adj = reliability_graph(GraphSpec(30, 0.12, seed=5), maximize=True)
        drifts = []
        for iterations in (1, 2, 3):
            simd2 = closure(
                "max-mul", adj, convergence_check=False, max_iterations=iterations
            ).matrix
            reference = _fp64_closure(np.maximum, np.multiply, adj, iterations)
            rel = np.abs(simd2 - reference) / np.maximum(np.abs(reference), 1e-12)
            drifts.append(rel.max())
        assert drifts[0] <= drifts[-1] + 1e-9
        assert drifts[-1] < 0.01  # still well inside validation tolerance

    def test_power_of_two_weights_do_not_drift(self):
        rng = np.random.default_rng(6)
        n = 20
        mask = rng.random((n, n)) < 0.2
        np.fill_diagonal(mask, False)
        adj = np.where(mask, rng.choice([0.5, 0.25, 0.125], (n, n)), 0.0)
        np.fill_diagonal(adj, 1.0)
        simd2 = closure("max-mul", adj, convergence_check=False, max_iterations=3).matrix
        reference = _fp64_closure(np.maximum, np.multiply, adj, 3)
        np.testing.assert_array_equal(simd2, reference.astype(np.float32))


class TestWhyNotInt8:
    """The paper's argument: int8 cannot even represent the workloads."""

    def test_int8_quantisation_breaks_shortest_paths(self):
        adj = distance_graph(GraphSpec(24, 0.25, seed=7))
        # Simulate an int8 datapath: round weights to integers, saturate
        # at 127, and use 127 as the "infinity" stand-in.
        int8 = np.where(np.isfinite(adj), np.clip(np.round(adj), -128, 127), 127.0)
        exact = closure("min-plus", adj).matrix
        quantised = closure("min-plus", int8).matrix
        finite = np.isfinite(exact)
        mismatches = np.sum(exact[finite] != quantised[finite])
        assert mismatches > 0  # the fractional weights are unrepresentable

    def test_fp16_input_path_preserves_these_workloads(self):
        adj = distance_graph(GraphSpec(24, 0.25, seed=7))
        exact = closure("min-plus", adj).matrix
        # fp16 quantisation of the same inputs is lossless by construction.
        np.testing.assert_array_equal(
            closure("min-plus", adj.astype(np.float16).astype(np.float64)).matrix,
            exact,
        )
