"""Tests for tiling helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.tiles import (
    TILE,
    TilingError,
    ceil_div,
    crop,
    iter_tile_indices,
    pad_to_tiles,
    padded_extent,
    tile_counts,
    tile_view,
)


class TestCeilDiv:
    @pytest.mark.parametrize(
        "a,b,expected", [(0, 16, 0), (1, 16, 1), (16, 16, 1), (17, 16, 2), (32, 16, 2)]
    )
    def test_values(self, a, b, expected):
        assert ceil_div(a, b) == expected

    def test_zero_divisor_rejected(self):
        with pytest.raises(TilingError):
            ceil_div(5, 0)


class TestPadding:
    def test_padded_extent(self):
        assert padded_extent(0) == 0
        assert padded_extent(1) == TILE
        assert padded_extent(TILE) == TILE
        assert padded_extent(TILE + 1) == 2 * TILE

    def test_negative_extent_rejected(self):
        with pytest.raises(TilingError):
            padded_extent(-1)

    def test_pad_fills_identity(self):
        m = np.ones((3, 5))
        padded = pad_to_tiles(m, np.inf)
        assert padded.shape == (TILE, TILE)
        np.testing.assert_array_equal(padded[:3, :5], m)
        assert np.all(np.isinf(padded[3:, :]))
        assert np.all(np.isinf(padded[:, 5:]))

    def test_pad_aligned_matrix_is_copy(self):
        m = np.zeros((TILE, TILE))
        padded = pad_to_tiles(m, 0.0)
        assert padded is not m
        padded[0, 0] = 5
        assert m[0, 0] == 0

    def test_pad_rejects_non_2d(self):
        with pytest.raises(TilingError):
            pad_to_tiles(np.zeros(4), 0.0)

    def test_crop_round_trip(self):
        m = np.arange(12.0).reshape(3, 4)
        assert np.array_equal(crop(pad_to_tiles(m, 0.0), 3, 4), m)

    def test_crop_larger_than_matrix_rejected(self):
        with pytest.raises(TilingError):
            crop(np.zeros((4, 4)), 5, 4)


class TestTileViews:
    def test_view_is_writable_window(self):
        m = np.zeros((2 * TILE, 2 * TILE))
        tile_view(m, 1, 0)[:] = 7.0
        assert np.all(m[TILE:, :TILE] == 7.0)
        assert np.all(m[:TILE, :] == 0.0)

    def test_unaligned_matrix_rejected(self):
        with pytest.raises(TilingError, match="not tile-aligned"):
            tile_view(np.zeros((TILE + 1, TILE)), 0, 0)

    def test_out_of_range_tile_rejected(self):
        with pytest.raises(TilingError, match="out of range"):
            tile_view(np.zeros((TILE, TILE)), 1, 0)

    def test_iter_tile_indices_cover(self):
        indices = list(iter_tile_indices(TILE + 1, 2 * TILE))
        assert indices == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_tile_counts(self):
        assert tile_counts(16, 16, 16) == (1, 1, 1)
        assert tile_counts(17, 33, 1) == (2, 3, 1)
