"""Tests for the GraphBLAS-flavoured SemiringMatrix wrapper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SemiringError, SemiringMatrix, mmo


INF = np.inf


@pytest.fixture
def roads() -> SemiringMatrix:
    return SemiringMatrix(
        [[0.0, 3.0, INF], [3.0, 0.0, 1.0], [INF, 1.0, 0.0]], "min-plus"
    )


class TestConstruction:
    def test_basic(self, roads):
        assert roads.shape == (3, 3)
        assert roads.ring.name == "min-plus"
        assert roads.dtype == np.float32

    def test_non_2d_rejected(self):
        with pytest.raises(SemiringError, match="2-D"):
            SemiringMatrix([1.0, 2.0], "min-plus")

    def test_identity_constructor(self):
        ident = SemiringMatrix.identity(3, "min-plus", diagonal=0.0)
        expected = np.full((3, 3), INF, dtype=np.float32)
        np.fill_diagonal(expected, 0.0)
        np.testing.assert_array_equal(ident.to_array(), expected)

    def test_full_constructor(self):
        empty = SemiringMatrix.full((2, 4), "max-plus")
        assert np.all(np.isneginf(empty.to_array()))

    def test_to_array_is_copy(self, roads):
        array = roads.to_array()
        array[0, 0] = 99.0
        assert roads[0, 0] == 0.0


class TestAlgebra:
    def test_matmul_is_ring_product(self, roads):
        product = roads @ roads
        expected = mmo("min-plus", roads.to_array(), roads.to_array())
        np.testing.assert_array_equal(product.to_array(), expected)
        assert product[0, 2] == 4.0  # 0→1→2

    def test_matmul_coerces_plain_arrays(self, roads):
        product = roads @ roads.to_array()
        assert isinstance(product, SemiringMatrix)
        assert product.ring.name == "min-plus"

    def test_mixed_rings_rejected(self, roads):
        other = SemiringMatrix(np.zeros((3, 3)), "max-plus")
        with pytest.raises(SemiringError, match="different rings"):
            roads @ other

    def test_mxm_with_accumulator(self, roads):
        result = roads.mxm(roads, accumulator=roads)
        expected = mmo("min-plus", roads.to_array(), roads.to_array(), roads.to_array())
        np.testing.assert_array_equal(result.to_array(), expected)

    def test_elementwise_add_is_oplus(self, roads):
        doubled = roads + roads
        np.testing.assert_array_equal(doubled.to_array(), roads.to_array())

    def test_add_shape_mismatch(self, roads):
        with pytest.raises(SemiringError, match="shape mismatch"):
            roads + SemiringMatrix(np.zeros((2, 2)), "min-plus")

    def test_transpose(self, roads):
        np.testing.assert_array_equal(roads.T.to_array(), roads.to_array().T)

    def test_equality(self, roads):
        assert roads == SemiringMatrix(roads.to_array(), "min-plus")
        assert roads != SemiringMatrix(roads.to_array(), "max-plus")
        assert roads != "not a matrix"


class TestClosure:
    def test_closure_method(self, roads):
        closed, result = roads.closure()
        assert isinstance(closed, SemiringMatrix)
        assert result.converged
        assert closed[0, 2] == 4.0

    def test_boolean_ring(self):
        adj = SemiringMatrix(np.eye(3, dtype=bool) | np.eye(3, k=1, dtype=bool), "or-and")
        closed, _ = adj.closure()
        np.testing.assert_array_equal(closed.to_array(), np.triu(np.ones((3, 3), bool)))

    def test_indexing_submatrix(self, roads):
        sub = roads[:2, :2]
        assert isinstance(sub, SemiringMatrix)
        assert sub.shape == (2, 2)
        assert sub.ring.name == "min-plus"
