"""Unit tests for the Semiring abstraction and the nine registry entries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SEMIRINGS, Semiring, SemiringError, get_semiring, semiring_names
from repro.core.registry import (
    MAX_MIN,
    MAX_MUL,
    MAX_PLUS,
    MIN_MAX,
    MIN_MUL,
    MIN_PLUS,
    OR_AND,
    PLUS_MUL,
    PLUS_NORM,
)


class TestRegistry:
    def test_nine_rings_exactly(self):
        assert len(SEMIRINGS) == 9
        assert set(semiring_names()) == {
            "plus-mul",
            "min-plus",
            "max-plus",
            "min-mul",
            "max-mul",
            "min-max",
            "max-min",
            "or-and",
            "plus-norm",
        }

    @pytest.mark.parametrize(
        "alias,canonical",
        [
            ("mma", "plus-mul"),
            ("gemm", "plus-mul"),
            ("minplus", "min-plus"),
            ("MIN_PLUS", "min-plus"),
            ("Max-Plus", "max-plus"),
            ("orand", "or-and"),
            ("addnorm", "plus-norm"),
            ("add-norm", "plus-norm"),
            ("min-max", "min-max"),
        ],
    )
    def test_aliases_resolve(self, alias, canonical):
        assert get_semiring(alias).name == canonical

    def test_passthrough_of_semiring_instance(self):
        assert get_semiring(MIN_PLUS) is MIN_PLUS

    def test_unknown_name_raises(self):
        with pytest.raises(SemiringError, match="unknown semiring"):
            get_semiring("times-div")

    def test_empty_name_rejected(self):
        with pytest.raises(SemiringError):
            Semiring(name="", oplus=np.add, otimes=np.multiply, oplus_identity=0.0)


class TestIdentities:
    def test_identity_values(self):
        assert PLUS_MUL.oplus_identity == 0.0
        assert MIN_PLUS.oplus_identity == np.inf
        assert MAX_PLUS.oplus_identity == -np.inf
        assert MIN_MUL.oplus_identity == np.inf
        assert MAX_MUL.oplus_identity == -np.inf
        assert MIN_MAX.oplus_identity == np.inf
        assert MAX_MIN.oplus_identity == -np.inf
        assert OR_AND.oplus_identity is False
        assert PLUS_NORM.oplus_identity == 0.0

    def test_identity_is_neutral_for_oplus(self, ring):
        values = np.array([3.0, -2.0, 0.5]) if not ring.is_boolean() else np.array([True, False, True])
        ident = ring.full(values.shape)
        combined = ring.oplus(values.astype(ring.output_dtype), ident)
        np.testing.assert_array_equal(
            np.asarray(combined, dtype=ring.output_dtype),
            values.astype(ring.output_dtype),
        )

    def test_full_uses_output_dtype(self, ring):
        filled = ring.full((2, 3))
        assert filled.dtype == ring.output_dtype
        assert filled.shape == (2, 3)


class TestReduce:
    def test_reduce_matches_manual_fold(self, ring):
        rng = np.random.default_rng(7)
        if ring.is_boolean():
            values = rng.random((4, 5)) < 0.5
        else:
            values = rng.integers(-4, 5, size=(4, 5)).astype(np.float64)
        got = ring.reduce(values, axis=0)
        expected = np.asarray(values[0], dtype=ring.output_dtype)
        for i in range(1, values.shape[0]):
            expected = np.asarray(
                ring.oplus(expected, np.asarray(values[i], dtype=ring.output_dtype)),
                dtype=ring.output_dtype,
            )
        np.testing.assert_array_equal(got, expected)

    def test_reduce_empty_axis_yields_identity(self, ring):
        values = np.zeros((0, 3), dtype=ring.output_dtype)
        got = ring.reduce(values, axis=0)
        np.testing.assert_array_equal(got, ring.full((3,)))

    def test_reduce_axis_one(self):
        values = np.array([[1.0, 5.0, 2.0], [4.0, 0.0, 3.0]])
        np.testing.assert_array_equal(
            MIN_PLUS.reduce(values, axis=1), np.array([1.0, 0.0], dtype=np.float32)
        )


class TestPairwise:
    def test_plus_norm_is_squared_difference(self):
        a = np.array([3.0, 1.0])
        b = np.array([1.0, 4.0])
        np.testing.assert_array_equal(
            PLUS_NORM.pairwise(a, b), np.array([4.0, 9.0], dtype=np.float32)
        )

    def test_or_and_truth_table(self):
        a = np.array([True, True, False, False])
        b = np.array([True, False, True, False])
        np.testing.assert_array_equal(
            OR_AND.pairwise(a, b), np.array([True, False, False, False])
        )

    def test_pairwise_quantises_through_fp16(self):
        # 1/3 is not representable in fp16; pairwise must round it first.
        a = np.array([1.0 / 3.0])
        got = PLUS_MUL.pairwise(a, np.array([3.0]))
        expected = np.float32(np.float16(1.0 / 3.0)) * np.float32(3.0)
        np.testing.assert_array_equal(got, np.array([expected], dtype=np.float32))

    def test_min_max_family(self):
        a = np.array([2.0, -1.0])
        b = np.array([1.0, 5.0])
        np.testing.assert_array_equal(MIN_MAX.pairwise(a, b), np.array([2.0, 5.0], dtype=np.float32))
        np.testing.assert_array_equal(MAX_MIN.pairwise(a, b), np.array([1.0, -1.0], dtype=np.float32))


class TestDtypes:
    def test_numeric_rings_are_fp16_in_fp32_out(self, ring):
        if ring.is_boolean():
            assert ring.input_dtype == np.dtype(bool)
            assert ring.output_dtype == np.dtype(bool)
        else:
            assert ring.input_dtype == np.dtype(np.float16)
            assert ring.output_dtype == np.dtype(np.float32)

    def test_plus_norm_flagged_nonassociative(self):
        assert not PLUS_NORM.associative_otimes
        assert all(
            SEMIRINGS[name].associative_otimes
            for name in semiring_names()
            if name != "plus-norm"
        )
