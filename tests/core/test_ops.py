"""Tests for the whole-matrix mmo oracle and its fast paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SemiringError, get_semiring, mmo
from repro.core.ops import gemm, mmo_reference, squared_l2_distance
from tests.conftest import make_ring_inputs


class TestMmoAgainstScalarReference:
    @pytest.mark.parametrize("shape", [(3, 4, 5), (1, 1, 1), (7, 2, 6)])
    def test_matches_triple_loop(self, ring, shape, rng):
        m, k, n = shape
        a, b, c = make_ring_inputs(ring, m, k, n, rng)
        np.testing.assert_array_equal(mmo(ring, a, b, c), mmo_reference(ring, a, b, c))

    def test_matches_triple_loop_without_c(self, ring, rng):
        a, b, _ = make_ring_inputs(ring, 4, 3, 5, rng, with_c=False)
        np.testing.assert_array_equal(mmo(ring, a, b), mmo_reference(ring, a, b))


class TestMmoSemantics:
    def test_plus_mul_is_gemm(self, rng):
        a = rng.integers(-5, 6, (6, 4)).astype(np.float64)
        b = rng.integers(-5, 6, (4, 7)).astype(np.float64)
        c = rng.integers(-5, 6, (6, 7)).astype(np.float64)
        np.testing.assert_allclose(
            mmo("plus-mul", a, b, c), (a @ b + c).astype(np.float32)
        )

    def test_min_plus_is_shortest_path_relaxation(self):
        # Two-node graph: going through the intermediate beats the direct edge.
        direct = np.array([[10.0]])
        a = np.array([[3.0, np.inf]])
        b = np.array([[4.0], [np.inf]])
        result = mmo("min-plus", a, b, direct)
        np.testing.assert_array_equal(result, np.array([[7.0]], dtype=np.float32))

    def test_min_plus_keeps_c_when_products_worse(self):
        direct = np.array([[2.0]])
        a = np.array([[3.0]])
        b = np.array([[4.0]])
        np.testing.assert_array_equal(
            mmo("min-plus", a, b, direct), np.array([[2.0]], dtype=np.float32)
        )

    def test_or_and_is_boolean_matmul(self, rng):
        a = rng.random((5, 6)) < 0.3
        b = rng.random((6, 4)) < 0.3
        expected = (a.astype(int) @ b.astype(int)) > 0
        np.testing.assert_array_equal(mmo("or-and", a, b), expected)

    def test_plus_norm_diagonal_is_zero(self, rng):
        points = rng.integers(-4, 5, (5, 3)).astype(np.float64)
        dist = mmo("plus-norm", points, points.T)
        np.testing.assert_array_equal(np.diag(dist), np.zeros(5, dtype=np.float32))

    def test_max_min_capacity(self):
        # Capacity of a two-hop path is the min of its edges; best path wins.
        a = np.array([[5.0, 2.0]])
        b = np.array([[3.0], [9.0]])
        result = mmo("max-min", a, b)
        np.testing.assert_array_equal(result, np.array([[3.0]], dtype=np.float32))

    def test_infinity_padding_is_absorbed(self):
        # Padding A/B with the ⊕ identity of min-plus (inf) adds no new paths.
        a = np.array([[1.0, np.inf], [np.inf, np.inf]])
        b = np.array([[2.0, np.inf], [np.inf, np.inf]])
        result = mmo("min-plus", a, b)
        assert result[0, 0] == 3.0
        assert np.all(np.isinf(result[0, 1:]))
        assert np.all(np.isinf(result[1, :]))


class TestValidation:
    def test_inner_dim_mismatch(self):
        with pytest.raises(SemiringError, match="inner dimensions differ"):
            mmo("plus-mul", np.zeros((2, 3)), np.zeros((4, 5)))

    def test_bad_c_shape(self):
        with pytest.raises(SemiringError, match="accumulator C"):
            mmo("plus-mul", np.zeros((2, 3)), np.zeros((3, 4)), np.zeros((2, 5)))

    def test_non_2d_rejected(self):
        with pytest.raises(SemiringError, match="must be 2-D"):
            mmo("plus-mul", np.zeros(3), np.zeros((3, 4)))

    def test_empty_k_yields_identity_combined_with_c(self):
        a = np.zeros((2, 0))
        b = np.zeros((0, 3))
        c = np.ones((2, 3))
        np.testing.assert_array_equal(
            mmo("min-plus", a, b, c), np.ones((2, 3), dtype=np.float32)
        )


class TestFastPaths:
    def test_gemm_matches_mmo(self, rng):
        a = rng.integers(-5, 6, (8, 9)).astype(np.float64)
        b = rng.integers(-5, 6, (9, 7)).astype(np.float64)
        c = rng.integers(-5, 6, (8, 7)).astype(np.float64)
        np.testing.assert_allclose(gemm(a, b, c), mmo("plus-mul", a, b, c), rtol=1e-6)

    def test_squared_l2_matches_mmo(self, rng):
        a = rng.integers(-4, 5, (6, 5)).astype(np.float64)
        b = rng.integers(-4, 5, (5, 6)).astype(np.float64)
        np.testing.assert_allclose(
            squared_l2_distance(a, b), mmo("plus-norm", a, b), rtol=1e-5, atol=1e-4
        )

    def test_squared_l2_never_negative(self, rng):
        a = rng.normal(size=(10, 8))
        np.testing.assert_array_less(-1e-9, squared_l2_distance(a, a.T) + 1e-12)


class TestBlockedPathConsistency:
    def test_row_blocking_has_no_seams(self, rng):
        # More rows than the internal row block: results must be identical
        # to the scalar reference at every row, including block boundaries.
        a = rng.integers(-3, 4, (130, 5)).astype(np.float64)
        b = rng.integers(-3, 4, (5, 4)).astype(np.float64)
        got = mmo("min-plus", a, b)
        ref = mmo_reference("min-plus", a[60:70], b)
        np.testing.assert_array_equal(got[60:70], ref)
