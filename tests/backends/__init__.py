"""Test package."""
