"""Backend registry semantics and the unified validation error path."""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np
import pytest

from repro.backends import (
    BackendError,
    get_backend,
    list_backends,
    register_backend,
)
from repro.backends.base import _REGISTRY
from repro.backends.sparse import identity_absorbs
from repro.core import SEMIRINGS
from repro.hw.device import Simd2Device
from repro.runtime import (
    HostRuntime,
    RuntimeError_,
    batched_mmo,
    closure,
    mmo_tiled,
    mmo_tiled_multi_device,
    mmo_tiled_split_k,
    resolve_context,
    use_context,
)


class TestRegistry:
    def test_builtins_registered(self):
        assert {"vectorized", "emulate", "sparse"} <= set(list_backends())

    def test_list_is_sorted(self):
        names = list_backends()
        assert list(names) == sorted(names)

    def test_get_backend_returns_named_impl(self):
        for name in list_backends():
            assert get_backend(name).name == name

    def test_unknown_backend_error_lists_registered(self):
        with pytest.raises(BackendError) as excinfo:
            get_backend("cuda")
        message = str(excinfo.value)
        assert "unknown backend 'cuda'" in message
        for name in list_backends():
            assert name in message

    def test_backend_error_is_runtime_error(self):
        # Pre-existing callers catch RuntimeError_ with match="unknown backend".
        assert issubclass(BackendError, RuntimeError_)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(BackendError, match="already registered"):
            register_backend(get_backend("vectorized"))

    def test_register_and_dispatch_custom_backend(self):
        class DoublingBackend:
            name = "test-doubling"

            def run_mmo(self, opcode, a, b, c, *, context):
                d, stats = get_backend("vectorized").run_mmo(
                    opcode, a, b, c, context=context
                )
                return d * 2, stats

        register_backend(DoublingBackend())
        try:
            assert "test-doubling" in list_backends()
            a = np.ones((3, 4))
            b = np.ones((4, 2))
            expected, _ = mmo_tiled("plus-mul", a, b)
            doubled, _ = mmo_tiled("plus-mul", a, b, backend="test-doubling")
            np.testing.assert_array_equal(doubled, expected * 2)
        finally:
            _REGISTRY.pop("test-doubling", None)

    def test_replace_requires_flag(self):
        class Dummy:
            name = "test-dummy"

            def run_mmo(self, opcode, a, b, c, *, context):  # pragma: no cover
                raise NotImplementedError

        register_backend(Dummy())
        try:
            with pytest.raises(BackendError, match="already registered"):
                register_backend(Dummy())
            register_backend(Dummy(), replace=True)
        finally:
            _REGISTRY.pop("test-dummy", None)

    def test_nameless_backend_rejected(self):
        class Nameless:
            def run_mmo(self, opcode, a, b, c, *, context):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(BackendError, match="name"):
            register_backend(Nameless())


class TestEntryPointValidation:
    """Every runtime entry point rejects unknown backends up front.

    Before the registry, only ``mmo_tiled`` validated; ``closure``,
    ``batched_mmo`` and ``mmo_tiled_multi_device`` passed bad names down
    to fail deep in the stack (or iterate first).
    """

    def _operands(self):
        a = np.ones((4, 4))
        return a, a.copy()

    def test_mmo_tiled(self):
        a, b = self._operands()
        with pytest.raises(RuntimeError_, match="unknown backend"):
            mmo_tiled("plus-mul", a, b, backend="cuda")

    def test_mmo_tiled_empty_output_still_validates(self):
        with pytest.raises(RuntimeError_, match="unknown backend"):
            mmo_tiled("plus-mul", np.ones((0, 3)), np.ones((3, 2)), backend="cuda")

    def test_mmo_tiled_split_k(self):
        a, b = self._operands()
        with pytest.raises(RuntimeError_, match="unknown backend"):
            mmo_tiled_split_k("plus-mul", a, b, backend="cuda")

    def test_closure(self):
        with pytest.raises(RuntimeError_, match="unknown backend"):
            closure("min-plus", np.zeros((4, 4)), backend="cuda")

    def test_batched_mmo(self):
        a, b = self._operands()
        with pytest.raises(RuntimeError_, match="unknown backend"):
            batched_mmo("plus-mul", a[None], b[None], backend="cuda")

    def test_multi_device(self):
        a, b = self._operands()
        with pytest.raises(RuntimeError_, match="unknown backend"):
            mmo_tiled_multi_device(
                "plus-mul", a, b, devices=[Simd2Device()], backend="cuda"
            )

    def test_host_runtime_constructor(self):
        with pytest.raises(RuntimeError_, match="unknown backend"):
            HostRuntime(backend="cuda")

    def test_use_context_validates_eagerly(self):
        with pytest.raises(RuntimeError_, match="unknown backend"):
            with use_context(backend="cuda"):
                pass  # pragma: no cover - must raise at the with statement

    def test_resolve_context(self):
        with pytest.raises(RuntimeError_, match="unknown backend"):
            resolve_context(backend="cuda")


class TestDeviceIdiomDeduplicated:
    def test_no_call_site_constructs_the_emulate_device_branch(self):
        """The ``device=device if backend == "emulate" else None`` idiom was
        copied across host.py and multidevice.py; the context carries the
        device unconditionally now, so the branch must not reappear.
        """
        src_root = Path(__file__).resolve().parents[2] / "src"
        pattern = re.compile(
            r"if\s+[\w.]*backend\s*==\s*[\"']emulate[\"']\s+else\s+None"
        )
        offenders = [
            str(path.relative_to(src_root))
            for path in sorted(src_root.rglob("*.py"))
            if pattern.search(path.read_text(encoding="utf-8"))
        ]
        assert offenders == []


class TestSparseBackendClassification:
    def test_absorbing_rings(self):
        expected_non_absorbing = {"plus-norm", "min-mul", "max-mul"}
        non_absorbing = {
            name for name, ring in SEMIRINGS.items() if not identity_absorbs(ring)
        }
        assert non_absorbing == expected_non_absorbing

    def test_sparse_backend_reports_spgemm_stats(self):
        a = np.ones((5, 6))
        b = np.ones((6, 7))
        _, stats = mmo_tiled("plus-mul", a, b, backend="sparse")
        assert stats.spgemm is not None
        assert stats.spgemm.products == 5 * 6 * 7

    def test_dense_backends_report_no_spgemm_stats(self):
        a = np.ones((5, 6))
        b = np.ones((6, 7))
        for backend in ("vectorized", "emulate"):
            _, stats = mmo_tiled("plus-mul", a, b, backend=backend)
            assert stats.spgemm is None
