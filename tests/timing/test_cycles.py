"""Tests for the cycle-accounting bridge between emulator and timing model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw import Simd2Device
from repro.runtime import mmo_tiled
from repro.timing.cycles import (
    CycleBreakdown,
    CycleCosts,
    kernel_cycle_estimate,
    stats_to_cycles,
)
from repro.timing import RTX3080


def _run_emulated(ring="min-plus", m=33, k=20, n=18):
    rng = np.random.default_rng(1)
    a = rng.integers(0, 5, (m, k)).astype(float)
    b = rng.integers(0, 5, (k, n)).astype(float)
    c = rng.integers(0, 5, (m, n)).astype(float)
    device = Simd2Device(sm_count=2)
    _, stats = mmo_tiled(ring, a, b, c, backend="emulate", device=device)
    return stats


class TestDynamicStaticAgreement:
    def test_cycle_estimates_match(self):
        stats = _run_emulated()
        dynamic = stats_to_cycles(stats.execution)
        static = kernel_cycle_estimate(stats)
        assert dynamic.compute == static.compute
        assert dynamic.memory == pytest.approx(static.memory)
        assert dynamic.issue == static.issue
        assert dynamic.fills == static.fills == 0.0

    def test_boolean_kernel(self):
        stats = _run_emulated(ring="or-and")
        dynamic = stats_to_cycles(stats.execution)
        static = kernel_cycle_estimate(stats, boolean=True)
        assert dynamic.total == pytest.approx(static.total)


class TestBreakdown:
    def test_compute_dominates_for_deep_k(self):
        stats = _run_emulated(m=16, k=160, n=16)
        breakdown = stats_to_cycles(stats.execution)
        assert breakdown.compute > breakdown.memory

    def test_total_is_sum(self):
        breakdown = CycleBreakdown(compute=10, memory=5, fills=2, issue=3)
        assert breakdown.total == 20

    def test_seconds_uses_clock(self):
        breakdown = CycleBreakdown(compute=RTX3080.clock_ghz * 1e9, memory=0, fills=0, issue=0)
        assert breakdown.seconds(RTX3080) == pytest.approx(1.0)

    def test_custom_costs_scale(self):
        stats = _run_emulated()
        cheap = stats_to_cycles(stats.execution, CycleCosts(cycles_per_unit_op=1.0))
        pricey = stats_to_cycles(stats.execution, CycleCosts(cycles_per_unit_op=2.0))
        assert pricey.compute == 2 * cheap.compute

    def test_unit_op_rate_matches_spec_provisioning(self):
        # One unit pass = 64 pairs/cycle: the CycleCosts default must agree
        # with the GpuSpec's unit_pairs_per_cycle so both layers price
        # compute identically.
        assert RTX3080.unit_pairs_per_cycle == 64
        stats = _run_emulated()
        pairs = stats.unit_ops * 64
        breakdown = stats_to_cycles(stats.execution)
        assert breakdown.compute == stats.unit_ops  # 1 cycle per pass
        assert pairs / RTX3080.unit_pairs_per_cycle == breakdown.compute
