"""Tests for the microbenchmark cost model (Figures 9 and 10 shapes)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.isa import MmoOpcode
from repro.timing import (
    CUDA_OP_COSTS,
    RTX3080,
    GpuSpec,
    cuda_mmo_time,
    elementwise_pass_time,
    mmo_kernel_times,
    simd2_mmo_time,
    simd2_utilization,
)


def _gmean(values) -> float:
    return float(np.exp(np.mean(np.log(list(values)))))


class TestSpec:
    def test_rtx3080_rates(self):
        assert RTX3080.cuda_instr_rate == pytest.approx(68 * 128 * 1.71e9)
        assert RTX3080.simd2_pair_rate == pytest.approx(68 * 4 * 64 * 1.71e9)
        assert RTX3080.simd2_pair_rate / RTX3080.cuda_instr_rate == pytest.approx(2.0)

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError, match="must be positive"):
            GpuSpec("bad", 0, 1.0, 128, 4, 64, 760.0)


class TestOpCosts:
    def test_every_opcode_costed(self):
        assert set(CUDA_OP_COSTS) == set(MmoOpcode)

    def test_fma_fused_ops_cost_one_instruction(self):
        assert CUDA_OP_COSTS[MmoOpcode.MMA].instructions_per_pair == 1
        assert CUDA_OP_COSTS[MmoOpcode.ADDNORM].instructions_per_pair == 1

    def test_hazard_ops_are_least_efficient(self):
        hazard = {MmoOpcode.MINMAX, MmoOpcode.MAXMIN, MmoOpcode.ORAND}
        worst = min(CUDA_OP_COSTS, key=lambda op: CUDA_OP_COSTS[op].efficiency)
        assert worst in hazard
        for op in hazard:
            assert CUDA_OP_COSTS[op].efficiency < CUDA_OP_COSTS[MmoOpcode.MINPLUS].efficiency


class TestFigure9Shape:
    """The paper's microbenchmark claims, asserted as model invariants."""

    def test_gmean_band(self):
        # Paper: gmean 8.7×–10.6× depending on input size.
        for n, low, high in [(1024, 7.5, 9.5), (4096, 9.0, 11.0), (16384, 9.5, 11.0)]:
            speedups = [mmo_kernel_times(op, n, n, n).speedup for op in MmoOpcode]
            assert low < _gmean(speedups) < high

    def test_peak_speedup_matches_paper(self):
        # Paper: up to 15.8× for min-max / max-min / or-and.
        peaks = [
            mmo_kernel_times(op, 8192, 8192, 8192).speedup
            for op in (MmoOpcode.MINMAX, MmoOpcode.MAXMIN, MmoOpcode.ORAND)
        ]
        assert all(15.0 < p < 17.0 for p in peaks)

    def test_fma_ops_lowest_speedup(self):
        # Paper: plus-mul and plus-norm ~3.1× (FMA helps the baseline).
        for op in (MmoOpcode.MMA, MmoOpcode.ADDNORM):
            speedup = mmo_kernel_times(op, 4096, 4096, 4096).speedup
            assert 2.8 < speedup < 3.5

    def test_speedup_saturates_past_4096(self):
        # Paper: performance gain saturates at about 10× beyond 4096².
        s4096 = _gmean(mmo_kernel_times(op, 4096, 4096, 4096).speedup for op in MmoOpcode)
        s16384 = _gmean(
            mmo_kernel_times(op, 16384, 16384, 16384).speedup for op in MmoOpcode
        )
        assert s16384 - s4096 < 0.5

    def test_speedup_monotone_in_size(self):
        sizes = [512, 1024, 2048, 4096, 8192]
        speedups = [mmo_kernel_times(MmoOpcode.MINPLUS, n, n, n).speedup for n in sizes]
        assert speedups == sorted(speedups)


class TestUtilization:
    def test_utilization_bounds(self):
        assert 0 < simd2_utilization(16, 16, 16) < simd2_utilization(8192, 8192, 8192) < 1

    def test_thin_inner_dimension_hurts(self):
        assert simd2_utilization(4096, 4096, 64) < simd2_utilization(4096, 4096, 4096)

    def test_sparse_unit_doubles_compute_rate(self):
        dense = simd2_mmo_time(MmoOpcode.MINPLUS, 4096, 4096, 4096)
        sparse = simd2_mmo_time(MmoOpcode.MINPLUS, 4096, 4096, 4096, sparse_unit=True)
        ratio = (dense - RTX3080.kernel_launch_overhead_s) / (
            sparse - RTX3080.kernel_launch_overhead_s
        )
        assert ratio == pytest.approx(2.0, rel=0.01)


class TestTimeComposition:
    def test_launch_overhead_floors_small_kernels(self):
        time = cuda_mmo_time(MmoOpcode.MMA, 2, 2, 2)
        assert time >= RTX3080.kernel_launch_overhead_s

    def test_times_scale_cubically(self):
        t1 = simd2_mmo_time(MmoOpcode.MMA, 4096, 4096, 4096)
        t2 = simd2_mmo_time(MmoOpcode.MMA, 8192, 8192, 8192)
        assert 7.0 < t2 / t1 < 8.5

    def test_elementwise_pass_is_bandwidth_bound(self):
        time = elementwise_pass_time(4096 * 4096, 8.0)
        expected = RTX3080.kernel_launch_overhead_s + 4096 * 4096 * 8 / RTX3080.dram_bytes_per_s
        assert time == pytest.approx(expected)

    def test_nonsquare_shapes_supported(self):
        # Fig 10: non-square microbenchmarks still favour SIMD².
        tall = mmo_kernel_times(MmoOpcode.MINPLUS, 16384, 1024, 1024)
        assert tall.speedup > 5.0
