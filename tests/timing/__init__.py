"""Test package."""
