"""Tests for the Figure 14 sparse-vs-dense crossover model."""

from __future__ import annotations

import pytest

from repro.timing import SparseCrossoverModel


@pytest.fixture
def model() -> SparseCrossoverModel:
    return SparseCrossoverModel()


class TestFigure14:
    def test_1024_never_crosses(self, model):
        # Paper: cuSparse does not outperform cuBlas for 1024² matrices.
        assert model.crossover_sparsity(1024) is None

    def test_4096_crosses_near_99pct(self, model):
        # Paper: for 4096², cuSparse wins when sparsity exceeds 99%.
        crossover = model.crossover_sparsity(4096)
        assert crossover is not None
        assert 0.975 <= crossover <= 0.995

    def test_16384_oom_region(self, model):
        # Paper: cuSparse OOMs on 16384² inputs that are not sparse enough.
        assert model.point(16384, 0.5).speedup is None
        assert model.point(16384, 0.9).speedup is None
        assert model.point(16384, 0.999).speedup is not None

    def test_extreme_sparsity_wins_big(self, model):
        assert model.point(16384, 0.999).speedup > 10.0

    def test_speedup_monotone_in_sparsity(self, model):
        speedups = [model.point(4096, s).speedup for s in (0.9, 0.95, 0.99, 0.999)]
        assert None not in speedups
        assert speedups == sorted(speedups)

    def test_dense_time_positive_and_cubic(self, model):
        assert model.dense_time(8192) / model.dense_time(4096) > 6.0

    def test_bad_sparsity_rejected(self, model):
        with pytest.raises(ValueError, match="sparsity"):
            model.sparse_time(1024, 1.5)
