"""Tests for the area/performance design-space analysis."""

from __future__ import annotations

import math

import pytest

from repro.timing.tradeoff import DESIGNS, design_point, design_space


class TestDesignPoints:
    def test_three_designs(self):
        points = design_space()
        assert [p.design for p in points] == list(DESIGNS)

    def test_mxu_only_adds_no_area_and_little_speedup(self):
        point = design_point("mxu-only")
        assert point.extra_die_mm2 == 0.0
        assert point.geomean_speedup < 1.5  # matrix algorithms on CUDA cores

    def test_simd2_beats_mxu_only(self):
        mxu = design_point("mxu-only")
        simd2 = design_point("simd2")
        assert simd2.geomean_speedup > 5 * mxu.geomean_speedup
        # ~0.38 mm² per SM across 68 SMs ≈ 26 mm² of die.
        assert 20 < simd2.extra_die_mm2 < 32

    def test_farm_matches_simd2_performance_at_4x_area(self):
        simd2 = design_point("simd2")
        farm = design_point("accelerator-farm")
        assert farm.geomean_speedup == pytest.approx(simd2.geomean_speedup)
        assert farm.extra_area_units / simd2.extra_area_units > 4.0

    def test_simd2_wins_figure_of_merit(self):
        points = {p.design: p for p in design_space()}
        assert (
            points["simd2"].speedup_per_mm2
            > points["accelerator-farm"].speedup_per_mm2
        )
        # mxu-only adds no silicon but also (almost) no speedup; its FoM is
        # defined as inf only if it actually speeds anything up.
        mxu = points["mxu-only"]
        assert mxu.speedup_per_mm2 in (math.inf, 0.0) or mxu.speedup_per_mm2 > 0

    def test_unknown_design(self):
        with pytest.raises(ValueError, match="unknown design"):
            design_point("tpu")

    def test_size_index_sweep(self):
        small = design_point("simd2", size_index=0)
        large = design_point("simd2", size_index=2)
        assert small.geomean_speedup != large.geomean_speedup
