"""Tests asserting the Figure 11/12/13 shape claims as model invariants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.timing import (
    APPS,
    APP_SIZES,
    ClosurePolicy,
    app_times,
    closure_iterations,
    dag_longest_path,
    er_diameter,
)


def _gmean(values) -> float:
    return float(np.exp(np.mean(np.log(list(values)))))


class TestIterationModels:
    def test_er_diameter_grows_slowly(self):
        assert er_diameter(1024) <= er_diameter(16384) <= er_diameter(1024) + 2

    def test_dag_longest_path_grows_linearly(self):
        assert dag_longest_path(16384) == pytest.approx(4 * dag_longest_path(4096), rel=0.05)

    def test_policy_iteration_ordering(self):
        diam, n = 6, 4096
        ley = closure_iterations(ClosurePolicy.LEYZOREK, diam, n)
        ley_wc = closure_iterations(ClosurePolicy.LEYZOREK_NOCONV, diam, n)
        bf = closure_iterations(ClosurePolicy.BELLMAN_FORD, diam, n)
        bf_wc = closure_iterations(ClosurePolicy.BELLMAN_FORD_NOCONV, diam, n)
        assert ley <= bf <= bf_wc
        assert ley <= ley_wc <= bf_wc

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError, match="unknown application"):
            app_times("SORT", 1024)


class TestFigure11Shape:
    def test_gmean_band(self):
        # Paper: geometric mean 10.76×–13.96× across sizes; our calibrated
        # model lands in 8×–12×.
        for index in range(3):
            speedups = [
                app_times(app, APP_SIZES[app][index]).speedup_units for app in APPS
            ]
            assert 7.5 < _gmean(speedups) < 14.0

    def test_max_speedup_matches_paper(self):
        # Paper: up to 38.59×.
        best = max(
            app_times(app, size).speedup_units
            for app in APPS
            for size in APP_SIZES[app]
        )
        assert 30.0 < best < 45.0

    def test_seven_of_eight_stay_strong_at_large(self):
        # Paper: 7 of 8 applications keep strong speedups as data grows.
        larges = {app: app_times(app, APP_SIZES[app][2]).speedup_units for app in APPS}
        strong = [app for app, s in larges.items() if s > 2.0]
        assert len(strong) >= 7
        assert larges["MST"] < 2.0  # the eighth: MST degrades

    def test_mst_degrades_with_size(self):
        s = [app_times("MST", n).speedup_units for n in APP_SIZES["MST"]]
        assert s[0] > s[1] > s[2]
        assert s[2] < 1.5

    def test_aplp_degrades_with_size(self):
        s = [app_times("APLP", n).speedup_units for n in APP_SIZES["APLP"]]
        assert s[0] > s[2]

    def test_matrix_algorithms_lose_without_units_for_path_apps(self):
        # Paper: APSP, APLP, MST, MaxRP, MinRP cannot beat their baselines
        # on CUDA cores alone.
        for app in ("APSP", "APLP", "MST", "MAXRP", "MINRP"):
            for size in APP_SIZES[app]:
                assert app_times(app, size).speedup_cuda < 1.25

    def test_mcp_gtc_knn_win_even_without_units(self):
        # Paper: MCP, GTC and KNN outperform their baselines even on CUDA
        # cores (better libraries, better architectural scaling).
        for app in ("MCP", "GTC", "KNN"):
            for size in APP_SIZES[app]:
                assert app_times(app, size).speedup_cuda > 1.0

    def test_knn_unit_gap_band(self):
        # Paper: the with/without-units gap for KNN is 4.79×–6.43×.
        gaps = [app_times("KNN", n).unit_gap for n in APP_SIZES["KNN"]]
        assert all(3.0 < g < 7.0 for g in gaps)


class TestFigure12Ablations:
    def test_leyzorek_without_convergence_still_wins(self):
        # Paper: 1.11×–10.91× without convergence checks (KNN excluded —
        # it is not a closure and uses no convergence check).
        speedups = [
            app_times(app, size, policy=ClosurePolicy.LEYZOREK_NOCONV).speedup_units
            for app in APPS
            if app != "KNN"
            for size in APP_SIZES[app]
        ]
        assert min(speedups) > 0.3
        assert 1.0 < max(speedups) < 12.0

    def test_bellman_ford_sinks_minrp(self):
        # Paper: MinRP can never beat the GPU baseline under Bellman-Ford.
        for size in APP_SIZES["MINRP"]:
            assert app_times("MINRP", size, policy=ClosurePolicy.BELLMAN_FORD).speedup_units < 1.0

    def test_bellman_ford_hurts_aplp_and_mst_at_large(self):
        for app in ("APLP", "MST"):
            large = APP_SIZES[app][2]
            bf = app_times(app, large, policy=ClosurePolicy.BELLMAN_FORD).speedup_units
            ley = app_times(app, large, policy=ClosurePolicy.LEYZOREK).speedup_units
            assert bf < ley
            assert bf < 1.0

    def test_convergence_check_beats_worst_case(self):
        for app in ("APSP", "MCP"):
            size = APP_SIZES[app][1]
            conv = app_times(app, size, policy=ClosurePolicy.LEYZOREK).speedup_units
            noconv = app_times(app, size, policy=ClosurePolicy.LEYZOREK_NOCONV).speedup_units
            assert conv > noconv


class TestFigure13Sparse:
    def test_sparse_unit_gains_band(self):
        # Paper: sparse SIMD² is 1.60×–2.05× over dense SIMD².
        gains = []
        for app in APPS:
            for size in APP_SIZES[app]:
                dense = app_times(app, size).simd2_units_s
                sparse = app_times(app, size, sparse_unit=True).simd2_units_s
                gains.append(dense / sparse)
        assert all(1.0 <= g <= 2.05 for g in gains)
        assert max(gains) > 1.8

    def test_sparse_peak_speedup(self):
        # Paper: up to 68.33× over the baseline.
        best = max(
            app_times(app, size, sparse_unit=True).speedup_units
            for app in APPS
            for size in APP_SIZES[app]
        )
        assert 55.0 < best < 85.0

    def test_sparse_gmean_band(self):
        # Paper: 21.13×–24.82× average; our model lands 14×–18×.
        for index in range(3):
            speedups = [
                app_times(app, APP_SIZES[app][index], sparse_unit=True).speedup_units
                for app in APPS
            ]
            assert 12.0 < _gmean(speedups) < 25.0
