"""Tests for the roofline analysis."""

from __future__ import annotations

import pytest

from repro.isa import MmoOpcode
from repro.timing import RTX3080
from repro.timing.roofline import Bound, crossover_intensity, mmo_roofline


class TestIntensityScaling:
    def test_intensity_grows_with_size(self):
        # The paper's §2.2 argument: O(n³) compute over O(n²) data.
        small = mmo_roofline(MmoOpcode.MMA, 256, 256, 256)[1]
        large = mmo_roofline(MmoOpcode.MMA, 4096, 4096, 4096)[1]
        assert large.intensity > 10 * small.intensity

    def test_large_square_mmo_is_compute_bound_on_units(self):
        _, simd2 = mmo_roofline(MmoOpcode.MINPLUS, 4096, 4096, 4096)
        assert simd2.bound is Bound.COMPUTE
        assert simd2.roof_fraction == 1.0

    def test_thin_k_panel_is_memory_bound_on_units(self):
        # Fig 10's worst shape: k=128 over a large m×n output.
        _, simd2 = mmo_roofline(MmoOpcode.MINPLUS, 8192, 8192, 16)
        assert simd2.bound is Bound.MEMORY
        assert simd2.roof_fraction < 1.0

    def test_cuda_backend_reaches_its_lower_roof_sooner(self):
        cuda, simd2 = mmo_roofline(MmoOpcode.MINPLUS, 1024, 1024, 64)
        # Same intensity, lower ceiling: CUDA can be compute-bound where
        # the SIMD² unit is still memory-bound.
        assert cuda.intensity == simd2.intensity
        assert cuda.peak_rate < simd2.peak_rate

    def test_boolean_traffic_is_cheaper(self):
        numeric = mmo_roofline(MmoOpcode.MINPLUS, 512, 512, 512)[1]
        boolean = mmo_roofline(MmoOpcode.ORAND, 512, 512, 512)[1]
        assert boolean.intensity > numeric.intensity


class TestCrossover:
    def test_crossover_matches_placement(self):
        threshold = crossover_intensity(MmoOpcode.MMA, backend="simd2")
        # A kernel exactly at the knee is compute-bound (>=); below it, not.
        assert threshold == RTX3080.simd2_pair_rate / RTX3080.dram_bytes_per_s

    def test_cuda_crossover_depends_on_opcode(self):
        fused = crossover_intensity(MmoOpcode.MMA, backend="cuda")
        hazard = crossover_intensity(MmoOpcode.MINMAX, backend="cuda")
        # Hazard-bound ops have a lower compute ceiling → earlier knee.
        assert hazard < fused

    def test_simd2_crossover_uniform_across_opcodes(self):
        values = {
            crossover_intensity(op, backend="simd2") for op in MmoOpcode
        }
        assert len(values) == 1  # units run every opcode at the same rate

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            crossover_intensity(MmoOpcode.MMA, backend="tpu")


class TestValidation:
    def test_bad_dimensions(self):
        with pytest.raises(ValueError, match="positive"):
            mmo_roofline(MmoOpcode.MMA, 0, 4, 4)

    def test_consistency_with_cost_model(self):
        # Where the roofline says memory-bound, the cost model's time must
        # equal the bandwidth time (plus launch overhead).
        from repro.timing import simd2_mmo_time

        m, n, k = 8192, 8192, 16
        _, point = mmo_roofline(MmoOpcode.MINPLUS, m, n, k)
        assert point.bound is Bound.MEMORY
        pairs = float(m) * n * k
        modelled = simd2_mmo_time(MmoOpcode.MINPLUS, m, n, k)
        bandwidth_time = pairs / point.attainable_rate
        assert modelled == pytest.approx(
            RTX3080.kernel_launch_overhead_s + bandwidth_time, rel=0.01
        )
