"""End-to-end tests of ``backend="auto"``: bit-identity with the plan's
static choice across every ring, per-iteration re-planning on density
drift, and the planner-fed fallback chain."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import capabilities_of, get_backend, list_backends
from repro.core import SEMIRINGS
from repro.plan import AutotuneTable, Planner
from repro.runtime.closure import closure
from repro.runtime.context import ExecutionContext
from repro.runtime.kernels import mmo_tiled
from repro.runtime.trace import Trace
from repro.sparse import estimate_density


@pytest.fixture
def rng():
    return np.random.default_rng(0xA2B)


def _ring_operands(ring, n, rng, density=1.0):
    if ring.is_boolean():
        return rng.random((n, n)) < density
    identity = float(ring.oplus_identity)
    explicit = rng.uniform(0.5, 8.5, (n, n))
    if density >= 1.0:
        return explicit
    return np.where(rng.random((n, n)) < density, explicit, identity)


class TestAutoMatchesPlannedStatic:
    """The planner decides; dispatch must not change the arithmetic."""

    @pytest.mark.parametrize("name", sorted(SEMIRINGS))
    def test_bit_identical_across_all_rings(self, name, rng):
        ring = SEMIRINGS[name]
        a = _ring_operands(ring, 48, rng, density=0.3)
        b = _ring_operands(ring, 48, rng, density=0.3)
        table = AutotuneTable()
        got, _ = mmo_tiled(
            name, a, b, context=ExecutionContext(backend="auto", autotune=table)
        )
        # Reconstruct the plan the seam consulted (same cold table state:
        # the launch above only *recorded* into it, and planning happened
        # before the observation landed).
        plan = Planner(AutotuneTable()).plan(
            name, 48, 48, 48,
            density_a=estimate_density(a, ring),
            density_b=estimate_density(b, ring),
        )
        expected, _ = mmo_tiled(name, a, b, backend=plan.best.backend)
        np.testing.assert_array_equal(got, expected)
        assert got.dtype == expected.dtype

    def test_trace_names_the_concrete_backend(self, rng):
        trace = Trace()
        a = _ring_operands(SEMIRINGS["min-plus"], 32, rng)
        mmo_tiled(
            "min-plus", a, a,
            context=ExecutionContext(
                backend="auto", trace=trace, autotune=AutotuneTable()
            ),
        )
        assert len(trace.records) == 1
        assert trace.records[0].backend != "auto"
        assert len(trace.plans) == 1
        assert trace.plans[0].backend == trace.records[0].backend
        assert trace.summary().plan_decisions == 1

    def test_direct_execute_path_also_selects(self, rng):
        # Callers that bypass the dispatch seam and call the backend
        # object directly still get plan-then-delegate semantics.
        from repro.compile.lower import resolve_opcode

        auto = get_backend("auto")
        opcode = resolve_opcode("min-plus")
        ctx = ExecutionContext(backend="auto", autotune=AutotuneTable())
        a = _ring_operands(SEMIRINGS["min-plus"], 32, rng)
        compiled = auto.compile(opcode, 32, 32, 32, has_accumulator=False, context=ctx)
        got, _ = auto.execute(compiled, a, a, None, context=ctx)
        expected, _ = mmo_tiled("min-plus", a, a, backend="vectorized")
        np.testing.assert_array_equal(got, expected)

    def test_auto_is_registered(self):
        assert "auto" in list_backends()
        assert capabilities_of(get_backend("auto")).rings is None


class TestReplanOnDensityDrift:
    def test_closure_migrates_sparse_to_dense(self, rng):
        # A directed chain under min-plus: D₀ is near-empty (one explicit
        # off-diagonal band), but repeated squaring fills the upper
        # triangle — density crosses the predicted crossover and the
        # per-iteration re-planning must migrate sparse → vectorized.
        n = 128
        inf = np.inf
        d0 = np.full((n, n), inf)
        np.fill_diagonal(d0, 0.0)
        for i in range(n - 1):
            d0[i, i + 1] = 1.0
        assert estimate_density(d0, "min-plus") < 0.02

        trace = Trace()
        ctx = ExecutionContext(
            backend="auto", trace=trace, autotune=AutotuneTable()
        )
        result = closure("min-plus", d0, context=ctx, method="leyzorek")
        assert result.converged

        chosen = [p.backend for p in trace.plans]
        assert len(chosen) >= 3  # one plan per iteration
        assert chosen[0] == "sparse"  # near-empty start
        assert chosen[-1] == "vectorized"  # dense fixpoint region
        # Every launch record names the same concrete backend its plan chose.
        assert [r.backend for r in trace.records] == chosen

        # And the arithmetic is untouched: identical to a static run.
        static = closure("min-plus", d0, backend="vectorized", method="leyzorek")
        np.testing.assert_array_equal(result.matrix, static.matrix)


class TestProbeAtTheSeam:
    def test_repeat_launches_probe_then_settle(self, rng):
        # Near the crossover both model prices sit inside the error band,
        # so once one side holds an observation the next identical launch
        # is spent measuring the other (plan.probe); with both sides
        # observed, later launches settle empirically with no more probes.
        n = 192
        ring = SEMIRINGS["min-plus"]
        d = 0.045  # crossover_density(192) ≈ 0.0415: a genuine model tie
        a = _ring_operands(ring, n, rng, density=d)
        table = AutotuneTable()
        trace = Trace()
        ctx = ExecutionContext(backend="auto", trace=trace, autotune=table)
        for _ in range(4):
            mmo_tiled("min-plus", a, a, context=ctx)
        plans = trace.plans
        assert len(plans) == 4
        assert any(p.probe for p in plans)  # exploration happened
        assert not plans[-1].probe  # and stopped
        assert plans[-1].refined  # final choice is observation-backed
        backends_tried = {p.backend for p in plans}
        assert len(backends_tried) >= 2  # both sides of the tie measured
