"""Tests for the AutotuneTable: bucketing, thread safety, persistence,
and the AutotuneHook feedback seam."""

from __future__ import annotations

import math
import threading

import numpy as np
import pytest

from repro.plan import AutotuneKey, AutotuneTable, default_autotune_table
from repro.plan.autotune import _density_bin, _dim_bucket
from repro.runtime.context import ExecutionContext
from repro.runtime.kernels import mmo_tiled


@pytest.fixture
def rng():
    return np.random.default_rng(0xA07)


class TestBucketing:
    def test_nearby_dims_share_a_bucket(self):
        assert _dim_bucket(120) == _dim_bucket(128)
        assert _dim_bucket(128) != _dim_bucket(256)

    def test_zero_dim_gets_its_own_bucket(self):
        assert _dim_bucket(0) == -1
        assert _dim_bucket(0) != _dim_bucket(1)

    def test_density_bins_resolve_the_crossover(self):
        # One side of a Fig-14 crossover must not share a bin with the
        # other: 0.01 vs 0.1 vs 1.0 are distinct regimes.
        assert _density_bin(0.01) != _density_bin(0.1)
        assert _density_bin(0.1) != _density_bin(1.0)

    def test_densities_below_floor_share_the_sparsest_bin(self):
        assert _density_bin(1e-9) == _density_bin(1e-4)

    def test_key_bucket_is_stable(self):
        key = AutotuneKey.bucket("vectorized", "MINPLUS", m=128, n=128, k=128)
        assert key == AutotuneKey.bucket(
            "vectorized", "MINPLUS", m=130, n=126, k=128
        )


class TestRecordObserve:
    def test_cold_bucket_reads_none(self):
        table = AutotuneTable()
        assert table.observed("vectorized", "MINPLUS", m=64, n=64, k=64) is None

    def test_best_of_observations_wins(self):
        table = AutotuneTable()
        for t in (3e-3, 1e-3, 2e-3):
            table.record("vectorized", "MINPLUS", m=64, n=64, k=64, wall_time_s=t)
        assert table.observed("vectorized", "MINPLUS", m=64, n=64, k=64) == 1e-3
        assert table.observation_count("vectorized", "MINPLUS", m=64, n=64, k=64) == 3

    def test_negative_wall_times_ignored(self):
        table = AutotuneTable()
        table.record("vectorized", "MINPLUS", m=64, n=64, k=64, wall_time_s=-1.0)
        assert len(table) == 0

    def test_clear_empties_the_table(self):
        table = AutotuneTable()
        table.record("vectorized", "MINPLUS", m=64, n=64, k=64, wall_time_s=1e-3)
        table.clear()
        assert len(table) == 0

    def test_snapshot_is_a_deep_copy(self):
        table = AutotuneTable()
        table.record("vectorized", "MINPLUS", m=64, n=64, k=64, wall_time_s=1e-3)
        snap = table.snapshot()
        next(iter(snap.values())).observe(1e-9)
        assert table.observed("vectorized", "MINPLUS", m=64, n=64, k=64) == 1e-3


class TestConcurrency:
    def test_parallel_records_lose_nothing(self):
        table = AutotuneTable()
        per_thread, threads = 200, 8

        def work(i: int) -> None:
            for j in range(per_thread):
                table.record(
                    "vectorized", "MINPLUS",
                    m=64 * (1 + i % 3), n=64, k=64,
                    wall_time_s=1e-3 + j * 1e-6,
                )

        ts = [threading.Thread(target=work, args=(i,)) for i in range(threads)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        total = sum(e.count for e in table.snapshot().values())
        assert total == per_thread * threads

    def test_parallel_readers_and_writers(self):
        table = AutotuneTable()
        stop = threading.Event()
        errors: list[BaseException] = []

        def writer() -> None:
            j = 0
            while not stop.is_set():
                table.record("sparse", "MINPLUS", m=128, n=128, k=128,
                             wall_time_s=1e-3 + j * 1e-7)
                j += 1

        def reader() -> None:
            try:
                while not stop.is_set():
                    got = table.observed("sparse", "MINPLUS", m=128, n=128, k=128)
                    assert got is None or got >= 1e-3
                    table.snapshot()
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        ts = [threading.Thread(target=writer) for _ in range(3)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        for t in ts:
            t.start()
        stop.wait(0.2)
        stop.set()
        for t in ts:
            t.join()
        assert errors == []


class TestPersistence:
    def test_json_round_trip(self, tmp_path):
        table = AutotuneTable()
        table.record("vectorized", "MINPLUS", m=128, n=128, k=128,
                     density_a=0.5, density_b=0.25, wall_time_s=2e-3)
        table.record("sparse", "PLUSMUL", m=256, n=256, k=256,
                     density_a=0.01, density_b=0.01, wall_time_s=4e-4)
        table.record("sparse", "PLUSMUL", m=256, n=256, k=256,
                     density_a=0.01, density_b=0.01, wall_time_s=3e-4)
        path = tmp_path / "autotune.json"
        table.save(str(path))
        loaded = AutotuneTable.load(str(path))
        assert loaded.snapshot() == table.snapshot()
        assert loaded.observed(
            "sparse", "PLUSMUL", m=256, n=256, k=256,
            density_a=0.01, density_b=0.01,
        ) == 3e-4

    def test_payload_is_versioned_and_sorted(self):
        table = AutotuneTable()
        table.record("b", "OP", m=1, n=1, k=1, wall_time_s=1.0)
        table.record("a", "OP", m=1, n=1, k=1, wall_time_s=1.0)
        payload = table.to_json()
        assert payload["version"] == 1
        backends = [e["backend"] for e in payload["entries"]]
        assert backends == sorted(backends)

    def test_bad_payload_rejected(self):
        with pytest.raises(ValueError, match="entries"):
            AutotuneTable.from_json({"version": 1, "entries": "nope"})


class TestAutotuneHookIntegration:
    def test_adaptive_launch_feeds_the_context_table(self, rng):
        table = AutotuneTable()
        a = rng.random((64, 64))
        ctx = ExecutionContext(backend="auto", autotune=table)
        mmo_tiled("min-plus", a, a, context=ctx)
        snap = table.snapshot()
        assert len(snap) == 1
        (key,) = snap
        assert key.backend != "auto"  # concrete delegate, never the planner
        assert next(iter(snap.values())).best_s > 0.0

    def test_static_context_with_explicit_table_opts_in(self, rng):
        table = AutotuneTable()
        a = rng.random((32, 32))
        ctx = ExecutionContext(backend="vectorized", autotune=table)
        mmo_tiled("plus-mul", a, a, context=ctx)
        snap = table.snapshot()
        assert {k.backend for k in snap} == {"vectorized"}

    def test_plain_static_context_feeds_nothing(self, rng):
        before = len(default_autotune_table())
        a = rng.random((32, 32))
        mmo_tiled("plus-mul", a, a, backend="vectorized")
        assert len(default_autotune_table()) == before

    def test_degenerate_launches_record_nothing(self):
        table = AutotuneTable()
        a = np.zeros((0, 8))
        b = np.zeros((8, 4))
        ctx = ExecutionContext(backend="auto", autotune=table)
        mmo_tiled("min-plus", a, b, context=ctx)
        assert len(table) == 0

    def test_observation_lands_in_the_planned_bucket(self, rng):
        # The bucket the hook writes must be the bucket the planner reads:
        # same dims, same estimated densities.
        table = AutotuneTable()
        a = np.where(rng.random((128, 128)) < 0.3, 1.0, np.inf)
        ctx = ExecutionContext(backend="auto", autotune=table)
        mmo_tiled("min-plus", a, a, context=ctx)
        from repro.sparse import estimate_density

        d = estimate_density(a, "min-plus")
        (key,) = table.snapshot()
        observed = table.observed(
            key.backend, "MINPLUS", m=128, n=128, k=128,
            density_a=d, density_b=d,
        )
        assert observed is not None and math.isfinite(observed)
