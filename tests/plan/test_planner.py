"""Tests for the Planner: cold cost-model choices, capability filtering,
bounded exploration, and the Fig-14 crossover predictions."""

from __future__ import annotations

import pytest

from repro.plan import (
    MODEL_ERROR_BAND,
    REPROBE_OBSERVATIONS,
    AutotuneTable,
    DispatchPlan,
    PlanError,
    Planner,
    crossover_density,
    planner_order,
)


@pytest.fixture
def planner():
    return Planner(AutotuneTable())  # isolated table: always cold


class TestColdChoices:
    """Cost-model-seeded picks pinned at the calibrated operating points."""

    def test_dense_launches_pick_vectorized(self, planner):
        for n in (128, 256):
            plan = planner.plan("min-plus", n, n, n, density_a=1.0, density_b=1.0)
            assert plan.best.backend == "vectorized"
            assert plan.best.source == "model"

    def test_very_sparse_large_launches_pick_sparse(self, planner):
        for n in (128, 256):
            plan = planner.plan(
                "min-plus", n, n, n, density_a=0.005, density_b=0.005
            )
            assert plan.best.backend == "sparse"

    def test_small_launches_stay_vectorized_even_when_sparse(self, planner):
        # At n=64 the spGEMM per-row overheads dominate at every density
        # on this substrate (measured: no crossover exists).
        plan = planner.plan("min-plus", 64, 64, 64, density_a=0.01, density_b=0.01)
        assert plan.best.backend == "vectorized"

    def test_emulate_ranks_last_among_builtins(self, planner):
        plan = planner.plan("plus-mul", 128, 128, 128)
        order = [c.backend for c in plan.candidates]
        assert order.index("emulate") > order.index("vectorized")

    def test_plan_is_shape_and_ring_stamped(self, planner):
        plan = planner.plan("max-plus", 32, 48, 16, density_a=0.5, density_b=0.5)
        assert isinstance(plan, DispatchPlan)
        assert plan.ring == "max-plus"
        assert plan.shape == (32, 48, 16)
        assert plan.density_a == 0.5
        assert not plan.refined and not plan.probe


class TestCapabilityFiltering:
    def test_non_absorbing_rings_exclude_sparse(self, planner):
        for ring in ("plus-norm", "min-mul", "max-mul"):
            plan = planner.plan(ring, 128, 128, 128, density_a=0.01, density_b=0.01)
            assert "sparse" not in plan.order

    def test_planning_backends_never_self_nominate(self, planner):
        plan = planner.plan("min-plus", 64, 64, 64)
        assert "auto" not in plan.order

    def test_no_capable_backend_raises(self, planner, monkeypatch):
        import repro.backends.base as base

        monkeypatch.setattr(base, "_REGISTRY", {})
        monkeypatch.setattr(base, "_BUILTINS_LOADED", True)
        with pytest.raises(PlanError, match="no capable backend"):
            planner.plan("min-plus", 16, 16, 16)


class TestRefinement:
    def test_observation_beats_model(self):
        table = AutotuneTable()
        # Claim sparse is (implausibly) fast on a dense 128³ launch; with
        # vectorized also observed often enough to be trusted, the
        # empirical ranking must flip.
        table.record("sparse", "MINPLUS", m=128, n=128, k=128,
                     density_a=1.0, density_b=1.0, wall_time_s=1e-6)
        for _ in range(REPROBE_OBSERVATIONS):
            table.record("vectorized", "MINPLUS", m=128, n=128, k=128,
                         density_a=1.0, density_b=1.0, wall_time_s=1e-3)
        plan = Planner(table).plan("min-plus", 128, 128, 128)
        assert plan.best.backend == "sparse"
        assert plan.best.source == "observed"
        assert plan.refined

    def test_probe_promotes_unobserved_near_tie(self):
        table = AutotuneTable()
        # Observe only vectorized; sparse's model estimate at this point
        # sits within the error band, so the planner spends one probe.
        plan_cold = Planner(AutotuneTable()).plan(
            "min-plus", 192, 192, 192, density_a=0.05, density_b=0.05
        )
        costs = {c.backend: c.cost_s for c in plan_cold.candidates}
        assert costs["sparse"] <= MODEL_ERROR_BAND * costs["vectorized"]
        table.record("vectorized", "MINPLUS", m=192, n=192, k=192,
                     density_a=0.05, density_b=0.05,
                     wall_time_s=costs["vectorized"])
        plan = Planner(table).plan(
            "min-plus", 192, 192, 192, density_a=0.05, density_b=0.05
        )
        assert plan.probe
        assert plan.best.backend == "sparse"
        assert plan.best.source == "model"

    def test_no_probe_outside_the_band(self):
        table = AutotuneTable()
        # Fully dense at 128³: sparse's model price is far beyond the
        # band, so no probe is spent.
        table.record("vectorized", "MINPLUS", m=128, n=128, k=128,
                     density_a=1.0, density_b=1.0, wall_time_s=2e-4)
        plan = Planner(table).plan("min-plus", 128, 128, 128)
        assert not plan.probe
        assert plan.best.backend == "vectorized"

    def test_probe_fires_at_most_once_per_bucket(self):
        table = AutotuneTable()
        # Observe vectorized at its own model price, so sparse's model
        # estimate stays inside the exploration band.
        table.record("vectorized", "MINPLUS", m=192, n=192, k=192,
                     density_a=0.05, density_b=0.05, wall_time_s=0.0118)
        p = Planner(table)
        first = p.plan("min-plus", 192, 192, 192, density_a=0.05, density_b=0.05)
        assert first.probe
        # Once the probed backend has its own observation the ranking is
        # purely empirical: no further probes in this bucket.
        table.record(first.best.backend, "MINPLUS", m=192, n=192, k=192,
                     density_a=0.05, density_b=0.05, wall_time_s=0.05)
        second = p.plan("min-plus", 192, 192, 192, density_a=0.05, density_b=0.05)
        assert not second.probe
        assert second.best.backend == "vectorized"

    def test_reprobe_recovers_a_poisoned_observation(self):
        table = AutotuneTable()
        # A scheduling burst lands an 18x-slow sample in vectorized's
        # fresh bucket at dense 256³, after which emulate's honest time
        # wins the empirical ranking.  The model prefers vectorized far
        # beyond the band, so the planner spends a re-probe on it instead
        # of exploiting the poisoned table forever.
        table.record("vectorized", "MINPLUS", m=256, n=256, k=256,
                     density_a=1.0, density_b=1.0, wall_time_s=0.72)
        table.record("emulate", "MINPLUS", m=256, n=256, k=256,
                     density_a=1.0, density_b=1.0, wall_time_s=0.46)
        p = Planner(table)
        plan = p.plan("min-plus", 256, 256, 256)
        assert plan.probe
        assert plan.best.backend == "vectorized"
        assert plan.best.source == "observed"
        # The re-probe's honest measurement clears the poison.
        table.record("vectorized", "MINPLUS", m=256, n=256, k=256,
                     density_a=1.0, density_b=1.0, wall_time_s=0.04)
        healed = p.plan("min-plus", 256, 256, 256)
        assert healed.best.backend == "vectorized"

    def test_reprobe_suspicion_extinguishes_at_the_cap(self):
        table = AutotuneTable()
        # The model is simply wrong here: vectorized genuinely lost.
        # After REPROBE_OBSERVATIONS consistent samples the loss is
        # trusted and the planner stops paying for re-measurement.
        table.record("emulate", "MINPLUS", m=256, n=256, k=256,
                     density_a=1.0, density_b=1.0, wall_time_s=0.46)
        p = Planner(table)
        for _ in range(REPROBE_OBSERVATIONS):
            plan = p.plan("min-plus", 256, 256, 256)
            table.record(plan.best.backend, "MINPLUS", m=256, n=256, k=256,
                         density_a=1.0, density_b=1.0, wall_time_s=0.72)
        settled = p.plan("min-plus", 256, 256, 256)
        assert not settled.probe
        assert settled.best.backend == "emulate"

    def test_margin_one_disables_probing(self):
        table = AutotuneTable()
        table.record("vectorized", "MINPLUS", m=192, n=192, k=192,
                     density_a=0.05, density_b=0.05, wall_time_s=1e-3)
        plan = Planner(table, margin=1.0).plan(
            "min-plus", 192, 192, 192, density_a=0.05, density_b=0.05
        )
        assert not plan.probe

    def test_bad_margin_rejected(self):
        with pytest.raises(PlanError, match="margin"):
            Planner(AutotuneTable(), margin=0.5)


class TestCrossoverDensity:
    def test_no_crossover_at_small_n(self):
        assert crossover_density(64) == 0.0

    def test_crossover_monotone_in_n(self):
        points = [crossover_density(n) for n in (128, 192, 256, 384)]
        assert all(0.0 < d < 1.0 for d in points)
        assert points == sorted(points)

    def test_crossover_region_matches_substrate_measurements(self):
        # Measured on the development container: d* ≈ 0.02 at n=128,
        # ≈ 0.07 at n=256 (see repro/timing/backend_cost.py).
        assert 0.005 < crossover_density(128) < 0.06
        assert 0.03 < crossover_density(256) < 0.15


class TestPlannerOrder:
    def test_full_operands_give_density_aware_order(self):
        import numpy as np

        rng = np.random.default_rng(7)
        a = np.where(rng.random((256, 256)) < 0.005, 1.0, np.inf)
        order = planner_order("min-plus", a, a, table=AutotuneTable())
        assert order[0] == "sparse"

    def test_ring_only_order_is_capability_filtered(self):
        order = planner_order("plus-norm", table=AutotuneTable())
        assert "sparse" not in order
        assert "auto" not in order
        assert order[0] == "vectorized"

    def test_nominal_order_covers_every_concrete_backend(self):
        from repro.backends import list_backends

        order = planner_order(table=AutotuneTable())
        concrete = set(list_backends()) - {"auto"}
        assert set(order) == concrete
