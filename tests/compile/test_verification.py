"""Compile-time verification: every artifact ships a passing report."""

from __future__ import annotations

import numpy as np
import pytest

import repro.compile.lower as lower_mod
from repro.compile import CompileError, compile_mmo, lower_mmo, verify_lowering
from repro.isa import (
    ElementType,
    FillMatrix,
    LoadMatrix,
    Mmo,
    MmoOpcode,
    Program,
    StoreMatrix,
)


def _ill_typed_program() -> Program:
    # f32 fills feeding the f16 a/b ports: rejected by the type checker.
    return Program(
        [
            FillMatrix(dst=0, value=1.0, etype=ElementType.F32),
            FillMatrix(dst=1, value=1.0, etype=ElementType.F32),
            FillMatrix(dst=2, value=0.0),
            Mmo(MmoOpcode.MMA, 3, 0, 1, 2),
            StoreMatrix(src=3, addr=512, ld=16),
        ],
        auto_halt=True,
    )


class TestArtifactVerification:
    @pytest.mark.parametrize("opcode", list(MmoOpcode))
    def test_every_opcode_ships_a_passing_report(self, opcode):
        compiled = lower_mmo(opcode, 2, 3, 4, has_accumulator=True)
        report = compiled.verification
        assert report is not None
        assert report.ok
        assert not report.warnings
        assert report.effects is not None
        assert report.effects.opcodes == (opcode,)
        assert report.effects.deterministic
        # The report was produced against the artifact's own layout.
        assert report.shared_memory_bytes <= compiled.shared_bytes

    def test_report_footprint_matches_layout(self):
        compiled = lower_mmo(MmoOpcode.MMA, 1, 1, 2, has_accumulator=True)
        report = compiled.verification
        # Deepest access is the f32 D-tile store at d_addr.
        expected = (compiled.d_addr + 15 * 16 + 16) * compiled.out_etype.nbytes
        assert report.shared_memory_bytes == expected

    def test_lower_rejects_ill_typed_program(self, monkeypatch):
        def bad_builder(opcode, tiles_k, *, boolean):
            return _ill_typed_program(), 512, 768

        monkeypatch.setattr(lower_mod, "build_tile_mmo_program", bad_builder)
        with pytest.raises(CompileError) as excinfo:
            lower_mmo(MmoOpcode.MMA, 1, 1, 1, has_accumulator=True)
        message = str(excinfo.value)
        assert "lowering of mmo.mma" in message
        assert "instruction 3:" in message  # the offending mmo, by index

    @pytest.mark.parametrize("opcode", list(MmoOpcode))
    def test_verify_lowering_footprint_gate(self, opcode):
        program, _, _ = lower_mod.build_tile_mmo_program(
            opcode, 4, boolean=opcode.semiring.is_boolean()
        )
        with pytest.raises(CompileError, match="shared-memory layout"):
            verify_lowering(program, opcode, (1, 1, 4), shared_limit=64)

    def test_verify_lowering_returns_report_when_clean(self):
        program, _, _ = lower_mod.build_tile_mmo_program(
            MmoOpcode.MINPLUS, 2, boolean=False
        )
        report = verify_lowering(program, MmoOpcode.MINPLUS, (1, 1, 2))
        assert report.ok
        assert report.store_set

    def test_cached_plan_reuses_report(self):
        from repro.backends.base import get_backend
        from repro.compile.cache import PlanCache

        backend = get_backend("vectorized")
        cache = PlanCache()
        first, hit1 = compile_mmo(
            backend, MmoOpcode.MAXPLUS, 32, 32, 48,
            has_accumulator=False, cache=cache,
        )
        second, hit2 = compile_mmo(
            backend, MmoOpcode.MAXPLUS, 32, 32, 48,
            has_accumulator=False, cache=cache,
        )
        assert (hit1, hit2) == (False, True)
        assert second.verification is first.verification  # no re-verify


class TestTraceCompileRecords:
    def test_trace_hook_surfaces_verification_stats(self):
        from repro.compile.cache import PlanCache
        from repro.runtime import Trace, mmo_tiled, use_context

        trace = Trace()
        a = np.random.default_rng(0).random((32, 48)).astype(np.float32)
        b = np.random.default_rng(1).random((48, 32)).astype(np.float32)
        with use_context(trace=trace, plan_cache=PlanCache()):
            mmo_tiled("minplus", a, b)
            mmo_tiled("minplus", a, b)
        assert len(trace.compiles) == 2
        fresh, replay = trace.compiles
        assert (fresh.cache_hit, replay.cache_hit) == (False, True)
        for record in trace.compiles:
            assert record.verified is True
            assert record.verifier_warnings == 0
            assert record.deterministic is True
            assert record.registers_used == 3
            assert record.shared_memory_bytes > 0
        summary = trace.summary()
        assert summary.compile_requests == 2
        assert summary.programs_verified == 2
        assert summary.verifier_warnings == 0
        assert summary.as_row()["programs_verified"] == 2

    def test_unverified_artifact_records_none(self):
        from repro.hooks.builtin import TRACE_HOOK
        from repro.runtime import Trace
        from repro.runtime.context import ExecutionContext

        compiled = lower_mmo(MmoOpcode.MMA, 1, 1, 1, has_accumulator=True)
        stripped = type(compiled)(
            **{
                **{f.name: getattr(compiled, f.name)
                   for f in compiled.__dataclass_fields__.values()},
                "verification": None,
            }
        )
        trace = Trace()
        ctx = ExecutionContext(backend="vectorized", trace=trace)
        TRACE_HOOK.post_compile(ctx, "test", stripped, cache_hit=False)
        (record,) = trace.compiles
        assert record.verified is None
        assert record.deterministic is None
