"""PlanCache semantics: keying, LRU bounds, counters, disabled mode."""

from __future__ import annotations

import pytest

from repro.compile import (
    PlanCache,
    PlanKey,
    default_plan_cache,
    lower_mmo,
    plan_key_for,
)
from repro.isa import MmoOpcode


def _key(tiles_m: int = 1, tiles_n: int = 1, tiles_k: int = 1) -> PlanKey:
    return PlanKey(
        opcode=MmoOpcode.MINPLUS,
        tiles_m=tiles_m,
        tiles_n=tiles_n,
        tiles_k=tiles_k,
        has_accumulator=True,
        boolean=False,
    )


def _artifact_for(key: PlanKey):
    return lower_mmo(
        key.opcode, key.tiles_m, key.tiles_n, key.tiles_k,
        has_accumulator=key.has_accumulator,
    )


class TestGetOrCompile:
    def test_miss_then_hit_returns_same_artifact(self):
        cache = PlanCache()
        key = _key()
        calls = []

        def compile_fn():
            calls.append(1)
            return _artifact_for(key)

        first, hit1 = cache.get_or_compile(key, compile_fn)
        second, hit2 = cache.get_or_compile(key, compile_fn)
        assert (hit1, hit2) == (False, True)
        assert second is first  # the memoized object, not a recompile
        assert len(calls) == 1
        assert (cache.hits, cache.misses) == (1, 1)

    def test_distinct_keys_compile_separately(self):
        cache = PlanCache()
        a, _ = cache.get_or_compile(_key(tiles_k=1), lambda: _artifact_for(_key(tiles_k=1)))
        b, _ = cache.get_or_compile(_key(tiles_k=2), lambda: _artifact_for(_key(tiles_k=2)))
        assert a is not b
        assert len(cache) == 2
        assert cache.misses == 2

    def test_peek_does_not_count(self):
        cache = PlanCache()
        key = _key()
        assert cache.get(key) is None
        cache.get_or_compile(key, lambda: _artifact_for(key))
        assert cache.get(key) is not None
        assert (cache.hits, cache.misses) == (0, 1)


class TestLru:
    def test_eviction_drops_least_recently_used(self):
        cache = PlanCache(maxsize=2)
        k1, k2, k3 = _key(tiles_k=1), _key(tiles_k=2), _key(tiles_k=3)
        cache.get_or_compile(k1, lambda: _artifact_for(k1))
        cache.get_or_compile(k2, lambda: _artifact_for(k2))
        cache.get_or_compile(k3, lambda: _artifact_for(k3))  # evicts k1
        assert cache.get(k1) is None
        assert cache.get(k2) is not None and cache.get(k3) is not None
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_hit_refreshes_recency(self):
        cache = PlanCache(maxsize=2)
        k1, k2, k3 = _key(tiles_k=1), _key(tiles_k=2), _key(tiles_k=3)
        cache.get_or_compile(k1, lambda: _artifact_for(k1))
        cache.get_or_compile(k2, lambda: _artifact_for(k2))
        cache.get_or_compile(k1, lambda: _artifact_for(k1))  # k1 now freshest
        cache.get_or_compile(k3, lambda: _artifact_for(k3))  # evicts k2, not k1
        assert cache.get(k1) is not None
        assert cache.get(k2) is None

    def test_evicted_key_misses_again(self):
        cache = PlanCache(maxsize=1)
        k1, k2 = _key(tiles_k=1), _key(tiles_k=2)
        cache.get_or_compile(k1, lambda: _artifact_for(k1))
        cache.get_or_compile(k2, lambda: _artifact_for(k2))
        _, hit = cache.get_or_compile(k1, lambda: _artifact_for(k1))
        assert hit is False
        assert cache.misses == 3


class TestDisabledCache:
    def test_maxsize_zero_never_stores(self):
        cache = PlanCache(maxsize=0)
        key = _key()
        calls = []

        def compile_fn():
            calls.append(1)
            return _artifact_for(key)

        _, hit1 = cache.get_or_compile(key, compile_fn)
        _, hit2 = cache.get_or_compile(key, compile_fn)
        assert (hit1, hit2) == (False, False)
        assert len(calls) == 2
        assert len(cache) == 0
        assert cache.get(key) is None
        assert cache.evictions == 0

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ValueError, match="maxsize"):
            PlanCache(maxsize=-1)


class TestStats:
    def test_snapshot_and_hit_rate(self):
        cache = PlanCache(maxsize=4)
        key = _key()
        cache.get_or_compile(key, lambda: _artifact_for(key))
        cache.get_or_compile(key, lambda: _artifact_for(key))
        cache.get_or_compile(key, lambda: _artifact_for(key))
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.evictions) == (2, 1, 0)
        assert (stats.size, stats.maxsize) == (1, 4)
        assert stats.lookups == 3
        assert stats.hit_rate == pytest.approx(2 / 3)

    def test_empty_hit_rate_is_zero(self):
        assert PlanCache().stats().hit_rate == 0.0

    def test_clear_drops_entries_keeps_counters(self):
        cache = PlanCache()
        key = _key()
        cache.get_or_compile(key, lambda: _artifact_for(key))
        cache.clear()
        assert len(cache) == 0
        assert cache.misses == 1
        _, hit = cache.get_or_compile(key, lambda: _artifact_for(key))
        assert hit is False


class TestKeying:
    def test_plan_key_for_matches_artifact_key(self):
        key = plan_key_for(MmoOpcode.MAXPLUS, 20, 17, 33, has_accumulator=True)
        artifact = lower_mmo(
            MmoOpcode.MAXPLUS, key.tiles_m, key.tiles_n, key.tiles_k,
            has_accumulator=True,
        )
        assert artifact.key == key

    def test_same_tile_grid_same_key(self):
        # Any (m, n, k) in the same 16-ceiling class shares one key.
        assert plan_key_for(
            MmoOpcode.MINPLUS, 17, 17, 17, has_accumulator=False
        ) == plan_key_for(MmoOpcode.MINPLUS, 32, 32, 32, has_accumulator=False)

    def test_key_distinguishes_accumulator_and_opcode(self):
        base = plan_key_for(MmoOpcode.MINPLUS, 16, 16, 16, has_accumulator=False)
        assert base != plan_key_for(
            MmoOpcode.MINPLUS, 16, 16, 16, has_accumulator=True
        )
        assert base != plan_key_for(
            MmoOpcode.MAXPLUS, 16, 16, 16, has_accumulator=False
        )

    def test_default_cache_is_a_singleton(self):
        assert default_plan_cache() is default_plan_cache()
