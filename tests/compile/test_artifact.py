"""CompiledMmo lowering invariants and operand-shape validation."""

from __future__ import annotations

import dataclasses

import pytest

from repro.compile import CompileError, grid_for, lower_mmo
from repro.core import TILE
from repro.isa import ElementType, MmoOpcode
from repro.isa.optimizer import optimize_program

_TILE_ELEMS = TILE * TILE


class TestGridFor:
    def test_ceiling_division(self):
        assert grid_for(20, 17, 33) == (2, 2, 3)
        assert grid_for(16, 16, 16) == (1, 1, 1)

    def test_k_zero_convention(self):
        # k == 0 still runs one fully-absorbed inner step per tile program.
        assert grid_for(4, 4, 0) == (1, 1, 1)


class TestLowerMmo:
    @pytest.mark.parametrize("opcode", list(MmoOpcode))
    def test_every_opcode_lowers(self, opcode):
        artifact = lower_mmo(opcode, 2, 3, 4, has_accumulator=True)
        assert artifact.opcode is opcode
        assert artifact.grid == (2, 3, 4)
        assert artifact.boolean == opcode.semiring.is_boolean()
        # The Figure-6 generator emits an already-optimal program: the
        # optimiser must find nothing, and re-optimising is a fixpoint.
        assert artifact.optimizer_removed == 0
        assert optimize_program(artifact.program).removed == 0
        # 1 C-load + (2 loads + 1 mmo) per inner step + 1 store (+halt).
        stats = artifact.program.stats()
        assert stats.mmos == artifact.tiles_k
        assert stats.loads == 1 + 2 * artifact.tiles_k
        assert stats.stores == 1

    def test_shared_memory_layout(self):
        artifact = lower_mmo(MmoOpcode.MINPLUS, 1, 1, 3, has_accumulator=True)
        assert artifact.in_etype is ElementType.F16
        assert artifact.out_etype is ElementType.F32
        # C sits just past the two input panels, D one tile after C.
        input_bytes = artifact.in_etype.nbytes * 2 * 3 * _TILE_ELEMS
        assert artifact.c_addr == input_bytes // artifact.out_etype.nbytes
        assert artifact.d_addr == artifact.c_addr + _TILE_ELEMS
        assert artifact.shared_bytes >= (
            input_bytes + 2 * _TILE_ELEMS * artifact.out_etype.nbytes
        )

    def test_boolean_ring_uses_b8(self):
        artifact = lower_mmo(MmoOpcode.ORAND, 1, 1, 1, has_accumulator=False)
        assert artifact.boolean is True
        assert artifact.in_etype is ElementType.B8
        assert artifact.out_etype is ElementType.B8

    def test_artifact_is_immutable(self):
        artifact = lower_mmo(MmoOpcode.MMA, 1, 1, 1, has_accumulator=False)
        with pytest.raises(dataclasses.FrozenInstanceError):
            artifact.tiles_m = 2  # type: ignore[misc]


class TestValidateOperands:
    def test_accepts_any_shape_in_the_same_tile_class(self):
        artifact = lower_mmo(MmoOpcode.MINPLUS, 2, 2, 3, has_accumulator=True)
        for m, n, k in [(17, 17, 33), (32, 32, 48), (20, 18, 35)]:
            artifact.validate_operands(m, n, k, has_accumulator=True)

    def test_rejects_different_grid(self):
        artifact = lower_mmo(MmoOpcode.MINPLUS, 2, 2, 3, has_accumulator=True)
        with pytest.raises(CompileError, match="tile grid"):
            artifact.validate_operands(33, 17, 33, has_accumulator=True)

    def test_rejects_accumulator_mismatch(self):
        artifact = lower_mmo(MmoOpcode.MINPLUS, 1, 1, 1, has_accumulator=True)
        with pytest.raises(CompileError, match="has_accumulator"):
            artifact.validate_operands(16, 16, 16, has_accumulator=False)
