"""The compile/execute split end to end: parity, cache flow, trace counts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import get_backend, list_backends
from repro.backends.base import _REGISTRY, register_backend
from repro.bench import render_trace
from repro.compile import CompileError, PlanCache, resolve_opcode
from repro.core import mmo
from repro.hw.device import Simd2Device
from repro.runtime import (
    ExecutionContext,
    HostRuntime,
    Trace,
    batched_mmo,
    closure,
    mmo_tiled,
    mmo_tiled_multi_device,
    mmo_tiled_split_k,
    resolve_context,
)
from repro.runtime.kernels import execute_compiled
from tests.conftest import make_ring_inputs


def _path_graph(n: int) -> np.ndarray:
    """Min-plus adjacency of a directed path: closure needs >1 iteration."""
    adjacency = np.full((n, n), np.inf)
    np.fill_diagonal(adjacency, 0.0)
    for i in range(n - 1):
        adjacency[i, i + 1] = 1.0
    return adjacency


class TestCompileExecuteParity:
    def test_all_backends_agree_through_the_split(self, ring, rng):
        """Registry-driven: every backend, compiled then executed directly.

        Bit-exact for idempotent/boolean ⊕ (and for these small-integer
        operands generally); allclose guards the plus-based rings where a
        backend may fold the k-reduction in a different order.
        """
        opcode = resolve_opcode(ring)
        m, k, n = 20, 33, 17
        a, b, c = make_ring_inputs(ring, m, k, n, rng)
        expected = mmo(ring, a, b, c)
        from repro.backends import capabilities_of

        for name in list_backends():
            impl = get_backend(name)
            if not callable(getattr(impl, "compile", None)):
                continue
            if not capabilities_of(impl).supports(
                ring.name, has_accumulator=True
            ):
                continue  # declared incapability (e.g. sparse × plus-norm)
            ctx = resolve_context(None, backend=name)
            compiled = impl.compile(
                opcode, m, n, k, has_accumulator=True, context=ctx
            )
            got, stats = impl.execute(compiled, a, b, c, context=ctx)
            assert (stats.tiles_m, stats.tiles_n, stats.tiles_k) == compiled.grid
            if ring.oplus is np.add:
                np.testing.assert_allclose(
                    got.astype(np.float64), expected.astype(np.float64),
                    rtol=1e-4, err_msg=f"backend {name}",
                )
            else:
                np.testing.assert_array_equal(
                    got, expected, err_msg=f"backend {name}"
                )

    def test_artifact_replays_across_shapes_in_its_tile_class(self, rng):
        # One artifact, two different (m, n, k) in the same 16-ceiling class.
        impl = get_backend("vectorized")
        ctx = resolve_context(None)
        opcode = resolve_opcode("min-plus")
        compiled = impl.compile(opcode, 20, 17, 33, has_accumulator=False, context=ctx)
        for m, k, n in [(20, 33, 17), (32, 48, 32)]:
            a, b, _ = make_ring_inputs(opcode.semiring, m, k, n, rng, with_c=False)
            got, _ = execute_compiled(compiled, a, b, context=ctx)
            np.testing.assert_array_equal(got, mmo("min-plus", a, b))


class TestCacheFlow:
    def test_repeat_launches_hit(self, rng):
        cache = PlanCache()
        trace = Trace()
        ctx = ExecutionContext(trace=trace, plan_cache=cache)
        a, b, c = make_ring_inputs(
            __import__("repro.core", fromlist=["SEMIRINGS"]).SEMIRINGS["min-plus"],
            20, 33, 17, rng,
        )
        mmo_tiled("min-plus", a, b, c, context=ctx)
        mmo_tiled("min-plus", a, b, c, context=ctx)
        assert [r.cache_hit for r in trace.records] == [False, True]
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)

    def test_disabled_cache_misses_every_launch(self, rng):
        trace = Trace()
        ctx = ExecutionContext(trace=trace, plan_cache=PlanCache(maxsize=0))
        a, b, c = make_ring_inputs(
            __import__("repro.core", fromlist=["SEMIRINGS"]).SEMIRINGS["min-plus"],
            20, 33, 17, rng,
        )
        mmo_tiled("min-plus", a, b, c, context=ctx)
        mmo_tiled("min-plus", a, b, c, context=ctx)
        assert [r.cache_hit for r in trace.records] == [False, False]

    def test_split_k_partitions_share_one_artifact(self, rng):
        cache = PlanCache()
        trace = Trace()
        ctx = ExecutionContext(trace=trace, plan_cache=cache)
        a, b, _ = make_ring_inputs(
            __import__("repro.core", fromlist=["SEMIRINGS"]).SEMIRINGS["min-plus"],
            16, 64, 16, rng, with_c=False,
        )
        mmo_tiled_split_k("min-plus", a, b, splits=4, context=ctx)
        assert [r.cache_hit for r in trace.records] == [False, True, True, True]
        assert cache.stats().misses == 1

    def test_batched_compiles_once(self, rng):
        cache = PlanCache()
        trace = Trace()
        ctx = ExecutionContext(trace=trace, plan_cache=cache)
        a = rng.integers(-4, 5, size=(3, 20, 33)).astype(np.float64)
        b = rng.integers(-4, 5, size=(3, 33, 17)).astype(np.float64)
        batched_mmo("min-plus", a, b, context=ctx)
        assert [r.cache_hit for r in trace.records] == [False, True, True]
        assert cache.stats().misses == 1

    def test_multidevice_bands_share_one_artifact(self, rng):
        cache = PlanCache()
        trace = Trace()
        ctx = ExecutionContext(
            backend="emulate", trace=trace, plan_cache=cache
        )
        a, b, _ = make_ring_inputs(
            __import__("repro.core", fromlist=["SEMIRINGS"]).SEMIRINGS["min-plus"],
            32, 16, 16, rng, with_c=False,
        )
        devices = [Simd2Device(sm_count=2), Simd2Device(sm_count=2)]
        out, shares = mmo_tiled_multi_device(
            "min-plus", a, b, devices=devices, context=ctx
        )
        assert len(shares) == 2
        np.testing.assert_array_equal(out, mmo("min-plus", a, b))
        assert [r.cache_hit for r in trace.records] == [False, True]
        assert cache.stats().misses == 1

    def test_legacy_run_mmo_backend_records_no_cache_flag(self):
        class LegacyBackend:
            name = "test-legacy-compat"

            def run_mmo(self, opcode, a, b, c, *, context):
                return get_backend("vectorized").run_mmo(
                    opcode, a, b, c, context=context
                )

        register_backend(LegacyBackend())
        try:
            trace = Trace()
            ctx = ExecutionContext(backend="test-legacy-compat", trace=trace)
            mmo_tiled("plus-mul", np.ones((4, 4)), np.ones((4, 4)), context=ctx)
            assert trace.records[0].cache_hit is None
        finally:
            _REGISTRY.pop("test-legacy-compat", None)


class TestTracedClosure:
    def test_one_miss_then_hits(self):
        cache = PlanCache()
        trace = Trace()
        ctx = ExecutionContext(trace=trace, plan_cache=cache)
        result = closure("min-plus", _path_graph(12), context=ctx)
        assert result.iterations >= 2

        hits = [r.cache_hit for r in trace.records]
        assert hits[0] is False
        assert all(h is True for h in hits[1:])
        stats = cache.stats()
        assert (stats.misses, stats.hits) == (1, 0)  # replays bypass lookup

        summary = trace.summary()
        assert summary.cache_misses == 1
        assert summary.cache_hits == len(trace.records) - 1
        assert summary.optimizer_removed == 0  # Figure-6 programs are optimal
        assert summary.cache_hit_rate == pytest.approx(
            (len(trace.records) - 1) / len(trace.records)
        )

        text = render_trace(trace.records)
        lines = text.splitlines()
        assert sum(" miss " in line for line in lines) == 1
        assert any(" hit " in line for line in lines)
        assert f"{summary.cache_hits}/{summary.cache_lookups}" in lines[-1]

    def test_host_runtime_closure_compiles_once(self):
        cache = PlanCache()
        trace = Trace()
        runtime = HostRuntime(
            context=ExecutionContext(
                backend="emulate", trace=trace, plan_cache=cache
            )
        )
        runtime.upload("g", _path_graph(8))
        outcome = runtime.run_closure("min-plus", "g")
        assert outcome.converged
        hits = [r.cache_hit for r in trace.records]
        assert hits[0] is False and all(h is True for h in hits[1:])
        assert cache.stats().misses == 1


class TestExecuteCompiledValidation:
    def test_wrong_tile_grid_rejected(self):
        impl = get_backend("vectorized")
        ctx = resolve_context(None)
        compiled = impl.compile(
            resolve_opcode("min-plus"), 16, 16, 16,
            has_accumulator=False, context=ctx,
        )
        with pytest.raises(CompileError, match="tile grid"):
            execute_compiled(
                compiled, np.ones((33, 16)), np.ones((16, 16)), context=ctx
            )

    def test_accumulator_mismatch_rejected(self):
        impl = get_backend("vectorized")
        ctx = resolve_context(None)
        compiled = impl.compile(
            resolve_opcode("min-plus"), 16, 16, 16,
            has_accumulator=False, context=ctx,
        )
        with pytest.raises(CompileError, match="has_accumulator"):
            execute_compiled(
                compiled, np.ones((16, 16)), np.ones((16, 16)),
                np.ones((16, 16)), context=ctx,
            )
