"""Tests for the derived energy analysis."""

from __future__ import annotations

import pytest

from repro.hwmodel.energy import BoardPowerModel, app_energy
from repro.timing import APP_SIZES, APPS, app_times


class TestBoardPower:
    def test_modes_are_comparable_magnitudes(self):
        power = BoardPowerModel()
        # Both modes land in plausible board-power territory (100–400 W)
        assert 100 < power.cuda_mode_w < 400
        assert 100 < power.simd2_mode_w < 400

    def test_simd2_mode_includes_unit_power(self):
        power = BoardPowerModel()
        assert power.simd2_mode_w > power.base_w
        no_extra = BoardPowerModel(simd2_extra_w=0.0)
        assert power.simd2_mode_w > no_extra.simd2_mode_w


class TestAppEnergy:
    def test_energy_gain_tracks_speedup(self):
        times = app_times("APSP", 8192)
        energy = app_energy(times)
        power = BoardPowerModel()
        expected = times.speedup_units * power.cuda_mode_w / power.simd2_mode_w
        assert energy.energy_gain == pytest.approx(expected)

    def test_most_apps_save_energy(self):
        savings = [
            app_energy(app_times(app, APP_SIZES[app][1])).energy_gain for app in APPS
        ]
        assert sum(gain > 1.0 for gain in savings) >= 7

    def test_mst_large_costs_energy(self):
        # MST at Large is slower on SIMD² — it must also cost more energy.
        energy = app_energy(app_times("MST", 4096))
        assert energy.energy_gain < 1.5

    def test_joules_are_consistent(self):
        times = app_times("GTC", 4096)
        energy = app_energy(times)
        assert energy.baseline_j == pytest.approx(
            times.baseline_s * BoardPowerModel().cuda_mode_w
        )
        assert energy.simd2_cuda_j < energy.baseline_j  # GTC wins even on CUDA
