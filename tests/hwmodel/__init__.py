"""Test package."""
