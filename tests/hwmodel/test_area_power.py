"""Tests for the Table 5 area/power model."""

from __future__ import annotations

import pytest

from repro.hwmodel import (
    ALL_SIMD2_EXTENSIONS,
    BASELINE_MMA_POWER_W,
    PAPER_TABLE5A,
    PAPER_TABLE5B,
    PAPER_TABLE5C,
    RTX3080_CHIP,
    SIMD2_EXTRA_POWER_W,
    combined_unit_area,
    die_overhead_fractions,
    mma_unit_area,
    simd2_sm_overhead_mm2,
    simd2_unit_area,
    standalone_total_area,
    standalone_unit_area,
    unit_power_w,
)
from repro.hwmodel.components import Primitive, PrimitiveClass
from repro.isa import MmoOpcode


def _within(got: float, want: float, tolerance: float) -> bool:
    return abs(got - want) <= tolerance * want


class TestTable5aCombined:
    def test_baseline_is_normalised(self):
        assert mma_unit_area(16) == pytest.approx(1.0)

    def test_full_unit_matches_paper(self):
        assert _within(simd2_unit_area(16), PAPER_TABLE5A["mma+all"], 0.02)

    @pytest.mark.parametrize(
        "opcode,key",
        [
            (MmoOpcode.MINPLUS, "mma+minplus"),
            (MmoOpcode.MAXPLUS, "mma+maxplus"),
            (MmoOpcode.MINMUL, "mma+minmul"),
            (MmoOpcode.MAXMUL, "mma+maxmul"),
            (MmoOpcode.MINMAX, "mma+minmax"),
            (MmoOpcode.MAXMIN, "mma+maxmin"),
            (MmoOpcode.ORAND, "mma+orand"),
            (MmoOpcode.ADDNORM, "mma+addnorm"),
        ],
    )
    def test_single_instruction_increments(self, opcode, key):
        assert _within(combined_unit_area([opcode]), PAPER_TABLE5A[key], 0.02)

    def test_sharing_two_mul_ring_ops_is_cheap(self):
        # Paper: combining Min-Mul and Max-Mul costs ~11.8% over MMA,
        # far less than two independent increments.
        both = combined_unit_area([MmoOpcode.MINMUL, MmoOpcode.MAXMUL])
        assert _within(both, 1.118, 0.03)
        assert both < combined_unit_area([MmoOpcode.MINMUL]) + (
            combined_unit_area([MmoOpcode.MAXMUL]) - 1.0
        )

    def test_increments_are_subadditive(self):
        # Union of all additions < sum of individual increments.
        individual_sum = sum(
            combined_unit_area([op]) - 1.0 for op in ALL_SIMD2_EXTENSIONS
        )
        assert simd2_unit_area(16) - 1.0 < individual_sum

    def test_unknown_opcode_rejected(self):
        with pytest.raises(ValueError, match="unknown opcode"):
            combined_unit_area(["bogus"])  # type: ignore[list-item]


class TestTable5bStandalone:
    @pytest.mark.parametrize("opcode", ALL_SIMD2_EXTENSIONS)
    def test_standalone_matches_paper(self, opcode):
        assert _within(
            standalone_unit_area(opcode), PAPER_TABLE5B[opcode.mnemonic], 0.05
        )

    def test_total_matches_paper(self):
        assert _within(standalone_total_area(), PAPER_TABLE5B["total"], 0.02)

    def test_standalone_mma_is_the_baseline(self):
        assert standalone_unit_area(MmoOpcode.MMA) == pytest.approx(1.0)

    def test_combined_design_beats_standalone_farm(self):
        # The paper's headline: 1.69× combined vs 1 + 2.96× separate.
        assert simd2_unit_area(16) < 1.0 + standalone_total_area()


class TestTable5cPrecision:
    @pytest.mark.parametrize("bits,tolerance", [(8, 0.05), (16, 0.01), (32, 0.02), (64, 0.02)])
    def test_mma_precision_scaling(self, bits, tolerance):
        assert _within(mma_unit_area(bits), PAPER_TABLE5C["mma"][bits], tolerance)

    @pytest.mark.parametrize("bits,tolerance", [(16, 0.01), (32, 0.05), (64, 0.05)])
    def test_simd2_precision_scaling(self, bits, tolerance):
        assert _within(simd2_unit_area(bits), PAPER_TABLE5C["simd2"][bits], tolerance)

    def test_simd2_8bit_shape_holds(self):
        # Known model limitation: the 8-bit SIMD² unit comes out ~30% below
        # the paper's 0.69 — but the *shape* (overhead ratio roughly
        # constant, absolute area far below 16-bit) holds.
        area = simd2_unit_area(8)
        assert area < simd2_unit_area(16) / 2
        assert 1.4 < area / mma_unit_area(8) < 2.9

    def test_relative_overhead_stays_bounded(self):
        # Paper: overhead over the baseline MXU "stays constant and scales
        # well" — 69% at 16-bit, 59% at 32-bit, 52% at 64-bit.
        for bits, expected in [(16, 0.69), (32, 0.59), (64, 0.52)]:
            ratio = simd2_unit_area(bits) / mma_unit_area(bits) - 1.0
            assert _within(ratio, expected, 0.12)

    def test_unsupported_precision_rejected(self):
        with pytest.raises(ValueError, match="unsupported precision"):
            mma_unit_area(128)


class TestPower:
    def test_baseline_power(self):
        assert unit_power_w() == BASELINE_MMA_POWER_W

    def test_full_simd2_power(self):
        assert unit_power_w(ALL_SIMD2_EXTENSIONS) == pytest.approx(
            BASELINE_MMA_POWER_W + SIMD2_EXTRA_POWER_W
        )

    def test_partial_extension_power_is_between(self):
        partial = unit_power_w([MmoOpcode.MINPLUS])
        assert BASELINE_MMA_POWER_W < partial < BASELINE_MMA_POWER_W + SIMD2_EXTRA_POWER_W


class TestChipOverhead:
    def test_sm_overhead_matches_paper(self):
        # Paper: 0.378 mm² per SM on Samsung 8N.
        assert _within(simd2_sm_overhead_mm2(), 0.378, 0.02)

    def test_fractions_match_paper(self):
        sm_fraction, die_fraction = die_overhead_fractions()
        assert _within(sm_fraction, 0.10, 0.05)  # "10% of the SM area"
        assert 0.035 <= die_fraction <= 0.05  # "5% of the total die area"

    def test_sm_budget_consistency(self):
        assert RTX3080_CHIP.sm_total_fraction == pytest.approx(0.4058, rel=0.01)


class TestPrimitives:
    def test_primitive_scaling_classes(self):
        mul = Primitive("m", 1.0, PrimitiveClass.MULTIPLIER)
        add = Primitive("a", 1.0, PrimitiveClass.ADDER)
        assert mul.area(32) > add.area(32)
        assert mul.area(16) == add.area(16) == 1.0

    def test_per_lane_vs_per_unit(self):
        lane = Primitive("l", 1.0, PrimitiveClass.ADDER, per_lane=True)
        block = Primitive("b", 1.0, PrimitiveClass.ADDER, per_lane=False)
        assert lane.unit_area(16) == 64.0
        assert block.unit_area(16) == 1.0
