"""Test package."""
