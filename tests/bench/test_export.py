"""Tests for CSV export of experiment data."""

from __future__ import annotations

import csv

import pytest

from repro.bench.export import export_all, export_experiment, rows_to_csv


class TestRowsToCsv:
    def test_basic(self):
        text = rows_to_csv([{"a": 1, "b": 2.5}, {"a": 3, "b": None}])
        lines = text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.5"
        assert lines[2] == "3,OOM"

    def test_union_of_columns(self):
        text = rows_to_csv([{"a": 1}, {"b": 2}])
        lines = text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,"
        assert lines[2] == ",2"

    def test_empty(self):
        assert rows_to_csv([]) == "\n"


class TestExport:
    def test_export_fig9(self, tmp_path):
        path = export_experiment("fig9", tmp_path)
        assert path.name == "fig9.csv"
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 5  # five sizes
        assert "gmean" in rows[0]
        assert float(rows[-1]["gmean"]) > 9.0

    def test_export_fig14_contains_oom(self, tmp_path):
        path = export_experiment("fig14", tmp_path)
        assert "OOM" in path.read_text()

    def test_unknown_experiment(self, tmp_path):
        with pytest.raises(KeyError, match="unknown experiment"):
            export_experiment("fig99", tmp_path)

    def test_export_all(self, tmp_path):
        paths = export_all(tmp_path)
        assert len(paths) == 9
        assert all(path.exists() and path.stat().st_size > 0 for path in paths)
