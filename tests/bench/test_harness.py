"""Tests for the experiment harness and table rendering."""

from __future__ import annotations

import pytest

from repro.bench import (
    EXPERIMENTS,
    fig9_micro_square_rows,
    fig11_application_rows,
    fig13_sparse_unit_rows,
    fig14_sparse_crossover_rows,
    format_value,
    render_table,
    run_experiment,
    table5_area_rows,
)
from repro.timing import APPS


class TestRegistry:
    def test_every_paper_experiment_registered(self):
        assert set(EXPERIMENTS) == {
            "table5",
            "validate",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "trace",
        }

    @pytest.mark.parametrize("name", sorted(EXPERIMENTS))
    def test_all_experiments_render(self, name):
        text = run_experiment(name)
        assert EXPERIMENTS[name][0].split(":")[0] in text
        assert len(text.splitlines()) > 4

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99")

    def test_cli_main(self, capsys):
        from repro.bench.__main__ import main

        assert main(["table5"]) == 0
        assert "Table 5" in capsys.readouterr().out
        assert main(["bogus"]) == 2


class TestRowStructure:
    def test_table5_covers_all_subtables(self):
        configs = [row["config"] for row in table5_area_rows()]
        assert "MMA + all SIMD2 insts" in configs
        assert "standalone total (8 PEs)" in configs
        assert "SIMD2 (64-bit)" in configs
        assert "die overhead fraction" in configs

    def test_fig9_covers_all_opcodes_and_sizes(self):
        rows = fig9_micro_square_rows()
        assert [row["size"] for row in rows] == [1024, 2048, 4096, 8192, 16384]
        assert {"mma", "minplus", "orand", "addnorm", "gmean"} <= set(rows[0])

    def test_fig11_covers_all_apps_and_sizes(self):
        rows = fig11_application_rows()
        apps = {row["app"] for row in rows}
        assert apps == set(APPS) | {"GMEAN"}
        app_rows = [row for row in rows if row["app"] != "GMEAN"]
        assert len(app_rows) == len(APPS) * 3

    def test_fig13_gain_bounded_by_sparse_throughput(self):
        gains = [
            row["gain_over_dense"]
            for row in fig13_sparse_unit_rows()
            if "gain_over_dense" in row
        ]
        assert all(1.0 <= g <= 2.0 + 1e-6 for g in gains)

    def test_fig14_contains_oom_cells(self):
        rows = fig14_sparse_crossover_rows()
        large = next(row for row in rows if row["size"] == 16384)
        assert large["s=0.5"] is None


class TestRendering:
    def test_format_value(self):
        assert format_value(None) == "OOM"
        assert format_value(True) == "yes"
        assert format_value(1.5) == "1.5"
        assert format_value(12345.6) == "1.23e+04"
        assert format_value("text") == "text"
        assert format_value(0.0) == "0"

    def test_render_alignment(self):
        rows = [{"a": 1, "bb": 2.5}, {"a": 100, "bb": None}]
        text = render_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[1:]}) <= 2  # aligned columns
        assert "OOM" in text

    def test_missing_keys_render_blank(self):
        rows = [{"a": 1, "b": 2}, {"a": 3}]
        text = render_table(rows)
        assert text.splitlines()[-1].rstrip() == "3"

    def test_empty_rows(self):
        assert "(no rows)" in render_table([], title="X")

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = render_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]
