"""Tests for the Figure-8 evaluation driver."""

from __future__ import annotations

import pytest

from repro.bench.evaluation import (
    EVALUATION_SUITE,
    evaluate_all,
    evaluate_application,
)
from repro.timing import APPS


class TestSuite:
    def test_covers_all_eight_applications(self):
        assert set(EVALUATION_SUITE) == set(APPS)

    @pytest.mark.parametrize("app", sorted(EVALUATION_SUITE))
    def test_each_application_validates(self, app):
        evaluation = evaluate_application(app)
        assert evaluation.validated, f"{app}: SIMD² output diverged from baseline"
        assert evaluation.emulation_consistent, (
            f"{app}: emulator output diverged from the vectorised backend"
        )

    def test_exact_apps_have_zero_error(self):
        for app in ("APSP", "GTC", "MST", "KNN"):
            assert evaluate_application(app).max_relative_error == 0.0

    def test_mul_rings_within_fp16_tolerance(self):
        for app in ("MAXRP", "MINRP"):
            evaluation = evaluate_application(app)
            assert 0.0 < evaluation.max_relative_error <= 1e-2

    def test_speedups_attached(self):
        evaluation = evaluate_application("MCP")
        assert len(evaluation.modelled_speedups) == 3
        assert all(s > 30 for s in evaluation.modelled_speedups)

    def test_unknown_app(self):
        with pytest.raises(KeyError, match="unknown application"):
            evaluate_application("SORT")

    def test_evaluate_all_rows(self):
        rows = [evaluation.as_row() for evaluation in evaluate_all()]
        assert len(rows) == 8
        assert all(row["validated"] for row in rows)
        assert {"app", "speedup_S", "speedup_M", "speedup_L"} <= set(rows[0])
