"""Test package."""
