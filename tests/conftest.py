"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SEMIRINGS, Semiring


def make_ring_inputs(
    ring: Semiring,
    m: int,
    k: int,
    n: int,
    rng: np.random.Generator,
    *,
    with_c: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Random inputs exactly representable in the ring's input format.

    Small-integer values keep fp32 accumulation exact, so backends can be
    compared bit-for-bit regardless of reduction order.
    """
    if ring.is_boolean():
        a = rng.random((m, k)) < 0.4
        b = rng.random((k, n)) < 0.4
        c = (rng.random((m, n)) < 0.2) if with_c else None
        return a, b, c
    a = rng.integers(-8, 9, size=(m, k)).astype(np.float64)
    b = rng.integers(-8, 9, size=(k, n)).astype(np.float64)
    c = rng.integers(-8, 9, size=(m, n)).astype(np.float64) if with_c else None
    return a, b, c


@pytest.fixture(params=sorted(SEMIRINGS))
def ring(request) -> Semiring:
    """Parametrised fixture running a test across all nine semirings."""
    return SEMIRINGS[request.param]


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0x51D2)
