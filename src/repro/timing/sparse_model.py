"""Sparse-vs-dense crossover model — reproduces Figure 14.

The paper compares cuSparse's ``spGemm`` against cuBlas' dense ``gemmEx``
(both GEMM, plus-mul) across input sparsity and size, finding:

- at 1024², sparse never wins (fixed overheads dominate),
- at 4096², sparse wins only beyond ~99 % sparsity,
- at 16384², cuSparse runs out of the 10 GB device memory below ~90 %
  sparsity, while dense processing handles ≥ 32768² matrices.

The model: dense time is a Tensor-Core GEMM from
:mod:`repro.timing.costmodel`; sparse time is dominated by the expected
``n³·d²`` scalar products at a cuSparse-class product throughput (a few
Gproducts/s on random CSR — orders of magnitude below dense MXU rates,
because of irregular gather/merge work), plus per-row and setup overheads;
feasibility comes from :class:`repro.sparse.memory.MemoryModel`.
"""

from __future__ import annotations

import dataclasses

from repro.isa.opcodes import MmoOpcode
from repro.sparse.memory import MemoryModel
from repro.timing.costmodel import simd2_mmo_time
from repro.timing.specs import GpuSpec, RTX3080

__all__ = ["SparseCrossoverModel", "SparseVsDensePoint"]


@dataclasses.dataclass(frozen=True)
class SparseVsDensePoint:
    """One cell of the Figure 14 sweep."""

    n: int
    sparsity: float
    dense_s: float
    sparse_s: float | None  # None = out of memory

    @property
    def speedup(self) -> float | None:
        """spGemm speedup over dense gemmEx (< 1: dense wins; None: OOM)."""
        if self.sparse_s is None:
            return None
        return self.dense_s / self.sparse_s


@dataclasses.dataclass(frozen=True)
class SparseCrossoverModel:
    """Latency + feasibility model of sparse vs dense GEMM."""

    spec: GpuSpec = RTX3080
    memory: MemoryModel = dataclasses.field(default_factory=MemoryModel)
    #: cuSparse-class spGEMM throughput on uniform random CSR operands.
    products_per_s: float = 3.5e9
    #: Per-row bookkeeping of the row-wise algorithm.
    row_overhead_s: float = 1e-7
    #: Buffer estimation / format setup before the multiply.
    setup_s: float = 50e-6

    # ------------------------------------------------------------------
    def dense_time(self, n: int) -> float:
        """Dense fp16 GEMM on the matrix units (cuBlas gemmEx class)."""
        return simd2_mmo_time(MmoOpcode.MMA, n, n, n, self.spec)

    def sparse_time(self, n: int, sparsity: float) -> float | None:
        """cuSparse-class spGEMM latency; ``None`` when it cannot fit."""
        if not (0.0 <= sparsity <= 1.0):
            raise ValueError(f"sparsity must be in [0, 1], got {sparsity}")
        density = 1.0 - sparsity
        if not self.memory.spgemm_fits(n, density):
            return None
        products = self.memory.expected_products(n, density)
        traffic = 2 * self.memory.csr_bytes(n, density) / self.spec.dram_bytes_per_s
        return (
            self.setup_s
            + n * self.row_overhead_s
            + products / self.products_per_s
            + traffic
        )

    def point(self, n: int, sparsity: float) -> SparseVsDensePoint:
        return SparseVsDensePoint(
            n=n,
            sparsity=sparsity,
            dense_s=self.dense_time(n),
            sparse_s=self.sparse_time(n, sparsity),
        )

    def crossover_sparsity(self, n: int, *, resolution: float = 1e-4) -> float | None:
        """Lowest sparsity at which spGEMM beats dense GEMM (None: never).

        Binary-searches the monotone region above 50 % sparsity.
        """
        lo, hi = 0.5, 1.0
        point_hi = self.point(n, hi)
        if point_hi.speedup is None or point_hi.speedup < 1.0:
            return None
        while hi - lo > resolution:
            mid = (lo + hi) / 2
            speedup = self.point(n, mid).speedup
            if speedup is not None and speedup >= 1.0:
                hi = mid
            else:
                lo = mid
        return hi
