"""GPU specifications for the analytic performance model.

The paper measures on an RTX 3080 (Ampere).  Without that hardware, the
timing model computes kernel latencies from first-order throughput
parameters: how many scalar instructions the CUDA cores issue per second,
how many semiring pairs the SIMD² units process per second, DRAM
bandwidth, and per-kernel launch overhead.  :data:`RTX3080` mirrors the
testbed; other presets exist for sensitivity studies.
"""

from __future__ import annotations

import dataclasses

__all__ = ["GpuSpec", "RTX3080", "RTX2080TI"]


@dataclasses.dataclass(frozen=True)
class GpuSpec:
    """First-order throughput model of a GPU hosting SIMD² units."""

    name: str
    sm_count: int
    clock_ghz: float
    cuda_cores_per_sm: int
    simd2_units_per_sm: int
    #: 4×4×4 unit → 64 ⊗⊕ pairs per cycle; provisioned so one warp-level
    #: 16×16×16 mmo retires at Tensor-Core-like throughput.
    unit_pairs_per_cycle: int
    dram_bandwidth_gbs: float
    kernel_launch_overhead_s: float = 5e-6
    #: Structured-sparsity (2:4) throughput multiplier of sparse SIMD²
    #: units, as on Ampere sparse Tensor Cores.
    sparse_speedup: float = 2.0

    def __post_init__(self) -> None:
        for field_name in (
            "sm_count",
            "clock_ghz",
            "cuda_cores_per_sm",
            "simd2_units_per_sm",
            "unit_pairs_per_cycle",
            "dram_bandwidth_gbs",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")

    # ------------------------------------------------------------------
    @property
    def cuda_instr_rate(self) -> float:
        """Peak scalar instructions per second across all CUDA cores."""
        return self.sm_count * self.cuda_cores_per_sm * self.clock_ghz * 1e9

    @property
    def simd2_pair_rate(self) -> float:
        """Peak ⊗⊕ pairs per second across all SIMD² units."""
        return (
            self.sm_count
            * self.simd2_units_per_sm
            * self.unit_pairs_per_cycle
            * self.clock_ghz
            * 1e9
        )

    @property
    def dram_bytes_per_s(self) -> float:
        return self.dram_bandwidth_gbs * 1e9


#: The paper's testbed: RTX 3080 — 68 SMs @ 1.71 GHz, 128 FP32 lanes and
#: 4 matrix units per SM, 760 GB/s GDDR6X.  Each SIMD² unit is the paper's
#: 4×4×4 design retiring 64 ⊗⊕ pairs per cycle, so the 4 units sustain
#: 256 pairs/cycle/SM — 2× the per-SM scalar instruction rate, the same
#: provisioning ("same throughput as the conventional MXUs") the paper uses.
RTX3080 = GpuSpec(
    name="RTX 3080",
    sm_count=68,
    clock_ghz=1.71,
    cuda_cores_per_sm=128,
    simd2_units_per_sm=4,
    unit_pairs_per_cycle=64,
    dram_bandwidth_gbs=760.0,
)

#: Previous-generation reference (the paper notes the 3080 has twice the
#: CUDA cores of its predecessor).
RTX2080TI = GpuSpec(
    name="RTX 2080 Ti",
    sm_count=68,
    clock_ghz=1.55,
    cuda_cores_per_sm=64,
    simd2_units_per_sm=4,
    unit_pairs_per_cycle=64,
    dram_bandwidth_gbs=616.0,
)
