"""Area/performance trade-off analysis across unit designs.

The paper justifies the combined SIMD² unit twice over: it beats the
baseline MXU on *capability* (8 more instruction classes at +69 % unit
area ≈ +5 % die) and beats dedicated per-op accelerators on *efficiency*
(the farm needs ~3 units of extra silicon for the same capability).  This
module quantifies the whole design space by joining the area model with
the application timing model:

- **mxu-only** — today's hardware: matrix algorithms fall back to the
  CUDA cores (the "SIMD² w/ CUDA cores" backend),
- **simd2** — the paper's combined unit,
- **accelerator-farm** — one standalone PE per instruction (same
  performance as simd2, much more silicon).

For each design: application speedups, the extra die area it costs, and
the figure of merit (geomean speedup per mm² of added silicon) that makes
the paper's choice visible.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.hwmodel.components import BASELINE_MMA_AREA_UNITS
from repro.hwmodel.scaling import RTX3080_CHIP, ChipSpec
from repro.hwmodel.units import mma_unit_area, simd2_unit_area, standalone_total_area
from repro.timing.kernel_models import APP_SIZES, APPS, app_times
from repro.timing.specs import GpuSpec, RTX3080

__all__ = ["DesignPoint", "DESIGNS", "design_point", "design_space"]

DESIGNS = ("mxu-only", "simd2", "accelerator-farm")


@dataclasses.dataclass(frozen=True)
class DesignPoint:
    """One unit design evaluated chip-wide."""

    design: str
    extra_area_units: float  # silicon added per unit site, MMA = 1
    extra_die_mm2: float  # across all SMs, at the chip's node
    geomean_speedup: float  # over the SOTA baselines, Medium inputs

    @property
    def speedup_per_mm2(self) -> float:
        """Geomean speedup gained per mm² of added die area."""
        if self.extra_die_mm2 == 0.0:
            return math.inf if self.geomean_speedup > 1 else 0.0
        return (self.geomean_speedup - 1.0) / self.extra_die_mm2


def _geomean(values) -> float:
    return float(np.exp(np.mean(np.log(list(values)))))


def design_point(
    design: str,
    *,
    spec: GpuSpec = RTX3080,
    chip: ChipSpec = RTX3080_CHIP,
    size_index: int = 1,
) -> DesignPoint:
    """Evaluate one design across the application suite (Medium inputs)."""
    if design not in DESIGNS:
        raise ValueError(f"unknown design {design!r}; expected one of {DESIGNS}")
    times = [app_times(app, APP_SIZES[app][size_index], spec=spec) for app in APPS]
    if design == "mxu-only":
        extra_units = 0.0
        speedups = [t.speedup_cuda for t in times]
    else:
        speedups = [t.speedup_units for t in times]
        if design == "simd2":
            extra_units = simd2_unit_area(16) - mma_unit_area(16)
        else:  # accelerator-farm
            extra_units = standalone_total_area(16)
    extra_mm2 = (
        extra_units
        * BASELINE_MMA_AREA_UNITS
        * chip.mm2_per_area_unit
        * chip.sm_count
    )
    return DesignPoint(
        design=design,
        extra_area_units=extra_units,
        extra_die_mm2=extra_mm2,
        geomean_speedup=_geomean(speedups),
    )


def design_space(
    *, spec: GpuSpec = RTX3080, chip: ChipSpec = RTX3080_CHIP, size_index: int = 1
) -> list[DesignPoint]:
    """All three designs, comparable side by side."""
    return [
        design_point(design, spec=spec, chip=chip, size_index=size_index)
        for design in DESIGNS
    ]
