"""Per-opcode kernel cost model: CUDA-core backend vs SIMD² units.

This is the quantitative core of the reproduction of Figures 9 and 10.
For an ``m × n × k`` whole-matrix mmo it models the latency of

- the **CUDA-core backend** (cuASR/CUTLASS-style vectorised semiring
  kernels): ``m·n·k`` operand pairs, each costing
  ``instr_per_pair / efficiency`` issue slots,
- the **SIMD² unit backend**: the same pairs at the units' peak rate,
  derated by a tile-pipeline utilisation factor that charges the O(n²)
  fragment movement against the O(n³) compute (this is what makes small
  matrices slower and saturates speedup past ~4096², as in Figure 9).

The per-opcode CUDA costs encode the paper's own explanations:

- ``mma`` retires one FMA per pair (fused ⊗ and ⊕) — lowest speedup;
- ``addnorm`` baselines use the norm-expansion trick, which is GEMM-shaped
  and therefore also FMA-fused;
- the min/max/plus/mul rings need two dependent instructions per pair and
  run at cuASR-like efficiency;
- ``minmax``/``maxmin``/``orand`` additionally suffer the *structural
  hazard* the paper identifies: min and max (and logical and/or) issue to
  the same ALU port, halving effective throughput — these ops gain the
  most from SIMD² (up to ~15.8×).

Efficiencies are calibrated once against the Figure 9 saturation levels
and reused for every experiment.
"""

from __future__ import annotations

import dataclasses

from repro.isa.opcodes import MmoOpcode
from repro.timing.specs import GpuSpec, RTX3080

__all__ = [
    "CudaOpCost",
    "CUDA_OP_COSTS",
    "KernelTimes",
    "mmo_kernel_times",
    "cuda_mmo_time",
    "simd2_mmo_time",
    "simd2_utilization",
    "elementwise_pass_time",
    "TILE_PIPELINE_KAPPA",
]

#: Fragment-movement derate: utilisation = mnk / (mnk + κ·(mk + kn + mn)).
#: κ = 62 places the Fig-9 knee so gmean ≈ 8.7× at 1024² rising to ~10.3×
#: past 4096² (the paper's reported range).
TILE_PIPELINE_KAPPA = 62.0


@dataclasses.dataclass(frozen=True)
class CudaOpCost:
    """Issue cost of one ⊗⊕ pair on the CUDA-core backend."""

    instructions_per_pair: float
    efficiency: float
    note: str

    @property
    def slots_per_pair(self) -> float:
        """Effective issue slots consumed per operand pair."""
        return self.instructions_per_pair / self.efficiency


#: Calibrated per-opcode CUDA-core costs (see module docstring).
CUDA_OP_COSTS: dict[MmoOpcode, CudaOpCost] = {
    MmoOpcode.MMA: CudaOpCost(1, 0.62, "FMA fuses ⊗ and ⊕; CUTLASS-grade GEMM"),
    MmoOpcode.ADDNORM: CudaOpCost(1, 0.60, "norm-expansion trick is GEMM-shaped"),
    MmoOpcode.MINPLUS: CudaOpCost(2, 0.30, "two dependent ops; cuASR semiring kernel"),
    MmoOpcode.MAXPLUS: CudaOpCost(2, 0.30, "two dependent ops; cuASR semiring kernel"),
    MmoOpcode.MINMUL: CudaOpCost(2, 0.30, "two dependent ops; cuASR semiring kernel"),
    MmoOpcode.MAXMUL: CudaOpCost(2, 0.30, "two dependent ops; cuASR semiring kernel"),
    MmoOpcode.MINMAX: CudaOpCost(2, 0.24, "min and max share an ALU port (hazard)"),
    MmoOpcode.MAXMIN: CudaOpCost(2, 0.24, "min and max share an ALU port (hazard)"),
    MmoOpcode.ORAND: CudaOpCost(2, 0.24, "and/or share an ALU port (hazard)"),
}


@dataclasses.dataclass(frozen=True)
class KernelTimes:
    """Modelled latencies of one whole-matrix mmo on both backends."""

    cuda_s: float
    simd2_s: float

    @property
    def speedup(self) -> float:
        return self.cuda_s / self.simd2_s


def _pairs(m: int, n: int, k: int) -> float:
    return float(m) * float(n) * float(k)


def _mmo_dram_bytes(
    m: int, n: int, k: int, *, boolean: bool, accumulate: bool = True
) -> float:
    """DRAM traffic: stream A and B once, write D; read C only when the
    kernel accumulates into a real C operand (closures do, one-shot
    kernels like the KNN distance matrix start from the ⊕ identity)."""
    in_bytes = 1 if boolean else 2
    out_bytes = 1 if boolean else 4
    c_read = m * n * out_bytes if accumulate else 0
    return (m * k + k * n) * in_bytes + m * n * out_bytes + c_read


def simd2_utilization(m: int, n: int, k: int) -> float:
    """Tile-pipeline utilisation of the SIMD² units for an m×n×k mmo."""
    pairs = _pairs(m, n, k)
    movement = float(m) * k + float(k) * n + float(m) * n
    return pairs / (pairs + TILE_PIPELINE_KAPPA * movement)


def cuda_mmo_time(
    opcode: MmoOpcode,
    m: int,
    n: int,
    k: int,
    spec: GpuSpec = RTX3080,
    *,
    accumulate: bool = True,
) -> float:
    """Latency of the mmo on the CUDA-core (cuASR/CUTLASS) backend."""
    cost = CUDA_OP_COSTS[opcode]
    boolean = opcode.semiring.is_boolean()
    compute = _pairs(m, n, k) * cost.slots_per_pair / spec.cuda_instr_rate
    memory = (
        _mmo_dram_bytes(m, n, k, boolean=boolean, accumulate=accumulate)
        / spec.dram_bytes_per_s
    )
    return spec.kernel_launch_overhead_s + max(compute, memory)


def simd2_mmo_time(
    opcode: MmoOpcode,
    m: int,
    n: int,
    k: int,
    spec: GpuSpec = RTX3080,
    *,
    sparse_unit: bool = False,
    accumulate: bool = True,
) -> float:
    """Latency of the mmo on SIMD² units.

    ``sparse_unit=True`` models the 2:4 structured-sparse unit of the
    Figure 13 study, which doubles pair throughput.
    """
    boolean = opcode.semiring.is_boolean()
    rate = spec.simd2_pair_rate * simd2_utilization(m, n, k)
    if sparse_unit:
        rate *= spec.sparse_speedup
    compute = _pairs(m, n, k) / rate
    memory = (
        _mmo_dram_bytes(m, n, k, boolean=boolean, accumulate=accumulate)
        / spec.dram_bytes_per_s
    )
    return spec.kernel_launch_overhead_s + max(compute, memory)


def mmo_kernel_times(
    opcode: MmoOpcode,
    m: int,
    n: int,
    k: int,
    spec: GpuSpec = RTX3080,
    *,
    sparse_unit: bool = False,
) -> KernelTimes:
    """Both backends' latencies for one mmo (the Fig 9/10 microbenchmark)."""
    return KernelTimes(
        cuda_s=cuda_mmo_time(opcode, m, n, k, spec),
        simd2_s=simd2_mmo_time(opcode, m, n, k, spec, sparse_unit=sparse_unit),
    )


def elementwise_pass_time(
    elements: float, bytes_per_element: float, spec: GpuSpec = RTX3080
) -> float:
    """A bandwidth-bound element-wise CUDA kernel (e.g. convergence check).

    Reads two operands and writes a flag — dominated by streaming the
    matrices once; modelled as a memory-bound pass plus launch overhead.
    """
    return (
        spec.kernel_launch_overhead_s
        + elements * bytes_per_element / spec.dram_bytes_per_s
    )
