"""Roofline analysis of SIMD² kernels.

Section 2.2 of the paper argues from exactly this model: semiring-like
algorithms have O(n³) compute over O(n²) data, so their operational
intensity grows with size and "the number of ALUs can scale much more than
the on-chip memory bandwidth".  This module makes the argument
quantitative: per-kernel operational intensity (⊗⊕ pairs per DRAM byte),
the attainable pair rate under a spec's compute ceiling and bandwidth
roof, and which resource binds.

Used by tests to verify the cost model's compute/memory crossovers and by
the ablation bench to show where the SIMD² ceiling actually lifts the
roof (large mmo) versus where bandwidth hides it (convergence checks,
thin-k panels).
"""

from __future__ import annotations

import dataclasses
import enum

from repro.isa.opcodes import MmoOpcode
from repro.timing.costmodel import CUDA_OP_COSTS, _mmo_dram_bytes, _pairs
from repro.timing.specs import GpuSpec, RTX3080

__all__ = ["Bound", "RooflinePoint", "mmo_roofline", "crossover_intensity"]


class Bound(enum.Enum):
    COMPUTE = "compute"
    MEMORY = "memory"


@dataclasses.dataclass(frozen=True)
class RooflinePoint:
    """One kernel placed on one backend's roofline."""

    backend: str  # "cuda" | "simd2"
    intensity: float  # ⊗⊕ pairs per DRAM byte
    peak_rate: float  # pairs/s ceiling of the backend
    bandwidth: float  # bytes/s roof
    attainable_rate: float  # min(peak, intensity·bandwidth)
    bound: Bound

    @property
    def roof_fraction(self) -> float:
        """Attainable rate as a fraction of the compute ceiling."""
        return self.attainable_rate / self.peak_rate


def _place(backend: str, intensity: float, peak: float, spec: GpuSpec) -> RooflinePoint:
    bandwidth = spec.dram_bytes_per_s
    memory_rate = intensity * bandwidth
    if memory_rate < peak:
        return RooflinePoint(
            backend=backend,
            intensity=intensity,
            peak_rate=peak,
            bandwidth=bandwidth,
            attainable_rate=memory_rate,
            bound=Bound.MEMORY,
        )
    return RooflinePoint(
        backend=backend,
        intensity=intensity,
        peak_rate=peak,
        bandwidth=bandwidth,
        attainable_rate=peak,
        bound=Bound.COMPUTE,
    )


def mmo_roofline(
    opcode: MmoOpcode,
    m: int,
    n: int,
    k: int,
    spec: GpuSpec = RTX3080,
    *,
    accumulate: bool = True,
) -> tuple[RooflinePoint, RooflinePoint]:
    """Place one mmo on the CUDA-core and SIMD²-unit rooflines.

    Returns ``(cuda_point, simd2_point)``.  The CUDA backend's pair-rate
    ceiling is derated by the opcode's issue cost (FMA fusing, hazards);
    the SIMD² ceiling is the units' uniform peak.
    """
    if m <= 0 or n <= 0 or k <= 0:
        raise ValueError(f"dimensions must be positive, got {(m, n, k)}")
    boolean = opcode.semiring.is_boolean()
    pairs = _pairs(m, n, k)
    traffic = _mmo_dram_bytes(m, n, k, boolean=boolean, accumulate=accumulate)
    intensity = pairs / traffic
    cuda_peak = spec.cuda_instr_rate / CUDA_OP_COSTS[opcode].slots_per_pair
    simd2_peak = spec.simd2_pair_rate
    return (
        _place("cuda", intensity, cuda_peak, spec),
        _place("simd2", intensity, simd2_peak, spec),
    )


def crossover_intensity(
    opcode: MmoOpcode, spec: GpuSpec = RTX3080, *, backend: str = "simd2"
) -> float:
    """Operational intensity at which the backend leaves the bandwidth roof.

    Kernels below this intensity are memory-bound and gain nothing from a
    faster matrix unit — the regime the paper's convergence checks and the
    Fig 10 thin-k panels live in.
    """
    if backend == "simd2":
        peak = spec.simd2_pair_rate
    elif backend == "cuda":
        peak = spec.cuda_instr_rate / CUDA_OP_COSTS[opcode].slots_per_pair
    else:
        raise ValueError(f"unknown backend {backend!r}")
    return peak / spec.dram_bytes_per_s
