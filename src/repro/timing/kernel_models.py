"""Per-application latency models — reproduce Figures 11, 12 and 13.

For each of the paper's eight applications this module models three
implementations at the Table 4 input sizes:

- **baseline** — the state-of-the-art GPU implementation (ECL-APSP,
  CUDA-FW, CUDA MST/Kruskal, cuBool, KNN-CUDA),
- **SIMD² on CUDA cores** — the same semiring algorithm executed by the
  cuASR/CUTLASS backend (no SIMD² units),
- **SIMD² with SIMD² units** — the same algorithm on the matrix units.

The structural ingredients are principled: iteration counts come from a
closure-policy model (Leyzorek squaring vs Bellman-Ford relaxation, with
or without convergence checks) applied to workload diameter estimates;
closure iterations pay an mmo plus a bandwidth-bound convergence check;
Floyd–Warshall baselines pay one sequential kernel launch per (blocked)
pivot; Kruskal is edge-dominated at ``E log E``.  The dimensionless
*structure-efficiency* constants that derate each baseline (dependency
stalls, sync overhead, library quality) are calibrated once against the
paper's Figure 11 and documented inline.
"""

from __future__ import annotations

import dataclasses
import enum
import math

from repro.isa.opcodes import MmoOpcode
from repro.timing.costmodel import (
    CUDA_OP_COSTS,
    cuda_mmo_time,
    elementwise_pass_time,
    simd2_mmo_time,
)
from repro.timing.specs import GpuSpec, RTX3080

__all__ = [
    "ClosurePolicy",
    "AppTimes",
    "APP_SIZES",
    "APPS",
    "app_times",
    "er_diameter",
    "dag_longest_path",
    "closure_iterations",
]


class ClosurePolicy(enum.Enum):
    """Iteration policies of Section 6.4 / Figure 12."""

    LEYZOREK = "leyzorek"  # squaring + convergence check (the default)
    LEYZOREK_NOCONV = "leyzorek-noconv"  # squaring, worst-case ⌈log₂ n⌉
    BELLMAN_FORD = "bellman-ford"  # relaxation + convergence check
    BELLMAN_FORD_NOCONV = "bellman-ford-noconv"  # worst case |V|


@dataclasses.dataclass(frozen=True)
class AppTimes:
    """Modelled latencies of one application at one input size."""

    app: str
    size: int
    baseline_s: float
    simd2_cuda_s: float
    simd2_units_s: float
    iterations: int

    @property
    def speedup_units(self) -> float:
        """SIMD² with units vs the SOTA baseline (the Fig 11 bar)."""
        return self.baseline_s / self.simd2_units_s

    @property
    def speedup_cuda(self) -> float:
        """SIMD² algorithm on CUDA cores vs the SOTA baseline."""
        return self.baseline_s / self.simd2_cuda_s

    @property
    def unit_gap(self) -> float:
        """With-units vs without-units gap (paper: 4.79–6.43× for KNN)."""
        return self.simd2_cuda_s / self.simd2_units_s


#: Table 4 input sizes (Small, Medium, Large) per application.
APP_SIZES: dict[str, tuple[int, int, int]] = {
    "APSP": (4096, 8192, 16384),
    "APLP": (4096, 8192, 16384),
    "MCP": (4096, 8192, 16384),
    "MAXRP": (4096, 8192, 16384),
    "MINRP": (4096, 8192, 16384),
    "MST": (1024, 2048, 4096),
    "GTC": (1024, 4096, 8192),
    "KNN": (4096, 8192, 16384),
}

APPS: tuple[str, ...] = tuple(APP_SIZES)

# ----------------------------------------------------------------------
# workload structure models
# ----------------------------------------------------------------------

#: Average vertex degree of the Erdős–Rényi evaluation graphs.
ER_AVG_DEGREE = 16.0
#: MST workloads are sparser network graphs.
MST_AVG_DEGREE = 16.0
#: Critical-path DAG density: deeper chains in bigger instances — this is
#: what makes APLP (and MinRP) need more iterations at larger sizes and
#: reproduces their Figure 11 degradation.
DAG_EDGE_PROBABILITY = 0.005
#: KNN point dimensionality and neighbour count.
KNN_DIMS = 128
KNN_K = 20


def er_diameter(n: int, avg_degree: float = ER_AVG_DEGREE) -> int:
    """Diameter estimate of an Erdős–Rényi digraph: ln n / ln degree."""
    if n <= 2:
        return 1
    return max(2, math.ceil(math.log(n) / math.log(max(2.0, avg_degree))))


def dag_longest_path(n: int, edge_probability: float = DAG_EDGE_PROBABILITY) -> int:
    """Longest-path estimate of a random DAG: ≈ e·n·p edges."""
    return max(2, math.ceil(math.e * n * edge_probability))


def closure_iterations(policy: ClosurePolicy, diameter: int, n: int) -> int:
    """mmo iterations a closure needs under the given policy."""
    diameter = max(1, diameter)
    if policy is ClosurePolicy.LEYZOREK:
        return max(1, math.ceil(math.log2(diameter))) + 1  # +1 observes fixpoint
    if policy is ClosurePolicy.LEYZOREK_NOCONV:
        return max(1, math.ceil(math.log2(n)))
    if policy is ClosurePolicy.BELLMAN_FORD:
        return diameter + 1
    if policy is ClosurePolicy.BELLMAN_FORD_NOCONV:
        return n
    raise ValueError(f"unknown policy {policy!r}")


# ----------------------------------------------------------------------
# baseline structure efficiencies (calibrated against Figure 11)
# ----------------------------------------------------------------------

#: ECL-APSP: phase-tiled FW — well optimised but serialised over 3·(n/64)
#: dependent phases.
ECL_FW_STRUCT_EFF = 0.30
ECL_FW_TILE = 64
#: Plain CUDA-FW (MaxCP): n dependent pivots with a global sync each; its
#: min/max inner loop also rides the shared-ALU-port hazard.
CUDA_FW_MAXMIN_STRUCT_EFF = 0.14
#: Plain CUDA-FW with multiply updates (MaxRP/MinRP) — the multiplier is a
#: separate port, so the baseline is less hazard-bound.
CUDA_FW_MUL_STRUCT_EFF = 0.42
#: CUDA MST (Kruskal): time per edge through sort + union-find, largely
#: serial on a GPU.
KRUSKAL_SECONDS_PER_EDGE_LOG = 20e-9
#: cuBool dense boolean closure: effective issue slots per ⊗⊕ pair.
CUBOOL_SLOTS_PER_PAIR = 35.0
#: KNN-CUDA custom distance kernel: 3 instructions (sub, mul, add) per
#: pair at modest occupancy.
KNN_BASE_INSTR = 3.0
KNN_BASE_EFF = 0.18
#: cuASR plus-norm (no expansion trick): 2 dependent instructions.
KNN_CUASR_INSTR = 2.0
KNN_CUASR_EFF = 0.45


# ----------------------------------------------------------------------
# building blocks
# ----------------------------------------------------------------------


def _check_time(n: int, spec: GpuSpec) -> float:
    """Convergence check: stream two fp32 matrices once."""
    return elementwise_pass_time(float(n) * n, 8.0, spec)


def _closure_units_time(
    opcode: MmoOpcode, n: int, iterations: int, spec: GpuSpec, *, sparse: bool,
    convergence_checked: bool = True,
) -> float:
    per_iter = simd2_mmo_time(opcode, n, n, n, spec, sparse_unit=sparse)
    if convergence_checked:
        per_iter += _check_time(n, spec)
    return iterations * per_iter


def _closure_cuda_time(
    opcode: MmoOpcode, n: int, iterations: int, spec: GpuSpec,
    convergence_checked: bool = True,
) -> float:
    per_iter = cuda_mmo_time(opcode, n, n, n, spec)
    if convergence_checked:
        per_iter += _check_time(n, spec)
    return iterations * per_iter


def _fw_baseline_time(
    opcode: MmoOpcode, n: int, spec: GpuSpec, *, struct_eff: float, launches: int
) -> float:
    compute = cuda_mmo_time(opcode, n, n, n, spec) / struct_eff
    return compute + launches * spec.kernel_launch_overhead_s


def _policy_checks(policy: ClosurePolicy) -> bool:
    return policy in (ClosurePolicy.LEYZOREK, ClosurePolicy.BELLMAN_FORD)


# ----------------------------------------------------------------------
# the eight applications
# ----------------------------------------------------------------------


def _closure_app(
    app: str,
    opcode: MmoOpcode,
    n: int,
    diameter: int,
    policy: ClosurePolicy,
    spec: GpuSpec,
    baseline_s: float,
    *,
    sparse: bool,
) -> AppTimes:
    iterations = closure_iterations(policy, diameter, n)
    checked = _policy_checks(policy)
    return AppTimes(
        app=app,
        size=n,
        baseline_s=baseline_s,
        simd2_cuda_s=_closure_cuda_time(
            opcode, n, iterations, spec, convergence_checked=checked
        ),
        simd2_units_s=_closure_units_time(
            opcode, n, iterations, spec, sparse=sparse, convergence_checked=checked
        ),
        iterations=iterations,
    )


def app_times(
    app: str,
    size: int,
    *,
    policy: ClosurePolicy = ClosurePolicy.LEYZOREK,
    spec: GpuSpec = RTX3080,
    sparse_unit: bool = False,
) -> AppTimes:
    """Modelled latencies of one application at one input size.

    ``policy`` selects the Figure 12 algorithmic variant; ``sparse_unit``
    runs the SIMD² mmos on the 2:4 structured-sparse unit (Figure 13).
    """
    if app == "APSP":
        baseline = _fw_baseline_time(
            MmoOpcode.MINPLUS,
            size,
            spec,
            struct_eff=ECL_FW_STRUCT_EFF,
            launches=3 * max(1, size // ECL_FW_TILE),
        )
        return _closure_app(
            app, MmoOpcode.MINPLUS, size, er_diameter(size), policy, spec, baseline,
            sparse=sparse_unit,
        )
    if app == "APLP":
        baseline = _fw_baseline_time(
            MmoOpcode.MAXPLUS,
            size,
            spec,
            struct_eff=ECL_FW_STRUCT_EFF,
            launches=3 * max(1, size // ECL_FW_TILE),
        )
        return _closure_app(
            app, MmoOpcode.MAXPLUS, size, dag_longest_path(size), policy, spec,
            baseline, sparse=sparse_unit,
        )
    if app == "MCP":
        baseline = _fw_baseline_time(
            MmoOpcode.MAXMIN, size, spec,
            struct_eff=CUDA_FW_MAXMIN_STRUCT_EFF, launches=size,
        )
        return _closure_app(
            app, MmoOpcode.MAXMIN, size, er_diameter(size), policy, spec, baseline,
            sparse=sparse_unit,
        )
    if app == "MAXRP":
        baseline = _fw_baseline_time(
            MmoOpcode.MAXMUL, size, spec,
            struct_eff=CUDA_FW_MUL_STRUCT_EFF, launches=size,
        )
        return _closure_app(
            app, MmoOpcode.MAXMUL, size, er_diameter(size), policy, spec, baseline,
            sparse=sparse_unit,
        )
    if app == "MINRP":
        baseline = _fw_baseline_time(
            MmoOpcode.MINMUL, size, spec,
            struct_eff=CUDA_FW_MUL_STRUCT_EFF, launches=size,
        )
        return _closure_app(
            app, MmoOpcode.MINMUL, size, dag_longest_path(size), policy, spec,
            baseline, sparse=sparse_unit,
        )
    if app == "MST":
        edges = MST_AVG_DEGREE / 2.0 * size
        baseline = (
            edges * math.log2(max(2.0, edges)) * KRUSKAL_SECONDS_PER_EDGE_LOG
            + spec.kernel_launch_overhead_s
        )
        return _closure_app(
            app, MmoOpcode.MINMAX, size, er_diameter(size, MST_AVG_DEGREE), policy,
            spec, baseline, sparse=sparse_unit,
        )
    if app == "GTC":
        pairs = float(size) ** 3
        baseline = (
            pairs * CUBOOL_SLOTS_PER_PAIR / spec.cuda_instr_rate
            + spec.kernel_launch_overhead_s
        )
        return _closure_app(
            app, MmoOpcode.ORAND, size, er_diameter(size), policy, spec, baseline,
            sparse=sparse_unit,
        )
    if app == "KNN":
        return _knn_times(size, spec, sparse_unit=sparse_unit)
    raise ValueError(f"unknown application {app!r}; expected one of {APPS}")


def _knn_times(n: int, spec: GpuSpec, *, sparse_unit: bool) -> AppTimes:
    pairs = float(n) * n * KNN_DIMS
    # Top-k selection streams the fp32 distance matrix once.
    selection = elementwise_pass_time(float(n) * n, 4.0, spec)
    baseline = (
        pairs * KNN_BASE_INSTR / KNN_BASE_EFF / spec.cuda_instr_rate
        + spec.kernel_launch_overhead_s
        + selection
    )
    simd2_cuda = (
        pairs * KNN_CUASR_INSTR / KNN_CUASR_EFF / spec.cuda_instr_rate
        + spec.kernel_launch_overhead_s
        + selection
    )
    simd2_units = (
        simd2_mmo_time(
            MmoOpcode.ADDNORM, n, n, KNN_DIMS, spec,
            sparse_unit=sparse_unit, accumulate=False,
        )
        + selection
    )
    return AppTimes(
        app="KNN",
        size=n,
        baseline_s=baseline,
        simd2_cuda_s=simd2_cuda,
        simd2_units_s=simd2_units,
        iterations=1,
    )
