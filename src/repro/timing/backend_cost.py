"""Substrate-calibrated wall-time estimators, one per execution backend.

The GPU-analytic model in :mod:`repro.timing.costmodel` prices the
*paper's* hardware; the planner (:mod:`repro.plan`) needs something
different — a price for this repository's own execution substrates, so a
cold autotune table can still rank ``vectorized`` against ``sparse``
against ``emulate`` for a concrete ``(m, n, k, density)`` launch.  This
module is that price list, behind one interface::

    estimate(backend_name, LaunchSpec(m, n, k, density_a=..., density_b=...))
        -> seconds

Model structure follows the actual kernels:

- **vectorized** — one fused ⊗/⊕ pass over the padded operand volume:
  an output-sized term plus a per-``(i, k, j)``-pair term, with a mild
  super-linear correction once the working set outgrows cache.
- **sparse** — Gustavson spGEMM (:mod:`repro.sparse.spgemm`): CSR
  compression/densification scans every dense entry, the row loop costs
  per output row, gathering B-row slices costs per *A-nonzero*, and the
  ⊗/merge work scales with the expected product count
  ``m·n·k·density_a·density_b``.
- **emulate** — the instruction-level device emulator: a large per-pair
  constant (it replays warp programs tile by tile in Python), so it
  never wins on time; it ranks last among the built-ins by design.

Coefficients were fitted on the development container with non-negative
least squares over interleaved min-of-repeats timings of square launches
(n ∈ 64…384, density 0.005…1.0), weighted toward the sparse/dense
crossover band.  They are *relative* prices: absolute wall times on
other hosts will differ, but the planner only consumes the ordering and
the crossover location, and the autotune table refines both online.

Unknown backends estimate to :data:`UNKNOWN_COST_S` (infinite) so they
rank behind every calibrated backend; register a custom estimator with
:func:`register_estimator` to price a custom backend.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable

__all__ = [
    "CostModelError",
    "LaunchSpec",
    "UNKNOWN_COST_S",
    "estimate",
    "has_estimator",
    "register_estimator",
]

#: Price of a backend nothing knows how to estimate: ranks last, always.
UNKNOWN_COST_S = float("inf")


class CostModelError(ValueError):
    """Invalid launch spec or estimator registration."""


@dataclasses.dataclass(frozen=True)
class LaunchSpec:
    """What a backend-cost estimator needs to know about one launch.

    ``density_a``/``density_b`` are explicit-entry fractions of the two
    operands under the launch's ring (see
    :func:`repro.sparse.density.estimate_density`); dense callers leave
    them at 1.0.  ``has_accumulator`` is carried for completeness — the
    ⊕-with-C pass is an output-sized term every backend already includes.
    """

    m: int
    n: int
    k: int
    density_a: float = 1.0
    density_b: float = 1.0
    has_accumulator: bool = False

    def __post_init__(self) -> None:
        if self.m < 0 or self.n < 0 or self.k < 0:
            raise CostModelError(
                f"launch dimensions must be >= 0, got {(self.m, self.n, self.k)}"
            )
        for name, value in (("density_a", self.density_a),
                            ("density_b", self.density_b)):
            if not 0.0 <= value <= 1.0:
                raise CostModelError(
                    f"{name} must be within [0, 1], got {value}"
                )

    @property
    def pairs(self) -> int:
        """⊗/⊕ pair count of the dense computation."""
        return self.m * self.n * self.k

    @property
    def output(self) -> int:
        return self.m * self.n


# ----------------------------------------------------------------------
# Calibrated built-in estimators.  Coefficients: see module docstring.
# ----------------------------------------------------------------------

_VEC_OUTPUT_S = 3.804e-08      # per output element (pad, crop, ⊕ with C)
_VEC_PAIR_S = 1.467e-09        # per (i, k, j) pair, in-cache
_VEC_CACHE_PAIR_S = 8.832e-10  # extra per pair and per doubling past cache
_VEC_CACHE_EDGE = 192.0        # characteristic dim where the working set spills


def vectorized_cost(spec: LaunchSpec) -> float:
    """One fused vectorised pass over the padded dense volume."""
    pairs = float(spec.pairs)
    side = pairs ** (1.0 / 3.0) if pairs else 0.0
    spill = max(0.0, math.log2(side / _VEC_CACHE_EDGE)) if side else 0.0
    return (
        _VEC_OUTPUT_S * spec.output
        + _VEC_PAIR_S * pairs
        + _VEC_CACHE_PAIR_S * pairs * spill
    )


_SP_SCAN_S = 2.224e-08    # per dense entry scanned (compress + densify + ⊕)
_SP_ROW_S = 4.379e-06     # per output row of the Gustavson loop
_SP_SLICE_S = 5.340e-06   # per A-nonzero (one B-row slice gather each)
_SP_PRODUCT_S = 2.535e-08 # per explicit ⊗ product merged


def sparse_cost(spec: LaunchSpec) -> float:
    """Gustavson spGEMM: compress, row loop, slice gathers, merge."""
    scanned = spec.m * spec.k + spec.k * spec.n + spec.output
    nnz_a = spec.m * spec.k * spec.density_a
    products = spec.pairs * spec.density_a * spec.density_b
    return (
        _SP_SCAN_S * scanned
        + _SP_ROW_S * spec.m
        + _SP_SLICE_S * nnz_a
        + _SP_PRODUCT_S * products
    )


_EMU_SETUP_S = 5.0e-04  # device + panel staging
_EMU_PAIR_S = 3.0e-08   # per pair: tile-by-tile warp-program replay


def emulate_cost(spec: LaunchSpec) -> float:
    """Instruction-level emulation: an order of magnitude off the pace."""
    return _EMU_SETUP_S + _EMU_PAIR_S * spec.pairs


_ESTIMATORS: dict[str, Callable[[LaunchSpec], float]] = {
    "vectorized": vectorized_cost,
    "sparse": sparse_cost,
    "emulate": emulate_cost,
}


def register_estimator(
    name: str, fn: Callable[[LaunchSpec], float], *, replace: bool = False
) -> None:
    """Price a custom backend; mirrors backend-registry semantics."""
    if not name:
        raise CostModelError("estimator name must be non-empty")
    if name in _ESTIMATORS and not replace:
        raise CostModelError(
            f"estimator for backend {name!r} already registered "
            f"(pass replace=True to override)"
        )
    _ESTIMATORS[name] = fn


def has_estimator(name: str) -> bool:
    return name in _ESTIMATORS


def estimate(backend: str, spec: LaunchSpec) -> float:
    """Seconds the named backend is expected to spend on ``spec``.

    Unknown backends price at :data:`UNKNOWN_COST_S` — they stay
    dispatchable but rank behind every calibrated backend until an
    estimator is registered or the autotune table observes them.
    """
    fn = _ESTIMATORS.get(backend)
    if fn is None:
        return UNKNOWN_COST_S
    return float(fn(spec))
