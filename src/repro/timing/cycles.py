"""Cycle accounting: convert emulator statistics into unit cycles.

The functional emulator (:mod:`repro.hw`) reports *what* executed —
instruction and unit-op counts; this module prices that execution in
cycles, connecting the two halves of the evaluation framework the way the
paper's statistics cross-check does:

- every SIMD² arithmetic instruction has the *same* unit occupancy (the
  paper provisions all nine opcodes at MXU throughput): a 16×16×16 warp
  mmo decomposes into 64 unit passes, 4 per output subtile step,
- load/store move fragments through the shared-memory ports at a fixed
  bytes/cycle, and
- fills are register-file broadcasts.

:func:`stats_to_cycles` prices an :class:`~repro.hw.warp.ExecutionStats`;
:func:`kernel_cycle_estimate` prices a whole tiled kernel from its static
:class:`~repro.runtime.kernels.KernelStats` and agrees exactly with the
dynamic path (asserted in tests).
"""

from __future__ import annotations

import dataclasses

from repro.hw.warp import ExecutionStats
from repro.runtime.kernels import KernelStats
from repro.timing.specs import GpuSpec, RTX3080

__all__ = ["CycleCosts", "CycleBreakdown", "stats_to_cycles", "kernel_cycle_estimate"]


@dataclasses.dataclass(frozen=True)
class CycleCosts:
    """Per-event cycle prices of one SIMD² unit + its memory ports."""

    #: One 4×4×4 unit pass per cycle (64 ⊗⊕ pairs — the unit's peak rate).
    cycles_per_unit_op: float = 1.0
    #: Shared-memory port width for fragment load/store.
    shared_bytes_per_cycle: float = 128.0
    #: Register-file broadcast of an immediate.
    cycles_per_fill: float = 4.0
    #: Front-end issue of any instruction.
    issue_cycles: float = 1.0


@dataclasses.dataclass(frozen=True)
class CycleBreakdown:
    """Cycles attributed per activity."""

    compute: float
    memory: float
    fills: float
    issue: float

    @property
    def total(self) -> float:
        return self.compute + self.memory + self.fills + self.issue

    def seconds(self, spec: GpuSpec = RTX3080) -> float:
        """Wall time of one unit executing this work serially."""
        return self.total / (spec.clock_ghz * 1e9)


def stats_to_cycles(
    stats: ExecutionStats, costs: CycleCosts = CycleCosts()
) -> CycleBreakdown:
    """Price dynamically observed execution statistics."""
    compute = stats.unit_ops * costs.cycles_per_unit_op
    memory = (
        stats.shared_bytes_read + stats.shared_bytes_written
    ) / costs.shared_bytes_per_cycle
    fills = stats.fills * costs.cycles_per_fill
    issue = stats.instructions * costs.issue_cycles
    return CycleBreakdown(compute=compute, memory=memory, fills=fills, issue=issue)


def kernel_cycle_estimate(
    stats: KernelStats,
    *,
    boolean: bool = False,
    costs: CycleCosts = CycleCosts(),
) -> CycleBreakdown:
    """Price a tiled kernel statically from its tiling statistics.

    Matches :func:`stats_to_cycles` of the dynamic run exactly: the tiled
    kernel issues ``1 + 2·tiles_k`` loads, ``tiles_k`` mmos and one store
    per warp program, plus one halt.
    """
    fragment = 16 * 16
    in_bytes = 1 if boolean else 2
    out_bytes = 1 if boolean else 4
    loads_bytes = stats.warp_programs * (
        fragment * out_bytes + 2 * stats.tiles_k * fragment * in_bytes
    )
    stores_bytes = stats.store_instructions * fragment * out_bytes
    instructions = (
        stats.load_instructions
        + stats.store_instructions
        + stats.mmo_instructions
        + stats.warp_programs  # halts
    )
    return CycleBreakdown(
        compute=stats.unit_ops * costs.cycles_per_unit_op,
        memory=(loads_bytes + stores_bytes) / costs.shared_bytes_per_cycle,
        fills=0.0,
        issue=instructions * costs.issue_cycles,
    )
