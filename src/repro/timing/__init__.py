"""Analytic GPU performance model (the paper's emulation substitute)."""

from repro.timing.specs import GpuSpec, RTX2080TI, RTX3080
from repro.timing.costmodel import (
    CUDA_OP_COSTS,
    CudaOpCost,
    KernelTimes,
    TILE_PIPELINE_KAPPA,
    cuda_mmo_time,
    elementwise_pass_time,
    mmo_kernel_times,
    simd2_mmo_time,
    simd2_utilization,
)
from repro.timing.kernel_models import (
    APPS,
    APP_SIZES,
    AppTimes,
    ClosurePolicy,
    app_times,
    closure_iterations,
    dag_longest_path,
    er_diameter,
)
from repro.timing.sparse_model import SparseCrossoverModel, SparseVsDensePoint
from repro.timing.roofline import Bound, RooflinePoint, crossover_intensity, mmo_roofline
from repro.timing.tradeoff import DESIGNS, DesignPoint, design_point, design_space
from repro.timing.cycles import (
    CycleBreakdown,
    CycleCosts,
    kernel_cycle_estimate,
    stats_to_cycles,
)
from repro.timing.backend_cost import (
    CostModelError,
    LaunchSpec,
    estimate,
    has_estimator,
    register_estimator,
)

__all__ = [
    "GpuSpec",
    "RTX2080TI",
    "RTX3080",
    "CUDA_OP_COSTS",
    "CudaOpCost",
    "KernelTimes",
    "TILE_PIPELINE_KAPPA",
    "cuda_mmo_time",
    "elementwise_pass_time",
    "mmo_kernel_times",
    "simd2_mmo_time",
    "simd2_utilization",
    "APPS",
    "APP_SIZES",
    "AppTimes",
    "ClosurePolicy",
    "app_times",
    "closure_iterations",
    "dag_longest_path",
    "er_diameter",
    "SparseCrossoverModel",
    "SparseVsDensePoint",
    "CycleBreakdown",
    "CycleCosts",
    "kernel_cycle_estimate",
    "stats_to_cycles",
    "Bound",
    "RooflinePoint",
    "crossover_intensity",
    "mmo_roofline",
    "DESIGNS",
    "DesignPoint",
    "design_point",
    "design_space",
    "CostModelError",
    "LaunchSpec",
    "estimate",
    "has_estimator",
    "register_estimator",
]
