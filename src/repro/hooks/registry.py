"""Name → hook-class registry (the self-registering component idiom).

Mirrors :mod:`repro.backends.base`: hook classes register themselves with
the :func:`register_hook` decorator at definition time, and anything that
needs a hook by name (configuration files, the serving tier's per-tenant
context assembly, CLI flags) resolves it with :func:`get_hook` /
:func:`resolve_hook`.  The built-in hooks live in
:mod:`repro.hooks.builtin` and are registered on first use.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, TypeVar, overload

from repro.runtime.api import RuntimeError_

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hooks.pipeline import Hook

__all__ = ["HookError", "get_hook", "list_hooks", "register_hook", "resolve_hook"]


class HookError(RuntimeError_):
    """Unknown hook name or conflicting registration."""


_REGISTRY: "dict[str, type[Hook]]" = {}

H = TypeVar("H")


@overload
def register_hook(cls: type[H]) -> type[H]: ...
@overload
def register_hook(
    *, name: str | None = None, replace: bool = False
) -> "Callable[[type[H]], type[H]]": ...


def register_hook(cls=None, *, name=None, replace=False):
    """Class decorator: register a :class:`~repro.hooks.pipeline.Hook` type.

    Usable bare (``@register_hook``, name taken from the class's ``name``
    attribute or class name) or with arguments
    (``@register_hook(name="trace")``).  Re-registering an existing name
    requires ``replace=True`` so typos fail loudly.
    """

    def apply(hook_cls):
        hook_name = name or getattr(hook_cls, "name", "") or hook_cls.__name__
        existing = _REGISTRY.get(hook_name)
        if existing is not None and existing is not hook_cls and not replace:
            raise HookError(
                f"hook {hook_name!r} already registered to "
                f"{existing.__name__}; pass replace=True to override"
            )
        hook_cls.name = hook_name
        _REGISTRY[hook_name] = hook_cls
        return hook_cls

    return apply(cls) if cls is not None else apply


def _ensure_builtins() -> None:
    import repro.hooks.builtin  # noqa: F401 - registers on import


def get_hook(name: str) -> "type[Hook]":
    """The registered hook class for ``name`` (raises :class:`HookError`)."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise HookError(f"unknown hook {name!r}; registered: {known}") from None


def list_hooks() -> "tuple[str, ...]":
    """Registered hook names, sorted."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def resolve_hook(spec: "Hook | str") -> "Hook":
    """A hook *instance* from an instance (passed through) or registry name."""
    if isinstance(spec, str):
        return get_hook(spec)()
    return spec
