"""Built-in lifecycle hooks: the four concerns PR 2–5 hand-threaded.

Each hook is stateless (reads everything from the launch's context), so a
single shared instance serves every pipeline; :func:`~repro.hooks
.pipeline.build_pipeline` assembles them in the canonical order
validation → fault → trace.  That order *is* load-bearing:

- validation raises before the fault plan claims an ordinal, so a
  rejected launch consumes no fault-schedule slot (matching the
  pre-pipeline runtime, where ``_validate_ring_inputs`` ran at the top of
  ``mmo_tiled``);
- fault corruption rewrites ``launch.result`` before the trace hook
  reads it, and an injected *drop* raises in ``pre_execute`` before any
  record is appended — a dropped launch leaves no ``LaunchRecord``.

:class:`CacheStatsHook` is the odd one out: it is stateful (per-instance
counters), so it is not part of the default assembly — attach a fresh
instance via ``ExecutionContext(hooks=(CacheStatsHook(),))`` to meter one
context's compile traffic (the serving tier does this per tenant, where
the process-wide :class:`~repro.compile.cache.PlanCache` counters are too
coarse).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.hooks.pipeline import Hook
from repro.hooks.registry import register_hook
from repro.runtime.kernels import _validate_ring_inputs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compile.artifact import CompiledMmo
    from repro.hooks.pipeline import Launch
    from repro.runtime.context import ExecutionContext
    from repro.runtime.trace import PlanRecord, ResilienceEvent

__all__ = [
    "CacheStatsHook",
    "FaultHook",
    "TraceHook",
    "ValidationHook",
    "FAULT_HOOK",
    "TRACE_HOOK",
    "VALIDATION_HOOK",
]


@register_hook(name="validation")
class ValidationHook(Hook):
    """Reject value-poisoned operands before the backend runs.

    Delegates to :func:`repro.runtime.kernels._validate_ring_inputs` —
    still the single implementation — and honours the per-launch
    ``validate_inputs=False`` opt-out that loop entry points use when
    they deliberately iterate non-finite state (NaN fixpoints, fault
    studies).  Because this runs at ``pre_execute`` on *every* dispatch
    path, ``mmo_tiled`` and ``execute_compiled`` now validate
    identically.
    """

    def pre_execute(self, launch: "Launch") -> None:
        if launch.validate_inputs:
            _validate_ring_inputs(
                launch.opcode.semiring, launch.a, launch.b, launch.c
            )

    def launchless_pre(self, context, api, opcode, a, b, c, validate_inputs) -> None:
        # Allocation-free form: lets a validation-only pipeline dispatch
        # without building a Launch carrier (see Hook.launchless_pre).
        if validate_inputs:
            _validate_ring_inputs(opcode.semiring, a, b, c)


@register_hook(name="fault")
class FaultHook(Hook):
    """The fault-injection seam (subsumes ``_fault_begin``/``_fault_corrupt``).

    ``pre_execute`` claims the next launch ordinal from the context's
    :class:`~repro.resilience.faults.FaultPlan` (raising
    :class:`~repro.resilience.faults.InjectedFault` on scheduled drops);
    ``post_execute`` applies any scheduled output corruption.  Degenerate
    launches never ran a kernel, so they claim no ordinal — fault
    schedules address real launches only.  A launch arriving with a
    pre-reserved ordinal (a :mod:`repro.sched` graph node, numbered at
    build time) keeps it: only drop admission happens here.
    """

    def pre_execute(self, launch: "Launch") -> None:
        plan = launch.context.fault_plan
        if plan is None or launch.degenerate:
            return
        if launch.fault_ordinal is None:
            launch.fault_ordinal = plan.reserve()
        plan.admit(launch.fault_ordinal, launch.context, launch.api)

    def post_execute(self, launch: "Launch") -> None:
        plan = launch.context.fault_plan
        if plan is None or launch.fault_ordinal is None:
            return
        launch.result = plan.corrupt_output(
            launch.fault_ordinal, launch.result, launch.context, launch.api
        )


@register_hook(name="trace")
class TraceHook(Hook):
    """Record launches and resilience events on the context's trace sink.

    Subsumes the old per-entry-point ``_record_launch`` helper (one
    :class:`~repro.runtime.trace.LaunchRecord` per completed launch, with
    cycle estimate, cache-hit flag and optimiser statistics) and the
    hand-called ``trace.record_event`` sites (events now arrive through
    the pipeline's ``on_event`` channel).  ``post_compile`` additionally
    appends one :class:`~repro.runtime.trace.CompileRecord` per compile
    request, surfacing the artifact's cached
    :class:`~repro.isa.verifier.VerificationReport` (verification stats
    ride the trace without the dispatch layer re-verifying anything).
    Runs last in the built-in order so it observes the post-corruption
    result and never records a launch an earlier hook aborted.
    """

    def post_compile(
        self,
        context: "ExecutionContext",
        api: str,
        compiled: "CompiledMmo",
        cache_hit: bool,
    ) -> None:
        trace = context.trace
        if trace is None:
            return
        from repro.runtime.trace import CompileRecord

        report = compiled.verification
        if report is None:
            record = CompileRecord(
                api=api,
                backend=context.backend,
                opcode=compiled.opcode.name,
                tiles=compiled.grid,
                cache_hit=cache_hit,
            )
        else:
            effects = report.effects
            record = CompileRecord(
                api=api,
                backend=context.backend,
                opcode=compiled.opcode.name,
                tiles=compiled.grid,
                cache_hit=cache_hit,
                verified=report.ok,
                verifier_warnings=len(report.warnings),
                dead_stores=len(report.dead_stores),
                registers_used=report.register_pressure,
                shared_memory_bytes=report.shared_memory_bytes,
                deterministic=None if effects is None else effects.deterministic,
            )
        trace.record_compile(record)

    def post_execute(self, launch: "Launch") -> None:
        trace = launch.context.trace
        if trace is None:
            return
        from repro.runtime.trace import LaunchRecord
        from repro.timing.cycles import kernel_cycle_estimate  # lazy: cycles imports kernels

        opcode = launch.opcode
        semiring = opcode.semiring
        stats = launch.stats
        cycles = kernel_cycle_estimate(stats, boolean=semiring.is_boolean()).total
        trace.record(
            LaunchRecord(
                api=launch.api,
                backend=launch.context.backend,
                ring=semiring.name,
                opcode=opcode.name,
                shape=(stats.m, stats.n, stats.k),
                tiles=(stats.tiles_m, stats.tiles_n, stats.tiles_k),
                wall_time_s=launch.wall_time_s,
                kernel_stats=stats,
                cycle_estimate=cycles,
                cache_hit=launch.cache_hit,
                optimizer_removed=launch.optimizer_removed,
            )
        )

    def on_event(self, context: "ExecutionContext", event: "ResilienceEvent") -> None:
        trace = context.trace
        if trace is not None:
            trace.record_event(event)

    def on_plan(self, context: "ExecutionContext", plan: "PlanRecord") -> None:
        trace = context.trace
        if trace is not None:
            trace.record_plan(plan)


@register_hook(name="cache-stats")
class CacheStatsHook(Hook):
    """Per-pipeline compile-traffic counters (hit/miss at the compile seam).

    Unlike the process-wide :class:`~repro.compile.cache.PlanCache`
    counters, an instance attached to one context meters only that
    context's launches — the granularity the serving tier needs per
    tenant and the autotuner needs per candidate schedule.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def post_compile(
        self,
        context: "ExecutionContext",
        api: str,
        compiled: "CompiledMmo",
        cache_hit: bool,
    ) -> None:
        with self._lock:
            if cache_hit:
                self.hits += 1
            else:
                self.misses += 1

    @property
    def lookups(self) -> int:
        with self._lock:
            return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses}


#: Shared stateless instances used by the default pipeline assembly.
VALIDATION_HOOK = ValidationHook()
FAULT_HOOK = FaultHook()
TRACE_HOOK = TraceHook()
