"""Lifecycle hook pipeline for the SIMD² runtime.

One seam for every cross-cutting dispatch concern: hooks registered at
``pre_compile`` / ``post_compile`` / ``pre_execute`` / ``post_execute``
plus an ``on_event`` channel, assembled per
:class:`~repro.runtime.context.ExecutionContext` and invoked by the
runtime entry points instead of per-entry-point hand-threading.  See
:mod:`repro.hooks.pipeline` for the contract and
:mod:`repro.hooks.builtin` for the trace/fault/validation/cache-stats
hooks.
"""

from repro.hooks.builtin import (
    CacheStatsHook,
    FaultHook,
    TraceHook,
    ValidationHook,
)
from repro.hooks.pipeline import (
    EMPTY_PIPELINE,
    Hook,
    HookPipeline,
    Launch,
    build_pipeline,
    emit_event,
)
from repro.hooks.registry import (
    HookError,
    get_hook,
    list_hooks,
    register_hook,
    resolve_hook,
)

__all__ = [
    "CacheStatsHook",
    "EMPTY_PIPELINE",
    "FaultHook",
    "Hook",
    "HookError",
    "HookPipeline",
    "Launch",
    "TraceHook",
    "ValidationHook",
    "build_pipeline",
    "emit_event",
    "get_hook",
    "list_hooks",
    "register_hook",
    "resolve_hook",
]
