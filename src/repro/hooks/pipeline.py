"""Lifecycle hook pipeline: one seam for every cross-cutting launch concern.

PR 2–5 grew four cross-cutting concerns — trace recording, fault
injection, ABFT/resilience events, input validation — and each was
hand-threaded through every runtime entry point (``mmo_tiled``,
``execute_compiled``, closure, batched, split-k, multi-device bands).
Five copies of the same seam drift: ``execute_compiled`` skipped the
ring-input poison check, multi-device raised the wrong error family for a
bad accumulator.  This module replaces the copies with **one pipeline**
carried on the :class:`~repro.runtime.context.ExecutionContext`, with
hooks invoked at four fixed lifecycle points plus an event channel:

- ``pre_compile``  — before a launch shape is lowered/looked up;
- ``post_compile`` — after the artifact is resolved (carries the cache
  hit flag);
- ``pre_execute``  — after shapes are validated, before the backend
  runs (input validation, fault-plan ordinal claims live here);
- ``post_execute`` — after the backend returned (fault corruption,
  trace recording; a hook may replace ``launch.result``);
- ``on_event``     — the out-of-band channel resilience occurrences
  (retries, fallbacks, watchdog trips, checksum failures) flow through
  instead of hand-calling ``trace.record_event``;
- ``on_plan``      — the adaptive-dispatch channel: when the dispatch
  seam consults the planner (``backend="auto"``), the decision flows
  through here as a :class:`~repro.runtime.trace.PlanRecord`.

Hooks at each point fire in **registration order** (for the built-in
assembly: validation → fault → trace → custom hooks), and the same order
applies pre and post — so fault corruption always lands before the trace
record, and a raising validation/fault hook aborts the launch *before*
any record is written (no orphaned records).

Cost discipline: the pipeline is assembled once per context and cached;
each lifecycle point dispatches over a precomputed tuple of hooks that
actually override that point.  A pipeline with no execute hooks performs
**zero per-launch allocation** — :meth:`HookPipeline.begin_launch`
returns ``None`` and :meth:`HookPipeline.finish_launch` passes the
result straight through.  :func:`emit_event` constructs its
:class:`~repro.runtime.trace.ResilienceEvent` only when something
listens.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.compile.artifact import CompiledMmo
    from repro.isa.opcodes import MmoOpcode
    from repro.plan.planner import DispatchPlan
    from repro.runtime.context import ExecutionContext
    from repro.runtime.kernels import KernelStats
    from repro.runtime.trace import PlanRecord, ResilienceEvent

__all__ = [
    "Hook",
    "HookPipeline",
    "Launch",
    "build_pipeline",
    "emit_event",
]


class Hook:
    """Base class of lifecycle hooks.

    Subclass and override any subset of the five points; the pipeline
    inspects which methods are overridden at assembly time and only ever
    invokes those, so an unoverridden point costs nothing per launch.
    Hooks self-register with :func:`repro.hooks.register_hook` so they
    can be named in configuration (the serving tier / autotuner attach
    custom hooks this way); instances attach to a context via
    ``ExecutionContext(hooks=(...))``.
    """

    #: Registry name (set by :func:`repro.hooks.register_hook`).
    name: str = ""

    #: Optional allocation-free form of ``pre_execute`` with signature
    #: ``(context, api, opcode, a, b, c, validate_inputs) -> None``.  When
    #: *every* pre-execute hook in a pipeline provides one and nothing
    #: listens on ``post_execute``, :meth:`HookPipeline.begin_launch` runs
    #: these directly and skips the :class:`Launch` allocation — this is
    #: how the default (validation-only) pipeline keeps the hot path
    #: allocation-free.  Hooks that need cross-point state (fault
    #: ordinals) leave it ``None``.
    launchless_pre = None

    def pre_compile(
        self,
        context: "ExecutionContext",
        api: str,
        opcode: "MmoOpcode",
        m: int,
        n: int,
        k: int,
        has_accumulator: bool,
    ) -> None:
        """Before a launch shape is lowered or served from the plan cache."""

    def post_compile(
        self,
        context: "ExecutionContext",
        api: str,
        compiled: "CompiledMmo",
        cache_hit: bool,
    ) -> None:
        """After the compiled artifact is resolved (``cache_hit`` tells how)."""

    def pre_execute(self, launch: "Launch") -> None:
        """After shape validation, before the backend executes.

        May raise to abort the launch (validation rejections, injected
        drops); nothing has been recorded yet at this point.
        """

    def post_execute(self, launch: "Launch") -> None:
        """After the backend returned; may replace ``launch.result``."""

    def on_event(self, context: "ExecutionContext", event: "ResilienceEvent") -> None:
        """An out-of-band resilience occurrence under this context."""

    def on_plan(self, context: "ExecutionContext", plan: "PlanRecord") -> None:
        """An adaptive-dispatch decision made at the dispatch seam."""


class Launch:
    """Mutable per-launch carrier threaded through the execute hooks.

    One ``Launch`` spans ``pre_execute`` → backend → ``post_execute``;
    hooks communicate across the two points by writing attributes
    (``FaultHook`` stores its claimed ordinal in ``fault_ordinal``,
    custom hooks may use the free-form ``notes`` slot).  ``result``,
    ``stats`` and ``wall_time_s`` are populated before ``post_execute``
    fires; a post hook that reassigns ``result`` (fault corruption)
    changes what the caller receives.

    ``degenerate`` marks empty-output fast paths (``m == 0`` or
    ``n == 0``): no backend runs, fault ordinals are not claimed, and
    the trace records ``wall_time_s = 0.0`` with ``cache_hit = None`` —
    exactly the pre-pipeline behaviour.
    """

    __slots__ = (
        "context",
        "api",
        "opcode",
        "a",
        "b",
        "c",
        "validate_inputs",
        "degenerate",
        "cache_hit",
        "optimizer_removed",
        "result",
        "stats",
        "wall_time_s",
        "fault_ordinal",
        "notes",
    )

    def __init__(
        self,
        context: "ExecutionContext",
        api: str,
        opcode: "MmoOpcode",
        a: "np.ndarray",
        b: "np.ndarray",
        c: "np.ndarray | None",
        *,
        validate_inputs: bool = True,
        degenerate: bool = False,
        cache_hit: bool | None = None,
        optimizer_removed: int = 0,
        fault_ordinal: int | None = None,
    ):
        self.context = context
        self.api = api
        self.opcode = opcode
        self.a = a
        self.b = b
        self.c = c
        self.validate_inputs = validate_inputs
        self.degenerate = degenerate
        self.cache_hit = cache_hit
        self.optimizer_removed = optimizer_removed
        self.result: "np.ndarray | None" = None
        self.stats: "KernelStats | None" = None
        self.wall_time_s: float = 0.0
        self.fault_ordinal: int | None = fault_ordinal
        self.notes: dict | None = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Launch(api={self.api!r}, opcode={self.opcode.name}, "
            f"degenerate={self.degenerate})"
        )


def _overriders(hooks: "tuple[Hook, ...]", point: str) -> "tuple[Hook, ...]":
    """The hooks that actually override ``point``, in registration order."""
    base = getattr(Hook, point)
    return tuple(h for h in hooks if getattr(type(h), point, base) is not base)


class HookPipeline:
    """An ordered set of hooks, pre-sorted by lifecycle point.

    Immutable once built; :func:`build_pipeline` assembles the built-in
    hooks a context's fields imply (validation always, fault when a
    ``fault_plan`` is set, trace when a ``trace`` is set) followed by the
    context's custom ``hooks`` tuple.
    """

    __slots__ = (
        "hooks",
        "_pre_compile",
        "_post_compile",
        "_pre_execute",
        "_post_execute",
        "_on_event",
        "_on_plan",
        "_launchless",
    )

    def __init__(self, hooks: Iterable[Hook] = ()):
        self.hooks = tuple(hooks)
        self._pre_compile = _overriders(self.hooks, "pre_compile")
        self._post_compile = _overriders(self.hooks, "post_compile")
        self._pre_execute = _overriders(self.hooks, "pre_execute")
        self._post_execute = _overriders(self.hooks, "post_execute")
        self._on_event = _overriders(self.hooks, "on_event")
        self._on_plan = _overriders(self.hooks, "on_plan")
        # Allocation-free fast path: usable only when no hook needs the
        # Launch carrier (see Hook.launchless_pre).
        launchless = tuple(h.launchless_pre for h in self._pre_execute)
        self._launchless = (
            launchless
            if not self._post_execute and all(fn is not None for fn in launchless)
            else None
        )

    # ------------------------------------------------------------------
    # compile seam
    # ------------------------------------------------------------------
    def pre_compile(
        self,
        context: "ExecutionContext",
        api: str,
        opcode: "MmoOpcode",
        m: int,
        n: int,
        k: int,
        has_accumulator: bool,
    ) -> None:
        for hook in self._pre_compile:
            hook.pre_compile(context, api, opcode, m, n, k, has_accumulator)

    def post_compile(
        self,
        context: "ExecutionContext",
        api: str,
        compiled: "CompiledMmo",
        cache_hit: bool,
    ) -> None:
        for hook in self._post_compile:
            hook.post_compile(context, api, compiled, cache_hit)

    # ------------------------------------------------------------------
    # execute seam
    # ------------------------------------------------------------------
    def begin_launch(
        self,
        context: "ExecutionContext",
        api: str,
        opcode: "MmoOpcode",
        a: "np.ndarray",
        b: "np.ndarray",
        c: "np.ndarray | None",
        *,
        validate_inputs: bool = True,
        degenerate: bool = False,
        cache_hit: bool | None = None,
        optimizer_removed: int = 0,
        fault_ordinal: int | None = None,
    ) -> "Launch | None":
        """Open one launch: fire ``pre_execute`` and return the carrier.

        Returns ``None`` — with **no allocation** — when every
        pre-execute hook offers a ``launchless_pre`` form and nothing
        listens post-execute (true for the default validation-only
        pipeline, and trivially for an empty one); callers pass that
        straight to :meth:`finish_launch`, which then costs one
        ``is None`` check.  A raising pre hook (validation, injected
        drop) propagates before anything is recorded.
        """
        launchless = self._launchless
        if launchless is not None:
            for fn in launchless:
                fn(context, api, opcode, a, b, c, validate_inputs)
            return None
        launch = Launch(
            context,
            api,
            opcode,
            a,
            b,
            c,
            validate_inputs=validate_inputs,
            degenerate=degenerate,
            cache_hit=cache_hit,
            optimizer_removed=optimizer_removed,
            fault_ordinal=fault_ordinal,
        )
        for hook in self._pre_execute:
            hook.pre_execute(launch)
        return launch

    def finish_launch(
        self,
        launch: "Launch | None",
        result: "np.ndarray",
        stats: "KernelStats",
        wall_time_s: float,
    ) -> "np.ndarray":
        """Close one launch: fire ``post_execute`` and return the (possibly
        hook-replaced) result."""
        if launch is None:
            return result
        launch.result = result
        launch.stats = stats
        launch.wall_time_s = wall_time_s
        for hook in self._post_execute:
            hook.post_execute(launch)
        return launch.result

    # ------------------------------------------------------------------
    # event channel
    # ------------------------------------------------------------------
    @property
    def wants_events(self) -> bool:
        """Whether anything listens on ``on_event`` (guards event building)."""
        return bool(self._on_event)

    def emit(self, context: "ExecutionContext", event: "ResilienceEvent") -> None:
        for hook in self._on_event:
            hook.on_event(context, event)

    @property
    def wants_plans(self) -> bool:
        """Whether anything listens on ``on_plan`` (guards record building)."""
        return bool(self._on_plan)

    def emit_plan(self, context: "ExecutionContext", plan: "PlanRecord") -> None:
        for hook in self._on_plan:
            hook.on_plan(context, plan)

    # ------------------------------------------------------------------
    def __bool__(self) -> bool:
        return bool(self.hooks)

    def __len__(self) -> int:
        return len(self.hooks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = ", ".join(h.name or type(h).__name__ for h in self.hooks)
        return f"HookPipeline([{names}])"


#: The shared no-op pipeline (zero hooks, zero per-launch cost).
EMPTY_PIPELINE = HookPipeline()


def build_pipeline(context: "ExecutionContext") -> HookPipeline:
    """Assemble the pipeline a context's fields imply.

    Built-in order (also the firing order at every point): validation →
    budget (only when ``context.budget`` is set; after validation so a
    rejected launch spends no budget, and still launchless so a
    budget-only context keeps the allocation-free fast path) → fault
    (only when ``context.fault_plan`` is set) → trace (only when
    ``context.trace`` is set) → breaker (only when ``context.breakers``
    is set) → autotune (only for adaptive contexts: ``backend="auto"``
    or an explicit ``autotune=`` table, so plain static contexts keep
    the allocation-free fast path) → the context's custom ``hooks``
    (instances or registry names, see :func:`repro.hooks.register_hook`).
    """
    from repro.hooks.builtin import FAULT_HOOK, TRACE_HOOK, VALIDATION_HOOK
    from repro.hooks.registry import resolve_hook

    hooks: list[Hook] = [VALIDATION_HOOK]
    if getattr(context, "budget", None) is not None:
        # Lazy: repro.resilience sits above repro.hooks in the layering.
        from repro.resilience.budget import BUDGET_HOOK

        hooks.append(BUDGET_HOOK)
    if context.fault_plan is not None:
        hooks.append(FAULT_HOOK)
    if context.trace is not None:
        hooks.append(TRACE_HOOK)
    if getattr(context, "breakers", None) is not None:
        # Lazy: repro.resilience sits above repro.hooks in the layering.
        from repro.resilience.breaker import BREAKER_HOOK

        hooks.append(BREAKER_HOOK)
    if getattr(context, "autotune", None) is not None or _is_adaptive(context):
        # Lazy: repro.plan sits above repro.hooks in the layering.
        from repro.plan.autotune import AutotuneHook

        hooks.append(AutotuneHook())
    for spec in getattr(context, "hooks", ()):
        hooks.append(resolve_hook(spec))
    return HookPipeline(hooks)


def _is_adaptive(context: "ExecutionContext") -> bool:
    """Whether the context's backend is a planning backend (``"auto"``)."""
    from repro.backends.base import BackendError, get_backend

    try:
        impl = get_backend(context.backend)
    except BackendError:
        return False  # resolve_context will raise the canonical error
    return getattr(impl, "select_backend", None) is not None


def emit_event(
    context: "ExecutionContext",
    *,
    kind: str,
    api: str,
    detail: str,
    backend: str | None = None,
    attempt: int = 0,
    device_index: int | None = None,
    launch_ordinal: int | None = None,
) -> None:
    """Emit one :class:`~repro.runtime.trace.ResilienceEvent` through the
    context's ``on_event`` channel.

    This is the single seam the resilience layer (fault plans, retry and
    fallback policies, ABFT verification, watchdogs, the multi-device
    partitioner) reports occurrences through; ``TraceHook`` forwards the
    events to the context's :class:`~repro.runtime.trace.Trace`, exactly
    where ``trace.record_event`` calls used to put them.  Free when no
    hook listens — the event object is never constructed.

    ``backend`` defaults to the context's backend; recovery paths that
    attempt a *different* backend (fallback chains) pass it explicitly.
    """
    pipeline = context.pipeline
    if not pipeline._on_event:
        return
    from repro.runtime.trace import ResilienceEvent

    pipeline.emit(
        context,
        ResilienceEvent(
            kind=kind,
            api=api,
            backend=backend if backend is not None else context.backend,
            detail=detail,
            attempt=attempt,
            device_index=device_index,
            launch_ordinal=launch_ordinal,
        ),
    )
