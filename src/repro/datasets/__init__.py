"""Synthetic workload generators (graphs and point clouds)."""

from repro.datasets.graphs import (
    GraphSpec,
    boolean_graph,
    capacity_graph,
    dag_distance_graph,
    distance_graph,
    random_dag_mask,
    random_digraph_mask,
    reliability_graph,
    undirected_distance_graph,
    grid_distance_graph,
    small_world_distance_graph,
    scale_free_mask,
)
from repro.datasets.points import PointCloudSpec, gaussian_clusters, uniform_points

__all__ = [
    "GraphSpec",
    "boolean_graph",
    "capacity_graph",
    "dag_distance_graph",
    "distance_graph",
    "random_dag_mask",
    "random_digraph_mask",
    "reliability_graph",
    "undirected_distance_graph",
    "grid_distance_graph",
    "small_world_distance_graph",
    "scale_free_mask",
    "PointCloudSpec",
    "gaussian_clusters",
    "uniform_points",
]
