"""Synthetic point clouds for the KNN / K-means workloads."""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["PointCloudSpec", "gaussian_clusters", "uniform_points"]


@dataclasses.dataclass(frozen=True)
class PointCloudSpec:
    """Parameters of a synthetic point-cloud workload."""

    num_points: int
    dimensions: int = 16
    num_clusters: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_points <= 0:
            raise ValueError(f"num_points must be positive, got {self.num_points}")
        if self.dimensions <= 0:
            raise ValueError(f"dimensions must be positive, got {self.dimensions}")
        if self.num_clusters <= 0:
            raise ValueError(f"num_clusters must be positive, got {self.num_clusters}")


def _quantize_fp16_grid(values: np.ndarray) -> np.ndarray:
    """Snap coordinates to a 1/16 grid (exactly representable in fp16)."""
    return np.round(values * 16.0) / 16.0


def gaussian_clusters(spec: PointCloudSpec) -> tuple[np.ndarray, np.ndarray]:
    """Clustered points plus their ground-truth labels.

    Returns ``(points, labels)`` with points of shape
    ``(num_points, dimensions)``; coordinates are fp16-exact so distance
    computations match bit-for-bit across backends.
    """
    rng = np.random.default_rng(spec.seed)
    centers = rng.uniform(-8.0, 8.0, size=(spec.num_clusters, spec.dimensions))
    labels = rng.integers(0, spec.num_clusters, size=spec.num_points)
    points = centers[labels] + rng.normal(0.0, 1.0, size=(spec.num_points, spec.dimensions))
    return _quantize_fp16_grid(points), labels


def uniform_points(spec: PointCloudSpec) -> np.ndarray:
    """Uniform points in [-8, 8]^d on the fp16-exact grid."""
    rng = np.random.default_rng(spec.seed)
    return _quantize_fp16_grid(
        rng.uniform(-8.0, 8.0, size=(spec.num_points, spec.dimensions))
    )
