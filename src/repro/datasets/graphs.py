"""Synthetic graph generators for the benchmark applications.

The paper evaluates on size-parameterised inputs (Table 4).  These
generators produce adjacency matrices in the encodings the semiring
algorithms expect:

- *distance* graphs for min-plus / max-plus: missing edge = ``+inf`` /
  ``-inf``, diagonal = 0;
- *reliability* graphs for min-mul / max-mul: edge weights in (0, 1],
  missing edge = the ⊕ identity, diagonal = 1;
- *capacity* graphs for max-min / min-max;
- *boolean* graphs for or-and.

Weights are drawn from small grids exactly representable in fp16 so the
fp16 datapath is lossless on these inputs (the property the paper relies
on when validating SIMD²-ized programs against fp32 baselines).
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = [
    "GraphSpec",
    "random_digraph_mask",
    "random_dag_mask",
    "distance_graph",
    "dag_distance_graph",
    "reliability_graph",
    "capacity_graph",
    "boolean_graph",
    "undirected_distance_graph",
    "grid_distance_graph",
    "small_world_distance_graph",
    "scale_free_mask",
]

#: Weight grid: multiples of 1/8 are exact in fp16 and sums of a few
#: thousand of them are exact in fp32.
_WEIGHT_STEP = 0.125


@dataclasses.dataclass(frozen=True)
class GraphSpec:
    """Parameters of a synthetic graph workload."""

    num_vertices: int
    edge_probability: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_vertices <= 0:
            raise ValueError(f"num_vertices must be positive, got {self.num_vertices}")
        if not (0.0 <= self.edge_probability <= 1.0):
            raise ValueError(
                f"edge_probability must be in [0, 1], got {self.edge_probability}"
            )


def _rng(spec: GraphSpec) -> np.random.Generator:
    return np.random.default_rng(spec.seed)


def random_digraph_mask(spec: GraphSpec) -> np.ndarray:
    """Erdős–Rényi directed edge mask (no self loops)."""
    rng = _rng(spec)
    mask = rng.random((spec.num_vertices, spec.num_vertices)) < spec.edge_probability
    np.fill_diagonal(mask, False)
    return mask


def random_dag_mask(spec: GraphSpec) -> np.ndarray:
    """Random DAG mask: edges only from lower to higher vertex index."""
    return np.triu(random_digraph_mask(spec), k=1)


def _random_weights(spec: GraphSpec, low: float, high: float) -> np.ndarray:
    """fp16-exact weights on a 1/8 grid in [low, high]."""
    rng = np.random.default_rng(spec.seed + 1)
    steps = int(round((high - low) / _WEIGHT_STEP))
    draws = rng.integers(0, steps + 1, size=(spec.num_vertices, spec.num_vertices))
    return low + draws * _WEIGHT_STEP


def distance_graph(spec: GraphSpec) -> np.ndarray:
    """Min-plus adjacency: weights in [1, 9], +inf for non-edges, 0 diagonal."""
    mask = random_digraph_mask(spec)
    weights = _random_weights(spec, 1.0, 9.0)
    adj = np.where(mask, weights, np.inf)
    np.fill_diagonal(adj, 0.0)
    return adj


def dag_distance_graph(spec: GraphSpec) -> np.ndarray:
    """Max-plus adjacency of a DAG (for critical paths): -inf non-edges."""
    mask = random_dag_mask(spec)
    weights = _random_weights(spec, 1.0, 9.0)
    adj = np.where(mask, weights, -np.inf)
    np.fill_diagonal(adj, 0.0)
    return adj


def reliability_graph(spec: GraphSpec, *, maximize: bool = True) -> np.ndarray:
    """Mul-ring adjacency: success probabilities on edges.

    ``maximize=True`` targets max-mul (maximum reliability path): non-edges
    carry reliability 0 — with non-negative weights, 0 is absorbed by both
    × and max, avoiding the IEEE ``(-inf)·(-inf) = +inf`` trap — and the
    diagonal is 1 (a vertex reaches itself with certainty).
    ``maximize=False`` targets min-mul on a DAG: non-edges carry ``+inf``
    (which loses every min) and edges point from lower to higher index.
    """
    mask = random_digraph_mask(spec) if maximize else random_dag_mask(spec)
    rng = np.random.default_rng(spec.seed + 2)
    # Probabilities on a 1/64 grid in (0.5, 1.0]: fp16-exact, products of a
    # few stay well inside fp16/fp32 range.
    weights = 0.5 + rng.integers(1, 33, size=mask.shape) / 64.0
    identity = 0.0 if maximize else np.inf
    adj = np.where(mask, weights, identity)
    np.fill_diagonal(adj, 1.0)
    return adj


def capacity_graph(spec: GraphSpec, *, maximize: bool = True) -> np.ndarray:
    """Max-min (capacity) or min-max (bottleneck/MST) adjacency.

    ``maximize=True``: max-min encoding — non-edges carry ``-inf``
    capacity, the diagonal carries ``+inf`` (a vertex reaches itself with
    unbounded capacity).  ``maximize=False``: min-max encoding — non-edges
    ``+inf``, diagonal ``-inf``.
    """
    mask = random_digraph_mask(spec)
    mask = mask | mask.T  # capacity/bottleneck problems use undirected graphs
    weights = np.triu(_random_weights(spec, 1.0, 9.0), k=1)
    weights = weights + weights.T
    if maximize:
        adj = np.where(mask, weights, -np.inf)
        np.fill_diagonal(adj, np.inf)
    else:
        adj = np.where(mask, weights, np.inf)
        np.fill_diagonal(adj, -np.inf)
    return adj


def undirected_distance_graph(spec: GraphSpec, *, connected: bool = True) -> np.ndarray:
    """Symmetric min-plus adjacency with distinct edge weights (for MST).

    Distinct weights make the minimum spanning tree unique, which keeps
    baseline-vs-SIMD² comparisons exact.  ``connected=True`` adds a random
    spanning cycle so a spanning *tree* (not forest) exists.
    """
    n = spec.num_vertices
    mask = random_digraph_mask(spec)
    mask = np.triu(mask | mask.T, k=1)
    if connected and n > 1:
        order = np.random.default_rng(spec.seed + 3).permutation(n)
        for i in range(n - 1):
            u, v = sorted((order[i], order[i + 1]))
            mask[u, v] = True
    # Distinct weights: enumerate upper-triangle edges on the 1/8 grid.
    adj = np.full((n, n), np.inf)
    edge_ids = np.flatnonzero(mask)
    for rank, flat in enumerate(edge_ids):
        u, v = divmod(int(flat), n)
        weight = 1.0 + rank * _WEIGHT_STEP
        adj[u, v] = adj[v, u] = weight
    np.fill_diagonal(adj, 0.0)
    return adj


def boolean_graph(spec: GraphSpec, *, reflexive: bool = True) -> np.ndarray:
    """Boolean adjacency for or-and transitive closure."""
    adj = random_digraph_mask(spec)
    if reflexive:
        np.fill_diagonal(adj, True)
    return adj


def grid_distance_graph(rows: int, cols: int) -> np.ndarray:
    """Unit-weight 4-neighbour grid, min-plus encoded.

    Vertex ``(r, c)`` is index ``r*cols + c``.  Shortest-path distances on
    this graph are Manhattan distances — a closed-form oracle the tests
    use to validate closures on a structured (high-diameter) topology,
    the opposite regime from Erdős–Rényi graphs.
    """
    if rows <= 0 or cols <= 0:
        raise ValueError(f"grid must be positive-sized, got {rows}x{cols}")
    n = rows * cols
    adj = np.full((n, n), np.inf)
    np.fill_diagonal(adj, 0.0)
    for r in range(rows):
        for c in range(cols):
            here = r * cols + c
            if c + 1 < cols:
                adj[here, here + 1] = adj[here + 1, here] = 1.0
            if r + 1 < rows:
                adj[here, here + cols] = adj[here + cols, here] = 1.0
    return adj


def small_world_distance_graph(
    spec: GraphSpec, *, neighbours: int = 2, rewire_probability: float = 0.1
) -> np.ndarray:
    """Watts–Strogatz-style small-world graph, min-plus encoded.

    A ring lattice where each vertex connects to its ``neighbours`` nearest
    ring neighbours on each side, with every edge rewired to a random
    target with ``rewire_probability`` — low diameter with high clustering,
    the regime where convergence-checked closures shine.
    """
    if neighbours <= 0:
        raise ValueError(f"neighbours must be positive, got {neighbours}")
    if not (0.0 <= rewire_probability <= 1.0):
        raise ValueError(
            f"rewire_probability must be in [0, 1], got {rewire_probability}"
        )
    n = spec.num_vertices
    rng = np.random.default_rng(spec.seed + 4)
    weights = _random_weights(spec, 1.0, 9.0)
    adj = np.full((n, n), np.inf)
    np.fill_diagonal(adj, 0.0)
    for u in range(n):
        for offset in range(1, neighbours + 1):
            v = (u + offset) % n
            if rng.random() < rewire_probability:
                candidates = [w for w in range(n) if w != u]
                v = int(rng.choice(candidates))
            weight = weights[min(u, v), max(u, v)]
            adj[u, v] = min(adj[u, v], weight)
            adj[v, u] = min(adj[v, u], weight)
    return adj


def scale_free_mask(spec: GraphSpec, *, attachment: int = 2) -> np.ndarray:
    """Barabási–Albert preferential-attachment edge mask (undirected).

    Heavy-tailed degree distributions stress the sparse substrate: a few
    dense rows among many near-empty ones — the access pattern spGEMM
    accelerators are designed around.
    """
    if attachment <= 0:
        raise ValueError(f"attachment must be positive, got {attachment}")
    n = spec.num_vertices
    if n <= attachment:
        raise ValueError(
            f"need more than {attachment} vertices, got {n}"
        )
    rng = np.random.default_rng(spec.seed + 5)
    mask = np.zeros((n, n), dtype=bool)
    # Seed clique of `attachment + 1` vertices.
    for u in range(attachment + 1):
        for v in range(u + 1, attachment + 1):
            mask[u, v] = mask[v, u] = True
    degrees = mask.sum(axis=1).astype(np.float64)
    for new in range(attachment + 1, n):
        weights = degrees[:new] / degrees[:new].sum()
        targets = rng.choice(new, size=attachment, replace=False, p=weights)
        for target in targets:
            mask[new, target] = mask[target, new] = True
            degrees[target] += 1
        degrees[new] = attachment
    return mask
