"""Shared tiling/padding plan all dense backends execute against.

Padding to 16×16 tiles is backend-independent policy: operands are cast to
the accumulate dtype, padded along ``k`` with the ring's absorbing pair
(``k_pad_a ⊗ k_pad_b == ⊕-identity``), the accumulator padded with the ⊕
identity, and a degenerate ``k == 0`` turned into one fully-absorbed inner
tile step.  Centralising the plan here keeps every backend's tile grid —
and therefore its :class:`~repro.runtime.kernels.KernelStats` — identical
by construction, which is what the paper's statistics cross-check between
backends relies on.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.compile.artifact import grid_for
from repro.compile.lower import resolve_opcode
from repro.core.semiring import Semiring
from repro.core.tiles import TILE, ceil_div, pad_to_tiles
from repro.runtime.kernels import KernelStats

__all__ = ["TilePlan", "grid_for", "partition_bands", "plan_mmo", "resolve_opcode"]


@dataclasses.dataclass(frozen=True)
class TilePlan:
    """Padded operands plus the tile grid they imply."""

    a_pad: np.ndarray  # (tiles_m*16, tiles_k*16) in the output dtype
    b_pad: np.ndarray  # (tiles_k*16, tiles_n*16)
    c_pad: np.ndarray  # (tiles_m*16, tiles_n*16)
    stats: KernelStats

    @property
    def tiles_m(self) -> int:
        return self.stats.tiles_m

    @property
    def tiles_n(self) -> int:
        return self.stats.tiles_n

    @property
    def tiles_k(self) -> int:
        return self.stats.tiles_k


def plan_mmo(
    semiring: Semiring,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None,
) -> TilePlan:
    """Pad validated ``(m, k) × (k, n) [⊕ (m, n)]`` operands to full tiles.

    Callers must have validated shapes and ruled out empty outputs
    (``m > 0`` and ``n > 0``); ``k == 0`` is handled here by materialising
    one tile of absorbing inner steps, so every output-tile program runs
    at least one mmo instruction (the ``tiles_k`` convention of
    :class:`~repro.runtime.kernels.KernelStats`).
    """
    m, k = a.shape
    n = b.shape[1]
    a_pad = pad_to_tiles(a.astype(semiring.output_dtype), semiring.k_pad_a)
    b_pad = pad_to_tiles(b.astype(semiring.output_dtype), semiring.k_pad_b)
    c_full = (
        semiring.full((m, n)) if c is None else np.asarray(c, semiring.output_dtype)
    )
    c_pad = pad_to_tiles(c_full, semiring.oplus_identity)
    if k == 0:
        a_pad = np.full(
            (c_pad.shape[0], TILE), semiring.k_pad_a, semiring.output_dtype
        )
        b_pad = np.full(
            (TILE, c_pad.shape[1]), semiring.k_pad_b, semiring.output_dtype
        )

    tiles_m = a_pad.shape[0] // TILE
    tiles_k = a_pad.shape[1] // TILE
    tiles_n = b_pad.shape[1] // TILE
    stats = KernelStats(m, n, k, tiles_m, tiles_n, tiles_k)
    return TilePlan(a_pad=a_pad, b_pad=b_pad, c_pad=c_pad, stats=stats)


def partition_bands(
    extent: int, parts: int, *, tile: int = 1
) -> list[tuple[int, int]]:
    """Split ``[0, extent)`` into ``parts`` contiguous half-open bands.

    The one banding policy every partitioned dispatch shares: split-k
    partitions the inner dimension (``tile=1``) and the multi-device /
    banded-closure paths partition output rows on 16-row tile boundaries
    (``tile=TILE``).  Bands are floor-balanced — sizes differ by at most
    one ``tile`` unit — and returned in order, covering the extent
    exactly.  Bands may be empty (``start == stop``) when ``parts``
    exceeds the number of ``tile`` units; callers skip those rather than
    launching zero-width kernels.
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    units = ceil_div(extent, tile) if extent else 0
    bounds = [min(extent, (i * units // parts) * tile) for i in range(parts + 1)]
    return [(bounds[i], bounds[i + 1]) for i in range(parts)]


# grid_for and resolve_opcode moved to repro.compile (the cache key and
# the artifact are derived from them); re-exported above for compat.
