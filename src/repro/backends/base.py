"""Backend protocol + registry: the single dispatch seam for mmo launches.

The paper's point (Sections 5.1, 6.6) is that one ``D = C ⊕ (A ⊗ B)``
abstraction serves many execution substrates — CUDA cores, SIMD² units,
sparse spGEMM datapaths.  This module is that abstraction's seam, and it
is split the way the paper's programming model is: a backend **compiles**
a launch shape into an immutable :class:`~repro.compile.artifact
.CompiledMmo` once, then **executes** that artifact against any number of
validated operand sets.  Every runtime entry point reaches the backend
through :func:`get_backend`, compiles through the context's
:class:`~repro.compile.cache.PlanCache`, and replays the artifact — so a
closure loop relaunching one shape lowers its warp program exactly once.

``run_mmo`` survives as a thin compile-then-execute compat shim (both on
:class:`MmoBackend` for built-ins and as the fallback the dispatch layer
uses for legacy backends that registered only ``run_mmo``).

Built-in backends (``vectorized``, ``emulate``, ``sparse``) are imported
lazily on first registry access to keep ``import repro`` cheap and the
dependency direction one-way (backends import runtime/compile, never the
reverse at module level).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.runtime.api import RuntimeError_

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.compile.artifact import CompiledMmo
    from repro.isa.opcodes import MmoOpcode
    from repro.runtime.context import ExecutionContext
    from repro.runtime.kernels import KernelStats

__all__ = [
    "Backend",
    "BackendError",
    "MmoBackend",
    "get_backend",
    "list_backends",
    "register_backend",
]


class BackendError(RuntimeError_):
    """Unknown or conflicting backend registration/lookup."""


@runtime_checkable
class Backend(Protocol):
    """One way of executing a whole-matrix mmo, split compile/execute.

    ``compile`` receives a launch shape and returns the immutable
    artifact; ``execute`` receives the artifact plus operands that the
    dispatch layer has already validated (2-D, inner dimensions matching,
    ``C`` of shape ``(m, n)`` when present, ``m > 0`` and ``n > 0``, tile
    grid matching the artifact) and must return the ``(m, n)`` result in
    the ring's output dtype together with the launch's
    :class:`~repro.runtime.kernels.KernelStats`.  ``run_mmo`` is the
    single-shot compat path (compile + execute in one call); backends
    that only provide ``run_mmo`` still dispatch, bypassing the plan
    cache.
    """

    name: str

    def compile(
        self,
        opcode: "MmoOpcode",
        m: int,
        n: int,
        k: int,
        *,
        has_accumulator: bool,
        context: "ExecutionContext | None",
    ) -> "CompiledMmo": ...

    def execute(
        self,
        compiled: "CompiledMmo",
        a: "np.ndarray",
        b: "np.ndarray",
        c: "np.ndarray | None",
        *,
        context: "ExecutionContext",
    ) -> "tuple[np.ndarray, KernelStats]": ...

    def run_mmo(
        self,
        opcode: "MmoOpcode",
        a: "np.ndarray",
        b: "np.ndarray",
        c: "np.ndarray | None",
        *,
        context: "ExecutionContext",
    ) -> "tuple[np.ndarray, KernelStats]": ...


class MmoBackend:
    """Concrete base for backends: default lowering + the run_mmo shim.

    Subclasses implement ``execute``; ``compile`` defaults to the shared
    :func:`repro.compile.lower.lower_mmo` lowering (the artifact is
    backend-agnostic — it carries the tile grid, the optimised warp
    program, and the shared-memory layout, and each backend consumes the
    parts it needs), and ``run_mmo`` is kept as the thin compat shim:
    compile through the context's plan cache, then execute.
    """

    name: str = ""

    def compile(
        self,
        opcode: "MmoOpcode",
        m: int,
        n: int,
        k: int,
        *,
        has_accumulator: bool,
        context: "ExecutionContext | None" = None,
    ) -> "CompiledMmo":
        from repro.compile.artifact import grid_for
        from repro.compile.lower import lower_mmo

        tiles_m, tiles_n, tiles_k = grid_for(m, n, k)
        return lower_mmo(
            opcode, tiles_m, tiles_n, tiles_k, has_accumulator=has_accumulator
        )

    def execute(
        self,
        compiled: "CompiledMmo",
        a: "np.ndarray",
        b: "np.ndarray",
        c: "np.ndarray | None",
        *,
        context: "ExecutionContext",
    ) -> "tuple[np.ndarray, KernelStats]":
        raise NotImplementedError(
            f"backend {self.name!r} must implement execute()"
        )

    def run_mmo(
        self,
        opcode: "MmoOpcode",
        a: "np.ndarray",
        b: "np.ndarray",
        c: "np.ndarray | None",
        *,
        context: "ExecutionContext",
    ) -> "tuple[np.ndarray, KernelStats]":
        from repro.compile.lower import compile_mmo

        m, k = a.shape
        n = b.shape[1]
        compiled, _ = compile_mmo(
            self, opcode, m, n, k,
            has_accumulator=c is not None, context=context,
        )
        return self.execute(compiled, a, b, c, context=context)


_REGISTRY: dict[str, Backend] = {}
_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    """Import the built-in backend modules (each registers itself)."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    from repro.backends import emulate, sparse, vectorized  # noqa: F401


def register_backend(backend: Backend, *, replace: bool = False) -> Backend:
    """Register ``backend`` under ``backend.name``; returns it for chaining."""
    name = getattr(backend, "name", None)
    if not isinstance(name, str) or not name:
        raise BackendError(
            f"backend {backend!r} must expose a non-empty string 'name'"
        )
    if name in _REGISTRY and not replace:
        raise BackendError(
            f"backend {name!r} already registered (pass replace=True to override)"
        )
    _REGISTRY[name] = backend
    return backend


def get_backend(name: str) -> Backend:
    """Look up a backend by registry name.

    Raises :class:`BackendError` (an ``RuntimeError_``) naming every
    registered backend — the one validation message all entry points share.
    """
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        registered = ", ".join(sorted(_REGISTRY))
        raise BackendError(
            f"unknown backend {name!r}; registered backends: {registered}"
        ) from None


def list_backends() -> tuple[str, ...]:
    """Sorted names of every registered backend."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))
