"""Backend protocol + registry: the single dispatch seam for mmo launches.

The paper's point (Sections 5.1, 6.6) is that one ``D = C ⊕ (A ⊗ B)``
abstraction serves many execution substrates — CUDA cores, SIMD² units,
sparse spGEMM datapaths.  This module is that abstraction's seam: a
:class:`Backend` implements ``run_mmo`` for validated whole-matrix
operands, registers itself under a name, and every runtime entry point
(``mmo_tiled``, ``closure``, ``batched_mmo``, apps, bench) reaches it
through :func:`get_backend` — so adding a backend touches exactly one new
module and zero call sites.

Built-in backends (``vectorized``, ``emulate``, ``sparse``) are imported
lazily on first registry access to keep ``import repro`` cheap and the
dependency direction one-way (backends import runtime, never the
reverse at module level).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.runtime.api import RuntimeError_

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.isa.opcodes import MmoOpcode
    from repro.runtime.context import ExecutionContext
    from repro.runtime.kernels import KernelStats

__all__ = [
    "Backend",
    "BackendError",
    "get_backend",
    "list_backends",
    "register_backend",
]


class BackendError(RuntimeError_):
    """Unknown or conflicting backend registration/lookup."""


@runtime_checkable
class Backend(Protocol):
    """One way of executing a whole-matrix mmo.

    Implementations receive operands that the dispatch layer has already
    validated (2-D, inner dimensions matching, ``C`` of shape ``(m, n)``
    when present, ``m > 0`` and ``n > 0``) and must return the ``(m, n)``
    result in the ring's output dtype together with the launch's
    :class:`~repro.runtime.kernels.KernelStats`.
    """

    name: str

    def run_mmo(
        self,
        opcode: "MmoOpcode",
        a: "np.ndarray",
        b: "np.ndarray",
        c: "np.ndarray | None",
        *,
        context: "ExecutionContext",
    ) -> "tuple[np.ndarray, KernelStats]": ...


_REGISTRY: dict[str, Backend] = {}
_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    """Import the built-in backend modules (each registers itself)."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    from repro.backends import emulate, sparse, vectorized  # noqa: F401


def register_backend(backend: Backend, *, replace: bool = False) -> Backend:
    """Register ``backend`` under ``backend.name``; returns it for chaining."""
    name = getattr(backend, "name", None)
    if not isinstance(name, str) or not name:
        raise BackendError(
            f"backend {backend!r} must expose a non-empty string 'name'"
        )
    if name in _REGISTRY and not replace:
        raise BackendError(
            f"backend {name!r} already registered (pass replace=True to override)"
        )
    _REGISTRY[name] = backend
    return backend


def get_backend(name: str) -> Backend:
    """Look up a backend by registry name.

    Raises :class:`BackendError` (an ``RuntimeError_``) naming every
    registered backend — the one validation message all entry points share.
    """
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        registered = ", ".join(sorted(_REGISTRY))
        raise BackendError(
            f"unknown backend {name!r}; registered backends: {registered}"
        ) from None


def list_backends() -> tuple[str, ...]:
    """Sorted names of every registered backend."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))
