"""Backend protocol + registry: the single dispatch seam for mmo launches.

The paper's point (Sections 5.1, 6.6) is that one ``D = C ⊕ (A ⊗ B)``
abstraction serves many execution substrates — CUDA cores, SIMD² units,
sparse spGEMM datapaths.  This module is that abstraction's seam, and it
is split the way the paper's programming model is: a backend **compiles**
a launch shape into an immutable :class:`~repro.compile.artifact
.CompiledMmo` once, then **executes** that artifact against any number of
validated operand sets.  Every runtime entry point reaches the backend
through :func:`get_backend`, compiles through the context's
:class:`~repro.compile.cache.PlanCache`, and replays the artifact — so a
closure loop relaunching one shape lowers its warp program exactly once.

``run_mmo`` survives as a thin compile-then-execute compat shim (both on
:class:`MmoBackend` for built-ins and as the fallback the dispatch layer
uses for legacy backends that registered only ``run_mmo``).

Built-in backends (``vectorized``, ``emulate``, ``sparse``) are imported
lazily on first registry access to keep ``import repro`` cheap and the
dependency direction one-way (backends import runtime/compile, never the
reverse at module level).
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.runtime.api import RuntimeError_

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.compile.artifact import CompiledMmo
    from repro.core.semiring import Semiring
    from repro.isa.opcodes import MmoOpcode
    from repro.runtime.context import ExecutionContext
    from repro.runtime.kernels import KernelStats

__all__ = [
    "Backend",
    "BackendCapabilities",
    "BackendError",
    "MmoBackend",
    "capabilities_of",
    "capable_backends",
    "check_backend_capability",
    "get_backend",
    "list_backends",
    "register_backend",
]


class BackendError(RuntimeError_):
    """Unknown or conflicting backend registration/lookup."""


@dataclasses.dataclass(frozen=True)
class BackendCapabilities:
    """What a backend declares it can run, checked *before* dispatch.

    Replaces the scattered execute-time probing backends used to do
    (the sparse backend raised — or silently degraded — deep inside
    ``execute`` on rings whose ⊕ identity is not ⊗-absorbing).  The
    planner filters candidates by these declarations, and the dispatch
    seam rejects capability-violating explicit requests up front with a
    :class:`BackendError` naming the capable backends.

    ``rings`` is the frozen set of supported semiring names, or ``None``
    for "every ring" (the permissive default legacy backends get).
    ``accumulator`` says whether ``C ⊕`` launches are supported.
    ``density_preference`` is advisory metadata for the planner:
    ``"sparse"`` backends expect to win on mostly-identity operands,
    ``"dense"`` ones on full operands, ``"any"`` claims no preference.
    ``thread_safe`` declares whether concurrent ``execute`` calls on one
    backend instance are safe; the :mod:`repro.sched` thread-pool
    executor serialises launches on backends that say ``False`` (the
    emulate backend stages operands through a shared device's memory)
    unless each launch carries its own device.
    """

    rings: frozenset[str] | None = None
    accumulator: bool = True
    density_preference: str = "any"
    thread_safe: bool = True

    def __post_init__(self) -> None:
        if self.density_preference not in ("dense", "sparse", "any"):
            raise BackendError(
                "density_preference must be 'dense', 'sparse' or 'any', "
                f"got {self.density_preference!r}"
            )
        if self.rings is not None:
            object.__setattr__(self, "rings", frozenset(self.rings))

    def supports_ring(self, ring_name: str) -> bool:
        return self.rings is None or ring_name in self.rings

    def supports(self, ring_name: str, *, has_accumulator: bool = False) -> bool:
        if has_accumulator and not self.accumulator:
            return False
        return self.supports_ring(ring_name)


#: What a backend without a ``capabilities`` attribute claims: anything.
#: Legacy backends (registered before capabilities existed) keep
#: dispatching exactly as before.
PERMISSIVE_CAPABILITIES = BackendCapabilities()


def capabilities_of(backend: "Backend") -> BackendCapabilities:
    """The backend's declared capabilities (permissive when undeclared)."""
    caps = getattr(backend, "capabilities", None)
    return caps if isinstance(caps, BackendCapabilities) else PERMISSIVE_CAPABILITIES


def capable_backends(
    ring: "Semiring | str", *, has_accumulator: bool = False
) -> tuple[str, ...]:
    """Sorted names of registered backends that can run this launch."""
    ring_name = ring if isinstance(ring, str) else ring.name
    _ensure_builtins()
    return tuple(
        sorted(
            name
            for name, backend in _REGISTRY.items()
            if capabilities_of(backend).supports(
                ring_name, has_accumulator=has_accumulator
            )
        )
    )


def check_backend_capability(
    backend: "Backend", ring: "Semiring | str", *, has_accumulator: bool = False
) -> None:
    """Reject a launch the backend declared itself unable to run.

    Raises :class:`BackendError` naming the backends that *can* run the
    ring — the clear early error the sparse backend's execute-time
    probing never gave.
    """
    ring_name = ring if isinstance(ring, str) else ring.name
    if capabilities_of(backend).supports(ring_name, has_accumulator=has_accumulator):
        return
    capable = ", ".join(
        capable_backends(ring_name, has_accumulator=has_accumulator)
    ) or "none"
    what = f"the {ring_name} ring"
    if has_accumulator:
        what += " with an accumulator"
    raise BackendError(
        f"backend {backend.name!r} does not support {what}; "
        f"capable backends: {capable}"
    )


@runtime_checkable
class Backend(Protocol):
    """One way of executing a whole-matrix mmo, split compile/execute.

    ``compile`` receives a launch shape and returns the immutable
    artifact; ``execute`` receives the artifact plus operands that the
    dispatch layer has already validated (2-D, inner dimensions matching,
    ``C`` of shape ``(m, n)`` when present, ``m > 0`` and ``n > 0``, tile
    grid matching the artifact) and must return the ``(m, n)`` result in
    the ring's output dtype together with the launch's
    :class:`~repro.runtime.kernels.KernelStats`.  ``run_mmo`` is the
    single-shot compat path (compile + execute in one call); backends
    that only provide ``run_mmo`` still dispatch, bypassing the plan
    cache.
    """

    name: str

    def compile(
        self,
        opcode: "MmoOpcode",
        m: int,
        n: int,
        k: int,
        *,
        has_accumulator: bool,
        context: "ExecutionContext | None",
    ) -> "CompiledMmo": ...

    def execute(
        self,
        compiled: "CompiledMmo",
        a: "np.ndarray",
        b: "np.ndarray",
        c: "np.ndarray | None",
        *,
        context: "ExecutionContext",
    ) -> "tuple[np.ndarray, KernelStats]": ...

    def run_mmo(
        self,
        opcode: "MmoOpcode",
        a: "np.ndarray",
        b: "np.ndarray",
        c: "np.ndarray | None",
        *,
        context: "ExecutionContext",
    ) -> "tuple[np.ndarray, KernelStats]": ...


class MmoBackend:
    """Concrete base for backends: default lowering + the run_mmo shim.

    Subclasses implement ``execute``; ``compile`` defaults to the shared
    :func:`repro.compile.lower.lower_mmo` lowering (the artifact is
    backend-agnostic — it carries the tile grid, the optimised warp
    program, and the shared-memory layout, and each backend consumes the
    parts it needs), and ``run_mmo`` is kept as the thin compat shim:
    compile through the context's plan cache, then execute.
    """

    name: str = ""

    def compile(
        self,
        opcode: "MmoOpcode",
        m: int,
        n: int,
        k: int,
        *,
        has_accumulator: bool,
        context: "ExecutionContext | None" = None,
    ) -> "CompiledMmo":
        from repro.compile.artifact import grid_for
        from repro.compile.lower import lower_mmo

        tiles_m, tiles_n, tiles_k = grid_for(m, n, k)
        return lower_mmo(
            opcode, tiles_m, tiles_n, tiles_k, has_accumulator=has_accumulator
        )

    def execute(
        self,
        compiled: "CompiledMmo",
        a: "np.ndarray",
        b: "np.ndarray",
        c: "np.ndarray | None",
        *,
        context: "ExecutionContext",
    ) -> "tuple[np.ndarray, KernelStats]":
        raise NotImplementedError(
            f"backend {self.name!r} must implement execute()"
        )

    def run_mmo(
        self,
        opcode: "MmoOpcode",
        a: "np.ndarray",
        b: "np.ndarray",
        c: "np.ndarray | None",
        *,
        context: "ExecutionContext",
    ) -> "tuple[np.ndarray, KernelStats]":
        from repro.compile.lower import compile_mmo

        m, k = a.shape
        n = b.shape[1]
        compiled, _ = compile_mmo(
            self, opcode, m, n, k,
            has_accumulator=c is not None, context=context,
        )
        return self.execute(compiled, a, b, c, context=context)


_REGISTRY: dict[str, Backend] = {}
_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    """Import the built-in backend modules (each registers itself)."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    from repro.backends import emulate, sparse, vectorized  # noqa: F401
    from repro.plan import backend as _auto  # noqa: F401 - registers "auto"


def register_backend(backend: Backend, *, replace: bool = False) -> Backend:
    """Register ``backend`` under ``backend.name``; returns it for chaining."""
    name = getattr(backend, "name", None)
    if not isinstance(name, str) or not name:
        raise BackendError(
            f"backend {backend!r} must expose a non-empty string 'name'"
        )
    if name in _REGISTRY and not replace:
        raise BackendError(
            f"backend {name!r} already registered (pass replace=True to override)"
        )
    _REGISTRY[name] = backend
    return backend


def get_backend(name: str) -> Backend:
    """Look up a backend by registry name.

    Raises :class:`BackendError` (an ``RuntimeError_``) naming every
    registered backend — the one validation message all entry points share.
    """
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        registered = ", ".join(sorted(_REGISTRY))
        raise BackendError(
            f"unknown backend {name!r}; registered backends: {registered}"
        ) from None


def list_backends() -> tuple[str, ...]:
    """Sorted names of every registered backend."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))
