"""The CUDA-core analogue: vectorised NumPy semiring arithmetic.

Plays the role cuASR/CUTLASS plays in the paper's validation flow
(Section 5.1): a reference backend with identical padding and
mixed-precision rules that every other backend must agree with.

Of the compiled artifact this backend consumes only the opcode and the
tile grid — a whole-matrix NumPy kernel has no warp program to replay —
but it still reports the artifact's grid in its statistics, which is what
keeps the cross-backend statistics reconciliation exact.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import BackendCapabilities, MmoBackend, register_backend
from repro.backends.tiling import plan_mmo
from repro.compile.artifact import CompiledMmo
from repro.core import ops as core_ops
from repro.core.tiles import crop
from repro.runtime.context import ExecutionContext
from repro.runtime.kernels import KernelStats

__all__ = ["VectorizedBackend"]


class VectorizedBackend(MmoBackend):
    """Whole-matrix mmo on the padded plan via :func:`repro.core.ops.mmo`."""

    name = "vectorized"
    capabilities = BackendCapabilities(density_preference="dense")

    def execute(
        self,
        compiled: CompiledMmo,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray | None,
        *,
        context: ExecutionContext,
    ) -> tuple[np.ndarray, KernelStats]:
        semiring = compiled.opcode.semiring
        plan = plan_mmo(semiring, a, b, c)
        d_pad = core_ops.mmo(semiring, plan.a_pad, plan.b_pad, plan.c_pad)
        stats = plan.stats
        return crop(d_pad, stats.m, stats.n).copy(), stats


register_backend(VectorizedBackend())
