"""The CUDA-core analogue: vectorised NumPy semiring arithmetic.

Plays the role cuASR/CUTLASS plays in the paper's validation flow
(Section 5.1): a reference backend with identical padding and
mixed-precision rules that every other backend must agree with.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import register_backend
from repro.backends.tiling import plan_mmo
from repro.core import ops as core_ops
from repro.core.tiles import crop
from repro.isa.opcodes import MmoOpcode
from repro.runtime.context import ExecutionContext
from repro.runtime.kernels import KernelStats

__all__ = ["VectorizedBackend"]


class VectorizedBackend:
    """Whole-matrix mmo on the padded plan via :func:`repro.core.ops.mmo`."""

    name = "vectorized"

    def run_mmo(
        self,
        opcode: MmoOpcode,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray | None,
        *,
        context: ExecutionContext,
    ) -> tuple[np.ndarray, KernelStats]:
        semiring = opcode.semiring
        plan = plan_mmo(semiring, a, b, c)
        d_pad = core_ops.mmo(semiring, plan.a_pad, plan.b_pad, plan.c_pad)
        stats = plan.stats
        return crop(d_pad, stats.m, stats.n).copy(), stats


register_backend(VectorizedBackend())
