"""The instruction-level backend: warp programs on the emulated device.

Builds one Table-3 warp program per output tile, stages operand panels
into shared memory, executes on :class:`~repro.hw.device.Simd2Device`, and
cross-checks the dynamic instruction counters against the static tiling
prediction — the paper's statistics validation between its two emulation
backends (Section 5.1).

The device comes from the execution context; when the context carries
none, a private 4-SM device is created per launch (honouring the
context's ``parallel`` flag).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.backends.base import register_backend
from repro.backends.tiling import plan_mmo
from repro.core.tiles import TILE, crop
from repro.hw.device import Simd2Device, WarpWorkItem
from repro.hw.shared_memory import SharedMemory
from repro.isa.opcodes import ElementType, MmoOpcode
from repro.runtime.api import RuntimeError_
from repro.runtime.context import ExecutionContext
from repro.runtime.kernels import KernelStats, build_tile_mmo_program

__all__ = ["EmulateBackend"]

_TILE_ELEMS = TILE * TILE


def _check_emulation_parity(stats: KernelStats) -> None:
    """Assert the emulator issued exactly the statically predicted counts.

    This is the paper's statistics cross-check between the validation and
    performance-emulation backends.
    """
    execution = stats.execution
    assert execution is not None
    if (
        execution.mmos != stats.mmo_instructions
        or execution.loads != stats.load_instructions
        or execution.stores != stats.store_instructions
        or execution.unit_ops != stats.unit_ops
    ):
        raise RuntimeError_(
            "emulation statistics diverge from the static tiling prediction: "
            f"{execution} vs {stats}"
        )


class EmulateBackend:
    """Whole-matrix mmo through per-tile warp programs on emulated SMs."""

    name = "emulate"

    def run_mmo(
        self,
        opcode: MmoOpcode,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray | None,
        *,
        context: ExecutionContext,
    ) -> tuple[np.ndarray, KernelStats]:
        semiring = opcode.semiring
        plan = plan_mmo(semiring, a, b, c)
        a_pad, b_pad, c_pad = plan.a_pad, plan.b_pad, plan.c_pad
        tiles_m, tiles_n, tiles_k = plan.tiles_m, plan.tiles_n, plan.tiles_k
        stats = plan.stats

        device = context.device
        if device is None:
            device = Simd2Device(sm_count=4, parallel=context.parallel)
        program, c_addr, d_addr = build_tile_mmo_program(
            opcode, tiles_k, boolean=semiring.is_boolean()
        )
        in_etype = ElementType.B8 if semiring.is_boolean() else ElementType.F16
        out_etype = ElementType.B8 if semiring.is_boolean() else ElementType.F32

        shared_bytes = (
            in_etype.nbytes * 2 * tiles_k * _TILE_ELEMS
            + out_etype.nbytes * 2 * _TILE_ELEMS
        ) + 64

        # Stage each A row-panel and each B col-panel ONCE, pre-converted to
        # the shared-memory element format and laid out tile-major exactly as
        # the warp program expects (tile kk of the A panel at element kk*256,
        # tile kk of the B panel at (tiles_k + kk)*256).  The panels are then
        # shared across the whole tile grid instead of being re-converted per
        # output tile.  Row-major flattening of the (tiles_k*TILE, TILE)
        # panel shape is precisely that tile-major layout.
        in_dtype = SharedMemory.dtype_for(in_etype)
        out_dtype = SharedMemory.dtype_for(out_etype)
        a_panels = [
            a_pad[ti * TILE : (ti + 1) * TILE]
            .reshape(TILE, tiles_k, TILE)
            .transpose(1, 0, 2)
            .reshape(tiles_k * TILE, TILE)
            .astype(in_dtype)
            for ti in range(tiles_m)
        ]
        b_panels = [
            b_pad[:, tj * TILE : (tj + 1) * TILE].astype(in_dtype)
            for tj in range(tiles_n)
        ]
        c_conv = c_pad.astype(out_dtype, copy=False)

        work_items: list[tuple[int, int, SharedMemory]] = []
        items: list[WarpWorkItem] = []
        for ti in range(tiles_m):
            for tj in range(tiles_n):
                shm = SharedMemory(shared_bytes)
                shm.write_matrix(0, a_panels[ti], in_etype)
                shm.write_matrix(tiles_k * _TILE_ELEMS, b_panels[tj], in_etype)
                c_tile = c_conv[
                    ti * TILE : (ti + 1) * TILE, tj * TILE : (tj + 1) * TILE
                ]
                shm.write_matrix(c_addr, c_tile, out_etype)
                work_items.append((ti, tj, shm))
                items.append(WarpWorkItem(program, shm))

        execution = device.launch(items)
        d_pad = np.empty_like(c_pad)
        for ti, tj, shm in work_items:
            d_tile = shm.read_matrix(d_addr, (TILE, TILE), out_etype)
            d_pad[ti * TILE : (ti + 1) * TILE, tj * TILE : (tj + 1) * TILE] = d_tile

        stats = dataclasses.replace(stats, execution=execution)
        _check_emulation_parity(stats)
        return crop(d_pad, stats.m, stats.n).copy(), stats


register_backend(EmulateBackend())
