"""The instruction-level backend: warp programs on the emulated device.

Executes one compiled Table-3 warp program per output tile: the
:class:`~repro.compile.artifact.CompiledMmo` artifact carries the
optimised program and the shared-memory layout (``c_addr``/``d_addr``/
``shared_bytes``/element types), so a relaunch of the same tile grid
stages fresh operand panels but rebuilds nothing — the compile/execute
split of the paper's programming model.  Dynamic instruction counters are
cross-checked against the static tiling prediction, the paper's
statistics validation between its two emulation backends (Section 5.1).

The device comes from the execution context; when the context carries
none, a default 4-SM device is created once per ``parallel`` flavour and
reused across launches (honouring the context's ``parallel`` flag)
instead of being reconstructed per launch.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.backends.base import BackendCapabilities, MmoBackend, register_backend
from repro.backends.tiling import plan_mmo
from repro.compile.artifact import CompiledMmo
from repro.core.tiles import TILE, crop
from repro.hw.device import Simd2Device, WarpWorkItem
from repro.hw.shared_memory import SharedMemory
from repro.runtime.api import RuntimeError_
from repro.runtime.context import ExecutionContext
from repro.runtime.kernels import KernelStats

__all__ = ["EmulateBackend"]

_TILE_ELEMS = TILE * TILE


def _check_emulation_parity(stats: KernelStats) -> None:
    """Assert the emulator issued exactly the statically predicted counts.

    This is the paper's statistics cross-check between the validation and
    performance-emulation backends.  The generated Figure-6 program is
    already optimal (the optimiser removes nothing from it), so the
    static prediction holds for the optimised program too.
    """
    execution = stats.execution
    assert execution is not None
    if (
        execution.mmos != stats.mmo_instructions
        or execution.loads != stats.load_instructions
        or execution.stores != stats.store_instructions
        or execution.unit_ops != stats.unit_ops
    ):
        raise RuntimeError_(
            "emulation statistics diverge from the static tiling prediction: "
            f"{execution} vs {stats}"
        )


class EmulateBackend(MmoBackend):
    """Whole-matrix mmo through per-tile warp programs on emulated SMs."""

    name = "emulate"
    # Not thread_safe: launches without an explicit device share the
    # lazily-created default Simd2Device, whose staged shared memory is
    # per-instance state.
    capabilities = BackendCapabilities(density_preference="dense", thread_safe=False)

    def __init__(self) -> None:
        # Default devices, one per `parallel` flavour, created lazily on
        # the first context that carries no device and reused for every
        # such launch afterwards.
        self._default_devices: dict[bool, Simd2Device] = {}

    def _device_for(self, context: ExecutionContext) -> Simd2Device:
        if context.device is not None:
            return context.device
        parallel = bool(context.parallel)
        device = self._default_devices.get(parallel)
        if device is None:
            device = Simd2Device(sm_count=4, parallel=parallel)
            self._default_devices[parallel] = device
        return device

    def execute(
        self,
        compiled: CompiledMmo,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray | None,
        *,
        context: ExecutionContext,
    ) -> tuple[np.ndarray, KernelStats]:
        semiring = compiled.opcode.semiring
        plan = plan_mmo(semiring, a, b, c)
        a_pad, b_pad, c_pad = plan.a_pad, plan.b_pad, plan.c_pad
        tiles_m, tiles_n, tiles_k = plan.tiles_m, plan.tiles_n, plan.tiles_k
        stats = plan.stats

        device = self._device_for(context)
        program = compiled.program
        c_addr, d_addr = compiled.c_addr, compiled.d_addr
        in_etype, out_etype = compiled.in_etype, compiled.out_etype
        shared_bytes = compiled.shared_bytes

        # Stage each A row-panel and each B col-panel ONCE, pre-converted to
        # the shared-memory element format and laid out tile-major exactly as
        # the warp program expects (tile kk of the A panel at element kk*256,
        # tile kk of the B panel at (tiles_k + kk)*256).  The panels are then
        # shared across the whole tile grid instead of being re-converted per
        # output tile.  Row-major flattening of the (tiles_k*TILE, TILE)
        # panel shape is precisely that tile-major layout.
        in_dtype = SharedMemory.dtype_for(in_etype)
        out_dtype = SharedMemory.dtype_for(out_etype)
        a_panels = [
            a_pad[ti * TILE : (ti + 1) * TILE]
            .reshape(TILE, tiles_k, TILE)
            .transpose(1, 0, 2)
            .reshape(tiles_k * TILE, TILE)
            .astype(in_dtype)
            for ti in range(tiles_m)
        ]
        b_panels = [
            b_pad[:, tj * TILE : (tj + 1) * TILE].astype(in_dtype)
            for tj in range(tiles_n)
        ]
        c_conv = c_pad.astype(out_dtype, copy=False)

        work_items: list[tuple[int, int, SharedMemory]] = []
        items: list[WarpWorkItem] = []
        for ti in range(tiles_m):
            for tj in range(tiles_n):
                shm = SharedMemory(shared_bytes)
                shm.write_matrix(0, a_panels[ti], in_etype)
                shm.write_matrix(tiles_k * _TILE_ELEMS, b_panels[tj], in_etype)
                c_tile = c_conv[
                    ti * TILE : (ti + 1) * TILE, tj * TILE : (tj + 1) * TILE
                ]
                shm.write_matrix(c_addr, c_tile, out_etype)
                work_items.append((ti, tj, shm))
                items.append(WarpWorkItem(program, shm))

        execution = device.launch(items)
        d_pad = np.empty_like(c_pad)
        for ti, tj, shm in work_items:
            d_tile = shm.read_matrix(d_addr, (TILE, TILE), out_etype)
            d_pad[ti * TILE : (ti + 1) * TILE, tj * TILE : (tj + 1) * TILE] = d_tile

        stats = dataclasses.replace(stats, execution=execution)
        _check_emulation_parity(stats)
        return crop(d_pad, stats.m, stats.n).copy(), stats


register_backend(EmulateBackend())
