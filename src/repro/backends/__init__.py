"""Execution backends for the whole-matrix mmo — one seam, many substrates.

``apps → runtime → compile → backends → hw/isa``: the runtime dispatch
layer (:func:`repro.runtime.kernels.mmo_tiled`) resolves a backend name
through the registry here, compiles the launch into a
:class:`~repro.compile.artifact.CompiledMmo` (through the plan cache),
and hands the artifact plus validated operands to the backend's
``execute``.  Built-ins:

- ``"vectorized"`` — NumPy semiring arithmetic (the CUDA-core analogue),
- ``"emulate"``    — per-tile warp programs on the Simd2Device emulator,
- ``"sparse"``     — Gustavson spGEMM over CSR operands,
- ``"auto"``       — the planning stage (:mod:`repro.plan`): ranks the
  capable backends per launch and dispatches to the winner.

Each backend declares :class:`BackendCapabilities` (which rings it can
run, whether it accepts an accumulator, its density preference); the
dispatch seam rejects capability-violating explicit requests up front
and the planner filters candidates by the same declarations.

Register your own with :func:`register_backend`; every entry point and
the registry-driven parity suite pick it up automatically.
"""

from repro.backends.base import (
    Backend,
    BackendCapabilities,
    BackendError,
    MmoBackend,
    capabilities_of,
    capable_backends,
    check_backend_capability,
    get_backend,
    list_backends,
    register_backend,
)

__all__ = [
    "Backend",
    "BackendCapabilities",
    "BackendError",
    "MmoBackend",
    "capabilities_of",
    "capable_backends",
    "check_backend_capability",
    "get_backend",
    "list_backends",
    "register_backend",
]
