"""Execution backends for the whole-matrix mmo — one seam, many substrates.

``apps → runtime → compile → backends → hw/isa``: the runtime dispatch
layer (:func:`repro.runtime.kernels.mmo_tiled`) resolves a backend name
through the registry here, compiles the launch into a
:class:`~repro.compile.artifact.CompiledMmo` (through the plan cache),
and hands the artifact plus validated operands to the backend's
``execute``.  Built-ins:

- ``"vectorized"`` — NumPy semiring arithmetic (the CUDA-core analogue),
- ``"emulate"``    — per-tile warp programs on the Simd2Device emulator,
- ``"sparse"``     — Gustavson spGEMM over CSR operands.

Register your own with :func:`register_backend`; every entry point and
the registry-driven parity suite pick it up automatically.
"""

from repro.backends.base import (
    Backend,
    BackendError,
    MmoBackend,
    get_backend,
    list_backends,
    register_backend,
)

__all__ = [
    "Backend",
    "BackendError",
    "MmoBackend",
    "get_backend",
    "list_backends",
    "register_backend",
]
