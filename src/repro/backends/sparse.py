"""The sparse backend: whole-matrix mmo through Gustavson spGEMM.

The paper sketches a sparse SIMD² datapath (Section 6.5) that shares the
mmo abstraction with the dense units; SparseZipper (arXiv:2502.11353)
makes the same argument for matrix ISA extensions.  This backend proves
the registry seam carries it for free: operands are quantised with the
exact datapath rules, compressed to CSR with the ring's ⊕ identity as the
implicit value, multiplied row-wise under ``(⊕, ⊗)``, and densified back —
so ``mmo_tiled(..., backend="sparse")`` (or ``use_context(backend=
"sparse")``) routes any ring through :func:`repro.sparse.spgemm.spgemm`
with no call-site changes anywhere.

Compressing away the ⊕ identity is only sound when the identity is
⊗-absorbing (``identity ⊗ x == identity``), which holds for six of the
nine rings (e.g. ``0·x = 0`` for plus-mul, ``inf+x = inf`` for min-plus).
The rings where it fails — plus-norm (``(0-x)² = x²``), min-mul and
max-mul (``±inf`` times a negative flips sign) — are declared *out* of
this backend's :class:`~repro.backends.base.BackendCapabilities`, so the
dispatch seam rejects them up front naming the capable backends instead
of the old execute-time degradation (keeping every entry explicit, which
was just the dense computation with CSR overhead on top).  The check is
a numeric probe of the ring's operators, so newly registered rings
classify themselves.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import BackendCapabilities, MmoBackend, register_backend
from repro.compile.artifact import CompiledMmo
from repro.core.precision import quantize_input, quantize_output
from repro.core.semiring import Semiring
from repro.runtime.context import ExecutionContext
from repro.runtime.kernels import KernelStats
from repro.sparse.csr import CsrMatrix
from repro.sparse.spgemm import spgemm

__all__ = ["SparseBackend", "absorbing_rings", "identity_absorbs"]

#: Probe values for the absorption check: a couple of ordinary magnitudes,
#: a negative (catches ``±inf`` sign flips in min-mul/max-mul) and zero
#: (catches ``inf·0 = nan``).
_NUMERIC_PROBES = (2.5, 0.75, -1.5, 0.0)


def identity_absorbs(ring: Semiring) -> bool:
    """True when ``identity ⊗ x == identity`` for all ``x`` (probed).

    Decides whether the ⊕ identity may be stored implicitly in CSR: an
    absorbing identity contributes nothing to any product, so dropping it
    is exact; a non-absorbing one (plus-norm, min-mul, max-mul) must stay
    explicit.
    """
    identity = np.asarray(ring.oplus_identity, dtype=ring.output_dtype)
    if ring.is_boolean():
        probes = np.asarray([True, False])
    else:
        probes = np.asarray(_NUMERIC_PROBES, dtype=ring.output_dtype)
    expected = np.full(probes.shape, identity, dtype=ring.output_dtype)
    with np.errstate(invalid="ignore"):
        left = np.asarray(ring.otimes(identity, probes), dtype=ring.output_dtype)
        right = np.asarray(ring.otimes(probes, identity), dtype=ring.output_dtype)
    return bool(
        np.array_equal(left, expected) and np.array_equal(right, expected)
    )


#: Memoised probe results by ring name (the capabilities property is read
#: on the dispatch hot path; probing costs a handful of tiny array ops).
_ABSORB_CACHE: dict[str, bool] = {}


def absorbing_rings() -> frozenset[str]:
    """Names of every registered ring whose ⊕ identity is ⊗-absorbing."""
    from repro.core.registry import SEMIRINGS

    names = []
    for name, ring in SEMIRINGS.items():
        cached = _ABSORB_CACHE.get(name)
        if cached is None:
            cached = _ABSORB_CACHE[name] = identity_absorbs(ring)
        if cached:
            names.append(name)
    return frozenset(names)


class SparseBackend(MmoBackend):
    """Whole-matrix mmo as CSR × CSR spGEMM plus a dense ⊕ with C.

    Consumes only the opcode and tile grid of the compiled artifact —
    spGEMM has no warp program — but reports the artifact's grid in its
    :class:`KernelStats` so the dense/sparse statistics cross-check holds.
    """

    name = "sparse"

    @property
    def capabilities(self) -> BackendCapabilities:
        # Recomputed per read (memoised per ring) so rings registered
        # after import classify themselves, exactly like the old probe.
        return BackendCapabilities(
            rings=absorbing_rings(), density_preference="sparse"
        )

    def execute(
        self,
        compiled: CompiledMmo,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray | None,
        *,
        context: ExecutionContext,
    ) -> tuple[np.ndarray, KernelStats]:
        semiring = compiled.opcode.semiring
        m, k = a.shape
        n = b.shape[1]
        # Quantise exactly like the dense datapath (fp16 inputs, fp32
        # accumulate) so results are comparable bit-for-bit where the fold
        # order allows.
        aq = quantize_input(a, semiring).astype(semiring.output_dtype)
        bq = quantize_input(b, semiring).astype(semiring.output_dtype)
        c_full = (
            semiring.full((m, n))
            if c is None
            else quantize_output(np.asarray(c), semiring)
        )

        # Non-absorbing rings are excluded by `capabilities`, so the ⊕
        # identity is always safe to store implicitly here.
        implicit: float | bool = semiring.oplus_identity
        a_csr = CsrMatrix.from_dense(aq, implicit=implicit)
        b_csr = CsrMatrix.from_dense(bq, implicit=implicit)
        product, sp_stats = spgemm(semiring, a_csr, b_csr)

        dense = product.to_dense_for(semiring)
        d = np.asarray(semiring.oplus(c_full, dense), dtype=semiring.output_dtype)

        tiles_m, tiles_n, tiles_k = compiled.grid
        stats = KernelStats(
            m, n, k, tiles_m, tiles_n, tiles_k, spgemm=sp_stats
        )
        return d, stats


register_backend(SparseBackend())
