"""The configurable ⊗ and ⊕ ALUs of a SIMD² unit (paper Figure 5).

The paper's SIMD² unit replaces the fixed multiply/accumulate pair of an
MXU with two configurable ALUs:

- the ⊗ ALU supports ``multiply``, ``add``, ``min``, ``max``, ``and`` and
  ``L2 dist`` (squared difference),
- the ⊕ ALU supports ``add``, ``min``, ``max`` and ``or``.

This module defines those modes, the functional behaviour of each, and the
opcode → (⊗ mode, ⊕ mode) configuration table.  The area model in
:mod:`repro.hwmodel` reuses the same tables to decide which circuit
components each opcode needs.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.isa.opcodes import MmoOpcode

__all__ = ["OtimesMode", "OplusMode", "ALU_CONFIG", "apply_otimes", "apply_oplus"]


class OtimesMode(enum.Enum):
    """Pairwise operation selected in the ⊗ ALU."""

    MULTIPLY = "multiply"
    ADD = "add"
    MIN = "min"
    MAX = "max"
    AND = "and"
    L2DIST = "l2dist"


class OplusMode(enum.Enum):
    """Reduction/combine operation selected in the ⊕ ALU."""

    ADD = "add"
    MIN = "min"
    MAX = "max"
    OR = "or"


#: Decode table: how each SIMD² opcode configures the two ALUs.
ALU_CONFIG: dict[MmoOpcode, tuple[OplusMode, OtimesMode]] = {
    MmoOpcode.MMA: (OplusMode.ADD, OtimesMode.MULTIPLY),
    MmoOpcode.MINPLUS: (OplusMode.MIN, OtimesMode.ADD),
    MmoOpcode.MAXPLUS: (OplusMode.MAX, OtimesMode.ADD),
    MmoOpcode.MINMUL: (OplusMode.MIN, OtimesMode.MULTIPLY),
    MmoOpcode.MAXMUL: (OplusMode.MAX, OtimesMode.MULTIPLY),
    MmoOpcode.MINMAX: (OplusMode.MIN, OtimesMode.MAX),
    MmoOpcode.MAXMIN: (OplusMode.MAX, OtimesMode.MIN),
    MmoOpcode.ORAND: (OplusMode.OR, OtimesMode.AND),
    MmoOpcode.ADDNORM: (OplusMode.ADD, OtimesMode.L2DIST),
}

_OTIMES_FUNCS = {
    OtimesMode.MULTIPLY: np.multiply,
    OtimesMode.ADD: np.add,
    OtimesMode.MIN: np.minimum,
    OtimesMode.MAX: np.maximum,
    OtimesMode.AND: np.logical_and,
    OtimesMode.L2DIST: lambda a, b: np.square(np.subtract(a, b)),
}

_OPLUS_FUNCS = {
    OplusMode.ADD: np.add,
    OplusMode.MIN: np.minimum,
    OplusMode.MAX: np.maximum,
    OplusMode.OR: np.logical_or,
}


def apply_otimes(mode: OtimesMode, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise ⊗ in the accumulate precision (inputs already fp32/bool).

    Padded lanes may multiply inf·0 = nan; such values only ever reach
    cropped (padding) outputs, so the IEEE invalid flag is suppressed.
    """
    with np.errstate(invalid="ignore"):
        return _OTIMES_FUNCS[mode](a, b)


def apply_oplus(mode: OplusMode, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise ⊕ in the accumulate precision."""
    return _OPLUS_FUNCS[mode](a, b)
