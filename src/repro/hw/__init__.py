"""Functional emulator of SIMD² hardware: ALUs, units, SMs, device."""

from repro.hw.errors import HardwareError, MemoryFault, RegisterFault, UnsupportedOpcode
from repro.hw.alu import ALU_CONFIG, OplusMode, OtimesMode, apply_oplus, apply_otimes
from repro.hw.mxu import UNIT_DIM, BaselineMmaUnit, Simd2Unit
from repro.hw.regfile import MatrixRegisterFile
from repro.hw.shared_memory import DEFAULT_SHARED_BYTES, SharedMemory
from repro.hw.warp import ExecutionStats, WarpExecutor
from repro.hw.trace import ExecutionTrace, TraceRecord
from repro.hw.systolic import SystolicArray, SystolicResult
from repro.hw.occupancy import (
    OccupancyReport,
    SmBudget,
    kernel_occupancy,
    occupancy_utilization,
)
from repro.hw.sm import UNITS_PER_SM, StreamingMultiprocessor
from repro.hw.device import Simd2Device, WarpWorkItem

__all__ = [
    "HardwareError",
    "MemoryFault",
    "RegisterFault",
    "UnsupportedOpcode",
    "ALU_CONFIG",
    "OplusMode",
    "OtimesMode",
    "apply_oplus",
    "apply_otimes",
    "UNIT_DIM",
    "BaselineMmaUnit",
    "Simd2Unit",
    "MatrixRegisterFile",
    "DEFAULT_SHARED_BYTES",
    "SharedMemory",
    "ExecutionStats",
    "WarpExecutor",
    "ExecutionTrace",
    "TraceRecord",
    "SystolicArray",
    "SystolicResult",
    "OccupancyReport",
    "SmBudget",
    "kernel_occupancy",
    "occupancy_utilization",
    "UNITS_PER_SM",
    "StreamingMultiprocessor",
    "Simd2Device",
    "WarpWorkItem",
]
