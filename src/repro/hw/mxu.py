"""Matrix execution units: the baseline MMA unit and the SIMD² unit.

Both operate on fixed 4×4 tiles (the paper's unit configuration, matching
Tensor Cores and Accel-Sim): they consume 4×4 fp16 operand tiles ``a`` and
``b`` plus a 4×4 fp32 accumulator tile ``c`` and produce
``d = c ⊕ tree-reduce(a ⊗ b)`` in fp32.  The reduction over the inner
dimension uses a fixed binary tree — ``(p0 ⊕ p1) ⊕ (p2 ⊕ p3)`` — mirroring
the reduction-tree hardware in Figure 4(c), so accumulation order is
deterministic and reproducible.

The baseline unit accepts only ``mma`` (that is today's Tensor Core); the
SIMD² unit accepts all nine opcodes.  Both count invocations so the timing
model and the validation flow can read exact unit-op statistics.
"""

from __future__ import annotations

import collections

import numpy as np

from repro.hw.alu import ALU_CONFIG, apply_oplus, apply_otimes
from repro.hw.errors import HardwareError, UnsupportedOpcode
from repro.isa.opcodes import MmoOpcode

__all__ = ["UNIT_DIM", "BaselineMmaUnit", "Simd2Unit"]

#: Edge of the hardware tile a single unit processes per operation.
UNIT_DIM = 4


def _check_tile(name: str, tile: np.ndarray) -> None:
    if tile.shape != (UNIT_DIM, UNIT_DIM):
        raise HardwareError(
            f"operand {name} has shape {tile.shape}; the unit processes "
            f"{UNIT_DIM}x{UNIT_DIM} tiles"
        )


class Simd2Unit:
    """A SIMD² processing unit: 4×4×4 semiring tile operation per call."""

    #: Opcodes this unit's datapath implements.
    supported_opcodes: frozenset[MmoOpcode] = frozenset(MmoOpcode)

    def __init__(self) -> None:
        self.op_counts: collections.Counter[MmoOpcode] = collections.Counter()

    def compute(
        self,
        opcode: MmoOpcode,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray,
    ) -> np.ndarray:
        """One unit operation: ``d = c ⊕ tree_reduce_k(a ⊗ b)``.

        ``a``/``b`` are read as the ring's input format (fp16 or bool) and
        widened to the accumulate format before the ⊗ ALU, exactly like the
        hardware datapath; ``c`` and the result are fp32 (or bool).
        """
        if opcode not in self.supported_opcodes:
            raise UnsupportedOpcode(
                f"{type(self).__name__} does not implement {opcode.mnemonic}; "
                f"supported: {sorted(op.mnemonic for op in self.supported_opcodes)}"
            )
        _check_tile("a", a)
        _check_tile("b", b)
        _check_tile("c", c)
        ring = opcode.semiring
        oplus_mode, otimes_mode = ALU_CONFIG[opcode]

        a_wide = np.asarray(a, dtype=ring.input_dtype).astype(ring.output_dtype)
        b_wide = np.asarray(b, dtype=ring.input_dtype).astype(ring.output_dtype)
        c_wide = np.asarray(c, dtype=ring.output_dtype)

        # products[i, k, j] = a[i, k] ⊗ b[k, j]
        products = apply_otimes(otimes_mode, a_wide[:, :, None], b_wide[None, :, :])
        products = np.asarray(products, dtype=ring.output_dtype)
        products = np.swapaxes(products, 0, 1)  # (k, i, j) for the tree

        # Fixed binary reduction tree over k = 4.
        level0 = apply_oplus(oplus_mode, products[0], products[1])
        level1 = apply_oplus(oplus_mode, products[2], products[3])
        reduced = apply_oplus(oplus_mode, level0, level1)

        self.op_counts[opcode] += 1
        result = apply_oplus(oplus_mode, c_wide, np.asarray(reduced, dtype=ring.output_dtype))
        return np.asarray(result, dtype=ring.output_dtype)

    def compute_batched(
        self,
        opcode: MmoOpcode,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray,
    ) -> np.ndarray:
        """A batch of (optionally chained) unit operations in one pass.

        ``c`` holds one 4×4 accumulator tile per batch entry (shape
        ``(*batch, 4, 4)``); ``a``/``b`` hold either one operand tile per
        entry (``(*batch, 4, 4)``) or a stack of ``steps`` tiles per entry
        (``(*batch, steps, 4, 4)``).  Per entry the unit evaluates the
        chain ``d = (((c ⊕ r₀) ⊕ r₁) … ⊕ r₋₁)`` where ``rₛ`` is the fixed
        binary-tree reduction of ``aₛ ⊗ bₛ`` — i.e. ``steps`` chained unit
        operations, with every batch entry's step ``s`` evaluated by one
        vectorized ⊗/⊕ expression.  Every element passes through the same
        widen → ⊗ → tree-⊕ → combine pipeline as :meth:`compute`, in the
        same order, so results are bit-identical to the equivalent
        :meth:`compute` loop.  The invocation counter advances by
        ``batch × steps``.
        """
        if opcode not in self.supported_opcodes:
            raise UnsupportedOpcode(
                f"{type(self).__name__} does not implement {opcode.mnemonic}; "
                f"supported: {sorted(op.mnemonic for op in self.supported_opcodes)}"
            )
        a = np.asarray(a)
        b = np.asarray(b)
        c = np.asarray(c)
        if a.shape != b.shape:
            raise HardwareError(
                f"batched operand shapes differ: a{a.shape} b{b.shape}"
            )
        if a.shape == c.shape:  # no explicit steps axis: one step per entry
            a = a[..., None, :, :]
            b = b[..., None, :, :]
        if (
            c.ndim < 2
            or c.shape[-2:] != (UNIT_DIM, UNIT_DIM)
            or a.shape[-2:] != (UNIT_DIM, UNIT_DIM)
            or a.shape[:-3] != c.shape[:-2]
        ):
            raise HardwareError(
                f"batched operands a{a.shape} / c{c.shape} do not form "
                f"(*batch, steps, {UNIT_DIM}, {UNIT_DIM}) / "
                f"(*batch, {UNIT_DIM}, {UNIT_DIM}) tile stacks"
            )
        steps = a.shape[-3]
        ring = opcode.semiring
        oplus_mode, otimes_mode = ALU_CONFIG[opcode]

        a_wide = np.asarray(a, dtype=ring.input_dtype).astype(ring.output_dtype)
        b_wide = np.asarray(b, dtype=ring.input_dtype).astype(ring.output_dtype)
        acc = np.asarray(c, dtype=ring.output_dtype)

        # products[..., s, i, k, j] = a[..., s, i, k] ⊗ b[..., s, k, j]
        products = apply_otimes(
            otimes_mode, a_wide[..., :, :, None], b_wide[..., None, :, :]
        )
        products = np.asarray(products, dtype=ring.output_dtype)

        # The same fixed binary reduction tree over k = 4 as compute(),
        # evaluated for every (batch entry, step) at once.
        level0 = apply_oplus(oplus_mode, products[..., 0, :], products[..., 1, :])
        level1 = apply_oplus(oplus_mode, products[..., 2, :], products[..., 3, :])
        reduced = np.asarray(
            apply_oplus(oplus_mode, level0, level1), dtype=ring.output_dtype
        )

        # Chain the accumulator through the steps (the scalar loop's order).
        for s in range(steps):
            acc = apply_oplus(oplus_mode, acc, reduced[..., s, :, :])

        self.op_counts[opcode] += a.size // (UNIT_DIM * UNIT_DIM)
        return np.asarray(acc, dtype=ring.output_dtype)

    @property
    def total_ops(self) -> int:
        return sum(self.op_counts.values())

    def reset_counters(self) -> None:
        self.op_counts.clear()


class BaselineMmaUnit(Simd2Unit):
    """A conventional MXU: multiply-accumulate only (today's Tensor Core).

    Any non-``mma`` opcode raises :class:`UnsupportedOpcode` — this models
    why the paper's *performance emulation* backend must map every SIMD²
    mmo onto ``wmma::mma`` and consequently cannot produce correct values
    for the other eight operations.
    """

    supported_opcodes = frozenset({MmoOpcode.MMA})
