"""Warp-level execution of SIMD² programs.

A :class:`WarpExecutor` owns a matrix register file, is attached to one
SIMD² (or baseline MMA) unit and one shared-memory scratchpad, and runs a
:class:`~repro.isa.program.Program` to completion.  A warp-level 16×16×16
``mmo`` is decomposed into 4×4×4 unit operations — 16 output subtiles × 4
inner steps = 64 unit invocations — matching how wmma fragments map onto
Tensor Core passes, and making the unit-op statistics the timing model
consumes exact by construction.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.tiles import TILE
from repro.hw.errors import HardwareError
from repro.hw.mxu import UNIT_DIM, Simd2Unit
from repro.hw.regfile import MatrixRegisterFile
from repro.hw.shared_memory import SharedMemory
from repro.isa.instructions import FillMatrix, Halt, LoadMatrix, Mmo, StoreMatrix
from repro.isa.opcodes import ElementType, MmoOpcode
from repro.isa.program import Program

__all__ = ["ExecutionStats", "WarpExecutor"]


@dataclasses.dataclass
class ExecutionStats:
    """Dynamic execution statistics of one or more warp programs."""

    instructions: int = 0
    loads: int = 0
    stores: int = 0
    fills: int = 0
    mmos: int = 0
    unit_ops: int = 0
    shared_bytes_read: int = 0
    shared_bytes_written: int = 0
    mmos_by_opcode: dict[MmoOpcode, int] = dataclasses.field(default_factory=dict)

    def merge(self, other: "ExecutionStats") -> None:
        """Accumulate another stats record into this one."""
        self.instructions += other.instructions
        self.loads += other.loads
        self.stores += other.stores
        self.fills += other.fills
        self.mmos += other.mmos
        self.unit_ops += other.unit_ops
        self.shared_bytes_read += other.shared_bytes_read
        self.shared_bytes_written += other.shared_bytes_written
        for opcode, count in other.mmos_by_opcode.items():
            self.mmos_by_opcode[opcode] = self.mmos_by_opcode.get(opcode, 0) + count


class WarpExecutor:
    """Executes one warp's instruction stream against a SIMD² unit."""

    def __init__(
        self,
        shared_memory: SharedMemory,
        unit: Simd2Unit | None = None,
        *,
        tile: int = TILE,
        observer=None,
        batched_mmo: bool = True,
    ):
        if tile % UNIT_DIM:
            raise HardwareError(
                f"warp tile {tile} must be a multiple of the unit dim {UNIT_DIM}"
            )
        self.shared_memory = shared_memory
        self.unit = unit if unit is not None else Simd2Unit()
        self.tile = tile
        self.registers = MatrixRegisterFile(tile=tile)
        #: Optional callable ``observer(pc, instruction)`` invoked before
        #: each instruction executes (see :mod:`repro.hw.trace`).
        self.observer = observer
        #: When True (default) an mmo issues its full 64-unit-op
        #: decomposition as one batched unit pass; False replays the
        #: original one-unit-op-at-a-time loop (bit-identical, kept as the
        #: parity oracle and seed baseline for
        #: ``benchmarks/bench_hotpaths.py``).
        self.batched_mmo = batched_mmo

    # ------------------------------------------------------------------
    def run(self, program: Program) -> ExecutionStats:
        """Execute ``program`` to its halt; returns dynamic statistics."""
        stats = ExecutionStats()
        fragment_bytes = self.tile * self.tile
        for pc, instr in enumerate(program):
            if self.observer is not None:
                self.observer(pc, instr)
            stats.instructions += 1
            if isinstance(instr, LoadMatrix):
                fragment = self.shared_memory.load_fragment(
                    instr.addr, instr.ld, instr.etype, self.tile
                )
                self.registers.write(instr.dst, fragment, instr.etype)
                stats.loads += 1
                stats.shared_bytes_read += fragment_bytes * instr.etype.nbytes
            elif isinstance(instr, StoreMatrix):
                fragment = self.registers.read(instr.src)
                self.shared_memory.store_fragment(
                    instr.addr, instr.ld, instr.etype, fragment, self.tile
                )
                stats.stores += 1
                stats.shared_bytes_written += fragment_bytes * instr.etype.nbytes
            elif isinstance(instr, FillMatrix):
                dtype = MatrixRegisterFile.dtype_for(instr.etype)
                value = instr.value
                if instr.etype is ElementType.B8:
                    value = bool(value)
                fragment = np.full((self.tile, self.tile), value, dtype=dtype)
                self.registers.write(instr.dst, fragment, instr.etype)
                stats.fills += 1
            elif isinstance(instr, Mmo):
                self._execute_mmo(instr, stats)
            elif isinstance(instr, Halt):
                break
            else:  # pragma: no cover - Program validation excludes this
                raise HardwareError(f"unsupported instruction {instr!r}")
        return stats

    # ------------------------------------------------------------------
    def _execute_mmo(self, instr: Mmo, stats: ExecutionStats) -> None:
        ring = instr.opcode.semiring
        input_etype = ElementType.B8 if ring.is_boolean() else ElementType.F16
        output_etype = ElementType.B8 if ring.is_boolean() else ElementType.F32

        for name, reg in (("a", instr.a), ("b", instr.b)):
            etype = self.registers.etype_of(reg)
            if etype is not input_etype:
                raise HardwareError(
                    f"mmo.{instr.opcode.mnemonic} operand {name}=m{reg} holds "
                    f"{etype.suffix}, expected {input_etype.suffix}"
                )
        c_etype = self.registers.etype_of(instr.c)
        if c_etype is not output_etype:
            raise HardwareError(
                f"mmo.{instr.opcode.mnemonic} accumulator c=m{instr.c} holds "
                f"{c_etype.suffix}, expected {output_etype.suffix}"
            )

        a = self.registers.read(instr.a)
        b = self.registers.read(instr.b)
        d = self.registers.read(instr.c).astype(ring.output_dtype)

        if self.batched_mmo:
            d = self._mmo_batched(instr.opcode, a, b, d, stats)
        else:
            d = self._mmo_scalar(instr.opcode, a, b, d, stats)

        self.registers.write(instr.d, d, output_etype)
        stats.mmos += 1
        stats.mmos_by_opcode[instr.opcode] = stats.mmos_by_opcode.get(instr.opcode, 0) + 1

    def _mmo_batched(
        self, opcode: MmoOpcode, a: np.ndarray, b: np.ndarray, d: np.ndarray,
        stats: ExecutionStats,
    ) -> np.ndarray:
        """Evaluate the warp mmo as one batched unit pass.

        The 16×16 fragments are viewed as (4, 4, 4, 4) sub-blocks and the
        whole decomposition — all ``sub × sub`` output subtiles, each with
        its stack of ``sub`` inner steps — goes to the unit as a single
        :meth:`~repro.hw.mxu.Simd2Unit.compute_batched` call, which chains
        the accumulator through the steps exactly like the scalar loop.
        Results and the 64 unit-op count per warp mmo are both unchanged.
        """
        sub = self.tile // UNIT_DIM
        # blk[x, y] = fragment[x*4:(x+1)*4, y*4:(y+1)*4]
        a_blk = a.reshape(sub, UNIT_DIM, sub, UNIT_DIM).transpose(0, 2, 1, 3)
        b_jk = b.reshape(sub, UNIT_DIM, sub, UNIT_DIM).transpose(2, 0, 1, 3)
        acc = d.reshape(sub, UNIT_DIM, sub, UNIT_DIM).transpose(0, 2, 1, 3)
        # steps[i, j, kk] pair a_blk[i, kk] with b[kk, j] (== b_jk[j, kk]).
        step_shape = (sub, sub, sub, UNIT_DIM, UNIT_DIM)
        a_steps = np.broadcast_to(a_blk[:, None], step_shape)
        b_steps = np.broadcast_to(b_jk[None], step_shape)
        acc = self.unit.compute_batched(opcode, a_steps, b_steps, acc)
        stats.unit_ops += sub * sub * sub
        return acc.transpose(0, 2, 1, 3).reshape(self.tile, self.tile)

    def _mmo_scalar(
        self, opcode: MmoOpcode, a: np.ndarray, b: np.ndarray, d: np.ndarray,
        stats: ExecutionStats,
    ) -> np.ndarray:
        """One unit operation at a time (the reference decomposition)."""
        sub = self.tile // UNIT_DIM
        for i in range(sub):
            rows = slice(i * UNIT_DIM, (i + 1) * UNIT_DIM)
            for j in range(sub):
                cols = slice(j * UNIT_DIM, (j + 1) * UNIT_DIM)
                acc = d[rows, cols]
                for kk in range(sub):
                    inner = slice(kk * UNIT_DIM, (kk + 1) * UNIT_DIM)
                    acc = self.unit.compute(
                        opcode, a[rows, inner], b[inner, cols], acc
                    )
                    stats.unit_ops += 1
                d[rows, cols] = acc
        return d
