"""SM occupancy: how many warps a SIMD² kernel can keep resident.

The emulator gives every warp its own scratchpad; real SMs bound resident
warps by shared-memory and register-file capacity, and occupancy bounds
how well the SIMD² units' latency is hidden.  This module computes the
classic occupancy calculation for tile kernels:

- shared memory per warp: operand panels + C/D tiles (exactly what
  :func:`repro.runtime.kernels.build_tile_mmo_program` stages),
- matrix registers per warp: what the program actually uses,

against an SM budget, and reports the limiting resource.  The timing
model's tile-pipeline utilisation factor assumes enough resident warps to
cover unit latency; :func:`occupancy_utilization` quantifies when that
assumption breaks (very deep k panels exhaust shared memory).
"""

from __future__ import annotations

import dataclasses

from repro.core.tiles import TILE
from repro.hw.errors import HardwareError
from repro.isa.opcodes import ElementType
from repro.isa.program import Program

__all__ = ["SmBudget", "OccupancyReport", "kernel_occupancy", "occupancy_utilization"]

_TILE_ELEMS = TILE * TILE


@dataclasses.dataclass(frozen=True)
class SmBudget:
    """Per-SM resources relevant to warp residency (Ampere-class)."""

    shared_memory_bytes: int = 100 * 1024
    matrix_registers: int = 512  # fragment registers across resident warps
    max_warps: int = 48

    def __post_init__(self) -> None:
        if min(self.shared_memory_bytes, self.matrix_registers, self.max_warps) <= 0:
            raise HardwareError("SM budget fields must be positive")


@dataclasses.dataclass(frozen=True)
class OccupancyReport:
    """Residency outcome for one kernel on one SM."""

    warps_resident: int
    limited_by: str  # "shared-memory" | "registers" | "warp-slots"
    shared_bytes_per_warp: int
    registers_per_warp: int

    @property
    def occupancy(self) -> float:
        return self.warps_resident  # absolute count; fraction needs a budget


def tile_kernel_shared_bytes(tiles_k: int, *, boolean: bool) -> int:
    """Scratchpad bytes one Figure-6 warp program stages."""
    if tiles_k <= 0:
        raise HardwareError(f"tiles_k must be positive, got {tiles_k}")
    in_bytes = 1 if boolean else 2
    out_bytes = 1 if boolean else 4
    return in_bytes * 2 * tiles_k * _TILE_ELEMS + out_bytes * 2 * _TILE_ELEMS


def kernel_occupancy(
    program: Program,
    *,
    tiles_k: int,
    boolean: bool = False,
    budget: SmBudget = SmBudget(),
) -> OccupancyReport:
    """Resident warps for a tile program under an SM budget."""
    shared_per_warp = tile_kernel_shared_bytes(tiles_k, boolean=boolean)
    registers_per_warp = max(1, len(program.registers_used()))
    by_shared = budget.shared_memory_bytes // shared_per_warp
    by_registers = budget.matrix_registers // registers_per_warp
    warps = min(by_shared, by_registers, budget.max_warps)
    if warps <= 0:
        raise HardwareError(
            f"kernel needs {shared_per_warp} shared bytes per warp; the SM "
            f"has only {budget.shared_memory_bytes}"
        )
    if warps == by_shared and by_shared <= min(by_registers, budget.max_warps):
        limited = "shared-memory"
    elif warps == by_registers and by_registers <= budget.max_warps:
        limited = "registers"
    else:
        limited = "warp-slots"
    return OccupancyReport(
        warps_resident=warps,
        limited_by=limited,
        shared_bytes_per_warp=shared_per_warp,
        registers_per_warp=registers_per_warp,
    )


def occupancy_utilization(
    report: OccupancyReport, *, warps_to_cover_latency: int = 8
) -> float:
    """Fraction of unit latency hidden by the resident warps.

    With ``w`` resident warps and ``w*`` needed for full latency hiding,
    utilisation ≈ min(1, w / w*) — the standard throughput model.
    """
    if warps_to_cover_latency <= 0:
        raise HardwareError("warps_to_cover_latency must be positive")
    return min(1.0, report.warps_resident / warps_to_cover_latency)
