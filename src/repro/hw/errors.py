"""Hardware-emulator error types."""

from __future__ import annotations

__all__ = ["HardwareError", "MemoryFault", "RegisterFault", "UnsupportedOpcode"]


class HardwareError(RuntimeError):
    """Base class for emulator faults."""


class MemoryFault(HardwareError):
    """Out-of-bounds or misaligned shared-memory access."""


class RegisterFault(HardwareError):
    """Bad register index or read of an uninitialised fragment register."""


class UnsupportedOpcode(HardwareError):
    """The unit does not implement the requested mmo opcode.

    Raised by the baseline MMA unit for any non-``mma`` opcode — this is
    precisely the limitation of existing Tensor Cores that SIMD² removes.
    """
