"""Streaming-multiprocessor model hosting SIMD² units.

The paper integrates SIMD² units into GPU SMs the way Tensor Cores are:
four units per SM, one per sub-core/warp scheduler, sharing the SM's
front-end and memory.  Functionally the SM dispatches warp programs to its
units round-robin and aggregates execution statistics; the *timing* of the
dispatch is the concern of :mod:`repro.timing`, not of this emulator.
"""

from __future__ import annotations

from repro.hw.errors import HardwareError
from repro.hw.mxu import BaselineMmaUnit, Simd2Unit
from repro.hw.shared_memory import SharedMemory
from repro.hw.warp import ExecutionStats, WarpExecutor
from repro.isa.program import Program

__all__ = ["UNITS_PER_SM", "StreamingMultiprocessor"]

#: SIMD² units per SM (one per warp scheduler, as in Ampere).
UNITS_PER_SM = 4


class StreamingMultiprocessor:
    """An SM with a fixed complement of SIMD² (or baseline MMA) units."""

    def __init__(
        self,
        sm_id: int = 0,
        *,
        units_per_sm: int = UNITS_PER_SM,
        baseline_only: bool = False,
        batched_mmo: bool = True,
    ):
        if units_per_sm <= 0:
            raise HardwareError(f"units_per_sm must be positive, got {units_per_sm}")
        self.sm_id = sm_id
        unit_type = BaselineMmaUnit if baseline_only else Simd2Unit
        self.units: list[Simd2Unit] = [unit_type() for _ in range(units_per_sm)]
        self.stats = ExecutionStats()
        self.batched_mmo = batched_mmo
        self._next_unit = 0

    def execute_warp(self, program: Program, shared_memory: SharedMemory) -> ExecutionStats:
        """Run one warp program on the next unit (round-robin)."""
        unit = self.units[self._next_unit]
        self._next_unit = (self._next_unit + 1) % len(self.units)
        executor = WarpExecutor(shared_memory, unit, batched_mmo=self.batched_mmo)
        warp_stats = executor.run(program)
        self.stats.merge(warp_stats)
        return warp_stats

    @property
    def unit_ops(self) -> int:
        """Total unit operations executed across this SM's units."""
        return sum(unit.total_ops for unit in self.units)

    def reset(self) -> None:
        self.stats = ExecutionStats()
        self._next_unit = 0
        for unit in self.units:
            unit.reset_counters()
