"""Per-warp matrix register file.

Like the wmma abstraction, each warp owns a set of fragment registers that
collectively hold 16×16 matrices.  The emulator models a register as a whole
fragment (the per-thread distribution inside the warp is an implementation
detail the paper also abstracts away).  Registers carry their element type
so the executor can detect format mismatches (e.g. feeding an fp32
accumulator into an fp16 operand port).
"""

from __future__ import annotations

import numpy as np

from repro.core.tiles import TILE
from repro.hw.errors import RegisterFault
from repro.isa.instructions import NUM_MATRIX_REGISTERS
from repro.isa.opcodes import ElementType

__all__ = ["MatrixRegisterFile"]

_DTYPES = {
    ElementType.F16: np.dtype(np.float16),
    ElementType.F32: np.dtype(np.float32),
    ElementType.B8: np.dtype(bool),
}


class MatrixRegisterFile:
    """Fragment registers ``m0 .. m63`` holding 16×16 tiles."""

    def __init__(self, num_registers: int = NUM_MATRIX_REGISTERS, tile: int = TILE):
        if num_registers <= 0:
            raise RegisterFault(f"register count must be positive, got {num_registers}")
        self.num_registers = num_registers
        self.tile = tile
        self._values: dict[int, np.ndarray] = {}
        self._etypes: dict[int, ElementType] = {}

    def _check_index(self, index: int) -> None:
        if not (0 <= index < self.num_registers):
            raise RegisterFault(
                f"register m{index} out of range (0..{self.num_registers - 1})"
            )

    def write(self, index: int, fragment: np.ndarray, etype: ElementType) -> None:
        """Write a 16×16 fragment, converting to the register element type."""
        self._check_index(index)
        fragment = np.asarray(fragment)
        if fragment.shape != (self.tile, self.tile):
            raise RegisterFault(
                f"fragment shape {fragment.shape} does not match the "
                f"{self.tile}x{self.tile} register geometry"
            )
        self._values[index] = fragment.astype(_DTYPES[etype], copy=True)
        self._etypes[index] = etype

    def read(self, index: int) -> np.ndarray:
        """Read a fragment; uninitialised registers fault (as the Program
        validator statically guarantees they never do in valid programs)."""
        self._check_index(index)
        if index not in self._values:
            raise RegisterFault(f"register m{index} read before initialisation")
        return self._values[index].copy()

    def etype_of(self, index: int) -> ElementType:
        self._check_index(index)
        if index not in self._etypes:
            raise RegisterFault(f"register m{index} has no element type yet")
        return self._etypes[index]

    def is_initialised(self, index: int) -> bool:
        self._check_index(index)
        return index in self._values

    def clear(self) -> None:
        self._values.clear()
        self._etypes.clear()

    @staticmethod
    def dtype_for(etype: ElementType) -> np.dtype:
        """NumPy dtype backing an element type."""
        return _DTYPES[etype]
