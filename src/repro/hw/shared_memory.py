"""The 1-D shared-memory address space SIMD² load/store operate on.

The paper's data-movement instructions move 16×16 fragments between a flat
shared-memory space and the register file, with a *leading dimension*
stride: row ``r`` of the fragment occupies element addresses
``addr + r*ld .. addr + r*ld + 15``.  Addresses are in *elements* of the
access type (fp16 / fp32 / b8), matching the typed pointers of the CUDA
API the paper builds on.

The emulator backs shared memory with one byte buffer and reinterprets it
per access, so aliasing between types behaves like real hardware (tests
rely on this for fp16-in/fp32-out staging buffers at disjoint offsets).
"""

from __future__ import annotations

import numpy as np

from repro.core.tiles import TILE
from repro.hw.errors import MemoryFault
from repro.isa.opcodes import ElementType

__all__ = ["SharedMemory", "DEFAULT_SHARED_BYTES"]

#: Default capacity. Real SMs have ~100 KiB; the emulator is generous so
#: whole operand panels can be staged at once.
DEFAULT_SHARED_BYTES = 1 << 22

_DTYPES = {
    ElementType.F16: np.dtype(np.float16),
    ElementType.F32: np.dtype(np.float32),
    ElementType.B8: np.dtype(np.uint8),
}


class SharedMemory:
    """A byte-addressable scratchpad with typed, strided fragment access."""

    def __init__(self, size_bytes: int = DEFAULT_SHARED_BYTES):
        if size_bytes <= 0:
            raise MemoryFault(f"shared memory size must be positive, got {size_bytes}")
        self.size_bytes = size_bytes
        self._buffer = np.zeros(size_bytes, dtype=np.uint8)

    # ------------------------------------------------------------------
    def _span_check(self, addr: int, ld: int, etype: ElementType, tile: int) -> None:
        if addr < 0:
            raise MemoryFault(f"negative element address {addr}")
        if ld < tile:
            raise MemoryFault(
                f"leading dimension {ld} smaller than the fragment width {tile}"
            )
        last_element = addr + (tile - 1) * ld + tile
        if last_element * etype.nbytes > self.size_bytes:
            raise MemoryFault(
                f"fragment access [{addr}, ld={ld}, {etype.suffix}] overruns "
                f"shared memory of {self.size_bytes} bytes"
            )

    def _typed(self, etype: ElementType) -> np.ndarray:
        count = self.size_bytes // etype.nbytes
        return self._buffer[: count * etype.nbytes].view(_DTYPES[etype])

    # ------------------------------------------------------------------
    def load_fragment(
        self, addr: int, ld: int, etype: ElementType, tile: int = TILE
    ) -> np.ndarray:
        """Read a tile×tile fragment starting at element address ``addr``."""
        self._span_check(addr, ld, etype, tile)
        space = self._typed(etype)
        if ld == tile:
            fragment = space[addr : addr + tile * tile].reshape(tile, tile).copy()
        else:
            offsets = addr + ld * np.arange(tile)[:, None] + np.arange(tile)[None, :]
            fragment = space[offsets]
        if etype is ElementType.B8:
            return fragment.astype(bool)
        return fragment

    def store_fragment(
        self,
        addr: int,
        ld: int,
        etype: ElementType,
        fragment: np.ndarray,
        tile: int = TILE,
    ) -> None:
        """Write a tile×tile fragment starting at element address ``addr``."""
        fragment = np.asarray(fragment)
        if fragment.shape != (tile, tile):
            raise MemoryFault(
                f"fragment shape {fragment.shape} does not match {tile}x{tile}"
            )
        self._span_check(addr, ld, etype, tile)
        space = self._typed(etype)
        converted = fragment.astype(_DTYPES[etype], copy=False)
        if ld == tile:
            space[addr : addr + tile * tile] = converted.reshape(-1)
        else:
            offsets = addr + ld * np.arange(tile)[:, None] + np.arange(tile)[None, :]
            space[offsets] = converted

    # ------------------------------------------------------------------
    # whole-matrix staging helpers (used by the runtime to play the role of
    # the global→shared copies in the paper's Figure 6 kernel)
    # ------------------------------------------------------------------
    def write_matrix(self, addr: int, matrix: np.ndarray, etype: ElementType) -> int:
        """Write a whole row-major matrix; returns the element address past it."""
        matrix = np.asarray(matrix)
        if matrix.ndim != 2:
            raise MemoryFault(f"expected a 2-D matrix, got shape {matrix.shape}")
        count = matrix.size
        if (addr + count) * etype.nbytes > self.size_bytes or addr < 0:
            raise MemoryFault(
                f"matrix of {count} {etype.suffix} elements at {addr} overruns "
                f"shared memory"
            )
        space = self._typed(etype)
        space[addr : addr + count] = matrix.astype(_DTYPES[etype], copy=False).ravel()
        return addr + count

    def read_matrix(
        self, addr: int, shape: tuple[int, int], etype: ElementType
    ) -> np.ndarray:
        """Read a whole row-major matrix."""
        rows, cols = shape
        count = rows * cols
        if (addr + count) * etype.nbytes > self.size_bytes or addr < 0:
            raise MemoryFault(
                f"matrix of {count} {etype.suffix} elements at {addr} overruns "
                f"shared memory"
            )
        space = self._typed(etype)
        out = space[addr : addr + count].reshape(rows, cols).copy()
        if etype is ElementType.B8:
            return out.astype(bool)
        return out

    def clear(self) -> None:
        self._buffer[:] = 0

    @staticmethod
    def dtype_for(etype: ElementType) -> np.dtype:
        """NumPy dtype backing an element type in shared memory.

        Lets callers pre-convert operand panels once and reuse them across
        many :meth:`write_matrix` calls without per-call conversions.
        """
        return _DTYPES[etype]
