"""Instruction-level execution tracing for the SIMD² emulator.

Attach an :class:`ExecutionTrace` as a :class:`~repro.hw.warp.WarpExecutor`
observer to record the dynamic instruction stream — program counter,
rendered assembly, and a running count per instruction kind — then render
it with :meth:`ExecutionTrace.format`.  Useful when debugging tile kernels
or teaching the ISA; the quickstart example shows the static view, this
shows what actually retired.
"""

from __future__ import annotations

import collections
import dataclasses

from repro.isa.instructions import Instruction
from repro.isa.opcodes import InstructionKind

__all__ = ["TraceRecord", "ExecutionTrace"]


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One retired instruction."""

    sequence: int  # global position in the trace (across programs)
    pc: int  # position within the program
    instruction: Instruction

    def render(self) -> str:
        return f"{self.sequence:6d}  pc={self.pc:<4d} {self.instruction}"


class ExecutionTrace:
    """Records every instruction a warp executor retires.

    Use as the executor's observer::

        trace = ExecutionTrace()
        executor = WarpExecutor(shared_memory, observer=trace)
        executor.run(program)
        print(trace.format())
    """

    def __init__(self, *, limit: int | None = None):
        """``limit`` caps stored records (counting continues past it)."""
        if limit is not None and limit <= 0:
            raise ValueError(f"limit must be positive, got {limit}")
        self.limit = limit
        self.records: list[TraceRecord] = []
        self.counts: collections.Counter[InstructionKind] = collections.Counter()
        self._sequence = 0

    def __call__(self, pc: int, instruction: Instruction) -> None:
        self.counts[instruction.kind] += 1
        if self.limit is None or len(self.records) < self.limit:
            self.records.append(TraceRecord(self._sequence, pc, instruction))
        self._sequence += 1

    def __len__(self) -> int:
        return self._sequence

    @property
    def truncated(self) -> bool:
        return self._sequence > len(self.records)

    def format(self) -> str:
        """Human-readable trace listing with a per-kind summary."""
        lines = [record.render() for record in self.records]
        if self.truncated:
            lines.append(f"... ({self._sequence - len(self.records)} more)")
        summary = ", ".join(
            f"{kind.name.lower()}={count}" for kind, count in sorted(self.counts.items())
        )
        lines.append(f"retired {self._sequence} instructions: {summary}")
        return "\n".join(lines)

    def clear(self) -> None:
        self.records.clear()
        self.counts.clear()
        self._sequence = 0
