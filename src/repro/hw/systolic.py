"""A cycle-level systolic-array model of the MXU (paper Figures 3–4).

The paper motivates SIMD² with the structure of matrix units: a 2-D array
of ALUs fed by operand broadcast/staggering, with partial results reduced
across the array — "one input matrix is broadcast to multiple ALUs … the
output is accumulated across multiple ALUs before being stored".  The
functional unit in :mod:`repro.hw.mxu` abstracts all timing away; this
module models the *dataflow*: an output-stationary ``rows × cols`` PE grid
where

- A enters from the west, one column of operands per cycle, skewed by row,
- B enters from the north, one row per cycle, skewed by column,
- every PE performs one ⊗ and one ⊕ per cycle on the operands passing
  through it, accumulating its ``D`` entry in place,
- results drain after the pipeline empties.

It executes any SIMD² opcode (the PEs use the same configurable ALU pair),
produces bit-identical results to the functional oracle for associative
⊕ (all nine rings — accumulation order along k is sequential, matching the
fp32 chained accumulate), and reports the classic systolic cycle count
``k + rows + cols − 2`` plus per-PE utilisation — giving the repo a
timing-faithful view of *why* the MXU sustains 64 pairs/cycle.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.hw.alu import ALU_CONFIG, apply_oplus, apply_otimes
from repro.hw.errors import HardwareError
from repro.isa.opcodes import MmoOpcode

__all__ = ["SystolicResult", "SystolicArray"]


@dataclasses.dataclass(frozen=True)
class SystolicResult:
    """Outcome of one systolic pass."""

    output: np.ndarray
    cycles: int
    pe_operations: int

    @property
    def utilization(self) -> float:
        """Fraction of PE-cycles that performed useful ⊗⊕ work."""
        return self.pe_operations / (self.cycles * self.output.size)


class SystolicArray:
    """An output-stationary PE grid executing one tile mmo cycle by cycle."""

    def __init__(self, rows: int = 4, cols: int = 4):
        if rows <= 0 or cols <= 0:
            raise HardwareError(f"array must be positive-sized, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols

    def run(
        self,
        opcode: MmoOpcode,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray | None = None,
    ) -> SystolicResult:
        """Stream ``a (rows×k)`` and ``b (k×cols)`` through the array.

        Models the skewed injection schedule explicitly: at cycle ``t``,
        PE ``(i, j)`` sees ``a[i, t-i-j]`` and ``b[t-i-j, j]`` (when that
        index is in range) — the wavefront of the classic output-stationary
        schedule — so the cycle count comes out of the simulation rather
        than a formula (the formula is asserted in tests).
        """
        ring = opcode.semiring
        a = np.asarray(a, dtype=ring.input_dtype).astype(ring.output_dtype)
        b = np.asarray(b, dtype=ring.input_dtype).astype(ring.output_dtype)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise HardwareError(f"bad operand shapes A{a.shape} x B{b.shape}")
        if a.shape[0] != self.rows or b.shape[1] != self.cols:
            raise HardwareError(
                f"operands {a.shape}x{b.shape} do not match the "
                f"{self.rows}x{self.cols} PE grid"
            )
        k = a.shape[1]
        if k == 0:
            base = ring.full((self.rows, self.cols)) if c is None else np.asarray(
                c, dtype=ring.output_dtype
            )
            return SystolicResult(output=base.copy(), cycles=0, pe_operations=0)

        oplus_mode, otimes_mode = ALU_CONFIG[opcode]
        accumulators = np.full(
            (self.rows, self.cols), ring.oplus_identity, dtype=ring.output_dtype
        )
        initialised = np.zeros((self.rows, self.cols), dtype=bool)

        cycles = 0
        pe_operations = 0
        # Last useful wavefront: t such that t - (rows-1) - (cols-1) = k-1.
        last_cycle = k - 1 + (self.rows - 1) + (self.cols - 1)
        for t in range(last_cycle + 1):
            cycles += 1
            for i in range(self.rows):
                for j in range(self.cols):
                    step = t - i - j
                    if not (0 <= step < k):
                        continue
                    product = apply_otimes(otimes_mode, a[i, step], b[step, j])
                    product = np.asarray(product, dtype=ring.output_dtype)
                    if initialised[i, j]:
                        accumulators[i, j] = apply_oplus(
                            oplus_mode, accumulators[i, j], product
                        )
                    else:
                        accumulators[i, j] = product
                        initialised[i, j] = True
                    pe_operations += 1

        output = accumulators
        if c is not None:
            c = np.asarray(c, dtype=ring.output_dtype)
            if c.shape != (self.rows, self.cols):
                raise HardwareError(
                    f"accumulator shape {c.shape} does not match the grid"
                )
            output = np.asarray(
                apply_oplus(oplus_mode, c, output), dtype=ring.output_dtype
            )
        return SystolicResult(
            output=output, cycles=cycles, pe_operations=pe_operations
        )

    def pipelined_cycles(self, k: int, tiles: int) -> int:
        """Cycles for ``tiles`` back-to-back passes with software pipelining.

        After the first tile fills the array, subsequent tiles inject one
        wavefront per cycle: ``k·tiles + rows + cols − 2`` — the steady-
        state throughput (one k-step per cycle) the timing model's
        utilisation factor is built on.
        """
        if k <= 0 or tiles <= 0:
            raise HardwareError("k and tiles must be positive")
        return k * tiles + self.rows + self.cols - 2
