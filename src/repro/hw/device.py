"""Device-level emulator: SMs + global memory + kernel dispatch.

:class:`Simd2Device` plays the role of the GPU in the paper's emulation
framework: the host program allocates device buffers, copies data in,
launches tile kernels (lists of warp work-items), and copies results out.
The device spreads warps across SMs round-robin and aggregates statistics,
which the validation flow (paper Section 5.1) compares against predicted
instruction counts and the timing model converts into cycles.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.hw.errors import HardwareError, MemoryFault
from repro.hw.shared_memory import SharedMemory
from repro.hw.sm import StreamingMultiprocessor
from repro.hw.warp import ExecutionStats
from repro.isa.program import Program

__all__ = ["WarpWorkItem", "Simd2Device"]


@dataclasses.dataclass
class WarpWorkItem:
    """One warp's work: a program plus the scratchpad it runs against."""

    program: Program
    shared_memory: SharedMemory


class Simd2Device:
    """A GPU-like device populated with SIMD² units."""

    def __init__(self, *, sm_count: int = 4, baseline_only: bool = False):
        if sm_count <= 0:
            raise HardwareError(f"sm_count must be positive, got {sm_count}")
        self.sms = [
            StreamingMultiprocessor(sm_id=i, baseline_only=baseline_only)
            for i in range(sm_count)
        ]
        self.global_memory: dict[str, np.ndarray] = {}
        self.stats = ExecutionStats()
        self.kernel_launches = 0

    # ------------------------------------------------------------------
    # global-memory management (cudaMalloc / cudaMemcpy analogues)
    # ------------------------------------------------------------------
    def malloc(self, name: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        """Allocate a named device buffer (zero-initialised)."""
        if name in self.global_memory:
            raise MemoryFault(f"buffer {name!r} already allocated")
        buffer = np.zeros(shape, dtype=dtype)
        self.global_memory[name] = buffer
        return buffer

    def memcpy_h2d(self, name: str, host_array: np.ndarray) -> None:
        """Copy host data into a device buffer (shapes must match)."""
        buffer = self._buffer(name)
        host_array = np.asarray(host_array)
        if host_array.shape != buffer.shape:
            raise MemoryFault(
                f"h2d shape mismatch for {name!r}: host {host_array.shape}, "
                f"device {buffer.shape}"
            )
        buffer[...] = host_array.astype(buffer.dtype)

    def memcpy_d2h(self, name: str) -> np.ndarray:
        """Copy a device buffer back to the host (returns a copy)."""
        return self._buffer(name).copy()

    def free(self, name: str) -> None:
        self._buffer(name)
        del self.global_memory[name]

    def _buffer(self, name: str) -> np.ndarray:
        try:
            return self.global_memory[name]
        except KeyError:
            raise MemoryFault(f"no device buffer named {name!r}") from None

    # ------------------------------------------------------------------
    # kernel dispatch
    # ------------------------------------------------------------------
    def launch(self, work_items: list[WarpWorkItem]) -> ExecutionStats:
        """Run a kernel: dispatch warps across SMs round-robin."""
        launch_stats = ExecutionStats()
        for index, item in enumerate(work_items):
            sm = self.sms[index % len(self.sms)]
            warp_stats = sm.execute_warp(item.program, item.shared_memory)
            launch_stats.merge(warp_stats)
        self.stats.merge(launch_stats)
        self.kernel_launches += 1
        return launch_stats

    # ------------------------------------------------------------------
    @property
    def unit_ops(self) -> int:
        return sum(sm.unit_ops for sm in self.sms)

    def reset(self) -> None:
        """Clear statistics and counters (keeps global memory)."""
        self.stats = ExecutionStats()
        self.kernel_launches = 0
        for sm in self.sms:
            sm.reset()
