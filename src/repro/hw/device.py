"""Device-level emulator: SMs + global memory + kernel dispatch.

:class:`Simd2Device` plays the role of the GPU in the paper's emulation
framework: the host program allocates device buffers, copies data in,
launches tile kernels (lists of warp work-items), and copies results out.
The device spreads warps across SMs round-robin and aggregates statistics,
which the validation flow (paper Section 5.1) compares against predicted
instruction counts and the timing model converts into cycles.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses

import numpy as np

from repro.hw.errors import HardwareError, MemoryFault
from repro.hw.shared_memory import SharedMemory
from repro.hw.sm import StreamingMultiprocessor
from repro.hw.warp import ExecutionStats
from repro.isa.program import Program

__all__ = ["WarpWorkItem", "Simd2Device"]


@dataclasses.dataclass
class WarpWorkItem:
    """One warp's work: a program plus the scratchpad it runs against."""

    program: Program
    shared_memory: SharedMemory


class Simd2Device:
    """A GPU-like device populated with SIMD² units."""

    def __init__(
        self,
        *,
        sm_count: int = 4,
        baseline_only: bool = False,
        batched_mmo: bool = True,
        parallel: bool = False,
    ):
        if sm_count <= 0:
            raise HardwareError(f"sm_count must be positive, got {sm_count}")
        self.sms = [
            StreamingMultiprocessor(
                sm_id=i, baseline_only=baseline_only, batched_mmo=batched_mmo
            )
            for i in range(sm_count)
        ]
        self.global_memory: dict[str, np.ndarray] = {}
        self.stats = ExecutionStats()
        self.kernel_launches = 0
        #: When True, :meth:`launch` fans work items across one worker
        #: thread per SM instead of running them serially.  The SM
        #: assignment and statistics stay deterministic (see launch()).
        self.parallel = bool(parallel)

    # ------------------------------------------------------------------
    # global-memory management (cudaMalloc / cudaMemcpy analogues)
    # ------------------------------------------------------------------
    def malloc(self, name: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        """Allocate a named device buffer (zero-initialised)."""
        if name in self.global_memory:
            raise MemoryFault(f"buffer {name!r} already allocated")
        buffer = np.zeros(shape, dtype=dtype)
        self.global_memory[name] = buffer
        return buffer

    def memcpy_h2d(self, name: str, host_array: np.ndarray) -> None:
        """Copy host data into a device buffer (shapes must match)."""
        buffer = self._buffer(name)
        host_array = np.asarray(host_array)
        if host_array.shape != buffer.shape:
            raise MemoryFault(
                f"h2d shape mismatch for {name!r}: host {host_array.shape}, "
                f"device {buffer.shape}"
            )
        buffer[...] = host_array.astype(buffer.dtype)

    def memcpy_d2h(self, name: str) -> np.ndarray:
        """Copy a device buffer back to the host (returns a copy)."""
        return self._buffer(name).copy()

    def free(self, name: str) -> None:
        self._buffer(name)
        del self.global_memory[name]

    def _buffer(self, name: str) -> np.ndarray:
        try:
            return self.global_memory[name]
        except KeyError:
            raise MemoryFault(f"no device buffer named {name!r}") from None

    # ------------------------------------------------------------------
    # kernel dispatch
    # ------------------------------------------------------------------
    def launch(self, work_items: list[WarpWorkItem]) -> ExecutionStats:
        """Run a kernel: dispatch warps across SMs round-robin.

        With ``parallel=True`` each SM's bucket of work items runs on its
        own worker thread.  The warp→SM mapping (``index % sm_count``), the
        serial order within each SM, and the statistics merge order (work-
        item submission order) are all identical to the serial path, so
        results and aggregate counters are deterministic either way.
        """
        if self.parallel and len(self.sms) > 1 and len(work_items) > 1:
            per_item = self._launch_parallel(work_items)
        else:
            per_item = [
                self.sms[index % len(self.sms)].execute_warp(
                    item.program, item.shared_memory
                )
                for index, item in enumerate(work_items)
            ]
        launch_stats = ExecutionStats()
        for warp_stats in per_item:
            launch_stats.merge(warp_stats)
        self.stats.merge(launch_stats)
        self.kernel_launches += 1
        return launch_stats

    def _launch_parallel(self, work_items: list[WarpWorkItem]) -> list[ExecutionStats]:
        """One worker thread per SM; returns per-item stats in launch order.

        Work items touch disjoint scratchpads and each SM (with its units)
        is driven by exactly one thread, so there is no shared mutable
        state across workers.
        """
        per_item: list[ExecutionStats | None] = [None] * len(work_items)
        buckets: list[list[tuple[int, WarpWorkItem]]] = [[] for _ in self.sms]
        for index, item in enumerate(work_items):
            buckets[index % len(self.sms)].append((index, item))

        def run_bucket(sm: StreamingMultiprocessor, bucket) -> None:
            for index, item in bucket:
                per_item[index] = sm.execute_warp(item.program, item.shared_memory)

        with concurrent.futures.ThreadPoolExecutor(
            max_workers=len(self.sms)
        ) as pool:
            futures = [
                pool.submit(run_bucket, sm, bucket)
                for sm, bucket in zip(self.sms, buckets)
                if bucket
            ]
            for future in futures:
                future.result()
        return per_item  # type: ignore[return-value]

    # ------------------------------------------------------------------
    @property
    def unit_ops(self) -> int:
        return sum(sm.unit_ops for sm in self.sms)

    def reset(self) -> None:
        """Clear statistics and counters (keeps global memory)."""
        self.stats = ExecutionStats()
        self.kernel_launches = 0
        for sm in self.sms:
            sm.reset()
