"""Schedulers: run a LaunchGraph serially or on a thread pool.

The :class:`Scheduler` protocol has one method — ``run(graph, context=)``
— and two implementations:

- :class:`SerialExecutor` walks nodes in build order on the calling
  thread: bit-identical to the hand-rolled loops the entry points had
  before graphs existed, and the default
  (:func:`resolve_scheduler` returns a shared instance when the context
  carries no scheduler).
- :class:`ThreadPoolExecutor` dispatches nodes whose dependencies are
  satisfied onto a worker pool.  Results stay bit-identical to serial on
  every ring because the graph pins all the order that matters: fold
  order lives in :class:`~repro.sched.graph.ReduceStep` /
  :class:`~repro.sched.graph.GatherStep` nodes, and fault ordinals were
  reserved at build time.  Failures are deterministic too — when nodes
  error concurrently, the error of the *smallest node index* propagates,
  which is the one a serial run would have hit first.

Thread-safety is capability-driven: a backend declaring
``thread_safe=False`` (the emulate backend stages operands through a
shared default device) has its deviceless launches serialised under one
lock, while launches carrying their own device (multi-device bands) run
concurrently under per-device locks.

Both executors honour the context's SLO controls between node
dispatches: a :class:`~repro.resilience.cancel.CancellationToken` or an
:class:`~repro.resilience.budget.ExecutionBudget` deadline stops the run
cooperatively — in-flight nodes drain, pending nodes never start, and
the typed error (:class:`~repro.resilience.cancel.OperationCancelled` /
:class:`~repro.resilience.budget.DeadlineExceeded`) reports exactly
which node indices completed.  Under the serial executor that set is a
build-order prefix; under the thread pool it is dependency-closed.
Contexts carrying neither pay a single boolean check per run.
"""

from __future__ import annotations

import concurrent.futures
import threading
from contextlib import nullcontext
from typing import TYPE_CHECKING, ContextManager, Protocol, runtime_checkable

import numpy as np

from repro.hw.errors import HardwareError
from repro.hooks.pipeline import emit_event
from repro.runtime.kernels import KernelStats, execute_compiled, mmo_tiled
from repro.sched.graph import (
    CheckStep,
    GatherStep,
    GraphError,
    LaunchGraph,
    LaunchStep,
    ReduceStep,
    Ref,
    Step,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.context import ExecutionContext

__all__ = [
    "GraphResult",
    "Scheduler",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "resolve_scheduler",
]

def _resolve(
    graph: LaunchGraph, values: "list[np.ndarray | bool | None]", ref: Ref
) -> "np.ndarray | bool":
    """Materialise a reference against computed node values."""
    base: "np.ndarray | bool | None"
    if ref.const is not None:
        base = graph.constants[ref.const]
    else:
        assert ref.node is not None
        base = values[ref.node]
    if base is None:
        raise GraphError(f"reference to unevaluated node {ref.node}")
    if ref.rows is not None:
        assert isinstance(base, np.ndarray)
        base = base[ref.rows[0] : ref.rows[1]]
    if ref.cols is not None:
        assert isinstance(base, np.ndarray)
        base = base[:, ref.cols[0] : ref.cols[1]]
    return base


class GraphResult:
    """Computed node values and per-launch kernel statistics.

    Index with any :class:`~repro.sched.graph.Ref` the builder returned
    (``result[ref]``); :meth:`stats_of` returns the
    :class:`~repro.runtime.kernels.KernelStats` of a launch node.
    """

    def __init__(
        self,
        graph: LaunchGraph,
        values: "list[np.ndarray | bool | None]",
        stats: "list[KernelStats | None]",
    ):
        self.graph = graph
        self._values = values
        self._stats = stats

    def __getitem__(self, ref: Ref) -> "np.ndarray | bool":
        return _resolve(self.graph, self._values, ref)

    def stats_of(self, ref: Ref) -> KernelStats:
        if ref.node is None:
            raise GraphError("constants carry no kernel statistics")
        stats = self._stats[ref.node]
        if stats is None:
            raise GraphError(f"node {ref.node} is not a launch node")
        return stats

    @property
    def completed_nodes(self) -> tuple[int, ...]:
        """Indices of evaluated nodes (every index on a completed run)."""
        return tuple(
            index for index, value in enumerate(self._values) if value is not None
        )


def _interruptible(context: "ExecutionContext") -> bool:
    """Whether the context carries any between-node stop condition."""
    return (
        getattr(context, "cancel", None) is not None
        or getattr(context, "budget", None) is not None
    )


def _interrupt_error(
    context: "ExecutionContext",
    completed: "tuple[int, ...] | None",
    total: int,
) -> BaseException | None:
    """The typed error the context's stop conditions currently demand.

    Checked between node dispatches by both executors.  Cancellation
    wins over the deadline when both have tripped (racing cancellers
    converge on one stable reason, see
    :class:`~repro.resilience.cancel.CancellationToken`); both
    conditions are sticky, so an interrupt observed mid-run is still
    observable after the in-flight drain re-derives the completed set.
    """
    cancel = getattr(context, "cancel", None)
    if cancel is not None and cancel.cancelled:
        from repro.resilience.cancel import OperationCancelled  # lazy: layered above

        return OperationCancelled(
            cancel.reason, nodes_completed=completed, total_nodes=total
        )
    budget = getattr(context, "budget", None)
    if budget is not None:
        # Lazy: repro.resilience sits above this package in the layering.
        from repro.resilience.budget import DeadlineExceeded
        from repro.resilience.clock import resolve_clock

        try:
            budget.check_deadline(
                resolve_clock(context),
                nodes_completed=completed,
                where="scheduler",
            )
        except DeadlineExceeded as exc:
            return exc
    return None


@runtime_checkable
class Scheduler(Protocol):
    """Anything that can run a launch graph to completion."""

    def run(
        self, graph: LaunchGraph, *, context: "ExecutionContext"
    ) -> GraphResult:
        """Evaluate every node and return the result table."""
        ...  # pragma: no cover - protocol


class _LockTable:
    """Per-device and per-backend serialisation for one graph run."""

    def __init__(self, serialize_backend: bool):
        self._guard = threading.Lock()
        self._device_locks: dict[int, threading.Lock] = {}
        self._backend_lock = threading.Lock() if serialize_backend else None

    def guard_for(self, node: LaunchStep) -> ContextManager[object]:
        if node.device is not None:
            with self._guard:
                lock = self._device_locks.setdefault(
                    id(node.device), threading.Lock()
                )
            return lock
        if self._backend_lock is not None:
            return self._backend_lock
        return nullcontext()


_NO_LOCKS = _LockTable(serialize_backend=False)


def _needs_backend_lock(context: "ExecutionContext") -> bool:
    from repro.backends.base import capabilities_of, get_backend  # lazy: layered above

    return not capabilities_of(get_backend(context.backend)).thread_safe


def _run_launch(
    graph: LaunchGraph,
    node: LaunchStep,
    values: "list[np.ndarray | bool | None]",
    context: "ExecutionContext",
) -> tuple[np.ndarray, KernelStats]:
    """One launch node: device swap, checksums, retries, failure wrapping."""
    a = _resolve(graph, values, node.a)
    b = _resolve(graph, values, node.b)
    c = None if node.c is None else _resolve(graph, values, node.c)
    assert isinstance(a, np.ndarray) and isinstance(b, np.ndarray)
    assert c is None or isinstance(c, np.ndarray)
    ctx = context if node.device is None else context.replace(device=node.device)

    checker = None
    sums = None
    policy = None
    retryable: "tuple[type[BaseException], ...]" = ()
    if node.checked or node.retry is not None:
        # Lazy: repro.resilience sits above this package in the layering.
        from repro.resilience.checksum import CheckedLaunch, mmo_checksums
        from repro.resilience.policy import RETRYABLE, RetryPolicy

        retryable = RETRYABLE
        policy = node.retry if node.retry is not None else RetryPolicy()
        if node.checked:
            checker = CheckedLaunch(rtol=node.rtol, atol=node.atol)
            sums = mmo_checksums(
                node.opcode.semiring, a, b, c, rtol=node.rtol, atol=node.atol
            )

    attempts = policy.max_attempts if policy is not None else 1
    for attempt in range(attempts):
        # The build-time ordinal belongs to the first attempt; a retry
        # claims a fresh one at execute time, deterministically escaping
        # a transient scheduled fault (the pre-graph retry semantics).
        ordinal = node.fault_ordinal if attempt == 0 else None
        try:
            if node.compiled is not None:
                result, stats = execute_compiled(
                    node.compiled, a, b, c,
                    context=ctx, api=node.api,
                    cache_hit=node.cache_hit,
                    validate_inputs=node.validate_inputs,
                    fault_ordinal=ordinal,
                )
            else:
                result, stats = mmo_tiled(
                    node.opcode, a, b, c,
                    context=ctx, api=node.api,
                    validate_inputs=node.validate_inputs,
                    fault_ordinal=ordinal,
                )
            if checker is not None and sums is not None:
                checker.verify(sums, result, context=ctx, api=node.api)
            return result, stats
        except HardwareError as exc:
            if not node.wrap_hw_errors:
                raise
            from repro.resilience.faults import DeviceFailure  # lazy: layered above

            assert node.device_index is not None
            raise DeviceFailure(node.device_index, str(exc)) from exc
        except retryable as exc:
            if attempt + 1 >= attempts:
                raise
            emit_event(
                context, kind="retry", api=node.api,
                attempt=attempt + 1, device_index=node.device_index,
                detail=f"{node.label or node.api} attempt "
                       f"{attempt + 1} failed: {exc}",
            )
    raise AssertionError("unreachable: retry loop returns or raises")


def _matrices_match(
    x: "np.ndarray | bool", y: "np.ndarray | bool", equal_nan: bool
) -> bool:
    arr = np.asarray(x)
    if equal_nan and np.issubdtype(arr.dtype, np.floating):
        return bool(np.array_equal(arr, np.asarray(y), equal_nan=True))
    return bool(np.array_equal(arr, np.asarray(y)))


def _run_node(
    graph: LaunchGraph,
    index: int,
    values: "list[np.ndarray | bool | None]",
    context: "ExecutionContext",
    locks: _LockTable,
) -> "tuple[np.ndarray | bool, KernelStats | None]":
    node: Step = graph.nodes[index]
    if isinstance(node, LaunchStep):
        with locks.guard_for(node):
            result, stats = _run_launch(graph, node, values, context)
        return result, stats
    if isinstance(node, ReduceStep):
        combined = _resolve(graph, values, node.inputs[0])
        assert isinstance(combined, np.ndarray)
        for ref in node.inputs[1:]:
            combined = np.asarray(
                node.semiring.oplus(combined, _resolve(graph, values, ref)),
                dtype=node.semiring.output_dtype,
            )
        return combined, None
    if isinstance(node, GatherStep):
        out = np.empty(node.shape, dtype=node.dtype)
        for row_start, row_stop, ref in node.pieces:
            out[row_start:row_stop] = _resolve(graph, values, ref)
        return out, None
    if isinstance(node, CheckStep):
        return (
            _matrices_match(
                _resolve(graph, values, node.x),
                _resolve(graph, values, node.y),
                node.equal_nan,
            ),
            None,
        )
    raise GraphError(f"unknown node type {type(node).__name__}")


class SerialExecutor:
    """Node-at-a-time in build order — the pre-graph dispatch, exactly.

    With a cancellation token or budget on the context, the token and
    deadline are checked *before each node*: a trip raises the typed
    error with the build-order prefix of completed indices.  A node
    already running is never interrupted mid-kernel.
    """

    def run(
        self, graph: LaunchGraph, *, context: "ExecutionContext"
    ) -> GraphResult:
        total = len(graph.nodes)
        values: "list[np.ndarray | bool | None]" = [None] * total
        stats: "list[KernelStats | None]" = [None] * total
        interruptible = _interruptible(context)
        for index in range(total):
            if interruptible:
                error = _interrupt_error(context, tuple(range(index)), total)
                if error is not None:
                    raise error
            values[index], stats[index] = _run_node(
                graph, index, values, context, _NO_LOCKS
            )
        return GraphResult(graph, values, stats)


class ThreadPoolExecutor:
    """Run independent nodes concurrently; everything ordered stays pinned.

    Ready nodes are submitted in index order; completed futures are
    consumed in index order; a failure stops further submission, drains
    the in-flight work, and re-raises the smallest-index error — so the
    observable behaviour (result bytes, fault injections, which error
    surfaces) matches :class:`SerialExecutor` on every graph the
    builders produce.
    """

    def __init__(self, max_workers: int = 4):
        if max_workers <= 0:
            raise GraphError(f"max_workers must be positive, got {max_workers}")
        self.max_workers = max_workers

    def run(
        self, graph: LaunchGraph, *, context: "ExecutionContext"
    ) -> GraphResult:
        total = len(graph.nodes)
        values: "list[np.ndarray | bool | None]" = [None] * total
        stats: "list[KernelStats | None]" = [None] * total
        dependents: list[list[int]] = [[] for _ in range(total)]
        remaining = [0] * total
        for index in range(total):
            deps = graph.dependencies(index)
            remaining[index] = len(deps)
            for dep in deps:
                dependents[dep].append(index)
        locks = _LockTable(serialize_backend=_needs_backend_lock(context))
        errors: list[tuple[int, BaseException]] = []
        pending: "dict[concurrent.futures.Future[tuple[np.ndarray | bool, KernelStats | None]], int]" = {}
        interruptible = _interruptible(context)
        interrupted = False

        with concurrent.futures.ThreadPoolExecutor(
            max_workers=self.max_workers
        ) as pool:

            def submit(index: int) -> None:
                future = pool.submit(
                    _run_node, graph, index, values, context, locks
                )
                pending[future] = index

            def halted() -> bool:
                """Stop submitting?  Errors and interrupts both drain."""
                nonlocal interrupted
                if errors or interrupted:
                    return True
                if (
                    interruptible
                    and _interrupt_error(context, None, total) is not None
                ):
                    interrupted = True
                return interrupted

            for index in range(total):
                if remaining[index] == 0:
                    if halted():
                        break
                    submit(index)
            while pending:
                done, _ = concurrent.futures.wait(
                    pending, return_when=concurrent.futures.FIRST_COMPLETED
                )
                for future in sorted(done, key=lambda f: pending[f]):
                    index = pending.pop(future)
                    exc = future.exception()
                    if exc is not None:
                        errors.append((index, exc))
                        continue
                    values[index], stats[index] = future.result()
                    if halted():
                        continue  # drain only; stop expanding the frontier
                    for dependent in dependents[index]:
                        remaining[dependent] -= 1
                        if remaining[dependent] == 0:
                            submit(dependent)
        if errors:
            errors.sort(key=lambda pair: pair[0])
            raise errors[0][1]
        if interrupted and any(value is None for value in values):
            # Re-derive the completed set after the drain: the stop
            # conditions are sticky, so the error is still demanded.  A
            # run whose nodes all finished anyway returns normally —
            # matching the serial executor, which only checks before
            # *pending* nodes.
            completed = tuple(
                index for index, value in enumerate(values) if value is not None
            )
            error = _interrupt_error(context, completed, total)
            if error is not None:
                raise error
        return GraphResult(graph, values, stats)


_SERIAL = SerialExecutor()


def resolve_scheduler(context: "ExecutionContext") -> Scheduler:
    """The context's scheduler, defaulting to the shared serial executor."""
    scheduler = context.scheduler
    return scheduler if scheduler is not None else _SERIAL
