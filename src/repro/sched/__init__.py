"""Execution graphs and scheduling for loop-shaped SIMD² dispatch.

The lower-then-schedule split applied *across* launches: every
loop-shaped entry point in :mod:`repro.runtime` (closure iterations,
:func:`~repro.runtime.batched.batched_mmo`, split-k,
:func:`~repro.runtime.multidevice.mmo_tiled_multi_device`, the
:class:`~repro.runtime.host.HostRuntime` closure loop) lowers its work
onto a :class:`LaunchGraph` — launch / reduce / gather / check nodes
with explicit data dependencies and build-time fault ordinals — and a
:class:`Scheduler` decides how to run it.

:class:`SerialExecutor` (the default) is bit-identical to the pre-graph
hand-rolled loops; :class:`ThreadPoolExecutor` runs independent nodes
concurrently and is *also* bit-identical on every ring, because the
graph pins all order that matters (fold order, gather windows, fault
ordinals).  Attach a scheduler via the execution context::

    from repro.sched import ThreadPoolExecutor
    with use_context(scheduler=ThreadPoolExecutor(max_workers=4)):
        closure("min-plus", adjacency, bands=4)

See :mod:`repro.sched.graph` for the IR, :mod:`repro.sched.executor`
for the schedulers, :mod:`repro.sched.builders` for the lowerings.
"""

from repro.sched.builders import (
    ArtifactPool,
    batched_graph,
    closure_step_graph,
    multidevice_graph,
    split_k_graph,
)
from repro.sched.executor import (
    GraphResult,
    Scheduler,
    SerialExecutor,
    ThreadPoolExecutor,
    resolve_scheduler,
)
from repro.sched.graph import (
    CheckStep,
    GatherStep,
    GraphBuilder,
    GraphError,
    LaunchGraph,
    LaunchStep,
    Ref,
    ReduceStep,
    Step,
)

__all__ = [
    "ArtifactPool",
    "CheckStep",
    "GatherStep",
    "GraphBuilder",
    "GraphError",
    "GraphResult",
    "LaunchGraph",
    "LaunchStep",
    "Ref",
    "ReduceStep",
    "Scheduler",
    "SerialExecutor",
    "Step",
    "ThreadPoolExecutor",
    "batched_graph",
    "closure_step_graph",
    "multidevice_graph",
    "resolve_scheduler",
    "split_k_graph",
]
