"""LaunchGraph: the explicit intermediate form of loop-shaped dispatch.

Every loop-shaped entry point in :mod:`repro.runtime` — closure
iterations, batch items, split-k partials, multi-device row bands — used
to hand-roll its own orchestration loop around
:func:`~repro.runtime.kernels.execute_compiled`.  This module gives those
loops one shared intermediate form: a :class:`LaunchGraph` whose nodes
are compiled-launch, ⊕-reduce, row-gather, and convergence-check steps
with *explicit* data dependencies, built by :class:`GraphBuilder` and run
by a :class:`~repro.sched.executor.Scheduler`.  The same lower-then-
schedule split the compile layer takes per launch (lower the shape, then
pick how to execute the artifact), applied one level up, across launches.

Two properties are load-bearing for bit-identical parallel execution:

- **Pinned fold order.**  ⊕ is associative and commutative on every
  SIMD² ring, but floating-point ⊕ is not: a :class:`ReduceStep` folds
  its inputs strictly left to right and a :class:`GatherStep` writes
  fixed row windows, so the combined result never depends on which node
  finished first.
- **Build-time fault ordinals.**  :class:`GraphBuilder.launch` reserves
  each node's :class:`~repro.resilience.faults.FaultPlan` ordinal at
  *build* time, in node order (degenerate empty-output launches claim
  none, matching direct dispatch).  A threaded executor therefore
  injects exactly the faults a serial run would — the schedule never
  depends on thread interleaving.

Graphs are immutable once built; rebuilding (a repartition after a
device failure, the next closure iteration) is a fresh
:class:`GraphBuilder` pass, which is what makes resilience a graph
*rewrite* rather than bespoke control flow.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Iterator, Union

import numpy as np

from repro.isa.opcodes import MmoOpcode
from repro.runtime.api import RuntimeError_

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compile.artifact import CompiledMmo
    from repro.core.semiring import Semiring
    from repro.hw.device import Simd2Device
    from repro.resilience.policy import RetryPolicy
    from repro.runtime.context import ExecutionContext

__all__ = [
    "CheckStep",
    "GatherStep",
    "GraphBuilder",
    "GraphError",
    "LaunchGraph",
    "LaunchStep",
    "Ref",
    "ReduceStep",
    "Step",
]


class GraphError(RuntimeError_):
    """Malformed graph construction or value reference."""


@dataclasses.dataclass(frozen=True)
class Ref:
    """A value reference: a constant or a node output, optionally windowed.

    Exactly one of ``node``/``const`` is set.  ``rows``/``cols`` are
    half-open index windows applied on resolution (views, never copies),
    so one constant operand can feed many banded launches without
    materialising the slices in the graph.
    """

    node: int | None = None
    const: int | None = None
    rows: tuple[int, int] | None = None
    cols: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        if (self.node is None) == (self.const is None):
            raise GraphError(
                "a Ref names exactly one of a node output or a constant"
            )

    def window(
        self,
        *,
        rows: tuple[int, int] | None = None,
        cols: tuple[int, int] | None = None,
    ) -> "Ref":
        """A copy of this reference narrowed to the given index windows."""
        if rows is not None and self.rows is not None:
            raise GraphError("Ref rows are already windowed")
        if cols is not None and self.cols is not None:
            raise GraphError("Ref cols are already windowed")
        return dataclasses.replace(
            self,
            rows=rows if rows is not None else self.rows,
            cols=cols if cols is not None else self.cols,
        )


@dataclasses.dataclass(frozen=True)
class LaunchStep:
    """One mmo launch: replay a compiled artifact (or single-shot dispatch).

    ``compiled is None`` dispatches through
    :func:`~repro.runtime.kernels.mmo_tiled` (legacy backends without the
    compile/execute split, planning backends, degenerate shapes);
    otherwise :func:`~repro.runtime.kernels.execute_compiled` replays the
    artifact with ``cache_hit`` recorded on the launch.  ``fault_ordinal``
    is the node's build-time-reserved fault-plan ordinal (``None`` when
    no plan rides the context, or for degenerate empty-output launches).

    The resilience fields make retry/fallback per-node *policy*:
    ``checked`` verifies the result against its ⊕-fold ABFT checksums,
    ``retry`` re-runs the node on retryable failures (each retry claims a
    fresh ordinal, deterministically escaping transient faults), and
    ``wrap_hw_errors`` converts emulator
    :class:`~repro.hw.errors.HardwareError`\\ s into
    :class:`~repro.resilience.faults.DeviceFailure` carrying
    ``device_index`` so the caller can repartition.
    """

    api: str
    opcode: MmoOpcode
    a: Ref
    b: Ref
    c: Ref | None = None
    compiled: "CompiledMmo | None" = None
    cache_hit: bool | None = None
    validate_inputs: bool = True
    fault_ordinal: int | None = None
    device: "Simd2Device | None" = None
    device_index: int | None = None
    checked: bool = False
    retry: "RetryPolicy | None" = None
    wrap_hw_errors: bool = False
    rtol: float = 1e-4
    atol: float = 1e-6
    label: str = ""

    def refs(self) -> Iterator[Ref]:
        yield self.a
        yield self.b
        if self.c is not None:
            yield self.c


@dataclasses.dataclass(frozen=True)
class ReduceStep:
    """Fold ``inputs`` with the ring's ⊕, strictly left to right.

    The first input is taken as-is; every subsequent fold is cast to the
    ring's output dtype — exactly the split-k combine the runtime
    performed inline, so serial and threaded runs produce byte-identical
    partial sums regardless of node completion order.
    """

    semiring: "Semiring"
    inputs: tuple[Ref, ...]

    def __post_init__(self) -> None:
        if not self.inputs:
            raise GraphError("ReduceStep needs at least one input")

    def refs(self) -> Iterator[Ref]:
        yield from self.inputs


@dataclasses.dataclass(frozen=True)
class GatherStep:
    """Assemble row bands into one ``shape`` output, windows pinned."""

    shape: tuple[int, int]
    dtype: np.dtype
    pieces: tuple[tuple[int, int, Ref], ...]

    def refs(self) -> Iterator[Ref]:
        for _, _, ref in self.pieces:
            yield ref


@dataclasses.dataclass(frozen=True)
class CheckStep:
    """Element-wise convergence check: ``x == y`` as one boolean.

    ``equal_nan=True`` gives the fixpoint semantics of
    :func:`~repro.runtime.closure.matrices_equal` (a NaN fixpoint is a
    fixpoint); ``False`` is the :class:`~repro.runtime.host.HostRuntime`
    convention (plain ``np.array_equal``).
    """

    x: Ref
    y: Ref
    equal_nan: bool = True

    def refs(self) -> Iterator[Ref]:
        yield self.x
        yield self.y


Step = Union[LaunchStep, ReduceStep, GatherStep, CheckStep]


@dataclasses.dataclass(frozen=True)
class LaunchGraph:
    """An immutable DAG of dispatch steps in deterministic build order.

    Node indices double as the serial execution order (builders append
    dependencies before dependents, so build order is a topological
    order); executors may run independent nodes concurrently but must
    resolve every node's inputs from exactly these references.
    """

    nodes: tuple[Step, ...]
    constants: tuple[np.ndarray, ...]

    def dependencies(self, index: int) -> tuple[int, ...]:
        """Sorted indices of the nodes this node reads."""
        return tuple(
            sorted(
                {
                    ref.node
                    for ref in self.nodes[index].refs()
                    if ref.node is not None
                }
            )
        )

    @property
    def launches(self) -> tuple[int, ...]:
        """Indices of the launch nodes, in build (= ordinal) order."""
        return tuple(
            i for i, node in enumerate(self.nodes) if isinstance(node, LaunchStep)
        )


class GraphBuilder:
    """Accumulates steps into a :class:`LaunchGraph`, reserving ordinals.

    The builder tracks every value's shape so it can tell degenerate
    launches (``m == 0`` or ``n == 0``) from real ones: only real
    launches reserve a fault-plan ordinal, preserving the direct-dispatch
    rule that degenerate fast paths claim no fault-schedule slot.
    Constants are deduplicated by identity, so a broadcast operand feeds
    every node through one slot.
    """

    def __init__(self, context: "ExecutionContext", api: str):
        self._context = context
        self._api = api
        self._nodes: list[Step] = []
        self._constants: list[np.ndarray] = []
        self._const_ids: dict[int, Ref] = {}
        self._shapes: list[tuple[int, ...]] = []  # per node output

    # ------------------------------------------------------------------
    def constant(self, array: np.ndarray) -> Ref:
        """Register an input array (deduplicated by object identity)."""
        ref = self._const_ids.get(id(array))
        if ref is None:
            ref = Ref(const=len(self._constants))
            self._constants.append(array)
            self._const_ids[id(array)] = ref
        return ref

    def shape_of(self, ref: Ref) -> tuple[int, ...]:
        """The (possibly windowed) shape a reference resolves to."""
        if ref.const is not None:
            shape = tuple(self._constants[ref.const].shape)
        elif ref.node is not None:
            shape = self._shapes[ref.node]
        else:  # pragma: no cover - Ref.__post_init__ forbids this
            raise GraphError("unresolvable reference")
        if ref.rows is not None:
            shape = (ref.rows[1] - ref.rows[0],) + shape[1:]
        if ref.cols is not None:
            shape = shape[:1] + (ref.cols[1] - ref.cols[0],) + shape[2:]
        return shape

    def _append(self, node: Step, shape: tuple[int, ...]) -> Ref:
        self._nodes.append(node)
        self._shapes.append(shape)
        return Ref(node=len(self._nodes) - 1)

    # ------------------------------------------------------------------
    def launch(
        self,
        opcode: MmoOpcode,
        a: Ref,
        b: Ref,
        c: Ref | None = None,
        *,
        compiled: "CompiledMmo | None" = None,
        cache_hit: bool | None = None,
        validate_inputs: bool = True,
        device: "Simd2Device | None" = None,
        device_index: int | None = None,
        checked: bool = False,
        retry: "RetryPolicy | None" = None,
        wrap_hw_errors: bool = False,
        rtol: float = 1e-4,
        atol: float = 1e-6,
        label: str = "",
    ) -> Ref:
        """Append one launch node, reserving its fault ordinal now.

        Reservation order is append order, so the fault schedule is fully
        determined when :meth:`build` returns — before any executor runs.
        """
        m = self.shape_of(a)[0]
        shape_b = self.shape_of(b)
        n = shape_b[1] if len(shape_b) > 1 else 0
        fault_ordinal: int | None = None
        plan = self._context.fault_plan
        if plan is not None and m > 0 and n > 0:
            fault_ordinal = plan.reserve()
        node = LaunchStep(
            api=self._api,
            opcode=opcode,
            a=a,
            b=b,
            c=c,
            compiled=compiled,
            cache_hit=cache_hit,
            validate_inputs=validate_inputs,
            fault_ordinal=fault_ordinal,
            device=device,
            device_index=device_index,
            checked=checked,
            retry=retry,
            wrap_hw_errors=wrap_hw_errors,
            rtol=rtol,
            atol=atol,
            label=label,
        )
        return self._append(node, (m, n))

    def reduce(self, semiring: "Semiring", inputs: tuple[Ref, ...]) -> Ref:
        """Append a pinned left-to-right ⊕ fold over ``inputs``."""
        node = ReduceStep(semiring=semiring, inputs=inputs)
        return self._append(node, self.shape_of(inputs[0]))

    def gather(
        self,
        shape: tuple[int, int],
        dtype: np.dtype,
        pieces: tuple[tuple[int, int, Ref], ...],
    ) -> Ref:
        """Append a row-band assembly into one ``shape`` array."""
        return self._append(
            GatherStep(shape=shape, dtype=dtype, pieces=pieces), shape
        )

    def check(self, x: Ref, y: Ref, *, equal_nan: bool = True) -> Ref:
        """Append a convergence check producing one boolean."""
        return self._append(CheckStep(x=x, y=y, equal_nan=equal_nan), ())

    def build(self) -> LaunchGraph:
        return LaunchGraph(
            nodes=tuple(self._nodes), constants=tuple(self._constants)
        )
