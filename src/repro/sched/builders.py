"""Graph builders: lower the loop-shaped entry points onto LaunchGraphs.

Each builder takes the validated operands of one runtime entry point and
produces a :class:`~repro.sched.graph.LaunchGraph` plus the references
the entry point reads back (combined output, per-launch statistics, the
convergence flag).  The lowering preserves the observable behaviour of
the hand-rolled loops exactly:

- **cache-hit signatures**: one :class:`ArtifactPool` per entry-point
  call compiles each distinct launch shape once through
  :func:`~repro.runtime.kernels.compile_in_context` and stamps the
  compile call's hit flag on the *first* node of that shape, ``True`` on
  every later one — the one-miss-then-hits trace signature of the
  compile/execute split;
- **fault ordinals** are reserved in node append order by the
  :class:`~repro.sched.graph.GraphBuilder` (see satellite: build-time
  ordinal assignment);
- **banding** comes from the one shared
  :func:`~repro.backends.tiling.partition_bands` helper (split-k
  partitions the inner dimension, multi-device and banded closure
  partition output rows on 16-row tile boundaries).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.compile.lower import resolve_opcode
from repro.core.tiles import TILE
from repro.isa.opcodes import MmoOpcode
from repro.runtime.kernels import compile_in_context
from repro.sched.graph import GraphBuilder, LaunchGraph, Ref

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.base import Backend
    from repro.compile.artifact import CompiledMmo
    from repro.core.semiring import Semiring
    from repro.hw.device import Simd2Device
    from repro.resilience.policy import RetryPolicy
    from repro.runtime.context import ExecutionContext

__all__ = [
    "ArtifactPool",
    "batched_graph",
    "closure_step_graph",
    "multidevice_graph",
    "split_k_graph",
]


class ArtifactPool:
    """Compile-once memo shared by every launch node of one entry point.

    Wraps the compile seam: the first request for a launch shape lowers
    it through :func:`~repro.runtime.kernels.compile_in_context` (firing
    the pre/post-compile hooks once, touching the plan cache once) and
    reports that compile's cache-hit flag; repeat requests return the
    memoised artifact with ``hit=True`` — the replay signature.  Pools
    outlive a single graph on purpose: a closure loop keeps one pool
    across iterations, so iteration 0 reports the cold-cache miss and
    every later iteration a hit, exactly like the pre-graph loop.

    Backends without the compile/execute split (and planning backends,
    which select per launch) yield ``(None, None)``: their nodes
    dispatch through :func:`~repro.runtime.kernels.mmo_tiled` instead.
    """

    def __init__(self, context: "ExecutionContext", api: str):
        from repro.backends.base import get_backend  # lazy: layered above

        self._context = context
        self._api = api
        self._impl: "Backend" = get_backend(context.backend)
        self._supports = callable(getattr(self._impl, "compile", None)) and callable(
            getattr(self._impl, "execute", None)
        )
        self._memo: "dict[tuple[str, int, int, int, bool], CompiledMmo]" = {}

    @property
    def supports_compile(self) -> bool:
        return self._supports

    def artifact(
        self,
        opcode: MmoOpcode,
        m: int,
        n: int,
        k: int,
        *,
        has_accumulator: bool,
    ) -> "tuple[CompiledMmo | None, bool | None]":
        """The artifact for one launch shape plus its node's cache-hit flag."""
        if not self._supports or m <= 0 or n <= 0:
            return None, None
        key = (opcode.name, m, n, k, has_accumulator)
        compiled = self._memo.get(key)
        if compiled is not None:
            return compiled, True
        compiled, hit = compile_in_context(
            self._context, self._impl, opcode, m, n, k,
            has_accumulator=has_accumulator, api=self._api,
        )
        self._memo[key] = compiled
        return compiled, hit


def split_k_graph(
    context: "ExecutionContext",
    opcode: MmoOpcode,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None,
    *,
    splits: int,
) -> tuple[LaunchGraph, Ref, list[Ref]]:
    """Lower one split-k mmo: partial launches plus a pinned ⊕ fold.

    The inner dimension is partitioned by
    :func:`~repro.backends.tiling.partition_bands`; empty partitions are
    skipped, and when every partition is empty (``k == 0``) the call
    degenerates to a single full launch, as before.  The reduce node
    folds the partials left to right and the (pre-cast) accumulator
    last — the exact inline combine order this replaced.

    Returns ``(graph, output ref, per-partial launch refs)``.
    """
    from repro.backends.tiling import partition_bands  # lazy: layered above

    semiring = opcode.semiring
    m, k = a.shape
    n = b.shape[1]
    builder = GraphBuilder(context, "mmo_tiled_split_k")
    pool = ArtifactPool(context, "mmo_tiled_split_k")
    a_ref = builder.constant(a)
    b_ref = builder.constant(b)
    launch_refs: list[Ref] = []
    for lo, hi in partition_bands(k, splits):
        if hi <= lo:
            continue
        compiled, hit = pool.artifact(
            opcode, m, n, hi - lo, has_accumulator=False
        )
        launch_refs.append(
            builder.launch(
                opcode,
                a_ref.window(cols=(lo, hi)),
                b_ref.window(rows=(lo, hi)),
                None,
                compiled=compiled,
                cache_hit=hit,
                validate_inputs=False,
            )
        )
    if not launch_refs:
        # Every partition was empty (k == 0): one degenerate-k launch.
        compiled, hit = pool.artifact(opcode, m, n, k, has_accumulator=False)
        launch_refs.append(
            builder.launch(
                opcode, a_ref, b_ref, None,
                compiled=compiled, cache_hit=hit, validate_inputs=False,
            )
        )
    inputs = list(launch_refs)
    if c is not None:
        inputs.append(builder.constant(c))
    out_ref = launch_refs[0]
    if len(inputs) > 1:
        out_ref = builder.reduce(semiring, tuple(inputs))
    return builder.build(), out_ref, launch_refs


def batched_graph(
    context: "ExecutionContext",
    opcode: MmoOpcode,
    a3: np.ndarray,
    b3: np.ndarray,
    c3: np.ndarray | None,
    batch: int,
) -> tuple[LaunchGraph, list[Ref]]:
    """Lower one batched mmo: ``batch`` independent launch nodes.

    Broadcast operands (stack depth 1) land in one constant slot feeding
    every node.  Stacks are uniform, so one compiled artifact serves the
    whole batch; inconsistent shapes fall back to per-node single-shot
    dispatch, which raises identically to the unbatched call.

    Returns ``(graph, per-item launch refs)`` — items are independent,
    so there is no combine node; the caller stacks the outputs.
    """
    builder = GraphBuilder(context, "batched_mmo")
    pool = ArtifactPool(context, "batched_mmo")
    m, k = a3.shape[1], a3.shape[2]
    n = b3.shape[2]
    shapes_ok = b3.shape[1] == k and (
        c3 is None or (c3.shape[1] == m and c3.shape[2] == n)
    )

    def pick(stack: np.ndarray, index: int) -> np.ndarray:
        return stack[0] if stack.shape[0] == 1 else stack[index]

    launch_refs: list[Ref] = []
    for index in range(batch):
        compiled, hit = (
            pool.artifact(opcode, m, n, k, has_accumulator=c3 is not None)
            if shapes_ok
            else (None, None)
        )
        launch_refs.append(
            builder.launch(
                opcode,
                builder.constant(pick(a3, index)),
                builder.constant(pick(b3, index)),
                None if c3 is None else builder.constant(pick(c3, index)),
                compiled=compiled,
                cache_hit=hit,
                validate_inputs=False,
            )
        )
    return builder.build(), launch_refs


def closure_step_graph(
    context: "ExecutionContext",
    pool: ArtifactPool,
    opcode: MmoOpcode,
    current: np.ndarray,
    operand: np.ndarray,
    *,
    bands: int = 1,
    convergence_check: bool = False,
    validate_inputs: bool = False,
    equal_nan: bool = True,
) -> tuple[LaunchGraph, Ref, Ref | None, list[Ref]]:
    """Lower one closure iteration ``D ⊕ (D ⊗ X)`` (optionally banded).

    With ``bands == 1`` this is exactly the pre-graph iteration: one
    whole-matrix launch plus an optional convergence check.  With more
    bands, output rows are partitioned on tile boundaries into
    independent launches (each band computes ``D[r] ⊕ (D[r] ⊗ X)``) and
    gathered — the "deterministic parallel launch" the ROADMAP called
    for, bit-identical because every band's rows are disjoint.

    The caller owns the :class:`ArtifactPool` so compile state persists
    across iterations.  Returns ``(graph, output ref, check ref or
    None, per-band launch refs)``.
    """
    from repro.backends.tiling import partition_bands  # lazy: layered above

    semiring = opcode.semiring
    n = current.shape[0]
    builder = GraphBuilder(context, "closure")
    cur_ref = builder.constant(current)
    op_ref = builder.constant(operand)
    windows = [w for w in partition_bands(n, bands, tile=TILE) if w[1] > w[0]]
    if not windows:
        windows = [(0, n)]
    launch_refs: list[Ref] = []
    pieces: list[tuple[int, int, Ref]] = []
    for row_start, row_stop in windows:
        rows = row_stop - row_start
        compiled, hit = pool.artifact(opcode, rows, n, n, has_accumulator=True)
        band_cur = (
            cur_ref
            if rows == n
            else cur_ref.window(rows=(row_start, row_stop))
        )
        ref = builder.launch(
            opcode,
            band_cur,
            op_ref,
            band_cur,
            compiled=compiled,
            cache_hit=hit,
            validate_inputs=validate_inputs,
        )
        launch_refs.append(ref)
        pieces.append((row_start, row_stop, ref))
    if len(pieces) == 1 and pieces[0][:2] == (0, n):
        out_ref = pieces[0][2]
    else:
        out_ref = builder.gather(
            (n, n), semiring.output_dtype, tuple(pieces)
        )
    check_ref = (
        builder.check(out_ref, cur_ref, equal_nan=equal_nan)
        if convergence_check
        else None
    )
    return builder.build(), out_ref, check_ref, launch_refs


def multidevice_graph(
    roster: "list[tuple[int, Simd2Device]]",
    semiring: "Semiring",
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None,
    context: "ExecutionContext",
    *,
    checked: bool,
    retry: "RetryPolicy | None",
    wrap_hw_errors: bool,
    rtol: float,
    atol: float,
) -> tuple[LaunchGraph, Ref, list[tuple[int, int, int, Ref]]]:
    """Lower one multi-device banding: per-device launches plus a gather.

    Output rows are partitioned tile-aligned across the roster; each
    band's node carries its device, resilience policy (ABFT checking,
    retries) and a ``band [start:stop)`` label for retry events.  The
    context's fault plan is consulted *at build time*, in band order:
    a device scheduled to hard-fail raises
    :class:`~repro.resilience.faults.DeviceFailure` before that band's
    ordinal is reserved — bands built earlier keep their ordinals, so a
    repartition rebuild numbers exactly like the pre-graph retry loop.

    Returns ``(graph, gathered output ref, band metadata)`` where each
    band entry is ``(device_index, row_start, row_stop, launch ref)``.
    """
    from repro.backends.tiling import partition_bands  # lazy: layered above

    opcode = resolve_opcode(semiring)
    m, k = a.shape
    n = b.shape[1]
    builder = GraphBuilder(context, "mmo_tiled_multi_device")
    pool = ArtifactPool(context, "mmo_tiled_multi_device")
    a_ref = builder.constant(a)
    b_ref = builder.constant(b)
    c_ref = None if c is None else builder.constant(c)
    windows = partition_bands(m, len(roster), tile=TILE)
    bands: list[tuple[int, int, int, Ref]] = []
    for position, (index, device) in enumerate(roster):
        row_start, row_stop = windows[position]
        if row_stop <= row_start:
            continue
        plan = context.fault_plan
        if plan is not None and plan.device_should_fail(index):
            from repro.resilience.faults import DeviceFailure  # lazy: layered above

            plan.record_device_failure(
                context, "mmo_tiled_multi_device", index
            )
            raise DeviceFailure(index, "injected hard failure")
        compiled, hit = pool.artifact(
            opcode, row_stop - row_start, n, k, has_accumulator=c is not None
        )
        ref = builder.launch(
            opcode,
            a_ref.window(rows=(row_start, row_stop)),
            b_ref,
            None if c_ref is None else c_ref.window(rows=(row_start, row_stop)),
            compiled=compiled,
            cache_hit=hit,
            validate_inputs=False,
            device=device,
            device_index=index,
            checked=checked,
            retry=retry,
            wrap_hw_errors=wrap_hw_errors,
            rtol=rtol,
            atol=atol,
            label=f"band [{row_start}:{row_stop})",
        )
        bands.append((index, row_start, row_stop, ref))
    out_ref = builder.gather(
        (m, n),
        semiring.output_dtype,
        tuple((start, stop, ref) for _, start, stop, ref in bands),
    )
    return builder.build(), out_ref, bands
