"""Quantized (int8) datapath variants of the SIMD² semirings.

Paper §3.2: "While supporting other formats (e.g., int8) is possible, for
many algorithms, we find fixed-precision format cannot converge to the
same result as baseline fp32 implementations" — and Table 5(c) nonetheless
prices an int8 unit at a quarter of the fp16 area.  This module builds
those int8 variants so the claim can be *demonstrated*:

- :func:`int8_variant` derives an int8-in / int32-out sibling of any
  numeric SIMD² semiring, with saturating input quantisation and a
  saturating "big value" standing in for the ⊕ identity of the min/max
  rings (int8 has no infinity — the root of the convergence problem),
- :func:`quantize_saturating` is the input conversion an int8 load unit
  would perform.

The int8 rings plug into :func:`repro.core.ops.mmo` unchanged; tests and
the precision study use them to quantify exactly where int8 breaks
(fractional weights, unrepresentable "no edge", overflow-prone products)
and where it is fine (boolean-ish workloads, small-integer GEMM).
"""

from __future__ import annotations

import numpy as np

from repro.core.registry import get_semiring
from repro.core.semiring import Semiring, SemiringError

__all__ = ["INT8_MIN", "INT8_MAX", "INT32_BIG", "quantize_saturating", "int8_variant"]

INT8_MIN = -128
INT8_MAX = 127
#: Stand-in for ±inf in the int32 accumulate space: large enough to lose
#: every min (win every max) against real path values, small enough that
#: one ⊗ step cannot overflow int32.
INT32_BIG = 2**20


def quantize_saturating(values: np.ndarray) -> np.ndarray:
    """Round to the nearest int8 with saturation (the load-unit cast).

    Non-finite values saturate toward the matching end: the hardware has
    no infinity, so "no edge" collapses onto the largest magnitude — the
    representational loss §3.2 warns about.
    """
    values = np.asarray(values, dtype=np.float64)
    rounded = np.round(values)
    rounded = np.where(np.isnan(values), 0.0, rounded)
    return np.clip(rounded, INT8_MIN, INT8_MAX).astype(np.int8)


def _as_int32(func):
    def wrapped(a, b):
        return np.asarray(
            func(np.asarray(a, dtype=np.int64), np.asarray(b, dtype=np.int64))
        ).clip(-(2**31), 2**31 - 1).astype(np.int32)

    return wrapped


def int8_variant(ring: Semiring | str) -> Semiring:
    """An int8-in / int32-out sibling of a numeric SIMD² semiring.

    The ⊕ identity of min/max rings becomes ``±INT32_BIG``; plus rings
    keep 0.  The boolean ring has no meaningful int8 variant (it is
    already 1-bit) and is rejected.
    """
    ring = get_semiring(ring)
    if ring.is_boolean():
        raise SemiringError("or-and is already a 1-bit ring; no int8 variant")

    if np.isposinf(ring.oplus_identity):
        identity: float = INT32_BIG
    elif np.isneginf(ring.oplus_identity):
        identity = -INT32_BIG
    else:
        identity = int(ring.oplus_identity)

    oplus = _as_int32(ring.oplus)
    otimes = _as_int32(ring.otimes)
    # Choose a k-padding pair whose product is exactly the identity.  With
    # infinities replaced by finite BIG values the float rings' pairs no
    # longer work (BIG + BIG ≠ BIG), so search the natural candidates: the
    # identity against the ⊗-neutral suspects 0 and 1, then itself.
    pad_a = identity
    for candidate in (0, 1, identity):
        if int(otimes(pad_a, candidate)) == identity:
            pad_b = candidate
            break
    else:  # pragma: no cover - all nine rings hit one of the candidates
        raise SemiringError(f"no int8 k-padding pair found for {ring.name}")

    return Semiring(
        name=f"{ring.name}-int8",
        oplus=oplus,
        otimes=otimes,
        oplus_identity=identity,
        input_dtype=np.dtype(np.int8),
        output_dtype=np.dtype(np.int32),
        associative_otimes=ring.associative_otimes,
        commutative_otimes=ring.commutative_otimes,
        k_pad_a=pad_a,
        k_pad_b=pad_b,
    )
