"""Semiring algebra: the SIMD² ``D = C ⊕ (A ⊗ B)`` computation pattern."""

from repro.core.semiring import Semiring, SemiringError
from repro.core.registry import (
    PLUS_MUL,
    MIN_PLUS,
    MAX_PLUS,
    MIN_MUL,
    MAX_MUL,
    MIN_MAX,
    MAX_MIN,
    OR_AND,
    PLUS_NORM,
    SEMIRINGS,
    get_semiring,
    semiring_names,
)
from repro.core.ops import mmo, mmo_reference, gemm, squared_l2_distance
from repro.core.tiles import TILE, TilingError, pad_to_tiles, crop, tile_counts
from repro.core.semimatrix import SemiringMatrix
from repro.core.quantized import int8_variant, quantize_saturating

__all__ = [
    "Semiring",
    "SemiringError",
    "PLUS_MUL",
    "MIN_PLUS",
    "MAX_PLUS",
    "MIN_MUL",
    "MAX_MUL",
    "MIN_MAX",
    "MAX_MIN",
    "OR_AND",
    "PLUS_NORM",
    "SEMIRINGS",
    "get_semiring",
    "semiring_names",
    "mmo",
    "mmo_reference",
    "gemm",
    "squared_l2_distance",
    "TILE",
    "TilingError",
    "pad_to_tiles",
    "crop",
    "tile_counts",
    "SemiringMatrix",
    "int8_variant",
    "quantize_saturating",
]
