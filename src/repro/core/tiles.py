"""Tiling helpers for mapping whole matrices onto fixed-size SIMD² tiles.

The warp-level SIMD² instructions operate on 16×16 fragments (paper
Table 2).  High-level kernels therefore pad matrices up to multiples of the
tile size — using the ``⊕`` identity so padding never changes results — and
iterate over tile coordinates.  These helpers implement that bookkeeping in
one place for the vectorised backend, the ISA emulator, and the timing
model (which needs tile *counts*).
"""

from __future__ import annotations

import math
from collections.abc import Iterator

import numpy as np

__all__ = [
    "TILE",
    "TilingError",
    "ceil_div",
    "padded_extent",
    "pad_to_tiles",
    "crop",
    "tile_view",
    "iter_tile_indices",
    "tile_counts",
]

#: Warp-level SIMD² tile edge (paper: 16×16 fragments).
TILE = 16


class TilingError(ValueError):
    """Raised on inconsistent tiling requests (bad shapes, bad tile size)."""


def ceil_div(a: int, b: int) -> int:
    """Ceiling integer division for non-negative operands."""
    if b <= 0:
        raise TilingError(f"divisor must be positive, got {b}")
    return -(-a // b)


def padded_extent(n: int, tile: int = TILE) -> int:
    """Smallest multiple of ``tile`` that covers ``n``."""
    if n < 0:
        raise TilingError(f"extent must be non-negative, got {n}")
    return ceil_div(n, tile) * tile if n else 0


def pad_to_tiles(
    matrix: np.ndarray,
    fill: float | bool,
    tile: int = TILE,
) -> np.ndarray:
    """Pad a 2-D matrix with ``fill`` up to tile multiples (copy).

    ``fill`` must be the ``⊕`` identity (for accumulators) or a value
    absorbed by the ring (for inputs); callers pick it per ring.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise TilingError(f"expected a 2-D matrix, got shape {matrix.shape}")
    rows, cols = matrix.shape
    out_shape = (padded_extent(rows, tile), padded_extent(cols, tile))
    if out_shape == matrix.shape:
        return matrix.copy()
    out = np.full(out_shape, fill, dtype=matrix.dtype)
    out[:rows, :cols] = matrix
    return out


def crop(matrix: np.ndarray, rows: int, cols: int) -> np.ndarray:
    """Crop a padded matrix back to its logical shape."""
    matrix = np.asarray(matrix)
    if rows > matrix.shape[0] or cols > matrix.shape[1]:
        raise TilingError(
            f"cannot crop {matrix.shape} to ({rows}, {cols}): target is larger"
        )
    return matrix[:rows, :cols]


def tile_view(matrix: np.ndarray, ti: int, tj: int, tile: int = TILE) -> np.ndarray:
    """A writable view of tile ``(ti, tj)`` of a tile-aligned matrix."""
    rows, cols = matrix.shape
    if rows % tile or cols % tile:
        raise TilingError(f"matrix shape {matrix.shape} is not tile-aligned to {tile}")
    if not (0 <= ti < rows // tile and 0 <= tj < cols // tile):
        raise TilingError(
            f"tile index ({ti}, {tj}) out of range for shape {matrix.shape}"
        )
    return matrix[ti * tile : (ti + 1) * tile, tj * tile : (tj + 1) * tile]


def iter_tile_indices(rows: int, cols: int, tile: int = TILE) -> Iterator[tuple[int, int]]:
    """Iterate ``(ti, tj)`` tile coordinates covering a rows×cols matrix."""
    for ti in range(ceil_div(rows, tile)):
        for tj in range(ceil_div(cols, tile)):
            yield ti, tj


def tile_counts(m: int, n: int, k: int, tile: int = TILE) -> tuple[int, int, int]:
    """Number of tiles along each dimension of an ``m×n×k`` mmo."""
    return ceil_div(m, tile), ceil_div(n, tile), ceil_div(k, tile)
