"""The nine SIMD² semirings (paper Tables 1 and 2) and their registry.

Each entry maps one SIMD² arithmetic instruction to the ``(⊕, ⊗)`` pair it
implements::

    plus-mul   D = C  +  Σ_k  A·B        GEMM / matrix inverse
    min-plus   D = min(C, min_k A+B)     all-pairs shortest paths
    max-plus   D = max(C, max_k A+B)     critical (longest) paths
    min-mul    D = min(C, min_k A·B)     minimum reliability paths
    max-mul    D = max(C, max_k A·B)     maximum reliability paths
    min-max    D = min(C, min_k max(A,B))  minimum spanning tree
    max-min    D = max(C, max_k min(A,B))  maximum capacity paths
    or-and     D = C  ∨  ∨_k (A ∧ B)     transitive & reflexive closure
    plus-norm  D = C  +  Σ_k (A-B)²      L2 distance (KNN, K-means)
"""

from __future__ import annotations

import numpy as np

from repro.core.semiring import Semiring, SemiringError

__all__ = [
    "PLUS_MUL",
    "MIN_PLUS",
    "MAX_PLUS",
    "MIN_MUL",
    "MAX_MUL",
    "MIN_MAX",
    "MAX_MIN",
    "OR_AND",
    "PLUS_NORM",
    "SEMIRINGS",
    "get_semiring",
    "semiring_names",
]


def _squared_difference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    diff = np.subtract(a, b)
    return np.multiply(diff, diff)


PLUS_MUL = Semiring(
    name="plus-mul",
    oplus=np.add,
    otimes=np.multiply,
    oplus_identity=0.0,
    otimes_annihilator=0.0,
)

MIN_PLUS = Semiring(
    name="min-plus",
    oplus=np.minimum,
    otimes=np.add,
    oplus_identity=np.inf,
)

MAX_PLUS = Semiring(
    name="max-plus",
    oplus=np.maximum,
    otimes=np.add,
    oplus_identity=-np.inf,
)

MIN_MUL = Semiring(
    name="min-mul",
    oplus=np.minimum,
    otimes=np.multiply,
    oplus_identity=np.inf,
)

MAX_MUL = Semiring(
    name="max-mul",
    oplus=np.maximum,
    otimes=np.multiply,
    oplus_identity=-np.inf,
    # (-inf)·(-inf) = +inf would poison the max; pad as (-inf)·(+inf) = -inf.
    k_pad_a=-np.inf,
    k_pad_b=np.inf,
)

MIN_MAX = Semiring(
    name="min-max",
    oplus=np.minimum,
    otimes=np.maximum,
    oplus_identity=np.inf,
)

MAX_MIN = Semiring(
    name="max-min",
    oplus=np.maximum,
    otimes=np.minimum,
    oplus_identity=-np.inf,
)

OR_AND = Semiring(
    name="or-and",
    oplus=np.logical_or,
    otimes=np.logical_and,
    oplus_identity=False,
    otimes_annihilator=False,
    input_dtype=np.dtype(bool),
    output_dtype=np.dtype(bool),
)

PLUS_NORM = Semiring(
    name="plus-norm",
    oplus=np.add,
    otimes=_squared_difference,
    oplus_identity=0.0,
    associative_otimes=False,
    distributive_otimes=False,
)

#: All nine SIMD² semirings, keyed by canonical name.
SEMIRINGS: dict[str, Semiring] = {
    ring.name: ring
    for ring in (
        PLUS_MUL,
        MIN_PLUS,
        MAX_PLUS,
        MIN_MUL,
        MAX_MUL,
        MIN_MAX,
        MAX_MIN,
        OR_AND,
        PLUS_NORM,
    )
}

#: Aliases accepted by :func:`get_semiring` (ISA mnemonics, underscores).
_ALIASES: dict[str, str] = {
    "mma": "plus-mul",
    "gemm": "plus-mul",
    "minplus": "min-plus",
    "maxplus": "max-plus",
    "minmul": "min-mul",
    "maxmul": "max-mul",
    "minmax": "min-max",
    "maxmin": "max-min",
    "orand": "or-and",
    "addnorm": "plus-norm",
    "add-norm": "plus-norm",
}


def semiring_names() -> tuple[str, ...]:
    """Canonical names of the nine SIMD² semirings, in ISA order."""
    return tuple(SEMIRINGS)


def get_semiring(name: str | Semiring) -> Semiring:
    """Look up a semiring by canonical name, alias, or pass one through.

    Accepts ``"min-plus"``, ``"min_plus"``, ``"minplus"``, ``"MINPLUS"``
    and the ISA mnemonics (``"mma"``, ``"addnorm"`` ...).
    """
    if isinstance(name, Semiring):
        return name
    key = name.strip().lower().replace("_", "-")
    key = _ALIASES.get(key.replace("-", ""), _ALIASES.get(key, key))
    if key in SEMIRINGS:
        return SEMIRINGS[key]
    raise SemiringError(
        f"unknown semiring {name!r}; expected one of {sorted(SEMIRINGS)} "
        f"or aliases {sorted(_ALIASES)}"
    )
