"""Mixed-precision rules of the SIMD² datapath.

The paper fixes the numeric formats of the prototype (Section 3.2): input
operands are fp16 and outputs/accumulators are fp32.  The or-and ring is
logical and uses booleans end to end.  This module centralises the casting
rules so the vectorised oracle, the tile emulator, and the applications all
quantise identically — which is what lets tests assert bit-for-bit equality
between backends.
"""

from __future__ import annotations

import numpy as np

from repro.core.semiring import Semiring

__all__ = [
    "quantize_input",
    "quantize_output",
    "representable_input",
    "HALF_MAX",
]

#: Largest finite magnitude representable in fp16.
HALF_MAX = float(np.finfo(np.float16).max)


def quantize_input(values: np.ndarray, ring: Semiring) -> np.ndarray:
    """Cast ``values`` to the ring's input format (fp16, bool, or int8).

    Infinities survive the fp16 cast, which the min/max rings rely on for
    "no edge" entries in adjacency matrices.  Finite values outside the
    fp16 range overflow to ``±inf`` exactly as the hardware would.
    Integer input formats (the quantized int8 variants) convert with
    round-and-saturate semantics — integer hardware has no infinity, which
    is precisely the representational loss §3.2 of the paper warns about.
    """
    values = np.asarray(values)
    if np.issubdtype(ring.input_dtype, np.integer):
        info = np.iinfo(ring.input_dtype)
        rounded = np.round(values.astype(np.float64))
        rounded = np.where(np.isnan(rounded), 0.0, rounded)
        return np.clip(rounded, info.min, info.max).astype(ring.input_dtype)
    with np.errstate(over="ignore"):  # out-of-range → ±inf, as hardware does
        return values.astype(ring.input_dtype)


def quantize_output(values: np.ndarray, ring: Semiring) -> np.ndarray:
    """Cast ``values`` to the ring's accumulator format (fp32 or bool)."""
    return np.asarray(values).astype(ring.output_dtype)


def representable_input(values: np.ndarray, ring: Semiring) -> bool:
    """True when the fp16 (or bool) cast loses nothing.

    Useful in tests and input validation: graph weights chosen from small
    integer grids round-trip exactly through fp16.
    """
    values = np.asarray(values)
    return bool(np.array_equal(values.astype(ring.input_dtype).astype(values.dtype), values))
