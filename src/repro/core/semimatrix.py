"""A GraphBLAS-flavoured matrix wrapper over the SIMD² semirings.

:class:`SemiringMatrix` binds a matrix to a semiring so algorithms read
like linear algebra: ``A @ B`` is the ring's mmo, ``A + B`` is element-wise
``⊕``, and ``A.closure()`` runs the runtime's closure loop.  This is the
"higher-level library functions that decouple programmability from
architecture-dependent parameters" layer the paper's programming-model
section calls for, for users who don't want to manage tiles or backends.

    >>> import numpy as np
    >>> from repro.core.semimatrix import SemiringMatrix
    >>> inf = np.inf
    >>> roads = SemiringMatrix([[0, 3, inf], [3, 0, 1], [inf, 1, 0]], "min-plus")
    >>> (roads @ roads)[0, 2]
    4.0
"""

from __future__ import annotations

import numpy as np

from repro.core.registry import get_semiring
from repro.core.semiring import Semiring, SemiringError

__all__ = ["SemiringMatrix"]


class SemiringMatrix:
    """A 2-D matrix bound to one of the nine SIMD² semirings."""

    __array_priority__ = 100  # keep numpy from hijacking binary operators

    def __init__(self, data, ring: Semiring | str, *, backend: str | None = None):
        self.ring = get_semiring(ring)
        array = np.asarray(data)
        if array.ndim != 2:
            raise SemiringError(f"SemiringMatrix must be 2-D, got shape {array.shape}")
        self._data = array.astype(self.ring.output_dtype)
        self.backend = backend

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, n: int, ring: Semiring | str, *, diagonal) -> "SemiringMatrix":
        """A matrix that is the ⊕ identity everywhere except the diagonal."""
        ring = get_semiring(ring)
        data = ring.full((n, n))
        np.fill_diagonal(data, diagonal)
        return cls(data, ring)

    @classmethod
    def full(cls, shape: tuple[int, int], ring: Semiring | str) -> "SemiringMatrix":
        """A matrix of ⊕ identities (the ring's "empty" matrix)."""
        ring = get_semiring(ring)
        return cls(ring.full(shape), ring)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self._data.shape

    @property
    def dtype(self) -> np.dtype:
        return self._data.dtype

    def to_array(self) -> np.ndarray:
        """The underlying ndarray (a copy)."""
        return self._data.copy()

    def __getitem__(self, key):
        value = self._data[key]
        if isinstance(value, np.ndarray) and value.ndim == 2:
            return SemiringMatrix(value, self.ring, backend=self.backend)
        return value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SemiringMatrix({self.shape}, ring={self.ring.name!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SemiringMatrix)
            and other.ring.name == self.ring.name
            and np.array_equal(other._data, self._data)
        )

    def __hash__(self):  # pragma: no cover - mutable container semantics
        return NotImplemented

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def _coerce(self, other, op: str) -> "SemiringMatrix":
        if isinstance(other, SemiringMatrix):
            if other.ring.name != self.ring.name:
                raise SemiringError(
                    f"cannot {op} matrices over different rings: "
                    f"{self.ring.name} vs {other.ring.name}"
                )
            return other
        return SemiringMatrix(other, self.ring, backend=self.backend)

    def __matmul__(self, other) -> "SemiringMatrix":
        """``A @ B`` — the ring's matrix product (no accumulator)."""
        from repro.runtime.kernels import mmo_tiled

        other = self._coerce(other, "multiply")
        result, _ = mmo_tiled(self.ring, self._data, other._data, backend=self.backend)
        return SemiringMatrix(result, self.ring, backend=self.backend)

    def mxm(self, other, accumulator: "SemiringMatrix | None" = None) -> "SemiringMatrix":
        """``C ⊕ (A ⊗ B)`` with an explicit accumulator (GraphBLAS mxm)."""
        from repro.runtime.kernels import mmo_tiled

        other = self._coerce(other, "multiply")
        c = None if accumulator is None else self._coerce(accumulator, "accumulate")._data
        result, _ = mmo_tiled(
            self.ring, self._data, other._data, c, backend=self.backend
        )
        return SemiringMatrix(result, self.ring, backend=self.backend)

    def __add__(self, other) -> "SemiringMatrix":
        """``A + B`` — element-wise ⊕."""
        other = self._coerce(other, "add")
        if other.shape != self.shape:
            raise SemiringError(f"shape mismatch: {self.shape} vs {other.shape}")
        combined = self.ring.oplus(self._data, other._data)
        return SemiringMatrix(
            np.asarray(combined, dtype=self.ring.output_dtype),
            self.ring,
            backend=self.backend,
        )

    def closure(self, *, method: str = "leyzorek", convergence_check: bool = True):
        """Run the runtime closure loop; returns a ClosureResult whose
        ``matrix`` is wrapped back into a SemiringMatrix via :attr:`ring`."""
        from repro.runtime.closure import closure as run_closure

        result = run_closure(
            self.ring,
            self._data,
            method=method,
            convergence_check=convergence_check,
            backend=self.backend,
        )
        return SemiringMatrix(result.matrix, self.ring, backend=self.backend), result

    def transpose(self) -> "SemiringMatrix":
        return SemiringMatrix(self._data.T.copy(), self.ring, backend=self.backend)

    @property
    def T(self) -> "SemiringMatrix":
        return self.transpose()
