"""Semiring-like algebraic structures at the heart of SIMD².

The paper (Section 2.1) observes that a large family of matrix algorithms
can be written as ``D = C ⊕ (A ⊗ B)`` where ``⊕`` behaves like addition and
``⊗`` behaves like multiplication.  This module defines the :class:`Semiring`
abstraction used throughout the library: a pair of binary operators together
with the ``⊕`` identity (the value that pads tiles without changing results)
and the data-type rules of the SIMD² datapath (fp16 inputs, fp32 outputs for
numeric rings; booleans for the logical ring).

The nine concrete instances the SIMD² ISA supports live in
:mod:`repro.core.registry`.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np

__all__ = ["Semiring", "SemiringError"]


class SemiringError(ValueError):
    """Raised when a semiring is constructed or used inconsistently."""


@dataclasses.dataclass(frozen=True)
class Semiring:
    """A semiring-like structure ``(⊕, ⊗)`` over matrix elements.

    Parameters
    ----------
    name:
        Human-readable name, e.g. ``"min-plus"``.  Also the registry key.
    oplus:
        Element-wise "additive" combine, broadcastable over ndarrays.
        Used both to fold the pairwise products along ``k`` and to merge
        the accumulator matrix ``C`` into the result.
    otimes:
        Element-wise "multiplicative" pair operation, broadcastable over
        ndarrays.  For ``plus-norm`` this is the squared difference
        ``(a - b)**2`` — not associative, which is why the paper calls the
        structure semiring-*like*.
    oplus_identity:
        Identity of ``⊕``: padding tiles with this value leaves results
        unchanged (``+inf`` for min-rings, ``-inf`` for max-rings, ``0``
        for plus/or rings).
    otimes_annihilator:
        A value ``z`` with ``z ⊗ x == z`` for padding the *input* operands
        of rings whose ``⊗`` has one (``0`` for plus-mul/or-and).  ``None``
        when no such value exists (e.g. min-plus: padding inputs instead
        relies on ``oplus_identity`` absorbing the products).
    input_dtype / output_dtype:
        NumPy dtypes of the SIMD² datapath: fp16 in / fp32 out for numeric
        rings, bool/bool for or-and.
    associative_otimes:
        Whether ``⊗`` is associative; ``plus-norm`` is the one exception.
    commutative_otimes:
        Whether ``a ⊗ b == b ⊗ a`` (true for all nine SIMD² rings).
    distributive_otimes:
        Whether ``⊗`` distributes over ``⊕`` — the algebraic property the
        ABFT checksums in :mod:`repro.resilience.checksum` rest on
        (``⊕-fold(A) ⊗ b == ⊕-fold(A ⊗ b)``).  ``plus-norm`` is again the
        exception: ``(a+b-c)² != (a-c)² + (b-c)²``.
    """

    name: str
    oplus: Callable[[np.ndarray, np.ndarray], np.ndarray]
    otimes: Callable[[np.ndarray, np.ndarray], np.ndarray]
    oplus_identity: float | bool
    otimes_annihilator: float | bool | None = None
    input_dtype: np.dtype = dataclasses.field(default=np.dtype(np.float16))
    output_dtype: np.dtype = dataclasses.field(default=np.dtype(np.float32))
    associative_otimes: bool = True
    commutative_otimes: bool = True
    distributive_otimes: bool = True
    #: Values used to pad operands A and B along the inner (k) dimension.
    #: They must satisfy ``pad_a ⊗ pad_b == oplus_identity`` so padded inner
    #: steps are absorbed by the reduction (checked in __post_init__).
    #: Defaults to the ⊕ identity for both; rings whose ⊗ would map the
    #: identity pair elsewhere (e.g. max-mul: (-inf)·(-inf) = +inf) override.
    k_pad_a: float | bool | None = None
    k_pad_b: float | bool | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SemiringError("semiring name must be non-empty")
        object.__setattr__(self, "input_dtype", np.dtype(self.input_dtype))
        object.__setattr__(self, "output_dtype", np.dtype(self.output_dtype))
        if self.k_pad_a is None:
            object.__setattr__(self, "k_pad_a", self.oplus_identity)
        if self.k_pad_b is None:
            object.__setattr__(self, "k_pad_b", self.oplus_identity)
        pad_product = self.otimes(
            np.asarray(self.k_pad_a, dtype=self.output_dtype),
            np.asarray(self.k_pad_b, dtype=self.output_dtype),
        )
        if not np.array_equal(
            np.asarray(pad_product, dtype=self.output_dtype),
            np.asarray(self.oplus_identity, dtype=self.output_dtype),
        ):
            raise SemiringError(
                f"semiring {self.name!r}: k-padding pair "
                f"({self.k_pad_a}, {self.k_pad_b}) maps to {pad_product}, "
                f"not the ⊕ identity {self.oplus_identity}"
            )

    # ------------------------------------------------------------------
    # scalar/array algebra
    # ------------------------------------------------------------------
    def combine(self, c: np.ndarray, products: np.ndarray) -> np.ndarray:
        """Fold ``products`` into the accumulator ``c`` with ``⊕``."""
        return self.oplus(np.asarray(c, dtype=self.output_dtype), products)

    def reduce(self, values: np.ndarray, axis: int) -> np.ndarray:
        """Reduce ``values`` along ``axis`` with ``⊕``.

        The reduction is performed in the output dtype, mirroring the
        fp32 accumulate path of the hardware unit.
        """
        values = np.asarray(values, dtype=self.output_dtype)
        if values.shape[axis] == 0:
            shape = list(values.shape)
            del shape[axis]
            return np.full(shape, self.oplus_identity, dtype=self.output_dtype)
        if isinstance(self.oplus, np.ufunc):
            return np.asarray(self.oplus.reduce(values, axis=axis), dtype=self.output_dtype)
        out = np.take(values, 0, axis=axis)
        for i in range(1, values.shape[axis]):
            out = self.oplus(out, np.take(values, i, axis=axis))
        return np.asarray(out, dtype=self.output_dtype)

    def pairwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Apply ``⊗`` element-wise in the output (accumulate) dtype."""
        a = np.asarray(a, dtype=self.input_dtype).astype(self.output_dtype)
        b = np.asarray(b, dtype=self.input_dtype).astype(self.output_dtype)
        return np.asarray(self.otimes(a, b), dtype=self.output_dtype)

    # ------------------------------------------------------------------
    # identity helpers
    # ------------------------------------------------------------------
    def identity_matrix_value(self) -> float | bool:
        """The ``⊕``-identity as a Python scalar (tile-padding value)."""
        return self.oplus_identity

    def full(self, shape: tuple[int, ...], *, dtype: np.dtype | None = None) -> np.ndarray:
        """An array filled with the ``⊕`` identity."""
        return np.full(shape, self.oplus_identity, dtype=dtype or self.output_dtype)

    def is_boolean(self) -> bool:
        """True for the logical (or-and) ring."""
        return self.output_dtype == np.dtype(bool)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Semiring({self.name!r})"
