"""Whole-matrix SIMD² operations — the vectorised correctness oracle.

:func:`mmo` computes ``D = C ⊕ (A ⊗ B)`` for any of the nine semirings with
the exact mixed-precision rules of the hardware (fp16 inputs quantised, fp32
accumulation).  It plays the role the cuASR/CUTLASS "CUDA-core backend"
plays in the paper's validation flow (Section 5.1): a reference every other
backend — including the instruction-level emulator — must agree with.

Fast paths for GEMM (``A @ B``) and squared-L2 distance (the norm-expansion
trick) are provided separately; they may differ from the generic path in the
last float ulp because summation order differs, exactly as library GEMMs do.
"""

from __future__ import annotations

import numpy as np

from repro.core.precision import quantize_input, quantize_output
from repro.core.semiring import Semiring, SemiringError
from repro.core.registry import get_semiring

__all__ = ["mmo", "mmo_reference", "gemm", "squared_l2_distance"]

#: Row-block size bounding the (rows, k, n) intermediate of the generic path.
_ROW_BLOCK = 64


def _validate_shapes(a: np.ndarray, b: np.ndarray, c: np.ndarray | None) -> tuple[int, int, int]:
    if a.ndim != 2 or b.ndim != 2:
        raise SemiringError(
            f"mmo operands must be 2-D, got A{a.shape} and B{b.shape}"
        )
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise SemiringError(f"inner dimensions differ: A is {a.shape}, B is {b.shape}")
    if c is not None and c.shape != (m, n):
        raise SemiringError(f"accumulator C has shape {c.shape}, expected {(m, n)}")
    return m, n, k


def mmo(
    ring: Semiring | str,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
) -> np.ndarray:
    """Compute ``D = C ⊕ (A ⊗ B)`` under ``ring``.

    Parameters
    ----------
    ring:
        A :class:`~repro.core.semiring.Semiring` or its name/mnemonic.
    a, b:
        Input matrices of shape ``(m, k)`` and ``(k, n)``; quantised to the
        ring's input dtype (fp16 or bool) before computing.
    c:
        Optional ``(m, n)`` accumulator; defaults to the ``⊕`` identity,
        in which case ``D`` is just the reduced products.

    Returns
    -------
    numpy.ndarray
        ``(m, n)`` result in the ring's output dtype (fp32 or bool).
    """
    ring = get_semiring(ring)
    a = np.asarray(a)
    b = np.asarray(b)
    c_arr = None if c is None else np.asarray(c)
    m, n, k = _validate_shapes(a, b, c_arr)

    a16 = quantize_input(a, ring).astype(ring.output_dtype)
    b16 = quantize_input(b, ring).astype(ring.output_dtype)
    if c_arr is None:
        acc = ring.full((m, n))
    else:
        acc = quantize_output(c_arr, ring)

    out = np.empty((m, n), dtype=ring.output_dtype)
    for start in range(0, m, _ROW_BLOCK):
        stop = min(start + _ROW_BLOCK, m)
        block = a16[start:stop]  # (r, k)
        # (r, k, n) pairwise products, reduced along k in fp32.  Padded
        # lanes may compute inf·0 = nan; those land only in padded outputs.
        with np.errstate(invalid="ignore"):
            products = ring.otimes(block[:, :, None], b16[None, :, :])
        reduced = ring.reduce(np.asarray(products, dtype=ring.output_dtype), axis=1)
        out[start:stop] = ring.combine(acc[start:stop], reduced)
    return out


def mmo_reference(
    ring: Semiring | str,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
) -> np.ndarray:
    """Triple-loop scalar reference of :func:`mmo` (tests only; O(mnk) Python).

    Mirrors the paper's Figure 1 loop nests literally.  Slow — use only on
    small matrices.
    """
    ring = get_semiring(ring)
    a = quantize_input(np.asarray(a), ring).astype(ring.output_dtype)
    b = quantize_input(np.asarray(b), ring).astype(ring.output_dtype)
    c_arr = None if c is None else np.asarray(c)
    m, n, k = _validate_shapes(a, b, c_arr)
    acc = ring.full((m, n)) if c_arr is None else quantize_output(c_arr, ring)

    out = np.empty((m, n), dtype=ring.output_dtype)
    for i in range(m):
        for j in range(n):
            value = ring.oplus_identity
            for kk in range(k):
                prod = ring.otimes(a[i, kk], b[kk, j])
                value = ring.oplus(
                    np.asarray(value, dtype=ring.output_dtype),
                    np.asarray(prod, dtype=ring.output_dtype),
                )
            out[i, j] = ring.oplus(acc[i, j], np.asarray(value, dtype=ring.output_dtype))
    return out


def gemm(a: np.ndarray, b: np.ndarray, c: np.ndarray | None = None) -> np.ndarray:
    """Mixed-precision GEMM fast path (``plus-mul`` via ``@``)."""
    ring = get_semiring("plus-mul")
    a32 = quantize_input(np.asarray(a), ring).astype(np.float32)
    b32 = quantize_input(np.asarray(b), ring).astype(np.float32)
    _validate_shapes(a32, b32, None if c is None else np.asarray(c))
    out = a32 @ b32
    if c is not None:
        out = out + np.asarray(c, dtype=np.float32)
    return out.astype(np.float32)


def squared_l2_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise squared-L2 distances via the norm-expansion trick.

    ``D[i, j] = Σ_k (A[i, k] - B[k, j])² = ‖A_i‖² + ‖B_j‖² − 2·(A@B)[i, j]``

    This is the optimised formulation library baselines (and the paper's
    KNN-CUDA baseline) use; it matches ``mmo("plus-norm", ...)`` up to fp32
    rounding.  ``b`` is laid out like the mmo operand: shape ``(k, n)`` with
    one point per *column*.
    """
    ring = get_semiring("plus-norm")
    a32 = quantize_input(np.asarray(a), ring).astype(np.float32)
    b32 = quantize_input(np.asarray(b), ring).astype(np.float32)
    _validate_shapes(a32, b32, None)
    row_norms = np.sum(a32 * a32, axis=1, keepdims=True)  # (m, 1)
    col_norms = np.sum(b32 * b32, axis=0, keepdims=True)  # (1, n)
    cross = a32 @ b32
    out = row_norms + col_norms - 2.0 * cross
    # Clamp tiny negative values produced by cancellation.
    np.maximum(out, 0.0, out=out)
    return out.astype(np.float32)
