"""Warp-program container with static validation and statistics."""

from __future__ import annotations

import collections
import dataclasses
from collections.abc import Iterator, Sequence

from repro.isa.instructions import (
    FillMatrix,
    Halt,
    Instruction,
    LoadMatrix,
    Mmo,
    NUM_MATRIX_REGISTERS,
    StoreMatrix,
)
from repro.isa.opcodes import InstructionKind, IsaError, MmoOpcode

__all__ = ["Program", "ProgramStats"]


@dataclasses.dataclass(frozen=True)
class ProgramStats:
    """Static instruction counts of a program (input to the timing model)."""

    loads: int
    stores: int
    fills: int
    mmos: int
    mmos_by_opcode: dict[MmoOpcode, int]

    @property
    def total(self) -> int:
        return self.loads + self.stores + self.fills + self.mmos


class Program(Sequence[Instruction]):
    """An ordered, validated list of SIMD² instructions for one warp.

    A valid program contains exactly one ``halt``, as its final
    instruction.  Construction validates this plus register ranges and
    use-before-define hazards (reading a matrix register that no prior
    ``load``/``fill``/``mmo`` wrote).
    """

    def __init__(self, instructions: Sequence[Instruction], *, auto_halt: bool = False):
        instructions = list(instructions)
        if auto_halt and (not instructions or not isinstance(instructions[-1], Halt)):
            instructions.append(Halt())
        self._instructions: tuple[Instruction, ...] = tuple(instructions)
        self._validate()

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if not self._instructions:
            raise IsaError("program is empty (needs at least a halt)")
        *body, last = self._instructions
        if not isinstance(last, Halt):
            raise IsaError("program must end with halt")
        if any(isinstance(instr, Halt) for instr in body):
            raise IsaError("halt must be the final instruction")

        written: set[int] = set()
        for index, instr in enumerate(body):
            if isinstance(instr, (LoadMatrix, FillMatrix)):
                written.add(instr.dst)
            elif isinstance(instr, StoreMatrix):
                if instr.src not in written:
                    raise IsaError(
                        f"instruction {index}: store reads m{instr.src} "
                        "before any write"
                    )
            elif isinstance(instr, Mmo):
                for name, reg in (("a", instr.a), ("b", instr.b), ("c", instr.c)):
                    if reg not in written:
                        raise IsaError(
                            f"instruction {index}: mmo operand {name}=m{reg} "
                            "read before any write"
                        )
                written.add(instr.d)
            else:  # pragma: no cover - new instruction kinds
                raise IsaError(f"unsupported instruction {instr!r}")

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instructions)

    def __getitem__(self, index):  # type: ignore[override]
        return self._instructions[index]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Program) and self._instructions == other._instructions

    def __hash__(self) -> int:
        return hash(self._instructions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Program({len(self)} instructions)"

    # ------------------------------------------------------------------
    def stats(self) -> ProgramStats:
        """Count instructions per kind and mmo opcode."""
        by_kind = collections.Counter(instr.kind for instr in self._instructions)
        by_opcode: collections.Counter[MmoOpcode] = collections.Counter(
            instr.opcode for instr in self._instructions if isinstance(instr, Mmo)
        )
        return ProgramStats(
            loads=by_kind[InstructionKind.LOAD],
            stores=by_kind[InstructionKind.STORE],
            fills=by_kind[InstructionKind.FILL],
            mmos=by_kind[InstructionKind.MMO],
            mmos_by_opcode=dict(by_opcode),
        )

    def registers_used(self) -> set[int]:
        """All matrix registers the program touches."""
        regs: set[int] = set()
        for instr in self._instructions:
            if isinstance(instr, (LoadMatrix, FillMatrix)):
                regs.add(instr.dst)
            elif isinstance(instr, StoreMatrix):
                regs.add(instr.src)
            elif isinstance(instr, Mmo):
                regs.update((instr.d, instr.a, instr.b, instr.c))
        if any(reg >= NUM_MATRIX_REGISTERS for reg in regs):  # pragma: no cover
            raise IsaError("register out of range")  # instructions already check
        return regs
