"""A tiny two-way assembler for the SIMD² ISA.

The text format is exactly what ``str(instruction)`` prints::

    ; APSP inner tile: D = C min.+ (A + B)
    load.f16  m0, [0], ld=16
    load.f16  m1, [256], ld=16
    fill.f32  m2, inf
    mmo.minplus m3, m0, m1, m2
    store.f32 m3, [512], ld=16
    halt

``;`` and ``#`` start comments; blank lines are ignored.  ``assemble`` and
``disassemble`` are exact inverses for any valid program.
"""

from __future__ import annotations

import re

from repro.isa.instructions import (
    FillMatrix,
    Halt,
    Instruction,
    LoadMatrix,
    Mmo,
    StoreMatrix,
)
from repro.isa.opcodes import ElementType, IsaError, MmoOpcode

__all__ = ["assemble", "disassemble", "assemble_line"]

_MOVE_RE = re.compile(
    r"^(?P<op>load|store)\.(?P<etype>\w+)\s+m(?P<reg>\d+)\s*,\s*"
    r"\[(?P<addr>0x[0-9a-fA-F]+|\d+)\]\s*,\s*ld\s*=\s*(?P<ld>\d+)$"
)
_FILL_RE = re.compile(
    r"^fill\.(?P<etype>\w+)\s+m(?P<reg>\d+)\s*,\s*(?P<value>[^,]+)$"
)
_MMO_RE = re.compile(
    r"^mmo\.(?P<op>\w+)\s+m(?P<d>\d+)\s*,\s*m(?P<a>\d+)\s*,\s*m(?P<b>\d+)\s*,\s*m(?P<c>\d+)$"
)


def _strip(line: str) -> str:
    for marker in (";", "#"):
        if marker in line:
            line = line[: line.index(marker)]
    return line.strip()


def assemble_line(line: str) -> Instruction | None:
    """Parse one line of assembly; returns ``None`` for blanks/comments."""
    text = _strip(line)
    if not text:
        return None
    lowered = text.lower()
    if lowered == "halt":
        return Halt()

    match = _MOVE_RE.match(text)
    if match:
        etype = ElementType.from_suffix(match["etype"])
        reg = int(match["reg"])
        addr = int(match["addr"], 0)
        ld = int(match["ld"])
        if match["op"].lower() == "load":
            return LoadMatrix(dst=reg, addr=addr, ld=ld, etype=etype)
        return StoreMatrix(src=reg, addr=addr, ld=ld, etype=etype)

    match = _FILL_RE.match(text)
    if match:
        try:
            value = float(match["value"])
        except ValueError:
            raise IsaError(f"bad fill immediate in line {line!r}") from None
        return FillMatrix(
            dst=int(match["reg"]),
            value=value,
            etype=ElementType.from_suffix(match["etype"]),
        )

    match = _MMO_RE.match(text)
    if match:
        return Mmo(
            opcode=MmoOpcode.from_mnemonic(match["op"]),
            d=int(match["d"]),
            a=int(match["a"]),
            b=int(match["b"]),
            c=int(match["c"]),
        )

    raise IsaError(f"cannot parse assembly line {line!r}")


def assemble(text: str) -> list[Instruction]:
    """Assemble a multi-line program into instruction objects."""
    instructions = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        try:
            instr = assemble_line(line)
        except IsaError as exc:
            raise IsaError(f"line {lineno}: {exc}") from None
        if instr is not None:
            instructions.append(instr)
    return instructions


def disassemble(instructions: list[Instruction]) -> str:
    """Render instructions back to assembly text (one per line)."""
    return "\n".join(str(instr) for instr in instructions)
