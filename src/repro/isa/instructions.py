"""Instruction objects of the SIMD² ISA.

Each instruction is an immutable dataclass with an assembly rendering
(``str(instr)``) that the assembler can parse back.  Field limits mirror the
binary encoding in :mod:`repro.isa.encoding`:

- 64 matrix registers per warp (6-bit register fields),
- 32-bit shared-memory element addresses,
- 16-bit leading dimension.
"""

from __future__ import annotations

import dataclasses
import struct

from repro.isa.opcodes import ElementType, InstructionKind, IsaError, MmoOpcode

__all__ = [
    "NUM_MATRIX_REGISTERS",
    "MAX_ADDRESS",
    "MAX_LEADING_DIM",
    "Instruction",
    "LoadMatrix",
    "StoreMatrix",
    "FillMatrix",
    "Mmo",
    "Halt",
]

#: Matrix registers available to one warp (6-bit register fields).
NUM_MATRIX_REGISTERS = 64
#: Shared-memory element addresses are 32-bit.
MAX_ADDRESS = 2**32 - 1
#: Leading dimensions are 16-bit (supports matrices up to 65535 wide).
MAX_LEADING_DIM = 2**16 - 1


def _check_register(name: str, value: int) -> None:
    if not (0 <= value < NUM_MATRIX_REGISTERS):
        raise IsaError(
            f"{name} register m{value} out of range (0..{NUM_MATRIX_REGISTERS - 1})"
        )


def _check_address(addr: int, ld: int) -> None:
    if not (0 <= addr <= MAX_ADDRESS):
        raise IsaError(f"address {addr} out of 32-bit range")
    if not (1 <= ld <= MAX_LEADING_DIM):
        raise IsaError(f"leading dimension {ld} out of range (1..{MAX_LEADING_DIM})")


class Instruction:
    """Marker base class for all SIMD² instructions."""

    kind: InstructionKind


@dataclasses.dataclass(frozen=True)
class LoadMatrix(Instruction):
    """``load.<etype> m<dst>, [addr], ld=<ld>`` — shared memory → register.

    Loads a 16×16 fragment whose row ``r`` starts at element address
    ``addr + r * ld`` of the typed shared-memory space.
    """

    dst: int
    addr: int
    ld: int
    etype: ElementType = ElementType.F16
    kind = InstructionKind.LOAD

    def __post_init__(self) -> None:
        _check_register("dst", self.dst)
        _check_address(self.addr, self.ld)

    def __str__(self) -> str:
        return f"load.{self.etype.suffix} m{self.dst}, [{self.addr}], ld={self.ld}"


@dataclasses.dataclass(frozen=True)
class StoreMatrix(Instruction):
    """``store.<etype> m<src>, [addr], ld=<ld>`` — register → shared memory."""

    src: int
    addr: int
    ld: int
    etype: ElementType = ElementType.F32
    kind = InstructionKind.STORE

    def __post_init__(self) -> None:
        _check_register("src", self.src)
        _check_address(self.addr, self.ld)

    def __str__(self) -> str:
        return f"store.{self.etype.suffix} m{self.src}, [{self.addr}], ld={self.ld}"


@dataclasses.dataclass(frozen=True)
class FillMatrix(Instruction):
    """``fill.<etype> m<dst>, <value>`` — broadcast an immediate to a fragment.

    The immediate is stored as fp32 bits in the encoding; ``inf`` and
    ``-inf`` are valid (they are the ``⊕`` identities of the min/max rings).
    """

    dst: int
    value: float
    etype: ElementType = ElementType.F32
    kind = InstructionKind.FILL

    def __post_init__(self) -> None:
        _check_register("dst", self.dst)
        # Round-trip through fp32 so encode/decode is exact by construction.
        as_f32 = struct.unpack("<f", struct.pack("<f", float(self.value)))[0]
        object.__setattr__(self, "value", as_f32)

    def __str__(self) -> str:
        return f"fill.{self.etype.suffix} m{self.dst}, {self.value!r}"


@dataclasses.dataclass(frozen=True)
class Mmo(Instruction):
    """``mmo.<op> m<d>, m<a>, m<b>, m<c>`` — ``D = C ⊕ (A ⊗ B)`` on fragments."""

    opcode: MmoOpcode
    d: int
    a: int
    b: int
    c: int
    kind = InstructionKind.MMO

    def __post_init__(self) -> None:
        if not isinstance(self.opcode, MmoOpcode):
            object.__setattr__(self, "opcode", MmoOpcode(self.opcode))
        for name, reg in (("d", self.d), ("a", self.a), ("b", self.b), ("c", self.c)):
            _check_register(name, reg)

    def __str__(self) -> str:
        return f"mmo.{self.opcode.mnemonic} m{self.d}, m{self.a}, m{self.b}, m{self.c}"


@dataclasses.dataclass(frozen=True)
class Halt(Instruction):
    """``halt`` — end of the warp program."""

    kind = InstructionKind.HALT

    def __str__(self) -> str:
        return "halt"
