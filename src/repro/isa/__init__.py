"""The SIMD² instruction set: opcodes, instructions, encoding, assembler."""

from repro.isa.opcodes import ElementType, InstructionKind, IsaError, MmoOpcode
from repro.isa.instructions import (
    NUM_MATRIX_REGISTERS,
    FillMatrix,
    Halt,
    Instruction,
    LoadMatrix,
    Mmo,
    StoreMatrix,
)
from repro.isa.encoding import (
    WORD_BYTES,
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
)
from repro.isa.assembler import assemble, assemble_line, disassemble
from repro.isa.program import Program, ProgramStats
from repro.isa.dataflow import (
    StoreEffect,
    TranslationReport,
    store_effects,
    validate_translation,
)
from repro.isa.verifier import ProgramEffects, VerificationReport, verify_program
from repro.isa.optimizer import OptimizationResult, optimize_program

__all__ = [
    "ElementType",
    "InstructionKind",
    "IsaError",
    "MmoOpcode",
    "NUM_MATRIX_REGISTERS",
    "FillMatrix",
    "Halt",
    "Instruction",
    "LoadMatrix",
    "Mmo",
    "StoreMatrix",
    "WORD_BYTES",
    "decode_instruction",
    "decode_program",
    "encode_instruction",
    "encode_program",
    "assemble",
    "assemble_line",
    "disassemble",
    "Program",
    "ProgramStats",
    "ProgramEffects",
    "StoreEffect",
    "TranslationReport",
    "store_effects",
    "validate_translation",
    "VerificationReport",
    "verify_program",
    "OptimizationResult",
    "optimize_program",
]
