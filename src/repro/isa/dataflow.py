"""Symbolic dataflow of warp programs: store effects + translation validation.

A warp program's *observable behaviour* is the sequence of ``store``
instructions it executes — everything else is internal register traffic.
This module computes, purely statically, what each surviving store writes:
a **value term** built from the program's loads, fills and mmos, so two
programs can be compared for behavioural equivalence without running
either.  The optimiser's contract ("never changes observable behaviour",
previously only spot-checked dynamically by property tests) becomes a
static proof obligation discharged on every lowering:

- :func:`store_effects` — the ordered store set of a program, each store
  paired with the symbolic term of the value it writes and the ⊕-fold
  depth of that term;
- :func:`validate_translation` — check that an optimised program preserves
  the original's surviving store set and, per store, the reaching
  dataflow (same address, stride, element type, and value term).

Value terms
-----------
Terms are nested tuples, hashable and comparable by value:

- ``("load", addr, ld, etype, mem_version)`` — a fragment fetched from
  shared memory.  ``mem_version`` counts the stores executed before the
  load, so a load that could observe an earlier store is distinguished
  from the same load issued before it (store-to-load dependencies are
  tracked without modelling memory contents);
- ``("fill", value_bits, etype)`` — a broadcast immediate, identified by
  its fp32 bit pattern (so ``-0.0``/``0.0`` and NaN payloads compare
  exactly);
- ``("mmo", opcode, a_term, b_term, c_term)`` — ``D = C ⊕ (A ⊗ B)`` over
  the operand terms.

The optimiser only ever *removes* instructions (stores always survive),
so term equality per store position is a sound and complete equivalence
check for it: any removal that changes what a store writes changes that
store's term.
"""

from __future__ import annotations

import dataclasses
import struct

from repro.isa.instructions import (
    FillMatrix,
    Halt,
    LoadMatrix,
    Mmo,
    StoreMatrix,
)
from repro.isa.opcodes import ElementType, IsaError
from repro.isa.program import Program

__all__ = [
    "StoreEffect",
    "TranslationReport",
    "store_effects",
    "validate_translation",
]

#: A symbolic value term (see module docstring for the three shapes).
ValueTerm = tuple


@dataclasses.dataclass(frozen=True)
class StoreEffect:
    """One surviving ``store``: where it writes and what reaches it.

    ``fold_depth`` is the length of the ⊕-accumulation chain feeding the
    stored value (the number of mmo links along the term's ``c`` spine) —
    the quantity that decides whether fold *order* can influence the
    result on reassociation-sensitive rings.
    """

    index: int  # instruction index in the program
    addr: int
    ld: int
    etype: ElementType
    term: ValueTerm
    fold_depth: int

    @property
    def signature(self) -> tuple:
        """What behavioural equivalence compares (position-independent)."""
        return (self.addr, self.ld, int(self.etype), self.term)


def _fill_bits(value: float) -> int:
    """The fp32 bit pattern of a fill immediate (exact, NaN-safe identity)."""
    return struct.unpack("<I", struct.pack("<f", value))[0]


def store_effects(program: Program) -> tuple[StoreEffect, ...]:
    """The ordered store set of ``program`` with per-store reaching terms.

    :class:`~repro.isa.program.Program` construction already guarantees
    use-before-define, so every register read here has a term.
    """
    terms: dict[int, ValueTerm] = {}
    depths: dict[int, int] = {}
    effects: list[StoreEffect] = []
    mem_version = 0
    for index, instr in enumerate(program):
        if isinstance(instr, LoadMatrix):
            terms[instr.dst] = (
                "load", instr.addr, instr.ld, int(instr.etype), mem_version,
            )
            depths[instr.dst] = 0
        elif isinstance(instr, FillMatrix):
            terms[instr.dst] = ("fill", _fill_bits(instr.value), int(instr.etype))
            depths[instr.dst] = 0
        elif isinstance(instr, Mmo):
            terms[instr.d] = (
                "mmo",
                int(instr.opcode),
                terms[instr.a],
                terms[instr.b],
                terms[instr.c],
            )
            depths[instr.d] = depths[instr.c] + 1
        elif isinstance(instr, StoreMatrix):
            effects.append(
                StoreEffect(
                    index=index,
                    addr=instr.addr,
                    ld=instr.ld,
                    etype=instr.etype,
                    term=terms[instr.src],
                    fold_depth=depths[instr.src],
                )
            )
            mem_version += 1
        elif isinstance(instr, Halt):
            break
    return tuple(effects)


@dataclasses.dataclass(frozen=True)
class TranslationReport:
    """Outcome of validating one program transformation."""

    mismatches: tuple[str, ...]
    original_stores: int
    optimized_stores: int

    @property
    def ok(self) -> bool:
        return not self.mismatches


def validate_translation(
    original: Program, optimized: Program, *, check: bool = False
) -> TranslationReport:
    """Statically prove ``optimized`` preserves ``original``'s behaviour.

    The surviving store set must match in order and count, and each store
    must write the same symbolic value to the same ``(addr, ld, etype)``
    destination.  With ``check=True``, raises
    :class:`~repro.isa.opcodes.IsaError` on the first mismatch — this is
    the mode :func:`repro.isa.optimizer.optimize_program` runs in when the
    compile layer asks for validated optimisation, so a miscompiling
    rewrite can never ship silently inside an artifact.
    """
    before = store_effects(original)
    after = store_effects(optimized)
    mismatches: list[str] = []

    def fail(message: str) -> None:
        if check:
            raise IsaError(f"translation validation failed: {message}")
        mismatches.append(message)

    if len(before) != len(after):
        fail(
            f"store count changed: {len(before)} stores before optimisation, "
            f"{len(after)} after"
        )
    for position, (pre, post) in enumerate(zip(before, after)):
        if pre.signature == post.signature:
            continue
        if (pre.addr, pre.ld, pre.etype) != (post.addr, post.ld, post.etype):
            fail(
                f"store {position}: destination changed from "
                f"[{pre.addr}] ld={pre.ld} {pre.etype.suffix} to "
                f"[{post.addr}] ld={post.ld} {post.etype.suffix}"
            )
        else:
            fail(
                f"store {position} (instruction {post.index}): the value "
                f"reaching [{post.addr}] is not the value the original "
                f"program stored (fold depth {pre.fold_depth} -> "
                f"{post.fold_depth})"
            )
    return TranslationReport(
        mismatches=tuple(mismatches),
        original_stores=len(before),
        optimized_stores=len(after),
    )
