"""Binary encoding of SIMD² instructions.

Every instruction encodes to one little-endian 64-bit word::

    bits 63..61   kind (InstructionKind)

    LOAD / STORE
    bits 60..55   register
    bits 54..53   element type
    bits 52..37   leading dimension (16 bits)
    bits 36..5    address (32 bits)

    FILL
    bits 60..55   register
    bits 54..53   element type
    bits 52..21   fp32 immediate bits

    MMO
    bits 60..57   mmo opcode (4 bits)
    bits 56..51   d    bits 50..45   a    bits 44..39   b    bits 38..33   c

    HALT
    all payload bits zero

Encoding and decoding are exact inverses; :func:`decode_instruction`
rejects malformed words instead of guessing.
"""

from __future__ import annotations

import struct

from repro.isa.instructions import (
    FillMatrix,
    Halt,
    Instruction,
    LoadMatrix,
    Mmo,
    StoreMatrix,
)
from repro.isa.opcodes import ElementType, InstructionKind, IsaError, MmoOpcode

__all__ = [
    "WORD_BYTES",
    "encode_instruction",
    "decode_instruction",
    "encode_program",
    "decode_program",
]

WORD_BYTES = 8

_KIND_SHIFT = 61
_REG_SHIFT = 55
_ETYPE_SHIFT = 53
_LD_SHIFT = 37
_ADDR_SHIFT = 5
_FILL_VALUE_SHIFT = 21
_MMO_OP_SHIFT = 57
_MMO_D_SHIFT = 51
_MMO_A_SHIFT = 45
_MMO_B_SHIFT = 39
_MMO_C_SHIFT = 33

_REG_MASK = 0x3F
_ETYPE_MASK = 0x3
_LD_MASK = 0xFFFF
_ADDR_MASK = 0xFFFFFFFF
_MMO_OP_MASK = 0xF


def _float_bits(value: float) -> int:
    return struct.unpack("<I", struct.pack("<f", value))[0]


def _bits_float(bits: int) -> float:
    return struct.unpack("<f", struct.pack("<I", bits))[0]


def encode_instruction(instr: Instruction) -> int:
    """Encode one instruction into a 64-bit word."""
    word = int(instr.kind) << _KIND_SHIFT
    if isinstance(instr, (LoadMatrix, StoreMatrix)):
        reg = instr.dst if isinstance(instr, LoadMatrix) else instr.src
        word |= reg << _REG_SHIFT
        word |= int(instr.etype) << _ETYPE_SHIFT
        word |= instr.ld << _LD_SHIFT
        word |= instr.addr << _ADDR_SHIFT
    elif isinstance(instr, FillMatrix):
        word |= instr.dst << _REG_SHIFT
        word |= int(instr.etype) << _ETYPE_SHIFT
        word |= _float_bits(instr.value) << _FILL_VALUE_SHIFT
    elif isinstance(instr, Mmo):
        word |= int(instr.opcode) << _MMO_OP_SHIFT
        word |= instr.d << _MMO_D_SHIFT
        word |= instr.a << _MMO_A_SHIFT
        word |= instr.b << _MMO_B_SHIFT
        word |= instr.c << _MMO_C_SHIFT
    elif isinstance(instr, Halt):
        pass
    else:
        raise IsaError(f"cannot encode unknown instruction type {type(instr).__name__}")
    return word


def decode_instruction(word: int) -> Instruction:
    """Decode a 64-bit word back into an instruction object."""
    if not (0 <= word < 2**64):
        raise IsaError(f"instruction word {word:#x} is not a 64-bit value")
    kind_bits = word >> _KIND_SHIFT
    try:
        kind = InstructionKind(kind_bits)
    except ValueError:
        raise IsaError(f"invalid instruction kind {kind_bits} in word {word:#018x}") from None

    if kind in (InstructionKind.LOAD, InstructionKind.STORE):
        reg = (word >> _REG_SHIFT) & _REG_MASK
        etype = _decode_etype(word)
        ld = (word >> _LD_SHIFT) & _LD_MASK
        addr = (word >> _ADDR_SHIFT) & _ADDR_MASK
        if kind is InstructionKind.LOAD:
            return LoadMatrix(dst=reg, addr=addr, ld=ld, etype=etype)
        return StoreMatrix(src=reg, addr=addr, ld=ld, etype=etype)
    if kind is InstructionKind.FILL:
        reg = (word >> _REG_SHIFT) & _REG_MASK
        etype = _decode_etype(word)
        value = _bits_float((word >> _FILL_VALUE_SHIFT) & _ADDR_MASK)
        return FillMatrix(dst=reg, value=value, etype=etype)
    if kind is InstructionKind.MMO:
        op_bits = (word >> _MMO_OP_SHIFT) & _MMO_OP_MASK
        try:
            opcode = MmoOpcode(op_bits)
        except ValueError:
            raise IsaError(f"invalid mmo opcode {op_bits} in word {word:#018x}") from None
        return Mmo(
            opcode=opcode,
            d=(word >> _MMO_D_SHIFT) & _REG_MASK,
            a=(word >> _MMO_A_SHIFT) & _REG_MASK,
            b=(word >> _MMO_B_SHIFT) & _REG_MASK,
            c=(word >> _MMO_C_SHIFT) & _REG_MASK,
        )
    return Halt()


def _decode_etype(word: int) -> ElementType:
    bits = (word >> _ETYPE_SHIFT) & _ETYPE_MASK
    try:
        return ElementType(bits)
    except ValueError:
        raise IsaError(f"invalid element type {bits} in word {word:#018x}") from None


def encode_program(instructions: list[Instruction]) -> bytes:
    """Encode an instruction list as little-endian 64-bit words."""
    return b"".join(
        encode_instruction(instr).to_bytes(WORD_BYTES, "little") for instr in instructions
    )


def decode_program(blob: bytes) -> list[Instruction]:
    """Decode the output of :func:`encode_program`."""
    if len(blob) % WORD_BYTES:
        raise IsaError(
            f"program blob length {len(blob)} is not a multiple of {WORD_BYTES}"
        )
    return [
        decode_instruction(int.from_bytes(blob[i : i + WORD_BYTES], "little"))
        for i in range(0, len(blob), WORD_BYTES)
    ]
