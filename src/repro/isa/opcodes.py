"""Opcode and field definitions of the SIMD² instruction set (paper Table 2).

The ISA has two instruction families:

- *data movement*: ``load`` / ``store`` move 16×16 matrix fragments between
  the 1-D shared-memory address space and the per-warp register file;
  ``fill`` broadcasts an immediate into a fragment.
- *arithmetic*: nine matrix-matrix-operation (``mmo``) opcodes, one per
  SIMD² semiring, all sharing the ``D = C ⊕ (A ⊗ B)`` operand pattern.
"""

from __future__ import annotations

import enum

from repro.core.registry import get_semiring
from repro.core.semiring import Semiring

__all__ = ["InstructionKind", "MmoOpcode", "ElementType", "IsaError"]


class IsaError(ValueError):
    """Raised on malformed instructions, encodings, or assembly text."""


class InstructionKind(enum.IntEnum):
    """Top-level instruction family (3-bit field in the encoding)."""

    LOAD = 0
    STORE = 1
    FILL = 2
    MMO = 3
    HALT = 4


#: Lazy opcode → Semiring cache backing :attr:`MmoOpcode.semiring`.
_SEMIRING_CACHE: dict["MmoOpcode", Semiring] = {}


class MmoOpcode(enum.IntEnum):
    """The nine SIMD² arithmetic opcodes, in the paper's Table 2 order."""

    MMA = 0
    MINPLUS = 1
    MAXPLUS = 2
    MINMUL = 3
    MAXMUL = 4
    MINMAX = 5
    MAXMIN = 6
    ORAND = 7
    ADDNORM = 8

    @property
    def mnemonic(self) -> str:
        """Lower-case assembly mnemonic, e.g. ``"minplus"``."""
        return self.name.lower()

    @property
    def semiring(self) -> Semiring:
        """The semiring this opcode implements (cached — this sits on the
        per-mmo hot path of the emulator)."""
        ring = _SEMIRING_CACHE.get(self)
        if ring is None:
            ring = _SEMIRING_CACHE[self] = get_semiring(self.mnemonic)
        return ring

    @classmethod
    def from_mnemonic(cls, text: str) -> "MmoOpcode":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise IsaError(
                f"unknown mmo opcode {text!r}; expected one of "
                f"{[op.mnemonic for op in cls]}"
            ) from None

    @classmethod
    def from_semiring(cls, ring: Semiring | str) -> "MmoOpcode":
        ring = get_semiring(ring)
        for op in cls:
            if op.semiring.name == ring.name:
                return op
        raise IsaError(f"no opcode implements semiring {ring.name!r}")


class ElementType(enum.IntEnum):
    """Element formats of matrix fragments (2-bit field).

    ``F16`` for inputs, ``F32`` for accumulators/outputs, ``B8`` for the
    boolean or-and ring (one byte per element in shared memory).
    """

    F16 = 0
    F32 = 1
    B8 = 2

    @property
    def nbytes(self) -> int:
        return {ElementType.F16: 2, ElementType.F32: 4, ElementType.B8: 1}[self]

    @property
    def suffix(self) -> str:
        """Assembly suffix, e.g. ``"f16"``."""
        return self.name.lower()

    @classmethod
    def from_suffix(cls, text: str) -> "ElementType":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise IsaError(
                f"unknown element type {text!r}; expected one of "
                f"{[t.suffix for t in cls]}"
            ) from None
