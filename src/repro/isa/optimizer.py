"""Peephole optimisation of SIMD² warp programs.

Two classic passes, adapted to the tile ISA:

- **redundant-load elimination**: a ``load`` whose destination register
  already holds exactly the fragment it would fetch (same address, stride
  and element type, with no intervening shared-memory store) is dropped —
  this is the optimisation that makes C-tile-resident kernels cheaper than
  naive per-step reloads;
- **dead-write elimination**: ``load``/``fill``/``mmo`` results that are
  never read before being overwritten (or before the program ends) are
  removed, iterating to a fixpoint since removing one dead write can
  expose another.

``store`` instructions always survive (shared memory is the program's
observable output).  The optimiser never changes observable behaviour —
property-tested by executing original and optimised programs side by side,
and **statically proven** per invocation when ``validate=True``: the
surviving store set and each store's reaching dataflow are compared via
:func:`repro.isa.dataflow.validate_translation`, so a rewrite that would
alter what any store writes raises instead of shipping.  The compile
layer (:func:`repro.compile.lower.lower_mmo`) always optimises in
validated mode.
"""

from __future__ import annotations

import dataclasses

from repro.isa.dataflow import validate_translation
from repro.isa.instructions import (
    FillMatrix,
    Halt,
    Instruction,
    LoadMatrix,
    Mmo,
    StoreMatrix,
)
from repro.isa.program import Program

__all__ = ["OptimizationResult", "optimize_program"]


@dataclasses.dataclass(frozen=True)
class OptimizationResult:
    """An optimised program plus what was removed."""

    program: Program
    removed_loads: int
    removed_writes: int

    @property
    def removed(self) -> int:
        return self.removed_loads + self.removed_writes


def _eliminate_redundant_loads(body: list[Instruction]) -> tuple[list[Instruction], int]:
    held: dict[int, tuple[int, int, int]] = {}  # reg -> (addr, ld, etype)
    out: list[Instruction] = []
    removed = 0
    for instr in body:
        if isinstance(instr, LoadMatrix):
            descriptor = (instr.addr, instr.ld, int(instr.etype))
            if held.get(instr.dst) == descriptor:
                removed += 1
                continue
            held[instr.dst] = descriptor
        elif isinstance(instr, FillMatrix):
            held.pop(instr.dst, None)
        elif isinstance(instr, Mmo):
            held.pop(instr.d, None)
        elif isinstance(instr, StoreMatrix):
            # Conservative aliasing: any store may overwrite any fragment.
            held.clear()
        out.append(instr)
    return out, removed


def _eliminate_dead_writes(body: list[Instruction]) -> tuple[list[Instruction], int]:
    removed_total = 0
    changed = True
    while changed:
        changed = False
        live: set[int] = set()
        keep: list[bool] = [True] * len(body)
        for index in range(len(body) - 1, -1, -1):
            instr = body[index]
            if isinstance(instr, StoreMatrix):
                live.add(instr.src)
            elif isinstance(instr, (LoadMatrix, FillMatrix)):
                if instr.dst not in live:
                    keep[index] = False
                else:
                    live.discard(instr.dst)
            elif isinstance(instr, Mmo):
                if instr.d not in live:
                    keep[index] = False
                else:
                    live.discard(instr.d)
                    live.update((instr.a, instr.b, instr.c))
        if not all(keep):
            changed = True
            removed_total += keep.count(False)
            body = [instr for instr, flag in zip(body, keep) if flag]
    return body, removed_total


def optimize_program(program: Program, *, validate: bool = False) -> OptimizationResult:
    """Apply both passes and return a behaviour-equivalent program.

    With ``validate=True``, behavioural equivalence is statically proven
    before returning — the optimised program must preserve the original's
    store set and per-store reaching dataflow
    (:func:`repro.isa.dataflow.validate_translation`), raising
    :class:`~repro.isa.opcodes.IsaError` on any divergence.
    """
    body = [instr for instr in program if not isinstance(instr, Halt)]
    body, removed_loads = _eliminate_redundant_loads(body)
    body, removed_writes = _eliminate_dead_writes(body)
    # Dead-write elimination can re-expose redundant loads and vice versa.
    again = True
    while again:
        body, more_loads = _eliminate_redundant_loads(body)
        body, more_writes = _eliminate_dead_writes(body)
        removed_loads += more_loads
        removed_writes += more_writes
        again = bool(more_loads or more_writes)
    optimized = Program(body, auto_halt=True)
    if validate:
        validate_translation(program, optimized, check=True)
    return OptimizationResult(
        program=optimized,
        removed_loads=removed_loads,
        removed_writes=removed_writes,
    )
