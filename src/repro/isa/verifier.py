"""Static verification of SIMD² warp programs.

:class:`~repro.isa.program.Program` guarantees structural well-formedness
(halt placement, use-before-define).  This module adds the checks a
compiler back-end would run before emitting code:

- **element-type checking** — tracks the format each register holds across
  the program and rejects mmo operands whose format cannot feed the unit's
  ports (fp32 into an fp16 ⊗ port, a boolean accumulator under a numeric
  opcode, ...), turning the emulator's *runtime* faults into *static*
  diagnostics;
- **semiring legality** — fill immediates feeding an mmo are checked
  against the opcode's ring: NaN accumulator seeds, non-0/1 booleans, and
  the oppositely-signed infinity that ``⊗ = +`` rings map to NaN against
  identity padding are all rejected before anything executes;
- **liveness analysis** — dead stores (a register written and never read
  again) and the set of live-in-free registers, for register-budget
  reporting (``register_budget`` turns over-allocation into an error);
- **shared-memory footprint** — the minimal scratchpad size the program's
  load/store addresses require; when the caller supplies the artifact's
  layout via ``shared_limit``, accesses past it become instruction-indexed
  errors;
- **effect summary** — the program's observable store set (via
  :func:`repro.isa.dataflow.store_effects`) plus a fold-order/determinism
  summary: which opcodes run, how deep the ⊕-accumulation chains are, and
  whether the result is bit-reproducible under fold regrouping.

The fragment geometry is **derived, not hardcoded**: footprints default to
the ISA's tile size (:data:`repro.core.tiles.TILE`) and callers verifying
against a specific artifact pass its ``tile`` explicitly, so programs for
non-16² fragment geometries verify correctly.

``verify_program`` returns a :class:`VerificationReport`; ``check=True``
raises on the first error instead.  The compile layer
(:func:`repro.compile.lower.lower_mmo`) runs this on every lowering and
caches the report inside the :class:`~repro.compile.artifact.CompiledMmo`.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.core.tiles import TILE
from repro.isa.dataflow import StoreEffect, store_effects
from repro.isa.instructions import (
    NUM_MATRIX_REGISTERS,
    FillMatrix,
    Halt,
    LoadMatrix,
    Mmo,
    StoreMatrix,
)
from repro.isa.opcodes import ElementType, IsaError, MmoOpcode
from repro.isa.program import Program

__all__ = ["ProgramEffects", "VerificationReport", "verify_program"]


@dataclasses.dataclass(frozen=True)
class ProgramEffects:
    """Fold-order/determinism summary of one program's observable effects.

    ``order_sensitive`` marks programs running at least one opcode whose
    ⊕ is floating-point addition (plus-mul, plus-norm): regrouping the
    fold changes the result by rounding.  Idempotent/exact rings (the
    min/max family, or-and) are order-insensitive bit-for-bit.

    ``sequential_folds`` is true when every ⊕-accumulation chain is a
    simple left fold — no mmo result feeds the ``c`` port of more than
    one mmo, so there is exactly one evaluation order and the program is
    deterministic even on order-sensitive rings.
    """

    opcodes: tuple[MmoOpcode, ...]
    store_count: int
    max_fold_depth: int
    sequential_folds: bool
    order_sensitive: bool

    @property
    def deterministic(self) -> bool:
        """Bit-reproducible regardless of how the fold could be regrouped."""
        return self.sequential_folds or not self.order_sensitive


@dataclasses.dataclass(frozen=True)
class VerificationReport:
    """Outcome of static verification."""

    errors: tuple[str, ...]
    warnings: tuple[str, ...]
    registers_used: frozenset[int]
    dead_stores: tuple[int, ...]  # instruction indices whose result dies
    shared_memory_bytes: int
    store_set: tuple[StoreEffect, ...] = ()
    effects: ProgramEffects | None = None
    register_budget: int = NUM_MATRIX_REGISTERS
    tile: int = TILE

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def register_pressure(self) -> int:
        """Registers the program allocates out of ``register_budget``."""
        return len(self.registers_used)

    @property
    def registers_free(self) -> int:
        return self.register_budget - self.register_pressure

    def summary_stats(self) -> dict[str, int]:
        """Flat counters for observability sinks (trace compile records)."""
        return {
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "dead_stores": len(self.dead_stores),
            "stores": len(self.store_set),
            "registers_used": self.register_pressure,
            "shared_memory_bytes": self.shared_memory_bytes,
        }


def _expected_types(instr: Mmo) -> tuple[ElementType, ElementType]:
    ring = instr.opcode.semiring
    if ring.is_boolean():
        return ElementType.B8, ElementType.B8
    return ElementType.F16, ElementType.F32


def _check_fill_operand(
    instr: Mmo, port: str, reg: int, value: float, fail
) -> None:
    """Semiring legality of a fill immediate feeding an mmo port."""
    ring = instr.opcode.semiring
    mnemonic = instr.opcode.mnemonic
    if math.isnan(value):
        fail(
            f"mmo.{mnemonic} {port}=m{reg} holds fill NaN, which poisons "
            f"every ⊕-selection of the {ring.name} ring"
        )
        return
    if ring.is_boolean():
        if value not in (0.0, 1.0):
            fail(
                f"mmo.{mnemonic} {port}=m{reg} holds fill {value!r}; the "
                f"boolean {ring.name} ring accepts only 0 or 1"
            )
        return
    identity = ring.oplus_identity
    if (
        port in ("a", "b")
        and ring.otimes is np.add
        and math.isinf(identity)
        and value == -identity
    ):
        fail(
            f"mmo.{mnemonic} operand {port}=m{reg} holds fill {value!r}, "
            f"which maps to NaN against the {ring.name} ring's "
            f"{identity} padding (⊗ is +)"
        )


def _program_effects(program: Program, stores: tuple[StoreEffect, ...]) -> ProgramEffects:
    """Derive the fold-order/determinism summary from the store terms."""
    opcodes: list[MmoOpcode] = []
    c_uses: dict[int, int] = {}  # id of an mmo term -> times used as a c operand
    for instr in program:
        if isinstance(instr, Mmo) and instr.opcode not in opcodes:
            opcodes.append(instr.opcode)

    def walk(term) -> None:
        if term[0] != "mmo":
            return
        _, _, a_term, b_term, c_term = term
        if c_term[0] == "mmo":
            c_uses[id_of(c_term)] = c_uses.get(id_of(c_term), 0) + 1
        for child in (a_term, b_term, c_term):
            walk(child)

    seen: dict[tuple, int] = {}

    def id_of(term) -> int:
        key = seen.setdefault(term, len(seen))
        return key

    for effect in stores:
        walk(effect.term)
    sequential = all(count <= 1 for count in c_uses.values())
    order_sensitive = any(op.semiring.oplus is np.add for op in opcodes)
    return ProgramEffects(
        opcodes=tuple(opcodes),
        store_count=len(stores),
        max_fold_depth=max((e.fold_depth for e in stores), default=0),
        sequential_folds=sequential,
        order_sensitive=order_sensitive,
    )


def verify_program(
    program: Program,
    *,
    check: bool = False,
    tile: int | None = None,
    shared_limit: int | None = None,
    register_budget: int = NUM_MATRIX_REGISTERS,
) -> VerificationReport:
    """Statically verify a warp program.

    Parameters
    ----------
    check:
        Raise :class:`~repro.isa.opcodes.IsaError` on the first error
        instead of collecting it.
    tile:
        Fragment edge length used for footprint computation.  ``None``
        derives the ISA default (:data:`repro.core.tiles.TILE`); callers
        verifying against a compiled artifact pass the artifact's
        geometry so non-16² fragments are measured correctly.
    shared_limit:
        When given (the artifact's ``shared_bytes`` layout), any access
        whose footprint exceeds it is an instruction-indexed error.
    register_budget:
        Size of the register file to report against; allocating more
        registers than this is an error (the ISA default is
        :data:`~repro.isa.instructions.NUM_MATRIX_REGISTERS`).
    """
    if tile is None:
        tile = TILE
    if tile <= 0:
        raise IsaError(f"tile size must be positive, got {tile}")
    errors: list[str] = []
    warnings: list[str] = []
    reg_types: dict[int, ElementType] = {}
    fill_values: dict[int, float] = {}
    last_write: dict[int, int] = {}
    read_since_write: dict[int, bool] = {}
    footprint = 0

    def fail(message: str) -> None:
        if check:
            raise IsaError(message)
        errors.append(message)

    def note_read(reg: int) -> None:
        read_since_write[reg] = True

    def note_write(reg: int, etype: ElementType, index: int) -> None:
        if reg in last_write and not read_since_write.get(reg, True):
            warnings.append(
                f"instruction {last_write[reg]}: value in m{reg} is overwritten "
                f"at {index} without being read (dead store)"
            )
        reg_types[reg] = etype
        last_write[reg] = index
        read_since_write[reg] = False

    for index, instr in enumerate(program):
        if isinstance(instr, (LoadMatrix, StoreMatrix)):
            last = (instr.addr + (tile - 1) * instr.ld + tile) * instr.etype.nbytes
            footprint = max(footprint, last)
            if shared_limit is not None and last > shared_limit:
                verb = "load" if isinstance(instr, LoadMatrix) else "store"
                fail(
                    f"instruction {index}: {verb}.{instr.etype.suffix} at "
                    f"[{instr.addr}] ld={instr.ld} touches byte {last}, past "
                    f"the {shared_limit}-byte shared-memory layout"
                )
        if isinstance(instr, LoadMatrix):
            note_write(instr.dst, instr.etype, index)
            fill_values.pop(instr.dst, None)
        elif isinstance(instr, FillMatrix):
            note_write(instr.dst, instr.etype, index)
            fill_values[instr.dst] = instr.value
        elif isinstance(instr, StoreMatrix):
            held = reg_types.get(instr.src)
            if held is not None and held is not instr.etype:
                fail(
                    f"instruction {index}: store.{instr.etype.suffix} of m{instr.src} "
                    f"which holds {held.suffix}"
                )
            note_read(instr.src)
        elif isinstance(instr, Mmo):
            in_etype, out_etype = _expected_types(instr)
            for name, reg in (("a", instr.a), ("b", instr.b)):
                held = reg_types.get(reg)
                if held is not None and held is not in_etype:
                    fail(
                        f"instruction {index}: mmo.{instr.opcode.mnemonic} operand "
                        f"{name}=m{reg} holds {held.suffix}, port needs {in_etype.suffix}"
                    )
                if reg in fill_values:
                    _check_fill_operand(
                        instr, name, reg, fill_values[reg],
                        lambda msg: fail(f"instruction {index}: {msg}"),
                    )
                note_read(reg)
            held_c = reg_types.get(instr.c)
            if held_c is not None and held_c is not out_etype:
                fail(
                    f"instruction {index}: mmo.{instr.opcode.mnemonic} accumulator "
                    f"c=m{instr.c} holds {held_c.suffix}, port needs {out_etype.suffix}"
                )
            if instr.c in fill_values:
                _check_fill_operand(
                    instr, "c", instr.c, fill_values[instr.c],
                    lambda msg: fail(f"instruction {index}: {msg}"),
                )
            note_read(instr.c)
            note_write(instr.d, out_etype, index)
            fill_values.pop(instr.d, None)
        elif isinstance(instr, Halt):
            break

    if len(last_write) > register_budget:
        fail(
            f"program allocates {len(last_write)} matrix registers, "
            f"exceeding the budget of {register_budget}"
        )

    dead_stores = tuple(
        last_write[reg] for reg in sorted(last_write) if not read_since_write.get(reg, True)
    )
    for reg in sorted(last_write):
        if not read_since_write.get(reg, True):
            warnings.append(
                f"instruction {last_write[reg]}: final value of m{reg} is never "
                "read or stored"
            )

    stores = store_effects(program)
    return VerificationReport(
        errors=tuple(errors),
        warnings=tuple(warnings),
        registers_used=frozenset(last_write),
        dead_stores=dead_stores,
        shared_memory_bytes=footprint,
        store_set=stores,
        effects=_program_effects(program, stores),
        register_budget=register_budget,
        tile=tile,
    )
