"""Static verification of SIMD² warp programs.

:class:`~repro.isa.program.Program` guarantees structural well-formedness
(halt placement, use-before-define).  This module adds the checks a
compiler back-end would run before emitting code:

- **element-type checking** — tracks the format each register holds across
  the program and rejects mmo operands whose format cannot feed the unit's
  ports (fp32 into an fp16 ⊗ port, a boolean accumulator under a numeric
  opcode, ...), turning the emulator's *runtime* faults into *static*
  diagnostics;
- **liveness analysis** — dead stores (a register written and never read
  again) and the set of live-in-free registers, for register-budget
  reporting;
- **shared-memory footprint** — the minimal scratchpad size the program's
  load/store addresses require.

``verify_program`` returns a :class:`VerificationReport`; ``check=True``
raises on the first error instead.
"""

from __future__ import annotations

import dataclasses

from repro.isa.instructions import (
    FillMatrix,
    Halt,
    LoadMatrix,
    Mmo,
    StoreMatrix,
)
from repro.isa.opcodes import ElementType, IsaError
from repro.isa.program import Program

__all__ = ["VerificationReport", "verify_program"]

_TILE = 16


@dataclasses.dataclass(frozen=True)
class VerificationReport:
    """Outcome of static verification."""

    errors: tuple[str, ...]
    warnings: tuple[str, ...]
    registers_used: frozenset[int]
    dead_stores: tuple[int, ...]  # instruction indices whose result dies
    shared_memory_bytes: int

    @property
    def ok(self) -> bool:
        return not self.errors


def _expected_types(instr: Mmo) -> tuple[ElementType, ElementType]:
    ring = instr.opcode.semiring
    if ring.is_boolean():
        return ElementType.B8, ElementType.B8
    return ElementType.F16, ElementType.F32


def verify_program(program: Program, *, check: bool = False) -> VerificationReport:
    """Statically verify a warp program.

    With ``check=True``, raises :class:`~repro.isa.opcodes.IsaError` on the
    first type error instead of collecting it.
    """
    errors: list[str] = []
    warnings: list[str] = []
    reg_types: dict[int, ElementType] = {}
    last_write: dict[int, int] = {}
    read_since_write: dict[int, bool] = {}
    footprint = 0

    def fail(message: str) -> None:
        if check:
            raise IsaError(message)
        errors.append(message)

    def note_read(reg: int) -> None:
        read_since_write[reg] = True

    def note_write(reg: int, etype: ElementType, index: int) -> None:
        if reg in last_write and not read_since_write.get(reg, True):
            warnings.append(
                f"instruction {last_write[reg]}: value in m{reg} is overwritten "
                f"at {index} without being read (dead store)"
            )
        reg_types[reg] = etype
        last_write[reg] = index
        read_since_write[reg] = False

    for index, instr in enumerate(program):
        if isinstance(instr, (LoadMatrix, StoreMatrix)):
            last = (instr.addr + (_TILE - 1) * instr.ld + _TILE) * instr.etype.nbytes
            footprint = max(footprint, last)
        if isinstance(instr, LoadMatrix):
            note_write(instr.dst, instr.etype, index)
        elif isinstance(instr, FillMatrix):
            note_write(instr.dst, instr.etype, index)
        elif isinstance(instr, StoreMatrix):
            held = reg_types.get(instr.src)
            if held is not None and held is not instr.etype:
                fail(
                    f"instruction {index}: store.{instr.etype.suffix} of m{instr.src} "
                    f"which holds {held.suffix}"
                )
            note_read(instr.src)
        elif isinstance(instr, Mmo):
            in_etype, out_etype = _expected_types(instr)
            for name, reg in (("a", instr.a), ("b", instr.b)):
                held = reg_types.get(reg)
                if held is not None and held is not in_etype:
                    fail(
                        f"instruction {index}: mmo.{instr.opcode.mnemonic} operand "
                        f"{name}=m{reg} holds {held.suffix}, port needs {in_etype.suffix}"
                    )
                note_read(reg)
            held_c = reg_types.get(instr.c)
            if held_c is not None and held_c is not out_etype:
                fail(
                    f"instruction {index}: mmo.{instr.opcode.mnemonic} accumulator "
                    f"c=m{instr.c} holds {held_c.suffix}, port needs {out_etype.suffix}"
                )
            note_read(instr.c)
            note_write(instr.d, out_etype, index)
        elif isinstance(instr, Halt):
            break

    dead_stores = tuple(
        last_write[reg] for reg in sorted(last_write) if not read_since_write.get(reg, True)
    )
    for reg in sorted(last_write):
        if not read_since_write.get(reg, True):
            warnings.append(
                f"instruction {last_write[reg]}: final value of m{reg} is never "
                "read or stored"
            )

    return VerificationReport(
        errors=tuple(errors),
        warnings=tuple(warnings),
        registers_used=frozenset(last_write),
        dead_stores=dead_stores,
        shared_memory_bytes=footprint,
    )
