"""Semiring spGEMM — Gustavson's row-wise algorithm over any SIMD² ring.

This plays the role of cuSparse's ``spGemm`` (and of the GAMMA-style
SIMD² sparse accelerator the paper sketches in Section 6.5): it multiplies
CSR operands under an arbitrary ``(⊕, ⊗)`` pair, skipping every
ineffectual (implicit-identity) product.  The returned statistics — the
number of scalar products actually performed — drive the Figure 14
crossover model.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.registry import get_semiring
from repro.core.semiring import Semiring
from repro.sparse.csr import CsrMatrix, SparseError

__all__ = ["SpgemmStats", "spgemm"]


@dataclasses.dataclass(frozen=True)
class SpgemmStats:
    """Work counters of one spGEMM call."""

    products: int  # scalar ⊗ operations performed
    output_nnz: int
    rows_touched: int

    @property
    def compression_ratio(self) -> float:
        """Products per output non-zero (≥ 1; high values mean heavy merging)."""
        return self.products / self.output_nnz if self.output_nnz else 0.0


def spgemm(
    ring: Semiring | str,
    a: CsrMatrix,
    b: CsrMatrix,
    *,
    keep_identity: bool = False,
) -> tuple[CsrMatrix, SpgemmStats]:
    """``C = A ⊗.⊕ B`` on CSR operands (implicit value = the ⊕ identity).

    Gustavson's algorithm: for each row ``i`` of A, scale-and-merge the
    rows of B selected by A's column indices into a sparse accumulator.
    Entries that come out equal to the ⊕ identity are dropped unless
    ``keep_identity`` is set.
    """
    ring = get_semiring(ring)
    if a.shape[1] != b.shape[0]:
        raise SparseError(
            f"inner dimensions differ: A is {a.shape}, B is {b.shape}"
        )
    m = a.shape[0]
    n = b.shape[1]

    out_indptr = np.zeros(m + 1, dtype=np.int64)
    out_indices: list[np.ndarray] = []
    out_data: list[np.ndarray] = []
    products = 0
    rows_touched = 0
    identity = np.asarray(ring.oplus_identity, dtype=ring.output_dtype)

    for i in range(m):
        a_cols, a_vals = a.row(i)
        accumulator: dict[int, np.ndarray] = {}
        if len(a_cols):
            rows_touched += 1
        for a_col, a_val in zip(a_cols, a_vals):
            b_cols, b_vals = b.row(int(a_col))
            if not len(b_cols):
                continue
            with np.errstate(invalid="ignore"):
                prods = ring.otimes(
                    np.asarray(a_val, dtype=ring.output_dtype),
                    np.asarray(b_vals, dtype=ring.output_dtype),
                )
            prods = np.asarray(prods, dtype=ring.output_dtype)
            products += len(b_cols)
            for b_col, value in zip(b_cols, prods):
                key = int(b_col)
                if key in accumulator:
                    accumulator[key] = np.asarray(
                        ring.oplus(accumulator[key], value), dtype=ring.output_dtype
                    )
                else:
                    accumulator[key] = value
        if accumulator:
            cols_sorted = np.array(sorted(accumulator), dtype=np.int64)
            vals = np.array(
                [accumulator[int(c)] for c in cols_sorted], dtype=ring.output_dtype
            )
            if not keep_identity:
                keep = vals != identity
                cols_sorted = cols_sorted[keep]
                vals = vals[keep]
            out_indices.append(cols_sorted)
            out_data.append(vals)
            out_indptr[i + 1] = out_indptr[i] + len(cols_sorted)
        else:
            out_indptr[i + 1] = out_indptr[i]

    indices = (
        np.concatenate(out_indices) if out_indices else np.empty(0, dtype=np.int64)
    )
    data = (
        np.concatenate(out_data)
        if out_data
        else np.empty(0, dtype=ring.output_dtype)
    )
    result = CsrMatrix(shape=(m, n), indptr=out_indptr, indices=indices, data=data)
    stats = SpgemmStats(
        products=products, output_nnz=result.nnz, rows_touched=rows_touched
    )
    return result, stats
