"""Semiring spGEMM — Gustavson's row-wise algorithm over any SIMD² ring.

This plays the role of cuSparse's ``spGemm`` (and of the GAMMA-style
SIMD² sparse accelerator the paper sketches in Section 6.5): it multiplies
CSR operands under an arbitrary ``(⊕, ⊗)`` pair, skipping every
ineffectual (implicit-identity) product.  The returned statistics — the
number of scalar products actually performed — drive the Figure 14
crossover model.

The hot path is a vectorized merge: per A row, the selected B-row slices
are gathered with ``np.concatenate``, the ⊗ products computed in one
vectorized call, and duplicate columns folded under ⊕ after a stable
``argsort``.  For the idempotent rings (min/max/or ⊕) the fold uses
``ufunc.reduceat``; for the inexact plus-based rings ``reduceat`` would
reduce long segments pairwise, so a rank-wise left fold is used instead,
applying ⊕ to each column's contributions strictly left to right — the
exact order a scalar dict accumulator uses.  Either way, values — and
``SpgemmStats.products`` — are bit-identical to :func:`spgemm_reference`,
the original dict-based formulation kept as the parity oracle.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.registry import get_semiring
from repro.core.semiring import Semiring
from repro.sparse.csr import CsrMatrix, SparseError

__all__ = ["SpgemmStats", "spgemm", "spgemm_reference"]


@dataclasses.dataclass(frozen=True)
class SpgemmStats:
    """Work counters of one spGEMM call."""

    products: int  # scalar ⊗ operations performed
    output_nnz: int
    rows_touched: int

    @property
    def compression_ratio(self) -> float:
        """Products per surviving output non-zero.

        ≥ 1 whenever any product was performed: high values mean heavy
        merging, and ``inf`` means every product merged to the ⊕ identity
        and was dropped (``products > 0``, ``output_nnz == 0``).  Returns
        ``0.0`` only when no products were performed at all.
        """
        if self.output_nnz:
            return self.products / self.output_nnz
        return float("inf") if self.products else 0.0


#: ⊕ ufuncs whose reduction is exactly associative (idempotent selections),
#: so any reduction grouping — including ``reduceat``'s pairwise splitting of
#: long segments — yields the same result as a sequential left fold.
#: ``np.add`` is deliberately absent: float addition is not associative, and
#: ``reduceat`` reduces segments longer than 8 pairwise, which would break
#: bit-parity with the scalar reference.
_EXACT_REDUCEAT_OPLUS = frozenset({np.minimum, np.maximum, np.logical_or})


def _merge_by_column(
    ring: Semiring, cols: np.ndarray, vals: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """⊕-fold duplicate columns; returns (sorted unique cols, merged vals).

    The stable sort keeps each column's contributions in their original
    (gather) order.  Idempotent ⊕ ufuncs (min/max/or) are folded with
    ``reduceat``, whose pairwise grouping cannot change their result.
    Other ⊕ ufuncs (``np.add`` for the plus-* rings) use a rank-wise left
    fold — iteration ``r`` combines every segment's ``r``-th contribution
    into its running accumulator, vectorized across segments — which
    applies ⊕ strictly left to right within each segment, the exact order
    a scalar dict accumulator uses, so merged floats are bit-identical to
    the scalar path.
    """
    order = np.argsort(cols, kind="stable")
    cols_sorted = cols[order]
    vals_sorted = vals[order]
    boundaries = np.flatnonzero(
        np.concatenate(([True], cols_sorted[1:] != cols_sorted[:-1]))
    )
    unique_cols = cols_sorted[boundaries]
    if isinstance(ring.oplus, np.ufunc) and ring.oplus in _EXACT_REDUCEAT_OPLUS:
        merged = ring.oplus.reduceat(vals_sorted, boundaries)
    elif isinstance(ring.oplus, np.ufunc):
        lengths = np.append(boundaries[1:], len(vals_sorted)) - boundaries
        merged = vals_sorted[boundaries]
        for r in range(1, int(lengths.max())):
            live = lengths > r
            merged[live] = ring.oplus(
                merged[live], vals_sorted[boundaries[live] + r]
            )
    else:
        segments = np.append(boundaries, len(vals_sorted))
        merged = np.empty(len(unique_cols), dtype=vals_sorted.dtype)
        for g in range(len(unique_cols)):
            acc = vals_sorted[segments[g]]
            for pos in range(segments[g] + 1, segments[g + 1]):
                acc = ring.oplus(acc, vals_sorted[pos])
            merged[g] = acc
    return unique_cols, np.asarray(merged, dtype=vals_sorted.dtype)


def spgemm(
    ring: Semiring | str,
    a: CsrMatrix,
    b: CsrMatrix,
    *,
    keep_identity: bool = False,
) -> tuple[CsrMatrix, SpgemmStats]:
    """``C = A ⊗.⊕ B`` on CSR operands (implicit value = the ⊕ identity).

    Gustavson's algorithm: for each row ``i`` of A, scale-and-merge the
    rows of B selected by A's column indices into a sparse accumulator.
    Entries that come out equal to the ⊕ identity are dropped unless
    ``keep_identity`` is set.
    """
    ring = get_semiring(ring)
    if a.shape[1] != b.shape[0]:
        raise SparseError(
            f"inner dimensions differ: A is {a.shape}, B is {b.shape}"
        )
    m = a.shape[0]
    n = b.shape[1]

    out_indptr = np.zeros(m + 1, dtype=np.int64)
    out_indices: list[np.ndarray] = []
    out_data: list[np.ndarray] = []
    products = 0
    rows_touched = 0
    identity = np.asarray(ring.oplus_identity, dtype=ring.output_dtype)
    b_indptr = b.indptr
    b_indices = b.indices
    b_data = np.asarray(b.data, dtype=ring.output_dtype)

    for i in range(m):
        a_cols, a_vals = a.row(i)
        if len(a_cols):
            rows_touched += 1
        else:
            out_indptr[i + 1] = out_indptr[i]
            continue
        starts = b_indptr[a_cols]
        ends = b_indptr[a_cols + 1]
        lengths = ends - starts
        total = int(lengths.sum())
        if total == 0:
            out_indptr[i + 1] = out_indptr[i]
            continue
        # Gather the selected B-row slices in A-column order (the scalar
        # reference's traversal order).
        cat_cols = np.concatenate(
            [b_indices[s:e] for s, e in zip(starts, ends) if e > s]
        )
        cat_vals = np.concatenate(
            [b_data[s:e] for s, e in zip(starts, ends) if e > s]
        )
        a_rep = np.repeat(np.asarray(a_vals, dtype=ring.output_dtype), lengths)
        with np.errstate(invalid="ignore"):
            prods = ring.otimes(a_rep, cat_vals)
        prods = np.asarray(prods, dtype=ring.output_dtype)
        products += total

        cols_merged, vals_merged = _merge_by_column(ring, cat_cols, prods)
        if not keep_identity:
            keep = vals_merged != identity
            cols_merged = cols_merged[keep]
            vals_merged = vals_merged[keep]
        out_indices.append(cols_merged)
        out_data.append(vals_merged)
        out_indptr[i + 1] = out_indptr[i] + len(cols_merged)

    indices = (
        np.concatenate(out_indices) if out_indices else np.empty(0, dtype=np.int64)
    )
    data = (
        np.concatenate(out_data)
        if out_data
        else np.empty(0, dtype=ring.output_dtype)
    )
    result = CsrMatrix(shape=(m, n), indptr=out_indptr, indices=indices, data=data)
    stats = SpgemmStats(
        products=products, output_nnz=result.nnz, rows_touched=rows_touched
    )
    return result, stats


def spgemm_reference(
    ring: Semiring | str,
    a: CsrMatrix,
    b: CsrMatrix,
    *,
    keep_identity: bool = False,
) -> tuple[CsrMatrix, SpgemmStats]:
    """Dict-accumulator Gustavson spGEMM (tests/benchmarks only; slow).

    The original per-scalar formulation, kept as the bit-exactness oracle
    for :func:`spgemm` and as the "seed" side of the hot-path benchmark.
    """
    ring = get_semiring(ring)
    if a.shape[1] != b.shape[0]:
        raise SparseError(
            f"inner dimensions differ: A is {a.shape}, B is {b.shape}"
        )
    m = a.shape[0]
    n = b.shape[1]

    out_indptr = np.zeros(m + 1, dtype=np.int64)
    out_indices: list[np.ndarray] = []
    out_data: list[np.ndarray] = []
    products = 0
    rows_touched = 0
    identity = np.asarray(ring.oplus_identity, dtype=ring.output_dtype)

    for i in range(m):
        a_cols, a_vals = a.row(i)
        accumulator: dict[int, np.ndarray] = {}
        if len(a_cols):
            rows_touched += 1
        for a_col, a_val in zip(a_cols, a_vals):
            b_cols, b_vals = b.row(int(a_col))
            if not len(b_cols):
                continue
            with np.errstate(invalid="ignore"):
                prods = ring.otimes(
                    np.asarray(a_val, dtype=ring.output_dtype),
                    np.asarray(b_vals, dtype=ring.output_dtype),
                )
            prods = np.asarray(prods, dtype=ring.output_dtype)
            products += len(b_cols)
            for b_col, value in zip(b_cols, prods):
                key = int(b_col)
                if key in accumulator:
                    accumulator[key] = np.asarray(
                        ring.oplus(accumulator[key], value), dtype=ring.output_dtype
                    )
                else:
                    accumulator[key] = value
        if accumulator:
            cols_sorted = np.array(sorted(accumulator), dtype=np.int64)
            vals = np.array(
                [accumulator[int(c)] for c in cols_sorted], dtype=ring.output_dtype
            )
            if not keep_identity:
                keep = vals != identity
                cols_sorted = cols_sorted[keep]
                vals = vals[keep]
            out_indices.append(cols_sorted)
            out_data.append(vals)
            out_indptr[i + 1] = out_indptr[i] + len(cols_sorted)
        else:
            out_indptr[i + 1] = out_indptr[i]

    indices = (
        np.concatenate(out_indices) if out_indices else np.empty(0, dtype=np.int64)
    )
    data = (
        np.concatenate(out_data)
        if out_data
        else np.empty(0, dtype=ring.output_dtype)
    )
    result = CsrMatrix(shape=(m, n), indptr=out_indptr, indices=indices, data=data)
    stats = SpgemmStats(
        products=products, output_nnz=result.nnz, rows_touched=rows_touched
    )
    return result, stats
