"""Packed boolean matrices — the cuBool-style substrate for GTC.

The paper's GTC baseline (cuBool) stores boolean matrices one bit per
element and multiplies them with word-wide AND/popcount-free OR logic.
:class:`BitMatrix` reimplements that representation from scratch: rows
packed into 64-bit words, with

- word-parallel ``multiply`` (or-and matrix product): for each set bit
  ``(i, k)``, OR row ``k`` of B into row ``i`` of the result — 64 columns
  per word operation,
- ``transitive_closure`` by repeated squaring with a convergence check,
- exact equivalence to the dense or-and semiring (tested), while using
  1/8th of `b8` storage.

This gives the repo a faithful model of *why* the cuBool baseline is
strong (word-level parallelism) — the effect the timing model's
`CUBOOL_SLOTS_PER_PAIR` constant prices.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.sparse.csr import SparseError

__all__ = ["BitMatrix"]

_WORD = 64


@dataclasses.dataclass
class BitMatrix:
    """A boolean matrix packed row-major into uint64 words."""

    shape: tuple[int, int]
    words: np.ndarray  # (rows, ceil(cols/64)) uint64

    def __post_init__(self) -> None:
        rows, cols = self.shape
        if rows < 0 or cols < 0:
            raise SparseError(f"bad shape {self.shape}")
        expected = (rows, math.ceil(cols / _WORD) if cols else 0)
        self.words = np.asarray(self.words, dtype=np.uint64)
        if self.words.shape != expected:
            raise SparseError(
                f"word array has shape {self.words.shape}, expected {expected}"
            )
        # Bits past the logical column count must stay clear (invariant).
        if cols % _WORD and self.words.size:
            tail_mask = np.uint64((1 << (cols % _WORD)) - 1)
            if np.any(self.words[:, -1] & ~tail_mask):
                raise SparseError("padding bits beyond the last column are set")

    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "BitMatrix":
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise SparseError(f"expected a 2-D matrix, got shape {dense.shape}")
        if dense.dtype != np.dtype(bool):
            raise SparseError(f"expected a boolean matrix, got dtype {dense.dtype}")
        rows, cols = dense.shape
        num_words = math.ceil(cols / _WORD) if cols else 0
        words = np.zeros((rows, num_words), dtype=np.uint64)
        for w in range(num_words):
            chunk = dense[:, w * _WORD : (w + 1) * _WORD]
            weights = (np.uint64(1) << np.arange(chunk.shape[1], dtype=np.uint64))
            words[:, w] = (chunk.astype(np.uint64) * weights[None, :]).sum(axis=1)
        return cls(shape=dense.shape, words=words)

    def to_dense(self) -> np.ndarray:
        rows, cols = self.shape
        out = np.zeros((rows, cols), dtype=bool)
        for w in range(self.words.shape[1]):
            width = min(_WORD, cols - w * _WORD)
            bits = (
                self.words[:, w : w + 1]
                >> np.arange(width, dtype=np.uint64)[None, :]
            ) & np.uint64(1)
            out[:, w * _WORD : w * _WORD + width] = bits.astype(bool)
        return out

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        # np.uint64 popcount via unpackbits on the byte view.
        return int(np.unpackbits(self.words.view(np.uint8)).sum())

    def memory_bytes(self) -> int:
        return self.words.nbytes

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BitMatrix)
            and other.shape == self.shape
            and np.array_equal(other.words, self.words)
        )

    # ------------------------------------------------------------------
    def multiply(self, other: "BitMatrix") -> "BitMatrix":
        """Or-and matrix product with word-parallel row ORs."""
        if self.shape[1] != other.shape[0]:
            raise SparseError(
                f"inner dimensions differ: {self.shape} x {other.shape}"
            )
        rows = self.shape[0]
        out = np.zeros((rows, other.words.shape[1]), dtype=np.uint64)
        for i in range(rows):
            row = self.words[i]
            for w in range(row.shape[0]):
                word = int(row[w])
                while word:
                    bit = word & -word
                    k = w * _WORD + bit.bit_length() - 1
                    out[i] |= other.words[k]
                    word ^= bit
        return BitMatrix(shape=(rows, other.shape[1]), words=out)

    def elementwise_or(self, other: "BitMatrix") -> "BitMatrix":
        if self.shape != other.shape:
            raise SparseError(f"shape mismatch: {self.shape} vs {other.shape}")
        return BitMatrix(shape=self.shape, words=self.words | other.words)

    def transitive_closure(self, *, reflexive: bool = True) -> tuple["BitMatrix", int]:
        """Repeated squaring with a convergence check.

        Returns ``(closure, iterations)``.
        """
        rows, cols = self.shape
        if rows != cols:
            raise SparseError(f"closure needs a square matrix, got {self.shape}")
        current = self
        if reflexive:
            eye = BitMatrix.from_dense(np.eye(rows, dtype=bool))
            current = current.elementwise_or(eye)
        iterations = 0
        limit = max(1, math.ceil(math.log2(max(2, rows)))) + 1
        for _ in range(limit):
            squared = current.multiply(current)
            updated = current.elementwise_or(squared)
            iterations += 1
            if updated == current:
                break
            current = updated
        return current, iterations
