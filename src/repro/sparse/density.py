"""Cheap operand-density estimation against a ring's ⊕ identity.

The planner (:mod:`repro.plan`) and the Fig-14 crossover study both need
one number per operand — the fraction of entries that are *explicit*
under a ring, i.e. not equal to the ring's ⊕ identity (the value CSR
compression drops, see :meth:`repro.sparse.csr.CsrMatrix.from_dense`).
Before this module each call site probed ad hoc (``np.count_nonzero``,
hand-rolled comparisons that miss the min-plus ``inf`` identity); this is
the one shared implementation.

Small operands are counted exactly; large ones are sampled at a fixed set
of deterministically drawn positions, so repeated estimates of the same
matrix agree bit-for-bit (the planner's decision memo and the autotune
table's density bins rely on that stability).
"""

from __future__ import annotations

import numpy as np

from repro.core.registry import get_semiring
from repro.core.semiring import Semiring

__all__ = ["estimate_density", "EXACT_THRESHOLD", "SAMPLE_COUNT"]

#: Operands with at most this many entries are counted exactly.
EXACT_THRESHOLD = 16384

#: Number of sampled positions for larger operands.  2048 samples bound
#: the standard error of the estimate below ~1.1% absolute — well inside
#: one of the autotune table's density bins — while keeping the probe far
#: cheaper than the launch it prices.
SAMPLE_COUNT = 2048

#: Fixed seed for the sample positions: estimates are a pure function of
#: the operand, not of call order.
_SAMPLE_SEED = 0x51D2

#: Sample positions memoised per flat size — Generator construction costs
#: tens of microseconds, which would dominate the whole estimate on the
#: dispatch hot path (the planner estimates two operands per launch).
_POSITIONS: dict[int, np.ndarray] = {}


def _sample_positions(size: int) -> np.ndarray:
    positions = _POSITIONS.get(size)
    if positions is None:
        rng = np.random.default_rng(_SAMPLE_SEED)
        positions = rng.integers(0, size, size=SAMPLE_COUNT)
        if len(_POSITIONS) >= 64:  # an unbounded map only if sizes churn
            _POSITIONS.clear()
        _POSITIONS[size] = positions
    return positions


def estimate_density(a: np.ndarray, ring: Semiring | str) -> float:
    """Fraction of entries of ``a`` that are explicit under ``ring``.

    An entry is *explicit* when it differs from the ring's ⊕ identity
    (``0`` for plus-mul, ``inf`` for min-plus, ``False`` for or-and, …).
    Exact below :data:`EXACT_THRESHOLD` entries, sampled above it; the
    sample positions are drawn from a fixed seed, so the estimate is
    deterministic per operand.  Empty operands report ``0.0``.
    """
    semiring = get_semiring(ring) if isinstance(ring, str) else ring
    values = np.asarray(a)
    if values.size == 0:
        return 0.0
    identity = semiring.oplus_identity
    flat = values.reshape(-1)
    if flat.size <= EXACT_THRESHOLD:
        sample = flat
    else:
        sample = flat[_sample_positions(flat.size)]
    if isinstance(identity, bool):
        explicit = np.count_nonzero(sample.astype(bool) != identity)
    else:
        with np.errstate(invalid="ignore"):
            explicit = np.count_nonzero(sample != identity)
    return float(explicit) / float(sample.size)
