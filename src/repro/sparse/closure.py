"""Sparse semiring closure — the paper's "SIMD² GAMMA" extension (§6.5).

For extremely sparse graphs the paper proposes pairing the SIMD² idea with
a GAMMA-class spGEMM accelerator: the same ``D = C ⊕ (A ⊗ B)`` iteration,
but over compressed operands with one configurable ⊗ ALU and one ⊕ ALU per
PE ("this SIMD² GAMMA accelerator would then be able to run APSP on sparse
graphs").  This module implements that functionally: closure iteration over
CSR matrices using the row-wise semiring spGEMM, with the same
Bellman-Ford / Leyzorek / convergence-check policies as the dense runtime.

The implicit value of all CSR operands is the ring's ⊕ identity, so the
sparse closure is exactly equivalent to the dense closure on
``csr.to_dense_for(ring)`` — asserted by the tests.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.registry import get_semiring
from repro.core.semiring import Semiring, SemiringError
from repro.runtime.closure import max_iterations_for
from repro.sparse.csr import CsrMatrix
from repro.sparse.spgemm import SpgemmStats, _merge_by_column, spgemm

__all__ = ["SparseClosureResult", "sparse_closure", "elementwise_oplus"]


@dataclasses.dataclass(frozen=True)
class SparseClosureResult:
    """Outcome of a sparse closure iteration."""

    matrix: CsrMatrix
    iterations: int
    converged: bool
    method: str
    total_products: int
    spgemm_stats: tuple[SpgemmStats, ...]

    @property
    def final_nnz(self) -> int:
        return self.matrix.nnz


def elementwise_oplus(ring: Semiring | str, a: CsrMatrix, b: CsrMatrix) -> CsrMatrix:
    """Sparse ``A ⊕ B``: union of patterns, ⊕ on overlaps.

    Implicit entries are the ⊕ identity, so they never change the other
    operand's values — the sparse analogue of the accumulate path.
    """
    ring = get_semiring(ring)
    if a.shape != b.shape:
        raise SemiringError(f"shape mismatch: {a.shape} vs {b.shape}")
    identity = np.asarray(ring.oplus_identity, dtype=ring.output_dtype)
    rows = a.shape[0]
    indptr = np.zeros(rows + 1, dtype=np.int64)
    indices_parts: list[np.ndarray] = []
    data_parts: list[np.ndarray] = []
    a_data = np.asarray(a.data, dtype=ring.output_dtype)
    b_data = np.asarray(b.data, dtype=ring.output_dtype)
    for i in range(rows):
        a_lo, a_hi = a.indptr[i], a.indptr[i + 1]
        b_lo, b_hi = b.indptr[i], b.indptr[i + 1]
        if a_lo == a_hi and b_lo == b_hi:
            indptr[i + 1] = indptr[i]
            continue
        # A's entries first, then B's — the ⊕-fold order of the original
        # dict-based merge — then a stable column merge (see spgemm).
        cat_cols = np.concatenate((a.indices[a_lo:a_hi], b.indices[b_lo:b_hi]))
        cat_vals = np.concatenate((a_data[a_lo:a_hi], b_data[b_lo:b_hi]))
        cols, vals = _merge_by_column(ring, cat_cols, cat_vals)
        keep = vals != identity
        cols, vals = cols[keep], vals[keep]
        indices_parts.append(cols)
        data_parts.append(vals)
        indptr[i + 1] = indptr[i] + len(cols)
    return CsrMatrix(
        shape=a.shape,
        indptr=indptr,
        indices=np.concatenate(indices_parts) if indices_parts else np.empty(0, np.int64),
        data=(
            np.concatenate(data_parts)
            if data_parts
            else np.empty(0, ring.output_dtype)
        ),
    )


def _equal(a: CsrMatrix, b: CsrMatrix) -> bool:
    return (
        a.shape == b.shape
        and np.array_equal(a.indptr, b.indptr)
        and np.array_equal(a.indices, b.indices)
        and np.array_equal(a.data, b.data)
    )


def sparse_closure(
    ring: Semiring | str,
    adjacency: CsrMatrix,
    *,
    method: str = "leyzorek",
    convergence_check: bool = True,
    max_iterations: int | None = None,
) -> SparseClosureResult:
    """Iterate ``D ← D ⊕ (D ⊗ X)`` over CSR operands under ``ring``.

    Same contract as :func:`repro.runtime.closure.closure` with the dense
    matrix replaced by a :class:`~repro.sparse.csr.CsrMatrix` whose
    implicit value is the ring's ⊕ identity.
    """
    ring = get_semiring(ring)
    if adjacency.shape[0] != adjacency.shape[1]:
        raise SemiringError(f"closure needs a square matrix, got {adjacency.shape}")
    if method not in ("leyzorek", "bellman-ford"):
        raise SemiringError(f"unknown closure method {method!r}")
    n = adjacency.shape[0]
    if max_iterations is not None:
        limit = max_iterations
    else:
        limit = max_iterations_for(method, n) + (1 if convergence_check else 0)
    if limit <= 0:
        raise SemiringError(f"max_iterations must be positive, got {limit}")

    current = adjacency
    base = adjacency
    converged = False
    iterations = 0
    total_products = 0
    all_stats: list[SpgemmStats] = []
    for _ in range(limit):
        operand = current if method == "leyzorek" else base
        product, stats = spgemm(ring, current, operand)
        updated = elementwise_oplus(ring, current, product)
        all_stats.append(stats)
        total_products += stats.products
        iterations += 1
        if convergence_check and _equal(updated, current):
            converged = True
            current = updated
            break
        current = updated

    return SparseClosureResult(
        matrix=current,
        iterations=iterations,
        converged=converged,
        method=method,
        total_products=total_products,
        spgemm_stats=tuple(all_stats),
    )
