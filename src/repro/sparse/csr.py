"""Compressed Sparse Row matrices, from scratch.

The sparse experiments (paper Section 6.5, Figures 13–14) need a CSR
substrate playing cuSparse's role: conversion, storage accounting, and a
semiring spGEMM.  This module implements CSR without scipy so the format
internals (indptr/indices/data) are explicit and the memory model can
reason about exact byte footprints.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["CsrMatrix", "SparseError"]


class SparseError(ValueError):
    """Raised on malformed CSR structures or shape mismatches."""


@dataclasses.dataclass
class CsrMatrix:
    """A CSR matrix: ``indptr`` (n_rows+1), ``indices`` and ``data`` (nnz).

    Column indices within each row are kept sorted and unique; explicit
    zeros are allowed (callers decide what "zero" means — for semiring
    work the implicit value is the ring's ⊕ identity).
    """

    shape: tuple[int, int]
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray

    def __post_init__(self) -> None:
        rows, cols = self.shape
        if rows < 0 or cols < 0:
            raise SparseError(f"bad shape {self.shape}")
        self.indptr = np.asarray(self.indptr, dtype=np.int64)
        self.indices = np.asarray(self.indices, dtype=np.int64)
        self.data = np.asarray(self.data)
        if self.indptr.shape != (rows + 1,):
            raise SparseError(
                f"indptr has shape {self.indptr.shape}, expected {(rows + 1,)}"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise SparseError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise SparseError("indptr must be non-decreasing")
        if len(self.indices) != len(self.data):
            raise SparseError(
                f"indices ({len(self.indices)}) and data ({len(self.data)}) "
                "lengths differ"
            )
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= cols
        ):
            raise SparseError("column index out of range")
        if len(self.indices) > 1:
            row_of = np.repeat(np.arange(rows, dtype=np.int64), np.diff(self.indptr))
            bad = np.flatnonzero(
                (np.diff(self.indices) <= 0) & (row_of[1:] == row_of[:-1])
            )
            if len(bad):
                raise SparseError(
                    f"row {int(row_of[bad[0] + 1])}: "
                    "column indices not strictly increasing"
                )

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(len(self.indices))

    @property
    def density(self) -> float:
        rows, cols = self.shape
        total = rows * cols
        return self.nnz / total if total else 0.0

    @property
    def sparsity(self) -> float:
        """Fraction of implicit entries (the paper's x-axis in Fig 14)."""
        return 1.0 - self.density

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """(column indices, values) of row ``i``."""
        if not (0 <= i < self.shape[0]):
            raise SparseError(f"row {i} out of range for shape {self.shape}")
        start, stop = self.indptr[i], self.indptr[i + 1]
        return self.indices[start:stop], self.data[start:stop]

    # ------------------------------------------------------------------
    @classmethod
    def from_dense(
        cls, dense: np.ndarray, *, implicit: float | bool = 0.0
    ) -> "CsrMatrix":
        """Compress a dense matrix, dropping entries equal to ``implicit``.

        ``implicit`` is the value not stored — 0 for ordinary matrices,
        the ⊕ identity (e.g. ``inf``) for semiring adjacency matrices.
        """
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise SparseError(f"expected a 2-D matrix, got shape {dense.shape}")
        if isinstance(implicit, float) and np.isnan(implicit):
            mask = ~np.isnan(dense)
        else:
            mask = dense != implicit
        indptr = np.zeros(dense.shape[0] + 1, dtype=np.int64)
        np.cumsum(mask.sum(axis=1), out=indptr[1:])
        rows_idx, cols_idx = np.nonzero(mask)
        return cls(
            shape=dense.shape,
            indptr=indptr,
            indices=cols_idx,
            data=dense[rows_idx, cols_idx].copy(),
        )

    def to_dense(
        self, *, implicit: float | bool = 0.0, dtype: np.dtype | None = None
    ) -> np.ndarray:
        """Expand back to dense, filling implicit entries.

        The result uses the stored ``data`` dtype (empty matrices included,
        so empty and non-empty CSRs densify identically) unless ``dtype``
        overrides it.  For semiring matrices prefer :meth:`to_dense_for`,
        which picks the ring's ⊕ identity and output dtype.
        """
        out_dtype = np.dtype(dtype) if dtype is not None else self.data.dtype
        out = np.full(self.shape, implicit, dtype=out_dtype)
        if self.nnz:
            rows = np.repeat(
                np.arange(self.shape[0], dtype=np.int64), np.diff(self.indptr)
            )
            out[rows, self.indices] = self.data
        return out

    def to_dense_for(self, ring) -> np.ndarray:
        """Densify under a semiring: implicit entries become the ⊕ identity.

        ``ring`` is a :class:`~repro.core.semiring.Semiring` or its name.
        This is the correct way to densify semiring matrices — the implicit
        value is ``+inf`` for min-rings, ``-inf`` for max-rings, ``False``
        for or-and — and the result is returned in the ring's output dtype.
        """
        from repro.core.registry import get_semiring

        ring = get_semiring(ring)
        return self.to_dense(
            implicit=ring.oplus_identity, dtype=ring.output_dtype
        )

    # ------------------------------------------------------------------
    def memory_bytes(self, *, index_bytes: int = 4, value_bytes: int = 4) -> int:
        """Exact storage footprint of this CSR structure."""
        return (
            (self.shape[0] + 1) * index_bytes
            + self.nnz * index_bytes
            + self.nnz * value_bytes
        )

    def transpose(self) -> "CsrMatrix":
        """CSR of the transpose (a CSC view materialised as CSR).

        A stable sort by column keeps each column's entries in row order,
        which is exactly the cursor-walk order of the scalar construction.
        """
        rows, cols = self.shape
        indptr = np.zeros(cols + 1, dtype=np.int64)
        np.cumsum(np.bincount(self.indices, minlength=cols), out=indptr[1:])
        row_of = np.repeat(np.arange(rows, dtype=np.int64), np.diff(self.indptr))
        order = np.argsort(self.indices, kind="stable")
        return CsrMatrix(
            shape=(cols, rows),
            indptr=indptr,
            indices=row_of[order],
            data=self.data[order],
        )
