"""Sparse substrate: CSR, semiring spGEMM, 2:4 structured sparsity."""

from repro.sparse.csr import CsrMatrix, SparseError
from repro.sparse.spgemm import SpgemmStats, spgemm, spgemm_reference
from repro.sparse.structured import (
    GROUP,
    KEEP_PER_GROUP,
    Structured24Matrix,
    check_2_4,
    prune_2_4,
)
from repro.sparse.memory import RTX3080_MEMORY_BYTES, MemoryModel
from repro.sparse.closure import SparseClosureResult, elementwise_oplus, sparse_closure
from repro.sparse.bitmatrix import BitMatrix
from repro.sparse.density import EXACT_THRESHOLD, estimate_density

__all__ = [
    "CsrMatrix",
    "SparseError",
    "SpgemmStats",
    "spgemm",
    "spgemm_reference",
    "GROUP",
    "KEEP_PER_GROUP",
    "Structured24Matrix",
    "check_2_4",
    "prune_2_4",
    "RTX3080_MEMORY_BYTES",
    "MemoryModel",
    "SparseClosureResult",
    "elementwise_oplus",
    "sparse_closure",
    "BitMatrix",
    "EXACT_THRESHOLD",
    "estimate_density",
]
