"""2:4 structured sparsity — the sparse Tensor Core format.

The paper's sparse SIMD² study (Figure 13) builds on the RTX 3080's sparse
Tensor Cores, which double throughput for operands where every group of 4
consecutive elements along the inner dimension contains at most 2
non-zeros ("2:4 structured sparsity").  This module implements:

- :func:`prune_2_4` — magnitude-based pruning of a dense operand to the
  2:4 pattern (how such operands are prepared),
- :func:`check_2_4` — pattern validation,
- :class:`Structured24Matrix` — the compressed representation (values +
  2-bit metadata indices, exactly two slots per group), with exact
  round-trip decompression.

The *speedup* of the sparse unit is a property of the datapath (half the
products are skipped), which the timing model applies; functionally a
structured operand computes like its decompressed dense form.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.sparse.csr import SparseError

__all__ = ["GROUP", "KEEP_PER_GROUP", "Structured24Matrix", "prune_2_4", "check_2_4"]

#: Group length along the inner dimension.
GROUP = 4
#: Non-zeros kept per group.
KEEP_PER_GROUP = 2


def _check_inner_dim(cols: int) -> None:
    if cols % GROUP:
        raise SparseError(
            f"2:4 structured sparsity needs the inner dimension to be a "
            f"multiple of {GROUP}, got {cols}"
        )


def prune_2_4(matrix: np.ndarray, *, zero: float = 0.0) -> np.ndarray:
    """Magnitude-prune each group of 4 row elements to its top 2.

    Entries outside the top 2 magnitudes of their group become ``zero``
    (ties keep the earlier element, matching a stable hardware selector).
    """
    matrix = np.asarray(matrix, dtype=np.float32)
    if matrix.ndim != 2:
        raise SparseError(f"expected a 2-D matrix, got shape {matrix.shape}")
    _check_inner_dim(matrix.shape[1])
    rows, cols = matrix.shape
    groups = matrix.reshape(rows, cols // GROUP, GROUP)
    # Stable top-2 by magnitude: sort on (-|value|, position).
    order = np.argsort(-np.abs(groups), axis=2, kind="stable")
    keep = np.zeros_like(groups, dtype=bool)
    np.put_along_axis(keep, order[:, :, :KEEP_PER_GROUP], True, axis=2)
    pruned = np.where(keep, groups, np.float32(zero))
    return pruned.reshape(rows, cols)


def check_2_4(matrix: np.ndarray, *, zero: float = 0.0) -> bool:
    """True when every 4-group has at most 2 entries different from ``zero``."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[1] % GROUP:
        return False
    rows, cols = matrix.shape
    groups = matrix.reshape(rows, cols // GROUP, GROUP)
    return bool(np.all((groups != zero).sum(axis=2) <= KEEP_PER_GROUP))


@dataclasses.dataclass
class Structured24Matrix:
    """Compressed 2:4 operand: 2 values + 2 two-bit indices per group.

    ``values`` has shape ``(rows, cols // 2)`` and ``metadata`` the same —
    ``metadata[r, g*2 + s]`` is the position (0..3) of ``values[r, g*2+s]``
    within group ``g``.  This halves value storage exactly like the sparse
    Tensor Core operand format.
    """

    shape: tuple[int, int]
    values: np.ndarray
    metadata: np.ndarray
    zero: float = 0.0

    @classmethod
    def compress(cls, matrix: np.ndarray, *, zero: float = 0.0) -> "Structured24Matrix":
        """Compress a matrix already obeying the 2:4 pattern."""
        matrix = np.asarray(matrix, dtype=np.float32)
        if not check_2_4(matrix, zero=zero):
            raise SparseError("matrix does not satisfy the 2:4 pattern")
        rows, cols = matrix.shape
        num_groups = cols // GROUP
        values = np.full((rows, num_groups * KEEP_PER_GROUP), np.float32(zero))
        metadata = np.zeros((rows, num_groups * KEEP_PER_GROUP), dtype=np.uint8)
        groups = matrix.reshape(rows, num_groups, GROUP)
        for r in range(rows):
            for g in range(num_groups):
                nonzero_pos = np.flatnonzero(groups[r, g] != zero)[:KEEP_PER_GROUP]
                for slot in range(len(nonzero_pos)):
                    pos = int(nonzero_pos[slot])
                    values[r, g * KEEP_PER_GROUP + slot] = groups[r, g, pos]
                    metadata[r, g * KEEP_PER_GROUP + slot] = pos
                # Unused slots keep metadata distinct so decompression is
                # unambiguous: point them at a position holding `zero`.
                for slot in range(len(nonzero_pos), KEEP_PER_GROUP):
                    spare = [p for p in range(GROUP) if p not in nonzero_pos[:slot]]
                    metadata[r, g * KEEP_PER_GROUP + slot] = spare[slot - len(nonzero_pos)]
        return cls(shape=(rows, cols), values=values, metadata=metadata, zero=zero)

    def decompress(self) -> np.ndarray:
        """Exact dense reconstruction."""
        rows, cols = self.shape
        num_groups = cols // GROUP
        out = np.full((rows, cols), np.float32(self.zero))
        for r in range(rows):
            for g in range(num_groups):
                for slot in range(KEEP_PER_GROUP):
                    pos = int(self.metadata[r, g * KEEP_PER_GROUP + slot])
                    value = self.values[r, g * KEEP_PER_GROUP + slot]
                    if value != self.zero:
                        out[r, g * GROUP + pos] = value
        return out

    def memory_bytes(self, *, value_bytes: int = 2) -> int:
        """Compressed footprint: half the values + 2-bit metadata each."""
        num_values = self.values.size
        metadata_bits = 2 * num_values
        return num_values * value_bytes + (metadata_bits + 7) // 8
