"""Memory-footprint model for dense vs sparse matrix processing.

Figure 14's "OOM" region comes from cuSparse exhausting the RTX 3080's
10 GB when multiplying insufficiently sparse large matrices: CSR inputs
cost index+value per non-zero (more than fp16 dense below ~66 % sparsity)
and spGEMM needs workspace proportional to the intermediate products.
This model computes those footprints in closed form so the crossover bench
can reproduce the OOM cells and the "dense fits a 32768² multiply in
10 GB" observation.
"""

from __future__ import annotations

import dataclasses

__all__ = ["MemoryModel", "RTX3080_MEMORY_BYTES"]

#: Device memory of the paper's testbed GPU (10 GB).
RTX3080_MEMORY_BYTES = 10 * 1024**3


@dataclasses.dataclass(frozen=True)
class MemoryModel:
    """Byte-accounting for an ``n × n`` (times ``n × n``) multiplication."""

    device_bytes: int = RTX3080_MEMORY_BYTES
    dense_value_bytes: int = 2  # fp16 inputs
    dense_output_bytes: int = 4  # fp32 accumulators
    csr_index_bytes: int = 4
    csr_value_bytes: int = 4
    #: cuSparse-style merge workspace, amortised across row chunks.
    workspace_bytes_per_product: float = 2.0

    # ------------------------------------------------------------------
    def dense_gemm_bytes(self, n: int) -> int:
        """A, B dense fp16 + one fp32 output (C accumulates in place)."""
        return 2 * n * n * self.dense_value_bytes + n * n * self.dense_output_bytes

    def csr_bytes(self, n: int, density: float) -> int:
        """One CSR operand at the given density."""
        nnz = round(n * n * density)
        return (n + 1) * self.csr_index_bytes + nnz * (
            self.csr_index_bytes + self.csr_value_bytes
        )

    def expected_products(self, n: int, density: float) -> float:
        """Expected scalar products of an spGEMM with uniform random operands.

        Row i of A holds ``n·d`` non-zeros on average, each selecting a row
        of B with ``n·d`` non-zeros: ``n · (n·d) · (n·d) = n³·d²``.
        """
        return n**3 * density**2

    def spgemm_bytes(self, n: int, density: float) -> int:
        """Two CSR inputs + output CSR + merge workspace."""
        output_nnz_bound = min(n * n, round(self.expected_products(n, density)))
        output_bytes = (n + 1) * self.csr_index_bytes + output_nnz_bound * (
            self.csr_index_bytes + self.csr_value_bytes
        )
        workspace = round(
            self.expected_products(n, density) * self.workspace_bytes_per_product
        )
        return 2 * self.csr_bytes(n, density) + output_bytes + workspace

    # ------------------------------------------------------------------
    def dense_fits(self, n: int) -> bool:
        return self.dense_gemm_bytes(n) <= self.device_bytes

    def spgemm_fits(self, n: int, density: float) -> bool:
        return self.spgemm_bytes(n, density) <= self.device_bytes

    def csr_smaller_than_dense(self, n: int, density: float) -> bool:
        """True when one CSR operand is smaller than its fp16 dense form."""
        return self.csr_bytes(n, density) < n * n * self.dense_value_bytes
