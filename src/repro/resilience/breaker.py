"""Per-backend circuit breakers: stop dispatching to a sick substrate.

A :class:`~repro.resilience.policy.FallbackChain` walks every backend no
matter how persistently one fails; at serving rates that means every
request pays the sick backend's failure latency before degrading.  The
classic fix is a **circuit breaker** per backend — a
closed → open → half-open state machine:

- **closed** — healthy; launches flow.  Failures accumulate; at
  ``failure_threshold`` the breaker *opens*.
- **open** — launches are skipped outright (the fallback walk and the
  planner treat the backend as incapable) until ``cooldown_s`` has
  elapsed on the board's :class:`~repro.resilience.clock.Clock`.
- **half-open** — after the cooldown, exactly one *probe* launch is
  admitted.  Probe success closes the breaker (the backend is
  restored); probe failure re-opens it for another cooldown.  A probe
  whose outcome is never reported times out after another cooldown, so
  a crashed prober cannot wedge the state machine.

The :class:`BreakerBoard` keys one breaker per backend name and is fed
through the hook pipeline: :class:`BreakerHook` (assembled whenever
``context.breakers`` is set) counts ``backend_failure`` /
``device_failure`` :class:`~repro.runtime.trace.ResilienceEvent`\\ s
against the named backend and reports half-open probe completions from
the ``post_execute`` seam.  Failure counts are *since the breaker last
closed*: a verified success (:func:`~repro.resilience.policy
.resilient_mmo` records one after its ABFT check passes) or a completed
probe resets them, while an unverified launch merely not-raising does
not — a backend that returns corrupt results still accumulates the
verification failures that open it.

Consumers: :func:`~repro.resilience.policy.resilient_mmo` calls
:meth:`BreakerBoard.try_acquire` before each backend in its fallback
walk (skipping open ones with a ``breaker_open`` event and a
:class:`BreakerOpen` cause); the ``"auto"`` planning backend filters
blocked backends out of its :class:`~repro.plan.planner.DispatchPlan`
and stamps the skips on the plan (surfaced as
``PlanRecord.breaker_skipped`` through ``on_plan``).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.hooks.pipeline import Hook
from repro.hooks.registry import register_hook
from repro.resilience.clock import Clock, default_clock
from repro.resilience.faults import ResilienceError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hooks.pipeline import Launch
    from repro.runtime.context import ExecutionContext
    from repro.runtime.trace import ResilienceEvent

__all__ = [
    "BreakerBoard",
    "BreakerOpen",
    "BreakerHook",
    "CircuitBreaker",
    "BREAKER_HOOK",
]

#: Event kinds the board counts as failures of the event's backend.
_FAILURE_KINDS = frozenset({"backend_failure", "device_failure"})


class BreakerOpen(ResilienceError):
    """A launch was skipped because the backend's breaker is open."""

    def __init__(self, backend: str, *, state: str = "open"):
        super().__init__(
            f"backend {backend!r} skipped: circuit breaker is {state}"
        )
        self.backend = backend
        self.state = state


class CircuitBreaker:
    """One backend's closed → open → half-open state machine.

    Not internally locked — the :class:`BreakerBoard` serialises access;
    a standalone instance (tests) must be driven from one thread.  Time
    arrives as explicit ``now`` readings so the machine itself stays
    clock-agnostic and trivially property-testable.
    """

    __slots__ = (
        "failure_threshold",
        "cooldown_s",
        "state",
        "failures",
        "opened_at",
        "probe_started_at",
        "opens",
        "probes",
    )

    def __init__(self, *, failure_threshold: int = 3, cooldown_s: float = 1.0):
        if failure_threshold <= 0:
            raise ResilienceError(
                f"failure_threshold must be positive, got {failure_threshold}"
            )
        if cooldown_s < 0.0:
            raise ResilienceError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.state = "closed"
        self.failures = 0
        self.opened_at: float | None = None
        self.probe_started_at: float | None = None
        self.opens = 0
        self.probes = 0

    def _trip(self, now: float) -> None:
        self.state = "open"
        self.opened_at = now
        self.probe_started_at = None
        self.opens += 1

    def allow(self, now: float, *, claim: bool = True) -> bool:
        """Whether a launch may proceed right now.

        With ``claim`` (the default) a permitted launch on a non-closed
        breaker claims the half-open probe slot; ``claim=False`` is the
        passive form planners use to *filter* without spending the
        probe they may not dispatch.
        """
        if self.state == "closed":
            return True
        if self.state == "open":
            assert self.opened_at is not None
            if now - self.opened_at < self.cooldown_s:
                return False
            if claim:
                self.state = "half-open"
                self.probe_started_at = now
                self.probes += 1
            return True
        # half-open: one probe in flight; re-admit only when it timed out.
        assert self.probe_started_at is not None
        if now - self.probe_started_at < self.cooldown_s:
            return False
        if claim:
            self.probe_started_at = now
            self.probes += 1
        return True

    def record_success(self, *, probe_only: bool = False) -> None:
        """A verified success (or, with ``probe_only``, a completed probe).

        ``probe_only=True`` is the hook-seam form: an exception-free
        launch proves enough to close a half-open probe, but it is not
        the verified evidence that resets a *closed* breaker's count —
        a backend returning corrupt results completes launches too.
        """
        if self.state == "half-open":
            self.state = "closed"
            self.failures = 0
            self.opened_at = None
            self.probe_started_at = None
            return
        if self.state == "closed" and not probe_only:
            self.failures = 0
        # open: an in-flight straggler from before the trip proves nothing.

    def record_failure(self, now: float) -> None:
        if self.state == "half-open":
            self._trip(now)  # probe failed: re-open for another cooldown
            return
        if self.state == "closed":
            self.failures += 1
            if self.failures >= self.failure_threshold:
                self._trip(now)
        # open: already tripped; keep the original cooldown origin.


class BreakerBoard:
    """Thread-safe registry of one :class:`CircuitBreaker` per backend.

    ``clock=None`` reads the shared monotonic clock; chaos runs and
    tests pass a :class:`~repro.resilience.clock.VirtualClock` so
    cooldowns elapse deterministically.  Breakers are created lazily on
    first touch, all with the board's threshold/cooldown.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        cooldown_s: float = 1.0,
        clock: Clock | None = None,
    ):
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}

    def _now(self) -> float:
        clock = self._clock if self._clock is not None else default_clock()
        return clock.now()

    def _ensure(
        self, breakers: dict[str, CircuitBreaker], backend: str
    ) -> CircuitBreaker:
        """Lazily create ``backend``'s breaker (call holding the lock)."""
        breaker = breakers.get(backend)
        if breaker is None:
            breaker = CircuitBreaker(
                failure_threshold=self.failure_threshold,
                cooldown_s=self.cooldown_s,
            )
            breakers[backend] = breaker
        return breaker

    def try_acquire(self, backend: str) -> bool:
        """Admit a launch to ``backend`` (claiming the probe if half-open)."""
        now = self._now()
        with self._lock:
            return self._ensure(self._breakers, backend).allow(now, claim=True)

    def blocked(self, backend: str) -> bool:
        """Passive filter: would a launch be refused right now?

        Never claims the probe slot — planners filter many candidates
        but dispatch one, and a claimed-but-undispatched probe would
        block the real probe for a whole cooldown.
        """
        now = self._now()
        with self._lock:
            return not self._ensure(self._breakers, backend).allow(
                now, claim=False
            )

    def record_success(self, backend: str, *, probe_only: bool = False) -> None:
        with self._lock:
            self._ensure(self._breakers, backend).record_success(
                probe_only=probe_only
            )

    def record_failure(self, backend: str) -> None:
        now = self._now()
        with self._lock:
            self._ensure(self._breakers, backend).record_failure(now)

    def state_of(self, backend: str) -> str:
        with self._lock:
            breaker = self._breakers.get(backend)
            return "closed" if breaker is None else breaker.state

    def open_backends(self) -> tuple[str, ...]:
        """Backends currently not closed (open or probing), sorted."""
        with self._lock:
            return tuple(
                sorted(
                    name
                    for name, breaker in self._breakers.items()
                    if breaker.state != "closed"
                )
            )

    def snapshot(self) -> dict[str, dict]:
        """Per-backend state for artifacts and diagnostics."""
        with self._lock:
            return {
                name: {
                    "state": breaker.state,
                    "failures": breaker.failures,
                    "opens": breaker.opens,
                    "probes": breaker.probes,
                }
                for name, breaker in sorted(self._breakers.items())
            }


@register_hook(name="breaker")
class BreakerHook(Hook):
    """Feed the context's :class:`BreakerBoard` from the launch pipeline.

    Assembled automatically by :func:`~repro.hooks.pipeline
    .build_pipeline` whenever ``context.breakers`` is set.  ``on_event``
    counts ``backend_failure``/``device_failure`` events against the
    event's backend; ``post_execute`` reports a completed launch as
    *probe feedback only* — it closes a half-open breaker (the planner's
    recovery path) but does not reset a closed breaker's failure count,
    which only verified successes do (see the module docstring).
    """

    def post_execute(self, launch: "Launch") -> None:
        board = launch.context.breakers
        if board is None or launch.degenerate:
            return
        board.record_success(launch.context.backend, probe_only=True)

    def on_event(
        self, context: "ExecutionContext", event: "ResilienceEvent"
    ) -> None:
        board = context.breakers
        if board is None or event.kind not in _FAILURE_KINDS:
            return
        board.record_failure(event.backend)


#: Shared stateless instance used by the default pipeline assembly.
BREAKER_HOOK = BreakerHook()
