"""Resilient execution layer for SIMD² mmos.

Four cooperating pieces, all opt-in and all observable through the trace:

- :mod:`repro.resilience.faults` — deterministic fault injection at the
  execute seam (:class:`FaultPlan` on the execution context);
- :mod:`repro.resilience.checksum` — semiring-generalized ABFT: ⊕-fold
  row/column checksums verified on every checked launch;
- :mod:`repro.resilience.policy` — recovery: :class:`RetryPolicy`,
  :class:`FallbackChain`, and :func:`resilient_mmo`;
- :mod:`repro.resilience.watchdog` — closure-iteration health checks
  (NaN poisoning, non-monotone progress, oscillation);
- :mod:`repro.resilience.closure` — :func:`resilient_closure`, the whole
  stack composed over the multi-device fixpoint loop.

See ``docs/RESILIENCE.md`` for the design and the exactness argument.
"""

from repro.resilience.checksum import (
    CheckedLaunch,
    ChecksumReport,
    ChecksumUnsupported,
    CorruptionDetected,
    MmoChecksums,
    checked_mmo,
    mmo_checksums,
)
from repro.resilience.closure import ResilientClosureResult, resilient_closure
from repro.resilience.faults import (
    DeviceFailure,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    ResilienceError,
)
from repro.resilience.policy import (
    FallbackChain,
    ResilienceExhausted,
    RetryPolicy,
    resilient_mmo,
)
from repro.resilience.watchdog import ClosureDiagnostics, ClosureWatchdog

__all__ = [
    "CheckedLaunch",
    "ChecksumReport",
    "ChecksumUnsupported",
    "ClosureDiagnostics",
    "ClosureWatchdog",
    "CorruptionDetected",
    "DeviceFailure",
    "FallbackChain",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "MmoChecksums",
    "ResilienceError",
    "ResilienceExhausted",
    "ResilientClosureResult",
    "RetryPolicy",
    "checked_mmo",
    "mmo_checksums",
    "resilient_closure",
    "resilient_mmo",
]
