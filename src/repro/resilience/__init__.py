"""Resilient execution layer for SIMD² mmos.

Cooperating pieces, all opt-in and all observable through the trace:

- :mod:`repro.resilience.faults` — deterministic fault injection at the
  execute seam (:class:`FaultPlan` on the execution context);
- :mod:`repro.resilience.checksum` — semiring-generalized ABFT: ⊕-fold
  row/column checksums verified on every checked launch;
- :mod:`repro.resilience.policy` — recovery: :class:`RetryPolicy` (with
  seeded exponential backoff and the permanent/transient taxonomy),
  :class:`FallbackChain`, and :func:`resilient_mmo`;
- :mod:`repro.resilience.watchdog` — closure-iteration health checks
  (NaN poisoning, non-monotone progress, oscillation);
- :mod:`repro.resilience.closure` — :func:`resilient_closure`, the whole
  stack composed over the multi-device fixpoint loop;
- :mod:`repro.resilience.clock` — the injectable :class:`Clock` behind
  every time read and sleep (:class:`VirtualClock` for deterministic
  replay);
- :mod:`repro.resilience.budget` — :class:`ExecutionBudget` deadlines
  and launch/retry quotas, charged at the hook seam and the scheduler;
- :mod:`repro.resilience.cancel` — :class:`CancellationToken`
  cooperative cancellation between scheduler nodes;
- :mod:`repro.resilience.breaker` — :class:`BreakerBoard` per-backend
  circuit breakers fed through the hook pipeline.

See ``docs/RESILIENCE.md`` for the design and the exactness argument.
"""

from repro.resilience.breaker import (
    BreakerBoard,
    BreakerOpen,
    CircuitBreaker,
)
from repro.resilience.budget import (
    BudgetError,
    BudgetExhausted,
    DeadlineExceeded,
    ExecutionBudget,
)
from repro.resilience.cancel import CancellationToken, OperationCancelled
from repro.resilience.checksum import (
    CheckedLaunch,
    ChecksumReport,
    ChecksumUnsupported,
    CorruptionDetected,
    MmoChecksums,
    checked_mmo,
    mmo_checksums,
)
from repro.resilience.clock import (
    Clock,
    MonotonicClock,
    VirtualClock,
    default_clock,
    resolve_clock,
)
from repro.resilience.closure import ResilientClosureResult, resilient_closure
from repro.resilience.faults import (
    DeviceFailure,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    ResilienceError,
)
from repro.resilience.policy import (
    PERMANENT,
    TRANSIENT,
    FallbackChain,
    ResilienceExhausted,
    RetryPolicy,
    classify,
    resilient_mmo,
)
from repro.resilience.watchdog import ClosureDiagnostics, ClosureWatchdog

__all__ = [
    "BreakerBoard",
    "BreakerOpen",
    "BudgetError",
    "BudgetExhausted",
    "CancellationToken",
    "CheckedLaunch",
    "ChecksumReport",
    "ChecksumUnsupported",
    "CircuitBreaker",
    "Clock",
    "ClosureDiagnostics",
    "ClosureWatchdog",
    "CorruptionDetected",
    "DeadlineExceeded",
    "DeviceFailure",
    "ExecutionBudget",
    "FallbackChain",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "MonotonicClock",
    "OperationCancelled",
    "PERMANENT",
    "ResilienceError",
    "ResilienceExhausted",
    "ResilientClosureResult",
    "RetryPolicy",
    "TRANSIENT",
    "VirtualClock",
    "checked_mmo",
    "classify",
    "default_clock",
    "mmo_checksums",
    "resilient_closure",
    "resilient_mmo",
    "resolve_clock",
]
