"""Recovery policies: bounded retries and backend fallback chains.

The resilience layer separates *detection* (fault plan events, ABFT
checksums, hardware errors) from *response*.  This module owns the
response side for single launches:

- :class:`RetryPolicy` — how many times to relaunch after a retryable
  failure (an injected drop, a detected corruption).  Retries are loud:
  every attempt lands as a ``retry`` :class:`~repro.runtime.trace
  .ResilienceEvent` on the context's trace.
- :class:`FallbackChain` — which backends to degrade through when a
  backend keeps failing (e.g. ``vectorized → emulate``: if the fast path
  is corrupt or the emulated device faults, fall back to the other
  substrate and keep serving).  Each hop records a ``fallback`` event.
- :func:`resilient_mmo` — the two composed: checked (optional) launches
  under the context's backend, retried per policy, falling back down the
  chain, raising :class:`ResilienceExhausted` only when every avenue is
  spent.

Multi-device recovery (band repartitioning) lives with the partitioner in
:mod:`repro.runtime.multidevice`; it consumes the same :class:`RetryPolicy`.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

import numpy as np

from repro.hooks.pipeline import emit_event
from repro.hw.errors import HardwareError
from repro.resilience.checksum import CheckedLaunch, CorruptionDetected, mmo_checksums
from repro.resilience.faults import DeviceFailure, InjectedFault, ResilienceError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.semiring import Semiring
    from repro.isa.opcodes import MmoOpcode
    from repro.runtime.context import ExecutionContext
    from repro.runtime.kernels import KernelStats

__all__ = [
    "FallbackChain",
    "ResilienceExhausted",
    "RetryPolicy",
    "resilient_mmo",
]

#: Failures a retry on the same backend can plausibly outrun: transient
#: injected faults and detected output corruption.
RETRYABLE = (CorruptionDetected, InjectedFault)

#: Failures that justify degrading to the next backend in the chain:
#: everything retryable plus hard device faults.
FALLBACK_ON = RETRYABLE + (HardwareError, DeviceFailure)


class ResilienceExhausted(ResilienceError):
    """Every retry and every fallback backend failed.

    ``causes`` holds the terminal exception per attempted backend, in
    chain order, so callers can see the whole degradation path.
    """

    def __init__(self, causes: list[tuple[str, BaseException]]):
        chain = "; ".join(f"{name}: {exc}" for name, exc in causes)
        super().__init__(f"all recovery avenues exhausted ({chain})")
        self.causes = tuple(causes)


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Bounded relaunch of a failed launch on the same backend.

    ``max_retries`` counts *extra* attempts: ``max_retries=2`` allows up
    to three launches.  ``retry_on`` is the tuple of exception types worth
    retrying — defaults to transient faults and detected corruption
    (validation errors propagate immediately: retrying a shape mismatch
    cannot help).
    """

    max_retries: int = 2
    retry_on: tuple[type[BaseException], ...] = RETRYABLE

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ResilienceError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1

    def should_retry(self, exc: BaseException, attempt: int) -> bool:
        """Whether ``attempt`` (0-based) may be followed by another."""
        return attempt + 1 < self.max_attempts and isinstance(
            exc, self.retry_on
        )


@dataclasses.dataclass(frozen=True)
class FallbackChain:
    """Ordered backends to degrade through when one keeps failing.

    The chain is consulted *after* the context's own backend; backends
    already tried are skipped, so ``FallbackChain(("vectorized",
    "emulate"))`` under a vectorized context degrades straight to the
    emulator.

    ``backends=None`` (the default) consumes the planner's ranked order
    for the launch (:func:`repro.plan.planner.planner_order`): fallback
    degrades cheapest-capable-first, density-aware when the launch
    operands are known, instead of walking a hard-coded pair — so a
    sparse launch falls back through ``sparse`` before the emulator, and
    rings the sparse backend cannot run never route through it at all.
    """

    backends: tuple[str, ...] | None = None
    fallback_on: tuple[type[BaseException], ...] = FALLBACK_ON

    def plan(
        self,
        first: str,
        *,
        ring: "Semiring | str | MmoOpcode | None" = None,
        a: np.ndarray | None = None,
        b: np.ndarray | None = None,
        c: np.ndarray | None = None,
    ) -> tuple[str, ...]:
        """The full backend order for a launch starting at ``first``.

        With an explicit ``backends`` tuple the keywords are ignored;
        otherwise they parameterise the planner's ranking (ring-only
        calls get a capability-filtered static order, full operands a
        density-aware one).
        """
        if self.backends is not None:
            chain: tuple[str, ...] = self.backends
        else:
            from repro.plan.planner import planner_order  # lazy: peer layer

            chain = planner_order(ring, a, b, c)
        order = [first]
        for name in chain:
            if name not in order:
                order.append(name)
        return tuple(order)

    def should_fall_back(self, exc: BaseException) -> bool:
        return isinstance(exc, self.fallback_on)


def resilient_mmo(
    ring: "Semiring | str | MmoOpcode",
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    *,
    context: "ExecutionContext | None" = None,
    retry: RetryPolicy | None = None,
    fallback: FallbackChain | None = None,
    checked: bool = True,
    rtol: float = 1e-4,
    atol: float = 1e-6,
    api: str = "resilient_mmo",
    validate_inputs: bool = True,
) -> "tuple[np.ndarray, KernelStats]":
    """``mmo_tiled`` with ABFT verification, retries, and backend fallback.

    Attempts the launch on the context's backend up to ``retry.max_attempts``
    times, verifying the ABFT invariant after each launch when ``checked``
    (checksums are computed once, before the first launch).  When a backend
    exhausts its retries on a fallback-worthy failure, the next backend in
    ``fallback`` takes over.  Raises :class:`ResilienceExhausted` when the
    whole chain fails; non-recoverable errors (shape validation, unknown
    rings) propagate immediately.
    """
    from repro.compile.lower import resolve_opcode
    from repro.runtime.context import resolve_context
    from repro.runtime.kernels import mmo_tiled

    opcode = resolve_opcode(ring)
    ctx = resolve_context(context)
    retry = retry if retry is not None else RetryPolicy()
    fallback = fallback if fallback is not None else FallbackChain()
    checker = CheckedLaunch(rtol=rtol, atol=atol) if checked else None
    sums = (
        mmo_checksums(opcode.semiring, a, b, c, rtol=rtol, atol=atol)
        if checker is not None
        else None
    )

    causes: list[tuple[str, BaseException]] = []
    for backend_name in fallback.plan(ctx.backend, ring=opcode, a=a, b=b, c=c):
        attempt_ctx = ctx.replace(backend=backend_name)
        if backend_name != ctx.backend:
            emit_event(
                ctx, kind="fallback", api=api, backend=backend_name,
                detail=f"degrading {causes[-1][0]} -> {backend_name}: "
                       f"{causes[-1][1]}",
            )
        last: BaseException | None = None
        for attempt in range(retry.max_attempts):
            try:
                result, stats = mmo_tiled(
                    opcode, a, b, c, context=attempt_ctx, api=api,
                    validate_inputs=validate_inputs,
                )
                if checker is not None and sums is not None:
                    checker.verify(sums, result, context=attempt_ctx, api=api)
                return result, stats
            except Exception as exc:  # noqa: BLE001 - classified below
                last = exc
                if retry.should_retry(exc, attempt):
                    emit_event(
                        ctx, kind="retry", api=api, backend=backend_name,
                        detail=f"attempt {attempt + 1} failed: {exc}",
                        attempt=attempt + 1,
                    )
                    continue
                if fallback.should_fall_back(exc):
                    break  # next backend in the chain
                raise  # non-recoverable: propagate as-is
        assert last is not None
        causes.append((backend_name, last))
    raise ResilienceExhausted(causes)
