"""Recovery policies: bounded retries and backend fallback chains.

The resilience layer separates *detection* (fault plan events, ABFT
checksums, hardware errors) from *response*.  This module owns the
response side for single launches:

- :class:`RetryPolicy` — how many times to relaunch after a retryable
  failure (an injected drop, a detected corruption), and how long to
  back off between attempts (exponential with seeded deterministic
  jitter, slept on the context's injectable clock and charged against
  its deadline).  Retries are loud: every attempt lands as a ``retry``
  :class:`~repro.runtime.trace.ResilienceEvent` on the context's trace.
- :class:`FallbackChain` — which backends to degrade through when a
  backend keeps failing (e.g. ``vectorized → emulate``: if the fast path
  is corrupt or the emulated device faults, fall back to the other
  substrate and keep serving).  Each hop records a ``fallback`` event.
- :func:`resilient_mmo` — the two composed: checked (optional) launches
  under the context's backend, retried per policy, falling back down the
  chain, raising :class:`ResilienceExhausted` only when every avenue is
  spent.  When the context carries a
  :class:`~repro.resilience.breaker.BreakerBoard`, open backends are
  skipped outright (``breaker_open`` event, :class:`~repro.resilience
  .breaker.BreakerOpen` cause) and every failure/verified-success feeds
  the board.

The failure **taxonomy** is explicit: :data:`PERMANENT` errors
(malformed operands, compilation bugs) are deterministic — relaunching
reruns the same rejection, so :meth:`RetryPolicy.should_retry` and
:meth:`FallbackChain.should_fall_back` refuse them no matter what
``retry_on``/``fallback_on`` tuples say.  :data:`TRANSIENT` errors
(injected faults, detected corruption, device failures) are the ones
recovery can outrun.  :func:`classify` names the bucket.

Multi-device recovery (band repartitioning) lives with the partitioner in
:mod:`repro.runtime.multidevice`; it consumes the same :class:`RetryPolicy`.
"""

from __future__ import annotations

import dataclasses
import random
from typing import TYPE_CHECKING

import numpy as np

from repro.compile.artifact import CompileError
from repro.hooks.pipeline import emit_event
from repro.hw.errors import HardwareError
from repro.resilience.checksum import CheckedLaunch, CorruptionDetected, mmo_checksums
from repro.resilience.faults import DeviceFailure, InjectedFault, ResilienceError
from repro.runtime.kernels import OperandValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.semiring import Semiring
    from repro.isa.opcodes import MmoOpcode
    from repro.runtime.context import ExecutionContext
    from repro.runtime.kernels import KernelStats

__all__ = [
    "FallbackChain",
    "PERMANENT",
    "ResilienceExhausted",
    "RetryPolicy",
    "TRANSIENT",
    "classify",
    "resilient_mmo",
]

#: Failures a retry on the same backend can plausibly outrun: transient
#: injected faults and detected output corruption.
RETRYABLE = (CorruptionDetected, InjectedFault)

#: Failures that justify degrading to the next backend in the chain:
#: everything retryable plus hard device faults.
FALLBACK_ON = RETRYABLE + (HardwareError, DeviceFailure)

#: Deterministic failures no relaunch can outrun: value-poisoned or
#: malformed operands and compilation bugs rerun identically, so retry
#: and fallback refuse them even when a custom ``retry_on``/``fallback_on``
#: tuple would match (e.g. a blanket ``(Exception,)``).
PERMANENT = (OperandValidationError, CompileError)

#: Failures recovery can plausibly outrun: the retryable set plus hard
#: device faults (a relaunch lands on a healthy substrate or a fallback
#: backend).
TRANSIENT = FALLBACK_ON


def classify(exc: BaseException) -> str:
    """``"permanent"``, ``"transient"``, or ``"unknown"`` for a failure.

    Permanence wins when both match (a hypothetical subclass): retrying
    a deterministic rejection cannot help, whatever else it subclasses.
    """
    if isinstance(exc, PERMANENT):
        return "permanent"
    if isinstance(exc, TRANSIENT):
        return "transient"
    return "unknown"


class ResilienceExhausted(ResilienceError):
    """Every retry and every fallback backend failed.

    ``causes`` holds the terminal exception per attempted backend, in
    chain order, so callers can see the whole degradation path.
    """

    def __init__(self, causes: list[tuple[str, BaseException]]):
        chain = "; ".join(f"{name}: {exc}" for name, exc in causes)
        super().__init__(f"all recovery avenues exhausted ({chain})")
        self.causes = tuple(causes)


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Bounded relaunch of a failed launch on the same backend.

    ``max_retries`` counts *extra* attempts: ``max_retries=2`` allows up
    to three launches.  ``retry_on`` is the tuple of exception types worth
    retrying — defaults to transient faults and detected corruption
    (:data:`PERMANENT` errors are refused regardless: retrying a shape
    mismatch or a compiler bug reruns the same rejection).

    Backoff is exponential and off by default (``backoff_base_s=0.0``
    sleeps nothing, preserving the historical retry-immediately
    behaviour): the delay before the retry following 0-based attempt
    ``n`` is ``min(backoff_base_s * backoff_factor**n, backoff_max_s)``,
    widened by a symmetric jitter fraction drawn from a PRNG seeded from
    ``seed`` and ``n`` — the schedule is a pure function of the policy, so
    chaos runs replay byte-identically.  Sleeps flow through the
    context's :class:`~repro.resilience.clock.Clock` and are charged
    against its deadline (see :meth:`~repro.resilience.budget
    .ExecutionBudget.charge_sleep`).
    """

    max_retries: int = 2
    retry_on: tuple[type[BaseException], ...] = RETRYABLE
    backoff_base_s: float = 0.0
    backoff_factor: float = 2.0
    backoff_max_s: float = 60.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ResilienceError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base_s < 0.0:
            raise ResilienceError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )
        if self.backoff_factor < 1.0:
            raise ResilienceError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_max_s < 0.0:
            raise ResilienceError(
                f"backoff_max_s must be >= 0, got {self.backoff_max_s}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ResilienceError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1

    def should_retry(self, exc: BaseException, attempt: int) -> bool:
        """Whether ``attempt`` (0-based) may be followed by another."""
        if isinstance(exc, PERMANENT):
            return False
        return attempt + 1 < self.max_attempts and isinstance(
            exc, self.retry_on
        )

    def backoff_s(self, attempt: int) -> float:
        """Deterministic delay before the retry after 0-based ``attempt``."""
        if self.backoff_base_s <= 0.0:
            return 0.0
        delay = self.backoff_base_s * (self.backoff_factor ** attempt)
        delay = min(delay, self.backoff_max_s)
        if self.jitter > 0.0:
            rng = random.Random(self.seed * 0x9E3779B1 + attempt)
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, delay)


@dataclasses.dataclass(frozen=True)
class FallbackChain:
    """Ordered backends to degrade through when one keeps failing.

    The chain is consulted *after* the context's own backend; backends
    already tried are skipped, so ``FallbackChain(("vectorized",
    "emulate"))`` under a vectorized context degrades straight to the
    emulator.

    ``backends=None`` (the default) consumes the planner's ranked order
    for the launch (:func:`repro.plan.planner.planner_order`): fallback
    degrades cheapest-capable-first, density-aware when the launch
    operands are known, instead of walking a hard-coded pair — so a
    sparse launch falls back through ``sparse`` before the emulator, and
    rings the sparse backend cannot run never route through it at all.
    """

    backends: tuple[str, ...] | None = None
    fallback_on: tuple[type[BaseException], ...] = FALLBACK_ON

    def plan(
        self,
        first: str,
        *,
        ring: "Semiring | str | MmoOpcode | None" = None,
        a: np.ndarray | None = None,
        b: np.ndarray | None = None,
        c: np.ndarray | None = None,
    ) -> tuple[str, ...]:
        """The full backend order for a launch starting at ``first``.

        With an explicit ``backends`` tuple the keywords are ignored;
        otherwise they parameterise the planner's ranking (ring-only
        calls get a capability-filtered static order, full operands a
        density-aware one).
        """
        if self.backends is not None:
            chain: tuple[str, ...] = self.backends
        else:
            from repro.plan.planner import planner_order  # lazy: peer layer

            chain = planner_order(ring, a, b, c)
        order = [first]
        for name in chain:
            if name not in order:
                order.append(name)
        return tuple(order)

    def should_fall_back(self, exc: BaseException) -> bool:
        if isinstance(exc, PERMANENT):
            return False  # deterministic rejection: every backend agrees
        return isinstance(exc, self.fallback_on)


def resilient_mmo(
    ring: "Semiring | str | MmoOpcode",
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    *,
    context: "ExecutionContext | None" = None,
    retry: RetryPolicy | None = None,
    fallback: FallbackChain | None = None,
    checked: bool = True,
    rtol: float = 1e-4,
    atol: float = 1e-6,
    api: str = "resilient_mmo",
    validate_inputs: bool = True,
) -> "tuple[np.ndarray, KernelStats]":
    """``mmo_tiled`` with ABFT verification, retries, and backend fallback.

    Attempts the launch on the context's backend up to ``retry.max_attempts``
    times, verifying the ABFT invariant after each launch when ``checked``
    (checksums are computed once, before the first launch).  When a backend
    exhausts its retries on a fallback-worthy failure, the next backend in
    ``fallback`` takes over.  Raises :class:`ResilienceExhausted` when the
    whole chain fails; non-recoverable errors (shape validation, unknown
    rings) propagate immediately.

    SLO integration, all opt-in through context fields:

    - ``ctx.breakers`` — backends whose breaker is open are skipped with
      a ``breaker_open`` event (the :class:`~repro.resilience.breaker
      .BreakerOpen` lands in the exhaustion causes); transient failures
      emit ``backend_failure`` events that feed the board through the
      hook pipeline, and a *verified* success records the full health
      reset (an unverified one only closes a half-open probe).
    - ``ctx.budget`` — each retry spends a retry slot
      (:class:`~repro.resilience.budget.BudgetExhausted` propagates
      typed) and backoff sleeps are charged against the deadline.
    - ``ctx.clock`` — backoff sleeps flow through the injectable clock,
      so a virtual clock replays the whole schedule deterministically.
    """
    from repro.compile.lower import resolve_opcode
    from repro.resilience.breaker import BreakerOpen
    from repro.resilience.clock import resolve_clock
    from repro.runtime.context import resolve_context
    from repro.runtime.kernels import mmo_tiled

    opcode = resolve_opcode(ring)
    ctx = resolve_context(context)
    retry = retry if retry is not None else RetryPolicy()
    fallback = fallback if fallback is not None else FallbackChain()
    checker = CheckedLaunch(rtol=rtol, atol=atol) if checked else None
    sums = (
        mmo_checksums(opcode.semiring, a, b, c, rtol=rtol, atol=atol)
        if checker is not None
        else None
    )
    board = ctx.breakers
    budget = ctx.budget
    clock = resolve_clock(ctx)

    causes: list[tuple[str, BaseException]] = []
    for backend_name in fallback.plan(ctx.backend, ring=opcode, a=a, b=b, c=c):
        if board is not None and not board.try_acquire(backend_name):
            skip = BreakerOpen(backend_name, state=board.state_of(backend_name))
            emit_event(
                ctx, kind="breaker_open", api=api, backend=backend_name,
                detail=str(skip),
            )
            causes.append((backend_name, skip))
            continue
        attempt_ctx = ctx.replace(backend=backend_name)
        if backend_name != ctx.backend:
            emit_event(
                ctx, kind="fallback", api=api, backend=backend_name,
                detail=f"degrading {causes[-1][0]} -> {backend_name}: "
                       f"{causes[-1][1]}",
            )
        last: BaseException | None = None
        for attempt in range(retry.max_attempts):
            try:
                result, stats = mmo_tiled(
                    opcode, a, b, c, context=attempt_ctx, api=api,
                    validate_inputs=validate_inputs,
                )
                if checker is not None and sums is not None:
                    checker.verify(sums, result, context=attempt_ctx, api=api)
                    if board is not None:
                        # Verified evidence: reset the backend's failure
                        # count (the hook's probe_only success cannot).
                        board.record_success(backend_name)
                return result, stats
            except Exception as exc:  # noqa: BLE001 - classified below
                last = exc
                if board is not None and classify(exc) == "transient":
                    emit_event(
                        ctx, kind="backend_failure", api=api,
                        backend=backend_name,
                        detail=f"{type(exc).__name__}: {exc}",
                    )
                if retry.should_retry(exc, attempt):
                    if budget is not None:
                        budget.charge_retry(clock)
                    emit_event(
                        ctx, kind="retry", api=api, backend=backend_name,
                        detail=f"attempt {attempt + 1} failed: {exc}",
                        attempt=attempt + 1,
                    )
                    delay = retry.backoff_s(attempt)
                    if budget is not None:
                        budget.charge_sleep(clock, delay)
                    elif delay > 0.0:
                        clock.sleep(delay)
                    continue
                if fallback.should_fall_back(exc):
                    break  # next backend in the chain
                raise  # non-recoverable: propagate as-is
        assert last is not None
        causes.append((backend_name, last))
    raise ResilienceExhausted(causes)
