"""Execution budgets: wall-clock deadlines and launch/retry quotas.

The serving tier's SLO story needs the runtime to be *time-aware*: a
request that has blown its deadline must stop consuming the machine, and
it must say exactly how far it got.  An :class:`ExecutionBudget` rides on
the :class:`~repro.runtime.context.ExecutionContext` (like a
:class:`~repro.resilience.faults.FaultPlan`, it is mutable state on a
frozen context) and is charged at two seams:

- the **begin_launch hook seam** — :class:`BudgetHook` (assembled
  automatically whenever ``context.budget`` is set) charges one launch
  and checks the deadline before every backend invocation, on every
  dispatch path;
- the **scheduler's ready-node dispatch** — both executors in
  :mod:`repro.sched.executor` check the deadline between node
  submissions, so a graph run stops *between* nodes (in-flight nodes
  drain) and the raised error reports which node indices completed.

Exhaustion is typed: :class:`DeadlineExceeded` for the clock,
:class:`BudgetExhausted` for the quotas, both carrying partial-progress
diagnostics (nodes completed, launches and retries spent, elapsed
seconds).  Time always flows through the context's injectable
:class:`~repro.resilience.clock.Clock`, so a
:class:`~repro.resilience.clock.VirtualClock` makes every deadline test
and chaos run deterministic.  Retry backoff sleeps are charged against
the deadline via :meth:`ExecutionBudget.charge_sleep` — a sleep that
would overrun the deadline is cut short and raises instead of wasting
the remaining budget waiting.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.hooks.pipeline import Hook
from repro.hooks.registry import register_hook
from repro.resilience.clock import Clock, resolve_clock
from repro.resilience.faults import ResilienceError

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.hooks.pipeline import Launch
    from repro.isa.opcodes import MmoOpcode
    from repro.runtime.context import ExecutionContext

__all__ = [
    "BudgetError",
    "BudgetExhausted",
    "BudgetHook",
    "DeadlineExceeded",
    "ExecutionBudget",
    "BUDGET_HOOK",
]


class BudgetError(ResilienceError):
    """Base of budget exhaustion errors; carries partial-progress state.

    ``nodes_completed`` is the tuple of graph node indices that finished
    before the budget tripped (``None`` when the trip happened outside a
    scheduler run); ``launches_spent``/``retries_spent`` are the charges
    accrued so far and ``elapsed_s`` the budget's age on its clock.
    """

    def __init__(
        self,
        message: str,
        *,
        elapsed_s: float = 0.0,
        deadline_s: float | None = None,
        launches_spent: int = 0,
        retries_spent: int = 0,
        nodes_completed: tuple[int, ...] | None = None,
    ):
        super().__init__(message)
        self.elapsed_s = elapsed_s
        self.deadline_s = deadline_s
        self.launches_spent = launches_spent
        self.retries_spent = retries_spent
        self.nodes_completed = nodes_completed


class DeadlineExceeded(BudgetError):
    """The budget's wall-clock deadline passed."""


class BudgetExhausted(BudgetError):
    """A launch or retry quota ran out before the work finished."""


class ExecutionBudget:
    """A mutable deadline/quota tracker shared by one logical request.

    Parameters
    ----------
    deadline_s:
        Wall-clock allowance in seconds, measured on the charging clock
        from the budget's first charge or check.  ``None`` means no
        deadline.
    max_launches:
        How many launches the budget funds, charged at the
        ``begin_launch`` seam by :class:`BudgetHook` — every launch
        opened there counts, degenerate empty-output ones included
        (they still consume a dispatch round trip).  ``None`` means
        unlimited.
    max_retries:
        How many *recovery* relaunches the budget funds across every
        policy consulting it (:func:`~repro.resilience.policy
        .resilient_mmo` charges one per retry).  ``None`` means
        unlimited.

    The tracker is thread-safe (graph nodes charge concurrently) and,
    like :class:`~repro.resilience.faults.FaultPlan`, deliberately
    mutable on the frozen context: one budget spans every launch of the
    request it meters.
    """

    def __init__(
        self,
        *,
        deadline_s: float | None = None,
        max_launches: int | None = None,
        max_retries: int | None = None,
    ):
        if deadline_s is not None and deadline_s < 0.0:
            raise ResilienceError(f"deadline_s must be >= 0, got {deadline_s}")
        if max_launches is not None and max_launches < 0:
            raise ResilienceError(
                f"max_launches must be >= 0, got {max_launches}"
            )
        if max_retries is not None and max_retries < 0:
            raise ResilienceError(f"max_retries must be >= 0, got {max_retries}")
        self.deadline_s = deadline_s
        self.max_launches = max_launches
        self.max_retries = max_retries
        self._lock = threading.Lock()
        self._started_at: float | None = None
        self._launches = 0
        self._retries = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def launches_spent(self) -> int:
        with self._lock:
            return self._launches

    @property
    def retries_spent(self) -> int:
        with self._lock:
            return self._retries

    def elapsed_s(self, clock: Clock) -> float:
        """Seconds since the first charge/check (0.0 before any)."""
        with self._lock:
            if self._started_at is None:
                return 0.0
            return max(0.0, clock.now() - self._started_at)

    def remaining_s(self, clock: Clock) -> float | None:
        """Deadline seconds left (``None`` when no deadline is set)."""
        if self.deadline_s is None:
            return None
        return max(0.0, self.deadline_s - self.elapsed_s(clock))

    def snapshot(self, clock: Clock) -> dict:
        """Diagnostics dict (what the chaos artifact records per run)."""
        return {
            "deadline_s": self.deadline_s,
            "elapsed_s": self.elapsed_s(clock),
            "launches_spent": self.launches_spent,
            "max_launches": self.max_launches,
            "retries_spent": self.retries_spent,
            "max_retries": self.max_retries,
        }

    # ------------------------------------------------------------------
    # charging
    # ------------------------------------------------------------------
    def _start_locked(self, clock: Clock) -> float:
        if self._started_at is None:
            self._started_at = clock.now()
        return self._started_at

    def _deadline_error(
        self,
        elapsed: float,
        nodes_completed: tuple[int, ...] | None,
        where: str,
    ) -> DeadlineExceeded:
        suffix = f" at {where}" if where else ""
        progress = (
            ""
            if nodes_completed is None
            else f", {len(nodes_completed)} node(s) completed"
        )
        return DeadlineExceeded(
            f"deadline of {self.deadline_s}s exceeded{suffix} "
            f"(elapsed {elapsed:.6f}s, {self._launches} launch(es), "
            f"{self._retries} retry(ies) spent{progress})",
            elapsed_s=elapsed,
            deadline_s=self.deadline_s,
            launches_spent=self._launches,
            retries_spent=self._retries,
            nodes_completed=nodes_completed,
        )

    def check_deadline(
        self,
        clock: Clock,
        *,
        nodes_completed: tuple[int, ...] | None = None,
        where: str = "",
    ) -> None:
        """Raise :class:`DeadlineExceeded` once the deadline has passed.

        The first check starts the budget's clock, so a budget created
        ahead of time does not age while idle.
        """
        with self._lock:
            started = self._start_locked(clock)
            if self.deadline_s is None:
                return
            elapsed = max(0.0, clock.now() - started)
            if elapsed > self.deadline_s:
                raise self._deadline_error(elapsed, nodes_completed, where)

    def charge_launch(self, clock: Clock) -> None:
        """One backend launch: check the deadline, spend a launch slot."""
        with self._lock:
            started = self._start_locked(clock)
            if self.deadline_s is not None:
                elapsed = max(0.0, clock.now() - started)
                if elapsed > self.deadline_s:
                    raise self._deadline_error(elapsed, None, "begin_launch")
            self._launches += 1
            if (
                self.max_launches is not None
                and self._launches > self.max_launches
            ):
                raise BudgetExhausted(
                    f"launch budget of {self.max_launches} exhausted "
                    f"({self._retries} retry(ies) also spent)",
                    elapsed_s=max(0.0, clock.now() - started),
                    deadline_s=self.deadline_s,
                    launches_spent=self._launches,
                    retries_spent=self._retries,
                )

    def charge_retry(self, clock: Clock) -> None:
        """One recovery relaunch: spend a retry slot."""
        with self._lock:
            started = self._start_locked(clock)
            self._retries += 1
            if self.max_retries is not None and self._retries > self.max_retries:
                raise BudgetExhausted(
                    f"retry budget of {self.max_retries} exhausted "
                    f"({self._launches} launch(es) also spent)",
                    elapsed_s=max(0.0, clock.now() - started),
                    deadline_s=self.deadline_s,
                    launches_spent=self._launches,
                    retries_spent=self._retries,
                )

    def charge_sleep(self, clock: Clock, seconds: float) -> None:
        """Sleep through ``clock``, charged against the deadline.

        A backoff delay that would overrun the deadline is not slept in
        full: the budget sleeps only the remaining allowance and raises
        :class:`DeadlineExceeded` — waiting past a blown deadline helps
        nobody.  Without a deadline the full delay is slept.
        """
        with self._lock:
            started = self._start_locked(clock)
        if seconds <= 0.0 and self.deadline_s is None:
            return
        if self.deadline_s is None:
            clock.sleep(seconds)
            return
        elapsed = max(0.0, clock.now() - started)
        remaining = self.deadline_s - elapsed
        if seconds >= remaining:
            if remaining > 0.0:
                clock.sleep(remaining)
            with self._lock:
                raise self._deadline_error(
                    max(0.0, clock.now() - started), None, "retry backoff"
                )
        clock.sleep(seconds)


@register_hook(name="budget")
class BudgetHook(Hook):
    """Charge the context's budget at the ``begin_launch`` seam.

    Assembled automatically by :func:`~repro.hooks.pipeline
    .build_pipeline` whenever ``context.budget`` is set, right after
    validation — a launch rejected for malformed operands spends no
    budget, mirroring the fault plan's ordinal discipline.  Provides
    ``launchless_pre`` so a budget-only context keeps the
    allocation-free fast path.
    """

    def pre_execute(self, launch: "Launch") -> None:
        budget = launch.context.budget
        if budget is not None:
            budget.charge_launch(resolve_clock(launch.context))

    def launchless_pre(
        self,
        context: "ExecutionContext",
        api: str,
        opcode: "MmoOpcode",
        a: "np.ndarray",
        b: "np.ndarray",
        c: "np.ndarray | None",
        validate_inputs: bool,
    ) -> None:
        budget = context.budget
        if budget is not None:
            budget.charge_launch(resolve_clock(context))


#: Shared stateless instance used by the default pipeline assembly.
BUDGET_HOOK = BudgetHook()
