"""Deterministic fault injection at the execute boundary.

The loud-fault discipline of accelerator emulation (arXiv:1811.08309)
applied to SIMD²: every failure mode the resilience layer claims to
survive must be *injectable on demand, deterministically*, so recovery can
be proven end-to-end and bit-for-bit.  A :class:`FaultPlan` rides on the
:class:`~repro.runtime.context.ExecutionContext` and is consulted at the
``execute_compiled`` seam in :mod:`repro.runtime.kernels` — *after* the
backend ran — so the same plan corrupts all three backends identically:

- **output corruption** (:class:`FaultSpec`): seeded bit-flips, NaN
  poisoning, or a stuck output tile, applied to chosen launch ordinals;
- **dropped launches**: the launch raises :class:`InjectedFault` instead
  of returning (a lost kernel, a timeout);
- **per-device hard failures**: :meth:`FaultPlan.device_should_fail`
  makes :func:`~repro.runtime.multidevice.mmo_tiled_multi_device` raise
  :class:`DeviceFailure` for the chosen device indices.

Launches are numbered by one monotone ordinal per plan (the plan is
mutable even though the context is frozen), so "corrupt launch 3" means
the same launch on every run — and a retry, which advances the ordinal,
deterministically escapes a transient fault.  Ordinal assignment and
drop admission are two separate steps (:meth:`FaultPlan.reserve` /
:meth:`FaultPlan.admit`): the scheduler's graph builders reserve
ordinals at *graph-build* time, in node order, so a threaded executor
injects exactly the faults a serial run would — launch numbering never
depends on thread interleaving.  Ad-hoc launches (``mmo_tiled`` outside
a graph) still claim both in one step via :meth:`FaultPlan.begin_launch`.
Every injection emits a
:class:`~repro.runtime.trace.ResilienceEvent` through the context hook
pipeline's ``on_event`` channel (landing on the trace via ``TraceHook``).
"""

from __future__ import annotations

import dataclasses
import threading
from typing import TYPE_CHECKING, Iterable, Mapping

import numpy as np

from repro.hooks.pipeline import emit_event
from repro.runtime.api import RuntimeError_

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.context import ExecutionContext

__all__ = [
    "DeviceFailure",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "ResilienceError",
]


class ResilienceError(RuntimeError_):
    """Base class of every error the resilience layer raises."""


class InjectedFault(ResilienceError):
    """An injected loud fault: the launch was dropped by the fault plan."""


class DeviceFailure(ResilienceError):
    """A device hard-failed (injected or surfaced from the emulator).

    Carries the failing device's index so the multi-device partitioner can
    blacklist it and repartition the work across the survivors.
    """

    def __init__(self, device_index: int, reason: str):
        super().__init__(f"device {device_index} failed: {reason}")
        self.device_index = device_index
        self.reason = reason


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One output corruption to inject into a launch's result tile.

    Parameters
    ----------
    kind:
        ``"bitflip"`` (flip one mantissa/sign bit of one element),
        ``"nan"`` (poison the tile with NaN), or ``"stuck"`` (freeze the
        whole tile to ``value`` — a stuck-at datapath).
    tile:
        ``(tile_row, tile_col)`` of the 16×16 output tile to corrupt;
        ``None`` picks a seeded tile from the launch's grid.
    value:
        The stuck-at value for ``kind="stuck"``.
    """

    kind: str = "bitflip"
    tile: tuple[int, int] | None = None
    value: float = 0.0

    _KINDS = ("bitflip", "nan", "stuck")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ResilienceError(
                f"unknown fault kind {self.kind!r}; expected one of {self._KINDS}"
            )


class FaultPlan:
    """A seeded, repeatable schedule of faults for one execution run.

    Parameters
    ----------
    seed:
        Seeds the RNG that picks corrupted elements/bits/tiles, so two
        runs of the same plan inject byte-identical faults.
    corrupt:
        Maps launch ordinal → :class:`FaultSpec` (or an iterable of specs)
        to apply to that launch's output.  Ordinals count every launch
        executed under a context carrying this plan, starting at 0.
    drop:
        Launch ordinals that raise :class:`InjectedFault` instead of
        executing.
    fail_devices:
        Device indices (as enumerated by ``mmo_tiled_multi_device``) that
        hard-fail with :class:`DeviceFailure` when asked to run a band.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        corrupt: Mapping[int, FaultSpec | Iterable[FaultSpec]] | None = None,
        drop: Iterable[int] = (),
        fail_devices: Iterable[int] = (),
    ):
        self.seed = int(seed)
        self._corrupt: dict[int, tuple[FaultSpec, ...]] = {}
        for ordinal, specs in (corrupt or {}).items():
            if isinstance(specs, FaultSpec):
                specs = (specs,)
            self._corrupt[int(ordinal)] = tuple(specs)
        self.drop = frozenset(int(o) for o in drop)
        self.fail_devices = frozenset(int(d) for d in fail_devices)
        self._lock = threading.Lock()
        self._next_ordinal = 0
        #: Counters of what the plan actually injected, for assertions.
        self.injected_corruptions = 0
        self.injected_drops = 0
        self.injected_device_failures = 0

    # ------------------------------------------------------------------
    # the seam API used by the dispatch layer
    # ------------------------------------------------------------------
    def reserve(self, count: int = 1) -> int:
        """Claim ``count`` consecutive launch ordinals; return the first.

        Graph builders call this at *build* time (one ordinal per launch
        node, in node order), which pins the fault schedule before any
        executor — serial or threaded — touches a kernel.  Reserved
        ordinals are spent even if the launch never runs (an aborted
        banding burns its ordinals rather than renumbering later ones).
        """
        if count <= 0:
            raise ResilienceError(f"reserve needs a positive count, got {count}")
        with self._lock:
            ordinal = self._next_ordinal
            self._next_ordinal += count
        return ordinal

    def admit(self, ordinal: int, context: "ExecutionContext", api: str) -> int:
        """Admit a reserved ordinal for execution; raise if it is dropped."""
        if ordinal in self.drop:
            self.injected_drops += 1
            emit_event(
                context, kind="fault_injected", api=api,
                detail=f"launch {ordinal} dropped", launch_ordinal=ordinal,
            )
            raise InjectedFault(f"fault plan dropped launch {ordinal}")
        return ordinal

    def begin_launch(self, context: "ExecutionContext", api: str) -> int:
        """Claim the next launch ordinal; raise if this launch is dropped."""
        return self.admit(self.reserve(), context, api)

    def corrupt_output(
        self, ordinal: int, result: np.ndarray, context: "ExecutionContext", api: str
    ) -> np.ndarray:
        """Apply this ordinal's scheduled corruptions to a launch result."""
        specs = self._corrupt.get(ordinal)
        if not specs:
            return result
        corrupted = np.array(result, copy=True)
        for index, spec in enumerate(specs):
            rng = np.random.default_rng((self.seed, ordinal, index))
            detail = _apply_spec(corrupted, spec, rng)
            self.injected_corruptions += 1
            emit_event(
                context, kind="fault_injected", api=api,
                detail=f"launch {ordinal}: {detail}", launch_ordinal=ordinal,
            )
        return corrupted

    def device_should_fail(self, device_index: int) -> bool:
        """Whether the plan hard-fails this device (multi-device seam)."""
        return device_index in self.fail_devices

    def record_device_failure(
        self, context: "ExecutionContext", api: str, device_index: int
    ) -> None:
        self.injected_device_failures += 1
        emit_event(
            context, kind="fault_injected", api=api,
            detail=f"device {device_index} hard failure",
            device_index=device_index,
        )

    @property
    def launches_seen(self) -> int:
        with self._lock:
            return self._next_ordinal

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultPlan(seed={self.seed}, corrupt={sorted(self._corrupt)}, "
            f"drop={sorted(self.drop)}, fail_devices={sorted(self.fail_devices)})"
        )


def _apply_spec(out: np.ndarray, spec: FaultSpec, rng: np.random.Generator) -> str:
    """Mutate ``out`` in place per ``spec``; returns a human-readable detail."""
    from repro.core.tiles import TILE, ceil_div

    m, n = out.shape
    tiles_m = max(1, ceil_div(m, TILE))
    tiles_n = max(1, ceil_div(n, TILE))
    if spec.tile is not None:
        ti, tj = spec.tile
        if not (0 <= ti < tiles_m and 0 <= tj < tiles_n):
            raise ResilienceError(
                f"fault tile {spec.tile} outside the {tiles_m}x{tiles_n} grid"
            )
    else:
        ti = int(rng.integers(tiles_m))
        tj = int(rng.integers(tiles_n))
    rows = slice(ti * TILE, min(m, (ti + 1) * TILE))
    cols = slice(tj * TILE, min(n, (tj + 1) * TILE))

    if spec.kind == "stuck":
        out[rows, cols] = spec.value
        return f"stuck tile ({ti},{tj}) = {spec.value}"
    # pick one element of the tile for point corruptions
    i = rows.start + int(rng.integers(rows.stop - rows.start))
    j = cols.start + int(rng.integers(cols.stop - cols.start))
    if spec.kind == "nan":
        if out.dtype == np.dtype(bool):
            out[i, j] = not out[i, j]
            return f"flipped boolean ({i},{j}) in tile ({ti},{tj})"
        out[i, j] = np.nan
        return f"NaN poison at ({i},{j}) in tile ({ti},{tj})"
    # bitflip
    if out.dtype == np.dtype(bool):
        out[i, j] = not out[i, j]
        return f"flipped boolean ({i},{j}) in tile ({ti},{tj})"
    flat = out.view(np.uint32) if out.dtype == np.dtype(np.float32) else None
    if flat is None:
        # non-fp32 numeric output: perturb the value instead of a raw bit
        out[i, j] = out[i, j] + 1 if np.isfinite(out[i, j]) else 0.0
        return f"perturbed ({i},{j}) in tile ({ti},{tj})"
    bit = int(rng.integers(0, 23))  # mantissa bits: loud but finite
    flat[i, j] ^= np.uint32(1 << bit)
    return f"bit {bit} flipped at ({i},{j}) in tile ({ti},{tj})"
