"""Fault-tolerant semiring closure: the whole resilience stack in one loop.

:func:`resilient_closure` is the end-to-end composition the paper-scale
graph workloads need: the Figure-7 iteration ``D ← D ⊕ (D ⊗ X)`` where
every mmo is ABFT-checked, detected corruption is retried, dead devices
are blacklisted and their row bands repartitioned across the survivors,
and a :class:`~repro.resilience.watchdog.ClosureWatchdog` guards the
iterates themselves.  Because ⊕-fold checksums verify each band against
its *inputs*, a recovered run is bit-identical to a fault-free run — the
property ``benchmarks/bench_resilience.py`` proves end to end.

Single-device callers get the same loop with
:func:`~repro.resilience.policy.resilient_mmo` (retry + backend fallback)
in place of the multi-device partitioner.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

import numpy as np

from repro.core.registry import get_semiring
from repro.core.semiring import Semiring, SemiringError
from repro.resilience.policy import FallbackChain, RetryPolicy, resilient_mmo
from repro.resilience.watchdog import ClosureDiagnostics, ClosureWatchdog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.device import Simd2Device
    from repro.runtime.context import ExecutionContext
    from repro.runtime.multidevice import DeviceShare

__all__ = ["ResilientClosureResult", "resilient_closure"]


@dataclasses.dataclass(frozen=True)
class ResilientClosureResult:
    """Outcome of a fault-tolerant closure iteration.

    ``blacklist`` is the final set of failed device indices (empty for
    single-device runs); ``device_shares`` is the last iteration's
    partition, showing which surviving device owned which row band.
    """

    matrix: np.ndarray
    iterations: int
    converged: bool
    method: str
    mmo_calls: int
    diagnostics: "ClosureDiagnostics | None"
    blacklist: frozenset[int]
    device_shares: "tuple[DeviceShare, ...]"


def resilient_closure(
    ring: Semiring | str,
    adjacency: np.ndarray,
    *,
    method: str = "leyzorek",
    convergence_check: bool = True,
    max_iterations: int | None = None,
    devices: "list[Simd2Device] | None" = None,
    backend: str | None = None,
    context: "ExecutionContext | None" = None,
    checked: bool = True,
    retry: RetryPolicy | None = None,
    fallback: FallbackChain | None = None,
    on_device_failure: str = "repartition",
    blacklist: set[int] | None = None,
    watchdog: bool | ClosureWatchdog = True,
    rtol: float = 1e-4,
    atol: float = 1e-6,
) -> ResilientClosureResult:
    """Iterate ``D ← D ⊕ (D ⊗ X)`` to a fixpoint, surviving faults.

    With ``devices`` the mmo is partitioned row-wise across them
    (:func:`~repro.runtime.multidevice.mmo_tiled_multi_device`) with
    ``checked`` bands and ``on_device_failure`` recovery; the
    ``blacklist`` set persists across iterations, so a device that died
    in iteration 2 is never asked again in iteration 3.  Without
    ``devices`` each iteration runs through
    :func:`~repro.resilience.policy.resilient_mmo` (retry + ``fallback``
    backend chain).

    The ``watchdog`` observes every iterate; on a trip the loop stops
    with the structured diagnosis instead of burning the iteration cap.
    """
    from repro.runtime.closure import matrices_equal, max_iterations_for
    from repro.runtime.context import resolve_context
    from repro.runtime.multidevice import mmo_tiled_multi_device

    ring = get_semiring(ring)
    ctx = resolve_context(context, backend=backend)
    current = np.asarray(adjacency, dtype=ring.output_dtype)
    if current.ndim != 2 or current.shape[0] != current.shape[1]:
        raise SemiringError(
            f"closure needs a square matrix, got shape {current.shape}"
        )
    if method not in ("leyzorek", "bellman-ford"):
        raise SemiringError(f"unknown closure method {method!r}")
    n = current.shape[0]
    if max_iterations is not None:
        limit = max_iterations
    else:
        limit = max_iterations_for(method, n) + (1 if convergence_check else 0)
    if limit <= 0:
        raise SemiringError(f"max_iterations must be positive, got {limit}")

    guard: ClosureWatchdog | None = None
    if watchdog:
        guard = watchdog if isinstance(watchdog, ClosureWatchdog) else ClosureWatchdog(ring)
    blacklist = blacklist if blacklist is not None else set()

    base = current.copy()
    converged = False
    iterations = 0
    mmo_calls = 0
    diagnostics: ClosureDiagnostics | None = None
    shares: "tuple[DeviceShare, ...]" = ()

    for _ in range(limit):
        operand = current if method == "leyzorek" else base
        # In-loop launches skip ring-input validation: iterates may carry
        # NaN/±inf legitimately (fault studies, NaN fixpoints) — the
        # watchdog and ABFT checksums own in-loop poison detection.
        if devices is not None:
            updated, share_list = mmo_tiled_multi_device(
                ring, current, operand, current,
                devices=devices, context=ctx,
                checked=checked, retry=retry,
                on_device_failure=on_device_failure,
                blacklist=blacklist, rtol=rtol, atol=atol,
                validate_inputs=False,
            )
            shares = tuple(share_list)
        else:
            updated, _stats = resilient_mmo(
                ring, current, operand, current,
                context=ctx, retry=retry, fallback=fallback,
                checked=checked, rtol=rtol, atol=atol,
                api="resilient_closure", validate_inputs=False,
            )
        mmo_calls += 1
        iterations += 1
        if guard is not None:
            diagnostics = guard.observe(updated, current, iterations)
            if diagnostics is not None:
                current = updated
                from repro.hooks.pipeline import emit_event

                emit_event(
                    ctx,
                    kind="watchdog",
                    api="resilient_closure",
                    detail=diagnostics.describe(),
                )
                break
        if convergence_check and matrices_equal(updated, current):
            current = updated
            converged = True
            break
        current = updated

    if guard is not None and diagnostics is None:
        diagnostics = ClosureDiagnostics(
            healthy=True, reason=None, iteration=iterations,
            detail="no poisoning, regression, or oscillation observed",
        )
    return ResilientClosureResult(
        matrix=current,
        iterations=iterations,
        converged=converged,
        method=method,
        mmo_calls=mmo_calls,
        diagnostics=diagnostics,
        blacklist=frozenset(blacklist),
        device_shares=shares,
    )
