"""Semiring-generalised ABFT: ⊕-fold checksums for ``D = C ⊕ (A ⊗ B)``.

Huang–Abraham checksums are usually stated for plus-mul GEMM: append a
column-sum row to A, a row-sum column to B, and the product's checksums
must match.  The property they rely on is *distributivity of ⊗ over ⊕*::

    ⊕_i ⊕_k (a_ik ⊗ b_kj)  =  ⊕_k ((⊕_i a_ik) ⊗ b_kj)

which holds for any semiring — exactly the generality argument of the
SIMD² ISA, extended to fault tolerance.  So the same check covers
min-plus (shortest paths), or-and (reachability), max-min (capacities):

- **row checksum**: ``⊕-fold_rows(D) = (⊕-fold_rows C) ⊕ ((⊕-fold_rows A) ⊗ B)``
- **col checksum**: ``⊕-fold_cols(D) = (⊕-fold_cols C) ⊕ (A ⊗ (⊕-fold_cols B))``

The expected folds are O(mk + kn + mn) — negligible next to the O(mkn)
launch — and are computed on the host from the *quantised* operands (the
same fp16→fp32 cast the backends apply), so for idempotent ⊕ (min/max/or)
the comparison is **exact**: the fold of the true result selects the same
fp32 values the checksum computed.  For ``⊕ = np.add`` reassociation makes
the folds differ by rounding, so the comparison is tolerance-based.

Two rings need care:

- ``plus-norm``: ``⊗ = (a-b)²`` does not distribute over ``+``
  (``Σᵢ(aᵢ-b)² ≠ (Σᵢaᵢ-b)²``) — checksums are unsupported and
  :func:`mmo_checksums` raises :class:`ChecksumUnsupported`.
- ``min-mul``/``max-mul``: ``·`` distributes over min/max only on
  sign-consistent operands (a negative multiplier flips the order), so
  checksums require non-negative inputs and raise otherwise.

Detection semantics: a corruption is observable iff it changes a ⊕-fold.
Additive folds see every element change; idempotent folds are lossy —
raising a non-minimal element under min leaves both folds unchanged.  NaN
poison is always caught (NaN propagates through min/max/add folds).
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

import numpy as np

from repro.core.registry import get_semiring
from repro.core.semiring import Semiring
from repro.core.tiles import TILE
from repro.resilience.faults import ResilienceError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.context import ExecutionContext
    from repro.runtime.kernels import KernelStats

__all__ = [
    "CheckedLaunch",
    "ChecksumReport",
    "ChecksumUnsupported",
    "CorruptionDetected",
    "MmoChecksums",
    "checked_mmo",
    "mmo_checksums",
]

#: ⊕ callables whose fold comparison is exact (idempotent selections).
_IDEMPOTENT_OPLUS = (np.minimum, np.maximum, np.logical_or)


class ChecksumUnsupported(ResilienceError):
    """The ring's ⊗ does not distribute over ⊕ for these operands."""


class CorruptionDetected(ResilienceError):
    """A launch's result violated its ABFT checksum invariant."""

    def __init__(self, report: "ChecksumReport"):
        super().__init__(f"ABFT checksum mismatch: {report.describe()}")
        self.report = report


@dataclasses.dataclass(frozen=True)
class ChecksumReport:
    """Outcome of verifying one launch against its checksums."""

    ok: bool
    ring: str
    exact: bool  # exact (idempotent ⊕) vs tolerance-based comparison
    bad_columns: tuple[int, ...] = ()
    bad_rows: tuple[int, ...] = ()
    max_row_deviation: float = 0.0
    max_col_deviation: float = 0.0

    @property
    def suspect_tiles(self) -> tuple[tuple[int, int], ...]:
        """Output tiles implicated by the mismatching fold lanes.

        The row checksum localises corrupt *columns*, the column checksum
        corrupt *rows*; their tile-granular intersection is the suspect
        set (all bad row tiles when only columns fired, and vice versa).
        """
        col_tiles = sorted({j // TILE for j in self.bad_columns})
        row_tiles = sorted({i // TILE for i in self.bad_rows})
        if row_tiles and col_tiles:
            return tuple((ti, tj) for ti in row_tiles for tj in col_tiles)
        if row_tiles:
            return tuple((ti, -1) for ti in row_tiles)
        return tuple((-1, tj) for tj in col_tiles)

    def describe(self) -> str:
        if self.ok:
            return f"{self.ring}: checksums ok"
        return (
            f"{self.ring}: {len(self.bad_columns)} bad fold column(s), "
            f"{len(self.bad_rows)} bad fold row(s), suspect tiles "
            f"{list(self.suspect_tiles)}"
        )


def _quantised(semiring: Semiring, x: np.ndarray) -> np.ndarray:
    """The fp16→fp32 (or bool) cast every backend applies to inputs."""
    from repro.core.precision import quantize_input

    return quantize_input(np.asarray(x), semiring).astype(semiring.output_dtype)


def _check_support(semiring: Semiring, a: np.ndarray, b: np.ndarray) -> None:
    if not getattr(semiring, "distributive_otimes", True):
        raise ChecksumUnsupported(
            f"ring {semiring.name!r}: ⊗ does not distribute over ⊕, "
            f"ABFT checksums do not apply"
        )
    if semiring.otimes is np.multiply and semiring.oplus in (np.minimum, np.maximum):
        # min/max only commute with · on sign-consistent data.
        with np.errstate(invalid="ignore"):
            if np.any(np.asarray(a) < 0) or np.any(np.asarray(b) < 0):
                raise ChecksumUnsupported(
                    f"ring {semiring.name!r}: · distributes over "
                    f"{semiring.oplus.__name__} only for non-negative "
                    f"operands"
                )


@dataclasses.dataclass(frozen=True)
class MmoChecksums:
    """Pre-launch expected ⊕-folds of one ``D = C ⊕ (A ⊗ B)`` launch."""

    semiring: Semiring
    expected_row_fold: np.ndarray  # (n,) — ⊕ over D's rows (axis 0)
    expected_col_fold: np.ndarray  # (m,) — ⊕ over D's columns (axis 1)
    rtol: float
    atol: float

    @property
    def exact(self) -> bool:
        return any(self.semiring.oplus is op for op in _IDEMPOTENT_OPLUS)

    def verify(self, d: np.ndarray) -> ChecksumReport:
        """Compare the launch result's folds against the expectations."""
        ring = self.semiring
        d = np.asarray(d, dtype=ring.output_dtype)
        got_row = ring.reduce(d, axis=0)
        got_col = ring.reduce(d, axis=1)
        if self.exact:
            bad_cols = ~_eq_with_nan(got_row, self.expected_row_fold)
            bad_rows = ~_eq_with_nan(got_col, self.expected_col_fold)
            row_dev = col_dev = 0.0
        else:
            bad_cols, row_dev = _tolerance_mismatch(
                got_row, self.expected_row_fold, self.rtol, self.atol
            )
            bad_rows, col_dev = _tolerance_mismatch(
                got_col, self.expected_col_fold, self.rtol, self.atol
            )
        ok = not (bad_cols.any() or bad_rows.any())
        return ChecksumReport(
            ok=bool(ok),
            ring=ring.name,
            exact=self.exact,
            bad_columns=tuple(int(j) for j in np.flatnonzero(bad_cols)),
            bad_rows=tuple(int(i) for i in np.flatnonzero(bad_rows)),
            max_row_deviation=row_dev,
            max_col_deviation=col_dev,
        )


def _eq_with_nan(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Element-wise equality treating NaN == NaN (bool-dtype safe)."""
    if x.dtype == np.dtype(bool):
        return x == y
    return (x == y) | (np.isnan(x) & np.isnan(y))


def _tolerance_mismatch(
    got: np.ndarray, expected: np.ndarray, rtol: float, atol: float
) -> tuple[np.ndarray, float]:
    """Per-lane tolerance comparison; NaN on one side only is a mismatch."""
    got64 = got.astype(np.float64)
    exp64 = expected.astype(np.float64)
    both_nan = np.isnan(got64) & np.isnan(exp64)
    with np.errstate(invalid="ignore"):
        close = np.isclose(got64, exp64, rtol=rtol, atol=atol) | both_nan
    deviation = np.abs(got64 - exp64)
    deviation = float(np.nanmax(deviation)) if deviation.size else 0.0
    return ~close, deviation


def mmo_checksums(
    ring: Semiring | str,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    *,
    rtol: float = 1e-4,
    atol: float = 1e-6,
) -> MmoChecksums:
    """Compute the expected row/column ⊕-folds before launching.

    Raises :class:`ChecksumUnsupported` for rings/operands where the
    distributive invariant does not hold (see module docstring).
    """
    semiring = get_semiring(ring)
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        # Same family and message as the kernels' own shape validation, so
        # checked and unchecked launches reject malformed operands alike.
        raise ResilienceError(f"bad mmo operand shapes A{a.shape} x B{b.shape}")
    if c is not None and np.asarray(c).shape != (a.shape[0], b.shape[1]):
        raise ResilienceError(
            f"accumulator shape {np.asarray(c).shape} != "
            f"{(a.shape[0], b.shape[1])}"
        )
    _check_support(semiring, a, b)
    aq = _quantised(semiring, a)
    bq = _quantised(semiring, b)

    # row checksum: (⊕-fold_rows A) ⊗ B, folded along k
    ra = semiring.reduce(aq, axis=0)  # (k,)
    with np.errstate(invalid="ignore"):
        row_products = semiring.otimes(ra[:, None], bq)  # (k, n)
    expected_row = semiring.reduce(
        np.asarray(row_products, dtype=semiring.output_dtype), axis=0
    )
    # col checksum: A ⊗ (⊕-fold_cols B), folded along k
    cb = semiring.reduce(bq, axis=1)  # (k,)
    with np.errstate(invalid="ignore"):
        col_products = semiring.otimes(aq, cb[None, :])  # (m, k)
    expected_col = semiring.reduce(
        np.asarray(col_products, dtype=semiring.output_dtype), axis=1
    )
    if c is not None:
        cq = np.asarray(c, dtype=semiring.output_dtype)
        expected_row = np.asarray(
            semiring.oplus(expected_row, semiring.reduce(cq, axis=0)),
            dtype=semiring.output_dtype,
        )
        expected_col = np.asarray(
            semiring.oplus(expected_col, semiring.reduce(cq, axis=1)),
            dtype=semiring.output_dtype,
        )
    return MmoChecksums(
        semiring=semiring,
        expected_row_fold=expected_row,
        expected_col_fold=expected_col,
        rtol=rtol,
        atol=atol,
    )


@dataclasses.dataclass(frozen=True)
class CheckedLaunch:
    """Opt-in ABFT wrapper: checksum before, launch, verify after.

    >>> checked = CheckedLaunch()
    >>> d, stats = checked.run("min-plus", a, b, c, context=ctx)

    Raises :class:`CorruptionDetected` (report attached) when the result
    violates the folded invariant, and records a ``corruption_detected``
    event on the context's trace.  ``rtol``/``atol`` apply to the
    tolerance path (``⊕ = np.add``); idempotent rings compare exactly.
    """

    rtol: float = 1e-4
    atol: float = 1e-6

    def run(
        self,
        ring: Semiring | str,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray | None = None,
        *,
        context: "ExecutionContext | None" = None,
        api: str = "checked_mmo",
    ) -> "tuple[np.ndarray, KernelStats]":
        from repro.runtime.context import resolve_context
        from repro.runtime.kernels import mmo_tiled

        ctx = resolve_context(context)
        sums = mmo_checksums(ring, a, b, c, rtol=self.rtol, atol=self.atol)
        result, stats = mmo_tiled(ring, a, b, c, context=ctx, api=api)
        self.verify(sums, result, context=ctx, api=api)
        return result, stats

    def verify(
        self,
        sums: MmoChecksums,
        result: np.ndarray,
        *,
        context: "ExecutionContext | None" = None,
        api: str = "checked_mmo",
    ) -> ChecksumReport:
        """Verify a result against precomputed checksums; raise on mismatch."""
        report = sums.verify(result)
        if not report.ok:
            if context is not None:
                from repro.hooks.pipeline import emit_event

                emit_event(
                    context,
                    kind="corruption_detected",
                    api=api,
                    detail=report.describe(),
                )
            raise CorruptionDetected(report)
        return report


def checked_mmo(
    ring: Semiring | str,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    *,
    context: "ExecutionContext | None" = None,
    rtol: float = 1e-4,
    atol: float = 1e-6,
    api: str = "checked_mmo",
) -> "tuple[np.ndarray, KernelStats]":
    """Functional shorthand for :meth:`CheckedLaunch.run`."""
    return CheckedLaunch(rtol=rtol, atol=atol).run(
        ring, a, b, c, context=context, api=api
    )
