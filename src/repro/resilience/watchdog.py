"""Closure watchdog: structured detection of poisoned or stuck iterations.

A semiring closure (``D ← D ⊕ (D ⊗ X)`` until fixpoint) fails in
characteristic ways when its launches are corrupted:

- **NaN poisoning** — one NaN propagates through every subsequent mmo
  and, because ``NaN != NaN``, the convergence check can never fire: the
  loop silently burns its iteration cap.
- **Non-monotone progress** — on idempotent rings the update is a
  ⊕-selection, so the matrix must move monotonically toward the fixpoint
  (min-plus distances never increase, or-and reachability never loses an
  edge).  Any element moving the wrong way is corruption, not progress.
- **Oscillation** — the matrix revisits a previous state without being a
  fixpoint (period-2 flapping between corrupted states).

:class:`ClosureWatchdog` observes each iterate and returns a structured
:class:`ClosureDiagnostics` the moment one of these fires, letting
:func:`~repro.runtime.closure.closure` terminate early with a diagnosis
attached to its result instead of spinning to the cap.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.registry import get_semiring
from repro.core.semiring import Semiring

__all__ = ["ClosureDiagnostics", "ClosureWatchdog"]


@dataclasses.dataclass(frozen=True)
class ClosureDiagnostics:
    """What the watchdog saw when it tripped (or a healthy summary).

    ``reason`` is ``None`` for a healthy run, else one of
    ``"nan_poisoning"``, ``"non_monotone"``, ``"oscillation"`` — or
    ``"budget_exhausted"`` when a closure brownout
    (``on_budget="brownout"``) stopped the loop at a partial fixpoint.
    """

    healthy: bool
    reason: str | None
    iteration: int
    detail: str

    def describe(self) -> str:
        if self.healthy:
            return "closure healthy"
        return f"{self.reason} at iteration {self.iteration}: {self.detail}"


def _monotone_direction(ring: Semiring) -> str | None:
    """Which way an idempotent closure may move: "down", "up", or None."""
    if ring.oplus is np.minimum:
        return "down"
    if ring.oplus in (np.maximum, np.logical_or):
        return "up"
    return None  # plus-based rings accumulate; no order to police


class ClosureWatchdog:
    """Observes closure iterates; trips on poison, regression, or flapping.

    Parameters
    ----------
    ring:
        The closure's semiring (controls which checks apply: monotonicity
        is only meaningful for idempotent ⊕).
    check_nan / check_monotone / check_oscillation:
        Individually toggleable detectors.  ``check_monotone`` is ignored
        on rings without a ⊕-order; NaN entries present in the *initial*
        matrix are tolerated (a NaN fixpoint is the caller's business —
        only *newly appearing* NaNs trip the watchdog).
    """

    def __init__(
        self,
        ring: Semiring | str,
        *,
        check_nan: bool = True,
        check_monotone: bool = True,
        check_oscillation: bool = True,
    ):
        self.ring = get_semiring(ring)
        self.check_nan = check_nan
        self.check_monotone = (
            check_monotone and _monotone_direction(self.ring) is not None
        )
        self.check_oscillation = check_oscillation
        self._direction = _monotone_direction(self.ring)
        self._initial_nan: np.ndarray | None = None
        self._previous: np.ndarray | None = None  # D_{t-1}
        self._previous2: np.ndarray | None = None  # D_{t-2}

    def observe(
        self, updated: np.ndarray, previous: np.ndarray, iteration: int
    ) -> ClosureDiagnostics | None:
        """Inspect one iteration's ``previous → updated`` step.

        Returns a tripped :class:`ClosureDiagnostics` or ``None`` when the
        step looks healthy.  ``iteration`` is 1-based (the iteration that
        produced ``updated``).
        """
        updated = np.asarray(updated)
        previous = np.asarray(previous)
        is_float = np.issubdtype(updated.dtype, np.floating)

        if self.check_nan and is_float:
            if self._initial_nan is None:
                self._initial_nan = np.isnan(previous)
            new_nan = np.isnan(updated) & ~self._initial_nan
            if new_nan.any():
                i, j = np.argwhere(new_nan)[0]
                count = int(new_nan.sum())
                return ClosureDiagnostics(
                    healthy=False,
                    reason="nan_poisoning",
                    iteration=iteration,
                    detail=(
                        f"{count} new NaN entr{'y' if count == 1 else 'ies'}, "
                        f"first at ({i}, {j})"
                    ),
                )

        if self.check_monotone:
            if self._direction == "down":
                with np.errstate(invalid="ignore"):
                    regressed = updated > previous
            else:
                with np.errstate(invalid="ignore"):
                    regressed = updated < previous
            if regressed.any():
                i, j = np.argwhere(regressed)[0]
                arrow = "increased" if self._direction == "down" else "decreased"
                return ClosureDiagnostics(
                    healthy=False,
                    reason="non_monotone",
                    iteration=iteration,
                    detail=(
                        f"{int(regressed.sum())} entr"
                        f"{'y' if int(regressed.sum()) == 1 else 'ies'} "
                        f"{arrow} under an idempotent ⊕ "
                        f"(first at ({i}, {j}): "
                        f"{previous[i, j]} -> {updated[i, j]})"
                    ),
                )

        if self.check_oscillation and self._previous2 is not None:
            same_as_t2 = _equal(updated, self._previous2)
            changed_from_t1 = not _equal(updated, previous)
            if same_as_t2 and changed_from_t1:
                return ClosureDiagnostics(
                    healthy=False,
                    reason="oscillation",
                    iteration=iteration,
                    detail="matrix returned to its state two iterations ago "
                           "without reaching a fixpoint (period-2 flapping)",
                )

        self._previous2 = self._previous
        self._previous = np.array(updated, copy=True)
        return None


def _equal(x: np.ndarray, y: np.ndarray) -> bool:
    """Whole-matrix equality with ``NaN == NaN`` (bool-dtype safe)."""
    if np.issubdtype(np.asarray(x).dtype, np.floating):
        return bool(np.array_equal(x, y, equal_nan=True))
    return bool(np.array_equal(x, y))
