"""Injectable monotonic time: the one wall-clock seam in the tree.

Deadline budgets, retry backoff, circuit-breaker cooldowns and the
autotune table's observed launch costs all consume *time*; if each read
the OS clock directly, none of them could be tested deterministically
and a chaos run could never replay byte-identically.  So the repository
funnels every time read and every sleep through one :class:`Clock`
carried on the :class:`~repro.runtime.context.ExecutionContext`:

- :class:`MonotonicClock` — the real thing, and the **only module in
  ``src/repro`` allowed to call ``time.perf_counter`` / ``time.sleep``**
  (enforced by the ``clock-discipline`` invariant-lint rule with zero
  suppressions);
- :class:`VirtualClock` — deterministic test/chaos time: ``sleep``
  advances virtual time instantly, an optional ``tick`` advances it per
  ``now()`` read, and :meth:`VirtualClock.advance` moves it by hand —
  so a deadline trips on the same launch on every run, no matter how
  fast the machine is.

Because the dispatch seam (:mod:`repro.runtime.kernels`) stamps
``launch.wall_time_s`` from this same clock, the costs the
:class:`~repro.plan.autotune.AutotuneHook` observes and the charges an
:class:`~repro.resilience.budget.ExecutionBudget` accrues share one time
source by construction.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.resilience.faults import ResilienceError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.context import ExecutionContext

__all__ = [
    "Clock",
    "MonotonicClock",
    "VirtualClock",
    "default_clock",
    "resolve_clock",
]


@runtime_checkable
class Clock(Protocol):
    """Anything that can tell monotonic time and wait."""

    def now(self) -> float:
        """Seconds on a monotonic axis (origin is clock-defined)."""
        ...  # pragma: no cover - protocol

    def sleep(self, seconds: float) -> None:
        """Block (or virtually advance) for ``seconds``."""
        ...  # pragma: no cover - protocol


class MonotonicClock:
    """The real monotonic clock.

    This class is the single place ``src/repro`` touches the ``time``
    module; everything else resolves a clock through the context so
    tests and chaos runs can substitute a :class:`VirtualClock`.
    """

    def now(self) -> float:
        return time.perf_counter()

    def sleep(self, seconds: float) -> None:
        if seconds > 0.0:
            time.sleep(seconds)


class VirtualClock:
    """Deterministic time for tests and seeded chaos runs.

    ``sleep`` advances virtual time without blocking, so a backoff
    schedule "spends" its delays instantly and a deadline charged
    through the budget trips on exactly the same retry on every run.
    ``tick`` (default ``0.0``) additionally advances time by a fixed
    amount on every ``now()`` read — a deterministic stand-in for
    "work takes time", letting scheduler-level deadline checks fire
    mid-graph without any real waiting.  Thread-safe: concurrent graph
    nodes may read it simultaneously.
    """

    def __init__(self, start: float = 0.0, *, tick: float = 0.0):
        if tick < 0.0:
            raise ResilienceError(f"tick must be >= 0, got {tick}")
        self._lock = threading.Lock()
        self._now = float(start)
        self._tick = float(tick)
        self.sleeps = 0
        self.slept_s = 0.0

    def now(self) -> float:
        with self._lock:
            current = self._now
            self._now += self._tick
            return current

    def sleep(self, seconds: float) -> None:
        if seconds < 0.0:
            return
        with self._lock:
            self._now += seconds
            self.sleeps += 1
            self.slept_s += seconds

    def advance(self, seconds: float) -> None:
        """Move virtual time forward by hand (cooldown expiry in tests)."""
        if seconds < 0.0:
            raise ResilienceError(f"cannot advance by {seconds}")
        with self._lock:
            self._now += seconds


#: Process-wide real clock behind every context without an explicit one.
_DEFAULT = MonotonicClock()


def default_clock() -> MonotonicClock:
    """The shared real monotonic clock."""
    return _DEFAULT


def resolve_clock(context: "ExecutionContext | None" = None) -> Clock:
    """The context's clock, defaulting to the shared monotonic one."""
    clock = None if context is None else context.clock
    return clock if clock is not None else _DEFAULT
