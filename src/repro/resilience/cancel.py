"""Cooperative cancellation: stop a run between launches, never mid-kernel.

A :class:`CancellationToken` rides on the
:class:`~repro.runtime.context.ExecutionContext`; any thread may call
:meth:`CancellationToken.cancel` at any moment.  Nothing is interrupted
preemptively — the schedulers in :mod:`repro.sched.executor` check the
token *between node submissions*: in-flight nodes drain to completion,
pending nodes never start, and the run raises a typed
:class:`OperationCancelled` reporting exactly which node indices
finished.  Under the serial executor the completed set is a build-order
prefix; under the thread pool it is some dependency-closed set (every
completed node's dependencies also completed), and both raise the same
typed error with the same reason.

Because fault ordinals are reserved at graph-build time, a cancelled run
under a seeded :class:`~repro.resilience.faults.FaultPlan` injects
exactly the faults its completed nodes would have seen in a full run —
cancellation never perturbs the fault schedule.
"""

from __future__ import annotations

import threading

from repro.resilience.faults import ResilienceError

__all__ = ["CancellationToken", "OperationCancelled"]


class OperationCancelled(ResilienceError):
    """A run was stopped by its cancellation token.

    ``nodes_completed`` lists the graph node indices that finished
    before the stop (``None`` when cancellation tripped outside a
    scheduler run); ``total_nodes`` is the graph size, so callers can
    report partial progress without re-deriving it.
    """

    def __init__(
        self,
        reason: str,
        *,
        nodes_completed: tuple[int, ...] | None = None,
        total_nodes: int | None = None,
    ):
        progress = (
            ""
            if nodes_completed is None or total_nodes is None
            else f" after {len(nodes_completed)}/{total_nodes} node(s)"
        )
        super().__init__(f"operation cancelled{progress}: {reason}")
        self.reason = reason
        self.nodes_completed = nodes_completed
        self.total_nodes = total_nodes


class CancellationToken:
    """A thread-safe one-way flag: once cancelled, always cancelled.

    The first :meth:`cancel` call wins the reason; later calls are
    idempotent no-ops, so racing cancellers (a deadline watchdog and a
    client disconnect) produce one stable reason on every error raised
    afterwards.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cancelled = False
        self._reason = ""

    def cancel(self, reason: str = "cancelled") -> None:
        with self._lock:
            if not self._cancelled:
                self._cancelled = True
                self._reason = reason

    @property
    def cancelled(self) -> bool:
        with self._lock:
            return self._cancelled

    @property
    def reason(self) -> str:
        with self._lock:
            return self._reason

    def raise_if_cancelled(
        self,
        *,
        nodes_completed: tuple[int, ...] | None = None,
        total_nodes: int | None = None,
    ) -> None:
        """Raise :class:`OperationCancelled` when the token is cancelled."""
        with self._lock:
            if not self._cancelled:
                return
            reason = self._reason
        raise OperationCancelled(
            reason,
            nodes_completed=nodes_completed,
            total_nodes=total_nodes,
        )
