"""Experiment harness regenerating every table and figure of the paper."""

from repro.bench.harness import (
    EXPERIMENTS,
    fig9_micro_square_rows,
    fig10_micro_nonsquare_rows,
    fig11_application_rows,
    fig12_ablation_rows,
    fig13_sparse_unit_rows,
    fig14_sparse_crossover_rows,
    run_experiment,
    table5_area_rows,
    trace_rows,
    validation_rows,
)
from repro.bench.reporting import format_value, render_table, render_trace

__all__ = [
    "EXPERIMENTS",
    "fig9_micro_square_rows",
    "fig10_micro_nonsquare_rows",
    "fig11_application_rows",
    "fig12_ablation_rows",
    "fig13_sparse_unit_rows",
    "fig14_sparse_crossover_rows",
    "run_experiment",
    "table5_area_rows",
    "trace_rows",
    "validation_rows",
    "format_value",
    "render_table",
    "render_trace",
]
