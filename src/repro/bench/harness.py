"""Experiment harness: regenerates every table and figure of the paper.

One ``*_rows`` function per experiment returns the rows the paper reports
(model-predicted values side by side with the paper's published numbers
where the paper states them), and :func:`run_experiment` renders any of
them as a text table.  ``python -m repro.bench`` prints all of them; the
``benchmarks/`` suite wraps each in a pytest-benchmark target.
"""

from __future__ import annotations

import math

import numpy as np

from repro.hwmodel import (
    ALL_SIMD2_EXTENSIONS,
    PAPER_TABLE5A,
    PAPER_TABLE5B,
    PAPER_TABLE5C,
    combined_unit_area,
    die_overhead_fractions,
    mma_unit_area,
    simd2_sm_overhead_mm2,
    simd2_unit_area,
    standalone_total_area,
    standalone_unit_area,
    unit_power_w,
)
from repro.isa.opcodes import MmoOpcode
from repro.timing import (
    APP_SIZES,
    APPS,
    ClosurePolicy,
    SparseCrossoverModel,
    app_times,
    mmo_kernel_times,
)

__all__ = [
    "EXPERIMENTS",
    "run_experiment",
    "table5_area_rows",
    "fig9_micro_square_rows",
    "fig10_micro_nonsquare_rows",
    "fig11_application_rows",
    "fig12_ablation_rows",
    "fig13_sparse_unit_rows",
    "fig14_sparse_crossover_rows",
    "trace_rows",
    "validation_rows",
]

#: Square sizes swept by the Fig 9 microbenchmark.
FIG9_SIZES = (1024, 2048, 4096, 8192, 16384)

#: Non-square (m, n, k) shapes swept by the Fig 10 microbenchmark:
#: tall-skinny, wide, reduction-heavy, and batch-like panels.
FIG10_SHAPES = (
    (16384, 1024, 1024),
    (1024, 16384, 1024),
    (1024, 1024, 16384),
    (8192, 8192, 128),
    (128, 8192, 8192),
    (4096, 16384, 4096),
)

#: Sparsity grid of the Fig 14 sweep.
FIG14_SPARSITIES = (0.5, 0.8, 0.9, 0.95, 0.99, 0.995, 0.999)
FIG14_SIZES = (1024, 4096, 16384)


def _gmean(values) -> float:
    values = [v for v in values if v is not None]
    return float(np.exp(np.mean(np.log(values)))) if values else math.nan


# ----------------------------------------------------------------------
# Table 5
# ----------------------------------------------------------------------


def table5_area_rows() -> list[dict[str, object]]:
    """Table 5(a)+(b)+(c) plus power and die overhead, model vs paper."""
    rows: list[dict[str, object]] = []
    rows.append(
        {
            "config": "MMA only (16-bit)",
            "model_area": mma_unit_area(16),
            "paper_area": 1.0,
        }
    )
    for opcode in ALL_SIMD2_EXTENSIONS:
        rows.append(
            {
                "config": f"MMA + {opcode.mnemonic}",
                "model_area": combined_unit_area([opcode]),
                "paper_area": PAPER_TABLE5A[f"mma+{opcode.mnemonic}"],
            }
        )
    rows.append(
        {
            "config": "MMA + all SIMD2 insts",
            "model_area": simd2_unit_area(16),
            "paper_area": PAPER_TABLE5A["mma+all"],
        }
    )
    for opcode in ALL_SIMD2_EXTENSIONS:
        rows.append(
            {
                "config": f"standalone {opcode.mnemonic}",
                "model_area": standalone_unit_area(opcode),
                "paper_area": PAPER_TABLE5B[opcode.mnemonic],
            }
        )
    rows.append(
        {
            "config": "standalone total (8 PEs)",
            "model_area": standalone_total_area(),
            "paper_area": PAPER_TABLE5B["total"],
        }
    )
    for bits in (8, 16, 32, 64):
        rows.append(
            {
                "config": f"MMA only ({bits}-bit)",
                "model_area": mma_unit_area(bits),
                "paper_area": PAPER_TABLE5C["mma"][bits],
            }
        )
        rows.append(
            {
                "config": f"SIMD2 ({bits}-bit)",
                "model_area": simd2_unit_area(bits),
                "paper_area": PAPER_TABLE5C["simd2"][bits],
            }
        )
    sm_fraction, die_fraction = die_overhead_fractions()
    rows.append(
        {
            "config": "power: MMA / full SIMD2 (W)",
            "model_area": unit_power_w(ALL_SIMD2_EXTENSIONS),
            "paper_area": 3.74 + 0.79,
        }
    )
    rows.append(
        {
            "config": "SM overhead (mm2, 8N)",
            "model_area": simd2_sm_overhead_mm2(),
            "paper_area": 0.378,
        }
    )
    rows.append(
        {"config": "die overhead fraction", "model_area": die_fraction, "paper_area": 0.05}
    )
    rows.append(
        {"config": "SM area fraction", "model_area": sm_fraction, "paper_area": 0.10}
    )
    return rows


# ----------------------------------------------------------------------
# Figures 9 and 10 — microbenchmarks
# ----------------------------------------------------------------------


def fig9_micro_square_rows() -> list[dict[str, object]]:
    """Per-opcode SIMD²-vs-CUDA speedups on square inputs."""
    rows = []
    for n in FIG9_SIZES:
        row: dict[str, object] = {"size": n}
        speedups = []
        for opcode in MmoOpcode:
            speedup = mmo_kernel_times(opcode, n, n, n).speedup
            row[opcode.mnemonic] = speedup
            speedups.append(speedup)
        row["gmean"] = _gmean(speedups)
        rows.append(row)
    return rows


def fig10_micro_nonsquare_rows() -> list[dict[str, object]]:
    """Per-opcode speedups on non-square (m, n, k) shapes."""
    rows = []
    for m, n, k in FIG10_SHAPES:
        row: dict[str, object] = {"shape": f"{m}x{n}x{k}"}
        speedups = []
        for opcode in MmoOpcode:
            speedup = mmo_kernel_times(opcode, m, n, k).speedup
            row[opcode.mnemonic] = speedup
            speedups.append(speedup)
        row["gmean"] = _gmean(speedups)
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figures 11, 12, 13 — applications
# ----------------------------------------------------------------------

_SIZE_LABELS = ("Small", "Medium", "Large")


def fig11_application_rows() -> list[dict[str, object]]:
    """Application speedups: SIMD² w/ units and w/ CUDA cores vs baseline."""
    rows = []
    for app in APPS:
        for label, size in zip(_SIZE_LABELS, APP_SIZES[app]):
            times = app_times(app, size)
            rows.append(
                {
                    "app": app,
                    "input": f"{label} ({size})",
                    "baseline_ms": times.baseline_s * 1e3,
                    "simd2_cuda_ms": times.simd2_cuda_s * 1e3,
                    "simd2_units_ms": times.simd2_units_s * 1e3,
                    "speedup_units": times.speedup_units,
                    "speedup_cuda": times.speedup_cuda,
                    "iterations": times.iterations,
                }
            )
    for index, label in enumerate(_SIZE_LABELS):
        rows.append(
            {
                "app": "GMEAN",
                "input": label,
                "speedup_units": _gmean(
                    app_times(app, APP_SIZES[app][index]).speedup_units for app in APPS
                ),
            }
        )
    return rows


def fig12_ablation_rows() -> list[dict[str, object]]:
    """Algorithmic ablation: convergence checks and Bellman-Ford variants."""
    rows = []
    closure_apps = tuple(app for app in APPS if app != "KNN")
    for app in closure_apps:
        for label, size in zip(_SIZE_LABELS, APP_SIZES[app]):
            row: dict[str, object] = {"app": app, "input": f"{label} ({size})"}
            for key, policy in (
                ("leyzorek_conv", ClosurePolicy.LEYZOREK),
                ("leyzorek_noconv", ClosurePolicy.LEYZOREK_NOCONV),
                ("bellman_ford", ClosurePolicy.BELLMAN_FORD),
            ):
                row[key] = app_times(app, size, policy=policy).speedup_units
            rows.append(row)
    return rows


def fig13_sparse_unit_rows() -> list[dict[str, object]]:
    """Sparse (2:4) SIMD² unit speedups vs baseline and vs dense SIMD²."""
    rows = []
    for app in APPS:
        for label, size in zip(_SIZE_LABELS, APP_SIZES[app]):
            dense = app_times(app, size)
            sparse = app_times(app, size, sparse_unit=True)
            rows.append(
                {
                    "app": app,
                    "input": f"{label} ({size})",
                    "sparse_speedup": sparse.speedup_units,
                    "dense_speedup": dense.speedup_units,
                    "gain_over_dense": dense.simd2_units_s / sparse.simd2_units_s,
                }
            )
    for index, label in enumerate(_SIZE_LABELS):
        rows.append(
            {
                "app": "GMEAN",
                "input": label,
                "sparse_speedup": _gmean(
                    app_times(app, APP_SIZES[app][index], sparse_unit=True).speedup_units
                    for app in APPS
                ),
                "dense_speedup": _gmean(
                    app_times(app, APP_SIZES[app][index]).speedup_units for app in APPS
                ),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figure 14 — sparse vs dense crossover
# ----------------------------------------------------------------------


def fig14_sparse_crossover_rows() -> list[dict[str, object]]:
    """spGEMM-vs-dense-GEMM speedup across sparsity and size (OOM cells)."""
    model = SparseCrossoverModel()
    rows = []
    for n in FIG14_SIZES:
        row: dict[str, object] = {"size": n}
        for sparsity in FIG14_SPARSITIES:
            row[f"s={sparsity}"] = model.point(n, sparsity).speedup
        crossover = model.crossover_sparsity(n)
        row["crossover"] = crossover if crossover is not None else "never"
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

def validation_rows() -> list[dict[str, object]]:
    """Figure 8 flow: validate every app, attach modelled speedups."""
    from repro.bench.evaluation import evaluate_all

    return [evaluation.as_row() for evaluation in evaluate_all()]


#: Workload of the trace experiment: one closure per (ring, size) cell,
#: small enough for the emulate backend at test speed.
_TRACE_RING = "min-plus"
_TRACE_VERTICES = 40


def trace_rows() -> list[dict[str, object]]:
    """Per-backend launch traces of one closure workload.

    Runs the same min-plus closure under every *registered* backend with a
    tracing context installed and reports each trace's aggregate counters
    — so the row set grows automatically when a backend registers, and the
    ``mmo_instructions`` column demonstrates the static-count
    reconciliation across substrates (identical tile grids ⇒ identical
    counts, whatever executed them).
    """
    from repro.backends import list_backends
    from repro.datasets import GraphSpec, distance_graph
    from repro.runtime import Trace, closure, use_context

    adjacency = distance_graph(
        GraphSpec(num_vertices=_TRACE_VERTICES, edge_probability=0.2, seed=7)
    )
    rows: list[dict[str, object]] = []
    for backend in list_backends():
        trace = Trace()
        with use_context(backend=backend, trace=trace):
            result = closure(_TRACE_RING, adjacency)
        summary = trace.summary()
        row: dict[str, object] = {"backend": backend, **summary.as_row()}
        row["iterations"] = result.iterations
        row["counts_reconcile"] = (
            summary.mmo_instructions == result.total_mmo_instructions
        )
        rows.append(row)
    return rows


EXPERIMENTS: dict[str, tuple[str, callable]] = {
    "table5": ("Table 5: area, power and die overhead (model vs paper)", table5_area_rows),
    "validate": ("Figure 8: validation flow across the application suite", validation_rows),
    "fig9": ("Figure 9: microbenchmark speedups, square inputs", fig9_micro_square_rows),
    "fig10": ("Figure 10: microbenchmark speedups, non-square inputs", fig10_micro_nonsquare_rows),
    "fig11": ("Figure 11: application speedups", fig11_application_rows),
    "fig12": ("Figure 12: algorithmic ablations", fig12_ablation_rows),
    "fig13": ("Figure 13: sparse SIMD2 unit", fig13_sparse_unit_rows),
    "fig14": ("Figure 14: sparse vs dense crossover", fig14_sparse_crossover_rows),
    "trace": ("Launch trace: one closure per registered backend", trace_rows),
}


def run_experiment(name: str) -> str:
    """Render one experiment's table (see :data:`EXPERIMENTS` for names)."""
    from repro.bench.reporting import render_table

    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}")
    title, row_fn = EXPERIMENTS[name]
    return render_table(row_fn(), title=title)
