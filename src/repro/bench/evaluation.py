"""The paper's Figure 8 evaluation workflow, end to end.

For each application the framework runs three implementations and two
checks:

1. the **baseline** state-of-the-art implementation on the input,
2. the **SIMD² algorithm on the vectorised backend** (cuASR/CUTLASS
   analogue) — compared against the baseline for *correctness/accuracy*,
3. the **SIMD² algorithm on the instruction-level emulator** — compared
   against (2) for output equality and against the static tiling
   prediction for *operation-count* parity,

then attaches the modelled paper-scale speedups (Figure 11) for the app.
:func:`evaluate_application` runs the flow for one app at validation
scale; :func:`evaluate_all` sweeps the full Table 4 suite.  This is what
``python -m repro.bench validate`` prints.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

import numpy as np

from repro.apps import (
    aplp_baseline,
    aplp_simd2,
    apsp_baseline,
    apsp_simd2,
    gtc_baseline,
    gtc_simd2,
    knn_baseline,
    knn_simd2,
    max_capacity_baseline,
    max_capacity_simd2,
    max_reliability_baseline,
    max_reliability_simd2,
    min_reliability_baseline,
    min_reliability_simd2,
    mst_baseline,
    mst_simd2,
)
from repro.datasets import (
    GraphSpec,
    PointCloudSpec,
    boolean_graph,
    capacity_graph,
    dag_distance_graph,
    distance_graph,
    gaussian_clusters,
    reliability_graph,
    undirected_distance_graph,
)
from repro.hw import Simd2Device
from repro.runtime import Trace, TraceSummary, use_context
from repro.timing import APP_SIZES, app_times

__all__ = ["AppEvaluation", "EVALUATION_SUITE", "evaluate_application", "evaluate_all"]

#: Validation-scale vertex count (the paper-scale sizes live in the model).
_VALIDATION_N = 32


@dataclasses.dataclass(frozen=True)
class _AppCase:
    """One application's pieces: input maker, baseline, SIMD² runner."""

    make_input: Callable[[], object]
    run_baseline: Callable[[object], np.ndarray]
    run_simd2: Callable[[object, str, Simd2Device | None], np.ndarray]
    exact: bool  # True: outputs must match bit-for-bit; False: fp16 tolerance


def _graph_spec(seed: int) -> GraphSpec:
    return GraphSpec(num_vertices=_VALIDATION_N, edge_probability=0.15, seed=seed)


def _knn_input():
    points, _ = gaussian_clusters(
        PointCloudSpec(num_points=2 * _VALIDATION_N, dimensions=12, seed=77)
    )
    return points


EVALUATION_SUITE: dict[str, _AppCase] = {
    "APSP": _AppCase(
        make_input=lambda: distance_graph(_graph_spec(31)),
        run_baseline=lambda adj: apsp_baseline(adj).distances,
        run_simd2=lambda adj, backend, device: apsp_simd2(adj, backend=backend).distances,
        exact=True,
    ),
    "APLP": _AppCase(
        make_input=lambda: dag_distance_graph(_graph_spec(32)),
        run_baseline=lambda adj: aplp_baseline(adj).lengths,
        run_simd2=lambda adj, backend, device: aplp_simd2(adj, backend=backend).lengths,
        exact=True,
    ),
    "MCP": _AppCase(
        make_input=lambda: capacity_graph(_graph_spec(33), maximize=True),
        run_baseline=lambda adj: max_capacity_baseline(adj).values,
        run_simd2=lambda adj, backend, device: max_capacity_simd2(
            adj, backend=backend
        ).values,
        exact=True,
    ),
    "MAXRP": _AppCase(
        make_input=lambda: reliability_graph(_graph_spec(34), maximize=True),
        run_baseline=lambda adj: max_reliability_baseline(adj).values,
        run_simd2=lambda adj, backend, device: max_reliability_simd2(
            adj, backend=backend
        ).values,
        exact=False,
    ),
    "MINRP": _AppCase(
        make_input=lambda: reliability_graph(_graph_spec(35), maximize=False),
        run_baseline=lambda adj: min_reliability_baseline(adj).values,
        run_simd2=lambda adj, backend, device: min_reliability_simd2(
            adj, backend=backend
        ).values,
        exact=False,
    ),
    "MST": _AppCase(
        make_input=lambda: undirected_distance_graph(_graph_spec(36)),
        run_baseline=lambda w: np.array(sorted(mst_baseline(w).edges)),
        run_simd2=lambda w, backend, device: np.array(
            sorted(mst_simd2(w, backend=backend).edges)
        ),
        exact=True,
    ),
    "GTC": _AppCase(
        make_input=lambda: boolean_graph(_graph_spec(37), reflexive=False),
        run_baseline=lambda adj: gtc_baseline(adj).reachable,
        run_simd2=lambda adj, backend, device: gtc_simd2(adj, backend=backend).reachable,
        exact=True,
    ),
    "KNN": _AppCase(
        make_input=_knn_input,
        run_baseline=lambda pts: knn_baseline(
            pts[:_VALIDATION_N], pts[_VALIDATION_N:], 5
        ).indices,
        run_simd2=lambda pts, backend, device: knn_simd2(
            pts[:_VALIDATION_N], pts[_VALIDATION_N:], 5, backend=backend
        ).indices,
        exact=True,
    ),
}


@dataclasses.dataclass(frozen=True)
class AppEvaluation:
    """Figure-8 outcome for one application."""

    app: str
    validated: bool  # SIMD² algorithm == baseline (within datapath accuracy)
    emulation_consistent: bool  # emulator output == vectorised output
    max_relative_error: float  # accuracy of the fp16 datapath vs baseline
    modelled_speedups: tuple[float, float, float]  # Small/Medium/Large
    #: Launch traces of the two SIMD² runs; their mmo counts must agree
    #: (same algorithm, same tile grids — the statistics cross-check).
    vectorized_trace: TraceSummary | None = None
    emulate_trace: TraceSummary | None = None

    @property
    def trace_consistent(self) -> bool:
        """Static instruction counts agree across the two backends."""
        if self.vectorized_trace is None or self.emulate_trace is None:
            return True
        return (
            self.vectorized_trace.mmo_instructions
            == self.emulate_trace.mmo_instructions
        )

    def as_row(self) -> dict[str, object]:
        small, medium, large = self.modelled_speedups
        row: dict[str, object] = {
            "app": self.app,
            "validated": self.validated,
            "emulation_consistent": self.emulation_consistent,
            "max_rel_error": self.max_relative_error,
            "speedup_S": small,
            "speedup_M": medium,
            "speedup_L": large,
        }
        if self.vectorized_trace is not None:
            row["launches"] = self.vectorized_trace.launches
            row["traced_mmos"] = self.vectorized_trace.mmo_instructions
            row["trace_consistent"] = self.trace_consistent
        return row


def _relative_error(got: np.ndarray, want: np.ndarray) -> float:
    got = np.asarray(got, dtype=np.float64)
    want = np.asarray(want, dtype=np.float64)
    both_finite = np.isfinite(got) & np.isfinite(want)
    if not np.array_equal(np.isfinite(got), np.isfinite(want)):
        return np.inf
    if not both_finite.any():
        return 0.0
    denom = np.maximum(np.abs(want[both_finite]), 1e-12)
    return float(np.max(np.abs(got[both_finite] - want[both_finite]) / denom))


def evaluate_application(app: str) -> AppEvaluation:
    """Run the Figure 8 flow for one application at validation scale."""
    if app not in EVALUATION_SUITE:
        raise KeyError(f"unknown application {app!r}; expected {sorted(EVALUATION_SUITE)}")
    case = EVALUATION_SUITE[app]
    data = case.make_input()

    baseline = np.asarray(case.run_baseline(data))
    # Each SIMD² run executes under a tracing context so every launch is
    # observable; the app code itself needs no bench-specific plumbing.
    vec_trace = Trace()
    with use_context(trace=vec_trace):
        vectorised = np.asarray(case.run_simd2(data, "vectorized", None))
    emu_trace = Trace()
    with use_context(trace=emu_trace):
        emulated = np.asarray(case.run_simd2(data, "emulate", Simd2Device(sm_count=4)))

    error = _relative_error(vectorised, baseline)
    tolerance = 0.0 if case.exact else 1e-2
    validated = bool(
        np.array_equal(vectorised, baseline) if case.exact else error <= tolerance
    )
    emulation_consistent = bool(np.array_equal(emulated, vectorised))

    speedups = tuple(
        app_times(app, size).speedup_units for size in APP_SIZES[app]
    )
    return AppEvaluation(
        app=app,
        validated=validated,
        emulation_consistent=emulation_consistent,
        max_relative_error=error,
        modelled_speedups=speedups,  # type: ignore[arg-type]
        vectorized_trace=vec_trace.summary(),
        emulate_trace=emu_trace.summary(),
    )


def evaluate_all() -> list[AppEvaluation]:
    """The full Table 4 suite through the Figure 8 flow."""
    return [evaluate_application(app) for app in EVALUATION_SUITE]
