"""Export experiment rows to CSV for downstream plotting.

Every experiment in the harness registry can be exported as a CSV whose
columns are the union of the row keys (missing cells stay empty, OOM cells
render as ``OOM``) — the format plotting scripts and spreadsheets expect
when regenerating the paper's figures graphically.
"""

from __future__ import annotations

import csv
import io
import pathlib
from collections.abc import Mapping, Sequence

from repro.bench.harness import EXPERIMENTS
from repro.bench.reporting import format_value

__all__ = ["rows_to_csv", "export_experiment", "export_all"]


def rows_to_csv(rows: Sequence[Mapping[str, object]]) -> str:
    """Render rows of dicts as CSV text (columns in first-seen order)."""
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(columns)
    for row in rows:
        writer.writerow(
            [format_value(row[col]) if col in row else "" for col in columns]
        )
    return buffer.getvalue()


def export_experiment(name: str, directory: str | pathlib.Path) -> pathlib.Path:
    """Write one experiment's rows to ``<directory>/<name>.csv``."""
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}")
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    _, row_fn = EXPERIMENTS[name]
    path = directory / f"{name}.csv"
    path.write_text(rows_to_csv(row_fn()))
    return path


def export_all(directory: str | pathlib.Path) -> list[pathlib.Path]:
    """Export every registered experiment; returns the written paths."""
    return [export_experiment(name, directory) for name in EXPERIMENTS]
